(* Tests for the fault-injection subsystem: fault composition,
   determinism, lock-margin behaviour under drift, and the resilient
   calibration's structured degraded reports. *)

let std = Rfchain.Standards.bluetooth

(* One healthy provisioned die, shared across tests. *)
let fixture =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some f -> f
    | None ->
      let chip = Circuit.Process.fabricate ~seed:42 () in
      let rx = Rfchain.Receiver.create chip std in
      let key = Calibration.Calibrate.quick rx in
      cache := Some (chip, rx, key);
      (chip, rx, key)

(* ----------------------------------------------------------- Composition *)

let test_stuck_overrides_flip () =
  (* With a certain flip on every bit, a stuck-at must still win. *)
  let faults =
    [
      Faults.Fault.Register_flip { rate = 1.0; seed = 11 };
      Faults.Fault.stuck_bit ~bit:0 ~value:false;
    ]
  in
  match Faults.Inject.fabric_of faults with
  | None -> Alcotest.fail "fabric faults produced no rewrite"
  | Some rewrite ->
    let bits = Rfchain.Config.to_bits (rewrite Rfchain.Config.nominal) in
    let nominal = Rfchain.Config.to_bits Rfchain.Config.nominal in
    Alcotest.(check int64) "stuck bit reads 0 through the upset" 0L (Int64.logand bits 1L);
    Alcotest.(check bool) "the upset really rewrote the word" true
      (not (Int64.equal (Int64.logor bits 1L) (Int64.logor nominal 1L)))

let test_out_of_range_stuck_is_noop () =
  match Faults.Inject.fabric_of [ Faults.Fault.stuck_bit ~bit:200 ~value:true ] with
  | None -> Alcotest.fail "no-op fault should still install an identity rewrite"
  | Some rewrite ->
    Alcotest.(check bool) "word unchanged" true
      (Rfchain.Config.equal (rewrite Rfchain.Config.nominal) Rfchain.Config.nominal)

let test_stuck_field_masks_whole_field () =
  match Faults.Fault.stuck_field ~name:"gm_q" ~code:0 with
  | Faults.Fault.Stuck_bits { mask; value } ->
    Alcotest.(check int) "gm_q is six bits" (Rfchain.Config.field_width "gm_q")
      (Faults.Fault.popcount64 mask);
    Alcotest.(check int64) "stuck at zero" 0L value
  | _ -> Alcotest.fail "stuck_field must build Stuck_bits"

let test_chip_faults_pass_through_fabric () =
  Alcotest.(check bool) "chip-level faults install no fabric rewrite" true
    (Faults.Inject.fabric_of
       [ Faults.Fault.pvt Faults.Fault.Mild; Faults.Fault.aging Faults.Fault.Mild ]
    = None)

(* ----------------------------------------------------------- Determinism *)

let test_deterministic_rewrites () =
  let faults = [ Faults.Fault.register_upsets ~seed:3 Faults.Fault.Moderate ] in
  match Faults.Inject.fabric_of faults with
  | None -> Alcotest.fail "register upsets produced no rewrite"
  | Some rewrite ->
    let a = Rfchain.Config.to_bits (rewrite Rfchain.Config.nominal) in
    let b = Rfchain.Config.to_bits (rewrite Rfchain.Config.nominal) in
    Alcotest.(check int64) "same seed, same upsets, every load" a b

let test_deterministic_bursts () =
  let faults = [ Faults.Fault.burst_noise ~seed:5 Faults.Fault.Severe ] in
  match Faults.Inject.rf_of faults with
  | None -> Alcotest.fail "burst noise produced no RF corruption"
  | Some corrupt ->
    let x = Array.init 512 (fun i -> sin (0.01 *. float_of_int i)) in
    let a = corrupt (Array.copy x) in
    let b = corrupt (Array.copy x) in
    Alcotest.(check bool) "same seed, same bursts" true (a = b);
    Alcotest.(check bool) "bursts actually hit" true (a <> x)

(* ---------------------------------------------------------- Lock margins *)

let test_valid_key_survives_mild_drift () =
  let chip, _, key = fixture () in
  let rx_faulted =
    Faults.Inject.receiver chip std
      [ Faults.Fault.pvt Faults.Fault.Mild; Faults.Fault.aging Faults.Fault.Mild ]
  in
  let snr = Metrics.Measure.snr_mod_db (Metrics.Measure.create rx_faulted) key in
  Alcotest.(check bool)
    (Printf.sprintf "golden key in spec under mild drift (%.1f dB)" snr)
    true
    (snr >= std.Rfchain.Standards.min_snr_db)

let test_corrupted_key_fails () =
  let _, rx, key = fixture () in
  (* Flip the comparator-clock bit: one wrong bit, dead receiver. *)
  let corrupted = Rfchain.Config.of_bits (Int64.logxor (Rfchain.Config.to_bits key) (Int64.shift_left 1L 57)) in
  let snr = Metrics.Measure.snr_mod_db (Metrics.Measure.create rx) corrupted in
  Alcotest.(check bool)
    (Printf.sprintf "1-bit-corrupted key out of spec (%.1f dB)" snr)
    true
    (snr < std.Rfchain.Standards.min_snr_db)

(* ---------------------------------------------- Degraded calibration paths *)

let test_tank_dead_report () =
  let chip, _, _ = fixture () in
  let rx = Faults.Inject.receiver chip std [ Faults.Fault.stuck_field ~name:"gm_q" ~code:0 ] in
  (match Calibration.Osc_tune.run rx with
  | Error (Calibration.Osc_tune.Tank_silent _) -> ()
  | Ok _ -> Alcotest.fail "a dead Q-enhancement driver must silence the tank");
  let outcome = Calibration.Calibrate.run ~passes:1 ~refine_sfdr:false ~max_retries:2 rx in
  (match outcome.Calibration.Calibrate.verdict with
  | Calibration.Calibrate.Degraded (Calibration.Calibrate.Tank_dead { measurements; _ }) ->
    Alcotest.(check bool) "counted its measurements" true (measurements > 0)
  | _ -> Alcotest.fail "expected a structured Tank_dead verdict");
  Alcotest.(check int) "a dead tank is not retried" 1 outcome.Calibration.Calibrate.attempts;
  Alcotest.(check bool) "degraded report carries -inf metrics" true
    (outcome.Calibration.Calibrate.report.Calibration.Calibrate.snr_mod_db = neg_infinity)

let test_spec_shortfall_report () =
  let chip, _, _ = fixture () in
  let rx =
    Faults.Inject.receiver chip std
      [ Faults.Fault.stuck_field ~name:"comp_clock_enable" ~code:0 ]
  in
  let outcome = Calibration.Calibrate.run ~passes:1 ~refine_sfdr:false ~max_retries:1 rx in
  (match outcome.Calibration.Calibrate.verdict with
  | Calibration.Calibrate.Degraded (Calibration.Calibrate.Spec_shortfall { shortfall_db; _ }) ->
    Alcotest.(check bool) "positive shortfall" true (shortfall_db > 0.0)
  | _ -> Alcotest.fail "expected a structured Spec_shortfall verdict");
  Alcotest.(check int) "escalated retry was attempted" 2 outcome.Calibration.Calibrate.attempts

(* -------------------------------------------------------------- Campaign *)

let test_campaign_end_to_end () =
  match Faults.Campaign.run ~dies:1 ~seed:42 std with
  | Error e -> Alcotest.fail (Faults.Error.to_string e)
  | Ok t ->
    Alcotest.(check int) "full single-bit cliff" Rfchain.Config.key_bits
      (List.length t.Faults.Campaign.flips);
    Alcotest.(check int) "one cell per mechanism x severity"
      (List.length Faults.Campaign.mechanism_names * 3)
      (List.length t.Faults.Campaign.cells);
    List.iter
      (fun (name, ok) -> Alcotest.(check bool) name true ok)
      (Faults.Campaign.checks t);
    Alcotest.(check bool) "JSON output is one object per line" true
      (List.for_all
         (fun line -> String.length line > 2 && line.[0] = '{')
         (Faults.Report.json_lines t))

let test_campaign_monitor_progress_jobs4 () =
  (* The monitor's progress board must converge on completed = total
     regardless of how the pool schedules the chunks, and the totals
     are a deterministic function of the campaign, not of --jobs. *)
  Telemetry.Monitor.reset ();
  let engine = Engine.Service.create ~jobs:4 () in
  Fun.protect ~finally:(fun () ->
      Engine.Service.shutdown engine;
      Telemetry.Monitor.reset ())
  @@ fun () ->
  match Faults.Campaign.run ~dies:1 ~seed:42 ~engine std with
  | Error e -> Alcotest.fail (Faults.Error.to_string e)
  | Ok t ->
    let s = Telemetry.Monitor.snapshot () in
    Alcotest.(check bool) "campaign complete" true (Faults.Campaign.complete t);
    Alcotest.(check int) "board converges to total" s.Telemetry.Monitor.total
      s.Telemetry.Monitor.completed;
    (* cells grid + one probe per key bit + the survivor re-checks. *)
    Alcotest.(check bool) "total covers cells and probes" true
      (s.Telemetry.Monitor.total
      >= List.length t.Faults.Campaign.cells + Rfchain.Config.key_bits)

let test_empty_sweep_is_an_error () =
  match Faults.Campaign.run ~dies:0 ~seed:42 std with
  | Error (Faults.Error.Empty_sweep _) -> ()
  | Error _ -> Alcotest.fail "wrong error for an empty sweep"
  | Ok _ -> Alcotest.fail "a zero-die campaign must be refused"

(* --------------------------------------------------- Errors and standards *)

let test_find_opt () =
  (match Rfchain.Standards.find_opt "bluetooth" with
  | Some s -> Alcotest.(check string) "finds bluetooth" "bluetooth" s.Rfchain.Standards.name
  | None -> Alcotest.fail "bluetooth must be a known standard");
  Alcotest.(check bool) "unknown standard is None" true
    (Rfchain.Standards.find_opt "fm-radio" = None);
  Alcotest.(check bool) "names lists bluetooth" true
    (List.mem "bluetooth" Rfchain.Standards.names)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_error_to_string () =
  let msg =
    Faults.Error.to_string
      (Faults.Error.Unknown_standard { requested = "fm-radio"; known = [ "bluetooth" ] })
  in
  Alcotest.(check bool) "names the request" true (contains ~sub:"fm-radio" msg);
  Alcotest.(check bool) "lists the known standards" true (contains ~sub:"bluetooth" msg)

let test_error_examples_roundtrip () =
  (* One example per constructor: catches a forgotten of_json branch the
     day a new error variant is added. *)
  List.iter
    (fun e ->
      match Faults.Error.of_json (Faults.Error.to_json e) with
      | Some e' ->
        Alcotest.(check bool) ("round-trips: " ^ Faults.Error.to_string e) true (e = e')
      | None -> Alcotest.fail ("of_json rejected " ^ Faults.Error.to_string e))
    Faults.Error.all_examples;
  let msgs = List.map Faults.Error.to_string Faults.Error.all_examples in
  Alcotest.(check int) "every variant renders a distinct message"
    (List.length msgs)
    (List.length (List.sort_uniq compare msgs));
  Alcotest.(check bool) "no empty rendering" true
    (List.for_all (fun m -> String.length m > 0) msgs)

(* ---------------------------------------------------------------- Resume *)

let prop_resume_determinism =
  let ok_cp = function
    | Ok cp -> cp
    | Error c -> QCheck.Test.fail_report (Engine.Checkpoint.corruption_to_string c)
  in
  QCheck.Test.make
    ~name:"interrupt at cell k then resume = uninterrupted run, byte for byte" ~count:2
    QCheck.(pair (int_range 1 50) (int_range 42 43))
    (fun (k, seed) ->
      let fresh =
        match Faults.Campaign.run ~dies:1 ~seed std with
        | Ok t -> Faults.Report.json_lines t
        | Error e -> QCheck.Test.fail_report (Faults.Error.to_string e)
      in
      let path = Filename.temp_file "campaign" ".jsonl" in
      (* Run 1: journal to a fresh checkpoint, die after k cells. *)
      let cp = ok_cp (Engine.Checkpoint.load ~resume:false path) in
      let engine = Engine.Service.create ~jobs:1 ~checkpoint:cp () in
      (match Faults.Campaign.run ~dies:1 ~seed ~engine ~interrupt_after:k std with
      | Ok t ->
        if Faults.Campaign.complete t then
          QCheck.Test.fail_report "interrupt_after did not interrupt";
        if t.Faults.Campaign.completed_cells <> k then
          QCheck.Test.fail_reportf "stopped after %d cells, wanted %d"
            t.Faults.Campaign.completed_cells k
      | Error e ->
        QCheck.Test.fail_report ("interrupted run errored: " ^ Faults.Error.to_string e));
      Engine.Checkpoint.close cp;
      Engine.Service.shutdown engine;
      (* Run 2: cold cache, resume the journal, run to completion. *)
      let cp = ok_cp (Engine.Checkpoint.load ~resume:true path) in
      let engine = Engine.Service.create ~jobs:1 ~checkpoint:cp () in
      let resumed =
        match Faults.Campaign.run ~dies:1 ~seed ~engine std with
        | Ok t -> Faults.Report.json_lines t
        | Error e ->
          QCheck.Test.fail_report ("resumed run errored: " ^ Faults.Error.to_string e)
      in
      Engine.Checkpoint.close cp;
      Engine.Service.shutdown engine;
      Sys.remove path;
      fresh = resumed)

(* Same contract under the streaming scheduler with worker lanes: the
   interrupted leg runs on a jobs-4 engine, so the whole cell grid is
   in flight when the interrupt fires mid-stream, and the report must
   still cut at exactly k delivered cells and resume byte-identically
   (workers may journal a few cells beyond k — resume replays them,
   the bytes cannot tell). *)
let prop_resume_determinism_jobs4 =
  let ok_cp = function
    | Ok cp -> cp
    | Error c -> QCheck.Test.fail_report (Engine.Checkpoint.corruption_to_string c)
  in
  QCheck.Test.make
    ~name:"interrupt mid-stream under jobs 4 then resume = uninterrupted, byte for byte"
    ~count:1
    QCheck.(pair (int_range 1 50) (int_range 42 43))
    (fun (k, seed) ->
      let fresh =
        match Faults.Campaign.run ~dies:1 ~seed std with
        | Ok t -> Faults.Report.json_lines t
        | Error e -> QCheck.Test.fail_report (Faults.Error.to_string e)
      in
      let path = Filename.temp_file "campaign" ".jsonl" in
      let cp = ok_cp (Engine.Checkpoint.load ~resume:false path) in
      let engine = Engine.Service.create ~jobs:4 ~checkpoint:cp () in
      (match Faults.Campaign.run ~dies:1 ~seed ~engine ~interrupt_after:k std with
      | Ok t ->
        if Faults.Campaign.complete t then
          QCheck.Test.fail_report "interrupt_after did not interrupt";
        if t.Faults.Campaign.completed_cells <> k then
          QCheck.Test.fail_reportf "stopped after %d cells, wanted %d"
            t.Faults.Campaign.completed_cells k
      | Error e ->
        QCheck.Test.fail_report ("interrupted run errored: " ^ Faults.Error.to_string e));
      Engine.Checkpoint.close cp;
      Engine.Service.shutdown engine;
      let cp = ok_cp (Engine.Checkpoint.load ~resume:true path) in
      let engine = Engine.Service.create ~jobs:4 ~checkpoint:cp () in
      let resumed =
        match Faults.Campaign.run ~dies:1 ~seed ~engine std with
        | Ok t -> Faults.Report.json_lines t
        | Error e ->
          QCheck.Test.fail_report ("resumed run errored: " ^ Faults.Error.to_string e)
      in
      Engine.Checkpoint.close cp;
      Engine.Service.shutdown engine;
      Sys.remove path;
      fresh = resumed)

(* ------------------------------------------------------------------ JSON *)

let test_json_rendering () =
  Alcotest.(check string) "escaping" "{\"a\\\"b\":\"x\\ny\"}"
    (Faults.Json.to_string (Faults.Json.Obj [ ("a\"b", Faults.Json.String "x\ny") ]));
  Alcotest.(check string) "non-finite floats are null" "[null,null,1.5]"
    (Faults.Json.to_string
       (Faults.Json.List
          [ Faults.Json.Float nan; Faults.Json.Float neg_infinity; Faults.Json.Float 1.5 ]));
  Alcotest.(check string) "scalars" "{\"n\":42,\"ok\":true,\"none\":null}"
    (Faults.Json.to_string
       (Faults.Json.Obj
          [
            ("n", Faults.Json.Int 42);
            ("ok", Faults.Json.Bool true);
            ("none", Faults.Json.Null);
          ]))

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "faults"
    [
      ( "composition",
        [
          Alcotest.test_case "stuck-at overrides register upset" `Quick test_stuck_overrides_flip;
          Alcotest.test_case "out-of-range stuck bit is a no-op" `Quick test_out_of_range_stuck_is_noop;
          Alcotest.test_case "stuck field covers the whole field" `Quick test_stuck_field_masks_whole_field;
          Alcotest.test_case "chip faults leave the fabric alone" `Quick test_chip_faults_pass_through_fabric;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "register upsets replay exactly" `Quick test_deterministic_rewrites;
          Alcotest.test_case "bursts replay exactly" `Quick test_deterministic_bursts;
        ] );
      ( "lock margin",
        [
          Alcotest.test_case "valid key survives mild drift" `Slow test_valid_key_survives_mild_drift;
          Alcotest.test_case "1-bit-corrupted key fails" `Slow test_corrupted_key_fails;
        ] );
      ( "degraded calibration",
        [
          Alcotest.test_case "dead tank: structured report" `Slow test_tank_dead_report;
          Alcotest.test_case "spec shortfall: structured report" `Slow test_spec_shortfall_report;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "end to end, all checks pass" `Slow test_campaign_end_to_end;
          Alcotest.test_case "monitor progress converges under jobs 4" `Slow
            test_campaign_monitor_progress_jobs4;
          Alcotest.test_case "zero dies is a typed error" `Quick test_empty_sweep_is_an_error;
        ] );
      ( "errors",
        [
          Alcotest.test_case "Standards.find_opt" `Quick test_find_opt;
          Alcotest.test_case "Error.to_string" `Quick test_error_to_string;
          Alcotest.test_case "all variants round-trip through JSON" `Quick
            test_error_examples_roundtrip;
          Alcotest.test_case "JSON rendering" `Quick test_json_rendering;
        ] );
      ("resume", qcheck [ prop_resume_determinism; prop_resume_determinism_jobs4 ]);
    ]
