(* Unit and property tests for the RF receiver chain. *)

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let chip ?(seed = 42) () = Circuit.Process.fabricate ~seed ()
let std = Rfchain.Standards.max_frequency

(* ------------------------------------------------------------ Standards *)

let test_standards_fs () =
  check_close "fs = 4 f0" 12e9 (Rfchain.Standards.fs std);
  check_close "band = fs / (2 OSR)" 93.75e6 (Rfchain.Standards.band_hz std)

let test_standards_lookup () =
  Alcotest.(check string) "find bluetooth" "bluetooth" (Rfchain.Standards.find "bluetooth").name;
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Rfchain.Standards.find "nope"));
  Alcotest.(check bool) "range covered" true
    (List.for_all
       (fun s -> s.Rfchain.Standards.f0_hz >= 1.5e9 && s.Rfchain.Standards.f0_hz <= 3.0e9)
       Rfchain.Standards.all)

(* --------------------------------------------------------------- Config *)

let test_config_roundtrip_nominal () =
  let c = Rfchain.Config.nominal in
  Alcotest.(check bool) "roundtrip" true
    (Rfchain.Config.equal c (Rfchain.Config.of_bits (Rfchain.Config.to_bits c)))

let test_config_field_access () =
  let c = Rfchain.Config.nominal in
  Alcotest.(check int) "read" c.Rfchain.Config.gm_q (Rfchain.Config.field c "gm_q");
  let c2 = Rfchain.Config.with_field c "gm_q" 17 in
  Alcotest.(check int) "write" 17 c2.Rfchain.Config.gm_q;
  Alcotest.(check int) "bool as int" 1 (Rfchain.Config.field c "fb_enable");
  Alcotest.check_raises "unknown field" (Invalid_argument "Config: unknown field nope") (fun () ->
      ignore (Rfchain.Config.field c "nope"))

let test_config_widths_cover_64 () =
  let total =
    List.fold_left (fun acc f -> acc + Rfchain.Config.field_width f) 0 Rfchain.Config.field_names
  in
  Alcotest.(check int) "fields cover all 64 bits" 64 total

let test_config_validate () =
  Alcotest.(check bool) "nominal valid" true
    (Result.is_ok (Rfchain.Config.validate Rfchain.Config.nominal))

let test_config_hamming () =
  let c = Rfchain.Config.nominal in
  Alcotest.(check int) "self distance" 0 (Rfchain.Config.hamming_distance c c);
  let c2 = Rfchain.Config.with_field c "gm_q" (c.Rfchain.Config.gm_q lxor 1) in
  Alcotest.(check int) "one bit" 1 (Rfchain.Config.hamming_distance c c2)

(* ---------------------------------------------------------------- Vglna *)

let test_vglna_gain_table () =
  check_close "code 0" 8.0 (Rfchain.Vglna.nominal_gain_db ~code:0);
  check_close "code 15" 38.0 (Rfchain.Vglna.nominal_gain_db ~code:15);
  Alcotest.(check int) "inverse" 9 (Rfchain.Vglna.code_for_gain_db 26.0)

let test_vglna_segments () =
  Alcotest.(check int) "weak signal, high gain" 14 (Rfchain.Vglna.segment_code ~p_dbm:(-70.0));
  Alcotest.(check int) "mid" 9 (Rfchain.Vglna.segment_code ~p_dbm:(-30.0));
  Alcotest.(check int) "strong signal, low gain" 3 (Rfchain.Vglna.segment_code ~p_dbm:(-5.0))

let test_vglna_amplifies () =
  let lna = Rfchain.Vglna.create (chip ()) ~fs:12e9 in
  let x = Sigkit.Waveform.tone_dbm ~p_dbm:(-40.0) ~freq:3e9 ~fs:12e9 4096 in
  let y = Rfchain.Vglna.run lna ~code:10 x in
  let gain_db =
    Sigkit.Decibel.db_of_amplitude_ratio (Sigkit.Waveform.rms y /. Sigkit.Waveform.rms x)
  in
  check_close ~eps:1.5 "realised gain near table" 28.0 gain_db

let test_vglna_nf_trend () =
  let lna = Rfchain.Vglna.create (chip ()) ~fs:12e9 in
  Alcotest.(check bool) "NF worsens at low gain" true
    (Rfchain.Vglna.noise_figure_db lna ~code:0 > Rfchain.Vglna.noise_figure_db lna ~code:15);
  Alcotest.(check bool) "IIP3 improves at low gain" true
    (Rfchain.Vglna.iip3_dbm lna ~code:0 > Rfchain.Vglna.iip3_dbm lna ~code:15)

let test_vglna_code_range () =
  let lna = Rfchain.Vglna.create (chip ()) ~fs:12e9 in
  Alcotest.check_raises "bad code" (Invalid_argument "Vglna: gain code out of range") (fun () ->
      ignore (Rfchain.Vglna.gain_db lna ~code:16))

(* ------------------------------------------------------------------ Sdm *)

let tuned_config rx =
  (* Ground-truth tuning helper for tests. *)
  let f0 = (Rfchain.Receiver.standard rx).Rfchain.Standards.f0_hz in
  let best = ref Rfchain.Config.nominal and best_err = ref infinity in
  for coarse = 0 to 255 do
    let cfg = { Rfchain.Config.nominal with cap_coarse = coarse } in
    let err =
      Float.abs (Rfchain.Sdm.tank_frequency (Rfchain.Receiver.sdm_of_config rx cfg) -. f0)
    in
    if err < !best_err then begin
      best := cfg;
      best_err := err
    end
  done;
  let coarse = !best.Rfchain.Config.cap_coarse in
  for fine = 0 to 255 do
    let cfg = { Rfchain.Config.nominal with cap_coarse = coarse; cap_fine = fine } in
    let err =
      Float.abs (Rfchain.Sdm.tank_frequency (Rfchain.Receiver.sdm_of_config rx cfg) -. f0)
    in
    if err < !best_err then begin
      best := cfg;
      best_err := err
    end
  done;
  let gm_q = ref 0 in
  for code = 0 to 63 do
    if not (Rfchain.Sdm.oscillates (Rfchain.Receiver.sdm_of_config rx { !best with gm_q = code }))
    then gm_q := code
  done;
  {
    !best with
    gm_q = !gm_q;
    loop_delay = Rfchain.Sdm.required_delay_code (Rfchain.Receiver.chip rx) ~fs:(Rfchain.Receiver.fs rx);
  }

let test_sdm_tank_monotone_in_caps () =
  let rx = Rfchain.Receiver.create (chip ()) std in
  let freq coarse =
    Rfchain.Sdm.tank_frequency
      (Rfchain.Receiver.sdm_of_config rx { Rfchain.Config.nominal with cap_coarse = coarse })
  in
  Alcotest.(check bool) "more capacitance, lower frequency" true
    (freq 0 > freq 64 && freq 64 > freq 192)

let test_sdm_tuning_range () =
  let rx = Rfchain.Receiver.create (chip ()) std in
  let f_max =
    Rfchain.Sdm.tank_frequency
      (Rfchain.Receiver.sdm_of_config rx
         { Rfchain.Config.nominal with cap_coarse = 0; cap_fine = 0 })
  in
  let f_min =
    Rfchain.Sdm.tank_frequency
      (Rfchain.Receiver.sdm_of_config rx
         { Rfchain.Config.nominal with cap_coarse = 255; cap_fine = 255 })
  in
  Alcotest.(check bool) "covers 1.5-3.0 GHz" true (f_min < 1.5e9 && f_max > 3.0e9)

let test_sdm_oscillation_threshold () =
  let rx = Rfchain.Receiver.create (chip ()) std in
  let sdm_at gm_q =
    Rfchain.Receiver.sdm_of_config rx { Rfchain.Config.nominal with gm_q }
  in
  Alcotest.(check bool) "max -Gm oscillates" true (Rfchain.Sdm.oscillates (sdm_at 63));
  Alcotest.(check bool) "min -Gm is damped" false (Rfchain.Sdm.oscillates (sdm_at 0))

let test_sdm_bitstream_output () =
  let rx = Rfchain.Receiver.create (chip ()) std in
  let cfg = tuned_config rx in
  let sdm = Rfchain.Receiver.sdm_of_config rx cfg in
  let fs = Rfchain.Receiver.fs rx in
  let input = Sigkit.Waveform.tone_dbm ~p_dbm:(-30.0) ~freq:3.02e9 ~fs 4096 in
  let amplified = Array.map (fun v -> v *. 20.0) input in
  let out = Rfchain.Sdm.run sdm amplified in
  Alcotest.(check bool) "clocked output is a bitstream" true
    (Array.for_all (fun v -> v = 1.0 || v = -1.0) out)

let test_sdm_noise_shaping () =
  (* The tuned modulator must clear 35 dB SNR; a 60-code cap offset must
     wreck it — the essence of the locking mechanism. *)
  let rx = Rfchain.Receiver.create (chip ()) std in
  let cfg = tuned_config rx in
  let bench = Metrics.Measure.create rx in
  let good = Metrics.Measure.snr_mod_db bench cfg in
  let detuned =
    Metrics.Measure.snr_mod_db bench
      { cfg with cap_coarse = min 255 (cfg.Rfchain.Config.cap_coarse + 60) }
  in
  Alcotest.(check bool) (Printf.sprintf "tuned SNR > 35 (got %.1f)" good) true (good > 35.0);
  Alcotest.(check bool) (Printf.sprintf "detuned SNR < 10 (got %.1f)" detuned) true (detuned < 10.0)

let test_sdm_buffer_mode_analog () =
  let rx = Rfchain.Receiver.create (chip ()) std in
  let cfg = { (tuned_config rx) with Rfchain.Config.comp_clock_enable = false; fb_enable = false } in
  let sdm = Rfchain.Receiver.sdm_of_config rx cfg in
  let fs = Rfchain.Receiver.fs rx in
  let input = Sigkit.Waveform.tone_dbm ~p_dbm:(-25.0) ~freq:3.02e9 ~fs 4096 in
  let out = Rfchain.Sdm.run sdm (Array.map (fun v -> v *. 20.0) input) in
  let analog = Array.exists (fun v -> Float.abs v <> 1.0 && Float.abs v > 1e-12) out in
  Alcotest.(check bool) "buffer mode passes analog values" true analog

let test_sdm_gmin_disable () =
  let rx = Rfchain.Receiver.create (chip ()) std in
  let cfg = { (tuned_config rx) with Rfchain.Config.gmin_enable = false } in
  let bench = Metrics.Measure.create rx in
  let snr = Metrics.Measure.snr_mod_db bench cfg in
  Alcotest.(check bool) (Printf.sprintf "no input, no signal (got %.1f)" snr) true (snr < 15.0)

let test_sdm_osc_matches_tank () =
  let rx = Rfchain.Receiver.create (chip ()) std in
  let cfg = { (tuned_config rx) with Rfchain.Config.gm_q = 63 } in
  let sdm = Rfchain.Receiver.sdm_of_config rx cfg in
  match Rfchain.Sdm.oscillation_frequency sdm ~n:8192 with
  | Some f -> check_close ~eps:2e6 "oscillation at tank frequency" (Rfchain.Sdm.tank_frequency sdm) f
  | None -> Alcotest.fail "must oscillate at gm_q 63"

(* ---------------------------------------------------------------- Mixer *)

let test_mixer_translates () =
  let fs = 12e9 and n = 4096 in
  let offset = 100e6 in
  let freq = Sigkit.Waveform.coherent_frequency ~freq:((fs /. 4.0) +. offset) ~fs ~n in
  let x = Sigkit.Waveform.tone ~amplitude:1.0 ~freq ~fs n in
  let i_ch, q_ch = Rfchain.Mixer.downconvert x in
  (* Complex baseband tone at +offset: spectrum of i + jq peaks there.
     The real input also carries an exactly equal-magnitude image at
     fs/2 - offset (the aliased negative-frequency component), so
     search only the channel's quarter-band — the global argmax between
     two equal bins is decided by last-bit FFT rounding. *)
  let re = Array.copy i_ch and im = Array.copy q_ch in
  Sigkit.Fft.forward re im;
  let mag = Sigkit.Fft.magnitude_squared re im in
  let peak = ref 0 in
  for k = 0 to n / 4 do
    if mag.(k) > mag.(!peak) then peak := k
  done;
  let f_peak = float_of_int !peak *. fs /. float_of_int n in
  check_close ~eps:(fs /. float_of_int n) "baseband offset" (freq -. (fs /. 4.0)) f_peak

let test_mixer_quadrature () =
  let x = Array.init 8 (fun i -> float_of_int (i + 1)) in
  let i_ch, q_ch = Rfchain.Mixer.downconvert x in
  Alcotest.(check (list (float 1e-9))) "I sequence" [ 1.; 0.; -3.; 0.; 5.; 0.; -7.; 0. ]
    (Array.to_list i_ch);
  Alcotest.(check (list (float 1e-9))) "Q sequence" [ 0.; -2.; 0.; 4.; 0.; -6.; 0.; 8. ]
    (Array.to_list q_ch)

(* ------------------------------------------------------------ Decimator *)

let test_decimator_bits () =
  let c = Rfchain.Decimator.default_config in
  Alcotest.(check int) "default ratio 64" 64 (Rfchain.Decimator.ratio c);
  for bits = 0 to 7 do
    Alcotest.(check int) "3-bit codec roundtrip" bits
      (Rfchain.Decimator.bits_of_config (Rfchain.Decimator.config_of_bits bits))
  done

let test_decimator_dc_gain () =
  let c = Rfchain.Decimator.default_config in
  let x = Array.make 8192 1.0 in
  let y = Rfchain.Decimator.decimate c x in
  Alcotest.(check int) "output length" 128 (Array.length y);
  (* Interior sample: the first outputs carry the CIC transient and the
     last the FIR edge. *)
  check_close ~eps:1e-6 "unity DC gain (steady state)" 1.0 y.(Array.length y / 2)

let test_decimator_passband () =
  let c = Rfchain.Decimator.default_config in
  let fs = 12e9 and n = 65536 in
  let freq = Sigkit.Waveform.coherent_frequency ~freq:20e6 ~fs ~n in
  let x = Sigkit.Waveform.tone ~amplitude:1.0 ~freq ~fs n in
  let y = Rfchain.Decimator.decimate c x in
  let steady = Array.sub y 64 (Array.length y - 64) in
  check_close ~eps:0.1 "in-band tone survives" (1.0 /. sqrt 2.0) (Sigkit.Waveform.rms steady)

let test_decimator_stopband () =
  let c = Rfchain.Decimator.default_config in
  let fs = 12e9 and n = 65536 in
  (* A tone just below an alias image of the output rate must be crushed. *)
  let freq = Sigkit.Waveform.coherent_frequency ~freq:(187.5e6 -. 20e6) ~fs ~n in
  let x = Sigkit.Waveform.tone ~amplitude:1.0 ~freq ~fs n in
  let y = Rfchain.Decimator.decimate c x in
  let steady = Array.sub y 64 (Array.length y - 64) in
  Alcotest.(check bool) "alias image suppressed > 30 dB" true
    (Sigkit.Waveform.rms steady < 0.02)

(* ------------------------------------------------------------- Receiver *)

let test_receiver_end_to_end () =
  let rx = Rfchain.Receiver.create (chip ()) std in
  let cfg = tuned_config rx in
  let fs = Rfchain.Receiver.fs rx in
  let n = 2048 * 64 in
  let f_in = Rfchain.Receiver.test_tone_frequency rx ~n in
  let input = Sigkit.Waveform.tone_dbm ~p_dbm:(-25.0) ~freq:f_in ~fs n in
  let res = Rfchain.Receiver.run rx ~analog:cfg ~input () in
  Alcotest.(check int) "mod output length" n (Array.length res.Rfchain.Receiver.mod_output);
  Alcotest.(check int) "baseband length" (n / 64) (Array.length res.Rfchain.Receiver.baseband_i);
  check_close "baseband rate" (fs /. 64.0) res.Rfchain.Receiver.fs_baseband;
  let snr =
    Metrics.Snr.of_baseband_iq ~n_fft:2048 ~fs:res.Rfchain.Receiver.fs_baseband
      ~f_signal:(f_in -. (fs /. 4.0))
      ~f_band:(Rfchain.Standards.band_hz std /. 2.0)
      (res.Rfchain.Receiver.baseband_i, res.Rfchain.Receiver.baseband_q)
  in
  Alcotest.(check bool) (Printf.sprintf "receiver SNR > 35 dB (got %.1f)" snr) true (snr > 35.0)

let test_receiver_slice () =
  let sliced = Rfchain.Receiver.slice_to_bit [| 0.3; -0.2; 0.0; -1.5 |] in
  Alcotest.(check (list (float 1e-9))) "slicing" [ 1.; -1.; 1.; -1. ] (Array.to_list sliced)

let test_receiver_deterministic () =
  let run () =
    let rx = Rfchain.Receiver.create (chip ()) std in
    let cfg = Rfchain.Config.nominal in
    let fs = Rfchain.Receiver.fs rx in
    let input = Sigkit.Waveform.tone_dbm ~p_dbm:(-25.0) ~freq:3.02e9 ~fs 4096 in
    (Rfchain.Receiver.run rx ~analog:cfg ~input ()).Rfchain.Receiver.mod_output
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let test_decimator_all_ratios () =
  List.iter
    (fun select ->
      let c = { Rfchain.Decimator.ratio_select = select; compensator = true } in
      let r = Rfchain.Decimator.ratio c in
      Alcotest.(check int) "ratio table" (16 lsl select) r;
      let y = Rfchain.Decimator.decimate c (Array.make (r * 64) 1.0) in
      Alcotest.(check int) "output length" 64 (Array.length y);
      Alcotest.(check (float 1e-6)) "unity DC gain" 1.0 y.(32))
    [ 0; 1; 2; 3 ]

(* ------------------------------------------------------ Workspace arena *)

(* The allocating chain, composed from the public per-stage wrappers
   exactly as [Receiver.run] was written before the arena refactor.
   Comparing it against [Receiver.run] is both the bit-identity check
   for every into-style variant and the aliasing guard: if two live
   stages shared a workspace slot, the arena chain's output would
   diverge from this one. *)
let reference_chain rx ~analog ?(digital = Rfchain.Decimator.default_config) ?(settle = 1024)
    ?(slice = true) ~input () =
  let applied = Rfchain.Receiver.applied_config rx analog in
  let n = Array.length input in
  let extended = Array.make (settle + n) 0.0 in
  for i = 0 to settle + n - 1 do
    extended.(i) <- input.((i + n - (settle mod n)) mod n)
  done;
  let extended =
    match Rfchain.Receiver.rf_fault rx with
    | None -> extended
    | Some f -> f extended
  in
  let vglna =
    Rfchain.Vglna.create (Rfchain.Receiver.chip rx) ~fs:(Rfchain.Receiver.fs rx)
  in
  let amplified = Rfchain.Vglna.run vglna ~code:applied.Rfchain.Config.vglna_gain extended in
  (* [sdm_of_config] applies the fabric hook itself, so pass the raw word. *)
  let sdm = Rfchain.Receiver.sdm_of_config rx analog in
  let mod_full = Rfchain.Sdm.run sdm amplified in
  let mod_output = Array.sub mod_full settle n in
  let bits = if slice then Rfchain.Receiver.slice_to_bit mod_output else mod_output in
  let i_ch, q_ch = Rfchain.Mixer.downconvert bits in
  let baseband_i, baseband_q = Rfchain.Decimator.run_iq digital (i_ch, q_ch) in
  (mod_output, baseband_i, baseband_q)

let arena_case_gen =
  QCheck.Gen.(
    let* seed = int_range 1 5000 in
    let* coarse = int_range 0 255 in
    let* gain = int_range 0 15 in
    let* gm_q = int_range 0 40 in
    let* slice = bool in
    let* fault = int_range 0 2 in
    return (seed, coarse, gain, gm_q, slice, fault))

let prop_arena_chain_identity =
  QCheck.Test.make ~name:"arena-backed Receiver.run equals the allocating stage chain"
    ~count:12
    (QCheck.make arena_case_gen ~print:(fun (s, c, g, q, sl, f) ->
         Printf.sprintf "seed=%d coarse=%d gain=%d gm_q=%d slice=%b fault=%d" s c g q sl f))
    (fun (seed, coarse, gain, gm_q, slice, fault) ->
      let rf_fault input =
        (* Deterministic burst-like perturbation, fresh output array —
           the contract inject.ml's hooks follow. *)
        Array.mapi (fun i x -> x +. (0.002 *. float_of_int (i land 7))) input
      in
      let fabric cfg =
        Rfchain.Config.of_bits (Int64.logxor (Rfchain.Config.to_bits cfg) 0x110L)
      in
      let c = chip ~seed () in
      let rx =
        match fault with
        | 0 -> Rfchain.Receiver.create c std
        | 1 -> Rfchain.Receiver.create ~rf_fault c std
        | _ -> Rfchain.Receiver.create ~fabric c std
      in
      let analog =
        { Rfchain.Config.nominal with cap_coarse = coarse; vglna_gain = gain; gm_q }
      in
      let fs = Rfchain.Receiver.fs rx in
      let n = 1024 and settle = 256 in
      let input = Sigkit.Waveform.tone_dbm ~p_dbm:(-25.0) ~freq:3.02e9 ~fs n in
      let res = Rfchain.Receiver.run rx ~analog ~settle ~slice ~input () in
      let m, bi, bq = reference_chain rx ~analog ~settle ~slice ~input () in
      res.Rfchain.Receiver.mod_output = m
      && res.Rfchain.Receiver.baseband_i = bi
      && res.Rfchain.Receiver.baseband_q = bq)

let test_arena_slots_distinct () =
  (* The chain's documented slot map (DESIGN §15): every stage that is
     live at the same time must hold a physically distinct scratch
     array, including the slots whose lengths coincide. *)
  let n = 1024 and settle = 256 in
  let total = settle + n in
  let ws = Sigkit.Workspace.get () in
  let live =
    [
      ("extended (6)", Sigkit.Workspace.arr ws ~slot:6 ~len:total);
      ("mod_full (7)", Sigkit.Workspace.arr ws ~slot:7 ~len:total);
      ("sdm comp noise (8)", Sigkit.Workspace.arr ws ~slot:8 ~len:total);
      ("sdm input noise (9)", Sigkit.Workspace.arr ws ~slot:9 ~len:total);
      ("mixer i (10)", Sigkit.Workspace.arr ws ~slot:10 ~len:n);
      ("mixer q (11)", Sigkit.Workspace.arr ws ~slot:11 ~len:n);
      ("vglna noise (13)", Sigkit.Workspace.arr ws ~slot:13 ~len:total);
    ]
  in
  List.iteri
    (fun i (ni, a) ->
      List.iteri
        (fun j (nj, b) ->
          if i < j && a == b then Alcotest.failf "slots alias: %s and %s" ni nj)
        live)
    live

let test_arena_reuse_across_evals () =
  let rx = Rfchain.Receiver.create (chip ()) std in
  let analog = Rfchain.Config.nominal in
  let fs = Rfchain.Receiver.fs rx in
  let input = Sigkit.Waveform.tone_dbm ~p_dbm:(-25.0) ~freq:3.02e9 ~fs 1024 in
  let eval () = ignore (Rfchain.Receiver.run rx ~analog ~input ()) in
  (* Two warm-up evals materialise every (slot, len) pair this chain
     needs; after that the arena must stop growing. *)
  eval ();
  eval ();
  let before = Sigkit.Workspace.allocations () in
  for _ = 1 to 4 do
    eval ()
  done;
  Alcotest.(check int) "no new scratch arrays across steady-state evals" before
    (Sigkit.Workspace.allocations ());
  (* And the steady-state eval must stay within the minor-words budget
     the bench gate enforces (~10k today; generous headroom here). *)
  let w0 = Gc.minor_words () in
  eval ();
  let dw = Gc.minor_words () -. w0 in
  if dw > 100_000.0 then Alcotest.failf "steady-state eval allocates %.0f minor words" dw

(* ------------------------------------------------------------ Properties *)

let prop_config_roundtrip =
  QCheck.Test.make ~name:"config codec is a bijection on int64" ~count:500 QCheck.int64
    (fun bits -> Rfchain.Config.to_bits (Rfchain.Config.of_bits bits) = bits)

let prop_config_with_field =
  QCheck.Test.make ~name:"with_field/field roundtrip" ~count:200
    QCheck.(pair (int_range 0 15) small_int)
    (fun (field_idx, v) ->
      let name = List.nth Rfchain.Config.field_names field_idx in
      let width = Rfchain.Config.field_width name in
      let v = v land ((1 lsl width) - 1) in
      let c = Rfchain.Config.with_field Rfchain.Config.nominal name v in
      Rfchain.Config.field c name = v)

let prop_mixer_energy =
  QCheck.Test.make ~name:"mixer conserves sample energy" ~count:50
    QCheck.(list_of_size (Gen.return 64) (float_range (-2.) 2.))
    (fun xs ->
      let x = Array.of_list xs in
      let i_ch, q_ch = Rfchain.Mixer.downconvert x in
      let e a = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 a in
      Float.abs (e x -. (e i_ch +. e q_ch)) < 1e-9)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "rfchain"
    [
      ( "standards",
        [
          Alcotest.test_case "fs and band" `Quick test_standards_fs;
          Alcotest.test_case "lookup" `Quick test_standards_lookup;
        ] );
      ( "config",
        [
          Alcotest.test_case "roundtrip" `Quick test_config_roundtrip_nominal;
          Alcotest.test_case "field access" `Quick test_config_field_access;
          Alcotest.test_case "64-bit coverage" `Quick test_config_widths_cover_64;
          Alcotest.test_case "validate" `Quick test_config_validate;
          Alcotest.test_case "hamming" `Quick test_config_hamming;
        ] );
      ( "vglna",
        [
          Alcotest.test_case "gain table" `Quick test_vglna_gain_table;
          Alcotest.test_case "segments" `Quick test_vglna_segments;
          Alcotest.test_case "amplifies" `Quick test_vglna_amplifies;
          Alcotest.test_case "NF/IIP3 trends" `Quick test_vglna_nf_trend;
          Alcotest.test_case "code range" `Quick test_vglna_code_range;
        ] );
      ( "sdm",
        [
          Alcotest.test_case "tank monotone in caps" `Quick test_sdm_tank_monotone_in_caps;
          Alcotest.test_case "tuning range" `Quick test_sdm_tuning_range;
          Alcotest.test_case "oscillation threshold" `Quick test_sdm_oscillation_threshold;
          Alcotest.test_case "bitstream output" `Quick test_sdm_bitstream_output;
          Alcotest.test_case "noise shaping" `Slow test_sdm_noise_shaping;
          Alcotest.test_case "buffer mode analog" `Quick test_sdm_buffer_mode_analog;
          Alcotest.test_case "gmin disable" `Quick test_sdm_gmin_disable;
          Alcotest.test_case "oscillation matches tank" `Quick test_sdm_osc_matches_tank;
        ] );
      ( "mixer",
        [
          Alcotest.test_case "translation" `Quick test_mixer_translates;
          Alcotest.test_case "quadrature sequences" `Quick test_mixer_quadrature;
        ] );
      ( "decimator",
        [
          Alcotest.test_case "3-bit codec" `Quick test_decimator_bits;
          Alcotest.test_case "DC gain" `Quick test_decimator_dc_gain;
          Alcotest.test_case "all ratios" `Quick test_decimator_all_ratios;
          Alcotest.test_case "passband" `Quick test_decimator_passband;
          Alcotest.test_case "stopband" `Quick test_decimator_stopband;
        ] );
      ( "receiver",
        [
          Alcotest.test_case "end to end" `Slow test_receiver_end_to_end;
          Alcotest.test_case "slicer" `Quick test_receiver_slice;
          Alcotest.test_case "deterministic" `Quick test_receiver_deterministic;
        ] );
      ( "arena",
        Alcotest.test_case "slot map is alias-free" `Quick test_arena_slots_distinct
        :: Alcotest.test_case "scratch reuse across evals" `Quick test_arena_reuse_across_evals
        :: qcheck [ prop_arena_chain_identity ] );
      ("properties", qcheck [ prop_config_roundtrip; prop_config_with_field; prop_mixer_energy ]);
    ]
