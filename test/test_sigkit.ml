(* Unit and property tests for the DSP substrate. *)

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_close ?(eps = 1e-9) msg expected actual =
  if not (close ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Sigkit.Rng.create 1 and b = Sigkit.Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sigkit.Rng.bits64 a) (Sigkit.Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Sigkit.Rng.create 1 and b = Sigkit.Rng.create 2 in
  Alcotest.(check bool) "different seeds" true (Sigkit.Rng.bits64 a <> Sigkit.Rng.bits64 b)

let test_rng_split_independent () =
  let root = Sigkit.Rng.create 7 in
  let a = Sigkit.Rng.split root "a" and b = Sigkit.Rng.split root "b" in
  Alcotest.(check bool) "split streams differ" true
    (Sigkit.Rng.bits64 a <> Sigkit.Rng.bits64 b);
  (* Splitting must not disturb the parent stream. *)
  let r1 = Sigkit.Rng.create 7 in
  let _ = Sigkit.Rng.split r1 "x" in
  let r2 = Sigkit.Rng.create 7 in
  Alcotest.(check int64) "parent undisturbed" (Sigkit.Rng.bits64 r2) (Sigkit.Rng.bits64 r1)

let test_rng_float_range () =
  let rng = Sigkit.Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Sigkit.Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of [0,1): %g" x
  done

let test_rng_gaussian_moments () =
  let rng = Sigkit.Rng.create 11 in
  let n = 100_000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let x = Sigkit.Rng.gaussian rng in
    sum := !sum +. x;
    sum2 := !sum2 +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  check_close ~eps:0.03 "gaussian mean" 0.0 mean;
  check_close ~eps:0.03 "gaussian variance" 1.0 var

(* Golden values captured from the seed generator: the Box-Muller spare
   moved from a [float option] to unboxed mutable fields, and bulk
   [gaussian_fill] feeds the fused modulator loop — neither may disturb
   the draw sequence, or every noise-dependent figure shifts. *)
let gaussian_golden =
  [|
    -1.1387307213579787; 0.30667265318413039; 1.1076895543133627;
    -0.10771681680941055; -1.1846331348709049; 0.14242453916414105;
    -0.2935150602538143; -0.84920439036721562;
  |]

let test_rng_gaussian_golden () =
  let rng = Sigkit.Rng.create 12345 in
  Array.iteri
    (fun i expected ->
      let got = Sigkit.Rng.gaussian rng in
      if got <> expected then
        Alcotest.failf "gaussian stream drifted at draw %d: expected %.17g, got %.17g" i
          expected got)
    gaussian_golden;
  let rng' = Sigkit.Rng.create 12345 in
  let buf = Array.make 8 0.0 in
  Sigkit.Rng.gaussian_fill rng' buf ~n:8;
  Array.iteri
    (fun i expected ->
      if buf.(i) <> expected then
        Alcotest.failf "gaussian_fill diverges from gaussian at %d" i)
    gaussian_golden

let test_rng_int_range () =
  let rng = Sigkit.Rng.create 5 in
  let seen = Array.make 6 false in
  for _ = 1 to 1000 do
    let v = Sigkit.Rng.int_range rng 2 7 in
    if v < 2 || v > 7 then Alcotest.failf "int_range out of bounds: %d" v;
    seen.(v - 2) <- true
  done;
  Alcotest.(check bool) "all values reached" true (Array.for_all Fun.id seen)

(* -------------------------------------------------------------- Decibel *)

let test_db_roundtrip () =
  List.iter
    (fun db ->
      check_close ~eps:1e-9 "db roundtrip" db
        (Sigkit.Decibel.db_of_power_ratio (Sigkit.Decibel.power_ratio_of_db db)))
    [ -120.0; -3.0; 0.0; 10.0; 96.0 ]

let test_dbm_amplitude () =
  (* 0 dBm into 50 ohm is a 316.2 mV peak sinusoid. *)
  check_close ~eps:1e-4 "0 dBm amplitude" 0.31623 (Sigkit.Decibel.amplitude_of_dbm 0.0);
  List.iter
    (fun dbm ->
      check_close ~eps:1e-9 "dbm roundtrip" dbm
        (Sigkit.Decibel.dbm_of_amplitude (Sigkit.Decibel.amplitude_of_dbm dbm)))
    [ -85.0; -25.0; 0.0; 10.0 ]

let test_db_negative_ratio () =
  Alcotest.(check bool) "log of 0 is -inf" true
    (Sigkit.Decibel.db_of_power_ratio 0.0 = neg_infinity);
  Alcotest.(check bool) "log of negative is -inf" true
    (Sigkit.Decibel.db_of_power_ratio (-1.0) = neg_infinity)

(* --------------------------------------------------------------- Window *)

let test_window_gains () =
  List.iter
    (fun (kind, gain) ->
      let w = Sigkit.Window.coefficients kind 4096 in
      let mean = Array.fold_left ( +. ) 0.0 w /. 4096.0 in
      check_close ~eps:1e-3 "coherent gain" gain mean)
    [
      (Sigkit.Window.Rectangular, 1.0);
      (Sigkit.Window.Hann, 0.5);
      (Sigkit.Window.Hamming, 0.54);
      (Sigkit.Window.Blackman_harris, 0.35875);
    ]

let test_window_apply_length () =
  let x = Array.make 128 1.0 in
  let y = Sigkit.Window.apply Sigkit.Window.Hann x in
  Alcotest.(check int) "length preserved" 128 (Array.length y);
  check_close ~eps:1e-12 "edge sample is zero" 0.0 y.(0)

(* ------------------------------------------------------------------ Fft *)

let test_fft_pow2 () =
  Alcotest.(check bool) "1024 is pow2" true (Sigkit.Fft.is_pow2 1024);
  Alcotest.(check bool) "1000 is not" false (Sigkit.Fft.is_pow2 1000);
  Alcotest.(check int) "next pow2" 1024 (Sigkit.Fft.next_pow2 1000)

let test_fft_impulse () =
  (* The transform of a unit impulse is flat. *)
  let n = 64 in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  re.(0) <- 1.0;
  Sigkit.Fft.forward re im;
  Array.iter (fun v -> check_close ~eps:1e-12 "flat re" 1.0 v) re;
  Array.iter (fun v -> check_close ~eps:1e-12 "flat im" 0.0 v) im

let test_fft_roundtrip () =
  let rng = Sigkit.Rng.create 99 in
  let n = 256 in
  let x = Array.init n (fun _ -> Sigkit.Rng.gaussian rng) in
  let re, im = Sigkit.Fft.of_real x in
  Sigkit.Fft.forward re im;
  Sigkit.Fft.inverse re im;
  Array.iteri (fun i v -> check_close ~eps:1e-9 "roundtrip" x.(i) v) re

let test_fft_parseval () =
  let rng = Sigkit.Rng.create 17 in
  let n = 512 in
  let x = Array.init n (fun _ -> Sigkit.Rng.gaussian rng) in
  let time_energy = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x in
  let re, im = Sigkit.Fft.of_real x in
  Sigkit.Fft.forward re im;
  let freq_energy =
    Array.fold_left ( +. ) 0.0 (Sigkit.Fft.magnitude_squared re im) /. float_of_int n
  in
  check_close ~eps:1e-6 "parseval" time_energy freq_energy

let test_fft_sine_bin () =
  let n = 1024 and k = 37 in
  let x = Array.init n (fun i -> sin (2.0 *. Float.pi *. float_of_int (k * i) /. float_of_int n)) in
  let re, im = Sigkit.Fft.of_real x in
  Sigkit.Fft.forward re im;
  let mag = Sigkit.Fft.magnitude_squared re im in
  let peak = ref 0 in
  for i = 1 to (n / 2) - 1 do
    if mag.(i) > mag.(!peak) then peak := i
  done;
  Alcotest.(check int) "sine lands on its bin" k !peak

let test_fft_rejects_bad_length () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "length mismatch" true
    (raises (fun () -> Sigkit.Fft.forward (Array.make 8 0.0) (Array.make 4 0.0)));
  Alcotest.(check bool) "non-pow2" true
    (raises (fun () -> Sigkit.Fft.forward (Array.make 12 0.0) (Array.make 12 0.0)))

(* ------------------------------------------------------- Plan/Workspace *)

(* The pre-plan transform, kept verbatim as a reference oracle: in-place
   Cooley-Tukey with a per-butterfly twiddle recurrence.  The planned
   paths (complex and packed-real) are checked against it. *)
let reference_forward re im =
  let n = Array.length re in
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let angle = -2.0 *. Float.pi /. float_of_int !len in
    let wr = cos angle and wi = sin angle in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1.0 and ci = ref 0.0 in
      for k = !i to !i + half - 1 do
        let tr = (!cr *. re.(k + half)) -. (!ci *. im.(k + half)) in
        let ti = (!cr *. im.(k + half)) +. (!ci *. re.(k + half)) in
        re.(k + half) <- re.(k) -. tr;
        im.(k + half) <- im.(k) -. ti;
        re.(k) <- re.(k) +. tr;
        im.(k) <- im.(k) +. ti;
        let nr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := nr
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let prop_real_fft_matches_reference =
  QCheck.Test.make ~name:"planned real FFT matches reference transform" ~count:60
    QCheck.(pair (int_range 4 13) small_int)
    (fun (log2n, seed) ->
      let n = 1 lsl log2n in
      let rng = Sigkit.Rng.create (7919 + seed) in
      let x = Array.init n (fun _ -> Sigkit.Rng.gaussian rng) in
      let rre = Array.copy x and rim = Array.make n 0.0 in
      reference_forward rre rim;
      let re, im = Sigkit.Fft.real_forward x in
      (* Relative to the spectrum scale: the recurrence itself drifts by
         a few ulps per stage, so compare against the largest bin. *)
      let scale = ref 1.0 in
      for k = 0 to n / 2 do
        scale := Float.max !scale (Float.max (Float.abs rre.(k)) (Float.abs rim.(k)))
      done;
      let tol = 1e-9 *. !scale in
      let ok = ref true in
      for k = 0 to n / 2 do
        if Float.abs (re.(k) -. rre.(k)) > tol || Float.abs (im.(k) -. rim.(k)) > tol
        then ok := false
      done;
      !ok)

let test_plan_memoized () =
  Alcotest.(check bool) "complex plan is memoized" true
    (Sigkit.Plan.get 256 == Sigkit.Plan.get 256);
  Alcotest.(check bool) "real plan is memoized" true
    (Sigkit.Plan.real_get 256 == Sigkit.Plan.real_get 256);
  let before = Sigkit.Plan.build_count () in
  ignore (Sigkit.Plan.get 256);
  ignore (Sigkit.Plan.real_get 256);
  Alcotest.(check int) "hits build nothing" before (Sigkit.Plan.build_count ())

let test_window_table_memoized () =
  let a = Sigkit.Window.table Sigkit.Window.Hann 512 in
  let b = Sigkit.Window.table Sigkit.Window.Hann 512 in
  Alcotest.(check bool) "same physical array" true (a == b);
  let c = Sigkit.Window.coefficients Sigkit.Window.Hann 512 in
  Alcotest.(check bool) "coefficients returns a private copy" true (not (c == a));
  Array.iteri (fun i v -> check_close ~eps:0.0 "copy equals table" a.(i) v) c

let test_workspace_reuse () =
  let w = Sigkit.Workspace.get () in
  let a = Sigkit.Workspace.arr w ~slot:15 ~len:64 in
  let b = Sigkit.Workspace.arr w ~slot:15 ~len:64 in
  Alcotest.(check bool) "same scratch array per (slot, len)" true (a == b);
  let c = Sigkit.Workspace.arr w ~slot:15 ~len:128 in
  Alcotest.(check bool) "length is part of the key" true (not (c == a))

(* Two domains running the workspace-backed measurement path
   concurrently must reproduce the sequential results bit for bit:
   each domain owns a private DLS arena, so there is no sharing to
   race on. *)
let test_workspace_domains () =
  let fs = 1e6 and n = 2048 in
  let psd seed =
    let rng = Sigkit.Rng.create seed in
    let x = Array.init n (fun _ -> Sigkit.Rng.gaussian rng) in
    (Sigkit.Spectrum.periodogram ~fs x).Sigkit.Spectrum.power
  in
  let seq1 = psd 101 and seq2 = psd 202 in
  let d1 = Domain.spawn (fun () -> psd 101) in
  let d2 = Domain.spawn (fun () -> psd 202) in
  let con1 = Domain.join d1 and con2 = Domain.join d2 in
  Alcotest.(check bool) "domain 1 bit-identical to sequential" true (seq1 = con1);
  Alcotest.(check bool) "domain 2 bit-identical to sequential" true (seq2 = con2)

(* ------------------------------------------------------------- Spectrum *)

let test_spectrum_tone_power () =
  let fs = 1e6 and n = 4096 in
  let freq = Sigkit.Waveform.coherent_frequency ~freq:100e3 ~fs ~n in
  let x = Sigkit.Waveform.tone ~amplitude:1.0 ~freq ~fs n in
  let spec = Sigkit.Spectrum.periodogram ~fs x in
  let tone = Sigkit.Spectrum.tone_power spec ~freq in
  let total = Sigkit.Spectrum.band_power spec ~f_lo:0.0 ~f_hi:(fs /. 2.0) in
  Alcotest.(check bool) "tone carries nearly all power" true (tone /. total > 0.999)

let test_spectrum_band_split () =
  let fs = 1e6 and n = 4096 in
  let f1 = Sigkit.Waveform.coherent_frequency ~freq:100e3 ~fs ~n in
  let f2 = Sigkit.Waveform.coherent_frequency ~freq:400e3 ~fs ~n in
  let x =
    Sigkit.Waveform.add
      (Sigkit.Waveform.tone ~amplitude:1.0 ~freq:f1 ~fs n)
      (Sigkit.Waveform.tone ~amplitude:0.5 ~freq:f2 ~fs n)
  in
  let spec = Sigkit.Spectrum.periodogram ~fs x in
  let p1 = Sigkit.Spectrum.band_power spec ~f_lo:50e3 ~f_hi:150e3 in
  let p2 = Sigkit.Spectrum.band_power spec ~f_lo:350e3 ~f_hi:450e3 in
  check_close ~eps:0.05 "4:1 power split" 4.0 (p1 /. p2)

let test_spectrum_exclusion () =
  let fs = 1e6 and n = 4096 in
  let freq = Sigkit.Waveform.coherent_frequency ~freq:100e3 ~fs ~n in
  let x = Sigkit.Waveform.tone ~amplitude:1.0 ~freq ~fs n in
  let spec = Sigkit.Spectrum.periodogram ~fs x in
  let bins = Sigkit.Spectrum.tone_bins spec ~freq in
  let residual =
    Sigkit.Spectrum.band_power_excluding spec ~f_lo:0.0 ~f_hi:(fs /. 2.0) ~exclude:[ bins ]
  in
  let tone = Sigkit.Spectrum.tone_power spec ~freq in
  Alcotest.(check bool) "exclusion removes the tone" true (residual < tone /. 1000.0)

let test_spectrum_peak () =
  let fs = 1e6 and n = 1024 in
  let freq = Sigkit.Waveform.coherent_frequency ~freq:200e3 ~fs ~n in
  let x = Sigkit.Waveform.tone ~amplitude:1.0 ~freq ~fs n in
  let spec = Sigkit.Spectrum.periodogram ~fs x in
  let bin, _ = Sigkit.Spectrum.peak_in_band spec ~f_lo:0.0 ~f_hi:(fs /. 2.0) in
  check_close ~eps:(fs /. float_of_int n) "peak at tone" freq (Sigkit.Spectrum.freq_of_bin spec bin)

(* ------------------------------------------------------------- Waveform *)

let test_waveform_rms () =
  let fs = 1e6 and n = 1000 in
  let x = Sigkit.Waveform.tone ~amplitude:2.0 ~freq:10e3 ~fs n in
  check_close ~eps:0.01 "sine rms" (2.0 /. sqrt 2.0) (Sigkit.Waveform.rms x)

let test_waveform_two_tone () =
  let fs = 1e6 in
  let x = Sigkit.Waveform.two_tone_dbm ~p_dbm:0.0 ~f1:50e3 ~f2:60e3 ~fs 4096 in
  let single = Sigkit.Waveform.tone_dbm ~p_dbm:0.0 ~freq:50e3 ~fs 4096 in
  (* Two equal tones carry twice the power of one. *)
  let p x = Sigkit.Waveform.rms x ** 2.0 in
  check_close ~eps:0.05 "two-tone power" 2.0 (p x /. p single)

let test_coherent_frequency () =
  let f = Sigkit.Waveform.coherent_frequency ~freq:100e3 ~fs:1e6 ~n:1024 in
  let k = f *. 1024.0 /. 1e6 in
  check_close ~eps:1e-9 "integer bin" (Float.round k) k;
  Alcotest.(check bool) "odd bin" true (int_of_float k mod 2 = 1)

(* ------------------------------------------------------------ Properties *)

let prop_fft_linearity =
  QCheck.Test.make ~name:"fft is linear" ~count:50
    QCheck.(pair (list_of_size (Gen.return 64) (float_range (-10.) 10.)) (float_range (-5.) 5.))
    (fun (xs, k) ->
      let x = Array.of_list xs in
      let n = Array.length x in
      n = 64
      && begin
           let re1, im1 = Sigkit.Fft.of_real x in
           Sigkit.Fft.forward re1 im1;
           let scaled = Array.map (fun v -> k *. v) x in
           let re2, im2 = Sigkit.Fft.of_real scaled in
           Sigkit.Fft.forward re2 im2;
           Array.for_all2 (fun a b -> Float.abs ((k *. a) -. b) < 1e-6 *. (1.0 +. Float.abs b)) re1 re2
         end)

let prop_db_monotonic =
  QCheck.Test.make ~name:"db_of_power_ratio is monotonic" ~count:200
    QCheck.(pair (float_range 1e-6 1e6) (float_range 1e-6 1e6))
    (fun (a, b) ->
      let da = Sigkit.Decibel.db_of_power_ratio a and db = Sigkit.Decibel.db_of_power_ratio b in
      (a < b && da < db) || (a > b && da > db) || a = b)

let prop_rng_int_range_bounds =
  QCheck.Test.make ~name:"int_range stays in bounds" ~count:500
    QCheck.(pair small_int (pair (int_range (-100) 100) (int_range 0 100)))
    (fun (seed, (lo, span)) ->
      let rng = Sigkit.Rng.create seed in
      let v = Sigkit.Rng.int_range rng lo (lo + span) in
      v >= lo && v <= lo + span)

(* The inlined gaussian_fill loop (unboxed bytes-cell state) must draw
   exactly the sequence repeated [gaussian] calls produce, for every
   parity of [n] and every spare-cache state at entry — and leave the
   generator positioned so the streams stay identical afterwards. *)
let prop_gaussian_fill_identity =
  QCheck.Test.make ~name:"gaussian_fill = n x gaussian (any n, any spare state)" ~count:200
    QCheck.(pair small_int (pair (int_range 0 65) (int_range 0 3)))
    (fun (seed, (n, pre_draws)) ->
      let a = Sigkit.Rng.create seed and b = Sigkit.Rng.create seed in
      for _ = 1 to pre_draws do
        ignore (Sigkit.Rng.gaussian a);
        ignore (Sigkit.Rng.gaussian b)
      done;
      let buf = Array.make (max 1 n) 0.0 in
      Sigkit.Rng.gaussian_fill a buf ~n;
      let same = ref true in
      for i = 0 to n - 1 do
        if buf.(i) <> Sigkit.Rng.gaussian b then same := false
      done;
      (* Continuation: the spare hand-off at the end of the fill. *)
      for _ = 1 to 3 do
        if Sigkit.Rng.gaussian a <> Sigkit.Rng.gaussian b then same := false
      done;
      !same)

let test_gaussian_fill_no_alloc () =
  let rng = Sigkit.Rng.create 7 in
  let buf = Array.make 512 0.0 in
  Sigkit.Rng.gaussian_fill rng buf ~n:512;
  let w0 = Gc.minor_words () in
  Sigkit.Rng.gaussian_fill rng buf ~n:512;
  let dw = Gc.minor_words () -. w0 in
  (* The whole point of the bytes-cell state: a batch draw allocates
     nothing (small slack for the Gc.minor_words probe itself). *)
  if dw > 64.0 then Alcotest.failf "gaussian_fill allocated %.0f minor words" dw

let prop_window_bounded =
  QCheck.Test.make ~name:"window coefficients bounded" ~count:50
    QCheck.(int_range 4 512)
    (fun n ->
      List.for_all
        (fun kind ->
          Array.for_all
            (fun w -> w >= -0.01 && w <= 1.01)
            (Sigkit.Window.coefficients kind n))
        [ Sigkit.Window.Rectangular; Sigkit.Window.Hann; Sigkit.Window.Hamming;
          Sigkit.Window.Blackman_harris ])

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sigkit"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "gaussian golden stream" `Quick test_rng_gaussian_golden;
          Alcotest.test_case "gaussian_fill alloc-free" `Quick test_gaussian_fill_no_alloc;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
        ] );
      ( "decibel",
        [
          Alcotest.test_case "db roundtrip" `Quick test_db_roundtrip;
          Alcotest.test_case "dbm amplitude" `Quick test_dbm_amplitude;
          Alcotest.test_case "degenerate ratios" `Quick test_db_negative_ratio;
        ] );
      ( "window",
        [
          Alcotest.test_case "coherent gains" `Quick test_window_gains;
          Alcotest.test_case "apply" `Quick test_window_apply_length;
        ] );
      ( "fft",
        [
          Alcotest.test_case "pow2 helpers" `Quick test_fft_pow2;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "parseval" `Quick test_fft_parseval;
          Alcotest.test_case "sine bin" `Quick test_fft_sine_bin;
          Alcotest.test_case "bad input" `Quick test_fft_rejects_bad_length;
        ] );
      ( "plan",
        [
          Alcotest.test_case "plan memoization" `Quick test_plan_memoized;
          Alcotest.test_case "window table memoization" `Quick test_window_table_memoized;
          Alcotest.test_case "workspace reuse" `Quick test_workspace_reuse;
          Alcotest.test_case "workspace across domains" `Quick test_workspace_domains;
        ] );
      ( "spectrum",
        [
          Alcotest.test_case "tone power" `Quick test_spectrum_tone_power;
          Alcotest.test_case "band split" `Quick test_spectrum_band_split;
          Alcotest.test_case "exclusion" `Quick test_spectrum_exclusion;
          Alcotest.test_case "peak search" `Quick test_spectrum_peak;
        ] );
      ( "waveform",
        [
          Alcotest.test_case "rms" `Quick test_waveform_rms;
          Alcotest.test_case "two-tone power" `Quick test_waveform_two_tone;
          Alcotest.test_case "coherent frequency" `Quick test_coherent_frequency;
        ] );
      ( "properties",
        qcheck
          [ prop_fft_linearity; prop_real_fft_matches_reference; prop_db_monotonic;
            prop_rng_int_range_bounds; prop_window_bounded;
            prop_gaussian_fill_identity ] );
    ]
