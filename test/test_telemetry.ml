(* Tests for the telemetry subsystem: span nesting and self-time
   attribution, counter/histogram registry semantics, exporter
   well-formedness (we parse what we emit), the disabled-mode no-op
   guarantee, and counter determinism across same-seed runs. *)

(* ------------------------------------------------------- mini JSON *)

(* A tiny recursive-descent JSON reader, just enough to verify that the
   Chrome-trace and JSONL exporters emit well-formed JSON without
   pulling in a JSON dependency. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_literal lit value =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then begin
      pos := !pos + String.length lit;
      value
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "bad \\u escape";
          let hex = String.sub s !pos 4 in
          (try Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex) land 0xFF))
           with _ -> fail "bad \\u escape");
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> parse_literal "true" (Bool true)
    | Some 'f' -> parse_literal "false" (Bool false)
    | Some 'n' -> parse_literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ----------------------------------------------------------- spans *)

(* Deterministic busy work so spans have a measurable, positive
   duration without sleeping. *)
let burn () =
  let acc = ref 0.0 in
  for i = 1 to 20_000 do
    acc := !acc +. sin (float_of_int i)
  done;
  ignore (Sys.opaque_identity !acc)

let find_agg name =
  List.find_opt (fun a -> a.Telemetry.Span.agg_name = name) (Telemetry.Span.aggregates ())

let test_span_nesting_self_time () =
  Telemetry.Export.reset_all ();
  Telemetry.Control.with_enabled true (fun () ->
      Telemetry.Span.with_ ~name:"outer" (fun () ->
          burn ();
          Telemetry.Span.with_ ~name:"child" burn;
          Telemetry.Span.with_ ~name:"child" burn));
  let outer = Option.get (find_agg "outer") in
  let child = Option.get (find_agg "child") in
  Alcotest.(check int) "outer calls" 1 outer.Telemetry.Span.agg_calls;
  Alcotest.(check int) "child calls" 2 child.Telemetry.Span.agg_calls;
  let open Int64 in
  if compare outer.Telemetry.Span.agg_total_ns child.Telemetry.Span.agg_total_ns < 0 then
    Alcotest.fail "outer total must cover children";
  if compare outer.Telemetry.Span.agg_self_ns 0L < 0 then Alcotest.fail "negative self time";
  (* Self-time attribution: outer self = outer total minus the time in
     its (only) children. *)
  let expected_self = sub outer.Telemetry.Span.agg_total_ns child.Telemetry.Span.agg_total_ns in
  Alcotest.(check int64) "outer self excludes children" expected_self
    outer.Telemetry.Span.agg_self_ns;
  (* Events: children complete first, depth tracks nesting. *)
  (match Telemetry.Span.events () with
  | [ e1; e2; e3 ] ->
    Alcotest.(check string) "first completion" "child" e1.Telemetry.Span.ev_name;
    Alcotest.(check int) "child depth" 1 e1.Telemetry.Span.ev_depth;
    Alcotest.(check string) "last completion" "outer" e3.Telemetry.Span.ev_name;
    Alcotest.(check int) "outer depth" 0 e3.Telemetry.Span.ev_depth;
    Alcotest.(check int) "middle depth" 1 e2.Telemetry.Span.ev_depth
  | events -> Alcotest.failf "expected 3 events, got %d" (List.length events));
  Telemetry.Export.reset_all ()

let test_span_exception_safe () =
  Telemetry.Export.reset_all ();
  Telemetry.Control.with_enabled true (fun () ->
      match Telemetry.Span.with_ ~name:"boom" (fun () -> failwith "inner") with
      | _ -> Alcotest.fail "expected the exception to propagate"
      | exception Failure m -> Alcotest.(check string) "exception carried" "inner" m);
  (match find_agg "boom" with
  | Some a -> Alcotest.(check int) "raising span still recorded" 1 a.Telemetry.Span.agg_calls
  | None -> Alcotest.fail "raising span lost");
  Telemetry.Export.reset_all ()

let test_span_disabled_noop () =
  Telemetry.Export.reset_all ();
  Telemetry.Control.set_enabled false;
  let r = Telemetry.Span.with_ ~name:"ghost" (fun () -> 17) in
  Alcotest.(check int) "value passes through" 17 r;
  Alcotest.(check int) "no events recorded" 0 (List.length (Telemetry.Span.events ()));
  Alcotest.(check bool) "no aggregate recorded" true (find_agg "ghost" = None);
  (* Exceptions still propagate untouched when disabled. *)
  (match Telemetry.Span.with_ ~name:"ghost" (fun () -> raise Exit) with
  | () -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  Alcotest.(check int) "still no events" 0 (List.length (Telemetry.Span.events ()))

(* ---------------------------------------------- counters/histograms *)

let test_counter_registry () =
  Telemetry.Export.reset_all ();
  let a = Telemetry.Counter.make "test.alpha" in
  let a' = Telemetry.Counter.make "test.alpha" in
  Telemetry.Counter.incr a;
  Telemetry.Counter.add a' 4;
  Alcotest.(check int) "make is idempotent (same cell)" 5 (Telemetry.Counter.value a);
  (match Telemetry.Counter.find "test.alpha" with
  | Some c -> Alcotest.(check int) "find sees the value" 5 (Telemetry.Counter.value c)
  | None -> Alcotest.fail "registered counter not found");
  Alcotest.(check bool) "find does not create" true (Telemetry.Counter.find "test.absent" = None);
  let snap = Telemetry.Counter.snapshot () in
  Alcotest.(check (option int)) "snapshot carries the value" (Some 5)
    (List.assoc_opt "test.alpha" snap);
  let sorted = List.sort (fun (x, _) (y, _) -> compare x y) snap in
  Alcotest.(check bool) "snapshot is name-sorted" true (snap = sorted);
  Telemetry.Counter.reset_all ();
  Alcotest.(check int) "reset_all zeroes" 0 (Telemetry.Counter.value a);
  Alcotest.(check bool) "registration survives reset" true
    (List.mem_assoc "test.alpha" (Telemetry.Counter.snapshot ()))

let test_histogram_observe () =
  Telemetry.Export.reset_all ();
  let h = Telemetry.Histogram.make "test.hist" in
  List.iter (Telemetry.Histogram.observe h) [ 1.0; 2.0; 4.0; 8.0; 1000.0 ];
  Alcotest.(check int) "count" 5 (Telemetry.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 1015.0 (Telemetry.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Telemetry.Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 1000.0 (Telemetry.Histogram.max_value h);
  let p50 = Telemetry.Histogram.quantile h 0.5 in
  if p50 < 1.0 || p50 > 1000.0 then Alcotest.failf "p50 out of [min,max]: %g" p50;
  (* Log-bucket quantile error is bounded by the 2^(1/4) bucket ratio:
     the true median is 4. *)
  if p50 < 3.0 || p50 > 5.5 then Alcotest.failf "p50 far from true median 4: %g" p50;
  (* A NaN observation is counted but cannot poison the quantiles. *)
  Telemetry.Histogram.observe h Float.nan;
  Alcotest.(check int) "nan counted" 6 (Telemetry.Histogram.count h);
  let p99 = Telemetry.Histogram.quantile h 0.99 in
  if Float.is_nan p99 then Alcotest.fail "nan leaked into quantile";
  Telemetry.Histogram.reset_all ();
  Alcotest.(check int) "reset_all empties" 0 (Telemetry.Histogram.count h)

(* -------------------------------------------------------- exporters *)

let populate_sample_telemetry () =
  Telemetry.Export.reset_all ();
  let c = Telemetry.Counter.make "test.export_counter" in
  Telemetry.Counter.add c 3;
  let h = Telemetry.Histogram.make "test.export_hist" in
  Telemetry.Histogram.observe h 42.0;
  Telemetry.Control.with_enabled true (fun () ->
      Telemetry.Span.with_ ~name:"export outer \"quoted\"" (fun () ->
          burn ();
          Telemetry.Span.with_ ~name:"export child" ~attrs:[ ("k", "v\nw") ] burn))

let test_chrome_trace_well_formed () =
  populate_sample_telemetry ();
  let parsed = parse_json (Telemetry.Export.chrome_trace_string ()) in
  (match member "displayTimeUnit" parsed with
  | Some (Str "ms") -> ()
  | _ -> Alcotest.fail "displayTimeUnit missing");
  let events =
    match member "traceEvents" parsed with
    | Some (Arr events) -> events
    | _ -> Alcotest.fail "traceEvents missing"
  in
  (* 2 span events + the final instant event carrying the counters. *)
  Alcotest.(check int) "event count" 3 (List.length events);
  let phases =
    List.map
      (fun e -> match member "ph" e with Some (Str p) -> p | _ -> Alcotest.fail "ph missing")
      events
  in
  Alcotest.(check (list string)) "phases" [ "X"; "X"; "I" ] phases;
  List.iter
    (fun e ->
      match (member "ph" e, member "ts" e, member "name" e) with
      | Some (Str "X"), Some (Num ts), Some (Str _) ->
        if ts < 0.0 then Alcotest.fail "negative ts";
        (match member "dur" e with
        | Some (Num d) when d >= 0.0 -> ()
        | _ -> Alcotest.fail "X event without dur")
      | Some (Str "I"), Some (Num _), Some (Str _) -> ()
      | _ -> Alcotest.fail "malformed event")
    events;
  (* The escaped span name survives the round trip. *)
  let names =
    List.filter_map (fun e -> match member "name" e with Some (Str s) -> Some s | _ -> None) events
  in
  Alcotest.(check bool) "quoted name round-trips" true
    (List.mem "export outer \"quoted\"" names);
  Telemetry.Export.reset_all ()

let test_jsonl_well_formed () =
  populate_sample_telemetry ();
  let lines =
    String.split_on_char '\n' (String.trim (Telemetry.Export.jsonl_string ()))
  in
  Alcotest.(check bool) "has lines" true (List.length lines >= 4);
  let typed =
    List.map
      (fun line ->
        let v = parse_json line in
        match member "type" v with
        | Some (Str t) -> (t, v)
        | _ -> Alcotest.failf "line without type: %s" line)
      lines
  in
  let spans = List.filter (fun (t, _) -> t = "span") typed in
  Alcotest.(check int) "span lines" 2 (List.length spans);
  Alcotest.(check bool) "counter line present" true
    (List.exists
       (fun (t, v) ->
         t = "counter" && member "name" v = Some (Str "test.export_counter")
         && member "value" v = Some (Num 3.0))
       typed);
  Alcotest.(check bool) "histogram line present" true
    (List.exists
       (fun (t, v) -> t = "histogram" && member "name" v = Some (Str "test.export_hist"))
       typed);
  (* The newline embedded in an attr value must be escaped, or it would
     have split the line and failed parsing above. *)
  Alcotest.(check bool) "attr newline escaped" true
    (List.exists
       (fun (_, v) ->
         match member "attrs" v with Some (Obj [ ("k", Str "v\nw") ]) -> true | _ -> false)
       (List.filter (fun (t, _) -> t = "span") typed));
  Telemetry.Export.reset_all ()

(* ------------------------------------------------------ determinism *)

(* The always-on counters must be a pure function of the workload and
   seed: two identical runs leave identical snapshots.  This is what
   makes the security table's oracle-query column reproducible. *)
let test_counter_determinism () =
  let workload () =
    Telemetry.Export.reset_all ();
    let chip = Circuit.Process.fabricate ~seed:4242 () in
    let rx = Rfchain.Receiver.create chip Rfchain.Standards.max_frequency in
    let bench = Metrics.Measure.create rx in
    ignore (Metrics.Measure.snr_mod_db bench Rfchain.Config.nominal);
    ignore (Metrics.Measure.sfdr_db bench Rfchain.Config.nominal);
    Telemetry.Counter.snapshot ()
  in
  let first = workload () in
  let second = workload () in
  Alcotest.(check (list (pair string int))) "same-seed runs leave identical counters" first
    second;
  Alcotest.(check bool) "workload actually counted something" true
    (List.exists (fun (_, v) -> v > 0) first);
  Telemetry.Export.reset_all ()

(* ----------------------------------------------------- cancellation *)

let test_cancel_manual_token () =
  let tok = Telemetry.Cancel.create ~reason:"stop requested" () in
  Telemetry.Cancel.with_token tok (fun () ->
      Telemetry.Cancel.poll ();
      (* an untripped token is silent *)
      Telemetry.Cancel.set tok;
      match Telemetry.Cancel.poll () with
      | () -> Alcotest.fail "a tripped token must raise at the next poll"
      | exception Telemetry.Cancel.Cancelled reason ->
        Alcotest.(check string) "reason carried" "stop requested" reason);
  (* leaving the scope uninstalls the token *)
  Telemetry.Cancel.poll ();
  Alcotest.(check bool) "no token outside the scope" true (Telemetry.Cancel.current () = None)

let test_cancel_deadline_token () =
  let expired = Telemetry.Cancel.with_deadline 0.0 in
  Alcotest.(check bool) "zero deadline trips immediately" true
    (Telemetry.Cancel.is_set expired);
  (match Telemetry.Cancel.check expired with
  | () -> Alcotest.fail "check on a tripped deadline must raise"
  | exception Telemetry.Cancel.Cancelled reason ->
    Alcotest.(check string) "deadline reason" Telemetry.Cancel.deadline_reason reason);
  let far = Telemetry.Cancel.with_deadline 3600.0 in
  Alcotest.(check bool) "future deadline untripped" false (Telemetry.Cancel.is_set far);
  match Telemetry.Cancel.remaining_s far with
  | Some r -> Alcotest.(check bool) "remaining time positive" true (r > 0.0)
  | None -> Alcotest.fail "deadline token must report remaining time"

let test_cancel_nesting_restores () =
  let outer = Telemetry.Cancel.create ~reason:"outer" () in
  let inner = Telemetry.Cancel.create ~reason:"inner" () in
  Telemetry.Cancel.with_token outer (fun () ->
      Telemetry.Cancel.with_token inner (fun () ->
          match Telemetry.Cancel.current () with
          | Some t -> Alcotest.(check string) "innermost wins" "inner" (Telemetry.Cancel.reason t)
          | None -> Alcotest.fail "no token installed");
      (* even when the inner scope exits via an exception *)
      (match
         Telemetry.Cancel.with_token inner (fun () -> raise Exit)
       with
      | () -> Alcotest.fail "expected Exit"
      | exception Exit -> ());
      match Telemetry.Cancel.current () with
      | Some t -> Alcotest.(check string) "outer restored" "outer" (Telemetry.Cancel.reason t)
      | None -> Alcotest.fail "outer token lost")

let test_cancel_interrupt () =
  Fun.protect ~finally:Telemetry.Cancel.clear_interrupt (fun () ->
      Telemetry.Cancel.interrupt ~reason:"SIGINT" ();
      Alcotest.(check bool) "interrupt pending" true (Telemetry.Cancel.interrupted ());
      (match Telemetry.Cancel.poll () with
      | () -> Alcotest.fail "a pending interrupt must raise"
      | exception Telemetry.Cancel.Cancelled reason ->
        Alcotest.(check string) "interrupt reason" "SIGINT" reason);
      (* tick_poll only pays the poll every 4096 samples *)
      Telemetry.Cancel.tick_poll 1;
      Telemetry.Cancel.tick_poll 4095;
      match Telemetry.Cancel.tick_poll 4096 with
      | () -> Alcotest.fail "tick_poll must poll on the cadence boundary"
      | exception Telemetry.Cancel.Cancelled _ -> ());
  Alcotest.(check bool) "interrupt cleared" false (Telemetry.Cancel.interrupted ());
  Telemetry.Cancel.poll ()

(* ------------------------------------------------------ openmetrics *)

(* Mini OpenMetrics text parser: enough to verify the exposition we
   emit is the exposition a scraper would accept.  Returns the sample
   lines as (name, labels-or-empty, value) plus the set of TYPE'd
   family names; fails on a line that is neither a comment nor a
   well-formed sample, or on a missing terminal "# EOF". *)
let parse_openmetrics body =
  let lines = String.split_on_char '\n' body in
  let rec strip_trailing = function
    | [ "" ] -> []
    | [] -> []
    | x :: rest -> x :: strip_trailing rest
  in
  let lines = strip_trailing lines in
  (match List.rev lines with
  | "# EOF" :: _ -> ()
  | _ -> Alcotest.fail "exposition must end with # EOF");
  let name_ok name =
    name <> ""
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
           || c = ':')
         name
  in
  let families = ref [] in
  let samples = ref [] in
  List.iter
    (fun line ->
      if line = "" || line = "# EOF" then ()
      else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
          if not (name_ok name) then Alcotest.fail ("bad family name: " ^ name);
          if not (List.mem kind [ "counter"; "gauge"; "summary"; "histogram" ]) then
            Alcotest.fail ("bad family type: " ^ kind);
          families := (name, kind) :: !families
        | _ -> Alcotest.fail ("bad TYPE line: " ^ line)
      end
      else if String.length line > 1 && line.[0] = '#' then () (* HELP *)
      else begin
        (* sample: name[{labels}] value *)
        match String.index_opt line ' ' with
        | None -> Alcotest.fail ("bad sample line: " ^ line)
        | Some sp ->
          let series = String.sub line 0 sp in
          let value = String.sub line (sp + 1) (String.length line - sp - 1) in
          let name, labels =
            match String.index_opt series '{' with
            | None -> (series, "")
            | Some b ->
              if series.[String.length series - 1] <> '}' then
                Alcotest.fail ("unterminated labels: " ^ line);
              (String.sub series 0 b, String.sub series b (String.length series - b))
          in
          if not (name_ok name) then Alcotest.fail ("bad metric name: " ^ name);
          let v =
            match value with
            | "NaN" -> nan
            | "+Inf" -> infinity
            | "-Inf" -> neg_infinity
            | v -> (
              match float_of_string_opt v with
              | Some f -> f
              | None -> Alcotest.fail ("bad sample value: " ^ line))
          in
          samples := (name, labels, v) :: !samples
      end)
    lines;
  (List.rev !families, List.rev !samples)

let sample_value samples name =
  List.find_map (fun (n, _, v) -> if n = name then Some v else None) samples

let test_openmetrics_counters_histograms () =
  Telemetry.Export.reset_all ();
  let c = Telemetry.Counter.make "test.om_counter" in
  Telemetry.Counter.add c 41;
  Telemetry.Counter.incr c;
  let h = Telemetry.Histogram.make "test.om_hist" in
  List.iter (Telemetry.Histogram.observe h) [ 10.0; 20.0; 30.0; 40.0 ];
  let families, samples = parse_openmetrics (Telemetry.Openmetrics.render ()) in
  (* Counter: sanitised name, _total suffix, exact value. *)
  Alcotest.(check (option (float 0.0)))
    "counter value" (Some 42.0)
    (sample_value samples "repro_test_om_counter_total");
  Alcotest.(check bool)
    "counter family typed" true
    (List.mem ("repro_test_om_counter_total", "counter") families);
  (* Histogram: summary with exact count and sum, quantiles present. *)
  Alcotest.(check (option (float 0.0)))
    "histogram count" (Some 4.0)
    (sample_value samples "repro_test_om_hist_count");
  Alcotest.(check (option (float 0.0)))
    "histogram sum" (Some 100.0)
    (sample_value samples "repro_test_om_hist_sum");
  Alcotest.(check bool)
    "histogram family typed summary" true
    (List.mem ("repro_test_om_hist", "summary") families);
  Alcotest.(check bool)
    "quantile series present" true
    (List.exists (fun (n, l, _) -> n = "repro_test_om_hist" && l = "{quantile=\"0.5\"}") samples)

let test_openmetrics_gauges_and_escaping () =
  Telemetry.Export.reset_all ();
  let gauges =
    [
      Telemetry.Openmetrics.gauge ~help:"a help line" "my_gauge_seconds" 1.5;
      Telemetry.Openmetrics.gauge
        ~labels:[ ("die", "a\"b\\c\nd"); ("weird name", "v") ]
        "labelled gauge" 7.0;
    ]
  in
  let families, samples = parse_openmetrics (Telemetry.Openmetrics.render ~gauges ()) in
  Alcotest.(check (option (float 0.0)))
    "plain gauge" (Some 1.5)
    (sample_value samples "repro_my_gauge_seconds");
  (* Metric and label names sanitised to the charset; label values
     escaped per the grammar. *)
  (match
     List.find_opt (fun (n, _, _) -> n = "repro_labelled_gauge") samples
   with
  | Some (_, labels, v) ->
    Alcotest.(check (float 0.0)) "labelled gauge value" 7.0 v;
    Alcotest.(check string)
      "label escaping" "{die=\"a\\\"b\\\\c\\nd\",weird_name=\"v\"}" labels
  | None -> Alcotest.fail "labelled gauge missing");
  Alcotest.(check bool)
    "gauge family typed" true
    (List.mem ("repro_my_gauge_seconds", "gauge") families)

(* -------------------------------------------------------------- log *)

let with_quiet_log f =
  let saved = Telemetry.Log.level () in
  Telemetry.Log.set_stderr false;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Log.close_file ();
      Telemetry.Log.set_stderr true;
      Telemetry.Log.set_level saved)
    f

let test_log_level_filtering () =
  with_quiet_log @@ fun () ->
  let path = Filename.temp_file "test_log" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Telemetry.Log.to_file path;
  Telemetry.Log.set_level Telemetry.Log.Warn;
  Telemetry.Log.debug "dropped debug";
  Telemetry.Log.info "dropped info";
  Telemetry.Log.warn "kept warn";
  Telemetry.Log.error "kept error";
  Telemetry.Log.set_level Telemetry.Log.Debug;
  Telemetry.Log.debug "kept debug";
  Telemetry.Log.close_file ();
  let lines =
    String.split_on_char '\n' (In_channel.with_open_bin path In_channel.input_all)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "only enabled levels emit" 3 (List.length lines);
  let msgs =
    List.map
      (fun l ->
        match member "msg" (parse_json l) with
        | Some (Str m) -> m
        | _ -> Alcotest.fail "log line missing msg")
      lines
  in
  Alcotest.(check (list string)) "order preserved"
    [ "kept warn"; "kept error"; "kept debug" ]
    msgs;
  Alcotest.(check bool) "enabled guard matches threshold" true
    (Telemetry.Log.enabled Telemetry.Log.Debug)

let test_log_jsonl_escaping () =
  with_quiet_log @@ fun () ->
  let path = Filename.temp_file "test_log" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Telemetry.Log.to_file path;
  Telemetry.Log.set_level Telemetry.Log.Info;
  Telemetry.Log.info
    ~fields:[ ("key", "line1\nline2\t\"quoted\" \\slash"); ("n", "42") ]
    "msg with \"quotes\" and \x01 control";
  Telemetry.Log.close_file ();
  let raw = String.trim (In_channel.with_open_bin path In_channel.input_all) in
  match parse_json raw with
  | exception Bad_json reason -> Alcotest.fail ("jsonl line does not parse: " ^ reason)
  | v ->
    (match member "msg" v with
    | Some (Str m) ->
      Alcotest.(check string) "message round-trips" "msg with \"quotes\" and \x01 control" m
    | _ -> Alcotest.fail "msg missing");
    (match member "fields" v with
    | Some (Obj fields) ->
      Alcotest.(check bool) "field value round-trips" true
        (List.assoc_opt "key" fields = Some (Str "line1\nline2\t\"quoted\" \\slash"))
    | _ -> Alcotest.fail "fields missing");
    (match member "level" v with
    | Some (Str "info") -> ()
    | _ -> Alcotest.fail "level missing")

(* --------------------------------------------------------- manifest *)

let test_manifest_roundtrip () =
  let argv = [ "repro"; "faults"; "--seed"; "1234"; "--standard"; "blue\ttooth" ] in
  let m = Telemetry.Manifest.create ~argv () in
  Telemetry.Manifest.finish ~exit_status:3 m;
  (match Telemetry.Manifest.of_json (Telemetry.Manifest.to_json m) with
  | Error reason -> Alcotest.fail ("manifest does not round-trip: " ^ reason)
  | Ok m' ->
    Alcotest.(check (list string)) "argv" argv m'.Telemetry.Manifest.argv;
    Alcotest.(check (option int)) "seed parsed from argv" (Some 1234) m'.Telemetry.Manifest.seed;
    Alcotest.(check string) "engine hash" m.Telemetry.Manifest.engine_hash
      m'.Telemetry.Manifest.engine_hash;
    Alcotest.(check (option int)) "exit status" (Some 3) m'.Telemetry.Manifest.exit_status;
    Alcotest.(check bool) "end stamped" true (m'.Telemetry.Manifest.end_ns <> None);
    Alcotest.(check string) "config digest" m.Telemetry.Manifest.config_digest
      m'.Telemetry.Manifest.config_digest);
  (* File round-trip. *)
  let path = Filename.temp_file "test_manifest" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Telemetry.Manifest.write path m;
  match Telemetry.Manifest.read path with
  | Error reason -> Alcotest.fail ("manifest file does not read back: " ^ reason)
  | Ok m' ->
    Alcotest.(check string) "file round-trip argv digest" m.Telemetry.Manifest.config_digest
      m'.Telemetry.Manifest.config_digest

let test_manifest_seed_forms () =
  let seed_of argv =
    (Telemetry.Manifest.create ~argv ()).Telemetry.Manifest.seed
  in
  Alcotest.(check (option int)) "--seed N" (Some 7) (seed_of [ "x"; "--seed"; "7" ]);
  Alcotest.(check (option int)) "--seed=N" (Some 9) (seed_of [ "x"; "--seed=9" ]);
  Alcotest.(check (option int)) "no seed" None (seed_of [ "x"; "--jobs"; "4" ]);
  Alcotest.(check (option int)) "explicit overrides" (Some 5)
    (Telemetry.Manifest.create ~argv:[ "x"; "--seed"; "7" ] ~seed:5 ()).Telemetry.Manifest.seed;
  (* The engine hash is a hex digest of the running executable. *)
  let h = Telemetry.Manifest.engine_hash () in
  Alcotest.(check bool) "engine hash is hex" true
    (String.length h = 32
    && String.for_all (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) h)

(* ---------------------------------------------------------- monitor *)

let test_monitor_snapshot () =
  Telemetry.Monitor.reset ();
  Telemetry.Monitor.register "test_provider" (fun () -> [ ("test_gauge", 17.0) ]);
  Fun.protect ~finally:(fun () ->
      Telemetry.Monitor.register "test_provider" (fun () -> []);
      Telemetry.Monitor.reset ())
  @@ fun () ->
  Telemetry.Monitor.set_progress ~completed:25 ~total:100;
  let s = Telemetry.Monitor.snapshot () in
  Alcotest.(check int) "completed" 25 s.Telemetry.Monitor.completed;
  Alcotest.(check int) "total" 100 s.Telemetry.Monitor.total;
  Alcotest.(check bool) "eta estimable" true (s.Telemetry.Monitor.eta_s <> None);
  Alcotest.(check bool) "provider gauges included" true
    (List.assoc_opt "test_gauge" s.Telemetry.Monitor.gauges = Some 17.0);
  (* The /metrics body is valid OpenMetrics and carries the snapshot. *)
  let _, samples = parse_openmetrics (Telemetry.Monitor.metrics_body ()) in
  Alcotest.(check (option (float 0.0)))
    "campaign progress exposed" (Some 25.0)
    (sample_value samples "repro_campaign_cells_completed");
  Alcotest.(check (option (float 0.0)))
    "provider gauge exposed" (Some 17.0)
    (sample_value samples "repro_test_gauge");
  (* The /healthz body is one valid JSON object. *)
  match parse_json (Telemetry.Monitor.healthz_body ()) with
  | exception Bad_json reason -> Alcotest.fail ("healthz does not parse: " ^ reason)
  | v -> (
    (match member "status" v with
    | Some (Str "ok") -> ()
    | _ -> Alcotest.fail "healthz status missing");
    match member "completed" v with
    | Some (Num 25.0) -> ()
    | _ -> Alcotest.fail "healthz completed missing")

let test_monitor_scrape_server () =
  Telemetry.Monitor.reset ();
  Telemetry.Monitor.set_progress ~completed:3 ~total:9;
  (* Port 0: bind whatever is free, talk to it over a plain socket. *)
  match Telemetry.Monitor.start_server ~port:0 with
  | Error reason -> Alcotest.fail reason
  | Ok port ->
    Fun.protect ~finally:(fun () ->
        Telemetry.Monitor.stop_server ();
        Telemetry.Monitor.reset ())
    @@ fun () ->
    let get path =
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      @@ fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      Buffer.contents buf
    in
    let body_of response =
      (* Body starts after the blank line separating the headers. *)
      let sep = "\r\n\r\n" in
      let rec find i =
        if i + String.length sep > String.length response then None
        else if String.sub response i (String.length sep) = sep then Some (i + String.length sep)
        else find (i + 1)
      in
      match find 0 with
      | Some i -> String.sub response i (String.length response - i)
      | None -> Alcotest.fail "response has no body"
    in
    let metrics = get "/metrics" in
    Alcotest.(check bool) "200 on /metrics" true
      (String.length metrics > 12 && String.sub metrics 0 12 = "HTTP/1.0 200");
    let _, samples = parse_openmetrics (body_of metrics) in
    Alcotest.(check (option (float 0.0)))
      "live progress served" (Some 3.0)
      (sample_value samples "repro_campaign_cells_completed");
    let health = get "/healthz" in
    Alcotest.(check bool) "200 on /healthz" true
      (String.length health > 12 && String.sub health 0 12 = "HTTP/1.0 200");
    let missing = get "/nope" in
    Alcotest.(check bool) "404 elsewhere" true
      (String.length missing > 12 && String.sub missing 0 12 = "HTTP/1.0 404")

let () =
  Alcotest.run "telemetry"
    [
      ( "span",
        [
          Alcotest.test_case "nesting and self time" `Quick test_span_nesting_self_time;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "disabled mode is a no-op" `Quick test_span_disabled_noop;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counter make/find/snapshot/reset" `Quick test_counter_registry;
          Alcotest.test_case "histogram observe/quantile/reset" `Quick test_histogram_observe;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace is valid JSON" `Quick test_chrome_trace_well_formed;
          Alcotest.test_case "jsonl stream is valid JSON" `Quick test_jsonl_well_formed;
        ] );
      ( "determinism",
        [ Alcotest.test_case "same-seed counter snapshots" `Quick test_counter_determinism ] );
      ( "cancel",
        [
          Alcotest.test_case "manual token trips at the next poll" `Quick
            test_cancel_manual_token;
          Alcotest.test_case "deadline tokens" `Quick test_cancel_deadline_token;
          Alcotest.test_case "nesting restores the outer token" `Quick
            test_cancel_nesting_restores;
          Alcotest.test_case "process-global interrupt and tick cadence" `Quick
            test_cancel_interrupt;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "counters and histograms round-trip" `Quick
            test_openmetrics_counters_histograms;
          Alcotest.test_case "gauges, sanitisation and label escaping" `Quick
            test_openmetrics_gauges_and_escaping;
        ] );
      ( "log",
        [
          Alcotest.test_case "level filtering" `Quick test_log_level_filtering;
          Alcotest.test_case "jsonl sink escaping" `Quick test_log_jsonl_escaping;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "json and file round-trip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "seed parsing and engine hash" `Quick test_manifest_seed_forms;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "snapshot and exposition bodies" `Quick test_monitor_snapshot;
          Alcotest.test_case "loopback scrape server" `Quick test_monitor_scrape_server;
        ] );
    ]
