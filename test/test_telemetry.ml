(* Tests for the telemetry subsystem: span nesting and self-time
   attribution, counter/histogram registry semantics, exporter
   well-formedness (we parse what we emit), the disabled-mode no-op
   guarantee, and counter determinism across same-seed runs. *)

(* ------------------------------------------------------- mini JSON *)

(* A tiny recursive-descent JSON reader, just enough to verify that the
   Chrome-trace and JSONL exporters emit well-formed JSON without
   pulling in a JSON dependency. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_literal lit value =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then begin
      pos := !pos + String.length lit;
      value
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "bad \\u escape";
          let hex = String.sub s !pos 4 in
          (try Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex) land 0xFF))
           with _ -> fail "bad \\u escape");
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> parse_literal "true" (Bool true)
    | Some 'f' -> parse_literal "false" (Bool false)
    | Some 'n' -> parse_literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ----------------------------------------------------------- spans *)

(* Deterministic busy work so spans have a measurable, positive
   duration without sleeping. *)
let burn () =
  let acc = ref 0.0 in
  for i = 1 to 20_000 do
    acc := !acc +. sin (float_of_int i)
  done;
  ignore (Sys.opaque_identity !acc)

let find_agg name =
  List.find_opt (fun a -> a.Telemetry.Span.agg_name = name) (Telemetry.Span.aggregates ())

let test_span_nesting_self_time () =
  Telemetry.Export.reset_all ();
  Telemetry.Control.with_enabled true (fun () ->
      Telemetry.Span.with_ ~name:"outer" (fun () ->
          burn ();
          Telemetry.Span.with_ ~name:"child" burn;
          Telemetry.Span.with_ ~name:"child" burn));
  let outer = Option.get (find_agg "outer") in
  let child = Option.get (find_agg "child") in
  Alcotest.(check int) "outer calls" 1 outer.Telemetry.Span.agg_calls;
  Alcotest.(check int) "child calls" 2 child.Telemetry.Span.agg_calls;
  let open Int64 in
  if compare outer.Telemetry.Span.agg_total_ns child.Telemetry.Span.agg_total_ns < 0 then
    Alcotest.fail "outer total must cover children";
  if compare outer.Telemetry.Span.agg_self_ns 0L < 0 then Alcotest.fail "negative self time";
  (* Self-time attribution: outer self = outer total minus the time in
     its (only) children. *)
  let expected_self = sub outer.Telemetry.Span.agg_total_ns child.Telemetry.Span.agg_total_ns in
  Alcotest.(check int64) "outer self excludes children" expected_self
    outer.Telemetry.Span.agg_self_ns;
  (* Events: children complete first, depth tracks nesting. *)
  (match Telemetry.Span.events () with
  | [ e1; e2; e3 ] ->
    Alcotest.(check string) "first completion" "child" e1.Telemetry.Span.ev_name;
    Alcotest.(check int) "child depth" 1 e1.Telemetry.Span.ev_depth;
    Alcotest.(check string) "last completion" "outer" e3.Telemetry.Span.ev_name;
    Alcotest.(check int) "outer depth" 0 e3.Telemetry.Span.ev_depth;
    Alcotest.(check int) "middle depth" 1 e2.Telemetry.Span.ev_depth
  | events -> Alcotest.failf "expected 3 events, got %d" (List.length events));
  Telemetry.Export.reset_all ()

let test_span_exception_safe () =
  Telemetry.Export.reset_all ();
  Telemetry.Control.with_enabled true (fun () ->
      match Telemetry.Span.with_ ~name:"boom" (fun () -> failwith "inner") with
      | _ -> Alcotest.fail "expected the exception to propagate"
      | exception Failure m -> Alcotest.(check string) "exception carried" "inner" m);
  (match find_agg "boom" with
  | Some a -> Alcotest.(check int) "raising span still recorded" 1 a.Telemetry.Span.agg_calls
  | None -> Alcotest.fail "raising span lost");
  Telemetry.Export.reset_all ()

let test_span_disabled_noop () =
  Telemetry.Export.reset_all ();
  Telemetry.Control.set_enabled false;
  let r = Telemetry.Span.with_ ~name:"ghost" (fun () -> 17) in
  Alcotest.(check int) "value passes through" 17 r;
  Alcotest.(check int) "no events recorded" 0 (List.length (Telemetry.Span.events ()));
  Alcotest.(check bool) "no aggregate recorded" true (find_agg "ghost" = None);
  (* Exceptions still propagate untouched when disabled. *)
  (match Telemetry.Span.with_ ~name:"ghost" (fun () -> raise Exit) with
  | () -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  Alcotest.(check int) "still no events" 0 (List.length (Telemetry.Span.events ()))

(* ---------------------------------------------- counters/histograms *)

let test_counter_registry () =
  Telemetry.Export.reset_all ();
  let a = Telemetry.Counter.make "test.alpha" in
  let a' = Telemetry.Counter.make "test.alpha" in
  Telemetry.Counter.incr a;
  Telemetry.Counter.add a' 4;
  Alcotest.(check int) "make is idempotent (same cell)" 5 (Telemetry.Counter.value a);
  (match Telemetry.Counter.find "test.alpha" with
  | Some c -> Alcotest.(check int) "find sees the value" 5 (Telemetry.Counter.value c)
  | None -> Alcotest.fail "registered counter not found");
  Alcotest.(check bool) "find does not create" true (Telemetry.Counter.find "test.absent" = None);
  let snap = Telemetry.Counter.snapshot () in
  Alcotest.(check (option int)) "snapshot carries the value" (Some 5)
    (List.assoc_opt "test.alpha" snap);
  let sorted = List.sort (fun (x, _) (y, _) -> compare x y) snap in
  Alcotest.(check bool) "snapshot is name-sorted" true (snap = sorted);
  Telemetry.Counter.reset_all ();
  Alcotest.(check int) "reset_all zeroes" 0 (Telemetry.Counter.value a);
  Alcotest.(check bool) "registration survives reset" true
    (List.mem_assoc "test.alpha" (Telemetry.Counter.snapshot ()))

let test_histogram_observe () =
  Telemetry.Export.reset_all ();
  let h = Telemetry.Histogram.make "test.hist" in
  List.iter (Telemetry.Histogram.observe h) [ 1.0; 2.0; 4.0; 8.0; 1000.0 ];
  Alcotest.(check int) "count" 5 (Telemetry.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 1015.0 (Telemetry.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Telemetry.Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 1000.0 (Telemetry.Histogram.max_value h);
  let p50 = Telemetry.Histogram.quantile h 0.5 in
  if p50 < 1.0 || p50 > 1000.0 then Alcotest.failf "p50 out of [min,max]: %g" p50;
  (* Log-bucket quantile error is bounded by the 2^(1/4) bucket ratio:
     the true median is 4. *)
  if p50 < 3.0 || p50 > 5.5 then Alcotest.failf "p50 far from true median 4: %g" p50;
  (* A NaN observation is counted but cannot poison the quantiles. *)
  Telemetry.Histogram.observe h Float.nan;
  Alcotest.(check int) "nan counted" 6 (Telemetry.Histogram.count h);
  let p99 = Telemetry.Histogram.quantile h 0.99 in
  if Float.is_nan p99 then Alcotest.fail "nan leaked into quantile";
  Telemetry.Histogram.reset_all ();
  Alcotest.(check int) "reset_all empties" 0 (Telemetry.Histogram.count h)

(* -------------------------------------------------------- exporters *)

let populate_sample_telemetry () =
  Telemetry.Export.reset_all ();
  let c = Telemetry.Counter.make "test.export_counter" in
  Telemetry.Counter.add c 3;
  let h = Telemetry.Histogram.make "test.export_hist" in
  Telemetry.Histogram.observe h 42.0;
  Telemetry.Control.with_enabled true (fun () ->
      Telemetry.Span.with_ ~name:"export outer \"quoted\"" (fun () ->
          burn ();
          Telemetry.Span.with_ ~name:"export child" ~attrs:[ ("k", "v\nw") ] burn))

let test_chrome_trace_well_formed () =
  populate_sample_telemetry ();
  let parsed = parse_json (Telemetry.Export.chrome_trace_string ()) in
  (match member "displayTimeUnit" parsed with
  | Some (Str "ms") -> ()
  | _ -> Alcotest.fail "displayTimeUnit missing");
  let events =
    match member "traceEvents" parsed with
    | Some (Arr events) -> events
    | _ -> Alcotest.fail "traceEvents missing"
  in
  (* 2 span events + the final instant event carrying the counters. *)
  Alcotest.(check int) "event count" 3 (List.length events);
  let phases =
    List.map
      (fun e -> match member "ph" e with Some (Str p) -> p | _ -> Alcotest.fail "ph missing")
      events
  in
  Alcotest.(check (list string)) "phases" [ "X"; "X"; "I" ] phases;
  List.iter
    (fun e ->
      match (member "ph" e, member "ts" e, member "name" e) with
      | Some (Str "X"), Some (Num ts), Some (Str _) ->
        if ts < 0.0 then Alcotest.fail "negative ts";
        (match member "dur" e with
        | Some (Num d) when d >= 0.0 -> ()
        | _ -> Alcotest.fail "X event without dur")
      | Some (Str "I"), Some (Num _), Some (Str _) -> ()
      | _ -> Alcotest.fail "malformed event")
    events;
  (* The escaped span name survives the round trip. *)
  let names =
    List.filter_map (fun e -> match member "name" e with Some (Str s) -> Some s | _ -> None) events
  in
  Alcotest.(check bool) "quoted name round-trips" true
    (List.mem "export outer \"quoted\"" names);
  Telemetry.Export.reset_all ()

let test_jsonl_well_formed () =
  populate_sample_telemetry ();
  let lines =
    String.split_on_char '\n' (String.trim (Telemetry.Export.jsonl_string ()))
  in
  Alcotest.(check bool) "has lines" true (List.length lines >= 4);
  let typed =
    List.map
      (fun line ->
        let v = parse_json line in
        match member "type" v with
        | Some (Str t) -> (t, v)
        | _ -> Alcotest.failf "line without type: %s" line)
      lines
  in
  let spans = List.filter (fun (t, _) -> t = "span") typed in
  Alcotest.(check int) "span lines" 2 (List.length spans);
  Alcotest.(check bool) "counter line present" true
    (List.exists
       (fun (t, v) ->
         t = "counter" && member "name" v = Some (Str "test.export_counter")
         && member "value" v = Some (Num 3.0))
       typed);
  Alcotest.(check bool) "histogram line present" true
    (List.exists
       (fun (t, v) -> t = "histogram" && member "name" v = Some (Str "test.export_hist"))
       typed);
  (* The newline embedded in an attr value must be escaped, or it would
     have split the line and failed parsing above. *)
  Alcotest.(check bool) "attr newline escaped" true
    (List.exists
       (fun (_, v) ->
         match member "attrs" v with Some (Obj [ ("k", Str "v\nw") ]) -> true | _ -> false)
       (List.filter (fun (t, _) -> t = "span") typed));
  Telemetry.Export.reset_all ()

(* ------------------------------------------------------ determinism *)

(* The always-on counters must be a pure function of the workload and
   seed: two identical runs leave identical snapshots.  This is what
   makes the security table's oracle-query column reproducible. *)
let test_counter_determinism () =
  let workload () =
    Telemetry.Export.reset_all ();
    let chip = Circuit.Process.fabricate ~seed:4242 () in
    let rx = Rfchain.Receiver.create chip Rfchain.Standards.max_frequency in
    let bench = Metrics.Measure.create rx in
    ignore (Metrics.Measure.snr_mod_db bench Rfchain.Config.nominal);
    ignore (Metrics.Measure.sfdr_db bench Rfchain.Config.nominal);
    Telemetry.Counter.snapshot ()
  in
  let first = workload () in
  let second = workload () in
  Alcotest.(check (list (pair string int))) "same-seed runs leave identical counters" first
    second;
  Alcotest.(check bool) "workload actually counted something" true
    (List.exists (fun (_, v) -> v > 0) first);
  Telemetry.Export.reset_all ()

(* ----------------------------------------------------- cancellation *)

let test_cancel_manual_token () =
  let tok = Telemetry.Cancel.create ~reason:"stop requested" () in
  Telemetry.Cancel.with_token tok (fun () ->
      Telemetry.Cancel.poll ();
      (* an untripped token is silent *)
      Telemetry.Cancel.set tok;
      match Telemetry.Cancel.poll () with
      | () -> Alcotest.fail "a tripped token must raise at the next poll"
      | exception Telemetry.Cancel.Cancelled reason ->
        Alcotest.(check string) "reason carried" "stop requested" reason);
  (* leaving the scope uninstalls the token *)
  Telemetry.Cancel.poll ();
  Alcotest.(check bool) "no token outside the scope" true (Telemetry.Cancel.current () = None)

let test_cancel_deadline_token () =
  let expired = Telemetry.Cancel.with_deadline 0.0 in
  Alcotest.(check bool) "zero deadline trips immediately" true
    (Telemetry.Cancel.is_set expired);
  (match Telemetry.Cancel.check expired with
  | () -> Alcotest.fail "check on a tripped deadline must raise"
  | exception Telemetry.Cancel.Cancelled reason ->
    Alcotest.(check string) "deadline reason" Telemetry.Cancel.deadline_reason reason);
  let far = Telemetry.Cancel.with_deadline 3600.0 in
  Alcotest.(check bool) "future deadline untripped" false (Telemetry.Cancel.is_set far);
  match Telemetry.Cancel.remaining_s far with
  | Some r -> Alcotest.(check bool) "remaining time positive" true (r > 0.0)
  | None -> Alcotest.fail "deadline token must report remaining time"

let test_cancel_nesting_restores () =
  let outer = Telemetry.Cancel.create ~reason:"outer" () in
  let inner = Telemetry.Cancel.create ~reason:"inner" () in
  Telemetry.Cancel.with_token outer (fun () ->
      Telemetry.Cancel.with_token inner (fun () ->
          match Telemetry.Cancel.current () with
          | Some t -> Alcotest.(check string) "innermost wins" "inner" (Telemetry.Cancel.reason t)
          | None -> Alcotest.fail "no token installed");
      (* even when the inner scope exits via an exception *)
      (match
         Telemetry.Cancel.with_token inner (fun () -> raise Exit)
       with
      | () -> Alcotest.fail "expected Exit"
      | exception Exit -> ());
      match Telemetry.Cancel.current () with
      | Some t -> Alcotest.(check string) "outer restored" "outer" (Telemetry.Cancel.reason t)
      | None -> Alcotest.fail "outer token lost")

let test_cancel_interrupt () =
  Fun.protect ~finally:Telemetry.Cancel.clear_interrupt (fun () ->
      Telemetry.Cancel.interrupt ~reason:"SIGINT" ();
      Alcotest.(check bool) "interrupt pending" true (Telemetry.Cancel.interrupted ());
      (match Telemetry.Cancel.poll () with
      | () -> Alcotest.fail "a pending interrupt must raise"
      | exception Telemetry.Cancel.Cancelled reason ->
        Alcotest.(check string) "interrupt reason" "SIGINT" reason);
      (* tick_poll only pays the poll every 4096 samples *)
      Telemetry.Cancel.tick_poll 1;
      Telemetry.Cancel.tick_poll 4095;
      match Telemetry.Cancel.tick_poll 4096 with
      | () -> Alcotest.fail "tick_poll must poll on the cadence boundary"
      | exception Telemetry.Cancel.Cancelled _ -> ());
  Alcotest.(check bool) "interrupt cleared" false (Telemetry.Cancel.interrupted ());
  Telemetry.Cancel.poll ()

let () =
  Alcotest.run "telemetry"
    [
      ( "span",
        [
          Alcotest.test_case "nesting and self time" `Quick test_span_nesting_self_time;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "disabled mode is a no-op" `Quick test_span_disabled_noop;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counter make/find/snapshot/reset" `Quick test_counter_registry;
          Alcotest.test_case "histogram observe/quantile/reset" `Quick test_histogram_observe;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace is valid JSON" `Quick test_chrome_trace_well_formed;
          Alcotest.test_case "jsonl stream is valid JSON" `Quick test_jsonl_well_formed;
        ] );
      ( "determinism",
        [ Alcotest.test_case "same-seed counter snapshots" `Quick test_counter_determinism ] );
      ( "cancel",
        [
          Alcotest.test_case "manual token trips at the next poll" `Quick
            test_cancel_manual_token;
          Alcotest.test_case "deadline tokens" `Quick test_cancel_deadline_token;
          Alcotest.test_case "nesting restores the outer token" `Quick
            test_cancel_nesting_restores;
          Alcotest.test_case "process-global interrupt and tick cadence" `Quick
            test_cancel_interrupt;
        ] );
    ]
