(* Tests for the locking core: keys, key management, threats. *)

let std = Rfchain.Standards.max_frequency
let chip ?(seed = 42) () = Circuit.Process.fabricate ~seed ()

let some_key ?(seed = 42) () =
  let c = chip ~seed () in
  Core.Key.make ~standard:std ~chip:c (Rfchain.Config.with_field Rfchain.Config.nominal "gm_q" 29)

(* ------------------------------------------------------------------ Key *)

let test_key_identity () =
  let k = some_key () in
  Alcotest.(check string) "standard recorded" "max-3GHz" k.Core.Key.standard;
  Alcotest.(check int) "die recorded" 42 k.Core.Key.chip_seed;
  Alcotest.(check int) "width" 64 Core.Key.key_width;
  Alcotest.(check bool) "reflexive equality" true (Core.Key.equal k k);
  Alcotest.(check int) "self distance" 0 (Core.Key.hamming_distance k k)

let test_key_unlocks_semantics () =
  let k = some_key () in
  let good = { Metrics.Spec.snr_mod_db = 45.0; snr_rx_db = 44.0; sfdr_db = None } in
  let bad = { good with Metrics.Spec.snr_mod_db = 10.0 } in
  Alcotest.(check bool) "good measurement unlocks" true (Core.Key.unlocks k good std);
  Alcotest.(check bool) "bad measurement stays locked" false (Core.Key.unlocks k bad std)

(* ----------------------------------------------------------- Lut_memory *)

let test_lut_select () =
  let lut = Core.Lut_memory.provision [ ("bluetooth", Rfchain.Config.nominal) ] in
  (match Core.Lut_memory.select lut ~standard:"bluetooth" with
  | Ok c -> Alcotest.(check bool) "returns the word" true (Rfchain.Config.equal c Rfchain.Config.nominal)
  | Error _ -> Alcotest.fail "provisioned mode must load");
  (match Core.Lut_memory.select lut ~standard:"zigbee" with
  | Error Core.Lut_memory.Not_provisioned -> ()
  | Ok _ | Error Core.Lut_memory.Tamper_response_triggered -> Alcotest.fail "unprovisioned mode")

let test_lut_tamper () =
  let lut = Core.Lut_memory.provision [ ("bluetooth", Rfchain.Config.nominal) ] in
  (match Core.Lut_memory.raw_readout lut with
  | Error Core.Lut_memory.Tamper_response_triggered -> ()
  | Ok _ | Error Core.Lut_memory.Not_provisioned -> Alcotest.fail "raw readout must trip tamper");
  Alcotest.(check bool) "memory zeroised" true (Core.Lut_memory.tampered lut);
  match Core.Lut_memory.select lut ~standard:"bluetooth" with
  | Error Core.Lut_memory.Tamper_response_triggered -> ()
  | Ok _ | Error Core.Lut_memory.Not_provisioned -> Alcotest.fail "post-tamper select must fail"

(* ------------------------------------------------------------------ Puf *)

let test_puf_stability () =
  let p = Core.Puf.enroll (chip ()) in
  Alcotest.(check int64) "stable response" (Core.Puf.response p ~challenge:5)
    (Core.Puf.response p ~challenge:5);
  Alcotest.(check bool) "challenges differ" true
    (Core.Puf.response p ~challenge:5 <> Core.Puf.response p ~challenge:6)

let test_puf_uniqueness () =
  let a = Core.Puf.enroll (chip ~seed:1 ()) and b = Core.Puf.enroll (chip ~seed:2 ()) in
  let u = Core.Puf.uniqueness a b in
  Alcotest.(check bool) (Printf.sprintf "inter-die distance near 0.5 (got %.3f)" u) true
    (u > 0.42 && u < 0.58)

let test_puf_same_die_zero_distance () =
  let a = Core.Puf.enroll (chip ~seed:3 ()) and b = Core.Puf.enroll (chip ~seed:3 ()) in
  Alcotest.(check (float 1e-12)) "same die, same responses" 0.0 (Core.Puf.uniqueness a b)

(* --------------------------------------------------------------- Key_mgmt *)

let test_lut_scheme_power_on () =
  let k = some_key () in
  let scheme = Core.Key_mgmt.provision_lut [ k ] in
  match Core.Key_mgmt.power_on scheme ~standard:"max-3GHz" () with
  | Ok c -> Alcotest.(check bool) "loads the key" true (Rfchain.Config.equal c (Core.Key.config k))
  | Error e -> Alcotest.failf "power-on failed: %s" e

let test_puf_scheme_power_on () =
  let k = some_key () in
  let scheme, user_keys = Core.Key_mgmt.provision_puf (chip ()) [ k ] in
  (match Core.Key_mgmt.power_on scheme ~user_keys ~standard:"max-3GHz" () with
  | Ok c -> Alcotest.(check bool) "recovers the key" true (Rfchain.Config.equal c (Core.Key.config k))
  | Error e -> Alcotest.failf "power-on failed: %s" e);
  (* Without user keys the chip must stay locked. *)
  match Core.Key_mgmt.power_on scheme ~standard:"max-3GHz" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "PUF scheme must fail without user keys"

let test_puf_user_key_masks_config () =
  let k = some_key () in
  let _, user_keys = Core.Key_mgmt.provision_puf (chip ()) [ k ] in
  match user_keys with
  | [ uk ] ->
    Alcotest.(check bool) "user key is not the configuration" true
      (uk.Core.Key_mgmt.key_bits <> Core.Key.bits k)
  | _ -> Alcotest.fail "one user key per configuration"

let test_puf_scheme_wrong_die () =
  (* The same user keys on a cloned (different) die decode to garbage. *)
  let k = some_key () in
  let _, user_keys = Core.Key_mgmt.provision_puf (chip ~seed:42 ()) [ k ] in
  let clone_scheme, _ = Core.Key_mgmt.provision_puf (chip ~seed:777 ()) [ k ] in
  match Core.Key_mgmt.power_on clone_scheme ~user_keys ~standard:"max-3GHz" () with
  | Ok c ->
    Alcotest.(check bool) "clone decodes a different word" false
      (Rfchain.Config.equal c (Core.Key.config k))
  | Error _ -> ()

(* ------------------------------------------------------------ Activation *)

let test_activation_roundtrip () =
  let kp = Core.Activation.design_house_keys () in
  let pub = Core.Activation.public_of kp in
  let uk = { Core.Key_mgmt.standard = "bluetooth"; key_bits = 0x1234_5678_9ABC_DEF0L } in
  let act = Core.Activation.issue kp ~chip_id:42L uk in
  Alcotest.(check bool) "valid signature verifies" true (Core.Activation.verify pub act);
  match Core.Activation.accept pub ~expected_chip_id:42L act with
  | Ok uk' -> Alcotest.(check int64) "key delivered" uk.Core.Key_mgmt.key_bits uk'.Core.Key_mgmt.key_bits
  | Error e -> Alcotest.failf "accept failed: %s" e

let test_activation_tamper_detected () =
  let kp = Core.Activation.design_house_keys () in
  let pub = Core.Activation.public_of kp in
  let uk = { Core.Key_mgmt.standard = "bluetooth"; key_bits = 99L } in
  let act = Core.Activation.issue kp ~chip_id:42L uk in
  let forged = { act with Core.Activation.user_key = { uk with key_bits = 100L } } in
  Alcotest.(check bool) "tampered key rejected" false (Core.Activation.verify pub forged);
  (* Transplanting an activation onto another die fails. *)
  match Core.Activation.accept pub ~expected_chip_id:43L act with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "activation must bind to the die"

let test_activation_cannot_forge () =
  let kp = Core.Activation.design_house_keys () in
  let pub = Core.Activation.public_of kp in
  let uk = { Core.Key_mgmt.standard = "bluetooth"; key_bits = 7L } in
  (* The foundry guesses signatures without the private key. *)
  let ok = ref false in
  for guess = 1 to 200 do
    let forged = { Core.Activation.chip_id = 42L; user_key = uk; signature = Int64.of_int guess } in
    if Core.Activation.verify pub forged then ok := true
  done;
  Alcotest.(check bool) "no guessed signature verifies" false !ok

(* -------------------------------------------------------------- Lock_eval *)

let test_lock_eval_shapes () =
  let c = chip () in
  let rx = Rfchain.Receiver.create c std in
  let golden = Calibration.Calibrate.quick rx in
  let eval = Core.Lock_eval.evaluate ~n_invalid:8 ~with_rx:false rx ~correct:golden () in
  Alcotest.(check int) "ensemble size" 8 (List.length eval.Core.Lock_eval.invalid);
  Alcotest.(check int) "correct key index" (-1) eval.Core.Lock_eval.correct.Core.Lock_eval.index;
  let summary = Core.Lock_eval.summarize eval in
  Alcotest.(check bool) "correct beats every invalid key" true
    (summary.Core.Lock_eval.margin_mod_db > 0.0)

let test_lock_eval_deterministic () =
  let rx = Rfchain.Receiver.create (chip ()) std in
  let golden = Calibration.Calibrate.quick rx in
  let e1 = Core.Lock_eval.evaluate ~n_invalid:4 ~with_rx:false rx ~correct:golden () in
  let e2 = Core.Lock_eval.evaluate ~n_invalid:4 ~with_rx:false rx ~correct:golden () in
  List.iter2
    (fun a b ->
      Alcotest.(check (float 1e-9)) "same seeded ensemble, same SNR" a.Core.Lock_eval.snr_mod_db
        b.Core.Lock_eval.snr_mod_db)
    e1.Core.Lock_eval.invalid e2.Core.Lock_eval.invalid

let test_open_loop_signature () =
  Alcotest.(check bool) "open loop + buffer" true
    (Core.Lock_eval.is_open_loop_passthrough
       { Rfchain.Config.nominal with fb_enable = false; comp_clock_enable = false });
  Alcotest.(check bool) "closed loop is not" false
    (Core.Lock_eval.is_open_loop_passthrough Rfchain.Config.nominal)

(* ------------------------------------------------------------ Threat_model *)

let test_threats () =
  let rx = Rfchain.Receiver.create (chip ()) std in
  (* Full calibration (with the SFDR term): threat scenarios check every
     specified performance, so the golden part must genuinely pass. *)
  let report = (Calibration.Calibrate.run ~passes:1 rx).Calibration.Calibrate.report in
  let key = Core.Key.make ~standard:std ~chip:(chip ()) report.Calibration.Calibrate.key in
  let clone = Core.Threat_model.cloning std ~golden_key:key in
  Alcotest.(check bool) "cloning defeated" false clone.Core.Threat_model.attacker_success;
  let over = Core.Threat_model.overproduction ~fabricated:100 ~provisioned:60 in
  Alcotest.(check bool) "overproduction defeated" false over.Core.Threat_model.attacker_success;
  let lut_r, puf_r = Core.Threat_model.recycling std ~seed:42 ~key in
  Alcotest.(check bool) "LUT recycling is the gap" true lut_r.Core.Threat_model.attacker_success;
  Alcotest.(check bool) "PUF recycling defeated" false puf_r.Core.Threat_model.attacker_success;
  let remark = Core.Threat_model.remarking std ~seed:990009 in
  Alcotest.(check bool) "remarking defeated" false remark.Core.Threat_model.attacker_success

(* ------------------------------------------------------------- Key_codec *)

let test_codec_hex_roundtrip () =
  let config = Rfchain.Config.nominal in
  let hex = Core.Key_codec.config_to_hex config in
  Alcotest.(check int) "16 digits" 16 (String.length hex);
  match Core.Key_codec.config_of_hex hex with
  | Ok c -> Alcotest.(check bool) "roundtrip" true (Rfchain.Config.equal c config)
  | Error e -> Alcotest.fail e

let test_codec_rejects_bad_hex () =
  let is_err s = Result.is_error (Core.Key_codec.config_of_hex s) in
  Alcotest.(check bool) "short" true (is_err "abc");
  Alcotest.(check bool) "long" true (is_err "00112233445566778899");
  Alcotest.(check bool) "non-hex" true (is_err "00112233445566zz")

let test_codec_image_roundtrip () =
  let c = chip () in
  let keys =
    [
      Core.Key.make ~standard:Rfchain.Standards.bluetooth ~chip:c Rfchain.Config.nominal;
      Core.Key.make ~standard:Rfchain.Standards.max_frequency ~chip:c
        (Rfchain.Config.with_field Rfchain.Config.nominal "gm_q" 17);
    ]
  in
  match Core.Key_codec.record_of_keys keys with
  | Error e -> Alcotest.fail e
  | Ok record -> (
    let image = Core.Key_codec.to_image record in
    match Core.Key_codec.of_image image with
    | Error e -> Alcotest.fail e
    | Ok parsed ->
      Alcotest.(check int) "die preserved" record.Core.Key_codec.chip_seed
        parsed.Core.Key_codec.chip_seed;
      Alcotest.(check int) "entry count" 2 (List.length parsed.Core.Key_codec.entries);
      List.iter2
        (fun (sa, ca) (sb, cb) ->
          Alcotest.(check string) "standard" sa sb;
          Alcotest.(check bool) "config" true (Rfchain.Config.equal ca cb))
        record.Core.Key_codec.entries parsed.Core.Key_codec.entries)

let test_codec_image_errors () =
  let is_err s = Result.is_error (Core.Key_codec.of_image s) in
  Alcotest.(check bool) "missing die header" true (is_err "bluetooth=0011223344556677\n");
  Alcotest.(check bool) "bad seed" true (is_err "die abc\n");
  Alcotest.(check bool) "bad line" true (is_err "die 1\nnonsense\n");
  Alcotest.(check bool) "duplicate standard" true
    (is_err "die 1\nbt=0011223344556677\nbt=0011223344556677\n");
  Alcotest.(check bool) "comments and blanks ok" true
    (Result.is_ok (Core.Key_codec.of_image "# c\n\ndie 7\nbt=0011223344556677\n"))

let test_codec_record_validation () =
  let k1 = Core.Key.make ~standard:Rfchain.Standards.bluetooth ~chip:(chip ~seed:1 ()) Rfchain.Config.nominal in
  let k2 = Core.Key.make ~standard:Rfchain.Standards.zigbee ~chip:(chip ~seed:2 ()) Rfchain.Config.nominal in
  Alcotest.(check bool) "mixed dice rejected" true
    (Result.is_error (Core.Key_codec.record_of_keys [ k1; k2 ]));
  Alcotest.(check bool) "empty rejected" true (Result.is_error (Core.Key_codec.record_of_keys []))

(* ------------------------------------------------------------ Properties *)

let prop_puf_xor_roundtrip =
  QCheck.Test.make ~name:"PUF XOR provisioning roundtrips any word" ~count:100
    QCheck.(pair small_int int64)
    (fun (seed, bits) ->
      let c = chip ~seed ()
      and config = Rfchain.Config.of_bits bits in
      let key = Core.Key.make ~standard:std ~chip:c config in
      let scheme, user_keys = Core.Key_mgmt.provision_puf c [ key ] in
      match Core.Key_mgmt.power_on scheme ~user_keys ~standard:"max-3GHz" () with
      | Ok c' -> Rfchain.Config.equal c' config
      | Error _ -> false)

let prop_activation_binds_key_bits =
  QCheck.Test.make ~name:"activation verifies only the signed bits" ~count:25 QCheck.int64
    (fun bits ->
      let kp = Core.Activation.design_house_keys () in
      let pub = Core.Activation.public_of kp in
      let uk = { Core.Key_mgmt.standard = "s"; key_bits = bits } in
      let act = Core.Activation.issue kp ~chip_id:1L uk in
      Core.Activation.verify pub act
      && not
           (Core.Activation.verify pub
              { act with Core.Activation.user_key = { uk with key_bits = Int64.add bits 1L } }))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex codec roundtrips any word" ~count:200 QCheck.int64
    (fun bits ->
      let config = Rfchain.Config.of_bits bits in
      match Core.Key_codec.config_of_hex (Core.Key_codec.config_to_hex config) with
      | Ok c -> Rfchain.Config.equal c config
      | Error _ -> false)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "key",
        [
          Alcotest.test_case "identity" `Quick test_key_identity;
          Alcotest.test_case "unlock semantics" `Quick test_key_unlocks_semantics;
        ] );
      ( "lut",
        [
          Alcotest.test_case "select" `Quick test_lut_select;
          Alcotest.test_case "tamper response" `Quick test_lut_tamper;
        ] );
      ( "puf",
        [
          Alcotest.test_case "stability" `Quick test_puf_stability;
          Alcotest.test_case "uniqueness" `Quick test_puf_uniqueness;
          Alcotest.test_case "same die" `Quick test_puf_same_die_zero_distance;
        ] );
      ( "key management",
        [
          Alcotest.test_case "LUT power-on" `Quick test_lut_scheme_power_on;
          Alcotest.test_case "PUF power-on" `Quick test_puf_scheme_power_on;
          Alcotest.test_case "user key masks config" `Quick test_puf_user_key_masks_config;
          Alcotest.test_case "wrong die" `Quick test_puf_scheme_wrong_die;
        ] );
      ( "activation",
        [
          Alcotest.test_case "roundtrip" `Quick test_activation_roundtrip;
          Alcotest.test_case "tamper detection" `Quick test_activation_tamper_detected;
          Alcotest.test_case "forgery resistance" `Quick test_activation_cannot_forge;
        ] );
      ( "lock evaluation",
        [
          Alcotest.test_case "shapes" `Slow test_lock_eval_shapes;
          Alcotest.test_case "deterministic" `Slow test_lock_eval_deterministic;
          Alcotest.test_case "open-loop signature" `Quick test_open_loop_signature;
        ] );
      ("threat model", [ Alcotest.test_case "scenarios" `Slow test_threats ]);
      ( "key codec",
        [
          Alcotest.test_case "hex roundtrip" `Quick test_codec_hex_roundtrip;
          Alcotest.test_case "bad hex" `Quick test_codec_rejects_bad_hex;
          Alcotest.test_case "image roundtrip" `Quick test_codec_image_roundtrip;
          Alcotest.test_case "image errors" `Quick test_codec_image_errors;
          Alcotest.test_case "record validation" `Quick test_codec_record_validation;
        ] );
      ("properties", qcheck [ prop_puf_xor_roundtrip; prop_activation_binds_key_bits; prop_hex_roundtrip ]);
    ]
