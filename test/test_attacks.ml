(* Tests for the attack implementations and cost model. *)

let std = Rfchain.Standards.max_frequency

(* Full calibration (including the SFDR term): the oracle must be a
   genuinely in-spec production part. *)
let deployed_oracle =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some oracle -> oracle
    | None ->
      let chip = Circuit.Process.fabricate ~seed:42 () in
      let rx = Rfchain.Receiver.create chip std in
      let report = (Calibration.Calibrate.run ~passes:1 rx).Calibration.Calibrate.report in
      let key = Core.Key.make ~standard:std ~chip report.Calibration.Calibrate.key in
      let oracle = Attacks.Oracle.deploy std ~chip_seed:42 ~key in
      cache := Some oracle;
      oracle

(* --------------------------------------------------------------- Oracle *)

let test_oracle_reference () =
  let oracle = deployed_oracle () in
  let perf = Attacks.Oracle.reference_performance oracle in
  Alcotest.(check bool) "oracle performs in spec" true
    (Metrics.Spec.check std perf).Metrics.Spec.functional

let test_refab_counts_trials () =
  let oracle = deployed_oracle () in
  let refab = Attacks.Oracle.refabricate oracle ~attacker_seed:7 in
  Alcotest.(check int) "starts at zero" 0 (Attacks.Oracle.trials_spent refab);
  let _ = Attacks.Oracle.try_key_fast refab Rfchain.Config.nominal in
  Alcotest.(check int) "fast probe is one trial" 1 (Attacks.Oracle.trials_spent refab);
  let _ = Attacks.Oracle.try_key refab Rfchain.Config.nominal in
  Alcotest.(check bool) "full measurement counted" true (Attacks.Oracle.trials_spent refab >= 3)

let test_trial_watchdog () =
  let oracle = deployed_oracle () in
  let refab = Attacks.Oracle.refabricate ~trial_limit:5 oracle ~attacker_seed:8 in
  let r = Attacks.Brute_force.run ~budget:1000 refab in
  Alcotest.(check bool)
    (Printf.sprintf "brute force stopped by watchdog (spent %d)" (Attacks.Oracle.trials_spent refab))
    true
    (Attacks.Oracle.trials_spent refab <= 7 && r.Attacks.Brute_force.trials < 1000);
  (match Attacks.Oracle.try_key_fast refab Rfchain.Config.nominal with
  | Error (Attacks.Oracle.Budget_exhausted { limit; _ }) ->
    Alcotest.(check int) "reports the armed limit" 5 limit
  | Ok _ -> Alcotest.fail "watchdog did not trip");
  let sa =
    Attacks.Optimize.simulated_annealing ~budget:1000
      (Attacks.Oracle.refabricate ~trial_limit:5 oracle ~attacker_seed:9)
  in
  Alcotest.(check bool) "SA reports the oracle watchdog" true
    (sa.Attacks.Optimize.termination = Attacks.Optimize.Oracle_exhausted)

(* ----------------------------------------------------------------- Cost *)

let test_cost_table () =
  let rows = Attacks.Cost.brute_force_table () in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "astronomical cost" true
        (r.Attacks.Cost.total_seconds > 3.15e7 *. 1e6) (* over a million years *))
    rows

let test_cost_humanization () =
  Alcotest.(check string) "seconds" "30.0 s" (Attacks.Cost.seconds_to_human 30.0);
  Alcotest.(check string) "minutes" "20.0 min" (Attacks.Cost.seconds_to_human 1200.0);
  Alcotest.(check string) "hours" "3.0 h" (Attacks.Cost.seconds_to_human 10800.0);
  Alcotest.(check bool) "years rendered in scientific form" true
    (String.length (Attacks.Cost.seconds_to_human 1e18) > 0)

let test_cost_paper_constants () =
  Alcotest.(check (float 1e-9)) "20 min SNR trial" 1200.0 Attacks.Cost.snr_trial_seconds;
  Alcotest.(check (float 1e-9)) "3 h DR trial" 10800.0 Attacks.Cost.dr_sweep_trial_seconds;
  Alcotest.(check (float 1e-9)) "30 min SFDR trial" 1800.0 Attacks.Cost.sfdr_trial_seconds;
  Alcotest.(check (float 1e3)) "2^63 expected trials" (2.0 ** 63.0)
    Attacks.Cost.expected_brute_force_trials

(* ---------------------------------------------------------- Brute force *)

let test_brute_force_budget () =
  let oracle = deployed_oracle () in
  let refab = Attacks.Oracle.refabricate oracle ~attacker_seed:11 in
  let result = Attacks.Brute_force.run ~budget:30 refab in
  Alcotest.(check bool) "stops at the budget" true (result.Attacks.Brute_force.trials <= 30);
  Alcotest.(check bool) "30 random keys do not unlock" false result.Attacks.Brute_force.success;
  Alcotest.(check bool) "records the best attempt" true
    (Float.is_finite result.Attacks.Brute_force.best_snr_mod_db);
  Alcotest.(check (float 1.0)) "projected sim time"
    (float_of_int result.Attacks.Brute_force.trials *. 1200.0)
    result.Attacks.Brute_force.projected_seconds_sim

let test_brute_force_deterministic () =
  let oracle = deployed_oracle () in
  let r1 = Attacks.Brute_force.run ~seed:5 ~budget:10 (Attacks.Oracle.refabricate oracle ~attacker_seed:3) in
  let r2 = Attacks.Brute_force.run ~seed:5 ~budget:10 (Attacks.Oracle.refabricate oracle ~attacker_seed:3) in
  Alcotest.(check (float 1e-9)) "reproducible" r1.Attacks.Brute_force.best_snr_mod_db
    r2.Attacks.Brute_force.best_snr_mod_db

(* ----------------------------------------------------------- Optimisers *)

let test_sa_budget_and_trace () =
  let oracle = deployed_oracle () in
  let refab = Attacks.Oracle.refabricate oracle ~attacker_seed:13 in
  let r = Attacks.Optimize.simulated_annealing ~budget:40 refab in
  Alcotest.(check bool) "respects budget" true (r.Attacks.Optimize.evaluations <= 40);
  Alcotest.(check bool) "no success within tiny budget" false r.Attacks.Optimize.success;
  (* The recorded trace must be monotonically improving. *)
  let rec monotone : Attacks.Optimize.trace_point list -> bool = function
    | a :: (b :: _ as rest) ->
      a.Attacks.Optimize.best_snr_mod_db <= b.Attacks.Optimize.best_snr_mod_db && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "trace improves monotonically" true (monotone r.Attacks.Optimize.trace)

let test_ga_budget () =
  let oracle = deployed_oracle () in
  let refab = Attacks.Oracle.refabricate oracle ~attacker_seed:17 in
  let r = Attacks.Optimize.genetic ~budget:40 refab in
  Alcotest.(check bool) "respects budget" true (r.Attacks.Optimize.evaluations <= 40);
  Alcotest.(check bool) "no success within tiny budget" false r.Attacks.Optimize.success

let test_hill_climb_from_golden_succeeds () =
  (* Seeding the search with a stolen key from another die is the paper's
     "good starting point" scenario: on the attacker's die it should make
     real progress (and usually converge), unlike blind search. *)
  let oracle = deployed_oracle () in
  let chip_a = Circuit.Process.fabricate ~seed:4242 () in
  let rx_a = Rfchain.Receiver.create chip_a std in
  let stolen = Calibration.Calibrate.quick rx_a in
  let refab = Attacks.Oracle.refabricate oracle ~attacker_seed:4343 in
  let blind = Attacks.Optimize.simulated_annealing ~budget:300 (Attacks.Oracle.refabricate oracle ~attacker_seed:4343) in
  let seeded = Attacks.Optimize.hill_climb_from ~start:stolen ~budget:300 refab in
  Alcotest.(check bool)
    (Printf.sprintf "seeded (%.1f dB) beats blind (%.1f dB)" seeded.Attacks.Optimize.best_snr_mod_db
       blind.Attacks.Optimize.best_snr_mod_db)
    true
    (seeded.Attacks.Optimize.best_snr_mod_db > blind.Attacks.Optimize.best_snr_mod_db)

(* ------------------------------------------------------------- Subblock *)

let test_remaining_key_space () =
  Alcotest.(check int) "caps + gm_q recovered leaves 42 bits" 42
    (Attacks.Subblock.remaining_key_space_bits ~recovered:[ "cap_coarse"; "cap_fine"; "gm_q" ]);
  Alcotest.(check int) "nothing recovered leaves 64" 64
    (Attacks.Subblock.remaining_key_space_bits ~recovered:[])

let test_cap_only_attack_fails () =
  let oracle = deployed_oracle () in
  let refab = Attacks.Oracle.refabricate oracle ~attacker_seed:23 in
  let r = Attacks.Subblock.cap_only_attack ~budget:60 refab in
  Alcotest.(check bool) "conditioning failure blocks the sub-attack" false r.Attacks.Subblock.success

let () =
  Alcotest.run "attacks"
    [
      ( "oracle",
        [
          Alcotest.test_case "reference performance" `Slow test_oracle_reference;
          Alcotest.test_case "trial accounting" `Quick test_refab_counts_trials;
          Alcotest.test_case "trial watchdog" `Slow test_trial_watchdog;
        ] );
      ( "cost",
        [
          Alcotest.test_case "table" `Quick test_cost_table;
          Alcotest.test_case "humanization" `Quick test_cost_humanization;
          Alcotest.test_case "paper constants" `Quick test_cost_paper_constants;
        ] );
      ( "brute force",
        [
          Alcotest.test_case "budget" `Slow test_brute_force_budget;
          Alcotest.test_case "deterministic" `Slow test_brute_force_deterministic;
        ] );
      ( "optimisers",
        [
          Alcotest.test_case "SA budget and trace" `Slow test_sa_budget_and_trace;
          Alcotest.test_case "GA budget" `Slow test_ga_budget;
          Alcotest.test_case "seeded hill climb" `Slow test_hill_climb_from_golden_succeeds;
        ] );
      ( "subblock",
        [
          Alcotest.test_case "remaining key space" `Quick test_remaining_key_space;
          Alcotest.test_case "cap-only fails" `Slow test_cap_only_attack_fails;
        ] );
    ]
