(* Tests for the central evaluation engine: cache hits must be free
   (zero simulator steps) and bit-identical, the LRU must evict at
   capacity, batches must preserve request order, and the Domains
   backend must agree with the sequential backend bit-for-bit. *)

let standard =
  match Rfchain.Standards.find_opt "bluetooth" with
  | Some s -> s
  | None -> Alcotest.fail "bluetooth standard missing"

let die = lazy (Engine.Request.die_of_seed 42)

let config_of_bit bit =
  Rfchain.Config.of_bits
    (Int64.logxor (Rfchain.Config.to_bits Rfchain.Config.nominal) (Int64.shift_left 1L bit))

let request config =
  Engine.Request.make ~die:(Lazy.force die) ~standard ~config Engine.Request.Snr_mod

let counter name =
  match Telemetry.Counter.find name with
  | Some c -> Telemetry.Counter.value c
  | None -> 0

let bits = Int64.bits_of_float

let same_measurement (a : Metrics.Spec.measurement) (b : Metrics.Spec.measurement) =
  bits a.Metrics.Spec.snr_mod_db = bits b.Metrics.Spec.snr_mod_db
  && bits a.Metrics.Spec.snr_rx_db = bits b.Metrics.Spec.snr_rx_db
  &&
  match (a.Metrics.Spec.sfdr_db, b.Metrics.Spec.sfdr_db) with
  | None, None -> true
  | Some x, Some y -> bits x = bits y
  | _ -> false

(* -------------------------------------------------------------- cache *)

let test_cache_hit () =
  let engine = Engine.Service.create () in
  let req = request Rfchain.Config.nominal in
  let trials0 = counter "measure.trials" in
  let first = Engine.Service.eval ~engine req in
  let miss_cost = counter "measure.trials" - trials0 in
  let steps0 = counter "sdm.steps" in
  let hits0 = counter "engine.cache.hit" in
  let trials1 = counter "measure.trials" in
  let second = Engine.Service.eval ~engine req in
  Alcotest.(check bool) "hit is bit-identical to the miss" true (same_measurement first second);
  Alcotest.(check int) "hit runs zero simulator steps" steps0 (counter "sdm.steps");
  Alcotest.(check int) "hit is recorded" (hits0 + 1) (counter "engine.cache.hit");
  (* The hit replays the original trial cost, so query accounting is
     invariant to cache warmth. *)
  Alcotest.(check int) "hit replays the trial cost" (trials1 + miss_cost)
    (counter "measure.trials");
  Engine.Service.shutdown engine

let test_lru_eviction () =
  let engine = Engine.Service.create ~cache_capacity:2 () in
  let r1 = request (config_of_bit 0) in
  let r2 = request (config_of_bit 1) in
  let r3 = request (config_of_bit 2) in
  ignore (Engine.Service.eval ~engine r1);
  ignore (Engine.Service.eval ~engine r2);
  let evict0 = counter "engine.cache.evict" in
  ignore (Engine.Service.eval ~engine r3);
  Alcotest.(check int) "third insert evicts at capacity 2" (evict0 + 1)
    (counter "engine.cache.evict");
  (* r1 was least recently used, so it is the one that went. *)
  let miss0 = counter "engine.cache.miss" in
  let hit0 = counter "engine.cache.hit" in
  ignore (Engine.Service.eval ~engine r1);
  Alcotest.(check int) "evicted entry misses" (miss0 + 1) (counter "engine.cache.miss");
  Alcotest.(check int) "no phantom hit for the evicted entry" hit0 (counter "engine.cache.hit");
  (* r3 is still resident. *)
  ignore (Engine.Service.eval ~engine r3);
  Alcotest.(check int) "recent entry still hits" (hit0 + 1) (counter "engine.cache.hit");
  Engine.Service.shutdown engine

let test_cache_peak () =
  let cache = Engine.Cache.create ~capacity:2 in
  let v =
    {
      Engine.Cache.measurement = { Metrics.Spec.snr_mod_db = 1.0; snr_rx_db = 2.0; sfdr_db = None };
      trial_cost = 1;
    }
  in
  Alcotest.(check int) "fresh cache has peak 0" 0 (Engine.Cache.peak cache);
  Engine.Cache.add cache "a" v;
  Engine.Cache.add cache "b" v;
  Engine.Cache.add cache "c" v;
  (* Eviction keeps occupancy at capacity: the high-water mark proves
     the bound actually bit, it never exceeds it. *)
  Alcotest.(check int) "peak saturates at capacity" 2 (Engine.Cache.peak cache);
  Alcotest.(check int) "live occupancy equals capacity" 2 (Engine.Cache.length cache);
  Engine.Cache.add cache "a" v;
  Alcotest.(check int) "refreshing an entry leaves the peak alone" 2 (Engine.Cache.peak cache)

(* -------------------------------------------------------------- batch *)

let test_batch_order () =
  let engine = Engine.Service.create ~cache:false () in
  let reqs = List.map (fun bit -> request (config_of_bit bit)) [ 3; 0; 7; 1; 5 ] in
  let batch = Engine.Service.eval_batch ~engine reqs in
  let singles = List.map (fun r -> Engine.Service.eval ~engine r) reqs in
  Alcotest.(check int) "one result per request" (List.length reqs) (List.length batch);
  List.iteri
    (fun i (b, s) ->
      Alcotest.(check bool)
        (Printf.sprintf "batch slot %d matches its request" i)
        true (same_measurement b s))
    (List.combine batch singles);
  Engine.Service.shutdown engine

let seq_engine = lazy (Engine.Service.create ~jobs:1 ~cache:false ())
let pool_engine = lazy (Engine.Service.create ~jobs:2 ~cache:false ())
let pool_engine4 = lazy (Engine.Service.create ~jobs:4 ~cache:false ())
let pool_engine8 = lazy (Engine.Service.create ~jobs:8 ~cache:false ())

(* The whole jobs sweep the CLI exposes: the sharded scheduler must be
   invisible in the results at every lane count. *)
let prop_backend_equivalence =
  QCheck.Test.make ~name:"Seq and Domains backends agree bit-for-bit at jobs 2/4/8"
    ~count:4
    QCheck.(list_of_size (Gen.int_range 1 4) (int_range 0 63))
    (fun flipped_bits ->
      let reqs = List.map (fun bit -> request (config_of_bit bit)) flipped_bits in
      let seq = Engine.Service.eval_batch ~engine:(Lazy.force seq_engine) reqs in
      List.for_all
        (fun engine ->
          let par = Engine.Service.eval_batch ~engine:(Lazy.force engine) reqs in
          List.for_all2 same_measurement seq par)
        [ pool_engine; pool_engine4; pool_engine8 ])

(* Campaign output across the jobs sweep: the fig7-style grid of cells
   and the flip probes must be bit-identical however the scheduler
   deals, steals and rebalances the batches.  (The CLI-level byte
   compare of the full fig7/campaign reports is `make engine-smoke` /
   `make sched-smoke`; this is the in-process property.) *)
let same_campaign (a : Faults.Campaign.t) (b : Faults.Campaign.t) =
  List.length a.Faults.Campaign.cells = List.length b.Faults.Campaign.cells
  && List.for_all2
       (fun (x : Faults.Campaign.cell) (y : Faults.Campaign.cell) ->
         x.Faults.Campaign.die_seed = y.Faults.Campaign.die_seed
         && x.Faults.Campaign.mechanism = y.Faults.Campaign.mechanism
         && bits x.Faults.Campaign.snr_mod_db = bits y.Faults.Campaign.snr_mod_db
         && bits x.Faults.Campaign.lock_margin_db = bits y.Faults.Campaign.lock_margin_db
         && x.Faults.Campaign.in_spec = y.Faults.Campaign.in_spec)
       a.Faults.Campaign.cells b.Faults.Campaign.cells
  && List.for_all2
       (fun (x : Faults.Campaign.flip_probe) (y : Faults.Campaign.flip_probe) ->
         x.Faults.Campaign.bit = y.Faults.Campaign.bit
         && bits x.Faults.Campaign.flip_snr_mod_db = bits y.Faults.Campaign.flip_snr_mod_db
         && x.Faults.Campaign.survives_full = y.Faults.Campaign.survives_full)
       a.Faults.Campaign.flips b.Faults.Campaign.flips
  && a.Faults.Campaign.unlocked_bits = b.Faults.Campaign.unlocked_bits

let prop_campaign_jobs_equivalence =
  QCheck.Test.make ~name:"campaign cells/flips bit-identical across jobs 1/4/8" ~count:1
    QCheck.(int_range 40 44)
    (fun seed ->
      let run engine =
        match
          Faults.Campaign.run ~dies:1 ~seed ~engine standard
        with
        | Ok c -> c
        | Error e -> QCheck.Test.fail_report (Faults.Error.to_string e)
      in
      let base = run (Lazy.force seq_engine) in
      same_campaign base (run (Lazy.force pool_engine4))
      && same_campaign base (run (Lazy.force pool_engine8)))

(* ------------------------------------------------------------ account *)

let test_account_atomic_hammer () =
  let a = Engine.Service.Account.make () in
  let per_domain = 25_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Engine.Service.Account.charge a 3
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no charge lost across 4 domains" (4 * per_domain * 3)
    (Engine.Service.Account.spent a)

(* Shared account under concurrent evaluation: the main domain drives
   the jobs-4 pool while two extra domains evaluate the same list
   through the worker fallback path, all charging one account. *)
let prop_shared_account =
  QCheck.Test.make ~name:"shared account never loses charges under eval_batch --jobs 4"
    ~count:3
    QCheck.(list_of_size (Gen.int_range 1 3) (int_range 0 63))
    (fun flipped_bits ->
      let reqs = List.map (fun bit -> request (config_of_bit bit)) flipped_bits in
      let engine = Lazy.force pool_engine4 in
      let solo = Engine.Service.Account.make () in
      ignore (Engine.Service.eval_batch ~engine ~account:solo reqs);
      let expected = 3 * Engine.Service.Account.spent solo in
      let shared = Engine.Service.Account.make () in
      let evaluate () = ignore (Engine.Service.eval_batch ~engine ~account:shared reqs) in
      let others = List.init 2 (fun _ -> Domain.spawn evaluate) in
      evaluate ();
      List.iter Domain.join others;
      Engine.Service.Account.spent shared = expected)

(* --------------------------------------------------------------- pool *)

let test_pool_reusable_after_exception () =
  let pool = Engine.Pool.create 2 in
  let n = 32 in
  let out = Array.make n 0 in
  (match Engine.Pool.run pool (fun i -> if i = 7 then failwith "boom" else out.(i) <- i + 1) n with
  | () -> Alcotest.fail "the raising job must propagate its exception"
  | exception Failure msg -> Alcotest.(check string) "first failure surfaces" "boom" msg);
  Array.fill out 0 n 0;
  Engine.Pool.run pool (fun i -> out.(i) <- i + 1) n;
  Alcotest.(check bool) "pool still completes every index after a failed run" true
    (Array.for_all (fun v -> v > 0) out);
  Engine.Pool.shutdown pool

let test_pool_worker_respawn () =
  (* Eager: the test needs a worker lane to actually wake and claim so
     the one-shot kill lands on it — the default hardware-aware wake
     budget may leave every worker parked on a small machine. *)
  let pool = Engine.Pool.create ~eager:true 2 in
  let n = 64 in
  let main = Domain.self () in
  let killed = Atomic.make false in
  let restarts0 = counter "pool.worker.restarts" in
  let out = Array.make n 0 in
  (* Every lane spins until the one-shot kill has fired: the first
     worker lane to claim an index dies, so worker participation (and
     exactly one death) is guaranteed, not scheduler luck.  The main
     lane cannot deadlock — it spins with no lock held while an idle
     worker claims, dies, and releases everyone. *)
  Engine.Pool.run pool
    (fun i ->
      if Domain.self () <> main && Atomic.compare_and_set killed false true then
        raise Engine.Pool.Worker_killed;
      while not (Atomic.get killed) do
        Domain.cpu_relax ()
      done;
      out.(i) <- 1)
    n;
  Alcotest.(check bool) "every index completed despite the death" true
    (Array.for_all (fun v -> v = 1) out);
  Alcotest.(check bool) "a worker lane was killed" true (Atomic.get killed);
  Alcotest.(check int) "restart counted" (restarts0 + 1) (counter "pool.worker.restarts");
  Array.fill out 0 n 0;
  Engine.Pool.run pool (fun i -> out.(i) <- i + 1) n;
  Alcotest.(check bool) "pool usable after the respawn" true (Array.for_all (fun v -> v > 0) out);
  Engine.Pool.shutdown pool

(* Steal under skew: single-index chunks deal every 4th index to each
   of the 4 lanes, and the indices owned by worker lanes are made
   slow.  Whichever lane drains first (on a small CI box that is the
   main lane, whose items are fast and whose workers may barely get
   scheduled) must pull the remaining chunks off the loaded queues —
   completion plus a nonzero steal count proves the path, on one core
   or many. *)
let test_pool_steal_under_skew () =
  let pool = Engine.Pool.create ~eager:true 3 in
  let steals0 = counter "pool.steal.count" in
  let n = 64 in
  let out = Array.make n 0 in
  Engine.Pool.run ~chunk:1 pool
    (fun i ->
      (* Deal order is main,w0,w1,w2 — [i mod 4 <> 0] lands on a
         worker lane's queue.  A coarse spin stands in for a slow
         work item. *)
      if i mod 4 <> 0 then
        for _ = 1 to 20_000 do
          Domain.cpu_relax ()
        done;
      out.(i) <- out.(i) + 1)
    n;
  Alcotest.(check bool) "every index ran exactly once" true (Array.for_all (( = ) 1) out);
  Alcotest.(check bool) "at least one chunk was stolen" true
    (counter "pool.steal.count" > steals0);
  Engine.Pool.shutdown pool

(* Respawn mid-chunk: a worker dies partway through a multi-index
   chunk (possibly one it stole).  The unfinished remainder — the
   in-flight index included — must be requeued and completed by the
   survivors, exactly once each, and the dead lane must be replaced. *)
let test_pool_respawn_mid_chunk () =
  let pool = Engine.Pool.create ~eager:true 2 in
  let n = 24 in
  let main = Domain.self () in
  let killed = Atomic.make false in
  let restarts0 = counter "pool.worker.restarts" in
  let out = Array.make n 0 in
  Engine.Pool.run ~chunk:4 pool
    (fun i ->
      if Domain.self () <> main && Atomic.compare_and_set killed false true then
        raise Engine.Pool.Worker_killed;
      while not (Atomic.get killed) do
        Domain.cpu_relax ()
      done;
      out.(i) <- out.(i) + 1)
    n;
  Alcotest.(check bool) "a worker lane was killed" true (Atomic.get killed);
  Alcotest.(check bool) "every index completed exactly once" true
    (Array.for_all (( = ) 1) out);
  Alcotest.(check int) "restart counted" (restarts0 + 1) (counter "pool.worker.restarts");
  Array.fill out 0 n 0;
  Engine.Pool.run pool (fun i -> out.(i) <- i + 1) n;
  Alcotest.(check bool) "pool usable after the mid-chunk respawn" true
    (Array.for_all (fun v -> v > 0) out);
  Engine.Pool.shutdown pool

(* ------------------------------------------------------------- stream *)

(* Out-of-order delivery: item 0 blocks until item 1 (on the other
   lane) has run, then sleeps long enough for item 1's completion to be
   queued first.  Whichever lane ends up with which item — deal, steal
   or claim — item 1's completion strictly precedes item 0's, so the
   first delivery must be index 1.  That is the barrier's absence made
   observable: under the old per-chunk submit, nothing was delivered
   until the whole batch joined. *)
let test_pool_stream_out_of_order () =
  let pool = Engine.Pool.create ~eager:true 1 in
  let gate = Atomic.make false in
  let ticket =
    Engine.Pool.submit_stream ~chunk:1 pool
      (fun i ->
        if i = 0 then begin
          while not (Atomic.get gate) do
            Domain.cpu_relax ()
          done;
          (* Yield the core so the lane that ran item 1 certainly gets
             to push its completion before item 0's lands behind it. *)
          Unix.sleepf 0.05
        end
        else Atomic.set gate true;
        i * 10)
      2
  in
  (match Engine.Pool.next_result ticket with
  | Some (i, v) ->
    Alcotest.(check int) "item 1 is delivered first (out of order)" 1 i;
    Alcotest.(check int) "its result rides along" 10 v
  | None -> Alcotest.fail "a completed item must be deliverable");
  (match Engine.Pool.next_result ticket with
  | Some (i, v) ->
    Alcotest.(check int) "the gated item arrives second" 0 i;
    Alcotest.(check int) "gated item's result" 0 v
  | None -> Alcotest.fail "the gated item must still be delivered");
  Alcotest.(check bool) "delivery ends with None" true (Engine.Pool.next_result ticket = None);
  let out = Array.make 8 0 in
  Engine.Pool.run pool (fun i -> out.(i) <- i + 1) 8;
  Alcotest.(check bool) "pool free for an ordinary run after the stream" true
    (Array.for_all (fun v -> v > 0) out);
  Engine.Pool.shutdown pool

let test_pool_stream_discard () =
  let pool = Engine.Pool.create 1 in
  let ran = Array.make 64 0 in
  let ticket = Engine.Pool.submit_stream pool (fun i -> ran.(i) <- 1) 64 in
  (match Engine.Pool.next_result ticket with
  | Some _ -> ()
  | None -> Alcotest.fail "expected at least one delivery before the discard");
  (* A second job over an undrained ticket must be refused... *)
  (match Engine.Pool.run pool ignore 4 with
  | () -> Alcotest.fail "posting over an in-flight stream must be refused"
  | exception Invalid_argument _ -> ());
  Engine.Pool.discard ticket;
  Alcotest.(check bool) "discarded ticket delivers nothing" true
    (Engine.Pool.next_result ticket = None);
  (match Engine.Pool.drain ticket with
  | _ -> Alcotest.fail "draining a discarded ticket must be refused"
  | exception Invalid_argument _ -> ());
  (* ... and after the discard the pool is free again. *)
  let out = Array.make 8 0 in
  Engine.Pool.run pool (fun i -> out.(i) <- i + 1) 8;
  Alcotest.(check bool) "pool reusable after the discard" true
    (Array.for_all (fun v -> v > 0) out);
  Engine.Pool.shutdown pool

(* The tentpole equivalence: a drained stream is bit-identical to the
   batch API on the same requests, at every lane count the CLI
   exposes, out-of-order completion and all. *)
let prop_stream_equals_batch =
  QCheck.Test.make ~name:"eval_stream reassembled by index = eval_batch at jobs 1/4/8"
    ~count:4
    QCheck.(list_of_size (Gen.int_range 1 6) (int_range 0 63))
    (fun flipped_bits ->
      let reqs = List.map (fun bit -> request (config_of_bit bit)) flipped_bits in
      List.for_all
        (fun engine ->
          let engine = Lazy.force engine in
          let batch = Engine.Service.eval_batch ~engine reqs in
          match Engine.Service.stream_drain (Engine.Service.eval_stream ~engine reqs) with
          | Ok ms -> List.for_all2 same_measurement batch ms
          | Error _ -> QCheck.Test.fail_report "stream without a deadline was denied")
        [ seq_engine; pool_engine4; pool_engine8 ])

(* Cache hits short-circuit before anything reaches the scheduler and
   are delivered first, in request order, at replayed cost. *)
let test_stream_hits_first () =
  let engine = Engine.Service.create () in
  let ra = request (config_of_bit 33) in
  let rb = request (config_of_bit 34) in
  let cached = Engine.Service.eval ~engine rb in
  let steps0 = counter "sdm.steps" in
  let stream = Engine.Service.eval_stream ~engine [ ra; rb ] in
  (match Engine.Service.stream_next stream with
  | Ok (Some (i, m)) ->
    Alcotest.(check int) "the cache hit is delivered first" 1 i;
    Alcotest.(check bool) "hit is bit-identical" true (same_measurement cached m);
    Alcotest.(check int) "hit delivery ran zero simulator steps" steps0 (counter "sdm.steps")
  | _ -> Alcotest.fail "expected the hit as the first delivery");
  (match Engine.Service.stream_drain stream with
  | Ok ms ->
    Alcotest.(check int) "drain returns the full grid in request order" 2 (List.length ms)
  | Error _ -> Alcotest.fail "drain must succeed");
  Engine.Service.shutdown engine

let test_stream_abort_reusable () =
  let engine = Lazy.force pool_engine4 in
  let reqs = List.map (fun bit -> request (config_of_bit bit)) [ 45; 46; 47; 48; 49 ] in
  let stream = Engine.Service.eval_stream ~engine reqs in
  (match Engine.Service.stream_next stream with
  | Ok (Some _) -> ()
  | _ -> Alcotest.fail "expected one delivery before the abort");
  Engine.Service.stream_abort stream;
  Alcotest.(check bool) "an aborted stream is at its end" true
    (Engine.Service.stream_next stream = Ok None);
  (match Engine.Service.stream_drain stream with
  | _ -> Alcotest.fail "draining an aborted stream must be refused"
  | exception Invalid_argument _ -> ());
  (* The pool was released: the next batch on the same engine agrees
     with the sequential backend. *)
  let par = Engine.Service.eval_batch ~engine reqs in
  let seq = Engine.Service.eval_batch ~engine:(Lazy.force seq_engine) reqs in
  Alcotest.(check bool) "engine fully usable after an aborted stream" true
    (List.for_all2 same_measurement seq par)

(* Job-level streaming with re-entrant engine calls: each job runs a
   nested eval_batch on the same engine — inline on the main lane (the
   streaming latch), off-main on worker lanes — and the assembled
   results match the sequential backend. *)
let test_map_jobs_nested () =
  let engine = Lazy.force pool_engine4 in
  let reqs = Array.of_list (List.map (fun bit -> request (config_of_bit bit)) [ 52; 53; 54 ]) in
  let via_jobs =
    Engine.Service.map_jobs ~engine
      (fun i -> List.hd (Engine.Service.eval_batch ~engine [ reqs.(i) ]))
      (Array.length reqs)
  in
  let direct =
    List.map (fun r -> Engine.Service.eval ~engine:(Lazy.force seq_engine) r) (Array.to_list reqs)
  in
  Alcotest.(check int) "one result per job" (Array.length reqs) (List.length via_jobs);
  Alcotest.(check bool) "nested-eval jobs assemble in index order, bit-identical" true
    (List.for_all2 same_measurement direct via_jobs)

(* ----------------------------------------------------------- deadline *)

let test_eval_deadlined () =
  let engine = Engine.Service.create ~cache:false () in
  let req = request (config_of_bit 9) in
  let hit0 = counter "engine.deadline.hit" in
  (match Engine.Service.eval_deadlined ~engine ~deadline_s:0.0 req with
  | Error (Engine.Service.Timed_out { deadline_s }) ->
    Alcotest.(check (float 0.0)) "denial echoes the deadline" 0.0 deadline_s
  | Error (Engine.Service.Budget_exhausted _) -> Alcotest.fail "wrong denial"
  | Ok _ -> Alcotest.fail "an expired deadline must not evaluate");
  Alcotest.(check int) "engine.deadline.hit incremented" (hit0 + 1)
    (counter "engine.deadline.hit");
  let plain = Engine.Service.eval ~engine req in
  (match Engine.Service.eval_deadlined ~engine ~deadline_s:60.0 req with
  | Ok m ->
    Alcotest.(check bool) "generous deadline is bit-identical to plain eval" true
      (same_measurement plain m)
  | Error _ -> Alcotest.fail "a generous deadline must succeed");
  Engine.Service.shutdown engine

let test_batch_deadlined () =
  let engine = Engine.Service.create ~jobs:2 ~cache:false () in
  let reqs = List.map (fun bit -> request (config_of_bit bit)) [ 11; 13; 17; 19 ] in
  (match Engine.Service.eval_batch_deadlined ~engine ~deadline_s:0.0 reqs with
  | Error (Engine.Service.Timed_out _) -> ()
  | Error (Engine.Service.Budget_exhausted _) -> Alcotest.fail "wrong denial"
  | Ok _ -> Alcotest.fail "an expired deadline must time the batch out");
  let plain = Engine.Service.eval_batch ~engine reqs in
  (match Engine.Service.eval_batch_deadlined ~engine ~deadline_s:60.0 reqs with
  | Ok ms ->
    Alcotest.(check bool) "generous deadline is bit-identical to plain batch" true
      (List.for_all2 same_measurement plain ms)
  | Error _ -> Alcotest.fail "a generous deadline must succeed");
  Engine.Service.shutdown engine

(* -------------------------------------------------------------- retry *)

let test_retry_escalates_to_success () =
  let p =
    Engine.Retry.policy ~max_attempts:5 ~initial:0
      ~escalate:(fun ~attempt prev -> (prev * 10) + attempt)
      ()
  in
  let seen = ref [] in
  let o =
    Engine.Retry.run p (fun ~attempt params ->
        seen := (attempt, params) :: !seen;
        if attempt < 3 then Error attempt else Ok "done")
  in
  Alcotest.(check int) "three attempts" 3 o.Engine.Retry.attempts;
  (match o.Engine.Retry.result with
  | Ok s -> Alcotest.(check string) "success value" "done" s
  | Error _ -> Alcotest.fail "third attempt succeeds");
  Alcotest.(check (list (pair int int)))
    "deterministic escalation ladder"
    [ (1, 0); (2, 2); (3, 23) ]
    (List.rev !seen)

let test_retry_terminal_error () =
  let p = Engine.Retry.policy ~max_attempts:5 ~initial:() ~escalate:(fun ~attempt:_ () -> ()) () in
  let o = Engine.Retry.run ~retryable:(fun _ -> false) p (fun ~attempt:_ () -> Error "fatal") in
  Alcotest.(check int) "terminal error stops at attempt 1" 1 o.Engine.Retry.attempts;
  Alcotest.(check bool) "error preserved" true (o.Engine.Retry.result = Error "fatal")

let test_retry_bound_and_fold () =
  let p = Engine.Retry.policy ~max_attempts:3 ~initial:() ~escalate:(fun ~attempt:_ () -> ()) () in
  let o = Engine.Retry.run p (fun ~attempt () -> Error attempt) in
  Alcotest.(check int) "bounded at max_attempts" 3 o.Engine.Retry.attempts;
  Alcotest.(check bool) "default keep reports the last error" true
    (o.Engine.Retry.result = Error 3);
  let o =
    Engine.Retry.run ~keep:min p (fun ~attempt () -> Error (if attempt = 2 then 1 else attempt))
  in
  Alcotest.(check bool) "keep folds to the best error" true (o.Engine.Retry.result = Error 1)

(* --------------------------------------------------------- checkpoint *)

let ok_checkpoint = function
  | Ok cp -> cp
  | Error c -> Alcotest.fail (Engine.Checkpoint.corruption_to_string c)

let cp_value snr_mod snr_rx sfdr cost =
  {
    Engine.Cache.measurement = { Metrics.Spec.snr_mod_db = snr_mod; snr_rx_db = snr_rx; sfdr_db = sfdr };
    trial_cost = cost;
  }

let check_cp_value msg (a : Engine.Cache.value) (b : Engine.Cache.value) =
  Alcotest.(check bool) msg true
    (same_measurement a.Engine.Cache.measurement b.Engine.Cache.measurement
    && a.Engine.Cache.trial_cost = b.Engine.Cache.trial_cost)

let test_checkpoint_roundtrip () =
  let path = Filename.temp_file "ckpt" ".jsonl" in
  let cp = ok_checkpoint (Engine.Checkpoint.load ~resume:false path) in
  (* Deliberately hostile floats (nan, -inf, subnormal) and a key that
     needs escaping: the journal must round-trip all of them bit-for-
     bit. *)
  let v1 = cp_value 12.34 nan None 3 in
  let v2 = cp_value neg_infinity 1e-320 (Some 55.5) 0 in
  Engine.Checkpoint.record cp "plain|key" v1;
  Engine.Checkpoint.record cp "weird \"key\"\nwith|breaks" v2;
  Engine.Checkpoint.close cp;
  let cp = ok_checkpoint (Engine.Checkpoint.load ~resume:true path) in
  Alcotest.(check int) "both records replayed" 2 (Engine.Checkpoint.entries cp);
  (match Engine.Checkpoint.find cp "plain|key" with
  | Some v -> check_cp_value "nan survives the round trip" v1 v
  | None -> Alcotest.fail "plain key missing");
  (match Engine.Checkpoint.find cp "weird \"key\"\nwith|breaks" with
  | Some v -> check_cp_value "escaped key and subnormal survive" v2 v
  | None -> Alcotest.fail "escaped key missing");
  Alcotest.(check bool) "absent key is a miss" true
    (Engine.Checkpoint.find cp "missing" = None);
  Engine.Checkpoint.close cp;
  Sys.remove path

let test_checkpoint_torn_tail () =
  let path = Filename.temp_file "ckpt" ".jsonl" in
  let cp = ok_checkpoint (Engine.Checkpoint.load ~resume:false path) in
  Engine.Checkpoint.record cp "a" (cp_value 1.0 2.0 None 1);
  Engine.Checkpoint.record cp "b" (cp_value 3.0 4.0 None 1);
  Engine.Checkpoint.close cp;
  (* Simulate a crash mid-write: a final line cut before its newline. *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc {|{"type":"cell","key":"c","snr|};
  close_out oc;
  let torn0 = counter "engine.checkpoint.torn" in
  let cp = ok_checkpoint (Engine.Checkpoint.load ~resume:true path) in
  Alcotest.(check int) "torn tail dropped, good records kept" 2 (Engine.Checkpoint.entries cp);
  Alcotest.(check int) "torn tail counted" (torn0 + 1) (counter "engine.checkpoint.torn");
  (* The torn bytes were truncated away, so appending keeps the journal
     parseable. *)
  Engine.Checkpoint.record cp "c" (cp_value 5.0 6.0 None 1);
  Engine.Checkpoint.close cp;
  let cp = ok_checkpoint (Engine.Checkpoint.load ~resume:true path) in
  Alcotest.(check int) "journal clean after re-append" 3 (Engine.Checkpoint.entries cp);
  Engine.Checkpoint.close cp;
  Sys.remove path

let test_checkpoint_corrupt_middle () =
  let path = Filename.temp_file "ckpt" ".jsonl" in
  let oc = open_out path in
  output_string oc "{\"type\":\"journal\",\"version\":1}\n";
  output_string oc "this is not a journal record\n";
  output_string oc "{\"type\":\"journal\",\"version\":1}\n";
  close_out oc;
  (match Engine.Checkpoint.load ~resume:true path with
  | Error { Engine.Checkpoint.line; _ } ->
    Alcotest.(check int) "corruption reported at the offending line" 2 line
  | Ok _ -> Alcotest.fail "a malformed interior line must refuse to load");
  Sys.remove path

let test_checkpoint_provenance () =
  let path = Filename.temp_file "ckpt" ".jsonl" in
  (* A fresh journal stamps the current engine hash into its header. *)
  let cp = ok_checkpoint (Engine.Checkpoint.load ~resume:false path) in
  Engine.Checkpoint.record cp "a" (cp_value 1.0 2.0 None 1);
  Engine.Checkpoint.close cp;
  let header = In_channel.with_open_bin path In_channel.input_line in
  (match header with
  | Some line ->
    let expected =
      Printf.sprintf {|"engine":"%s"|} (Telemetry.Manifest.engine_hash ())
    in
    Alcotest.(check bool) "header embeds the engine hash" true
      (let rec contains i =
         i + String.length expected <= String.length line
         && (String.sub line i (String.length expected) = expected || contains (i + 1))
       in
       contains 0)
  | None -> Alcotest.fail "journal has no header");
  (* Resuming our own journal raises no mismatch. *)
  let m0 = counter "engine.checkpoint.provenance_mismatch" in
  let cp = ok_checkpoint (Engine.Checkpoint.load ~resume:true path) in
  Engine.Checkpoint.close cp;
  Alcotest.(check int) "same build: no mismatch" m0
    (counter "engine.checkpoint.provenance_mismatch");
  (* A journal from a different build still loads — resumed values are
     trusted — but the mismatch is counted. *)
  let oc = open_out path in
  output_string oc
    "{\"type\":\"journal\",\"version\":1,\"engine\":\"deadbeefdeadbeefdeadbeefdeadbeef\"}\n";
  close_out oc;
  let cp = ok_checkpoint (Engine.Checkpoint.load ~resume:true path) in
  Engine.Checkpoint.close cp;
  Alcotest.(check int) "foreign build: mismatch counted" (m0 + 1)
    (counter "engine.checkpoint.provenance_mismatch");
  (* A seed-era header with no engine field loads silently. *)
  let oc = open_out path in
  output_string oc "{\"type\":\"journal\",\"version\":1}\n";
  close_out oc;
  let cp = ok_checkpoint (Engine.Checkpoint.load ~resume:true path) in
  Engine.Checkpoint.close cp;
  Alcotest.(check int) "legacy header: no mismatch" (m0 + 1)
    (counter "engine.checkpoint.provenance_mismatch");
  Sys.remove path

let test_checkpoint_engine_resume () =
  let path = Filename.temp_file "ckpt" ".jsonl" in
  let cp = ok_checkpoint (Engine.Checkpoint.load ~resume:false path) in
  let e1 = Engine.Service.create ~cache:false ~checkpoint:cp () in
  let req = request (config_of_bit 21) in
  let m1 = Engine.Service.eval ~engine:e1 req in
  Engine.Checkpoint.close cp;
  Engine.Service.shutdown e1;
  (* A fresh engine (cold cache) over the resumed journal replays the
     evaluation without a single simulator step, trial cost included. *)
  let cp = ok_checkpoint (Engine.Checkpoint.load ~resume:true path) in
  let e2 = Engine.Service.create ~cache:false ~checkpoint:cp () in
  let steps0 = counter "sdm.steps" in
  let trials0 = counter "measure.trials" in
  let m2 = Engine.Service.eval ~engine:e2 req in
  Alcotest.(check bool) "replayed measurement bit-identical" true (same_measurement m1 m2);
  Alcotest.(check int) "replay runs zero simulator steps" steps0 (counter "sdm.steps");
  Alcotest.(check bool) "replay re-charges the trial cost" true
    (counter "measure.trials" > trials0);
  Engine.Checkpoint.close cp;
  Engine.Service.shutdown e2;
  Sys.remove path

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "cache",
        [
          Alcotest.test_case "hit is free and identical" `Quick test_cache_hit;
          Alcotest.test_case "LRU evicts at capacity" `Quick test_lru_eviction;
          Alcotest.test_case "peak gauge tracks the high-water mark" `Quick test_cache_peak;
        ] );
      ( "batch",
        [ Alcotest.test_case "order preservation" `Quick test_batch_order ]
        @ qcheck [ prop_backend_equivalence; prop_campaign_jobs_equivalence ] );
      ( "account",
        [ Alcotest.test_case "atomic charge hammer" `Quick test_account_atomic_hammer ]
        @ qcheck [ prop_shared_account ] );
      ( "pool",
        [
          Alcotest.test_case "reusable after a raising job" `Quick
            test_pool_reusable_after_exception;
          Alcotest.test_case "worker death respawns and requeues" `Quick
            test_pool_worker_respawn;
          Alcotest.test_case "steal under skew" `Quick test_pool_steal_under_skew;
          Alcotest.test_case "respawn mid-chunk requeues the remainder" `Quick
            test_pool_respawn_mid_chunk;
        ] );
      ( "stream",
        [
          Alcotest.test_case "out-of-order delivery, no submit barrier" `Quick
            test_pool_stream_out_of_order;
          Alcotest.test_case "discard frees the pool, double-post refused" `Quick
            test_pool_stream_discard;
          Alcotest.test_case "cache hits are delivered first" `Quick test_stream_hits_first;
          Alcotest.test_case "abort releases the engine" `Quick test_stream_abort_reusable;
          Alcotest.test_case "map_jobs with nested engine calls" `Quick test_map_jobs_nested;
        ]
        @ qcheck [ prop_stream_equals_batch ] );
      ( "deadline",
        [
          Alcotest.test_case "eval_deadlined times out and completes" `Quick
            test_eval_deadlined;
          Alcotest.test_case "eval_batch_deadlined on the pool backend" `Quick
            test_batch_deadlined;
        ] );
      ( "retry",
        [
          Alcotest.test_case "escalates to success" `Quick test_retry_escalates_to_success;
          Alcotest.test_case "terminal errors stop immediately" `Quick test_retry_terminal_error;
          Alcotest.test_case "attempt bound and error folding" `Quick test_retry_bound_and_fold;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "journal round-trips bit-identically" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "torn final line is dropped and truncated" `Quick
            test_checkpoint_torn_tail;
          Alcotest.test_case "interior corruption refuses to load" `Quick
            test_checkpoint_corrupt_middle;
          Alcotest.test_case "header provenance round-trip" `Quick
            test_checkpoint_provenance;
          Alcotest.test_case "fresh engine resumes from the journal" `Quick
            test_checkpoint_engine_resume;
        ] );
    ]
