(* Tests for the central evaluation engine: cache hits must be free
   (zero simulator steps) and bit-identical, the LRU must evict at
   capacity, batches must preserve request order, and the Domains
   backend must agree with the sequential backend bit-for-bit. *)

let standard =
  match Rfchain.Standards.find_opt "bluetooth" with
  | Some s -> s
  | None -> Alcotest.fail "bluetooth standard missing"

let die = lazy (Engine.Request.die_of_seed 42)

let config_of_bit bit =
  Rfchain.Config.of_bits
    (Int64.logxor (Rfchain.Config.to_bits Rfchain.Config.nominal) (Int64.shift_left 1L bit))

let request config =
  Engine.Request.make ~die:(Lazy.force die) ~standard ~config Engine.Request.Snr_mod

let counter name =
  match Telemetry.Counter.find name with
  | Some c -> Telemetry.Counter.value c
  | None -> 0

let bits = Int64.bits_of_float

let same_measurement (a : Metrics.Spec.measurement) (b : Metrics.Spec.measurement) =
  bits a.Metrics.Spec.snr_mod_db = bits b.Metrics.Spec.snr_mod_db
  && bits a.Metrics.Spec.snr_rx_db = bits b.Metrics.Spec.snr_rx_db
  &&
  match (a.Metrics.Spec.sfdr_db, b.Metrics.Spec.sfdr_db) with
  | None, None -> true
  | Some x, Some y -> bits x = bits y
  | _ -> false

(* -------------------------------------------------------------- cache *)

let test_cache_hit () =
  let engine = Engine.Service.create () in
  let req = request Rfchain.Config.nominal in
  let trials0 = counter "measure.trials" in
  let first = Engine.Service.eval ~engine req in
  let miss_cost = counter "measure.trials" - trials0 in
  let steps0 = counter "sdm.steps" in
  let hits0 = counter "engine.cache.hit" in
  let trials1 = counter "measure.trials" in
  let second = Engine.Service.eval ~engine req in
  Alcotest.(check bool) "hit is bit-identical to the miss" true (same_measurement first second);
  Alcotest.(check int) "hit runs zero simulator steps" steps0 (counter "sdm.steps");
  Alcotest.(check int) "hit is recorded" (hits0 + 1) (counter "engine.cache.hit");
  (* The hit replays the original trial cost, so query accounting is
     invariant to cache warmth. *)
  Alcotest.(check int) "hit replays the trial cost" (trials1 + miss_cost)
    (counter "measure.trials");
  Engine.Service.shutdown engine

let test_lru_eviction () =
  let engine = Engine.Service.create ~cache_capacity:2 () in
  let r1 = request (config_of_bit 0) in
  let r2 = request (config_of_bit 1) in
  let r3 = request (config_of_bit 2) in
  ignore (Engine.Service.eval ~engine r1);
  ignore (Engine.Service.eval ~engine r2);
  let evict0 = counter "engine.cache.evict" in
  ignore (Engine.Service.eval ~engine r3);
  Alcotest.(check int) "third insert evicts at capacity 2" (evict0 + 1)
    (counter "engine.cache.evict");
  (* r1 was least recently used, so it is the one that went. *)
  let miss0 = counter "engine.cache.miss" in
  let hit0 = counter "engine.cache.hit" in
  ignore (Engine.Service.eval ~engine r1);
  Alcotest.(check int) "evicted entry misses" (miss0 + 1) (counter "engine.cache.miss");
  Alcotest.(check int) "no phantom hit for the evicted entry" hit0 (counter "engine.cache.hit");
  (* r3 is still resident. *)
  ignore (Engine.Service.eval ~engine r3);
  Alcotest.(check int) "recent entry still hits" (hit0 + 1) (counter "engine.cache.hit");
  Engine.Service.shutdown engine

(* -------------------------------------------------------------- batch *)

let test_batch_order () =
  let engine = Engine.Service.create ~cache:false () in
  let reqs = List.map (fun bit -> request (config_of_bit bit)) [ 3; 0; 7; 1; 5 ] in
  let batch = Engine.Service.eval_batch ~engine reqs in
  let singles = List.map (fun r -> Engine.Service.eval ~engine r) reqs in
  Alcotest.(check int) "one result per request" (List.length reqs) (List.length batch);
  List.iteri
    (fun i (b, s) ->
      Alcotest.(check bool)
        (Printf.sprintf "batch slot %d matches its request" i)
        true (same_measurement b s))
    (List.combine batch singles);
  Engine.Service.shutdown engine

let seq_engine = lazy (Engine.Service.create ~jobs:1 ~cache:false ())
let pool_engine = lazy (Engine.Service.create ~jobs:2 ~cache:false ())

let prop_backend_equivalence =
  QCheck.Test.make ~name:"Seq and Domains backends agree bit-for-bit" ~count:4
    QCheck.(list_of_size (Gen.int_range 1 4) (int_range 0 63))
    (fun flipped_bits ->
      let reqs = List.map (fun bit -> request (config_of_bit bit)) flipped_bits in
      let seq = Engine.Service.eval_batch ~engine:(Lazy.force seq_engine) reqs in
      let par = Engine.Service.eval_batch ~engine:(Lazy.force pool_engine) reqs in
      List.for_all2 same_measurement seq par)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "cache",
        [
          Alcotest.test_case "hit is free and identical" `Quick test_cache_hit;
          Alcotest.test_case "LRU evicts at capacity" `Quick test_lru_eviction;
        ] );
      ( "batch",
        [ Alcotest.test_case "order preservation" `Quick test_batch_order ]
        @ qcheck [ prop_backend_equivalence ] );
    ]
