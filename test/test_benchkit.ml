(* Tests for the bench trajectory file format and its regression
   gate: schema-2 write/read round-trips (manifest included), reading
   the seed's schema-1 files, and the gate's pass / regress / missing
   verdicts under both full-suite and --only semantics. *)

open Benchkit

let kernels =
  [
    { Bench_json.name = "engine:cache-hit"; ns_per_run = 120.5; minor_words_per_run = 2.0 };
    { Bench_json.name = "fft:1024"; ns_per_run = 25000.25; minor_words_per_run = 130.0 };
    { Bench_json.name = "sdm:loop"; ns_per_run = 910000.125; minor_words_per_run = 0.0 };
  ]

let with_temp_file f =
  let path = Filename.temp_file "test_bench" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* ----------------------------------------------------- file format *)

let test_v2_roundtrip () =
  with_temp_file @@ fun path ->
  let manifest =
    Telemetry.Manifest.create ~argv:[ "bench"; "--quick"; "--seed"; "7" ] ()
  in
  Telemetry.Manifest.finish ~exit_status:0 manifest;
  Bench_json.write ~path ~manifest kernels;
  match Bench_json.read path with
  | Error reason -> Alcotest.fail ("schema-2 file does not read back: " ^ reason)
  | Ok file ->
    Alcotest.(check int) "schema" 2 file.Bench_json.schema;
    Alcotest.(check int) "kernel count" 3 (List.length file.Bench_json.kernels);
    let k = List.find (fun k -> k.Bench_json.name = "fft:1024") file.Bench_json.kernels in
    Alcotest.(check (float 1e-9)) "ns round-trips" 25000.25 k.Bench_json.ns_per_run;
    Alcotest.(check (float 1e-9)) "mwd round-trips" 130.0 k.Bench_json.minor_words_per_run;
    (* Kernels come back name-sorted regardless of input order. *)
    Alcotest.(check (list string)) "sorted"
      [ "engine:cache-hit"; "fft:1024"; "sdm:loop" ]
      (List.map (fun k -> k.Bench_json.name) file.Bench_json.kernels);
    (match file.Bench_json.manifest with
    | None -> Alcotest.fail "manifest missing from schema-2 file"
    | Some m ->
      Alcotest.(check (option int)) "manifest seed" (Some 7) m.Telemetry.Manifest.seed;
      Alcotest.(check string) "manifest engine hash"
        (Telemetry.Manifest.engine_hash ()) m.Telemetry.Manifest.engine_hash)

let test_nan_roundtrip () =
  with_temp_file @@ fun path ->
  Bench_json.write ~path
    [ { Bench_json.name = "flaky"; ns_per_run = nan; minor_words_per_run = 1.0 } ];
  match Bench_json.read path with
  | Error reason -> Alcotest.fail reason
  | Ok file ->
    let k = List.hd file.Bench_json.kernels in
    Alcotest.(check bool) "nan survives as nan (null)" true (Float.is_nan k.Bench_json.ns_per_run)

let test_v1_compat () =
  (* The seed's committed baseline format: no manifest, schema 1. *)
  let v1 =
    {|{
  "schema": "bench-kernels/1",
  "results": [
    { "name": "fft:1024", "ns_per_run": 24000.0, "minor_words_per_run": 128.0 },
    { "name": "sdm:loop", "ns_per_run": 900000.0, "minor_words_per_run": 0.0 }
  ]
}|}
  in
  match Bench_json.of_string v1 with
  | Error reason -> Alcotest.fail ("schema-1 text does not parse: " ^ reason)
  | Ok file ->
    Alcotest.(check int) "schema" 1 file.Bench_json.schema;
    Alcotest.(check bool) "no manifest" true (file.Bench_json.manifest = None);
    Alcotest.(check int) "kernel count" 2 (List.length file.Bench_json.kernels)

let test_rejects_garbage () =
  (match Bench_json.of_string "{\"schema\":\"bench-kernels/9\",\"kernels\":[]}" with
  | Ok _ -> Alcotest.fail "unknown schema accepted"
  | Error _ -> ());
  match Bench_json.of_string "not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

(* ------------------------------------------------------------ gate *)

let baseline =
  [
    { Bench_json.name = "fft:1024"; ns_per_run = 10000.0; minor_words_per_run = 100.0 };
    { Bench_json.name = "sdm:loop"; ns_per_run = 500000.0; minor_words_per_run = 0.0 };
  ]

let verdicts comparisons =
  List.map (fun c -> (c.Bench_json.kernel, c.Bench_json.verdict)) comparisons

let test_gate_pass () =
  let current =
    [
      (* Within 2x on time, within 1.25x + slack on allocation. *)
      { Bench_json.name = "fft:1024"; ns_per_run = 15000.0; minor_words_per_run = 120.0 };
      { Bench_json.name = "sdm:loop"; ns_per_run = 400000.0; minor_words_per_run = 10.0 };
      (* A kernel the baseline has never seen passes silently. *)
      { Bench_json.name = "brand:new"; ns_per_run = 1.0; minor_words_per_run = 1e9 };
    ]
  in
  let cs = Bench_json.compare_results ~baseline ~current ~require_all:true in
  Alcotest.(check int) "one comparison per baseline kernel" 2 (List.length cs);
  Alcotest.(check int) "no regressions" 0 (List.length (Bench_json.regressions cs))

let test_gate_ns_regression () =
  let current =
    [
      { Bench_json.name = "fft:1024"; ns_per_run = 25000.0; minor_words_per_run = 100.0 };
      { Bench_json.name = "sdm:loop"; ns_per_run = 500000.0; minor_words_per_run = 0.0 };
    ]
  in
  let cs = Bench_json.compare_results ~baseline ~current ~require_all:true in
  match verdicts (Bench_json.regressions cs) with
  | [ ("fft:1024", Bench_json.Regressed r) ] ->
    Alcotest.(check string) "time field" "ns_per_run" r.field;
    Alcotest.(check (float 1e-9)) "limit is baseline * ratio" 20000.0 r.limit;
    Alcotest.(check (float 1e-9)) "current recorded" 25000.0 r.current
  | _ -> Alcotest.fail "expected exactly one ns regression on fft:1024"

let test_gate_mwd_regression () =
  let current =
    [
      { Bench_json.name = "fft:1024"; ns_per_run = 10000.0; minor_words_per_run = 300.0 };
      { Bench_json.name = "sdm:loop"; ns_per_run = 500000.0; minor_words_per_run = 100.0 };
    ]
  in
  let cs = Bench_json.compare_results ~baseline ~current ~require_all:true in
  (* fft: 300 > 100 * 1.25 + 128 = 253 → regressed.
     sdm: 100 <= 0 * 1.25 + 128 → the absolute slack covers it. *)
  match verdicts (Bench_json.regressions cs) with
  | [ ("fft:1024", Bench_json.Regressed r) ] ->
    Alcotest.(check string) "allocation field" "minor_words_per_run" r.field
  | _ -> Alcotest.fail "expected exactly one mwd regression on fft:1024"

let test_gate_missing () =
  let current =
    [ { Bench_json.name = "fft:1024"; ns_per_run = 10000.0; minor_words_per_run = 100.0 } ]
  in
  (* Full-suite gate: a vanished kernel is a failure. *)
  let full = Bench_json.compare_results ~baseline ~current ~require_all:true in
  (match verdicts (Bench_json.regressions full) with
  | [ ("sdm:loop", Bench_json.Missing) ] -> ()
  | _ -> Alcotest.fail "expected sdm:loop Missing under require_all");
  (* --only run: absent kernels are expected, not failures. *)
  let partial = Bench_json.compare_results ~baseline ~current ~require_all:false in
  Alcotest.(check int) "no regressions without require_all" 0
    (List.length (Bench_json.regressions partial))

let test_gate_noisy_tolerance () =
  (* Sub-microsecond kernels get the wider ratio. *)
  let t = Bench_json.tolerance_for "telemetry:span-disabled" in
  Alcotest.(check bool) "noisy kernel widened" true
    (t.Bench_json.ns_ratio > Bench_json.default_tolerance.Bench_json.ns_ratio);
  let t' = Bench_json.tolerance_for "fft:1024" in
  Alcotest.(check (float 1e-9)) "regular kernel default"
    Bench_json.default_tolerance.Bench_json.ns_ratio t'.Bench_json.ns_ratio;
  (* nan baselines never fire the gate. *)
  let cs =
    Bench_json.compare_results
      ~baseline:[ { Bench_json.name = "flaky"; ns_per_run = nan; minor_words_per_run = nan } ]
      ~current:[ { Bench_json.name = "flaky"; ns_per_run = 1e9; minor_words_per_run = 1e9 } ]
      ~require_all:true
  in
  Alcotest.(check int) "nan baseline passes" 0 (List.length (Bench_json.regressions cs))

let () =
  Alcotest.run "benchkit"
    [
      ( "format",
        [
          Alcotest.test_case "schema-2 round-trip with manifest" `Quick test_v2_roundtrip;
          Alcotest.test_case "nan encodes as null and survives" `Quick test_nan_roundtrip;
          Alcotest.test_case "schema-1 baselines still read" `Quick test_v1_compat;
          Alcotest.test_case "unknown schema and garbage rejected" `Quick test_rejects_garbage;
        ] );
      ( "gate",
        [
          Alcotest.test_case "within tolerance passes" `Quick test_gate_pass;
          Alcotest.test_case "time blowup regresses" `Quick test_gate_ns_regression;
          Alcotest.test_case "allocation blowup regresses" `Quick test_gate_mwd_regression;
          Alcotest.test_case "vanished kernel under require_all" `Quick test_gate_missing;
          Alcotest.test_case "noisy and nan tolerances" `Quick test_gate_noisy_tolerance;
        ] );
    ]
