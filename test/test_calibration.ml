(* Tests for the 14-step calibration procedure. *)

let std = Rfchain.Standards.max_frequency
let rx_of seed = Rfchain.Receiver.create (Circuit.Process.fabricate ~seed ()) std

let osc_tune_exn rx =
  match Calibration.Osc_tune.run rx with
  | Ok r -> r
  | Error e -> Alcotest.fail (Calibration.Osc_tune.error_to_string e)

let test_osc_config_modes () =
  let cfg = Calibration.Osc_tune.oscillation_config Rfchain.Config.nominal in
  Alcotest.(check bool) "comparator buffered" false cfg.Rfchain.Config.comp_clock_enable;
  Alcotest.(check bool) "feedback open" false cfg.Rfchain.Config.fb_enable;
  Alcotest.(check bool) "input off" false cfg.Rfchain.Config.gmin_enable;
  Alcotest.(check bool) "observation buffer in" true cfg.Rfchain.Config.cal_buffer_enable;
  Alcotest.(check int) "-Gm at maximum" 63 cfg.Rfchain.Config.gm_q

let test_osc_tune_accuracy () =
  let rx = rx_of 42 in
  let result = osc_tune_exn rx in
  Alcotest.(check bool)
    (Printf.sprintf "tuning error < 1 MHz (got %.0f kHz)" (result.Calibration.Osc_tune.freq_error_hz /. 1e3))
    true
    (result.Calibration.Osc_tune.freq_error_hz < 1e6);
  (* The tuned tank must actually sit at f0. *)
  let cfg =
    {
      Rfchain.Config.nominal with
      cap_coarse = result.Calibration.Osc_tune.cap_coarse;
      cap_fine = result.Calibration.Osc_tune.cap_fine;
    }
  in
  let tank = Rfchain.Sdm.tank_frequency (Rfchain.Receiver.sdm_of_config rx cfg) in
  Alcotest.(check bool)
    (Printf.sprintf "tank within 2 MHz of carrier (got %.1f MHz off)" ((tank -. 3e9) /. 1e6))
    true
    (Float.abs (tank -. 3e9) < 2e6)

let test_osc_tune_backoff () =
  let rx = rx_of 42 in
  let result = osc_tune_exn rx in
  let sdm_at gm_q =
    Rfchain.Receiver.sdm_of_config rx
      {
        Rfchain.Config.nominal with
        cap_coarse = result.Calibration.Osc_tune.cap_coarse;
        cap_fine = result.Calibration.Osc_tune.cap_fine;
        gm_q;
      }
  in
  Alcotest.(check bool) "backed-off code does not oscillate" false
    (Rfchain.Sdm.oscillates (sdm_at result.Calibration.Osc_tune.gm_q));
  Alcotest.(check bool) "one code above oscillates" true
    (result.Calibration.Osc_tune.gm_q = 63
    || Rfchain.Sdm.oscillates (sdm_at (result.Calibration.Osc_tune.gm_q + 1)))

let test_osc_tune_per_chip () =
  let r1 = osc_tune_exn (rx_of 1) in
  let r2 = osc_tune_exn (rx_of 2) in
  Alcotest.(check bool) "cap codes differ across dice" true
    (r1.Calibration.Osc_tune.cap_coarse <> r2.Calibration.Osc_tune.cap_coarse
    || r1.Calibration.Osc_tune.cap_fine <> r2.Calibration.Osc_tune.cap_fine)

let test_osc_measurement_budget () =
  let r = osc_tune_exn (rx_of 42) in
  (* Binary search over two 8-bit arrays plus the -Gm back-off must stay
     well under exhaustive search (2 * 256 + 64 trials). *)
  Alcotest.(check bool)
    (Printf.sprintf "measurement count reasonable (got %d)" r.Calibration.Osc_tune.measurements)
    true
    (r.Calibration.Osc_tune.measurements < 120)

let test_coordinate_search_improves () =
  (* A synthetic objective with a known optimum. *)
  let target = 37 in
  let objective c = -.Float.abs (float_of_int (c.Rfchain.Config.gmin_bias - target)) in
  let outcome =
    Calibration.Coordinate_search.maximize ~objective ~fields:[ "gmin_bias" ]
      ~start:Rfchain.Config.nominal ~passes:4 ()
  in
  Alcotest.(check int) "finds the optimum" target
    outcome.Calibration.Coordinate_search.best.Rfchain.Config.gmin_bias

let test_coordinate_search_counts () =
  let count = ref 0 in
  let objective _ =
    incr count;
    0.0
  in
  let outcome =
    Calibration.Coordinate_search.maximize ~objective ~fields:[ "gm_q" ]
      ~start:Rfchain.Config.nominal ~passes:1 ()
  in
  Alcotest.(check int) "evaluation accounting" !count outcome.Calibration.Coordinate_search.evaluations

let test_full_calibration_meets_spec () =
  let rx = rx_of 1234 in
  let outcome = Calibration.Calibrate.run rx in
  Alcotest.(check bool) "verdict converged" true
    (outcome.Calibration.Calibrate.verdict = Calibration.Calibrate.Converged);
  let report = outcome.Calibration.Calibrate.report in
  Alcotest.(check bool)
    (Printf.sprintf "SNR(mod) %.1f meets spec" report.Calibration.Calibrate.snr_mod_db)
    true
    (report.Calibration.Calibrate.snr_mod_db >= std.Rfchain.Standards.min_snr_db);
  Alcotest.(check bool)
    (Printf.sprintf "SNR(rx) %.1f meets spec" report.Calibration.Calibrate.snr_rx_db)
    true
    (report.Calibration.Calibrate.snr_rx_db >= std.Rfchain.Standards.min_snr_db);
  Alcotest.(check bool)
    (Printf.sprintf "SFDR %.1f meets spec" report.Calibration.Calibrate.sfdr_db)
    true
    (report.Calibration.Calibrate.sfdr_db >= std.Rfchain.Standards.min_sfdr_db);
  Alcotest.(check bool) "normal-mode key" true
    (report.Calibration.Calibrate.key.Rfchain.Config.fb_enable
    && report.Calibration.Calibrate.key.Rfchain.Config.comp_clock_enable
    && report.Calibration.Calibrate.key.Rfchain.Config.gmin_enable
    && not report.Calibration.Calibrate.key.Rfchain.Config.cal_buffer_enable);
  Alcotest.(check bool) "log records the steps" true (List.length report.Calibration.Calibrate.log >= 3)

let test_calibration_other_standard () =
  let rx = Rfchain.Receiver.create (Circuit.Process.fabricate ~seed:55 ()) Rfchain.Standards.bluetooth in
  let report = (Calibration.Calibrate.run ~passes:1 ~refine_sfdr:false rx).Calibration.Calibrate.report in
  Alcotest.(check bool)
    (Printf.sprintf "bluetooth SNR %.1f meets spec" report.Calibration.Calibrate.snr_mod_db)
    true
    (report.Calibration.Calibrate.snr_mod_db >= Rfchain.Standards.bluetooth.Rfchain.Standards.min_snr_db)

let test_keys_unique_per_chip () =
  let k1 = Calibration.Calibrate.quick (rx_of 101) in
  let k2 = Calibration.Calibrate.quick (rx_of 102) in
  Alcotest.(check bool) "calibrated keys differ between dice" false (Rfchain.Config.equal k1 k2)

(* ------------------------------------------------------------- On-chip *)

let test_onchip_reaches_spec () =
  let rx = rx_of 42 in
  let engine = Calibration.Onchip.create rx in
  let config = Calibration.Onchip.run engine in
  let bench = Metrics.Measure.create rx in
  let snr = Metrics.Measure.snr_mod_db bench config in
  Alcotest.(check bool) (Printf.sprintf "on-chip SNR %.1f meets spec" snr) true
    (snr >= std.Rfchain.Standards.min_snr_db);
  Alcotest.(check bool) "measurements counted" true (Calibration.Onchip.measurements engine > 20);
  Alcotest.(check bool) "ALU operations counted" true (Calibration.Onchip.alu_operations engine > 50)

let test_onchip_locked_correct_key () =
  let rx = rx_of 42 in
  let plain = Calibration.Onchip.run (Calibration.Onchip.create rx) in
  let rng = Sigkit.Rng.create 99 in
  let locked = Calibration.Onchip.lock_alu rng () in
  let engine =
    Calibration.Onchip.create_locked rx ~locked_alu:locked
      ~key:locked.Netlist.Logic_lock.correct_key
  in
  Alcotest.(check bool) "correct key reproduces the plain run" true
    (Rfchain.Config.equal (Calibration.Onchip.run engine) plain)

let test_onchip_locked_wrong_key () =
  let rx = rx_of 42 in
  let rng = Sigkit.Rng.create 99 in
  let locked = Calibration.Onchip.lock_alu rng () in
  let wrong = Array.map not locked.Netlist.Logic_lock.correct_key in
  let engine = Calibration.Onchip.create_locked rx ~locked_alu:locked ~key:wrong in
  let config = Calibration.Onchip.run engine in
  let bench = Metrics.Measure.create rx in
  let snr = Metrics.Measure.snr_mod_db bench config in
  Alcotest.(check bool) (Printf.sprintf "wrong key misconverges (%.1f dB)" snr) true
    (snr < std.Rfchain.Standards.min_snr_db)

let test_onchip_step_traces () =
  let rx = rx_of 42 in
  let engine = Calibration.Onchip.create rx in
  (match Calibration.Onchip.step engine with
  | Calibration.Onchip.Running phase ->
    Alcotest.(check bool) "first phase is the coarse search" true
      (String.length phase > 0 && String.sub phase 0 6 = "coarse")
  | Calibration.Onchip.Done _ -> Alcotest.fail "cannot be done after one step");
  ignore (Calibration.Onchip.run engine);
  match Calibration.Onchip.step engine with
  | Calibration.Onchip.Done _ -> ()
  | Calibration.Onchip.Running _ -> Alcotest.fail "stays done after convergence"

let () =
  Alcotest.run "calibration"
    [
      ( "oscillation tuning",
        [
          Alcotest.test_case "mode bits" `Quick test_osc_config_modes;
          Alcotest.test_case "accuracy" `Slow test_osc_tune_accuracy;
          Alcotest.test_case "-Gm back-off" `Slow test_osc_tune_backoff;
          Alcotest.test_case "per chip" `Slow test_osc_tune_per_chip;
          Alcotest.test_case "measurement budget" `Slow test_osc_measurement_budget;
        ] );
      ( "coordinate search",
        [
          Alcotest.test_case "improves" `Quick test_coordinate_search_improves;
          Alcotest.test_case "accounting" `Quick test_coordinate_search_counts;
        ] );
      ( "on-chip engine",
        [
          Alcotest.test_case "reaches spec" `Slow test_onchip_reaches_spec;
          Alcotest.test_case "locked ALU, correct key" `Slow test_onchip_locked_correct_key;
          Alcotest.test_case "locked ALU, wrong key" `Slow test_onchip_locked_wrong_key;
          Alcotest.test_case "step tracing" `Slow test_onchip_step_traces;
        ] );
      ( "full procedure",
        [
          Alcotest.test_case "meets spec" `Slow test_full_calibration_meets_spec;
          Alcotest.test_case "other standard" `Slow test_calibration_other_standard;
          Alcotest.test_case "unique keys" `Slow test_keys_unique_per_chip;
        ] );
    ]
