(* Dev probe: SAT attack on the MixLock baseline. *)
let () =
  let rng = Sigkit.Rng.create 5 in
  let locked = Netlist.Logic_lock.lock rng (Netlist.Bench_circuits.ripple_adder 8) ~key_bits:16 in
  let t0 = Telemetry.Clock.now_ns () in
  let r = Netlist.Sat_attack.run ~seed:11 locked in
  let elapsed = Telemetry.Clock.elapsed_ns ~since:t0 in
  Printf.printf "queries %d, candidates left %d, %.1f s\n" r.Netlist.Sat_attack.oracle_queries
    r.Netlist.Sat_attack.candidates_left (Telemetry.Clock.ns_to_s elapsed);
  match r.Netlist.Sat_attack.found_key with
  | Some key ->
    Printf.printf "key recovered; corruption under it: %.4f\n"
      (Netlist.Logic_lock.corruption locked ~key)
  | None -> print_endline "no key recovered"
