(* repro — regenerate every figure and table of the paper's evaluation.

   Subcommands map one-to-one onto the experiment index in DESIGN.md:
   fig7 fig8 fig9 fig10 fig11 fig12 security compare ablations
   calibrate all. *)

open Cmdliner

let seed_arg =
  let doc = "Die seed (the manufactured chip's identity)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let standard_arg =
  let doc = "Target standard (bluetooth, zigbee, wifi-802.11b, lower-band-1.5GHz, max-3GHz)." in
  Arg.(value & opt string "max-3GHz" & info [ "standard" ] ~docv:"NAME" ~doc)

let keys_arg =
  let doc = "Number of random invalid keys in the ensemble." in
  Arg.(value & opt int 100 & info [ "keys" ] ~docv:"N" ~doc)

let budget_arg =
  let doc = "Trial budget per empirical attack." in
  Arg.(value & opt int 400 & info [ "budget" ] ~docv:"N" ~doc)

(* Telemetry plumbing shared by every subcommand: `--metrics` prints
   the span/counter summary on exit, `--trace FILE` writes a Chrome
   trace_event file (open in chrome://tracing or Perfetto), and
   `--trace-jsonl FILE` writes the raw event stream.  Any of the three
   enables span collection; with none of them, telemetry spans stay
   disabled and the run is byte-identical to an uninstrumented build. *)
let telemetry_term =
  let metrics_arg =
    let doc = "Print the telemetry summary table (spans, counters, histograms) on exit." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let trace_arg =
    let doc = "Write a Chrome trace_event JSON trace to $(docv) on exit." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let trace_jsonl_arg =
    let doc = "Write the telemetry event stream as JSON lines to $(docv) on exit." in
    Arg.(value & opt (some string) None & info [ "trace-jsonl" ] ~docv:"FILE" ~doc)
  in
  let setup metrics trace trace_jsonl =
    if metrics || trace <> None || trace_jsonl <> None then begin
      Telemetry.Control.set_enabled true;
      at_exit (fun () ->
          Option.iter Telemetry.Export.write_chrome_trace trace;
          Option.iter Telemetry.Export.write_jsonl trace_jsonl;
          if metrics then begin
            print_newline ();
            Telemetry.Export.summary_table ()
          end)
    end
  in
  Term.(const setup $ metrics_arg $ trace_arg $ trace_jsonl_arg)

(* The process exit status, recorded on every deliberate exit path so
   the at_exit manifest writer can stamp it (at_exit handlers cannot
   see the exit code themselves). *)
let exit_status_r : int option ref = ref None

let exit_with code =
  exit_status_r := Some code;
  exit code

(* Live-monitoring plumbing: `--log-level` and `--log-jsonl` drive the
   structured logger, `--metrics-port N` starts the loopback scrape
   server (GET /metrics, GET /healthz) and enables heartbeats, and
   `--manifest FILE` writes a run-provenance record at exit
   (`--metrics-port` implies one at repro-manifest.json).  None of it
   touches stdout, so monitored figure output stays byte-identical. *)
let monitor_term =
  let log_level_arg =
    let doc = "Log threshold for stderr/JSONL structured logging (debug|info|warn|error)." in
    Arg.(value & opt (some string) None & info [ "log-level" ] ~docv:"LEVEL" ~doc)
  in
  let log_jsonl_arg =
    let doc = "Also write structured log events as JSON lines to $(docv)." in
    Arg.(value & opt (some string) None & info [ "log-jsonl" ] ~docv:"FILE" ~doc)
  in
  let metrics_port_arg =
    let doc =
      "Serve live metrics on 127.0.0.1:$(docv) while the run is in flight: $(b,GET /metrics) \
       (OpenMetrics text) and $(b,GET /healthz) (JSON).  Enables heartbeat log lines."
    in
    Arg.(value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT" ~doc)
  in
  let manifest_arg =
    let doc = "Write a run-provenance manifest (argv, seed, engine hash, timestamps) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE" ~doc)
  in
  let setup log_level log_jsonl metrics_port manifest =
    let explicit_level =
      match log_level with
      | None -> false
      | Some s -> (
        match Telemetry.Log.level_of_string s with
        | Some l ->
          Telemetry.Log.set_level l;
          true
        | None ->
          Printf.eprintf "unknown log level %s (use debug|info|warn|error)\n" s;
          exit 2)
    in
    Option.iter Telemetry.Log.to_file log_jsonl;
    (match metrics_port with
    | None -> ()
    | Some port ->
      (* Heartbeats are info-level: a monitored run should show them
         unless the user explicitly asked for quieter logs. *)
      if not explicit_level then Telemetry.Log.set_level Telemetry.Log.Info;
      (match Telemetry.Monitor.start_server ~port with
      | Ok _ -> ()
      | Error reason ->
        Printf.eprintf "%s\n" reason;
        exit 2));
    let manifest_path =
      match manifest with
      | Some _ -> manifest
      | None -> if metrics_port <> None then Some "repro-manifest.json" else None
    in
    match manifest_path with
    | None -> ()
    | Some path ->
      let m = Telemetry.Manifest.create () in
      at_exit (fun () ->
          Telemetry.Manifest.finish ?exit_status:!exit_status_r m;
          try Telemetry.Manifest.write path m
          with Sys_error reason -> Printf.eprintf "cannot write manifest %s: %s\n" path reason)
  in
  Term.(const setup $ log_level_arg $ log_jsonl_arg $ metrics_port_arg $ manifest_arg)

(* The CLI's --deadline, stashed so commands with their own supervised
   run loop (faults) can thread it as a typed campaign deadline rather
   than relying only on the engine-wide token. *)
let cli_deadline_s : float option ref = ref None

(* Engine plumbing shared by every subcommand: `--jobs N` selects the
   multicore backend (N >= 2 hands batched evaluations to a fixed pool
   of N-1 worker domains plus the caller; results are byte-identical to
   `--jobs 1`), `--no-cache` disables the content-addressed result
   cache (every evaluation re-runs the simulator), `--checkpoint FILE`
   journals every completed evaluation (with `--resume` replaying an
   existing journal), and `--deadline SECONDS` bounds the whole run. *)
let engine_term =
  let jobs_arg =
    let doc =
      "Worker domains for batched evaluations (1 = sequential; output is identical either way)."
    in
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let no_cache_arg =
    let doc = "Disable the evaluation result cache (re-simulate every request)." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Journal every completed evaluation to $(docv) (append-only JSON lines, fsync'd per \
       record).  An interrupted run can be resumed with $(b,--resume)."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc =
      "Replay the completed evaluations of an existing $(b,--checkpoint) journal instead of \
       truncating it; only missing cells are recomputed.  The final output is byte-identical \
       to an uninterrupted run."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let deadline_arg =
    let doc =
      "Abort the run once $(docv) seconds of wall clock have passed; in-flight evaluations \
       stop at their next cancellation poll and completed work stays journalled."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let setup jobs no_cache checkpoint resume deadline =
    if jobs < 1 then begin
      Printf.eprintf "--jobs must be >= 1 (got %d)\n" jobs;
      exit 2
    end;
    (match deadline with
    | Some d when d <= 0.0 ->
      Printf.eprintf "--deadline must be positive (got %g)\n" d;
      exit 2
    | _ -> ());
    if resume && checkpoint = None then begin
      Printf.eprintf "--resume requires --checkpoint FILE\n";
      exit 2
    end;
    let checkpoint =
      match checkpoint with
      | None -> None
      | Some path -> (
        match Engine.Checkpoint.load ~resume path with
        | Ok cp ->
          at_exit (fun () -> Engine.Checkpoint.close cp);
          Some cp
        | Error { Engine.Checkpoint.path; line; reason } ->
          Printf.eprintf "%s\n"
            (Faults.Error.to_string (Faults.Error.Checkpoint_corrupt { path; line; reason }));
          exit 2)
    in
    cli_deadline_s := deadline;
    Engine.Service.configure ~jobs ~cache:(not no_cache) ?checkpoint ?deadline_s:deadline ()
  in
  Term.(const setup $ jobs_arg $ no_cache_arg $ checkpoint_arg $ resume_arg $ deadline_arg)

(* One combined setup hook so subcommand signatures stay `run ()`. *)
let setup_term =
  Term.(const (fun () () () -> ()) $ telemetry_term $ monitor_term $ engine_term)

let fast_arg =
  let doc = "Fast mode: shorter captures and a single-pass calibration." in
  Arg.(value & flag & info [ "fast" ] ~doc)

let find_standard_or_exit name =
  match Rfchain.Standards.find_opt name with
  | Some standard -> standard
  | None ->
    Printf.eprintf "unknown standard %s\nknown standards: %s\n" name
      (String.concat ", " Rfchain.Standards.names);
    exit 2

let context ~fast ~seed ~standard =
  let standard = find_standard_or_exit standard in
  Printf.printf "calibrating die %d for %s ...\n%!" seed standard.Rfchain.Standards.name;
  let ctx = Experiments.Context.create ~seed ~standard ~fast () in
  Printf.printf "calibrated: SNR(mod) %.1f dB, SNR(rx) %.1f dB, SFDR %.1f dB (%d trials)\n\n%!"
    ctx.Experiments.Context.calibration.Calibration.Calibrate.snr_mod_db
    ctx.Experiments.Context.calibration.Calibration.Calibrate.snr_rx_db
    ctx.Experiments.Context.calibration.Calibration.Calibrate.sfdr_db
    ctx.Experiments.Context.calibration.Calibration.Calibrate.snr_measurements;
  ctx

let cmd_of name doc run =
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ setup_term $ fast_arg $ seed_arg $ standard_arg)

let fig7_9 () fast seed standard keys =
  let ctx = context ~fast ~seed ~standard in
  Experiments.Fig7_fig9.print (Experiments.Fig7_fig9.run ~n_invalid:keys ctx)

let fig8 () fast seed standard =
  let ctx = context ~fast ~seed ~standard in
  Experiments.Fig8.print (Experiments.Fig8.run ctx)

let fig10 () fast seed standard =
  let ctx = context ~fast ~seed ~standard in
  Experiments.Fig10.print (Experiments.Fig10.run ctx)

let fig11 () fast seed standard =
  let ctx = context ~fast ~seed ~standard in
  Experiments.Fig11.print ctx (Experiments.Fig11.run ctx)

let fig12 () fast seed standard =
  let ctx = context ~fast ~seed ~standard in
  Experiments.Fig12.print ctx (Experiments.Fig12.run ctx)

let security () fast seed standard budget =
  let ctx = context ~fast ~seed ~standard in
  Experiments.Security_table.print (Experiments.Security_table.run ~budget ctx)

let compare () fast seed standard =
  let ctx = context ~fast ~seed ~standard in
  Experiments.Compare_table.print (Experiments.Compare_table.run ctx)

let ablations () fast seed standard =
  let ctx = context ~fast ~seed ~standard in
  Experiments.Ablations.print ctx (Experiments.Ablations.run ctx)

let calibrate () fast seed standard =
  let ctx = context ~fast ~seed ~standard in
  List.iter print_endline ctx.Experiments.Context.calibration.Calibration.Calibrate.log;
  Format.printf "%a@." Rfchain.Config.pp ctx.Experiments.Context.golden

let lot () _fast seed standard =
  let standard_t = find_standard_or_exit standard in
  Printf.printf "calibrating an 8-die lot (seed base %d) ...\n%!" seed;
  Experiments.Lot_study.print (Experiments.Lot_study.run ~seed_base:seed standard_t)

let faults () seed standard dies json interrupt_after =
  (* The campaign layer is exception-free by construction: every
     failure mode comes back as data — degraded calibrations print and
     exit 0, a deadline returns a typed error (exit 3), and an
     interrupt yields a partial report marked incomplete (exit 130,
     like the signal). *)
  match
    Faults.Campaign.run_by_name ~dies ~seed ?deadline_s:!cli_deadline_s ?interrupt_after
      standard
  with
  | Error (Faults.Error.Deadline_exceeded _ as e) ->
    Printf.eprintf "%s\n" (Faults.Error.to_string e);
    exit_with 3
  | Error e ->
    Printf.eprintf "%s\n" (Faults.Error.to_string e);
    exit_with 2
  | Ok campaign ->
    if json then Faults.Report.print_json campaign else Faults.Report.print campaign;
    if not (Faults.Campaign.complete campaign) then exit_with 130

let onchip () fast seed standard =
  let ctx = context ~fast ~seed ~standard in
  Experiments.Onchip_lock.print ctx (Experiments.Onchip_lock.run ctx)

let aging () fast seed standard =
  let ctx = context ~fast ~seed ~standard in
  let t = Experiments.Aging_study.run ctx in
  Experiments.Aging_study.print t;
  List.iter
    (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (Experiments.Aging_study.checks ctx t)

let avalanche () fast seed standard =
  let ctx = context ~fast ~seed ~standard in
  let t = Experiments.Avalanche.run ctx in
  Experiments.Avalanche.print t;
  List.iter
    (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (Experiments.Avalanche.checks ctx t)

let generality () _fast _seed _standard =
  Experiments.Generality.print (Experiments.Generality.run ())

(* A bounded, representative workload under forced telemetry: one fast
   calibration (exercises the rfchain/sigkit/calibration spans), one of
   each bench measurement, and a small brute-force attack against a
   re-fab die.  Useful as a quick profiling smoke test — it touches
   every instrumented layer in a few seconds. *)
let profile () _fast seed standard =
  Telemetry.Control.set_enabled true;
  let standard = find_standard_or_exit standard in
  Printf.printf "profiling a bounded workload (die %d, %s) ...\n%!" seed
    standard.Rfchain.Standards.name;
  Telemetry.Span.with_ ~name:"profile"
    ~attrs:[ ("seed", string_of_int seed); ("standard", standard.Rfchain.Standards.name) ]
    (fun () ->
      let ctx = Experiments.Context.create ~seed ~standard ~fast:true () in
      let bench = Metrics.Measure.create ctx.Experiments.Context.rx in
      let golden = ctx.Experiments.Context.golden in
      ignore (Metrics.Measure.snr_mod_db bench golden);
      ignore (Metrics.Measure.snr_rx_db bench golden);
      ignore (Metrics.Measure.sfdr_db bench golden);
      let key =
        Core.Key.make ~standard:ctx.Experiments.Context.standard ~chip:ctx.Experiments.Context.chip
          golden
      in
      let oracle =
        Attacks.Oracle.deploy ctx.Experiments.Context.standard ~chip_seed:seed ~key
      in
      let refab = Attacks.Oracle.refabricate ~trial_limit:200 oracle ~attacker_seed:777 in
      ignore
        (Telemetry.Span.with_ ~name:"attack.brute_force" (fun () ->
             Attacks.Brute_force.run ~budget:10 refab)));
  print_newline ();
  Telemetry.Export.summary_table ()

let all () fast seed standard keys budget =
  let ctx = context ~fast ~seed ~standard in
  Experiments.Fig7_fig9.print (Experiments.Fig7_fig9.run ~n_invalid:keys ctx);
  print_newline ();
  Experiments.Fig8.print (Experiments.Fig8.run ctx);
  print_newline ();
  Experiments.Fig10.print (Experiments.Fig10.run ctx);
  print_newline ();
  Experiments.Fig11.print ctx (Experiments.Fig11.run ctx);
  print_newline ();
  Experiments.Fig12.print ctx (Experiments.Fig12.run ctx);
  print_newline ();
  Experiments.Security_table.print (Experiments.Security_table.run ~budget ctx);
  print_newline ();
  Experiments.Compare_table.print (Experiments.Compare_table.run ctx);
  print_newline ();
  Experiments.Ablations.print ctx (Experiments.Ablations.run ctx);
  print_newline ();
  Experiments.Onchip_lock.print ctx (Experiments.Onchip_lock.run ctx);
  print_newline ();
  let aging_t = Experiments.Aging_study.run ctx in
  Experiments.Aging_study.print aging_t;
  List.iter
    (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (Experiments.Aging_study.checks ctx aging_t);
  print_newline ();
  Experiments.Lot_study.print (Experiments.Lot_study.run ~seed_base:6000 ctx.Experiments.Context.standard);
  print_newline ();
  let av = Experiments.Avalanche.run ctx in
  Experiments.Avalanche.print av;
  List.iter
    (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (Experiments.Avalanche.checks ctx av);
  print_newline ();
  Experiments.Generality.print (Experiments.Generality.run ())

let commands =
  [
    Cmd.v
      (Cmd.info "fig7" ~doc:"SNR per key at the modulator output (also prints Fig. 9 data)")
      Term.(const fig7_9 $ setup_term $ fast_arg $ seed_arg $ standard_arg $ keys_arg);
    Cmd.v
      (Cmd.info "fig9" ~doc:"SNR per key at the receiver output (same run as fig7)")
      Term.(const fig7_9 $ setup_term $ fast_arg $ seed_arg $ standard_arg $ keys_arg);
    cmd_of "fig8" "Transient modulator output, correct vs deceptive key" fig8;
    cmd_of "fig10" "PSD at the modulator output, correct vs deceptive key" fig10;
    cmd_of "fig11" "SNR vs input power over the VGLNA segments" fig11;
    cmd_of "fig12" "Two-tone SFDR, correct vs deceptive key" fig12;
    Cmd.v
      (Cmd.info "security" ~doc:"Attack-cost table and empirical attacks (Section VI-B)")
      Term.(const security $ setup_term $ fast_arg $ seed_arg $ standard_arg $ budget_arg);
    cmd_of "compare" "Comparison with prior locking techniques (Section II)" compare;
    cmd_of "ablations" "Design-choice ablations (slicing, process variation)" ablations;
    cmd_of "calibrate" "Run the 14-step calibration and print the secret key" calibrate;
    cmd_of "lot" "Monte-Carlo production-lot study (yield, key uniqueness, transfer)" lot;
    cmd_of "onchip" "On-chip self-calibration and calibration-loop locking [10]" onchip;
    cmd_of "aging" "Aging drift and recycled-part detection study" aging;
    (let dies_arg =
       let doc = "Number of dies in the stress lot." in
       Arg.(value & opt int 3 & info [ "dies" ] ~docv:"N" ~doc)
     in
     let json_arg =
       let doc = "Emit machine-readable JSON lines instead of ASCII tables." in
       Arg.(value & flag & info [ "json" ] ~doc)
     in
     let interrupt_after_arg =
       let doc =
         "Testing hook: inject a deterministic interrupt after exactly $(docv) evaluated \
          cells, as if SIGINT had arrived there."
       in
       Arg.(value & opt (some int) None & info [ "interrupt-after" ] ~docv:"N" ~doc)
     in
     Cmd.v
       (Cmd.info "faults"
          ~doc:"Fault-injection stress campaign: lock margins, bit-corruption cliff, degraded \
                calibration")
       Term.(
         const faults $ setup_term $ seed_arg $ standard_arg $ dies_arg $ json_arg
         $ interrupt_after_arg));
    cmd_of "avalanche" "SNR collapse vs key Hamming distance; per-bit key strength" avalanche;
    cmd_of "generality" "Second case study: fabric locking on a 24-bit baseband AFE" generality;
    cmd_of "profile"
      "Run a bounded representative workload with telemetry forced on; print the span table"
      profile;
    Cmd.v
      (Cmd.info "all" ~doc:"Every figure and table in sequence")
      Term.(const all $ setup_term $ fast_arg $ seed_arg $ standard_arg $ keys_arg $ budget_arg);
  ]

(* First ^C requests a cooperative stop: every simulator loop raises at
   its next poll, the campaign layers flush what they have (journalled
   work is already fsync'd) and print a partial report.  A second ^C
   gives up on cooperation and exits immediately. *)
let sigint_seen = ref false

let install_sigint () =
  match Sys.signal Sys.sigint
          (Sys.Signal_handle
             (fun _ ->
               if !sigint_seen then exit 130
               else begin
                 sigint_seen := true;
                 Telemetry.Cancel.interrupt ~reason:"SIGINT" ()
               end))
  with
  | _ -> ()
  | exception Invalid_argument _ -> () (* no SIGINT on this platform *)

let () =
  install_sigint ();
  let info =
    Cmd.info "repro" ~version:"1.0.0"
      ~doc:"Reproduction of 'Securing Programmable Analog ICs Against Piracy' (DATE 2020)"
  in
  (* ~catch:false so a cancellation that no supervised layer converted
     to data surfaces here instead of as a cmdliner backtrace. *)
  try
    let status = Cmd.eval ~catch:false (Cmd.group info commands) in
    (* cmdliner reports parse errors with its cli_error status, 124 —
       the same value timeout(1) uses for a killed process, so a
       wrapped `repro nosuchcmd` reads as "timed out / never exited"
       (one such misreading is on record in ROADMAP).  Remap to 2,
       matching repro's own usage-error exits. *)
    exit_with (if status = Cmd.Exit.cli_error then 2 else status)
  with Telemetry.Cancel.Cancelled reason ->
    Printf.eprintf "\ninterrupted: %s\n" reason;
    exit_with (if reason = Telemetry.Cancel.deadline_reason then 3 else 130)
