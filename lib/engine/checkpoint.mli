(** Crash-safe evaluation journal (checkpoint/resume).

    An append-only JSONL file, one fsync'd line per completed
    evaluation, content-keyed by {!Request.cache_key}.  The evaluation
    service consults it like a second, persistent cache level: a
    resumed run replays exactly the cells that finished before the
    crash or interrupt — values bit-identical (floats stored as exact
    hexadecimal literals) and trial costs re-charged to the odometers —
    and computes only the rest.

    A torn final line (the signature of a process killed mid-write) is
    dropped, counted in [engine.checkpoint.torn], and truncated away;
    a malformed line anywhere earlier is corruption and refuses to
    load. *)

type t

type corruption = {
  path : string;
  line : int;  (** 1-based line number of the malformed record *)
  reason : string;
}

val load : resume:bool -> string -> (t, corruption) result
(** Open a journal at [path].  [resume:false] truncates and starts
    fresh; [resume:true] replays an existing journal (a missing or
    empty file starts fresh) and appends after the last good record. *)

val find : t -> string -> Cache.value option
(** Replay lookup (mutex-protected; counts [engine.checkpoint.hits]). *)

val record : t -> string -> Cache.value -> unit
(** Journal a completed evaluation: append one line, flush, fsync.
    Idempotent per key.  Safe from any domain. *)

val entries : t -> int
val path : t -> string

val close : t -> unit
(** Flush, fsync and close the backing file; the in-memory replay table
    stays usable. *)

val corruption_to_string : corruption -> string
