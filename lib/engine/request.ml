type die = {
  chip : Circuit.Process.chip;
  fabric : (Rfchain.Config.t -> Rfchain.Config.t) option;
  rf_fault : (float array -> float array) option;
  die_id : string option;
}

type metric =
  | Snr_mod
  | Snr_mod_verified
  | Snr_rx of { n_fft : int }
  | Snr_rx_at_power of { n_fft : int; p_dbm : float; gain_code : int }
  | Sfdr
  | Full
  | Full_verified

type t = {
  die : die;
  standard : Rfchain.Standards.t;
  config : Rfchain.Config.t;
  p_dbm : float;
  metric : metric;
}

(* Must match the Metrics.Measure.create default: the paper's Fig. 7/9
   single-tone stimulus. *)
let default_p_dbm = -25.0

let die_of_chip chip =
  { chip; fabric = None; rf_fault = None; die_id = Some (Circuit.Process.identity chip) }

let die_of_seed ?lot_sigma_scale seed =
  die_of_chip (Circuit.Process.fabricate ?lot_sigma_scale ~seed ())

let faulted_die ?fabric ?rf_fault ?tag chip =
  let die_id =
    match fabric, rf_fault with
    | None, None -> Some (Circuit.Process.identity chip)
    | _ ->
      (* Injection hooks are opaque closures: only a caller-supplied
         canonical tag (e.g. from Faults.Fault.describe) makes the die
         identifiable; without one the die is uncacheable. *)
      Option.map (fun tag -> Circuit.Process.identity chip ^ "+" ^ tag) tag
  in
  { chip; fabric; rf_fault; die_id }

let die_of_receiver ?tag rx =
  faulted_die
    ?fabric:(Rfchain.Receiver.fabric rx)
    ?rf_fault:(Rfchain.Receiver.rf_fault rx)
    ?tag (Rfchain.Receiver.chip rx)

(* The one place in the tree that builds a receiver from a die; the
   per-consumer copies in the oracle / fault / metrics layers were
   folded into this. *)
let receiver die standard =
  Rfchain.Receiver.create ?fabric:die.fabric ?rf_fault:die.rf_fault die.chip standard

let make ?(p_dbm = default_p_dbm) ~die ~standard ~config metric =
  { die; standard; config; p_dbm; metric }

let metric_tag = function
  | Snr_mod -> "snr_mod"
  | Snr_mod_verified -> "snr_mod_v"
  | Snr_rx { n_fft } -> Printf.sprintf "snr_rx:%d" n_fft
  | Snr_rx_at_power { n_fft; p_dbm; gain_code } ->
    Printf.sprintf "snr_rx_p:%d:%h:%d" n_fft p_dbm gain_code
  | Sfdr -> "sfdr"
  | Full -> "full"
  | Full_verified -> "full_v"

(* Content address of a request: die fingerprint, standard, the
   canonical 64-bit config encoding, stimulus power (exact hex float)
   and the metric.  [None] marks an uncacheable request (opaque
   injection hooks). *)
let cache_key t =
  match t.die.die_id with
  | None -> None
  | Some id ->
    Some
      (Printf.sprintf "%s|%s|%016Lx|%h|%s" id t.standard.Rfchain.Standards.name
         (Rfchain.Config.to_bits t.config) t.p_dbm (metric_tag t.metric))
