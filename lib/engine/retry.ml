(* Bounded retry with deterministic escalation.

   Generalises the calibration retry pattern (re-attempt with a longer
   search and a wider probe ladder) for any transient failure a stress
   campaign can produce.  Deliberately free of wall-clock and
   randomness: no sleeps, no jitter — escalation means "try again with
   stronger parameters", so a retried run is exactly reproducible and
   the Domains backend stays bit-deterministic. *)

type 'p policy = {
  initial : 'p;
  escalate : attempt:int -> 'p -> 'p;
  max_attempts : int;
}

let policy ?(max_attempts = 3) ~initial ~escalate () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts must be >= 1";
  { initial; escalate; max_attempts }

type ('a, 'e) outcome = {
  result : ('a, 'e) result;
  attempts : int;
}

let attempts_counter = Telemetry.Counter.make "engine.retry.attempts"
let escalations_counter = Telemetry.Counter.make "engine.retry.escalations"

let run ?(retryable = fun _ -> true) ?(keep = fun _prev last -> last) p f =
  let rec go attempt params kept =
    Telemetry.Counter.incr attempts_counter;
    match f ~attempt params with
    | Ok v -> { result = Ok v; attempts = attempt }
    | Error e ->
      let kept = match kept with None -> e | Some prev -> keep prev e in
      if attempt < p.max_attempts && retryable e then begin
        Telemetry.Counter.incr escalations_counter;
        go (attempt + 1) (p.escalate ~attempt:(attempt + 1) params) (Some kept)
      end
      else { result = Error kept; attempts = attempt }
  in
  go 1 p.initial None
