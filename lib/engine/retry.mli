(** Bounded retry with deterministic escalation.

    The calibration layer's pattern — retry a failed attempt with a
    longer search and a wider probe ladder — generalised: a policy
    carries typed parameters and a pure escalation function, and
    {!run} drives attempts until success, a non-retryable error, or
    the attempt bound.  No wall clock, no randomness, no backoff
    sleeps: retrying is escalation, so outcomes are exactly
    reproducible on any backend. *)

type 'p policy

val policy :
  ?max_attempts:int -> initial:'p -> escalate:(attempt:int -> 'p -> 'p) -> unit -> 'p policy
(** [max_attempts] (default 3, >= 1) bounds total attempts including
    the first; [escalate ~attempt prev] builds the parameters for
    [attempt] (2-based — the first retry) from the previous ones. *)

type ('a, 'e) outcome = {
  result : ('a, 'e) result;  (** [Ok] from the succeeding attempt, or
                                 the folded error once attempts are
                                 exhausted / the error is terminal *)
  attempts : int;            (** attempts actually made (>= 1) *)
}

val run :
  ?retryable:('e -> bool) ->
  ?keep:('e -> 'e -> 'e) ->
  'p policy ->
  (attempt:int -> 'p -> ('a, 'e) result) ->
  ('a, 'e) outcome
(** Drive [f] through the policy.  [retryable] (default: everything)
    stops retrying on terminal errors; [keep prev last] (default: keep
    [last]) folds errors across attempts so the reported error can be
    the best attempt rather than the final one.  Counts
    [engine.retry.attempts] / [engine.retry.escalations]. *)
