(** The central evaluation service.

    One simulate-and-measure entry point for every consumer —
    calibration sweeps, oracle/refab attack trials, the figure and
    table experiments, and the fault campaign.  Evaluation of a
    {!Request.t} is a pure function, so the service can front it with a
    content-addressed LRU cache and fan batches out across a fixed pool
    of OCaml 5 domains while keeping same-seed output byte-identical to
    the sequential backend:

    - single [eval]s run inline on the calling domain;
    - [eval_batch] looks the batch up in the cache in request order,
      computes the misses (sequentially or on the pool, writing each
      result into its own slot of an index-addressed array), then
      stores them back in request order — so result order, cache state
      and every trial odometer are independent of the backend;
    - cache hits replay the original evaluation's trial cost into the
      [measure.trials] odometer and any {!Account}, so printed query
      accounting is independent of cache warmth.

    Supervision (PR 6): an engine can carry a {!Checkpoint.t} journal —
    a persistent second cache level that makes completed evaluations
    durable (each one fsync'd as it finishes, from whichever domain ran
    it) so an interrupted campaign resumes bit-identically — and a
    deadline, enforced cooperatively by cancellation polls inside the
    simulator inner loop.  A deadline that fires surfaces as the typed
    denial {!Timed_out} (counted in [engine.deadline.hit]), never as a
    hang. *)

type t

val create :
  ?jobs:int ->
  ?cache:bool ->
  ?cache_capacity:int ->
  ?checkpoint:Checkpoint.t ->
  ?deadline_s:float ->
  unit ->
  t
(** [jobs] evaluation lanes (default 1 = sequential backend; [n >= 2]
    spawns [n - 1] worker domains and the caller participates);
    [cache] (default true) fronts evaluation with an LRU of
    [cache_capacity] (default 4096) results.  [checkpoint] journals
    every completed evaluation and replays journalled ones
    (caller-owned: the engine never closes it).  [deadline_s] arms an
    engine-wide deadline, measured from this call, that cancels any
    in-flight evaluation once it passes. *)

val jobs : t -> int
val cache_enabled : t -> bool
val checkpoint : t -> Checkpoint.t option

val shutdown : t -> unit
(** Join the worker pool (tests); also registered at process exit.
    Does not close the checkpoint — its owner does. *)

val configure :
  ?jobs:int ->
  ?cache:bool ->
  ?cache_capacity:int ->
  ?checkpoint:Checkpoint.t ->
  ?deadline_s:float ->
  unit ->
  unit
(** Replace the process-global default engine — the CLI calls this once
    from [--jobs] / [--no-cache] / [--checkpoint] / [--deadline] before
    running a workload. *)

val default : unit -> t
(** The process-global engine ([jobs = 1], cache on, until
    {!configure} says otherwise). *)

(** Trial accounting, engine-side: an account accumulates the actual
    bench-trial cost of every evaluation charged to it, and optionally
    enforces a hard limit (the oracle's watchdog).  Domain-safe: the
    odometer is atomic, so a single account can be shared across a
    parallel batch without losing charges. *)
module Account : sig
  type t

  val make : ?limit:int -> unit -> t
  val spent : t -> int
  val limit : t -> int option
  val charge : t -> int -> unit
  val exhausted : t -> bool
end

(** Why an evaluation was refused rather than run: the account's hard
    budget was already spent, or the deadline passed before the
    simulator finished. *)
type denial =
  | Budget_exhausted of {
      spent : int;
      limit : int;
    }
  | Timed_out of { deadline_s : float }

val eval : ?engine:t -> ?account:Account.t -> Request.t -> Metrics.Spec.measurement
(** Evaluate one request (cache-first, inline on the calling domain). *)

val eval_batch :
  ?engine:t -> ?account:Account.t -> Request.t list -> Metrics.Spec.measurement list
(** Evaluate a batch; results come back in request order, bit-identical
    across backends and cache states. *)

val eval_deadlined :
  ?engine:t ->
  ?account:Account.t ->
  deadline_s:float ->
  Request.t ->
  (Metrics.Spec.measurement, denial) result
(** [eval] under a per-call deadline (seconds from now).  A deadline
    that fires mid-simulation returns [Error (Timed_out _)] within one
    poll interval of the inner loop; cache and checkpoint hits never
    time out.  Counts [engine.deadline.hit]. *)

val eval_batch_deadlined :
  ?engine:t ->
  ?account:Account.t ->
  deadline_s:float ->
  Request.t list ->
  (Metrics.Spec.measurement list, denial) result
(** [eval_batch] under one shared deadline for the whole batch.  On
    timeout the in-flight lanes drain at their next poll; evaluations
    that completed before the deadline are already journalled (and
    cached), so a resumed batch does not repeat them. *)

val eval_guarded :
  ?engine:t ->
  ?deadline_s:float ->
  account:Account.t ->
  Request.t ->
  (Metrics.Spec.measurement * int, denial) result
(** The budget watchdog: refuse (and count [engine.denied]) once the
    account is exhausted, otherwise evaluate and charge the actual
    trial cost, returning it alongside the measurement.  [deadline_s]
    additionally bounds the evaluation like {!eval_deadlined}. *)
