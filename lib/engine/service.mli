(** The central evaluation service.

    One simulate-and-measure entry point for every consumer —
    calibration sweeps, oracle/refab attack trials, the figure and
    table experiments, and the fault campaign.  Evaluation of a
    {!Request.t} is a pure function, so the service can front it with a
    content-addressed LRU cache and fan batches out across a fixed pool
    of OCaml 5 domains while keeping same-seed output byte-identical to
    the sequential backend:

    - single [eval]s run inline on the calling domain;
    - [eval_batch] looks the batch up in the cache in request order,
      computes the misses (sequentially or on the pool, writing each
      result into its own slot of an index-addressed array), then
      stores them back in request order — so result order, cache state
      and every trial odometer are independent of the backend;
    - cache hits replay the original evaluation's trial cost into the
      [measure.trials] odometer and any {!Account}, so printed query
      accounting is independent of cache warmth.

    Supervision (PR 6): an engine can carry a {!Checkpoint.t} journal —
    a persistent second cache level that makes completed evaluations
    durable (each one fsync'd as it finishes, from whichever domain ran
    it) so an interrupted campaign resumes bit-identically — and a
    deadline, enforced cooperatively by cancellation polls inside the
    simulator inner loop.  A deadline that fires surfaces as the typed
    denial {!Timed_out} (counted in [engine.deadline.hit]), never as a
    hang. *)

type t

val create :
  ?jobs:int ->
  ?cache:bool ->
  ?cache_capacity:int ->
  ?checkpoint:Checkpoint.t ->
  ?deadline_s:float ->
  unit ->
  t
(** [jobs] evaluation lanes (default 1 = sequential backend; [n >= 2]
    spawns [n - 1] worker domains and the caller participates);
    [cache] (default true) fronts evaluation with an LRU of
    [cache_capacity] (default 4096) results.  [checkpoint] journals
    every completed evaluation and replays journalled ones
    (caller-owned: the engine never closes it).  [deadline_s] arms an
    engine-wide deadline, measured from this call, that cancels any
    in-flight evaluation once it passes. *)

val jobs : t -> int
val cache_enabled : t -> bool
val checkpoint : t -> Checkpoint.t option

val shutdown : t -> unit
(** Join the worker pool (tests); also registered at process exit.
    Does not close the checkpoint — its owner does. *)

val configure :
  ?jobs:int ->
  ?cache:bool ->
  ?cache_capacity:int ->
  ?checkpoint:Checkpoint.t ->
  ?deadline_s:float ->
  unit ->
  unit
(** Replace the process-global default engine — the CLI calls this once
    from [--jobs] / [--no-cache] / [--checkpoint] / [--deadline] before
    running a workload. *)

val default : unit -> t
(** The process-global engine ([jobs = 1], cache on, until
    {!configure} says otherwise). *)

(** Trial accounting, engine-side: an account accumulates the actual
    bench-trial cost of every evaluation charged to it, and optionally
    enforces a hard limit (the oracle's watchdog).  Domain-safe: the
    odometer is atomic, so a single account can be shared across a
    parallel batch without losing charges. *)
module Account : sig
  type t

  val make : ?limit:int -> unit -> t
  val spent : t -> int
  val limit : t -> int option
  val charge : t -> int -> unit
  val exhausted : t -> bool
end

(** Why an evaluation was refused rather than run: the account's hard
    budget was already spent, or the deadline passed before the
    simulator finished. *)
type denial =
  | Budget_exhausted of {
      spent : int;
      limit : int;
    }
  | Timed_out of { deadline_s : float }

val eval : ?engine:t -> ?account:Account.t -> Request.t -> Metrics.Spec.measurement
(** Evaluate one request (cache-first, inline on the calling domain). *)

val eval_batch :
  ?engine:t -> ?account:Account.t -> Request.t list -> Metrics.Spec.measurement list
(** Evaluate a batch; results come back in request order, bit-identical
    across backends and cache states. *)

val eval_deadlined :
  ?engine:t ->
  ?account:Account.t ->
  deadline_s:float ->
  Request.t ->
  (Metrics.Spec.measurement, denial) result
(** [eval] under a per-call deadline (seconds from now).  A deadline
    that fires mid-simulation returns [Error (Timed_out _)] within one
    poll interval of the inner loop; cache and checkpoint hits never
    time out.  Counts [engine.deadline.hit]. *)

val eval_batch_deadlined :
  ?engine:t ->
  ?account:Account.t ->
  deadline_s:float ->
  Request.t list ->
  (Metrics.Spec.measurement list, denial) result
(** [eval_batch] under one shared deadline for the whole batch.  On
    timeout the in-flight lanes drain at their next poll; evaluations
    that completed before the deadline are already journalled (and
    cached), so a resumed batch does not repeat them. *)

(** {1 Streaming evaluation (DESIGN §14)}

    [eval_stream] hands the scheduler the whole request grid at once
    and returns a stream; {!stream_next} delivers [(index, measurement)]
    pairs as lanes finish them, out of order, so a straggler no longer
    gates the rest of the grid.  Cache and journal hits short-circuit
    before anything is enqueued (and are delivered first, in request
    order); for each computed miss, checkpoint journaling and cache
    publication happen on the main domain at delivery time, preserving
    journal-before-publish with a single writer.  Reassembling by index
    ({!stream_drain}) is bit-identical to {!eval_batch} on the same
    requests, for any lane count.

    One stream owns the engine's pool at a time: evaluations issued
    from inside the stream's own items (nested calibrations, &c.)
    transparently compute inline, and a second concurrent stream on
    the same engine degrades to a lazy sequential cursor.  A stream
    must be consumed on the domain that opened it, and either drained
    to [Ok None] / an [Error] or explicitly {!stream_abort}ed —
    abandoning it leaves the pool occupied. *)

type stream

val eval_stream : ?engine:t -> ?account:Account.t -> Request.t list -> stream
(** Submit the grid and return immediately.  Under an engine-wide
    deadline, a cancellation surfaces from {!stream_next} as the raw
    exception, exactly as {!eval_batch} would. *)

val eval_stream_deadlined :
  ?engine:t -> ?account:Account.t -> deadline_s:float -> Request.t list -> stream
(** Like {!eval_stream} under one shared per-stream deadline: once it
    fires, {!stream_next} aborts the remaining work and returns
    (stickily) [Error (Timed_out _)].  Completions delivered before the
    deadline are already journalled and cached. *)

val stream_next : stream -> ((int * Metrics.Spec.measurement) option, denial) result
(** Next completed evaluation, or [Ok None] once all have been
    delivered (or after {!stream_abort}).  Blocks only when every
    remaining item is in flight on a worker lane; with no workers the
    calling domain computes one item per pull, in index order. *)

val stream_drain : stream -> (Metrics.Spec.measurement list, denial) result
(** Consume to the end and return all measurements in request order —
    including ones already delivered through {!stream_next}.  Raises
    [Invalid_argument] on an aborted stream. *)

val stream_abort : stream -> unit
(** Drop undelivered work (in-flight items finish and are journalled;
    queued ones are discarded) and release the pool.  Idempotent. *)

val stream_length : stream -> int
(** Number of requests the stream was opened with. *)

val map_jobs : ?engine:t -> (int -> 'a) -> int -> 'a list
(** [map_jobs f n] runs [f i] for [i < n] on the engine's lanes as one
    streamed job and returns the results in index order — job-level
    streaming for fan-outs that are not request evaluations (die
    calibrations, attack trials).  [f] may call back into the engine:
    on the main lane such calls compute inline; on worker lanes they
    take the usual off-main path.  Sequential engines (and nested
    calls) run [List.init n f]. *)

val eval_guarded :
  ?engine:t ->
  ?deadline_s:float ->
  account:Account.t ->
  Request.t ->
  (Metrics.Spec.measurement * int, denial) result
(** The budget watchdog: refuse (and count [engine.denied]) once the
    account is exhausted, otherwise evaluate and charge the actual
    trial cost, returning it alongside the measurement.  [deadline_s]
    additionally bounds the evaluation like {!eval_deadlined}. *)
