(** Content-addressed, bounded LRU result cache.

    Keys are {!Request.cache_key} strings; values carry the measurement
    plus the trial cost the original evaluation spent, so hits can
    replay the cost into the trial odometers and keep all printed
    accounting identical to a cold run.  Telemetry counters
    [engine.cache.hit] / [engine.cache.miss] / [engine.cache.evict]
    track behaviour.  Single-domain: only the main domain touches the
    cache (workers receive pre-missed work).

    Policy evidence for the ROADMAP's LRU-vs-generation-clock question:
    [engine.cache.hit_at_capacity] counts hits that land while the
    cache is full (the hits a coarser policy could lose), and the
    [engine.cache.evict_age] histogram records how many cache
    operations each evicted entry had gone untouched — mass near the
    capacity mark means pure scan traffic, a long tail means LRU is
    protecting genuinely re-used entries.  Both advance on a
    deterministic operation clock, never wall time. *)

type value = {
  measurement : Metrics.Spec.measurement;
  trial_cost : int;
}

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] on non-positive capacity. *)

val capacity : t -> int
val length : t -> int

val peak : t -> int
(** High-water occupancy since creation.  [peak < capacity] after a
    full campaign means the bound never bit; [peak = capacity] means
    eviction happened (check [engine.cache.evict]).  Exported as the
    [engine_cache_entries_peak] monitor gauge. *)

val find : t -> string -> value option
(** Lookup; refreshes recency and bumps the hit/miss counter. *)

val add : t -> string -> value -> unit
(** Insert (or refresh) an entry; evicts the least-recently-used entry
    when the cache is over capacity. *)
