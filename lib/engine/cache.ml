(* Bounded LRU over the engine's content-addressed results.  A cached
   value carries the measurement together with the number of bench
   trials the original evaluation spent, so a hit can keep every trial
   odometer identical to a cold run. *)

type value = {
  measurement : Metrics.Spec.measurement;
  trial_cost : int;
}

type entry = {
  key : string;
  mutable value : value;
  mutable touched : int;        (* operation tick of the last hit/insert *)
  mutable prev : entry option;  (* towards most-recent *)
  mutable next : entry option;  (* towards least-recent *)
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable head : entry option;  (* most recently used *)
  mutable tail : entry option;  (* least recently used *)
  mutable peak : int;  (* high-water occupancy, for capacity planning *)
  mutable ticks : int;  (* operation clock: one tick per find/add *)
}

let hit_counter = Telemetry.Counter.make "engine.cache.hit"
let miss_counter = Telemetry.Counter.make "engine.cache.miss"
let evict_counter = Telemetry.Counter.make "engine.cache.evict"

(* Policy evidence (ROADMAP: LRU vs generation clock).  Hits that land
   while the cache is full are the ones a different eviction policy
   could lose: hit_at_capacity / (hit_at_capacity + miss-at-capacity)
   is the saturated hit rate.  The eviction-age histogram records, in
   cache operations, how stale an entry was when LRU dropped it — a
   mass near the capacity mark means pure scan traffic (a generation
   clock would do as well for less bookkeeping); a long tail means LRU
   is actively protecting re-used entries. *)
let hit_at_capacity_counter = Telemetry.Counter.make "engine.cache.hit_at_capacity"
let evict_age_hist = Telemetry.Histogram.make "engine.cache.evict_age"

let create ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    peak = 0;
    ticks = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let peak t = t.peak

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  match t.head with
  | Some h when h == e -> ()
  | _ ->
    unlink t e;
    push_front t e

let find t key =
  t.ticks <- t.ticks + 1;
  match Hashtbl.find_opt t.table key with
  | Some e ->
    Telemetry.Counter.incr hit_counter;
    if Hashtbl.length t.table >= t.capacity then
      Telemetry.Counter.incr hit_at_capacity_counter;
    e.touched <- t.ticks;
    touch t e;
    Some e.value
  | None ->
    Telemetry.Counter.incr miss_counter;
    None

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some e ->
    unlink t e;
    Hashtbl.remove t.table e.key;
    Telemetry.Counter.incr evict_counter;
    Telemetry.Histogram.observe evict_age_hist (float_of_int (t.ticks - e.touched))

let add t key value =
  t.ticks <- t.ticks + 1;
  match Hashtbl.find_opt t.table key with
  | Some e ->
    e.value <- value;
    e.touched <- t.ticks;
    touch t e
  | None ->
    let e = { key; value; touched = t.ticks; prev = None; next = None } in
    Hashtbl.add t.table key e;
    push_front t e;
    if Hashtbl.length t.table > t.capacity then evict_lru t;
    let len = Hashtbl.length t.table in
    if len > t.peak then t.peak <- len
