(* Bounded LRU over the engine's content-addressed results.  A cached
   value carries the measurement together with the number of bench
   trials the original evaluation spent, so a hit can keep every trial
   odometer identical to a cold run. *)

type value = {
  measurement : Metrics.Spec.measurement;
  trial_cost : int;
}

type entry = {
  key : string;
  mutable value : value;
  mutable prev : entry option;  (* towards most-recent *)
  mutable next : entry option;  (* towards least-recent *)
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable head : entry option;  (* most recently used *)
  mutable tail : entry option;  (* least recently used *)
  mutable peak : int;  (* high-water occupancy, for capacity planning *)
}

let hit_counter = Telemetry.Counter.make "engine.cache.hit"
let miss_counter = Telemetry.Counter.make "engine.cache.miss"
let evict_counter = Telemetry.Counter.make "engine.cache.evict"

let create ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  { capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None; peak = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let peak t = t.peak

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  match t.head with
  | Some h when h == e -> ()
  | _ ->
    unlink t e;
    push_front t e

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    Telemetry.Counter.incr hit_counter;
    touch t e;
    Some e.value
  | None ->
    Telemetry.Counter.incr miss_counter;
    None

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some e ->
    unlink t e;
    Hashtbl.remove t.table e.key;
    Telemetry.Counter.incr evict_counter

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    e.value <- value;
    touch t e
  | None ->
    let e = { key; value; prev = None; next = None } in
    Hashtbl.add t.table key e;
    push_front t e;
    if Hashtbl.length t.table > t.capacity then evict_lru t;
    let len = Hashtbl.length t.table in
    if len > t.peak then t.peak <- len
