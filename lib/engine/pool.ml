(* Sharded work-stealing worker pool over Domain/Mutex/Condition — no
   dependencies beyond the stdlib, per the repo's no-new-deps rule.

   The pool runs index-parallel jobs: [run t f n] evaluates [f i] for
   every [i] in [0..n-1].  The calling (main) domain participates as a
   lane, so a pool built with [create (jobs - 1)] workers gives [jobs]
   evaluation lanes total.  Determinism is the caller's contract: [f]
   must write result [i] to slot [i] only, so claim order never shows
   in the output.

   Scheduling (DESIGN §13).  The previous design kept one shared claim
   cursor under one pool mutex with [Condition.broadcast] on every
   post, orphan and completion; its own histograms (DESIGN §12) showed
   first-claim latency growing past the work-item cost as lanes were
   added.  This design shards the schedule instead:

   - Submit chunks [0..n-1] into contiguous ranges and deals them
     round-robin across per-lane run queues, main lane first so the
     caller always starts on local work.  Each queue has its own mutex
     and condition variable.
   - A lane claims whole chunks from its own queue; when that drains
     it steals a chunk from the busiest other queue.  Items inside a
     claimed chunk run without touching any lock.
   - Wakeups are targeted: submit [signal]s exactly the worker lanes
     that received chunks; the completion of the last item [signal]s
     the one lane (the caller) waiting in [run]; an orphan requeue
     signals only the main lane, which is guaranteed alive.  No
     broadcast remains on the submit/steal/complete path, and a lane
     that wakes to find nothing claimable counts
     [pool.wakeup.spurious].
   - Completion is an atomic counter; the job-lifecycle mutex [t.m] is
     taken only at submit, on the final completion, on failure and on
     orphan requeue — never per claim.

   Lock order: [t.m] may be held while taking a lane mutex (submit,
   stats); a lane mutex is never held while taking [t.m].

   Supervision: each worker domain runs under a supervisor wrapper.
   If a worker dies (any exception escaping its loop — [Worker_killed]
   is the test hook that simulates an abrupt domain death), the
   supervisor requeues the in-flight remainder of the chunk the lane
   had claimed (current index included) onto the *main* lane's queue,
   bumps [pool.worker.restarts], and spawns a replacement domain.
   Chunks still queued on the dead lane are not lost either: the
   replacement pops them, and until it arrives they are stealable like
   any other queue.  Orphaned work therefore delays, but never loses,
   its indices, and [run] still returns only when every index has
   actually completed. *)

exception Worker_killed

let restarts_counter = Telemetry.Counter.make "pool.worker.restarts"
let steal_counter = Telemetry.Counter.make "pool.steal.count"
let spurious_counter = Telemetry.Counter.make "pool.wakeup.spurious"

(* Scheduling diagnostics (see DESIGN §12/§13): [pool.queue.wait_ns] is
   the latency from job post to each lane's *first* chunk claim of that
   job — direct evidence of how long freshly woken domains take to
   reach work; [pool.lane.busy] is the number of busy lanes observed at
   every chunk claim, i.e. the occupancy the job actually achieved. *)
let queue_wait_hist = Telemetry.Histogram.make "pool.queue.wait_ns"
let lane_busy_hist = Telemetry.Histogram.make "pool.lane.busy"

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* The scheduler's largest submit-time chunk.  Shared with
   [Faults.Campaign], whose checkpoint/interrupt granularity rides the
   same constant so campaign chunking and scheduler chunking are one
   policy (16 items is also small enough that a default-sized batch
   still deals work to every lane). *)
let max_chunk = 16

type lane = {
  lm : Mutex.t;  (* guards [chunks]; [queued] is atomic for racy scans *)
  ready : Condition.t;  (* this lane's private wakeup (workers only) *)
  mutable chunks : (int * int) list;  (* queued [lo, hi) ranges, FIFO *)
  queued : int Atomic.t;  (* items across queued chunks *)
  (* In-flight range of the chunk being run: [cur] is the item under
     evaluation (-1 idle), [hi] the range end.  Written only by the
     owning domain; read by its own supervisor after a death and
     (racily, monitoring-grade) by [stats]. *)
  mutable cur : int;
  mutable hi : int;
  (* Generation of the lane's last first-claim, owner-private: stamps
     one [pool.queue.wait_ns] observation per lane per job. *)
  mutable claim_gen : int;
}

type t = {
  m : Mutex.t;  (* job lifecycle: submit, final completion, failure, orphans *)
  work_done : Condition.t;  (* only the caller blocked in [run] waits here *)
  lanes : lane array;  (* slot [workers] is the main lane *)
  completed : int Atomic.t;
  mutable job : (int -> unit) option;
  mutable total : int;
  mutable failure : exn option;
  mutable generation : int;
  mutable posted_ns : int64;  (* when the current job was posted *)
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
  steals : int Atomic.t;  (* lifetime stolen chunks, for [stats] *)
  workers : int;  (* worker domains actually spawned (lanes - 1) *)
}

let new_lane () =
  {
    lm = Mutex.create ();
    ready = Condition.create ();
    chunks = [];
    queued = Atomic.make 0;
    cur = -1;
    hi = -1;
    claim_gen = 0;
  }

(* Queue ops; caller holds [lane.lm]. *)
let push_back lane ((lo, hi) as chunk) =
  lane.chunks <- lane.chunks @ [ chunk ];
  ignore (Atomic.fetch_and_add lane.queued (hi - lo))

let push_front lane ((lo, hi) as chunk) =
  lane.chunks <- chunk :: lane.chunks;
  ignore (Atomic.fetch_and_add lane.queued (hi - lo))

let pop lane =
  match lane.chunks with
  | [] -> None
  | ((lo, hi) as chunk) :: rest ->
    lane.chunks <- rest;
    ignore (Atomic.fetch_and_add lane.queued (lo - hi));
    Some chunk

(* Claim-site diagnostics, recorded at each chunk claim without any
   shared lock: one wait observation per lane per job, plus the racy
   busy-lane occupancy scan. *)
let observe_claim t lane =
  if lane.claim_gen <> t.generation then begin
    lane.claim_gen <- t.generation;
    Telemetry.Histogram.observe queue_wait_hist
      (Int64.to_float (Int64.sub (now_ns ()) t.posted_ns))
  end;
  let busy = ref 0 in
  Array.iter (fun l -> if l.cur >= 0 then incr busy) t.lanes;
  Telemetry.Histogram.observe lane_busy_hist (float_of_int !busy)

(* Steal one chunk for [thief]: scan the other queues racily for the
   busiest, then pop under that queue's own mutex (re-checking, since
   the owner may have drained it meanwhile).  One pass over descending
   candidates is enough — a miss means the work is in flight, not
   queued, and nothing queued can appear behind our back except on the
   main lane (which is woken explicitly). *)
let steal t thief =
  let best = ref None in
  Array.iter
    (fun lane ->
      if lane != thief then
        let q = Atomic.get lane.queued in
        if q > 0 then
          match !best with
          | Some (_, bq) when bq >= q -> ()
          | _ -> best := Some (lane, q))
    t.lanes;
  match !best with
  | None -> None
  | Some (victim, _) ->
    Mutex.lock victim.lm;
    let chunk = pop victim in
    Mutex.unlock victim.lm;
    (match chunk with
    | Some _ ->
      Telemetry.Counter.incr steal_counter;
      ignore (Atomic.fetch_and_add t.steals 1)
    | None -> ());
    chunk

(* Next chunk for [lane]: own queue first, then steal. *)
let get_work t lane =
  Mutex.lock lane.lm;
  let own = pop lane in
  Mutex.unlock lane.lm;
  match own with
  | Some chunk ->
    observe_claim t lane;
    Some chunk
  | None -> (
    match steal t lane with
    | Some chunk ->
      observe_claim t lane;
      Some chunk
    | None -> None)

let complete_one t =
  let before = Atomic.fetch_and_add t.completed 1 in
  if before + 1 >= t.total then begin
    (* Last item: wake the caller blocked in [run].  Exactly one lane
       ever waits on [work_done], so a targeted signal suffices. *)
    Mutex.lock t.m;
    Condition.signal t.work_done;
    Mutex.unlock t.m
  end

let set_failure t e =
  Mutex.lock t.m;
  if t.failure = None then t.failure <- Some e;
  Mutex.unlock t.m

(* Requeue the in-flight remainder of [lane]'s chunk (current index
   included) onto the main lane's queue — the one lane guaranteed to
   still be alive — and wake only the caller, which mops it up.  Used
   by the [Worker_killed] hook and by the supervisor after any death. *)
let requeue_inflight t lane =
  if lane.cur >= 0 then begin
    let chunk = (lane.cur, lane.hi) in
    lane.cur <- -1;
    let main = t.lanes.(t.workers) in
    Mutex.lock main.lm;
    push_front main chunk;
    Mutex.unlock main.lm;
    Mutex.lock t.m;
    Condition.signal t.work_done;
    Mutex.unlock t.m
  end

(* Run one claimed chunk.  No lock is held while items execute.  A
   worker lane hit by [Worker_killed] requeues the unfinished
   remainder and re-raises so the supervisor can replace the domain;
   on the main lane the remainder is requeued and claiming continues
   (the caller's domain cannot be respawned).  Ordinary exceptions are
   the job's failure: recorded once, and the item still counts as
   completed so [run] can finish and re-raise. *)
let run_chunk t f lane ~is_worker (lo, hi) =
  lane.hi <- hi;
  lane.cur <- lo;
  let i = ref lo in
  let live = ref true in
  while !live && !i < hi do
    (match f !i with
    | () -> complete_one t
    | exception Worker_killed ->
      requeue_inflight t lane;
      if is_worker then raise Worker_killed;
      live := false
    | exception e ->
      set_failure t e;
      complete_one t);
    if !live then begin
      incr i;
      lane.cur <- !i
    end
  done;
  lane.cur <- -1

let worker_loop t lane =
  let running = ref true in
  while !running do
    match if t.shutdown then None else get_work t lane with
    | Some chunk -> (
      match t.job with
      | Some f -> run_chunk t f lane ~is_worker:true chunk
      | None -> () (* unreachable: chunks never outlive their job *))
    | None ->
      (* Nothing local, nothing stealable: sleep on the private
         condition until a submit deals this lane new chunks (or
         shutdown).  Queues only grow at submit (this lane is then
         signalled) and at orphan requeue (main lane only, and the
         main lane never sleeps here), so sleeping cannot strand
         claimable work. *)
      Mutex.lock lane.lm;
      if lane.chunks = [] && not t.shutdown then begin
        Condition.wait lane.ready lane.lm;
        if lane.chunks = [] && not t.shutdown then
          Telemetry.Counter.incr spurious_counter
      end;
      if t.shutdown then running := false;
      Mutex.unlock lane.lm
  done

(* Worker supervisor.  An exception escaping the loop means the lane is
   gone: requeue whatever remained of its claimed chunk, count the
   restart, and spawn a replacement that joins the job already in
   flight (its queue — including any chunks the dead lane never got
   to — survives untouched). *)
let rec supervise t ~slot () =
  let lane = t.lanes.(slot) in
  try worker_loop t lane
  with e ->
    requeue_inflight t lane;
    (match e with
    | Worker_killed ->
      Telemetry.Log.debug
        ~fields:[ ("slot", string_of_int slot) ]
        "pool: worker killed (test hook), respawning"
    | e ->
      set_failure t e;
      Telemetry.Log.warn
        ~fields:[ ("slot", string_of_int slot); ("exn", Printexc.to_string e) ]
        "pool: worker domain died, respawning");
    Telemetry.Counter.incr restarts_counter;
    Mutex.lock t.m;
    if not t.shutdown then
      t.domains <- Domain.spawn (supervise t ~slot) :: t.domains;
    Condition.signal t.work_done;
    Mutex.unlock t.m

let shutdown t =
  Mutex.lock t.m;
  if t.shutdown then Mutex.unlock t.m
  else begin
    t.shutdown <- true;
    (* Snapshot after the flag is set: any supervisor that locks the
       mutex later sees [shutdown] and does not spawn a replacement, so
       the snapshot covers every domain that will ever exist. *)
    let domains = t.domains in
    t.domains <- [];
    Mutex.unlock t.m;
    (* Targeted wakeups even here: each sleeping worker idles on its
       own condition variable. *)
    Array.iteri
      (fun slot lane ->
        if slot < t.workers then begin
          Mutex.lock lane.lm;
          Condition.signal lane.ready;
          Mutex.unlock lane.lm
        end)
      t.lanes;
    List.iter Domain.join domains
  end

(* Hardware-aware sizing: a worker domain beyond the machine's
   available parallelism can never speed a batch up — it can only
   timeshare a core the other lanes already saturate — yet its mere
   existence taxes every stop-the-world minor collection, which must
   synchronise with all live domains (even ones parked in
   [Condition.wait], via their backup threads; on an oversubscribed
   single-core host that synchronisation rides the OS scheduler and
   was measured to double an 8-item batch, DESIGN §13).  So by
   default [create] spawns at most [recommended_domain_count () - 1]
   workers — possibly zero, leaving the stealing caller as the only
   lane — and the requested surplus simply never exists.  [~eager]
   spawns the full request regardless, for supervision tests and
   deliberate oversubscription. *)
let create ?(eager = false) workers =
  if workers <= 0 then invalid_arg "Pool.create: need at least one worker";
  let workers =
    if eager then workers
    else min workers (max 0 (Domain.recommended_domain_count () - 1))
  in
  let t =
    {
      m = Mutex.create ();
      work_done = Condition.create ();
      lanes = Array.init (workers + 1) (fun _ -> new_lane ());
      completed = Atomic.make 0;
      job = None;
      total = 0;
      failure = None;
      generation = 0;
      posted_ns = 0L;
      shutdown = false;
      domains = [];
      steals = Atomic.make 0;
      workers;
    }
  in
  t.domains <- List.init workers (fun slot -> Domain.spawn (supervise t ~slot));
  (* Idle workers block on their lane condition; make sure process exit
     does not hang waiting for them. *)
  at_exit (fun () -> shutdown t);
  t

let workers t = t.workers

type stats = {
  lanes : int;
  busy_lanes : int;
  job_active : bool;
  queue_depths : int list;
  steals : int;
}

let stats t =
  Mutex.lock t.m;
  let busy = ref 0 in
  Array.iter (fun l -> if l.cur >= 0 then incr busy) t.lanes;
  let s =
    {
      lanes = t.workers + 1;
      busy_lanes = !busy;
      job_active = t.job <> None;
      queue_depths = Array.to_list (Array.map (fun l -> Atomic.get l.queued) t.lanes);
      steals = Atomic.get t.steals;
    }
  in
  Mutex.unlock t.m;
  s

(* Deal [0..n-1] into contiguous chunks round-robin across the lanes,
   main lane first so the caller's first claim is always local.  The
   default chunk size spreads the batch over every lane, capped at
   [max_chunk] so large batches still rebalance by stealing. *)
let distribute (t : t) n chunk =
  let lanes = Array.length t.lanes in
  let order = Array.init lanes (fun k -> (t.workers + k) mod lanes) in
  let got = Array.make lanes false in
  let l = ref 0 in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + chunk) in
    let lane = t.lanes.(order.(!l)) in
    Mutex.lock lane.lm;
    push_back lane (!lo, hi);
    Mutex.unlock lane.lm;
    got.(order.(!l)) <- true;
    l := (!l + 1) mod lanes;
    lo := hi
  done;
  got

let run ?chunk (t : t) f n =
  if n > 0 then begin
    Mutex.lock t.m;
    if t.shutdown then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.run: pool is shut down"
    end;
    t.job <- Some f;
    t.total <- n;
    Atomic.set t.completed 0;
    t.failure <- None;
    t.generation <- t.generation + 1;
    t.posted_ns <- now_ns ();
    Mutex.unlock t.m;
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (min max_chunk ((n + Array.length t.lanes - 1) / Array.length t.lanes))
    in
    let got = distribute t n chunk in
    (* Targeted wakeups: only the worker lanes that actually received a
       chunk are signalled; everyone else keeps sleeping. *)
    Array.iteri
      (fun slot lane ->
        if slot < t.workers && got.(slot) then Condition.signal lane.ready)
      t.lanes;
    (* The caller is a lane too: drain its own queue, then steal.  It
       also mops up orphans left by dead workers (requeued onto its
       queue), so completion never depends on a respawn racing in. *)
    let main = t.lanes.(t.workers) in
    let driving = ref true in
    while !driving do
      match get_work t main with
      | Some chunk -> run_chunk t f main ~is_worker:false chunk
      | None ->
        if Atomic.get t.completed >= t.total then driving := false
        else begin
          Mutex.lock t.m;
          while
            Atomic.get t.completed < t.total && Atomic.get main.queued = 0
          do
            Condition.wait t.work_done t.m
          done;
          Mutex.unlock t.m;
          if Atomic.get t.completed >= t.total then driving := false
          (* else: an orphan landed on our queue — go claim it. *)
        end
    done;
    (* Leave no job state behind even when re-raising, so the pool is
       immediately reusable after a failed run. *)
    Mutex.lock t.m;
    t.job <- None;
    let fail = t.failure in
    t.failure <- None;
    Mutex.unlock t.m;
    match fail with Some e -> raise e | None -> ()
  end
