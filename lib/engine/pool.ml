(* Hand-rolled fixed worker pool over Domain/Mutex/Condition — no
   dependencies beyond the stdlib, per the repo's no-new-deps rule.

   The pool runs index-parallel jobs: [run t f n] evaluates [f i] for
   every [i] in [0..n-1], claiming indices from a shared cursor under
   the pool mutex.  The calling (main) domain participates as a lane,
   so a pool built with [create (jobs - 1)] workers gives [jobs]
   evaluation lanes total.  Determinism is the caller's contract: [f]
   must write result [i] to slot [i] only, so claim order never shows
   in the output. *)

type t = {
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (int -> unit) option;
  mutable next : int;
  mutable total : int;
  mutable completed : int;
  mutable failure : exn option;
  mutable generation : int;
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
  workers : int;
}

(* Claim-and-run one index; caller holds the mutex on entry and exit. *)
let step t f =
  let i = t.next in
  t.next <- t.next + 1;
  Mutex.unlock t.m;
  (try f i
   with e ->
     Mutex.lock t.m;
     if t.failure = None then t.failure <- Some e;
     Mutex.unlock t.m);
  Mutex.lock t.m;
  t.completed <- t.completed + 1;
  if t.completed >= t.total then Condition.broadcast t.work_done

let worker t () =
  let last = ref 0 in
  Mutex.lock t.m;
  let running = ref true in
  while !running do
    while t.generation = !last && not t.shutdown do
      Condition.wait t.work_ready t.m
    done;
    if t.shutdown then running := false
    else begin
      last := t.generation;
      let gen = t.generation in
      let claiming = ref true in
      while !claiming do
        match t.job with
        | Some f when t.generation = gen && t.next < t.total -> step t f
        | _ -> claiming := false
      done
    end
  done;
  Mutex.unlock t.m

let shutdown t =
  Mutex.lock t.m;
  if t.shutdown then Mutex.unlock t.m
  else begin
    t.shutdown <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.m;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let create workers =
  if workers <= 0 then invalid_arg "Pool.create: need at least one worker";
  let t =
    {
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      next = 0;
      total = 0;
      completed = 0;
      failure = None;
      generation = 0;
      shutdown = false;
      domains = [];
      workers;
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (worker t));
  (* Idle workers block on [work_ready]; make sure process exit does
     not hang waiting for them. *)
  at_exit (fun () -> shutdown t);
  t

let workers t = t.workers

let run t f n =
  if n > 0 then begin
    Mutex.lock t.m;
    if t.shutdown then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.run: pool is shut down"
    end;
    t.job <- Some f;
    t.next <- 0;
    t.total <- n;
    t.completed <- 0;
    t.failure <- None;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    (* The caller is a lane too. *)
    while t.next < t.total do
      step t f
    done;
    while t.completed < t.total do
      Condition.wait t.work_done t.m
    done;
    t.job <- None;
    let fail = t.failure in
    Mutex.unlock t.m;
    match fail with Some e -> raise e | None -> ()
  end
