(* Hand-rolled fixed worker pool over Domain/Mutex/Condition — no
   dependencies beyond the stdlib, per the repo's no-new-deps rule.

   The pool runs index-parallel jobs: [run t f n] evaluates [f i] for
   every [i] in [0..n-1], claiming indices from a shared cursor under
   the pool mutex.  The calling (main) domain participates as a lane,
   so a pool built with [create (jobs - 1)] workers gives [jobs]
   evaluation lanes total.  Determinism is the caller's contract: [f]
   must write result [i] to slot [i] only, so claim order never shows
   in the output.

   Supervision: each worker domain runs under a supervisor wrapper.  If
   a worker dies (any exception escaping its loop — [Worker_killed] is
   the test hook that simulates an abrupt domain death), the supervisor
   requeues the index the lane had claimed onto the orphan list, bumps
   [pool.worker.restarts], and spawns a replacement domain that joins
   the in-flight job.  Orphans are claimed before fresh indices, so a
   killed lane delays its index but never loses it, and [run] still
   returns only when every index has actually completed. *)

exception Worker_killed

let restarts_counter = Telemetry.Counter.make "pool.worker.restarts"

(* Scheduling diagnostics (see DESIGN §12): [pool.queue.wait_ns] is the
   latency from job post to each lane's *first* claim of that job —
   direct evidence of how long freshly woken domains take to reach the
   cursor; [pool.lane.busy] is the number of busy lanes observed at
   every claim, i.e. the occupancy the job actually achieved.  Both are
   recorded under the pool mutex the claim already holds. *)
let queue_wait_hist = Telemetry.Histogram.make "pool.queue.wait_ns"
let lane_busy_hist = Telemetry.Histogram.make "pool.lane.busy"

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

type t = {
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (int -> unit) option;
  mutable next : int;
  mutable orphans : int list;  (* indices claimed by a lane that died *)
  inflight : int array;  (* per-lane claimed index, -1 when idle; slot [workers] is the main lane *)
  claim_gen : int array;  (* generation of each lane's last first-claim *)
  mutable posted_ns : int64;  (* when the current job was posted *)
  mutable total : int;
  mutable completed : int;
  mutable failure : exn option;
  mutable generation : int;
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
  workers : int;
}

(* Next index to run, orphans first; caller holds the mutex. *)
let claim_locked t =
  match t.orphans with
  | i :: rest ->
    t.orphans <- rest;
    Some i
  | [] ->
    if t.next < t.total then begin
      let i = t.next in
      t.next <- t.next + 1;
      Some i
    end
    else None

(* Claim-site diagnostics; caller holds the mutex and has just marked
   its lane busy. *)
let observe_claim t ~slot =
  if t.claim_gen.(slot) <> t.generation then begin
    t.claim_gen.(slot) <- t.generation;
    Telemetry.Histogram.observe queue_wait_hist
      (Int64.to_float (Int64.sub (now_ns ()) t.posted_ns))
  end;
  let busy = ref 0 in
  Array.iter (fun i -> if i >= 0 then incr busy) t.inflight;
  Telemetry.Histogram.observe lane_busy_hist (float_of_int !busy)

(* Run one claimed index.  The mutex is held on entry and exit — except
   on a worker lane hit by [Worker_killed], which requeues its index,
   unlocks and re-raises so the supervisor can replace the domain. *)
let step t f ~slot i =
  t.inflight.(slot) <- i;
  observe_claim t ~slot;
  Mutex.unlock t.m;
  match f i with
  | () ->
    Mutex.lock t.m;
    t.inflight.(slot) <- -1;
    t.completed <- t.completed + 1;
    if t.completed >= t.total then Condition.broadcast t.work_done
  | exception Worker_killed ->
    Mutex.lock t.m;
    t.inflight.(slot) <- -1;
    t.orphans <- i :: t.orphans;
    (* Wake both sides: idle workers can claim the orphan, and a main
       lane blocked in [run] must re-check rather than sleep on a
       completion count that will not move until someone reclaims. *)
    Condition.broadcast t.work_ready;
    Condition.broadcast t.work_done;
    if slot < t.workers then begin
      Mutex.unlock t.m;
      raise Worker_killed
    end
    (* Main lane: the calling domain cannot be respawned — it simply
       requeues and keeps claiming. *)
  | exception e ->
    Mutex.lock t.m;
    t.inflight.(slot) <- -1;
    if t.failure = None then t.failure <- Some e;
    t.completed <- t.completed + 1;
    if t.completed >= t.total then Condition.broadcast t.work_done

let worker_loop t ~slot ~last_gen =
  let last = ref last_gen in
  Mutex.lock t.m;
  let running = ref true in
  while !running do
    while t.generation = !last && not t.shutdown do
      Condition.wait t.work_ready t.m
    done;
    if t.shutdown then running := false
    else begin
      last := t.generation;
      let gen = t.generation in
      let claiming = ref true in
      while !claiming do
        match t.job with
        | Some f when t.generation = gen -> (
          match claim_locked t with
          | Some i -> step t f ~slot i
          | None -> claiming := false)
        | _ -> claiming := false
      done
    end
  done;
  Mutex.unlock t.m

(* Worker supervisor.  An exception escaping the loop means the lane is
   gone: requeue whatever it had claimed, count the restart, and spawn
   a replacement that joins the job already in flight ([last_gen] one
   behind the current generation, so it claims immediately). *)
let rec supervise t ~slot ~last_gen () =
  try worker_loop t ~slot ~last_gen
  with e ->
    Mutex.lock t.m;
    if t.inflight.(slot) >= 0 then begin
      t.orphans <- t.inflight.(slot) :: t.orphans;
      t.inflight.(slot) <- -1
    end;
    (match e with
    | Worker_killed ->
      Telemetry.Log.debug
        ~fields:[ ("slot", string_of_int slot) ]
        "pool: worker killed (test hook), respawning"
    | e ->
      if t.failure = None then t.failure <- Some e;
      Telemetry.Log.warn
        ~fields:[ ("slot", string_of_int slot); ("exn", Printexc.to_string e) ]
        "pool: worker domain died, respawning");
    Telemetry.Counter.incr restarts_counter;
    if not t.shutdown then begin
      let join_gen = t.generation - 1 in
      t.domains <- Domain.spawn (supervise t ~slot ~last_gen:join_gen) :: t.domains
    end;
    Condition.broadcast t.work_ready;
    Condition.broadcast t.work_done;
    Mutex.unlock t.m

let shutdown t =
  Mutex.lock t.m;
  if t.shutdown then Mutex.unlock t.m
  else begin
    t.shutdown <- true;
    Condition.broadcast t.work_ready;
    (* Snapshot after the flag is set: any supervisor that locks the
       mutex later sees [shutdown] and does not spawn a replacement, so
       the snapshot covers every domain that will ever exist. *)
    let domains = t.domains in
    t.domains <- [];
    Mutex.unlock t.m;
    List.iter Domain.join domains
  end

let create workers =
  if workers <= 0 then invalid_arg "Pool.create: need at least one worker";
  let t =
    {
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      next = 0;
      orphans = [];
      inflight = Array.make (workers + 1) (-1);
      claim_gen = Array.make (workers + 1) 0;
      posted_ns = 0L;
      total = 0;
      completed = 0;
      failure = None;
      generation = 0;
      shutdown = false;
      domains = [];
      workers;
    }
  in
  t.domains <- List.init workers (fun slot -> Domain.spawn (supervise t ~slot ~last_gen:0));
  (* Idle workers block on [work_ready]; make sure process exit does
     not hang waiting for them. *)
  at_exit (fun () -> shutdown t);
  t

let workers t = t.workers

type stats = {
  lanes : int;
  busy_lanes : int;
  job_active : bool;
}

let stats t =
  Mutex.lock t.m;
  let busy = ref 0 in
  Array.iter (fun i -> if i >= 0 then incr busy) t.inflight;
  let s = { lanes = t.workers + 1; busy_lanes = !busy; job_active = t.job <> None } in
  Mutex.unlock t.m;
  s

let run t f n =
  if n > 0 then begin
    Mutex.lock t.m;
    if t.shutdown then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.run: pool is shut down"
    end;
    t.job <- Some f;
    t.next <- 0;
    t.orphans <- [];
    t.total <- n;
    t.completed <- 0;
    t.failure <- None;
    t.generation <- t.generation + 1;
    t.posted_ns <- now_ns ();
    Condition.broadcast t.work_ready;
    (* The caller is a lane too; it also mops up orphans left by dead
       workers, so completion never depends on a respawn racing in. *)
    let slot = t.workers in
    let continue_ = ref true in
    while !continue_ do
      match claim_locked t with
      | Some i -> step t f ~slot i
      | None ->
        if t.completed >= t.total then continue_ := false
        else Condition.wait t.work_done t.m
    done;
    (* Leave no job state behind even when re-raising, so the pool is
       immediately reusable after a failed run. *)
    t.job <- None;
    let fail = t.failure in
    t.failure <- None;
    Mutex.unlock t.m;
    match fail with Some e -> raise e | None -> ()
  end
