(* Sharded work-stealing worker pool over Domain/Mutex/Condition — no
   dependencies beyond the stdlib, per the repo's no-new-deps rule.

   The pool runs index-parallel jobs: [run t f n] evaluates [f i] for
   every [i] in [0..n-1].  The calling (main) domain participates as a
   lane, so a pool built with [create (jobs - 1)] workers gives [jobs]
   evaluation lanes total.  Determinism is the caller's contract: [f]
   must write result [i] to slot [i] only, so claim order never shows
   in the output.

   Scheduling (DESIGN §13).  The previous design kept one shared claim
   cursor under one pool mutex with [Condition.broadcast] on every
   post, orphan and completion; its own histograms (DESIGN §12) showed
   first-claim latency growing past the work-item cost as lanes were
   added.  This design shards the schedule instead:

   - Submit chunks [0..n-1] into contiguous ranges and deals them
     round-robin across per-lane run queues, main lane first so the
     caller always starts on local work.  Each queue has its own mutex
     and condition variable.
   - A lane claims whole chunks from its own queue; when that drains
     it steals a chunk from the busiest other queue.  Items inside a
     claimed chunk run without touching any lock.
   - Wakeups are targeted: submit [signal]s exactly the worker lanes
     that received chunks; the completion of the last item [signal]s
     the one lane (the caller) waiting in [run]; an orphan requeue
     signals only the main lane, which is guaranteed alive.  No
     broadcast remains on the submit/steal/complete path, and a lane
     that wakes to find nothing claimable counts
     [pool.wakeup.spurious].
   - Completion is an atomic counter; the job-lifecycle mutex [t.m] is
     taken only at submit, on the final completion, on failure and on
     orphan requeue — never per claim.

   Lock order: [t.m] may be held while taking a lane mutex (submit,
   stats); a lane mutex is never held while taking [t.m].

   Supervision: each worker domain runs under a supervisor wrapper.
   If a worker dies (any exception escaping its loop — [Worker_killed]
   is the test hook that simulates an abrupt domain death), the
   supervisor requeues the in-flight remainder of the chunk the lane
   had claimed (current index included) onto the *main* lane's queue,
   bumps [pool.worker.restarts], and spawns a replacement domain.
   Chunks still queued on the dead lane are not lost either: the
   replacement pops them, and until it arrives they are stealable like
   any other queue.  Orphaned work therefore delays, but never loses,
   its indices, and [run] still returns only when every index has
   actually completed.

   Streaming (DESIGN §14): [submit_stream] posts a whole job at once
   and returns a ticket instead of blocking.  Completions are pushed —
   index by index, from whichever lane finished the item — onto a
   per-job completion queue guarded by the job's own mutex, and
   [next_result] pops them in completion order.  When nothing has
   completed yet the consumer does not idle: it claims work on the
   main lane exactly like [run] does, but one item at a time (the
   remainder of a claimed chunk is pushed back, where a thief can
   still take it), so delivery granularity on a worker-less host is a
   single item.  Ordering inside [complete_one] is what makes teardown
   safe: the completion counter is incremented *before* the index is
   pushed, so once the consumer has popped all [n] completions every
   increment has happened and no lane will touch the job state
   again. *)

exception Worker_killed

let restarts_counter = Telemetry.Counter.make "pool.worker.restarts"
let steal_counter = Telemetry.Counter.make "pool.steal.count"
let spurious_counter = Telemetry.Counter.make "pool.wakeup.spurious"

(* Scheduling diagnostics (see DESIGN §12/§13): [pool.queue.wait_ns] is
   the latency from job post to each lane's *first* chunk claim of that
   job — direct evidence of how long freshly woken domains take to
   reach work; [pool.lane.busy] is the number of busy lanes observed at
   every chunk claim, i.e. the occupancy the job actually achieved. *)
let queue_wait_hist = Telemetry.Histogram.make "pool.queue.wait_ns"
let lane_busy_hist = Telemetry.Histogram.make "pool.lane.busy"

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* The scheduler's largest submit-time chunk, and the unit of the
   wakeup budget: a submit engages at most ⌈n / max_chunk⌉ lanes, so a
   tiny batch no longer wakes (and GC-taxes) domains that would each
   receive less than a chunk's worth of work. *)
let max_chunk = 16

type lane = {
  lm : Mutex.t;  (* guards [chunks]; [queued] is atomic for racy scans *)
  ready : Condition.t;  (* this lane's private wakeup (workers only) *)
  mutable chunks : (int * int) list;  (* queued [lo, hi) ranges, FIFO *)
  queued : int Atomic.t;  (* items across queued chunks *)
  (* In-flight range of the chunk being run: [cur] is the item under
     evaluation (-1 idle), [hi] the range end.  Written only by the
     owning domain; read by its own supervisor after a death and
     (racily, monitoring-grade) by [stats]. *)
  mutable cur : int;
  mutable hi : int;
  (* Generation of the lane's last first-claim, owner-private: stamps
     one [pool.queue.wait_ns] observation per lane per job. *)
  mutable claim_gen : int;
}

(* Per-streaming-job completion channel.  [completions] holds the
   indices of finished items in completion order, guarded by [cm];
   lanes push under [cm] and signal [cready], the consumer (always the
   main domain) pops.  The queue is monomorphic — results themselves
   live in the ticket's array, written by the job closure — so the
   pool type stays unparameterised. *)
type stream_state = {
  cm : Mutex.t;
  cready : Condition.t;
  completions : int Queue.t;
}

type t = {
  m : Mutex.t;  (* job lifecycle: submit, final completion, failure, orphans *)
  work_done : Condition.t;  (* only the caller blocked in [run] waits here *)
  lanes : lane array;  (* slot [workers] is the main lane *)
  completed : int Atomic.t;
  mutable job : (int -> unit) option;
  mutable total : int;
  mutable failure : exn option;
  mutable generation : int;
  mutable posted_ns : int64;  (* when the current job was posted *)
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
  steals : int Atomic.t;  (* lifetime stolen chunks, for [stats] *)
  workers : int;  (* worker domains actually spawned (lanes - 1) *)
  (* Completion channel of the active streaming job, [None] for [run]
     jobs and between jobs.  Atomic because lanes read it on every
     completion without holding any lock. *)
  stream : stream_state option Atomic.t;
}

let new_lane () =
  {
    lm = Mutex.create ();
    ready = Condition.create ();
    chunks = [];
    queued = Atomic.make 0;
    cur = -1;
    hi = -1;
    claim_gen = 0;
  }

(* Queue ops; caller holds [lane.lm]. *)
let push_back lane ((lo, hi) as chunk) =
  lane.chunks <- lane.chunks @ [ chunk ];
  ignore (Atomic.fetch_and_add lane.queued (hi - lo))

let push_front lane ((lo, hi) as chunk) =
  lane.chunks <- chunk :: lane.chunks;
  ignore (Atomic.fetch_and_add lane.queued (hi - lo))

let pop lane =
  match lane.chunks with
  | [] -> None
  | ((lo, hi) as chunk) :: rest ->
    lane.chunks <- rest;
    ignore (Atomic.fetch_and_add lane.queued (lo - hi));
    Some chunk

(* Claim-site diagnostics, recorded at each chunk claim without any
   shared lock: one wait observation per lane per job, plus the racy
   busy-lane occupancy scan. *)
let observe_claim t lane =
  if lane.claim_gen <> t.generation then begin
    lane.claim_gen <- t.generation;
    Telemetry.Histogram.observe queue_wait_hist
      (Int64.to_float (Int64.sub (now_ns ()) t.posted_ns))
  end;
  let busy = ref 0 in
  Array.iter (fun l -> if l.cur >= 0 then incr busy) t.lanes;
  Telemetry.Histogram.observe lane_busy_hist (float_of_int !busy)

(* Steal one chunk for [thief]: scan the other queues racily for the
   busiest, then pop under that queue's own mutex (re-checking, since
   the owner may have drained it meanwhile).  One pass over descending
   candidates is enough — a miss means the work is in flight, not
   queued, and nothing queued can appear behind our back except on the
   main lane (which is woken explicitly). *)
let steal t thief =
  let best = ref None in
  Array.iter
    (fun lane ->
      if lane != thief then
        let q = Atomic.get lane.queued in
        if q > 0 then
          match !best with
          | Some (_, bq) when bq >= q -> ()
          | _ -> best := Some (lane, q))
    t.lanes;
  match !best with
  | None -> None
  | Some (victim, _) ->
    Mutex.lock victim.lm;
    let chunk = pop victim in
    Mutex.unlock victim.lm;
    (match chunk with
    | Some _ ->
      Telemetry.Counter.incr steal_counter;
      ignore (Atomic.fetch_and_add t.steals 1)
    | None -> ());
    chunk

(* Next chunk for [lane]: own queue first, then steal. *)
let get_work t lane =
  Mutex.lock lane.lm;
  let own = pop lane in
  Mutex.unlock lane.lm;
  match own with
  | Some chunk ->
    observe_claim t lane;
    Some chunk
  | None -> (
    match steal t lane with
    | Some chunk ->
      observe_claim t lane;
      Some chunk
    | None -> None)

let complete_one t i =
  (* Capture the stream identity *before* the increment: a [discard]
     may observe the counter hit [total] (via a sibling's signal),
     release the job and let a new one post while this lane is still
     between its increment and its push — the capture pins the push to
     the old job's (now unreferenced, harmless) queue instead of
     corrupting the new job's.  The increment itself comes strictly
     before the push: the streaming consumer treats "popped all [n]
     completions" as proof that all [n] increments have landed (each
     push happens-after its own increment in program order and the
     pushes are serialised by [cm]), which is what lets it tear the
     job state down without a second synchronisation. *)
  let stream = Atomic.get t.stream in
  let before = Atomic.fetch_and_add t.completed 1 in
  (match stream with
  | Some st ->
    Mutex.lock st.cm;
    Queue.push i st.completions;
    Condition.signal st.cready;
    Mutex.unlock st.cm
  | None -> ());
  if before + 1 >= t.total then begin
    (* Last item: wake the caller blocked in [run].  Exactly one lane
       ever waits on [work_done], so a targeted signal suffices. *)
    Mutex.lock t.m;
    Condition.signal t.work_done;
    Mutex.unlock t.m
  end

let set_failure t e =
  Mutex.lock t.m;
  if t.failure = None then t.failure <- Some e;
  Mutex.unlock t.m

(* Requeue the in-flight remainder of [lane]'s chunk (current index
   included) onto the main lane's queue — the one lane guaranteed to
   still be alive — and wake only the caller, which mops it up.  Used
   by the [Worker_killed] hook and by the supervisor after any death. *)
let requeue_inflight t lane =
  if lane.cur >= 0 then begin
    let chunk = (lane.cur, lane.hi) in
    lane.cur <- -1;
    let main = t.lanes.(t.workers) in
    Mutex.lock main.lm;
    push_front main chunk;
    Mutex.unlock main.lm;
    Mutex.lock t.m;
    Condition.signal t.work_done;
    Mutex.unlock t.m;
    (* A streaming consumer may be blocked on the completion condition
       waiting for progress; the orphan landing on the main queue *is*
       the progress (the consumer claims it), so poke that condition
       too. *)
    match Atomic.get t.stream with
    | Some st ->
      Mutex.lock st.cm;
      Condition.signal st.cready;
      Mutex.unlock st.cm
    | None -> ()
  end

(* Run one claimed chunk.  No lock is held while items execute.  A
   worker lane hit by [Worker_killed] requeues the unfinished
   remainder and re-raises so the supervisor can replace the domain;
   on the main lane the remainder is requeued and claiming continues
   (the caller's domain cannot be respawned).  Ordinary exceptions are
   the job's failure: recorded once, and the item still counts as
   completed so [run] can finish and re-raise. *)
let run_chunk t f lane ~is_worker (lo, hi) =
  lane.hi <- hi;
  lane.cur <- lo;
  let i = ref lo in
  let live = ref true in
  while !live && !i < hi do
    (match f !i with
    | () -> complete_one t !i
    | exception Worker_killed ->
      requeue_inflight t lane;
      if is_worker then raise Worker_killed;
      live := false
    | exception e ->
      set_failure t e;
      complete_one t !i);
    if !live then begin
      incr i;
      lane.cur <- !i
    end
  done;
  lane.cur <- -1

let worker_loop t lane =
  let running = ref true in
  while !running do
    match if t.shutdown then None else get_work t lane with
    | Some chunk -> (
      match t.job with
      | Some f -> run_chunk t f lane ~is_worker:true chunk
      | None -> () (* unreachable: chunks never outlive their job *))
    | None ->
      (* Nothing local, nothing stealable: sleep on the private
         condition until a submit deals this lane new chunks (or
         shutdown).  Queues only grow at submit (this lane is then
         signalled) and at orphan requeue (main lane only, and the
         main lane never sleeps here), so sleeping cannot strand
         claimable work. *)
      Mutex.lock lane.lm;
      if lane.chunks = [] && not t.shutdown then begin
        Condition.wait lane.ready lane.lm;
        if lane.chunks = [] && not t.shutdown then
          Telemetry.Counter.incr spurious_counter
      end;
      if t.shutdown then running := false;
      Mutex.unlock lane.lm
  done

(* Worker supervisor.  An exception escaping the loop means the lane is
   gone: requeue whatever remained of its claimed chunk, count the
   restart, and spawn a replacement that joins the job already in
   flight (its queue — including any chunks the dead lane never got
   to — survives untouched). *)
let rec supervise t ~slot () =
  let lane = t.lanes.(slot) in
  try worker_loop t lane
  with e ->
    requeue_inflight t lane;
    (match e with
    | Worker_killed ->
      Telemetry.Log.debug
        ~fields:[ ("slot", string_of_int slot) ]
        "pool: worker killed (test hook), respawning"
    | e ->
      set_failure t e;
      Telemetry.Log.warn
        ~fields:[ ("slot", string_of_int slot); ("exn", Printexc.to_string e) ]
        "pool: worker domain died, respawning");
    Telemetry.Counter.incr restarts_counter;
    Mutex.lock t.m;
    if not t.shutdown then
      t.domains <- Domain.spawn (supervise t ~slot) :: t.domains;
    Condition.signal t.work_done;
    Mutex.unlock t.m

let shutdown t =
  Mutex.lock t.m;
  if t.shutdown then Mutex.unlock t.m
  else begin
    t.shutdown <- true;
    (* Snapshot after the flag is set: any supervisor that locks the
       mutex later sees [shutdown] and does not spawn a replacement, so
       the snapshot covers every domain that will ever exist. *)
    let domains = t.domains in
    t.domains <- [];
    Mutex.unlock t.m;
    (* Targeted wakeups even here: each sleeping worker idles on its
       own condition variable. *)
    Array.iteri
      (fun slot lane ->
        if slot < t.workers then begin
          Mutex.lock lane.lm;
          Condition.signal lane.ready;
          Mutex.unlock lane.lm
        end)
      t.lanes;
    List.iter Domain.join domains
  end

(* Hardware-aware sizing: a worker domain beyond the machine's
   available parallelism can never speed a batch up — it can only
   timeshare a core the other lanes already saturate — yet its mere
   existence taxes every stop-the-world minor collection, which must
   synchronise with all live domains (even ones parked in
   [Condition.wait], via their backup threads; on an oversubscribed
   single-core host that synchronisation rides the OS scheduler and
   was measured to double an 8-item batch, DESIGN §13).  So by
   default [create] spawns at most [recommended_domain_count () - 1]
   workers — possibly zero, leaving the stealing caller as the only
   lane — and the requested surplus simply never exists.  [~eager]
   spawns the full request regardless, for supervision tests and
   deliberate oversubscription. *)
let create ?(eager = false) workers =
  if workers <= 0 then invalid_arg "Pool.create: need at least one worker";
  let workers =
    if eager then workers
    else min workers (max 0 (Domain.recommended_domain_count () - 1))
  in
  let t =
    {
      m = Mutex.create ();
      work_done = Condition.create ();
      lanes = Array.init (workers + 1) (fun _ -> new_lane ());
      completed = Atomic.make 0;
      job = None;
      total = 0;
      failure = None;
      generation = 0;
      posted_ns = 0L;
      shutdown = false;
      domains = [];
      steals = Atomic.make 0;
      workers;
      stream = Atomic.make None;
    }
  in
  t.domains <- List.init workers (fun slot -> Domain.spawn (supervise t ~slot));
  (* Idle workers block on their lane condition; make sure process exit
     does not hang waiting for them. *)
  at_exit (fun () -> shutdown t);
  t

let workers t = t.workers

type stats = {
  lanes : int;
  busy_lanes : int;
  job_active : bool;
  queue_depths : int list;
  steals : int;
}

let stats t =
  Mutex.lock t.m;
  let busy = ref 0 in
  Array.iter (fun l -> if l.cur >= 0 then incr busy) t.lanes;
  let s =
    {
      lanes = t.workers + 1;
      busy_lanes = !busy;
      job_active = t.job <> None;
      queue_depths = Array.to_list (Array.map (fun l -> Atomic.get l.queued) t.lanes);
      steals = Atomic.get t.steals;
    }
  in
  Mutex.unlock t.m;
  s

(* Deal [0..n-1] into contiguous chunks round-robin across the first
   [lanes_cap] lanes in deal order (main lane first, so the caller's
   first claim is always local). *)
let distribute (t : t) n chunk ~lanes_cap =
  let lanes = Array.length t.lanes in
  let use = min lanes (max 1 lanes_cap) in
  let order = Array.init use (fun k -> (t.workers + k) mod lanes) in
  let got = Array.make lanes false in
  let l = ref 0 in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + chunk) in
    let lane = t.lanes.(order.(!l)) in
    Mutex.lock lane.lm;
    push_back lane (!lo, hi);
    Mutex.unlock lane.lm;
    got.(order.(!l)) <- true;
    l := (!l + 1) mod use;
    lo := hi
  done;
  got

(* Batch-size-aware submit layout.  By default a submit engages only
   ⌈n / max_chunk⌉ lanes — waking a domain costs a condvar signal, an
   OS reschedule and a per-domain share of every stop-the-world minor
   GC (DESIGN §13), which is a bad trade for less than a chunk's worth
   of work — and sizes chunks to spread [n] evenly over exactly those
   lanes.  Large batches degenerate to the old layout (every lane, 16
   a chunk); small ones stay on the caller's lane and wake nobody.
   Stealing still rebalances inside the engaged set if the items turn
   out to be skewed.  An explicit [?chunk] override keeps the
   every-lane deal so tests and benchmarks can force queue traffic. *)
let job_layout (t : t) n chunk =
  let lanes = Array.length t.lanes in
  match chunk with
  | Some c -> (max 1 c, lanes)
  | None ->
    let cap = min lanes (max 1 ((n + max_chunk - 1) / max_chunk)) in
    (max 1 (min max_chunk ((n + cap - 1) / cap)), cap)

(* Post a job's bookkeeping (under [t.m]) and deal its chunks; shared
   by [run] and [submit_stream].  Exactly one job may be in flight:
   posting while another job (streaming or not) is active is a
   caller bug, reported rather than deadlocked on. *)
let post ~api (t : t) f n chunk stream =
  Mutex.lock t.m;
  if t.shutdown then begin
    Mutex.unlock t.m;
    invalid_arg (api ^ ": pool is shut down")
  end;
  if t.job <> None then begin
    Mutex.unlock t.m;
    invalid_arg (api ^ ": a job is already in flight (drain or discard it first)")
  end;
  t.job <- Some f;
  t.total <- n;
  Atomic.set t.completed 0;
  t.failure <- None;
  t.generation <- t.generation + 1;
  t.posted_ns <- now_ns ();
  Atomic.set t.stream stream;
  Mutex.unlock t.m;
  let chunk, lanes_cap = job_layout t n chunk in
  let got = distribute t n chunk ~lanes_cap in
  (* Targeted wakeups: only the worker lanes that actually received a
     chunk are signalled; everyone else keeps sleeping. *)
  Array.iteri
    (fun slot lane ->
      if slot < t.workers && got.(slot) then Condition.signal lane.ready)
    t.lanes

let run ?chunk (t : t) f n =
  if n > 0 then begin
    post ~api:"Pool.run" t f n chunk None;
    (* The caller is a lane too: drain its own queue, then steal.  It
       also mops up orphans left by dead workers (requeued onto its
       queue), so completion never depends on a respawn racing in. *)
    let main = t.lanes.(t.workers) in
    let driving = ref true in
    while !driving do
      match get_work t main with
      | Some chunk -> run_chunk t f main ~is_worker:false chunk
      | None ->
        if Atomic.get t.completed >= t.total then driving := false
        else begin
          Mutex.lock t.m;
          while
            Atomic.get t.completed < t.total && Atomic.get main.queued = 0
          do
            Condition.wait t.work_done t.m
          done;
          Mutex.unlock t.m;
          if Atomic.get t.completed >= t.total then driving := false
          (* else: an orphan landed on our queue — go claim it. *)
        end
    done;
    (* Leave no job state behind even when re-raising, so the pool is
       immediately reusable after a failed run. *)
    Mutex.lock t.m;
    t.job <- None;
    let fail = t.failure in
    t.failure <- None;
    Mutex.unlock t.m;
    match fail with Some e -> raise e | None -> ()
  end

(* ------------------------------------------------------- streaming *)

type 'a ticket = {
  pool : t;
  results : ('a, exn) result option array;  (* slot [i] written by item [i] only *)
  tn : int;
  st : stream_state;
  mutable delivered : int;
  mutable closed : bool;  (* job state torn down (drained or discarded) *)
}

(* Clear the pool's job state once no lane can touch it again — the
   caller has either popped all [tn] completions or waited out the
   in-flight stragglers. *)
let release tk =
  let t = tk.pool in
  tk.closed <- true;
  Mutex.lock t.m;
  t.job <- None;
  Atomic.set t.stream None;
  t.failure <- None;
  Mutex.unlock t.m

let submit_stream ?chunk (t : t) f n =
  let st =
    { cm = Mutex.create (); cready = Condition.create (); completions = Queue.create () }
  in
  let results = Array.make (max n 0) None in
  (* The posted job computes and slots the result; ordinary exceptions
     become the item's [Error] (delivered, then re-raised, by
     [next_result]) rather than the job's failure, so one bad item
     cannot poison the rest of the grid mid-flight.  [Worker_killed]
     must keep escaping for the supervision machinery to retry the
     item. *)
  let g i =
    match f i with
    | v -> results.(i) <- Some (Ok v)
    | exception Worker_killed -> raise Worker_killed
    | exception e -> results.(i) <- Some (Error e)
  in
  if n > 0 then post ~api:"Pool.submit_stream" t g n chunk (Some st);
  { pool = t; results; tn = max n 0; st; delivered = 0; closed = n <= 0 }

(* Abort: drop every still-queued chunk (counting the dropped items as
   completed), then wait out the in-flight ones — each signals [cready]
   as it lands.  Undelivered results are discarded; the pool is ready
   for the next job on return.  Idempotent, and a no-op after the
   ticket drained naturally. *)
let discard tk =
  if not tk.closed then begin
    let t = tk.pool in
    let st = tk.st in
    Array.iter
      (fun lane ->
        Mutex.lock lane.lm;
        let dropped = ref 0 in
        let draining = ref true in
        while !draining do
          match pop lane with
          | Some (lo, hi) -> dropped := !dropped + (hi - lo)
          | None -> draining := false
        done;
        Mutex.unlock lane.lm;
        if !dropped > 0 then ignore (Atomic.fetch_and_add t.completed !dropped))
      t.lanes;
    Mutex.lock st.cm;
    while Atomic.get t.completed < t.total do
      Condition.wait st.cready st.cm
    done;
    Mutex.unlock st.cm;
    release tk
  end

let next_result (tk : 'a ticket) : (int * 'a) option =
  if tk.closed || tk.delivered >= tk.tn then None
  else begin
    let t = tk.pool in
    let st = tk.st in
    let main = t.lanes.(t.workers) in
    let rec deliver () =
      Mutex.lock st.cm;
      let popped =
        if Queue.is_empty st.completions then None else Some (Queue.pop st.completions)
      in
      Mutex.unlock st.cm;
      match popped with
      | Some i -> (
        tk.delivered <- tk.delivered + 1;
        (* Last delivery: every completion was pushed after its
           counter increment, so popping the [tn]-th proves all lanes
           are done with this job — safe to free the pool. *)
        if tk.delivered >= tk.tn then release tk;
        match tk.results.(i) with
        | Some (Ok v) -> Some (i, v)
        | Some (Error e) ->
          (* A failed item ends the stream: drop the rest of the grid
             so the pool is reusable, then surface the error exactly
             like [run] would. *)
          discard tk;
          raise e
        | None -> assert false)
      | None -> (
        (* Nothing completed yet — be a lane rather than a bystander.
           Claim like [run], but execute a single item and push the
           chunk remainder back (still stealable), so results flow to
           the consumer at item granularity even when the main lane is
           the only lane. *)
        match get_work t main with
        | Some (lo, hi) ->
          if hi > lo + 1 then begin
            Mutex.lock main.lm;
            push_front main (lo + 1, hi);
            Mutex.unlock main.lm
          end;
          (match t.job with
          | Some g -> run_chunk t g main ~is_worker:false (lo, lo + 1)
          | None -> ());
          deliver ()
        | None ->
          (* Everything is in flight on other lanes: sleep until a
             completion lands or an orphan is requeued onto the main
             lane (both signal [cready]). *)
          Mutex.lock st.cm;
          while Queue.is_empty st.completions && Atomic.get main.queued = 0 do
            Condition.wait st.cready st.cm
          done;
          Mutex.unlock st.cm;
          deliver ())
    in
    deliver ()
  end

let drain tk =
  let rec go () = match next_result tk with Some _ -> go () | None -> () in
  go ();
  if tk.delivered < tk.tn then
    invalid_arg "Pool.drain: ticket was discarded before completion";
  Array.init tk.tn (fun i ->
      match tk.results.(i) with
      | Some (Ok v) -> v
      | Some (Error _) | None -> assert false)
