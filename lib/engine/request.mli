(** The evaluation engine's unit of work.

    A request names a die, a standard, a 64-bit configuration word, a
    stimulus power and a metric; evaluating it is a pure function (all
    process draws and noise streams derive from the die's immutable
    fingerprint), which is what makes results cacheable and the
    parallel backend bit-deterministic. *)

type die
(** A device under evaluation: a chip plus optional fault-injection
    hooks, with a canonical identity when one exists. *)

type metric =
  | Snr_mod               (** modulator-output SNR (Fig. 7) — 1 trial *)
  | Snr_mod_verified      (** linearity-verified SNR — 2 or 3 trials *)
  | Snr_rx of { n_fft : int }  (** receiver-output SNR (Fig. 9) — 1 trial *)
  | Snr_rx_at_power of { n_fft : int; p_dbm : float; gain_code : int }
      (** Fig. 11 sweep point — 1 trial *)
  | Sfdr                  (** two-tone SFDR (Fig. 12) — 1 trial *)
  | Full                  (** SNR at both taps + SFDR — 3 trials *)
  | Full_verified         (** the oracle's [try_key] bundle — 4 or 5 trials *)

type t = {
  die : die;
  standard : Rfchain.Standards.t;
  config : Rfchain.Config.t;
  p_dbm : float;
  metric : metric;
}

val default_p_dbm : float
(** -25 dBm, the paper's single-tone stimulus (matches the
    [Metrics.Measure.create] default). *)

val die_of_chip : Circuit.Process.chip -> die

val die_of_seed : ?lot_sigma_scale:float -> int -> die
(** Fabricate-and-wrap: the common "fresh die from a seed" case. *)

val faulted_die :
  ?fabric:(Rfchain.Config.t -> Rfchain.Config.t) ->
  ?rf_fault:(float array -> float array) ->
  ?tag:string ->
  Circuit.Process.chip ->
  die
(** A die with injection hooks.  Hooks are opaque closures, so the die
    only gets a cacheable identity when the caller supplies a canonical
    [tag] describing them; untagged faulted dies bypass the cache. *)

val die_of_receiver : ?tag:string -> Rfchain.Receiver.t -> die
(** Recover a die from an already-built receiver (chip + hooks). *)

val receiver : die -> Rfchain.Standards.t -> Rfchain.Receiver.t
(** Build the receiver a request evaluates — the single copy of the
    "receiver from config + chip" construction pattern. *)

val make :
  ?p_dbm:float -> die:die -> standard:Rfchain.Standards.t ->
  config:Rfchain.Config.t -> metric -> t

val cache_key : t -> string option
(** Content address: die fingerprint | standard | canonical config bits
    | stimulus power | metric.  [None] for uncacheable requests. *)

val metric_tag : metric -> string
