(* Crash-safe evaluation journal.

   An append-only JSONL file, one line per completed evaluation,
   content-keyed by the request's cache key.  Every record is flushed
   and fsync'd before [record] returns, so the journal is exactly the
   set of evaluations that completed — a resumed campaign replays those
   cells (value and trial cost, bit-identical: floats are stored as
   exact hexadecimal literals) and computes only what is missing.

   Crash tolerance: a process killed mid-write leaves at most one torn
   final line; [load ~resume:true] drops it (and truncates the file
   back to the last good record) and counts [engine.checkpoint.torn].
   A malformed line anywhere *before* the end is not a crash artefact
   and is reported as corruption instead of being silently skipped.

   The journal is shared by every evaluation lane: [record] and [find]
   are mutex-protected, so pool worker domains journal their own
   completions directly (which is what makes a SIGINT mid-batch lose
   nothing that finished). *)

type corruption = {
  path : string;
  line : int;
  reason : string;
}

type t = {
  path : string;
  table : (string, Cache.value) Hashtbl.t;
  m : Mutex.t;
  mutable oc : out_channel option;
}

let version = 1

let hits_counter = Telemetry.Counter.make "engine.checkpoint.hits"
let records_counter = Telemetry.Counter.make "engine.checkpoint.records"
let resumed_counter = Telemetry.Counter.make "engine.checkpoint.resumed"
let torn_counter = Telemetry.Counter.make "engine.checkpoint.torn"
let mismatch_counter = Telemetry.Counter.make "engine.checkpoint.provenance_mismatch"

(* ------------------------------------------------------- serialisation *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The header carries the engine's content hash (optional field — v1
   journals without it still load).  A resume under a different binary
   is not an error: values are content-keyed, so at worst the new code
   recomputes what no longer matches — but it *is* worth a warning and
   a counter, because "resumed under different code" explains most
   surprising resume diffs. *)
let header_line () =
  Printf.sprintf {|{"type":"journal","version":%d,"engine":"%s"}|} version
    (escape (Telemetry.Manifest.engine_hash ()))

(* Floats as OCaml hexadecimal literals ("%h"): exact round-trip
   through [float_of_string] for every finite value and the infinities,
   which is what makes a resumed report byte-identical to an
   uninterrupted one.  "%h" collapses nan payloads, though ("nan" reads
   back with a different sign/payload than the 0/0 default), so nans
   are journalled as their raw bit pattern instead. *)
let float_repr x =
  if Float.is_nan x then Printf.sprintf "bits:%016Lx" (Int64.bits_of_float x)
  else Printf.sprintf "%h" x

let float_of_repr s =
  if String.length s >= 5 && String.sub s 0 5 = "bits:" then
    Int64.float_of_bits (Int64.of_string ("0x" ^ String.sub s 5 (String.length s - 5)))
  else float_of_string s

let entry_line key (v : Cache.value) =
  let m = v.Cache.measurement in
  Printf.sprintf {|{"type":"cell","key":"%s","snr_mod":"%s","snr_rx":"%s","sfdr":%s,"cost":%d}|}
    (escape key)
    (float_repr m.Metrics.Spec.snr_mod_db)
    (float_repr m.Metrics.Spec.snr_rx_db)
    (match m.Metrics.Spec.sfdr_db with
    | None -> "null"
    | Some x -> Printf.sprintf {|"%s"|} (float_repr x))
    v.Cache.trial_cost

(* ------------------------------------------------------------- parsing *)

(* Minimal parser for the journal's own flat-object lines: string, null
   and integer values only.  Anything else is a parse failure — the
   journal never emits it. *)

type jv = S of string | I of int | Null

exception Bad of string

let parse_fields line =
  let n = String.length line in
  let i = ref 0 in
  let skip_ws () =
    while !i < n && (line.[!i] = ' ' || line.[!i] = '\t' || line.[!i] = '\r') do incr i done
  in
  let expect c =
    skip_ws ();
    if !i < n && line.[!i] = c then incr i
    else raise (Bad (Printf.sprintf "expected '%c' at byte %d" c !i))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec go () =
      if !i >= n then raise (Bad "unterminated string");
      let c = line.[!i] in
      incr i;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !i >= n then raise (Bad "truncated escape");
        let e = line.[!i] in
        incr i;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !i + 4 > n then raise (Bad "truncated \\u escape");
          let code =
            try int_of_string ("0x" ^ String.sub line !i 4)
            with _ -> raise (Bad "bad \\u escape")
          in
          i := !i + 4;
          Buffer.add_char buf (Char.chr (code land 0xff))
        | _ -> raise (Bad "unknown escape"));
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_value () =
    skip_ws ();
    if !i >= n then raise (Bad "missing value")
    else if line.[!i] = '"' then S (parse_string ())
    else if !i + 4 <= n && String.sub line !i 4 = "null" then begin
      i := !i + 4;
      Null
    end
    else begin
      let start = !i in
      if !i < n && line.[!i] = '-' then incr i;
      while !i < n && line.[!i] >= '0' && line.[!i] <= '9' do incr i done;
      if !i = start then raise (Bad "unrecognised value");
      I (int_of_string (String.sub line start (!i - start)))
    end
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if !i < n && line.[!i] = '}' then incr i
  else begin
    let parsing = ref true in
    while !parsing do
      let k = parse_string () in
      expect ':';
      let v = parse_value () in
      fields := (k, v) :: !fields;
      skip_ws ();
      if !i < n && line.[!i] = ',' then incr i
      else begin
        expect '}';
        parsing := false
      end
    done
  end;
  skip_ws ();
  if !i <> n then raise (Bad "trailing bytes after object");
  List.rev !fields

let field fields name =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing field %S" name))

let float_of_jv name = function
  | S s -> (try float_of_repr s with _ -> raise (Bad (Printf.sprintf "bad float in %S" name)))
  | _ -> raise (Bad (Printf.sprintf "field %S must be a float string" name))

let parse_entry line =
  let fields = parse_fields line in
  match field fields "type" with
  | S "cell" ->
    let key =
      match field fields "key" with
      | S k -> k
      | _ -> raise (Bad "field \"key\" must be a string")
    in
    let snr_mod_db = float_of_jv "snr_mod" (field fields "snr_mod") in
    let snr_rx_db = float_of_jv "snr_rx" (field fields "snr_rx") in
    let sfdr_db =
      match field fields "sfdr" with
      | Null -> None
      | v -> Some (float_of_jv "sfdr" v)
    in
    let trial_cost =
      match field fields "cost" with
      | I c when c >= 0 -> c
      | _ -> raise (Bad "field \"cost\" must be a non-negative integer")
    in
    ( key,
      { Cache.measurement = { Metrics.Spec.snr_mod_db; snr_rx_db; sfdr_db }; trial_cost } )
  | S other -> raise (Bad (Printf.sprintf "unknown record type %S" other))
  | _ -> raise (Bad "field \"type\" must be a string")

(* Returns the recorded engine hash when the header carries one. *)
let parse_header line =
  let fields = parse_fields line in
  (match field fields "type" with
  | S "journal" -> ()
  | _ -> raise (Bad "not a journal header"));
  (match field fields "version" with
  | I v when v = version -> ()
  | I v -> raise (Bad (Printf.sprintf "unsupported journal version %d" v))
  | _ -> raise (Bad "field \"version\" must be an integer"));
  match List.assoc_opt "engine" fields with Some (S h) -> Some h | _ -> None

let verify_provenance path = function
  | None -> ()  (* journal predates provenance headers *)
  | Some recorded ->
    let current = Telemetry.Manifest.engine_hash () in
    if recorded <> current && recorded <> "unknown" && current <> "unknown" then begin
      Telemetry.Counter.incr mismatch_counter;
      Telemetry.Log.warn
        ~fields:[ ("path", path); ("recorded", recorded); ("current", current) ]
        "checkpoint: journal was written by a different engine build"
    end

(* --------------------------------------------------------- open / load *)

let fresh_channel path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  output_string oc (header_line ());
  output_char oc '\n';
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  oc

(* Split raw journal bytes into complete lines plus the end offset of
   the last *parseable* prefix, so a torn tail can be truncated away
   before appending resumes. *)
let load ~resume path =
  let table = Hashtbl.create 256 in
  let fresh () =
    Ok { path; table; m = Mutex.create (); oc = Some (fresh_channel path) }
  in
  if not resume then fresh ()
  else if not (Sys.file_exists path) then fresh ()
  else begin
    let raw = In_channel.with_open_bin path In_channel.input_all in
    if String.length raw = 0 then fresh ()
    else begin
      (* Lines with their end offsets (offset just past the '\n'); a
         trailing fragment without '\n' is kept as a final, torn-marked
         line. *)
      let lines = ref [] in
      let start = ref 0 in
      String.iteri (fun i c -> if c = '\n' then begin
          lines := (String.sub raw !start (i - !start), i + 1, true) :: !lines;
          start := i + 1
        end) raw;
      if !start < String.length raw then
        lines := (String.sub raw !start (String.length raw - !start), String.length raw, false)
                 :: !lines;
      let lines = Array.of_list (List.rev !lines) in
      let n_lines = Array.length lines in
      let good_end = ref 0 in
      let result = ref None in
      (try
         Array.iteri
           (fun idx (line, end_off, terminated) ->
             let last = idx = n_lines - 1 in
             if not terminated then begin
               (* No trailing newline: the write was cut mid-line.  Even
                  if the bytes happen to parse, the record never became
                  durable — drop it so the table matches what stays on
                  disk after truncation. *)
               ignore end_off;
               Telemetry.Counter.incr torn_counter;
               raise Exit
             end;
             try
               if idx = 0 then verify_provenance path (parse_header line)
               else begin
                 let key, value = parse_entry line in
                 if not (Hashtbl.mem table key) then begin
                   Hashtbl.replace table key value;
                   Telemetry.Counter.incr resumed_counter
                 end
               end;
               good_end := end_off
             with Bad reason ->
               if last && idx > 0 then begin
                 (* Torn final write from a crash that still got its
                    newline out: drop it.  The header never qualifies —
                    it is fsync'd before any record is accepted, so a
                    malformed line 1 is corruption, not a crash. *)
                 Telemetry.Counter.incr torn_counter;
                 raise Exit
               end
               else begin
                 result := Some { path; line = idx + 1; reason };
                 raise Exit
               end)
           lines
       with Exit -> ());
      match !result with
      | Some corruption -> Error corruption
      | None ->
        (* Truncate back to the last fully-terminated good line, then
           reopen for append. *)
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Unix.ftruncate fd !good_end;
        Unix.close fd;
        let oc =
          if !good_end = 0 then fresh_channel path
          else open_out_gen [ Open_wronly; Open_append ] 0o644 path
        in
        Ok { path; table; m = Mutex.create (); oc = Some oc }
    end
  end

(* ------------------------------------------------------------ journal *)

let find t key =
  Mutex.lock t.m;
  let r = Hashtbl.find_opt t.table key in
  Mutex.unlock t.m;
  if r <> None then Telemetry.Counter.incr hits_counter;
  r

let record t key value =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        Hashtbl.replace t.table key value;
        match t.oc with
        | None -> ()
        | Some oc ->
          output_string oc (entry_line key value);
          output_char oc '\n';
          flush oc;
          Unix.fsync (Unix.descr_of_out_channel oc);
          Telemetry.Counter.incr records_counter
      end)

let entries t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.m;
  n

let path t = t.path

let close t =
  Mutex.lock t.m;
  (match t.oc with
  | None -> ()
  | Some oc ->
    flush oc;
    (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
    close_out oc;
    t.oc <- None);
  Mutex.unlock t.m

let corruption_to_string { path; line; reason } =
  Printf.sprintf "checkpoint %s corrupt at line %d: %s" path line reason
