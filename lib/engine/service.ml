type backend =
  | Seq
  | Domains of Pool.t

type t = {
  cache : Cache.t option;
  backend : backend;
  jobs : int;
}

let default_cache_capacity = 4096

let create ?(jobs = 1) ?(cache = true) ?(cache_capacity = default_cache_capacity) () =
  if jobs <= 0 then invalid_arg "Service.create: jobs must be positive";
  let backend = if jobs = 1 then Seq else Domains (Pool.create (jobs - 1)) in
  { cache = (if cache then Some (Cache.create ~capacity:cache_capacity) else None); backend; jobs }

let jobs t = t.jobs
let cache_enabled t = t.cache <> None

let shutdown t = match t.backend with Seq -> () | Domains pool -> Pool.shutdown pool

(* Process-global default engine, configured once by the CLI from
   --jobs / --no-cache and used implicitly by every call site that does
   not pass ?engine. *)
let default_engine : t option ref = ref None

let configure ?jobs ?cache ?cache_capacity () =
  Option.iter shutdown !default_engine;
  default_engine := Some (create ?jobs ?cache ?cache_capacity ())

let default () =
  match !default_engine with
  | Some t -> t
  | None ->
    let t = create () in
    default_engine := Some t;
    t

let resolve = function Some t -> t | None -> default ()

let eval_counter = Telemetry.Counter.make "engine.evals"
let batch_counter = Telemetry.Counter.make "engine.batches"
let denied_counter = Telemetry.Counter.make "engine.denied"

(* Same registered counter as Metrics.Measure's odometer (Counter.make
   is idempotent by name): cache hits replay their trial cost here so
   the global accounting is independent of cache warmth. *)
let trials_counter = Telemetry.Counter.make "measure.trials"

(* The cache and the pool are main-domain structures; an eval issued
   from a worker domain (e.g. a calibration nested inside a
   parallelised study) falls back to inline sequential compute. *)
let main_domain = Domain.self ()
let on_main () = Domain.self () = main_domain

(* The actual simulate-and-measure, a pure function of the request.  A
   fresh bench per request keeps the per-request trial cost observable
   without racing on global counters; unrequested fields come back as
   nan / None. *)
let compute (req : Request.t) : Cache.value =
  Telemetry.Counter.incr eval_counter;
  let rx = Request.receiver req.die req.standard in
  let bench = Metrics.Measure.create ~p_dbm:req.p_dbm rx in
  let blank = { Metrics.Spec.snr_mod_db = nan; snr_rx_db = nan; sfdr_db = None } in
  let measurement =
    match req.metric with
    | Request.Snr_mod -> { blank with snr_mod_db = Metrics.Measure.snr_mod_db bench req.config }
    | Request.Snr_mod_verified ->
      { blank with snr_mod_db = Metrics.Measure.snr_mod_verified_db bench req.config }
    | Request.Snr_rx { n_fft } ->
      { blank with snr_rx_db = Metrics.Measure.snr_rx_db ~n_fft bench req.config }
    | Request.Snr_rx_at_power { n_fft; p_dbm; gain_code } ->
      { blank with
        snr_rx_db = Metrics.Measure.snr_rx_at_power_db ~n_fft bench req.config ~p_dbm ~gain_code
      }
    | Request.Sfdr -> { blank with sfdr_db = Some (Metrics.Measure.sfdr_db bench req.config) }
    | Request.Full -> Metrics.Measure.full bench req.config
    | Request.Full_verified ->
      (* The oracle's try_key bundle: linearity-verified modulator SNR
         so an injection-locked tank cannot fool the check, then both
         remaining specified performances. *)
      {
        Metrics.Spec.snr_mod_db = Metrics.Measure.snr_mod_verified_db bench req.config;
        snr_rx_db = Metrics.Measure.snr_rx_db bench req.config;
        sfdr_db = Some (Metrics.Measure.sfdr_db bench req.config);
      }
  in
  { Cache.measurement; trial_cost = Metrics.Measure.trial_count bench }

module Account = struct
  type t = {
    mutable spent : int;
    limit : int option;
  }

  let make ?limit () = { spent = 0; limit }
  let spent a = a.spent
  let limit a = a.limit
  let charge a n = a.spent <- a.spent + n
  let exhausted a = match a.limit with Some l -> a.spent >= l | None -> false
end

type denial = Budget_exhausted of { spent : int; limit : int }

let eval_value t (req : Request.t) : Cache.value =
  if not (on_main ()) then compute req
  else
    match t.cache, Request.cache_key req with
    | Some cache, Some key -> (
      match Cache.find cache key with
      | Some value ->
        (* Hit: no simulator step ran; replay the trial cost so the
           odometer matches a cold run exactly. *)
        Telemetry.Counter.add trials_counter value.Cache.trial_cost;
        value
      | None ->
        let value = compute req in
        Cache.add cache key value;
        value)
    | _ -> compute req

let charge account (value : Cache.value) =
  Option.iter (fun a -> Account.charge a value.Cache.trial_cost) account

let eval ?engine ?account req =
  let value = eval_value (resolve engine) req in
  charge account value;
  value.Cache.measurement

let eval_guarded ?engine ~account req =
  if Account.exhausted account then begin
    Telemetry.Counter.incr denied_counter;
    let limit = Option.value (Account.limit account) ~default:0 in
    Error (Budget_exhausted { spent = Account.spent account; limit })
  end
  else begin
    let value = eval_value (resolve engine) req in
    Account.charge account value.Cache.trial_cost;
    Ok (value.Cache.measurement, value.Cache.trial_cost)
  end

let eval_batch ?engine ?account reqs =
  let t = resolve engine in
  Telemetry.Counter.incr batch_counter;
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  if n = 0 then []
  else if not (on_main ()) then
    List.map
      (fun req ->
        let value = compute req in
        charge account value;
        value.Cache.measurement)
      reqs
  else begin
    let results : Cache.value option array = Array.make n None in
    let keys = Array.map Request.cache_key arr in
    (* Cache pass in request order (deterministic LRU traffic). *)
    (match t.cache with
    | None -> ()
    | Some cache ->
      Array.iteri
        (fun i key ->
          match key with
          | None -> ()
          | Some key -> (
            match Cache.find cache key with
            | Some value ->
              Telemetry.Counter.add trials_counter value.Cache.trial_cost;
              results.(i) <- Some value
            | None -> ()))
        keys);
    let misses =
      Array.of_list
        (List.filter (fun i -> results.(i) = None) (List.init n (fun i -> i)))
    in
    let run_one j =
      let i = misses.(j) in
      results.(i) <- Some (compute arr.(i))
    in
    (match t.backend with
    | Seq -> Array.iteri (fun j _ -> run_one j) misses
    | Domains pool -> Pool.run pool run_one (Array.length misses));
    (* Store pass in request order, after the barrier: cache state is a
       pure function of the request sequence, never of claim order. *)
    (match t.cache with
    | None -> ()
    | Some cache ->
      Array.iter
        (fun i ->
          match keys.(i), results.(i) with
          | Some key, Some value -> Cache.add cache key value
          | _ -> ())
        misses);
    Array.to_list
      (Array.map
         (fun r ->
           let value = Option.get r in
           charge account value;
           value.Cache.measurement)
         results)
  end
