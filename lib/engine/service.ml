type backend =
  | Seq
  | Domains of Pool.t

type t = {
  cache : Cache.t option;
  backend : backend;
  jobs : int;
  checkpoint : Checkpoint.t option;
  deadline : Telemetry.Cancel.t option;
  (* Main-domain re-entrancy latch: true while a streaming job owns
     the pool.  Work running *inside* the stream (a calibration nested
     in a parallelised study, say) that calls back into this engine
     must not try to post a second pool job — with the latch up,
     nested batches and streams compute inline instead.  Only the main
     domain reads or writes it. *)
  mutable streaming : bool;
}

let default_cache_capacity = 4096

let create ?(jobs = 1) ?(cache = true) ?(cache_capacity = default_cache_capacity) ?checkpoint
    ?deadline_s () =
  if jobs <= 0 then invalid_arg "Service.create: jobs must be positive";
  let backend = if jobs = 1 then Seq else Domains (Pool.create (jobs - 1)) in
  {
    cache = (if cache then Some (Cache.create ~capacity:cache_capacity) else None);
    backend;
    jobs;
    checkpoint;
    deadline = Option.map (fun s -> Telemetry.Cancel.with_deadline s) deadline_s;
    streaming = false;
  }

let jobs t = t.jobs
let cache_enabled t = t.cache <> None
let checkpoint t = t.checkpoint

let shutdown t = match t.backend with Seq -> () | Domains pool -> Pool.shutdown pool

(* Process-global default engine, configured once by the CLI from
   --jobs / --no-cache / --checkpoint / --deadline and used implicitly
   by every call site that does not pass ?engine. *)
let default_engine : t option ref = ref None

let configure ?jobs ?cache ?cache_capacity ?checkpoint ?deadline_s () =
  Option.iter shutdown !default_engine;
  let t = create ?jobs ?cache ?cache_capacity ?checkpoint ?deadline_s () in
  default_engine := Some t;
  Telemetry.Log.info
    ~fields:
      [
        ("jobs", string_of_int t.jobs);
        ("cache", string_of_bool (t.cache <> None));
        ("checkpoint", match t.checkpoint with Some cp -> Checkpoint.path cp | None -> "-");
        ("deadline_s", match deadline_s with Some d -> Printf.sprintf "%g" d | None -> "-");
      ]
    "engine: configured"

let default () =
  match !default_engine with
  | Some t -> t
  | None ->
    let t = create () in
    default_engine := Some t;
    t

let resolve = function Some t -> t | None -> default ()

(* Live-monitor provider: expose the default engine's cache occupancy,
   pool lane state, checkpoint size and deadline remaining as gauges on
   every scrape/heartbeat.  Reads are monitoring-grade: Pool.stats takes
   the pool mutex, the rest are racy-but-atomic field reads. *)
let monitor_gauges () =
  match !default_engine with
  | None -> []
  | Some t ->
    let cache_g =
      match t.cache with
      | None -> []
      | Some c ->
        [
          ("engine_cache_entries", float_of_int (Cache.length c));
          ("engine_cache_entries_peak", float_of_int (Cache.peak c));
          ("engine_cache_capacity", float_of_int (Cache.capacity c));
        ]
    in
    let pool_g =
      match t.backend with
      | Seq -> [ ("pool_lanes", 1.0); ("pool_lanes_busy", 0.0) ]
      | Domains p ->
        let s = Pool.stats p in
        [
          ("pool_lanes", float_of_int s.Pool.lanes);
          ("pool_lanes_busy", float_of_int s.Pool.busy_lanes);
          ("pool_steals", float_of_int s.Pool.steals);
        ]
        @ List.mapi
            (fun i d -> (Printf.sprintf "pool_queue_depth_lane%d" i, float_of_int d))
            s.Pool.queue_depths
    in
    let deadline_g =
      match t.deadline with
      | None -> []
      | Some tok -> (
        match Telemetry.Cancel.remaining_s tok with
        | Some r -> [ ("engine_deadline_remaining_seconds", r) ]
        | None -> [])
    in
    let cp_g =
      match t.checkpoint with
      | None -> []
      | Some cp -> [ ("engine_checkpoint_entries", float_of_int (Checkpoint.entries cp)) ]
    in
    (("engine_jobs", float_of_int t.jobs) :: cache_g) @ pool_g @ deadline_g @ cp_g

let () = Telemetry.Monitor.register "engine" monitor_gauges

let eval_counter = Telemetry.Counter.make "engine.evals"
let batch_counter = Telemetry.Counter.make "engine.batches"
let stream_counter = Telemetry.Counter.make "engine.streams"
let denied_counter = Telemetry.Counter.make "engine.denied"
let deadline_counter = Telemetry.Counter.make "engine.deadline.hit"

(* Same registered counter as Metrics.Measure's odometer (Counter.make
   is idempotent by name): cache hits replay their trial cost here so
   the global accounting is independent of cache warmth. *)
let trials_counter = Telemetry.Counter.make "measure.trials"

(* The cache and the pool are main-domain structures; an eval issued
   from a worker domain (e.g. a calibration nested inside a
   parallelised study) falls back to inline sequential compute (plus
   the checkpoint, which is mutex-protected and domain-safe). *)
let main_domain = Domain.self ()
let on_main () = Domain.self () = main_domain

(* The actual simulate-and-measure, a pure function of the request.  A
   fresh bench per request keeps the per-request trial cost observable
   without racing on global counters; unrequested fields come back as
   nan / None. *)
let compute (req : Request.t) : Cache.value =
  Telemetry.Counter.incr eval_counter;
  let rx = Request.receiver req.die req.standard in
  let bench = Metrics.Measure.create ~p_dbm:req.p_dbm rx in
  let blank = { Metrics.Spec.snr_mod_db = nan; snr_rx_db = nan; sfdr_db = None } in
  let measurement =
    match req.metric with
    | Request.Snr_mod -> { blank with snr_mod_db = Metrics.Measure.snr_mod_db bench req.config }
    | Request.Snr_mod_verified ->
      { blank with snr_mod_db = Metrics.Measure.snr_mod_verified_db bench req.config }
    | Request.Snr_rx { n_fft } ->
      { blank with snr_rx_db = Metrics.Measure.snr_rx_db ~n_fft bench req.config }
    | Request.Snr_rx_at_power { n_fft; p_dbm; gain_code } ->
      { blank with
        snr_rx_db = Metrics.Measure.snr_rx_at_power_db ~n_fft bench req.config ~p_dbm ~gain_code
      }
    | Request.Sfdr -> { blank with sfdr_db = Some (Metrics.Measure.sfdr_db bench req.config) }
    | Request.Full -> Metrics.Measure.full bench req.config
    | Request.Full_verified ->
      (* The oracle's try_key bundle: linearity-verified modulator SNR
         so an injection-locked tank cannot fool the check, then both
         remaining specified performances. *)
      {
        Metrics.Spec.snr_mod_db = Metrics.Measure.snr_mod_verified_db bench req.config;
        snr_rx_db = Metrics.Measure.snr_rx_db bench req.config;
        sfdr_db = Some (Metrics.Measure.sfdr_db bench req.config);
      }
  in
  { Cache.measurement; trial_cost = Metrics.Measure.trial_count bench }

(* Run the simulator under an explicit cancellation token (a per-call
   or engine-wide deadline); with no token, whatever ambient token the
   caller installed still applies through the DLS. *)
let compute_tok ~token req =
  match token with
  | None -> compute req
  | Some tok -> Telemetry.Cancel.with_token tok (fun () -> compute req)

module Account = struct
  type t = {
    spent : int Atomic.t;
    limit : int option;
  }

  let make ?limit () = { spent = Atomic.make 0; limit }
  let spent a = Atomic.get a.spent
  let limit a = a.limit
  let charge a n = ignore (Atomic.fetch_and_add a.spent n)
  let exhausted a = match a.limit with Some l -> Atomic.get a.spent >= l | None -> false
end

type denial =
  | Budget_exhausted of {
      spent : int;
      limit : int;
    }
  | Timed_out of { deadline_s : float }

(* Checkpoint plumbing: a journal hit replays the trial cost exactly
   like a cache hit, so odometers are independent of how a run was cut
   up; a journal miss computes and records before anything else can
   observe the value (durability precedes visibility). *)

let replay (value : Cache.value) =
  Telemetry.Counter.add trials_counter value.Cache.trial_cost;
  value

let lookup_checkpoint t key =
  match t.checkpoint with None -> None | Some cp -> Checkpoint.find cp key

let checkpoint_record t key value =
  match t.checkpoint with None -> () | Some cp -> Checkpoint.record cp key value

let compute_keyed t ~token key req =
  let value = compute_tok ~token req in
  checkpoint_record t key value;
  value

let eval_value ?token t (req : Request.t) : Cache.value =
  let token = match token with Some _ as tk -> tk | None -> t.deadline in
  let key = Request.cache_key req in
  if not (on_main ()) then
    match key with
    | Some k -> (
      match lookup_checkpoint t k with
      | Some value -> replay value
      | None -> compute_keyed t ~token k req)
    | None -> compute_tok ~token req
  else
    match t.cache, key with
    | Some cache, Some k -> (
      match Cache.find cache k with
      | Some value ->
        (* Hit: no simulator step ran; replay the trial cost so the
           odometer matches a cold run exactly. *)
        replay value
      | None -> (
        match lookup_checkpoint t k with
        | Some value ->
          let value = replay value in
          Cache.add cache k value;
          value
        | None ->
          let value = compute_keyed t ~token k req in
          Cache.add cache k value;
          value))
    | None, Some k -> (
      match lookup_checkpoint t k with
      | Some value -> replay value
      | None -> compute_keyed t ~token k req)
    | _, None -> compute_tok ~token req

let charge account (value : Cache.value) =
  Option.iter (fun a -> Account.charge a value.Cache.trial_cost) account

let eval ?engine ?account req =
  let value = eval_value (resolve engine) req in
  charge account value;
  value.Cache.measurement

let eval_batch_inner ?token t ?account reqs =
  let token = match token with Some _ as tk -> tk | None -> t.deadline in
  Telemetry.Counter.incr batch_counter;
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  if n = 0 then []
  else if not (on_main ()) then
    List.map
      (fun req ->
        let value = eval_value ?token t req in
        charge account value;
        value.Cache.measurement)
      reqs
  else begin
    let results : Cache.value option array = Array.make n None in
    let keys = Array.map Request.cache_key arr in
    (* Cache pass in request order (deterministic LRU traffic). *)
    (match t.cache with
    | None -> ()
    | Some cache ->
      Array.iteri
        (fun i key ->
          match key with
          | None -> ()
          | Some key -> (
            match Cache.find cache key with
            | Some value -> results.(i) <- Some (replay value)
            | None -> ()))
        keys);
    (* Indices the cache must learn, whether the value comes from the
       journal or from a fresh compute. *)
    let to_store =
      Array.of_list (List.filter (fun i -> results.(i) = None) (List.init n (fun i -> i)))
    in
    (* Checkpoint pass: resume completed cells without touching the
       simulator. *)
    (match t.checkpoint with
    | None -> ()
    | Some cp ->
      Array.iter
        (fun i ->
          match keys.(i) with
          | None -> ()
          | Some key -> (
            match Checkpoint.find cp key with
            | Some value -> results.(i) <- Some (replay value)
            | None -> ()))
        to_store);
    let misses = Array.of_list (List.filter (fun i -> results.(i) = None) (Array.to_list to_store)) in
    (* The pool shards [misses] across its per-lane run queues (chunked
       round-robin + stealing, DESIGN §13); result-slot ordering is
       preserved because each worker writes only [results.(misses.(j))]
       for the [j] it claimed, so claim order never shows in the
       output.  Each completed compute journals itself before
       publishing, from whichever domain ran it — an interrupt
       mid-batch loses only the evaluations that had not finished. *)
    let run_one j =
      let i = misses.(j) in
      let value = compute_tok ~token arr.(i) in
      (match keys.(i) with None -> () | Some key -> checkpoint_record t key value);
      results.(i) <- Some value
    in
    (match t.backend with
    | Seq -> Array.iteri (fun j _ -> run_one j) misses
    | Domains _ when t.streaming ->
      (* A streaming job owns the pool (this batch is nested inside
         one of its items, running on the main lane); compute inline
         rather than posting a second job. *)
      Array.iteri (fun j _ -> run_one j) misses
    | Domains pool -> Pool.run pool run_one (Array.length misses));
    (* Store pass in request order, after the barrier: cache state is a
       pure function of the request sequence, never of claim order. *)
    (match t.cache with
    | None -> ()
    | Some cache ->
      Array.iter
        (fun i ->
          match keys.(i), results.(i) with
          | Some key, Some value -> Cache.add cache key value
          | _ -> ())
        to_store);
    Array.to_list
      (Array.map
         (fun r ->
           let value = Option.get r in
           charge account value;
           value.Cache.measurement)
         results)
  end

let eval_batch ?engine ?account reqs = eval_batch_inner (resolve engine) ?account reqs

(* A cancellation that fired because [tok]'s deadline passed becomes a
   typed [Timed_out] denial; any other cancellation (a SIGINT, an outer
   token) keeps propagating as the exception it is. *)
let timed_out_guard tok deadline_s = function
  | Telemetry.Cancel.Cancelled _ when Telemetry.Cancel.is_set tok ->
    Telemetry.Counter.incr deadline_counter;
    Telemetry.Counter.incr denied_counter;
    Some (Timed_out { deadline_s })
  | _ -> None

let eval_deadlined ?engine ?account ~deadline_s req =
  let t = resolve engine in
  let tok = Telemetry.Cancel.with_deadline deadline_s in
  match eval_value ~token:tok t req with
  | value ->
    charge account value;
    Ok value.Cache.measurement
  | exception e -> (
    match timed_out_guard tok deadline_s e with Some d -> Error d | None -> raise e)

let eval_batch_deadlined ?engine ?account ~deadline_s reqs =
  let t = resolve engine in
  let tok = Telemetry.Cancel.with_deadline deadline_s in
  match eval_batch_inner ~token:tok t ?account reqs with
  | ms -> Ok ms
  | exception e -> (
    match timed_out_guard tok deadline_s e with Some d -> Error d | None -> raise e)

(* ---------------------------------------------------------- streaming
   DESIGN §14: the whole request grid is handed to the scheduler at
   once and results are consumed out of order as lanes finish them.
   Cache and journal lookups short-circuit before anything is
   enqueued; for every computed miss, checkpoint journaling (the
   durability write) and cache publication happen on the main domain
   at delivery time, in that order — workers only compute, so the
   journal-before-publish contract of §11 holds with a single writer.
   Delivery order is completion order (schedule-dependent); index
   assembly is what restores determinism, exactly as with [Pool.run]'s
   slot contract.  Measurement values and trial odometers are
   schedule-independent; the one thing that becomes schedule-dependent
   is the cache's LRU *recency* order for the streamed misses, which
   affects future hit latency only, never a value. *)

type stream = {
  s_n : int;
  (* Per-stream deadline token; [None] on plain [eval_stream], where
     an engine-wide deadline still cancels computes but surfaces as
     the raw cancellation exception, exactly like [eval_batch]. *)
  s_tok : Telemetry.Cancel.t option;
  s_deadline_s : float option;
  mutable s_hits : (int * Metrics.Spec.measurement) list;  (* request order *)
  s_out : Metrics.Spec.measurement option array;  (* every delivery, by index *)
  s_next_miss : unit -> (int * Metrics.Spec.measurement) option;
  s_on_stop : unit -> unit;  (* release pool / re-entrancy latch; idempotent *)
  mutable s_stopped : bool;
  mutable s_aborted : bool;  (* stopped early: drain would be partial *)
  mutable s_dead : denial option;  (* sticky after a deadline denial *)
}

let stream_length s = s.s_n

let eval_stream_inner ?token ?deadline_s (t : t) ?account reqs =
  let token = match token with Some _ as tk -> tk | None -> t.deadline in
  Telemetry.Counter.incr stream_counter;
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  let mk ?(hits = []) ?(on_stop = ignore) next_miss =
    {
      s_n = n;
      s_tok = (if deadline_s = None then None else token);
      s_deadline_s = deadline_s;
      s_hits = hits;
      s_out = Array.make n None;
      s_next_miss = next_miss;
      s_on_stop = on_stop;
      s_stopped = false;
      s_aborted = false;
      s_dead = None;
    }
  in
  if not (on_main ()) || t.streaming then begin
    (* Off the main domain, or nested inside another stream on this
       engine: degrade to a lazy sequential cursor in index order.
       [eval_value] keeps the cache/journal semantics right for either
       situation. *)
    let cursor = ref 0 in
    mk (fun () ->
        if !cursor >= n then None
        else begin
          let i = !cursor in
          incr cursor;
          let value = eval_value ?token t arr.(i) in
          charge account value;
          Some (i, value.Cache.measurement)
        end)
  end
  else begin
    let results : Cache.value option array = Array.make n None in
    let keys = Array.map Request.cache_key arr in
    (* Cache pass in request order, then journal pass — identical
       short-circuit order to [eval_batch_inner], and journal hits are
       published to the cache here, before anything streams. *)
    (match t.cache with
    | None -> ()
    | Some cache ->
      Array.iteri
        (fun i key ->
          match key with
          | None -> ()
          | Some key -> (
            match Cache.find cache key with
            | Some value -> results.(i) <- Some (replay value)
            | None -> ()))
        keys);
    (match t.checkpoint with
    | None -> ()
    | Some cp ->
      Array.iteri
        (fun i key ->
          match key with
          | None -> ()
          | Some key ->
            if results.(i) = None then (
              match Checkpoint.find cp key with
              | Some value ->
                let value = replay value in
                (match t.cache with Some c -> Cache.add c key value | None -> ());
                results.(i) <- Some value
              | None -> ()))
        keys);
    let hits = ref [] in
    Array.iteri
      (fun i r ->
        match r with
        | Some value ->
          charge account value;
          hits := (i, value.Cache.measurement) :: !hits
        | None -> ())
      results;
    let hits = List.rev !hits in
    let misses =
      Array.of_list (List.filter (fun i -> results.(i) = None) (List.init n (fun i -> i)))
    in
    let m = Array.length misses in
    (* Journal-before-publish, on the main domain, per completion. *)
    let publish i (value : Cache.value) =
      (match keys.(i) with Some key -> checkpoint_record t key value | None -> ());
      (match t.cache, keys.(i) with
      | Some cache, Some key -> Cache.add cache key value
      | _ -> ());
      charge account value;
      (i, value.Cache.measurement)
    in
    match t.backend with
    | Seq ->
      (* One lane: misses compute lazily, one per pull, in index
         order — an interrupted consumer pays only for what it
         pulled. *)
      let cursor = ref 0 in
      mk ~hits (fun () ->
          if !cursor >= m then None
          else begin
            let i = misses.(!cursor) in
            incr cursor;
            Some (publish i (compute_tok ~token arr.(i)))
          end)
    | Domains pool ->
      (* Hand the scheduler the whole miss grid now; consume
         completions out of order.  Workers run [compute_tok] only —
         journaling and cache publication wait for delivery here on
         the main domain. *)
      t.streaming <- true;
      let ticket =
        try Pool.submit_stream pool (fun j -> compute_tok ~token arr.(misses.(j))) m
        with e ->
          t.streaming <- false;
          raise e
      in
      mk ~hits
        ~on_stop:(fun () ->
          Pool.discard ticket;
          t.streaming <- false)
        (fun () ->
          match Pool.next_result ticket with
          | None -> None
          | Some (j, value) -> Some (publish misses.(j) value))
  end

let stream_stop ~aborted s =
  if not s.s_stopped then begin
    s.s_stopped <- true;
    s.s_aborted <- aborted;
    s.s_on_stop ()
  end

let stream_abort s = if s.s_dead = None then stream_stop ~aborted:true s

let stream_next s =
  match s.s_dead with
  | Some d -> Error d
  | None ->
    if s.s_stopped then Ok None
    else (
      match s.s_hits with
      | ((i, measurement) as hit) :: rest ->
        s.s_hits <- rest;
        s.s_out.(i) <- Some measurement;
        Ok (Some hit)
      | [] -> (
        match s.s_next_miss () with
        | Some (i, measurement) ->
          s.s_out.(i) <- Some measurement;
          Ok (Some (i, measurement))
        | None ->
          stream_stop ~aborted:false s;
          Ok None
        | exception e -> (
          stream_stop ~aborted:true s;
          match s.s_tok, s.s_deadline_s with
          | Some tok, Some deadline_s -> (
            match timed_out_guard tok deadline_s e with
            | Some d ->
              s.s_dead <- Some d;
              Error d
            | None -> raise e)
          | _ -> raise e)))

let stream_drain s =
  if s.s_aborted then invalid_arg "Service.stream_drain: stream was aborted";
  let rec go () =
    match stream_next s with
    | Ok (Some _) -> go ()
    | Ok None -> Ok (List.map Option.get (Array.to_list s.s_out))
    | Error d -> Error d
  in
  go ()

let eval_stream ?engine ?account reqs = eval_stream_inner (resolve engine) ?account reqs

let eval_stream_deadlined ?engine ?account ~deadline_s reqs =
  let tok = Telemetry.Cancel.with_deadline deadline_s in
  eval_stream_inner ~token:tok ~deadline_s (resolve engine) ?account reqs

(* Generic job-level streaming for fan-outs that are not [Request]
   evaluations (a lot's die calibrations, an attack's trial set): run
   [f] over [0..n-1] on the pool, out of order, and assemble by index.
   [f] may call back into this engine — on the main lane such calls
   compute inline behind the re-entrancy latch; on worker lanes they
   take the usual off-main (checkpoint + inline compute) path. *)
let map_jobs ?engine f n =
  let t = resolve engine in
  if n <= 0 then []
  else
    match t.backend with
    | Domains pool when on_main () && not t.streaming ->
      t.streaming <- true;
      Fun.protect
        ~finally:(fun () -> t.streaming <- false)
        (fun () ->
          let ticket = Pool.submit_stream pool f n in
          match Pool.drain ticket with
          | results -> Array.to_list results
          | exception e ->
            Pool.discard ticket;
            raise e)
    | _ -> List.init n f

let eval_guarded ?engine ?deadline_s ~account req =
  if Account.exhausted account then begin
    Telemetry.Counter.incr denied_counter;
    let limit = Option.value (Account.limit account) ~default:0 in
    Error (Budget_exhausted { spent = Account.spent account; limit })
  end
  else
    match deadline_s with
    | None ->
      let value = eval_value (resolve engine) req in
      Account.charge account value.Cache.trial_cost;
      Ok (value.Cache.measurement, value.Cache.trial_cost)
    | Some deadline_s -> (
      let t = resolve engine in
      let tok = Telemetry.Cancel.with_deadline deadline_s in
      match eval_value ~token:tok t req with
      | value ->
        Account.charge account value.Cache.trial_cost;
        Ok (value.Cache.measurement, value.Cache.trial_cost)
      | exception e -> (
        match timed_out_guard tok deadline_s e with Some d -> Error d | None -> raise e))
