(** Fixed pool of worker domains for index-parallel jobs.

    Built on [Domain]/[Mutex]/[Condition] only.  [run t f n] evaluates
    [f i] for every [i < n], with the calling domain participating as
    one lane alongside the workers; it returns once all indices have
    completed, re-raising the first exception any [f i] raised.  [f]
    must confine its writes to per-index slots — that is what makes the
    result independent of claim order. *)

type t

exception Worker_killed
(** Test hook simulating an abrupt worker-domain death.  A job function
    raising this from a worker lane kills that domain: the supervisor
    requeues the claimed index, increments [pool.worker.restarts] and
    spawns a replacement that joins the in-flight job.  Raised on the
    main lane it simply requeues and continues (the caller's domain
    cannot be respawned).  Unlike ordinary exceptions it is not
    recorded as the job's failure — the index is retried instead. *)

val create : int -> t
(** [create workers] spawns that many worker domains (>= 1); they idle
    on a condition variable between jobs and are joined at process
    exit. *)

val workers : t -> int

type stats = {
  lanes : int;  (** workers + the participating main lane *)
  busy_lanes : int;  (** lanes holding a claimed index right now *)
  job_active : bool;
}

val stats : t -> stats
(** Instantaneous occupancy snapshot (takes the pool mutex briefly);
    safe from any domain, used by the live monitor.  Scheduling
    history accumulates in the [pool.queue.wait_ns] (post-to-first-
    claim latency per lane per job) and [pool.lane.busy] (occupancy
    observed at each claim) histograms. *)

val run : t -> (int -> unit) -> int -> unit

val shutdown : t -> unit
(** Join all workers.  Idempotent; the pool is unusable afterwards. *)
