(** Sharded work-stealing pool of worker domains for index-parallel
    jobs.

    Built on [Domain]/[Mutex]/[Condition] only.  [run t f n] evaluates
    [f i] for every [i < n], with the calling domain participating as
    one lane alongside the workers; it returns once all indices have
    completed, re-raising the first exception any [f i] raised.  [f]
    must confine its writes to per-index slots — that is what makes the
    result independent of claim order.

    Scheduling (DESIGN §13): submit deals contiguous index chunks
    round-robin across per-lane run queues (main lane first); a lane
    claims chunks from its own queue and steals from the busiest other
    queue when it drains.  Wakeups are targeted [signal]s — only lanes
    that can make progress are woken — and a wake that finds nothing
    claimable counts [pool.wakeup.spurious].  Each steal counts
    [pool.steal.count]. *)

type t

exception Worker_killed
(** Test hook simulating an abrupt worker-domain death.  A job function
    raising this from a worker lane kills that domain: the supervisor
    requeues the unfinished remainder of the claimed chunk (current
    index included) onto the main lane's queue, increments
    [pool.worker.restarts] and spawns a replacement; chunks still
    queued on the dead lane survive for the replacement (or a thief).
    Raised on the main lane it simply requeues and continues (the
    caller's domain cannot be respawned).  Unlike ordinary exceptions
    it is not recorded as the job's failure — the indices are retried
    instead. *)

val create : ?eager:bool -> int -> t
(** [create workers] asks for that many worker domains (>= 1); they
    idle on per-lane condition variables between jobs and are joined
    at process exit.

    Sizing is hardware-aware by default: at most
    [Domain.recommended_domain_count () - 1] workers are actually
    spawned (possibly zero, leaving the stealing caller as the only
    lane).  A worker beyond the machine's available parallelism can
    only timeshare a saturated core, yet its existence taxes every
    stop-the-world minor collection — oversubscription measurably
    *loses* batch throughput, so the surplus simply never exists and
    scaling stays monotone in the requested lane count.
    [~eager:true] spawns the full request regardless; supervision
    tests use it to force worker-lane participation (and deaths)
    deterministically.  Results are bit-identical either way — only
    wall-clock changes. *)

val workers : t -> int
(** Worker domains actually spawned (lanes - 1); at most the request
    passed to {!create}. *)

val max_chunk : int
(** The scheduler's largest submit-time chunk (16), and the unit of
    the submit-time wakeup budget: a default-chunked submit engages at
    most [ceil (n / max_chunk)] lanes, so tiny batches stay on the
    caller's lane instead of waking domains for less than a chunk's
    worth of work. *)

type stats = {
  lanes : int;  (** workers + the participating main lane *)
  busy_lanes : int;  (** lanes running a claimed index right now *)
  job_active : bool;
  queue_depths : int list;  (** queued items per lane, main lane last *)
  steals : int;  (** lifetime stolen chunks *)
}

val stats : t -> stats
(** Instantaneous scheduler snapshot (takes the job mutex briefly;
    queue depths are atomic reads); safe from any domain, used by the
    live monitor.  Scheduling history accumulates in the
    [pool.queue.wait_ns] (post-to-first-claim latency per lane per
    job) and [pool.lane.busy] (occupancy observed at each chunk claim)
    histograms, plus the [pool.steal.count] and
    [pool.wakeup.spurious] counters. *)

val run : ?chunk:int -> t -> (int -> unit) -> int -> unit
(** [run ?chunk t f n] evaluates [f i] for all [i < n].  [chunk]
    overrides the submit-time chunk size (default: [n] spread evenly
    over the engaged lanes, capped at {!max_chunk}) and disables the
    wakeup budget — the explicit-chunk deal covers every lane; mainly
    for tests and benchmarks that want to force queue traffic. *)

(** {1 Streaming submission (DESIGN §14)}

    [submit_stream] posts a whole job without blocking and returns a
    ticket; results are consumed out of order as lanes finish them.
    One job (streaming or [run]) is in flight at a time — posting over
    an undrained ticket raises [Invalid_argument]. *)

type 'a ticket
(** A streaming job in flight: [n] items, a result slot per index, and
    a completion queue filled by the lanes.  Not thread-safe — only
    the domain that called {!submit_stream} (the pool's main lane) may
    consume it. *)

val submit_stream : ?chunk:int -> t -> (int -> 'a) -> int -> 'a ticket
(** [submit_stream t f n] deals items [0..n-1] across the lanes under
    the same layout as {!run} (wakeup budget included) and returns
    immediately.  An ordinary exception raised by [f i] is captured as
    that item's result and re-raised by {!next_result} on delivery —
    after discarding the remainder of the job — rather than recorded
    as a pool-wide failure; {!Worker_killed} keeps its supervision
    semantics (the item is retried, exactly-once delivery holds). *)

val next_result : 'a ticket -> (int * 'a) option
(** Deliver the next completed item as [(index, result)], in
    completion order.  If nothing has completed, the calling domain
    claims queued work itself — one item at a time, so delivery
    granularity is a single item even with zero workers — and only
    sleeps when every remaining item is in flight on another lane.
    Returns [None] once all [n] items have been delivered (the pool is
    then free for the next job) or after {!discard}. *)

val drain : 'a ticket -> 'a array
(** Deliver everything still outstanding and return all [n] results
    assembled by index.  Raises the first item error it encounters,
    like {!run}; raises [Invalid_argument] on a discarded ticket. *)

val discard : 'a ticket -> unit
(** Abort: drop every still-queued item, wait out the in-flight ones,
    and free the pool for the next job.  Undelivered results are lost.
    Idempotent; a no-op on a fully delivered ticket. *)

val shutdown : t -> unit
(** Join all workers.  Idempotent; the pool is unusable afterwards. *)
