(** Fixed pool of worker domains for index-parallel jobs.

    Built on [Domain]/[Mutex]/[Condition] only.  [run t f n] evaluates
    [f i] for every [i < n], with the calling domain participating as
    one lane alongside the workers; it returns once all indices have
    completed, re-raising the first exception any [f i] raised.  [f]
    must confine its writes to per-index slots — that is what makes the
    result independent of claim order. *)

type t

val create : int -> t
(** [create workers] spawns that many worker domains (>= 1); they idle
    on a condition variable between jobs and are joined at process
    exit. *)

val workers : t -> int

val run : t -> (int -> unit) -> int -> unit

val shutdown : t -> unit
(** Join all workers.  Idempotent; the pool is unusable afterwards. *)
