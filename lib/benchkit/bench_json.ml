(* The bench JSON trajectory file and its regression gate.

   Schema history:
   - "bench-kernels/1": {"schema", "results": [{name, ns_per_run,
     minor_words_per_run}]} — what the seed harness wrote.
   - "bench-kernels/2": adds a "manifest" object (run provenance, see
     Telemetry.Manifest) so a committed baseline records exactly which
     build and argv produced it.

   The reader accepts both, so `bench --compare BENCH_4.json` keeps
   working against baselines committed before the schema bump.

   The gate compares ns/run and minor-words/run per kernel against a
   baseline under generous multiplicative tolerances: the committed
   baseline and a CI run sit on different machines and different bench
   quotas, so only multiple-of-baseline blowups are actionable.
   Allocation tolerances are tighter (allocation per run is
   machine-independent) but carry an absolute slack so a kernel that
   allocates nearly nothing cannot fail on a few words of noise. *)

type kernel = {
  name : string;
  ns_per_run : float;
  minor_words_per_run : float;
}

type file = {
  schema : int;
  manifest : Telemetry.Manifest.t option;
  kernels : kernel list;
}

(* --------------------------------------------------------------- write *)

let schema_name = "bench-kernels/2"

let write ~path ?manifest kernels =
  let num x = if Float.is_finite x then Printf.sprintf "%.3f" x else "null" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"schema\": %S,\n" schema_name;
      (match manifest with
      | None -> ()
      | Some m -> Printf.fprintf oc "  \"manifest\": %s,\n" (Telemetry.Manifest.to_json m));
      output_string oc "  \"results\": [\n";
      let sorted = List.sort (fun a b -> String.compare a.name b.name) kernels in
      let n = List.length sorted in
      List.iteri
        (fun i k ->
          Printf.fprintf oc
            "    { \"name\": %S, \"ns_per_run\": %s, \"minor_words_per_run\": %s }%s\n" k.name
            (num k.ns_per_run)
            (num k.minor_words_per_run)
            (if i = n - 1 then "" else ","))
        sorted;
      output_string oc "  ]\n}\n")

(* ---------------------------------------------------------------- read *)

(* Minimal recursive-descent JSON reader — objects, arrays, strings,
   numbers, booleans, null.  Object values remember their byte span in
   the source so the nested manifest can be handed to
   Telemetry.Manifest.of_json verbatim. *)

type jv =
  | Obj of (string * jv) list * (int * int)  (* fields, source span *)
  | Arr of jv list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Bad of string

let parse src =
  let n = String.length src in
  let i = ref 0 in
  let skip_ws () =
    while
      !i < n && (src.[!i] = ' ' || src.[!i] = '\t' || src.[!i] = '\n' || src.[!i] = '\r')
    do
      incr i
    done
  in
  let expect c =
    skip_ws ();
    if !i < n && src.[!i] = c then incr i
    else raise (Bad (Printf.sprintf "expected '%c' at byte %d" c !i))
  in
  let literal word v =
    if !i + String.length word <= n && String.sub src !i (String.length word) = word then begin
      i := !i + String.length word;
      v
    end
    else raise (Bad (Printf.sprintf "unrecognised value at byte %d" !i))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec go () =
      if !i >= n then raise (Bad "unterminated string");
      let c = src.[!i] in
      incr i;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !i >= n then raise (Bad "truncated escape");
        let e = src.[!i] in
        incr i;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !i + 4 > n then raise (Bad "truncated \\u escape");
          let code =
            try int_of_string ("0x" ^ String.sub src !i 4) with _ -> raise (Bad "bad \\u escape")
          in
          i := !i + 4;
          Buffer.add_char buf (Char.chr (code land 0xff))
        | _ -> raise (Bad "unknown escape"));
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !i in
    let numeric c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !i < n && numeric src.[!i] do
      incr i
    done;
    if !i = start then raise (Bad (Printf.sprintf "unrecognised value at byte %d" start));
    match float_of_string_opt (String.sub src start (!i - start)) with
    | Some v -> v
    | None -> raise (Bad "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    if !i >= n then raise (Bad "missing value")
    else
      match src.[!i] with
      | '"' -> Str (parse_string ())
      | '{' -> parse_object ()
      | '[' -> parse_array ()
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> Num (parse_number ())
  and parse_object () =
    let start = !i in
    expect '{';
    skip_ws ();
    if !i < n && src.[!i] = '}' then begin
      incr i;
      Obj ([], (start, !i))
    end
    else begin
      let fields = ref [] in
      let parsing = ref true in
      while !parsing do
        let k = parse_string () in
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        if !i < n && src.[!i] = ',' then incr i
        else begin
          expect '}';
          parsing := false
        end
      done;
      Obj (List.rev !fields, (start, !i))
    end
  and parse_array () =
    expect '[';
    skip_ws ();
    if !i < n && src.[!i] = ']' then begin
      incr i;
      Arr []
    end
    else begin
      let items = ref [] in
      let parsing = ref true in
      while !parsing do
        items := parse_value () :: !items;
        skip_ws ();
        if !i < n && src.[!i] = ',' then incr i
        else begin
          expect ']';
          parsing := false
        end
      done;
      Arr (List.rev !items)
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !i <> n then raise (Bad "trailing bytes");
  v

let of_string src =
  match parse src with
  | exception Bad reason -> Error reason
  | Obj (fields, _) -> (
    let find name = List.assoc_opt name fields in
    let schema =
      match find "schema" with
      | Some (Str "bench-kernels/1") -> Ok 1
      | Some (Str "bench-kernels/2") -> Ok 2
      | Some (Str other) -> Error (Printf.sprintf "unsupported schema %S" other)
      | _ -> Error "missing schema"
    in
    match schema with
    | Error e -> Error e
    | Ok schema -> (
      let manifest =
        match find "manifest" with
        | Some (Obj (_, (s, e))) -> (
          match Telemetry.Manifest.of_json (String.sub src s (e - s)) with
          | Ok m -> Some m
          | Error _ -> None)
        | _ -> None
      in
      let kernel_of = function
        | Obj (kf, _) ->
          let num name =
            match List.assoc_opt name kf with
            | Some (Num v) -> v
            | Some Null | None -> nan
            | Some _ -> raise (Bad (name ^ " must be a number"))
          in
          let name =
            match List.assoc_opt "name" kf with
            | Some (Str s) -> s
            | _ -> raise (Bad "kernel name must be a string")
          in
          { name; ns_per_run = num "ns_per_run"; minor_words_per_run = num "minor_words_per_run" }
        | _ -> raise (Bad "results entries must be objects")
      in
      match find "results" with
      | Some (Arr items) -> (
        match List.map kernel_of items with
        | kernels -> Ok { schema; manifest; kernels }
        | exception Bad reason -> Error reason)
      | _ -> Error "missing results array"))
  | _ -> Error "top level must be an object"

let read path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | raw -> of_string raw

(* ---------------------------------------------------------------- gate *)

type tolerance = {
  ns_ratio : float;
  mwd_ratio : float;
  mwd_slack : float;
}

(* The allocation slack must absorb a quota systematic, not just
   noise: the baseline is measured at the full bechamel quota, the
   gate at the fast one, and per-sample fixed allocations amortise
   over fewer runs there (engine:cache-hit reads ~6 words/run at full
   quota and ~90 at fast on the same build). *)
let default_tolerance = { ns_ratio = 2.0; mwd_ratio = 1.25; mwd_slack = 128.0 }

(* Sub-microsecond kernels: the measured quantity is a handful of
   instructions, where scheduler noise, frequency scaling and bechamel
   quota differences dominate — give them extra headroom. *)
let noisy_kernels =
  [
    "telemetry:span-disabled";
    "telemetry:counter-incr";
    "engine:cache-hit";
    "telemetry:cancel-poll-1k";
    "onchip:alu-evaluation";
  ]

(* fsync-bound kernels: wall time is disk latency under whatever else
   is touching the disk (observed 140 us to 13 ms for the same build
   in one session).  Only an order-of-magnitude blowup — an
   algorithmic change, not the environment — is actionable. *)
let io_kernels = [ "engine:checkpoint-record" ]

(* Arena-converted kernels: the workspace refactor (DESIGN §15) made
   these allocate only their returned result records, so the 128-word
   quota slack — sized for kernels whose fixed per-sample allocations
   amortise differently at the fast quota — is more headroom than they
   need.  Keep them on half of it so a stage that quietly falls back
   to an allocating path cannot hide inside the slack. *)
let arena_kernels =
  [
    "engine:cache-miss";
    "engine:batch8-1domain";
    "engine:batch8-2domains";
    "engine:batch8-4domains";
    "engine:batch8-8domains";
    "engine:stream-grid";
    "faults:campaign-cell";
    "fig7:snr-mod-per-key";
    "fig9:snr-rx-per-key";
    "fig10:psd-estimate";
    "fig11:sweep-point";
    "fig12:two-tone-sfdr";
    "security:attack-trial";
    "compare:baseline-probes";
    "lot:die-calibration";
  ]

let tolerance_for name =
  if List.mem name io_kernels then { default_tolerance with ns_ratio = 20.0 }
  else if List.mem name noisy_kernels then { default_tolerance with ns_ratio = 3.0 }
  else if List.mem name arena_kernels then { default_tolerance with mwd_slack = 64.0 }
  else default_tolerance

(* Absolute minor-words budgets for the converted kernels — the
   alloc-smoke contract.  Unlike the ratio gate these do not need a
   baseline file: they are the allocation model itself (result record
   + per-eval bookkeeping, no full-record scratch arrays), with ~4x
   headroom over measured values so a different machine or bechamel
   quota cannot trip them, while any reintroduced per-stage copy of
   even one 9216-sample record (+18k words minimum) fails outright. *)
let alloc_budgets =
  [
    ("engine:cache-miss", 30_000.0);
    ("engine:batch8-1domain", 340_000.0);
    ("engine:batch8-2domains", 340_000.0);
    ("engine:batch8-4domains", 340_000.0);
    ("engine:batch8-8domains", 340_000.0);
    ("engine:stream-grid", 340_000.0);
    ("faults:campaign-cell", 80_000.0);
    ("fig7:snr-mod-per-key", 24_000.0);
  ]

let budget_for name = List.assoc_opt name alloc_budgets

type verdict =
  | Pass
  | Regressed of {
      field : string;
      baseline : float;
      current : float;
      limit : float;
    }
  | Missing

type comparison = {
  kernel : string;
  verdict : verdict;
}

(* Compare current results against a baseline.  Kernels only in the
   current run pass silently (new kernels are not regressions); kernels
   only in the baseline are [Missing] when [require_all] (a full-suite
   gate must notice a kernel that silently stopped running, but a
   --only run must not fail on everything it skipped). *)
let compare_results ~baseline ~current ~require_all =
  let find xs name = List.find_opt (fun k -> k.name = name) xs in
  List.filter_map
    (fun b ->
      match find current b.name with
      | None -> if require_all then Some { kernel = b.name; verdict = Missing } else None
      | Some c ->
        let tol = tolerance_for b.name in
        let ns_limit = b.ns_per_run *. tol.ns_ratio in
        let mwd_limit = (b.minor_words_per_run *. tol.mwd_ratio) +. tol.mwd_slack in
        let verdict =
          if Float.is_finite b.ns_per_run && Float.is_finite c.ns_per_run
             && c.ns_per_run > ns_limit
          then
            Regressed
              { field = "ns_per_run"; baseline = b.ns_per_run; current = c.ns_per_run;
                limit = ns_limit }
          else if
            Float.is_finite b.minor_words_per_run
            && Float.is_finite c.minor_words_per_run
            && c.minor_words_per_run > mwd_limit
          then
            Regressed
              { field = "minor_words_per_run"; baseline = b.minor_words_per_run;
                current = c.minor_words_per_run; limit = mwd_limit }
          else Pass
        in
        Some { kernel = b.name; verdict })
    (List.sort (fun a b -> String.compare a.name b.name) baseline)

let check_budgets current =
  List.filter_map
    (fun (name, budget) ->
      match List.find_opt (fun k -> k.name = name) current with
      | None -> None  (* --only runs check whatever subset they measured *)
      | Some c when Float.is_finite c.minor_words_per_run ->
        if c.minor_words_per_run > budget then
          Some
            {
              kernel = name;
              verdict =
                Regressed
                  { field = "minor_words_budget"; baseline = budget;
                    current = c.minor_words_per_run; limit = budget };
            }
        else Some { kernel = name; verdict = Pass }
      | Some _ -> None)
    alloc_budgets

let regressions comparisons =
  List.filter (fun c -> c.verdict <> Pass) comparisons

let verdict_to_string c =
  match c.verdict with
  | Pass -> Printf.sprintf "PASS     %s" c.kernel
  | Missing -> Printf.sprintf "MISSING  %s (in baseline, absent from this run)" c.kernel
  | Regressed { field; baseline; current; limit } ->
    Printf.sprintf "REGRESS  %s: %s %.1f -> %.1f (limit %.1f)" c.kernel field baseline current
      limit
