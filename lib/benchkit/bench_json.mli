(** The bench JSON trajectory file ("bench-kernels/2") and its
    regression gate.

    The writer stamps each file with a run {!Telemetry.Manifest};
    the reader also accepts the seed's "bench-kernels/1" files (no
    manifest), so gates keep working against old committed baselines.
    The gate applies generous multiplicative tolerances — baseline and
    CI run on different machines and bench quotas, so only
    multiple-of-baseline blowups are actionable — with extra headroom
    for sub-microsecond kernels and an absolute allocation slack. *)

type kernel = {
  name : string;
  ns_per_run : float;  (** nan when the harness could not estimate *)
  minor_words_per_run : float;
}

type file = {
  schema : int;  (** 1 or 2 *)
  manifest : Telemetry.Manifest.t option;  (** schema 2 only *)
  kernels : kernel list;
}

val schema_name : string

val write : path:string -> ?manifest:Telemetry.Manifest.t -> kernel list -> unit
(** Write a schema-2 file, kernels sorted by name. *)

val read : string -> (file, string) result
val of_string : string -> (file, string) result

(** {1 Regression gate} *)

type tolerance = {
  ns_ratio : float;  (** fail when current ns > baseline * ratio *)
  mwd_ratio : float;
  mwd_slack : float;  (** absolute words added to the mwd limit *)
}

val default_tolerance : tolerance

val tolerance_for : string -> tolerance
(** Per-kernel tolerance: sub-microsecond kernels get a wider
    [ns_ratio]; fsync-bound kernels (disk-latency-dominated) only
    fail on an order-of-magnitude blowup; arena-converted kernels
    (DESIGN §15) keep half the allocation slack. *)

val budget_for : string -> float option
(** Absolute minor-words-per-run budget for an arena-converted kernel
    (the [make alloc-smoke] contract), if it has one. *)

type verdict =
  | Pass
  | Regressed of {
      field : string;
      baseline : float;
      current : float;
      limit : float;
    }
  | Missing  (** in the baseline, absent from the current run *)

type comparison = {
  kernel : string;
  verdict : verdict;
}

val compare_results :
  baseline:kernel list -> current:kernel list -> require_all:bool -> comparison list
(** One comparison per baseline kernel, name order.  Kernels only in
    the current run pass silently; baseline kernels absent from the
    run are [Missing] only under [require_all] (full-suite gates, not
    [--only] runs). *)

val regressions : comparison list -> comparison list
(** The non-[Pass] subset. *)

val check_budgets : kernel list -> comparison list
(** Baseline-free absolute gate: one comparison per budgeted kernel
    present in the run, [Regressed] (field ["minor_words_budget"])
    when it allocates past its budget.  Drives [make alloc-smoke]. *)

val verdict_to_string : comparison -> string
