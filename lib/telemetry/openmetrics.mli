(** OpenMetrics / Prometheus text exposition of the telemetry
    registries.

    {!render} emits every registered counter (as [<name>_total]
    counters), every histogram with observations (as summaries:
    p50/p90/p99 quantile series plus [_sum]/[_count]), span aggregates
    when span recording is enabled (labelled [repro_span_*] series),
    and any caller-supplied gauges — terminated by the mandatory
    [# EOF] marker.  Metric names are sanitised to the OpenMetrics
    charset and prefixed ["repro_"].

    Safe to call from any domain: counters are atomic, the
    counter/histogram tables are fixed after module initialisation,
    and the span table is read under its registration lock. *)

type gauge = {
  g_name : string;  (** unsanitised metric name, unit suffix included *)
  g_labels : (string * string) list;
  g_value : float;
  g_help : string;
}

val gauge : ?labels:(string * string) list -> ?help:string -> string -> float -> gauge

val render : ?gauges:gauge list -> unit -> string
