(** Cooperative cancellation tokens and cancellation points.

    Long campaigns need three things the raw kernels do not provide: a
    way to stop a hung or over-budget evaluation (deadlines), a way to
    stop everything cleanly on SIGINT (the process-global interrupt),
    and bounded latency between either signal and the actual stop (the
    kernels poll every 4096 samples).  A poll that observes a tripped
    token raises {!Cancelled}; only the supervision layers (the
    evaluation engine's deadlined entry points, the fault campaign)
    catch it and turn it into typed results — everything below treats
    it as a non-local exit that must not be swallowed.

    Polling with no token installed and no interrupt pending is two
    atomic loads — cheap enough for simulator inner loops. *)

type t

exception Cancelled of string
(** Raised by {!poll} / {!check}; the payload is the token's reason. *)

val deadline_reason : string
(** The reason string deadline tokens carry ("deadline"), so callers
    can tell a timeout from an interrupt without holding the token. *)

val create : ?reason:string -> unit -> t
(** A manual token; trips when {!set}. *)

val with_deadline : ?reason:string -> float -> t
(** [with_deadline s] trips once [s] seconds of wall clock have passed
    (checked lazily at poll time, and latched once observed). *)

val set : t -> unit
val is_set : t -> bool
val reason : t -> string

val remaining_s : t -> float option
(** Seconds until the deadline trips ([Some 0.] once tripped; [None]
    for a manual token that has not been set). *)

val check : t -> unit
(** Raise [Cancelled] if the token has tripped. *)

val with_token : t -> (unit -> 'a) -> 'a
(** Install the token in domain-local storage for the scope of [f]:
    every {!poll} on this domain inside [f] observes it.  Nests;
    innermost token wins. *)

val current : unit -> t option

val interrupt : ?reason:string -> unit -> unit
(** Trip the process-global interrupt flag (async-signal-safe — this is
    what a SIGINT handler calls).  Every domain's next poll raises. *)

val interrupted : unit -> bool
val clear_interrupt : unit -> unit

val poll : unit -> unit
(** Cancellation point: raise [Cancelled] if the global interrupt is
    pending or the domain's installed token has tripped. *)

val tick_poll : int -> unit
(** [tick_poll i] polls when [i land 4095 = 0] — the per-sample form
    the simulator inner loops use. *)
