(** Run provenance records.

    A manifest captures the identity of one run: exact argv (and the
    seed parsed back out of it), an MD5 content hash of the running
    executable, a digest of the effective configuration, compiler
    version, hostname, and start/end timestamps with exit status.
    Written next to reports under live monitoring and embedded (as the
    engine hash) in checkpoint journal headers, so resumed runs can
    verify they replay values produced by the same code. *)

type t = {
  schema : int;
  argv : string list;
  seed : int option;  (** parsed from [--seed N] / [--seed=N] in argv *)
  engine_hash : string;  (** hex MD5 of the executable, ["unknown"] if unreadable *)
  config_digest : string;  (** hex MD5 over the NUL-joined argv *)
  ocaml_version : string;
  hostname : string;
  start_ns : int64;
  mutable end_ns : int64 option;
  mutable exit_status : int option;
}

val create : ?argv:string list -> ?seed:int -> unit -> t
(** Stamp a manifest for the current run ([argv] defaults to
    [Sys.argv]); start time is now, end/status unset. *)

val finish : ?exit_status:int -> t -> unit
(** Stamp the end time and (if known) the exit status. *)

val engine_hash : unit -> string
(** Memoised content hash of the running executable — what
    checkpoint journal headers embed. *)

val to_json : t -> string
(** One flat JSON object, argv as a string array. *)

val of_json : string -> (t, string) result

val write : string -> t -> unit
val read : string -> (t, string) result
