type t = {
  name : string;
  mutable value : int;
}

let table : (string, t) Hashtbl.t = Hashtbl.create 64

let make name =
  match Hashtbl.find_opt table name with
  | Some c -> c
  | None ->
    let c = { name; value = 0 } in
    Hashtbl.add table name c;
    c

let incr t = t.value <- t.value + 1
let add t n = t.value <- t.value + n
let value t = t.value
let name t = t.name
let find name = Hashtbl.find_opt table name

let snapshot () =
  Hashtbl.fold (fun name c acc -> (name, c.value) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_all () = Hashtbl.iter (fun _ c -> c.value <- 0) table
