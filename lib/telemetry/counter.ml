type t = {
  name : string;
  value : int Atomic.t;
}

let table : (string, t) Hashtbl.t = Hashtbl.create 64

(* Registration happens at module-initialisation time (top-level [make]
   calls), i.e. on the main domain before any worker domain exists, so
   the table itself needs no lock; the hot-path increments are atomic
   so worker domains in the evaluation engine's pool never lose
   counts. *)
let make name =
  match Hashtbl.find_opt table name with
  | Some c -> c
  | None ->
    let c = { name; value = Atomic.make 0 } in
    Hashtbl.add table name c;
    c

let incr t = Atomic.incr t.value

let add t n = ignore (Atomic.fetch_and_add t.value n)

let value t = Atomic.get t.value
let name t = t.name
let find name = Hashtbl.find_opt table name

let snapshot () =
  Hashtbl.fold (fun name c acc -> (name, Atomic.get c.value) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_all () = Hashtbl.iter (fun _ c -> Atomic.set c.value 0) table
