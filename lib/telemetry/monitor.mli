(** Live campaign monitoring: a progress board, a rate-limited
    heartbeat piggybacked on the cancellation-poll cadence, and an
    opt-in loopback HTTP scrape server ([GET /metrics] in OpenMetrics
    text, [GET /healthz] as JSON).

    Everything is off by default; {!tick} costs one atomic load when
    monitoring is disabled, so unmonitored runs are unperturbed. *)

(** {1 Progress board} *)

val set_progress : completed:int -> total:int -> unit
(** Post campaign progress.  The first post stamps the campaign start
    time used for ETA estimation. *)

val register : string -> (unit -> (string * float) list) -> unit
(** [register name f] adds (or replaces) a named gauge provider;
    [f ()] is called at snapshot time and returns
    [(metric_name, value)] pairs.  Providers that raise contribute
    nothing.  The engine registers one exposing cache occupancy, pool
    lane state and deadline remaining. *)

(** {1 Snapshots} *)

type snapshot = {
  completed : int;
  total : int;
  elapsed_s : float;  (** since the first progress post; 0 if none *)
  eta_s : float option;  (** linear extrapolation, when estimable *)
  cache_hit_rate : float option;  (** from engine.cache.hit/miss counters *)
  gauges : (string * float) list;  (** provider gauges, provider-name order *)
}

val snapshot : unit -> snapshot

val metrics_body : unit -> string
(** The [/metrics] response body: {!Openmetrics.render} over every
    registry plus the snapshot gauges. *)

val healthz_body : unit -> string
(** The [/healthz] response body: one JSON object with progress,
    ETA, cache hit rate, pool restarts, deadline remaining and the
    engine hash. *)

(** {1 Heartbeat} *)

val set_heartbeat : ?interval_s:float -> bool -> unit
(** Enable/disable heartbeat emission (default interval 1s).
    Heartbeats are [Log.info] lines emitted from {!tick}. *)

val tick : unit -> unit
(** Called by [Cancel.poll] on the 4096-sample cadence.  When
    monitoring is enabled and the interval has elapsed, emits one
    heartbeat; otherwise a single atomic load. *)

(** {1 Scrape server} *)

val start_server : port:int -> (int, string) result
(** Bind 127.0.0.1:[port] (0 picks a free port), spawn the serving
    domain, and enable heartbeats.  Returns the bound port.  The
    server is single-threaded and closes each connection after one
    response; it is stopped automatically at exit. *)

val stop_server : unit -> unit
val server_port : unit -> int option

val reset : unit -> unit
(** Testing: disable monitoring and clear the progress board. *)
