(* Minimal JSON emission, duplicated from Faults.Json on purpose:
   telemetry sits below every other library and must stay
   dependency-free. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ escape s ^ "\""

let jfloat f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let jattrs attrs =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ jstr v) attrs) ^ "}"

let summary_table ?(out = stdout) () =
  let p fmt = Printf.fprintf out fmt in
  p "# telemetry summary\n";
  let spans = Span.aggregates () in
  if spans = [] then p "(no spans recorded — telemetry disabled or nothing instrumented ran)\n"
  else begin
    p "%-34s %9s %12s %12s %12s %12s\n" "span" "calls" "total ms" "self ms" "p50 ms" "p99 ms";
    List.iter
      (fun (a : Span.aggregate) ->
        p "%-34s %9d %12.3f %12.3f %12.3f %12.3f\n" a.Span.agg_name a.Span.agg_calls
          (Clock.ns_to_ms a.Span.agg_total_ns)
          (Clock.ns_to_ms a.Span.agg_self_ns)
          (a.Span.agg_p50_ns /. 1e6) (a.Span.agg_p99_ns /. 1e6))
      spans;
    if Span.dropped () > 0 then
      p "(%d span events dropped past the %d-event buffer)\n" (Span.dropped ()) Span.capacity
  end;
  let counters = List.filter (fun (_, v) -> v <> 0) (Counter.snapshot ()) in
  if counters <> [] then begin
    p "\ncounters (always on)\n";
    List.iter (fun (name, v) -> p "  %-34s %12d\n" name v) counters
  end;
  let histograms =
    List.filter (fun h -> h.Histogram.h_count > 0) (Histogram.snapshot ())
  in
  if histograms <> [] then begin
    p "\nhistograms (always on)\n";
    List.iter
      (fun h ->
        p "  %-34s count %-8d mean %-10.1f p50 %-10.1f p99 %-10.1f\n" h.Histogram.h_name
          h.Histogram.h_count
          (if h.Histogram.h_count = 0 then 0.0 else h.Histogram.h_sum /. float_of_int h.Histogram.h_count)
          h.Histogram.h_p50 h.Histogram.h_p99)
      histograms
  end;
  flush out

let chrome_trace_string () =
  let epoch = Span.epoch_ns () in
  let us_of ns = Int64.to_float (Int64.sub ns epoch) /. 1e3 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf s
  in
  let last_end = ref 0.0 in
  List.iter
    (fun (e : Span.event) ->
      let ts = us_of e.Span.ev_start_ns in
      let dur = Int64.to_float e.Span.ev_dur_ns /. 1e3 in
      if ts +. dur > !last_end then last_end := ts +. dur;
      emit
        (Printf.sprintf
           "{\"name\":%s,\"cat\":\"span\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1,\"args\":%s}"
           (jstr e.Span.ev_name) ts dur (jattrs e.Span.ev_attrs)))
    (Span.events ());
  let counters = List.filter (fun (_, v) -> v <> 0) (Counter.snapshot ()) in
  if counters <> [] then
    emit
      (Printf.sprintf "{\"name\":\"counters\",\"ph\":\"I\",\"ts\":%.3f,\"s\":\"g\",\"pid\":1,\"tid\":1,\"args\":{%s}}"
         !last_end
         (String.concat ","
            (List.map (fun (name, v) -> jstr name ^ ":" ^ string_of_int v) counters)));
  Buffer.add_string buf "]}";
  Buffer.contents buf

let jsonl_string () =
  let buf = Buffer.create 4096 in
  let line s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
  List.iter
    (fun (e : Span.event) ->
      line
        (Printf.sprintf "{\"type\":\"span\",\"name\":%s,\"start_ns\":%Ld,\"dur_ns\":%Ld,\"depth\":%d,\"attrs\":%s}"
           (jstr e.Span.ev_name) e.Span.ev_start_ns e.Span.ev_dur_ns e.Span.ev_depth
           (jattrs e.Span.ev_attrs)))
    (Span.events ());
  if Span.dropped () > 0 then
    line (Printf.sprintf "{\"type\":\"dropped_spans\",\"count\":%d}" (Span.dropped ()));
  List.iter
    (fun (name, v) ->
      if v <> 0 then line (Printf.sprintf "{\"type\":\"counter\",\"name\":%s,\"value\":%d}" (jstr name) v))
    (Counter.snapshot ());
  List.iter
    (fun h ->
      if h.Histogram.h_count > 0 then
        line
          (Printf.sprintf
             "{\"type\":\"histogram\",\"name\":%s,\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p99\":%s}"
             (jstr h.Histogram.h_name) h.Histogram.h_count (jfloat h.Histogram.h_sum)
             (jfloat h.Histogram.h_min) (jfloat h.Histogram.h_max) (jfloat h.Histogram.h_p50)
             (jfloat h.Histogram.h_p99)))
    (Histogram.snapshot ());
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_chrome_trace path = write_file path (chrome_trace_string ())
let write_jsonl path = write_file path (jsonl_string ())

let reset_all () =
  Counter.reset_all ();
  Histogram.reset_all ();
  Span.reset ()
