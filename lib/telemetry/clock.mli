(** The repo's single timing idiom: a monotone nanosecond clock.

    The OCaml distribution exposes no raw monotonic clock, so this is
    the wall clock clamped to be non-decreasing: a backwards NTP step
    can stall the clock momentarily but can never produce a negative
    span duration.  Resolution is that of [Unix.gettimeofday]
    (microseconds), which is far below the millisecond-scale kernels
    this repo times. *)

val now_ns : unit -> int64
(** Current monotone timestamp in nanoseconds.  The epoch is
    arbitrary (process wall clock); only differences are meaningful. *)

val elapsed_ns : since:int64 -> int64
(** [elapsed_ns ~since:t0] = [now_ns () - t0], never negative. *)

val ns_to_ms : int64 -> float

val ns_to_s : int64 -> float
