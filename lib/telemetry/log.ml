(* Leveled, domain-safe structured logging.

   One process-wide logger with two sinks: an ASCII line per event on
   stderr (human operators tailing a campaign) and an optional JSONL
   file (machines).  Events carry a message plus free-form key/value
   fields; both sinks render the same event, so grepping stderr and
   querying the JSONL never disagree.

   The level check is the hot path — call sites all over the simulator
   supervision layers fire [debug]/[info] unconditionally — so it is a
   single atomic load and an integer compare before any formatting or
   allocation happens.  Emission itself takes a mutex: worker domains
   in the evaluation engine's pool log their own restarts and journal
   writes, and interleaved half-lines would defeat the point of
   structured output. *)

type level = Debug | Info | Warn | Error

let int_of_level = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* Default Warn: a clean run is silent, supervision events (worker
   deaths, torn journals, degraded calibrations) always surface. *)
let threshold = Atomic.make (int_of_level Warn)

let set_level l = Atomic.set threshold (int_of_level l)

let level () =
  match Atomic.get threshold with
  | 0 -> Debug
  | 1 -> Info
  | 2 -> Warn
  | _ -> Error

let enabled l = int_of_level l >= Atomic.get threshold

let lines_counter = Counter.make "log.lines"

(* ---------------------------------------------------------------- sinks *)

let stderr_enabled = Atomic.make true
let set_stderr b = Atomic.set stderr_enabled b

let sink_mutex = Mutex.create ()
let jsonl_oc : out_channel option ref = ref None

let to_file path =
  Mutex.lock sink_mutex;
  (match !jsonl_oc with Some oc -> close_out oc | None -> ());
  jsonl_oc := Some (open_out path);
  Mutex.unlock sink_mutex

let close_file () =
  Mutex.lock sink_mutex;
  (match !jsonl_oc with Some oc -> close_out oc | None -> ());
  jsonl_oc := None;
  Mutex.unlock sink_mutex

(* ------------------------------------------------------------ rendering *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let ascii_line ~t ~l ~msg ~fields =
  let tm = Unix.gmtime t in
  let ms = int_of_float (Float.rem t 1.0 *. 1000.0) in
  let buf = Buffer.create 96 in
  Buffer.add_string buf
    (Printf.sprintf "%02d:%02d:%02d.%03d %-5s %s" tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
       ms (level_name l) msg);
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      (* Quote values an operator could mis-tokenise. *)
      if v <> "" && String.for_all (fun c -> c > ' ' && c <> '"' && c <> '=') v then
        Buffer.add_string buf v
      else begin
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape v);
        Buffer.add_char buf '"'
      end)
    fields;
  Buffer.contents buf

let json_line ~t ~l ~msg ~fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf {|{"ts_ns":%Ld,"level":"%s","msg":"%s"|}
       (Int64.of_float (t *. 1e9)) (level_name l) (escape msg));
  if fields <> [] then begin
    Buffer.add_string buf ",\"fields\":{";
    Buffer.add_string buf
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf {|"%s":"%s"|} (escape k) (escape v)) fields));
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let emit l msg fields =
  Counter.incr lines_counter;
  let t = Unix.gettimeofday () in
  Mutex.lock sink_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink_mutex)
    (fun () ->
      if Atomic.get stderr_enabled then begin
        output_string stderr (ascii_line ~t ~l ~msg ~fields);
        output_char stderr '\n';
        flush stderr
      end;
      match !jsonl_oc with
      | None -> ()
      | Some oc ->
        output_string oc (json_line ~t ~l ~msg ~fields);
        output_char oc '\n';
        flush oc)

let log l ?(fields = []) msg = if enabled l then emit l msg fields

let debug ?fields msg = log Debug ?fields msg
let info ?fields msg = log Info ?fields msg
let warn ?fields msg = log Warn ?fields msg
let error ?fields msg = log Error ?fields msg
