(* Cooperative cancellation.

   A token is a shared flag (plus an optional wall-clock deadline) that
   long-running kernels poll at bounded intervals — the sigma-delta
   inner loop checks every 4096 samples, the AFE chain every 4096
   samples, the experiment drivers between ensemble members.  Polling
   raises [Cancelled], which the supervision layer above (the
   evaluation engine, the fault campaign) converts into typed results;
   nothing below the service layer ever catches it.

   Tokens reach the kernels through domain-local storage so a token
   installed around a pool worker's evaluation is visible to every
   kernel that evaluation runs, without threading a parameter through
   the whole simulator.  A process-global interrupt flag (set from the
   CLI's SIGINT handler; an [Atomic.t], so async-signal-safe) is
   checked by every poll regardless of the installed token. *)

type t = {
  flag : bool Atomic.t;
  deadline_ns : int64 option;  (* absolute, gettimeofday scale *)
  reason : string;
}

exception Cancelled of string

(* Reason conventions: deadline tokens say [deadline_reason], so the
   layers that must tell a timeout from an interrupt (the fault
   campaign) can do so without carrying the token itself. *)
let deadline_reason = "deadline"

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let create ?(reason = "cancelled") () =
  { flag = Atomic.make false; deadline_ns = None; reason }

let with_deadline ?(reason = deadline_reason) seconds =
  let ns = Int64.add (now_ns ()) (Int64.of_float (Float.max 0.0 seconds *. 1e9)) in
  (* A non-positive deadline trips at creation; the lazy clock check
     below is strict, so within one clock tick it would miss. *)
  { flag = Atomic.make (seconds <= 0.0); deadline_ns = Some ns; reason }

let set t = Atomic.set t.flag true
let reason t = t.reason

let is_set t =
  Atomic.get t.flag
  ||
  match t.deadline_ns with
  | Some d when Int64.compare (now_ns ()) d > 0 ->
    (* Latch, so the token stays tripped even if the clock steps back. *)
    Atomic.set t.flag true;
    true
  | _ -> false

let remaining_s t =
  if Atomic.get t.flag then Some 0.0
  else
    match t.deadline_ns with
    | None -> None
    | Some d -> Some (Float.max 0.0 (Int64.to_float (Int64.sub d (now_ns ())) /. 1e9))

let check t = if is_set t then raise (Cancelled t.reason)

(* ------------------------------------------------- domain-local scope *)

let key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get key)

let with_token tok f =
  let slot = Domain.DLS.get key in
  let saved = !slot in
  slot := Some tok;
  Fun.protect ~finally:(fun () -> slot := saved) f

(* --------------------------------------------- process-global interrupt *)

let interrupt_flag = Atomic.make false
let interrupt_reason = Atomic.make "interrupt"

let interrupt ?(reason = "interrupt") () =
  Atomic.set interrupt_reason reason;
  Atomic.set interrupt_flag true

let interrupted () = Atomic.get interrupt_flag
let clear_interrupt () = Atomic.set interrupt_flag false

(* ------------------------------------------------------------- polling *)

let polls_counter = Counter.make "cancel.polls"
let cancels_counter = Counter.make "cancel.cancelled"

let poll () =
  Counter.incr polls_counter;
  (* Heartbeats ride the poll cadence: the monitor rate-limits
     internally and costs one atomic load when disabled. *)
  Monitor.tick ();
  if Atomic.get interrupt_flag then begin
    Counter.incr cancels_counter;
    raise (Cancelled (Atomic.get interrupt_reason))
  end;
  match current () with
  | None -> ()
  | Some t ->
    if is_set t then begin
      Counter.incr cancels_counter;
      raise (Cancelled t.reason)
    end

(* The simulator loops poll on a power-of-two cadence: cheap enough to
   sit inside the fused sigma-delta loop (one masked compare per
   sample, one DLS read per 4096), frequent enough that an 8192-sample
   capture hits at least two cancellation points. *)
let poll_mask = 4095

let tick_poll i = if i land poll_mask = 0 then poll ()
