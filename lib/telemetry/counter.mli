(** Process-global named counters.

    Counters are always on — they are a single unboxed-int store per
    event, so the hot kernels (SDM steps, FFT transforms, bench
    measurements, oracle queries) keep exact, deterministic tallies
    whether or not span tracing is enabled.  For a fixed seed, two
    runs of the same workload produce identical counter values. *)

type t

val make : string -> t
(** Register (or look up) the counter with this name.  Idempotent:
    calling [make] twice with one name returns the same counter, so
    modules can declare their counters at top level without
    coordinating. *)

val incr : t -> unit

val add : t -> int -> unit

val value : t -> int

val name : t -> string

val find : string -> t option
(** Look up a counter registered elsewhere, without creating it. *)

val snapshot : unit -> (string * int) list
(** All registered counters with their current values, sorted by name
    (deterministic order). *)

val reset_all : unit -> unit
(** Zero every registered counter (registrations are kept). *)
