(** The telemetry master switch.

    Counters and histograms are always on: they are plain integer
    arithmetic, deterministic for a fixed seed, and cheap enough to
    leave in the hot paths (see DESIGN.md, "Telemetry & profiling").
    Spans — which read the clock, allocate events, and keep a stack —
    are gated on this switch and cost one branch when disabled. *)

val enabled : unit -> bool
(** Whether span collection is active (default: off). *)

val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run [f] with the switch forced to the given state, restoring the
    previous state afterwards (also on exceptions). *)
