(* Live campaign monitoring.

   Three cooperating pieces:

   - a *progress board*: the campaign layers post completed/total cell
     counts here (and any subsystem can register a named gauge
     provider — the evaluation engine posts cache occupancy, pool lane
     state and deadline remaining);
   - a *heartbeat*: piggybacked on the cancellation-poll cadence the
     simulator inner loops already pay (every 4096 samples), a
     rate-limited snapshot line goes to {!Log} at info level;
   - a *scrape server*: an opt-in, single-threaded HTTP listener on
     loopback serving `GET /metrics` (OpenMetrics text: every
     registry plus the snapshot gauges) and `GET /healthz` (a small
     JSON liveness document).

   Everything is off by default and costs one atomic load per
   cancellation poll when off — the monitor must never show up in the
   bench numbers of an unmonitored run.  The scrape server runs in its
   own domain; it only reads atomics, module-initialisation-time
   registry tables and mutex-guarded monitor state, so a mid-run
   scrape perturbs nothing. *)

let active = Atomic.make false

let heartbeats_counter = Counter.make "monitor.heartbeats"
let scrapes_counter = Counter.make "monitor.scrapes"

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* ------------------------------------------------------- progress board *)

type progress = {
  mutable completed : int;
  mutable total : int;
  mutable started_ns : int64;  (* first post; 0L = never *)
  mutable updated_ns : int64;
}

let board = { completed = 0; total = 0; started_ns = 0L; updated_ns = 0L }
let board_mutex = Mutex.create ()

let set_progress ~completed ~total =
  Mutex.lock board_mutex;
  let t = now_ns () in
  if board.started_ns = 0L then board.started_ns <- t;
  board.completed <- completed;
  board.total <- total;
  board.updated_ns <- t;
  Mutex.unlock board_mutex

let providers : (string * (unit -> (string * float) list)) list ref = ref []
let providers_mutex = Mutex.create ()

let register name f =
  Mutex.lock providers_mutex;
  providers := (name, f) :: List.remove_assoc name !providers;
  Mutex.unlock providers_mutex

let provider_gauges () =
  Mutex.lock providers_mutex;
  let ps = !providers in
  Mutex.unlock providers_mutex;
  List.concat_map
    (fun (_, f) -> match f () with gs -> gs | exception _ -> [])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) ps)

(* -------------------------------------------------------------- snapshot *)

type snapshot = {
  completed : int;
  total : int;
  elapsed_s : float;
  eta_s : float option;
  cache_hit_rate : float option;
  gauges : (string * float) list;
}

let counter_value name = Option.map Counter.value (Counter.find name)

let cache_hit_rate () =
  match counter_value "engine.cache.hit", counter_value "engine.cache.miss" with
  | Some h, Some m when h + m > 0 -> Some (float_of_int h /. float_of_int (h + m))
  | _ -> None

let snapshot () =
  Mutex.lock board_mutex;
  let completed = board.completed
  and total = board.total
  and started = board.started_ns in
  Mutex.unlock board_mutex;
  let elapsed_s =
    if started = 0L then 0.0 else Int64.to_float (Int64.sub (now_ns ()) started) /. 1e9
  in
  let eta_s =
    if completed > 0 && total > completed && started <> 0L then
      Some (elapsed_s /. float_of_int completed *. float_of_int (total - completed))
    else None
  in
  {
    completed;
    total;
    elapsed_s;
    eta_s;
    cache_hit_rate = cache_hit_rate ();
    gauges = provider_gauges ();
  }

let gauges () =
  let s = snapshot () in
  let open Openmetrics in
  [
    gauge ~help:"campaign cells completed" "campaign_cells_completed" (float_of_int s.completed);
    gauge ~help:"campaign cells planned" "campaign_cells_planned" (float_of_int s.total);
  ]
  @ (match s.eta_s with
    | Some eta -> [ gauge ~help:"estimated seconds to completion" "campaign_eta_seconds" eta ]
    | None -> [])
  @ (match s.cache_hit_rate with
    | Some r -> [ gauge ~help:"engine result-cache hit rate" "engine_cache_hit_rate" r ]
    | None -> [])
  @ List.map (fun (name, v) -> gauge name v) s.gauges

let metrics_body () = Openmetrics.render ~gauges:(gauges ()) ()

(* ------------------------------------------------------------- heartbeat *)

let interval_ns = Atomic.make 1_000_000_000  (* 1 s *)
let last_beat_ns = Atomic.make 0L
let beat_mutex = Mutex.create ()

let heartbeat_fields () =
  let s = snapshot () in
  let pct =
    if s.total = 0 then "-"
    else Printf.sprintf "%.0f%%" (100.0 *. float_of_int s.completed /. float_of_int s.total)
  in
  [
    ("progress", Printf.sprintf "%d/%d" s.completed s.total);
    ("pct", pct);
    ("eta_s", match s.eta_s with Some e -> Printf.sprintf "%.0f" e | None -> "-");
    ( "cache_hit",
      match s.cache_hit_rate with Some r -> Printf.sprintf "%.2f" r | None -> "-" );
  ]
  @ List.map (fun (name, v) -> (name, Printf.sprintf "%g" v)) s.gauges

let beat () =
  Counter.incr heartbeats_counter;
  Log.info ~fields:(heartbeat_fields ()) "heartbeat"

(* Called from [Cancel.poll] — every 4096 simulator samples on
   whichever domain runs them.  One atomic load when monitoring is
   off; when on, a clock read amortised by the rate limit and a
   try-lock so two domains never double-beat. *)
let tick () =
  if Atomic.get active then begin
    let now = now_ns () in
    let last = Atomic.get last_beat_ns in
    if Int64.sub now last >= Int64.of_int (Atomic.get interval_ns) && Mutex.try_lock beat_mutex
    then
      Fun.protect
        ~finally:(fun () -> Mutex.unlock beat_mutex)
        (fun () ->
          (* Re-check under the lock: another domain may have beaten
             between the load and the lock. *)
          if Int64.sub now (Atomic.get last_beat_ns) >= Int64.of_int (Atomic.get interval_ns)
          then begin
            Atomic.set last_beat_ns now;
            beat ()
          end)
  end

let set_heartbeat ?interval_s on =
  (match interval_s with
  | Some s when s > 0.0 -> Atomic.set interval_ns (int_of_float (s *. 1e9))
  | _ -> ());
  Atomic.set active on

(* ---------------------------------------------------------- HTTP scrape *)

let escape_json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let healthz_body () =
  let s = snapshot () in
  let restarts = Option.value (counter_value "pool.worker.restarts") ~default:0 in
  let opt_num = function Some v when Float.is_finite v -> Printf.sprintf "%.3f" v | _ -> "null" in
  let deadline = List.assoc_opt "engine_deadline_remaining_seconds" s.gauges in
  Printf.sprintf
    {|{"status":"ok","completed":%d,"total":%d,"elapsed_s":%s,"eta_s":%s,"cache_hit_rate":%s,"pool_restarts":%d,"deadline_remaining_s":%s,"engine_hash":"%s"}|}
    s.completed s.total
    (Printf.sprintf "%.3f" s.elapsed_s)
    (opt_num s.eta_s) (opt_num s.cache_hit_rate) restarts (opt_num deadline)
    (escape_json (Manifest.engine_hash ()))

type server = {
  sock : Unix.file_descr;
  srv_port : int;
  shutdown : bool Atomic.t;
  mutable domain : unit Domain.t option;
}

let server : server option ref = ref None
let server_mutex = Mutex.create ()

let http_response ~status ~content_type body =
  Printf.sprintf "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let openmetrics_content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8"

let handle_request raw =
  let first_line = match String.index_opt raw '\r' with
    | Some i -> String.sub raw 0 i
    | None -> (match String.index_opt raw '\n' with Some i -> String.sub raw 0 i | None -> raw)
  in
  match String.split_on_char ' ' first_line with
  | "GET" :: path :: _ -> (
    let path = match String.index_opt path '?' with Some i -> String.sub path 0 i | None -> path in
    match path with
    | "/metrics" ->
      Counter.incr scrapes_counter;
      http_response ~status:"200 OK" ~content_type:openmetrics_content_type (metrics_body ())
    | "/healthz" ->
      http_response ~status:"200 OK" ~content_type:"application/json" (healthz_body ())
    | _ -> http_response ~status:"404 Not Found" ~content_type:"text/plain" "not found\n")
  | _ -> http_response ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n"

let serve_client fd =
  (* One bounded read is enough for a scrape request line; anything
     longer is not a client we serve. *)
  let buf = Bytes.create 4096 in
  match Unix.read fd buf 0 4096 with
  | exception Unix.Unix_error _ -> ()
  | 0 -> ()
  | n ->
    let response = handle_request (Bytes.sub_string buf 0 n) in
    let pos = ref 0 in
    (try
       while !pos < String.length response do
         pos := !pos + Unix.write_substring fd response !pos (String.length response - !pos)
       done
     with Unix.Unix_error _ -> ())

let rec accept_loop srv =
  if not (Atomic.get srv.shutdown) then begin
    match Unix.select [ srv.sock ] [] [] 0.25 with
    | [], _, _ -> accept_loop srv
    | _ :: _, _, _ ->
      (match Unix.accept srv.sock with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> serve_client fd));
      accept_loop srv
    | exception Unix.Unix_error _ -> ()
  end

let stop_server () =
  Mutex.lock server_mutex;
  let s = !server in
  server := None;
  Mutex.unlock server_mutex;
  match s with
  | None -> ()
  | Some srv ->
    Atomic.set srv.shutdown true;
    Option.iter Domain.join srv.domain;
    (try Unix.close srv.sock with Unix.Unix_error _ -> ())

let start_server ~port =
  Mutex.lock server_mutex;
  let already = !server <> None in
  Mutex.unlock server_mutex;
  if already then Error "monitor: scrape server already running"
  else begin
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    match Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "monitor: cannot bind port %d: %s" port (Unix.error_message err))
    | () ->
      Unix.listen sock 16;
      let srv_port =
        match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
      in
      let srv = { sock; srv_port; shutdown = Atomic.make false; domain = None } in
      srv.domain <- Some (Domain.spawn (fun () -> accept_loop srv));
      Mutex.lock server_mutex;
      server := Some srv;
      Mutex.unlock server_mutex;
      Atomic.set active true;
      at_exit stop_server;
      Log.info
        ~fields:[ ("port", string_of_int srv_port); ("endpoints", "/metrics /healthz") ]
        "monitor: scrape server listening";
      Ok srv_port
  end

let server_port () =
  Mutex.lock server_mutex;
  let p = Option.map (fun s -> s.srv_port) !server in
  Mutex.unlock server_mutex;
  p

let reset () =
  Atomic.set active false;
  Atomic.set last_beat_ns 0L;
  Mutex.lock board_mutex;
  board.completed <- 0;
  board.total <- 0;
  board.started_ns <- 0L;
  board.updated_ns <- 0L;
  Mutex.unlock board_mutex
