(** Renderers for the collected telemetry.

    Three formats, one collection pass:
    - {!summary_table}: ASCII roll-up for terminals (the `--metrics`
      flag and `repro profile`);
    - {!write_chrome_trace}: Chrome [trace_event] JSON, loadable
      directly in [chrome://tracing] / Perfetto (`--trace FILE`);
    - {!write_jsonl}: one JSON object per line — spans first, then
      counters and histograms (`--trace-jsonl FILE`). *)

val summary_table : ?out:out_channel -> unit -> unit
(** Span aggregates (calls, total/self time, p50/p99) sorted by total
    time, followed by the non-zero counters and non-empty histograms.
    Prints to [stdout] by default. *)

val chrome_trace_string : unit -> string
(** The trace as a Chrome [trace_event] JSON object: one complete
    ("ph":"X") event per span, timestamps in microseconds relative to
    the trace epoch, counters attached as a final instant event. *)

val write_chrome_trace : string -> unit
(** Write {!chrome_trace_string} to the given path. *)

val jsonl_string : unit -> string

val write_jsonl : string -> unit

val reset_all : unit -> unit
(** Zero counters and histograms and drop all span state — the
    process-global registry's reset, used between runs and by tests. *)
