(** Monotonic-clock spans over the instrumented kernels.

    A span is one timed, named region of execution.  Spans nest: each
    completion is attributed to its per-name aggregate (call count,
    total time, self time = total minus enclosed child spans, duration
    quantiles) and appended to the per-run event buffer that the
    {!Export} module renders as a Chrome trace or JSONL stream.

    Spans only record while {!Control.enabled} is set; disabled, a
    span is one branch plus the closure the caller already built, so
    the golden-path numerics and bench figures are unchanged. *)

val with_ : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a span.  The span is closed (and
    recorded) even if [f] raises.  [attrs] are free-form key/value
    annotations carried into the exporters ([args] in Chrome traces). *)

type event = {
  ev_name : string;
  ev_attrs : (string * string) list;
  ev_start_ns : int64;  (** absolute {!Clock} timestamp *)
  ev_dur_ns : int64;
  ev_depth : int;       (** nesting depth at entry, 0 = root *)
}

type aggregate = {
  agg_name : string;
  agg_calls : int;
  agg_total_ns : int64;
  agg_self_ns : int64;  (** total minus time in enclosed spans *)
  agg_p50_ns : float;
  agg_p99_ns : float;
}

val aggregates : unit -> aggregate list
(** Per-name roll-up of every completed span, sorted by total time
    (descending), name as tiebreak. *)

val events : unit -> event list
(** Completed spans in completion order (a child precedes its
    parent).  Bounded: past {!capacity} events, new completions are
    dropped and counted instead. *)

val epoch_ns : unit -> int64
(** Start timestamp of the earliest recorded span (the trace origin);
    [now_ns] if nothing was recorded yet. *)

val capacity : int

val dropped : unit -> int

val reset : unit -> unit
(** Drop aggregates, events, epoch and the dropped count.  Must not be
    called from inside an active span. *)
