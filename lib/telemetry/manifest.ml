(* Run provenance.

   A manifest is the who/what/when of one run: the exact argv, the
   seed it encodes, a content hash of the running executable (the
   "engine"), a digest of the effective configuration, the compiler
   version, and start/end timestamps with the exit status.  One is
   written next to every report produced under live monitoring, and
   the engine hash is embedded in checkpoint journal headers so a
   resume can tell when it is replaying values produced by different
   code.

   Serialisation is a single flat JSON object (argv as a string
   array), parsed back by the same kind of minimal reader the
   checkpoint journal uses — strings, integers, null and string
   arrays, nothing more. *)

type t = {
  schema : int;
  argv : string list;
  seed : int option;
  engine_hash : string;
  config_digest : string;
  ocaml_version : string;
  hostname : string;
  start_ns : int64;
  mutable end_ns : int64 option;
  mutable exit_status : int option;
}

let schema_version = 1

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* MD5 of the running binary: the closest thing to a content address
   of "the engine" available without new dependencies.  Memoised —
   hashing a multi-megabyte executable is not free and the answer
   cannot change mid-process. *)
let engine_hash =
  let memo = lazy (try Digest.to_hex (Digest.file Sys.executable_name) with _ -> "unknown") in
  fun () -> Lazy.force memo

let config_digest_of argv = Digest.to_hex (Digest.string (String.concat "\x00" argv))

(* The seed is CLI provenance, so read it back out of argv rather than
   threading a parameter through every subcommand. *)
let seed_of_argv argv =
  let rec go = function
    | [] -> None
    | arg :: rest ->
      let prefixed p = String.length arg > String.length p && String.sub arg 0 (String.length p) = p in
      if arg = "--seed" then
        match rest with
        | v :: _ -> int_of_string_opt v
        | [] -> None
      else if prefixed "--seed=" then int_of_string_opt (String.sub arg 7 (String.length arg - 7))
      else go rest
  in
  go argv

let create ?argv ?seed () =
  let argv = match argv with Some a -> a | None -> Array.to_list Sys.argv in
  {
    schema = schema_version;
    argv;
    seed = (match seed with Some _ -> seed | None -> seed_of_argv argv);
    engine_hash = engine_hash ();
    config_digest = config_digest_of argv;
    ocaml_version = Sys.ocaml_version;
    hostname = Unix.gethostname ();
    start_ns = now_ns ();
    end_ns = None;
    exit_status = None;
  }

let finish ?exit_status t =
  t.end_ns <- Some (now_ns ());
  t.exit_status <- exit_status

(* -------------------------------------------------------------- to JSON *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let opt_int = function None -> "null" | Some i -> string_of_int i in
  let opt_int64 = function None -> "null" | Some i -> Printf.sprintf "%Ld" i in
  Printf.sprintf
    {|{"type":"manifest","schema":%d,"argv":[%s],"seed":%s,"engine_hash":"%s","config_digest":"%s","ocaml_version":"%s","hostname":"%s","start_ns":%Ld,"end_ns":%s,"exit_status":%s}|}
    t.schema
    (String.concat "," (List.map (fun a -> "\"" ^ escape a ^ "\"") t.argv))
    (opt_int t.seed) (escape t.engine_hash) (escape t.config_digest) (escape t.ocaml_version)
    (escape t.hostname) t.start_ns (opt_int64 t.end_ns) (opt_int t.exit_status)

(* ------------------------------------------------------------ from JSON *)

type jv = S of string | I of int64 | A of string list | Null

exception Bad of string

let parse_flat line =
  let n = String.length line in
  let i = ref 0 in
  let skip_ws () =
    while
      !i < n && (line.[!i] = ' ' || line.[!i] = '\t' || line.[!i] = '\r' || line.[!i] = '\n')
    do
      incr i
    done
  in
  let expect c =
    skip_ws ();
    if !i < n && line.[!i] = c then incr i
    else raise (Bad (Printf.sprintf "expected '%c' at byte %d" c !i))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec go () =
      if !i >= n then raise (Bad "unterminated string");
      let c = line.[!i] in
      incr i;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !i >= n then raise (Bad "truncated escape");
        let e = line.[!i] in
        incr i;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !i + 4 > n then raise (Bad "truncated \\u escape");
          let code =
            try int_of_string ("0x" ^ String.sub line !i 4) with _ -> raise (Bad "bad \\u escape")
          in
          i := !i + 4;
          Buffer.add_char buf (Char.chr (code land 0xff))
        | _ -> raise (Bad "unknown escape"));
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_int () =
    let start = !i in
    if !i < n && line.[!i] = '-' then incr i;
    while !i < n && line.[!i] >= '0' && line.[!i] <= '9' do
      incr i
    done;
    if !i = start then raise (Bad "unrecognised value");
    match Int64.of_string_opt (String.sub line start (!i - start)) with
    | Some v -> v
    | None -> raise (Bad "bad integer")
  in
  let parse_value () =
    skip_ws ();
    if !i >= n then raise (Bad "missing value")
    else if line.[!i] = '"' then S (parse_string ())
    else if line.[!i] = '[' then begin
      incr i;
      skip_ws ();
      if !i < n && line.[!i] = ']' then begin
        incr i;
        A []
      end
      else begin
        let items = ref [] in
        let parsing = ref true in
        while !parsing do
          items := parse_string () :: !items;
          skip_ws ();
          if !i < n && line.[!i] = ',' then incr i
          else begin
            expect ']';
            parsing := false
          end
        done;
        A (List.rev !items)
      end
    end
    else if !i + 4 <= n && String.sub line !i 4 = "null" then begin
      i := !i + 4;
      Null
    end
    else I (parse_int ())
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if !i < n && line.[!i] = '}' then incr i
  else begin
    let parsing = ref true in
    while !parsing do
      let k = parse_string () in
      expect ':';
      let v = parse_value () in
      fields := (k, v) :: !fields;
      skip_ws ();
      if !i < n && line.[!i] = ',' then incr i
      else begin
        expect '}';
        parsing := false
      end
    done
  end;
  skip_ws ();
  if !i <> n then raise (Bad "trailing bytes after object");
  List.rev !fields

let of_json s =
  match parse_flat s with
  | exception Bad reason -> Error reason
  | fields -> (
    let find name =
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise (Bad (Printf.sprintf "missing field %S" name))
    in
    let str name = match find name with S s -> s | _ -> raise (Bad (name ^ " must be a string")) in
    let int64 name = match find name with I v -> v | _ -> raise (Bad (name ^ " must be an integer")) in
    try
      (match find "type" with
      | S "manifest" -> ()
      | _ -> raise (Bad "not a manifest"));
      let schema = Int64.to_int (int64 "schema") in
      if schema <> schema_version then
        raise (Bad (Printf.sprintf "unsupported manifest schema %d" schema));
      Ok
        {
          schema;
          argv = (match find "argv" with A a -> a | _ -> raise (Bad "argv must be an array"));
          seed =
            (match find "seed" with
            | Null -> None
            | I v -> Some (Int64.to_int v)
            | _ -> raise (Bad "seed must be an integer or null"));
          engine_hash = str "engine_hash";
          config_digest = str "config_digest";
          ocaml_version = str "ocaml_version";
          hostname = str "hostname";
          start_ns = int64 "start_ns";
          end_ns =
            (match find "end_ns" with
            | Null -> None
            | I v -> Some v
            | _ -> raise (Bad "end_ns must be an integer or null"));
          exit_status =
            (match find "exit_status" with
            | Null -> None
            | I v -> Some (Int64.to_int v)
            | _ -> raise (Bad "exit_status must be an integer or null"));
        }
    with Bad reason -> Error reason)

let write path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')

let read path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | raw -> of_json (String.trim raw)
