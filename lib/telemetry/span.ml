type event = {
  ev_name : string;
  ev_attrs : (string * string) list;
  ev_start_ns : int64;
  ev_dur_ns : int64;
  ev_depth : int;
}

type aggregate = {
  agg_name : string;
  agg_calls : int;
  agg_total_ns : int64;
  agg_self_ns : int64;
  agg_p50_ns : float;
  agg_p99_ns : float;
}

type agg = {
  a_name : string;
  mutable a_calls : int;
  mutable a_total_ns : int64;
  mutable a_self_ns : int64;
  a_durations : Histogram.t;
}

type frame = {
  f_agg : agg;
  f_attrs : (string * string) list;
  f_start : int64;
  f_depth : int;
  mutable f_child_ns : int64;
}

let capacity = 1_000_000
let aggs : (string, agg) Hashtbl.t = Hashtbl.create 32

(* Guards structural mutation of [aggs] against concurrent reads from
   the monitor's scrape domain.  Only paid when spans are enabled, and
   [aggregates]/[reset] are snapshot-time operations — the per-span
   hot path touches the lock only on the first occurrence of a name. *)
let aggs_mutex = Mutex.create ()

let stack : frame list ref = ref []
let events_rev : event list ref = ref []
let n_events = ref 0
let n_dropped = ref 0
let epoch = ref None

let agg_of name =
  match Hashtbl.find_opt aggs name with
  | Some a -> a
  | None ->
    let a =
      {
        a_name = name;
        a_calls = 0;
        a_total_ns = 0L;
        a_self_ns = 0L;
        a_durations = Histogram.unregistered name;
      }
    in
    Mutex.lock aggs_mutex;
    (match Hashtbl.find_opt aggs name with
    | Some existing ->
      Mutex.unlock aggs_mutex;
      existing
    | None ->
      Hashtbl.add aggs name a;
      Mutex.unlock aggs_mutex;
      a)

let finish frame =
  let dur = Clock.elapsed_ns ~since:frame.f_start in
  (match !stack with
  | top :: rest when top == frame -> stack := rest
  | _ -> () (* unbalanced finish: enable flag flipped mid-span *));
  let a = frame.f_agg in
  a.a_calls <- a.a_calls + 1;
  a.a_total_ns <- Int64.add a.a_total_ns dur;
  let self = Int64.sub dur frame.f_child_ns in
  let self = if Int64.compare self 0L < 0 then 0L else self in
  a.a_self_ns <- Int64.add a.a_self_ns self;
  Histogram.observe a.a_durations (Int64.to_float dur);
  (match !stack with
  | parent :: _ -> parent.f_child_ns <- Int64.add parent.f_child_ns dur
  | [] -> ());
  if !n_events >= capacity then incr n_dropped
  else begin
    incr n_events;
    events_rev :=
      {
        ev_name = a.a_name;
        ev_attrs = frame.f_attrs;
        ev_start_ns = frame.f_start;
        ev_dur_ns = dur;
        ev_depth = frame.f_depth;
      }
      :: !events_rev
  end

(* The span stack and event buffer are single-domain structures.  Spans
   are only recorded on the domain that initialised telemetry (the main
   domain); worker domains in the evaluation engine's pool run the
   traced code without recording, which keeps traces well-nested and
   race-free.  Counters and histograms remain exact on all domains. *)
let main_domain = Domain.self ()

let[@inline never] record ~attrs ~name f =
  if Domain.self () <> main_domain then f ()
  else begin
    let start = Clock.now_ns () in
    if !epoch = None then epoch := Some start;
    let frame =
      { f_agg = agg_of name; f_attrs = attrs; f_start = start; f_depth = List.length !stack;
        f_child_ns = 0L }
    in
    stack := frame :: !stack;
    Fun.protect ~finally:(fun () -> finish frame) f
  end

(* Split so the disabled case — the default in production runs — is a
   single flag load and a branch, inlinable at every call site; all
   recording machinery lives behind a never-inlined slow path. *)
let[@inline] with_ ?(attrs = []) ~name f =
  if not (Control.enabled ()) then f () else record ~attrs ~name f

let aggregates () =
  Mutex.lock aggs_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock aggs_mutex) @@ fun () ->
  Hashtbl.fold
    (fun _ a acc ->
      {
        agg_name = a.a_name;
        agg_calls = a.a_calls;
        agg_total_ns = a.a_total_ns;
        agg_self_ns = a.a_self_ns;
        agg_p50_ns = Histogram.quantile a.a_durations 0.5;
        agg_p99_ns = Histogram.quantile a.a_durations 0.99;
      }
      :: acc)
    aggs []
  |> List.sort (fun x y ->
         match Int64.compare y.agg_total_ns x.agg_total_ns with
         | 0 -> String.compare x.agg_name y.agg_name
         | c -> c)

let events () = List.rev !events_rev

let epoch_ns () =
  match !epoch with
  | Some t -> t
  | None -> Clock.now_ns ()

let dropped () = !n_dropped

let reset () =
  Mutex.lock aggs_mutex;
  Hashtbl.reset aggs;
  Mutex.unlock aggs_mutex;
  stack := [];
  events_rev := [];
  n_events := 0;
  n_dropped := 0;
  epoch := None
