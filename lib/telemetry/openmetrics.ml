(* OpenMetrics / Prometheus text exposition of the telemetry registries.

   Renders the always-on counter and histogram registries (and, when
   span recording is enabled, the span aggregates) in the OpenMetrics
   text format, ready for a `GET /metrics` scrape or a textfile
   collector.  Counters become `<name>_total`; histograms and span
   aggregates become summaries (quantile series + `_sum`/`_count`),
   which carries exactly what the log-bucket histograms can answer
   without inventing cumulative buckets they do not keep.

   Metric names are sanitised to the OpenMetrics charset: every byte
   outside [a-zA-Z0-9_:] maps to '_', and everything is prefixed
   "repro_" so scrapes from several tools never collide.  The
   registries are safe to render from the scrape server's domain:
   counters are atomics, histogram tables are populated at module
   initialisation, and the span table takes its registration lock. *)

type gauge = {
  g_name : string;  (* unsanitised; unit suffix included by the caller *)
  g_labels : (string * string) list;
  g_value : float;
  g_help : string;
}

let gauge ?(labels = []) ?(help = "") name value =
  { g_name = name; g_labels = labels; g_value = value; g_help = help }

let sanitize name =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
         || c = ':'
      then c
      else '_')
    name

let metric_name name = "repro_" ^ sanitize name

(* Label values escape backslash, double quote and newline, per the
   exposition-format grammar. *)
let escape_label v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_string = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v)) labels)
    ^ "}"

let number v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let add_meta buf ~name ~mtype ~help =
  Printf.bprintf buf "# TYPE %s %s\n" name mtype;
  if help <> "" then Printf.bprintf buf "# HELP %s %s\n" name (escape_label help)

let render ?(gauges = []) () =
  let buf = Buffer.create 4096 in
  (* Counters, name-sorted (Counter.snapshot sorts). *)
  List.iter
    (fun (name, v) ->
      let name = metric_name name ^ "_total" in
      add_meta buf ~name ~mtype:"counter" ~help:"";
      Printf.bprintf buf "%s %d\n" name v)
    (Counter.snapshot ());
  (* Histograms as summaries. *)
  List.iter
    (fun (h : Histogram.summary) ->
      if h.Histogram.h_count > 0 then begin
        let name = metric_name h.Histogram.h_name in
        add_meta buf ~name ~mtype:"summary" ~help:"";
        Printf.bprintf buf "%s{quantile=\"0.5\"} %s\n" name (number h.Histogram.h_p50);
        Printf.bprintf buf "%s{quantile=\"0.9\"} %s\n" name (number h.Histogram.h_p90);
        Printf.bprintf buf "%s{quantile=\"0.99\"} %s\n" name (number h.Histogram.h_p99);
        Printf.bprintf buf "%s_sum %s\n" name (number h.Histogram.h_sum);
        Printf.bprintf buf "%s_count %d\n" name h.Histogram.h_count
      end)
    (Histogram.snapshot ());
  (* Span aggregates, one labelled series set (empty unless span
     recording is on). *)
  let spans = Span.aggregates () in
  if spans <> [] then begin
    add_meta buf ~name:"repro_span_calls_total" ~mtype:"counter"
      ~help:"completed spans per name";
    List.iter
      (fun (a : Span.aggregate) ->
        Printf.bprintf buf "repro_span_calls_total{span=\"%s\"} %d\n"
          (escape_label a.Span.agg_name) a.Span.agg_calls)
      spans;
    add_meta buf ~name:"repro_span_total_seconds" ~mtype:"gauge"
      ~help:"cumulative wall time per span name";
    List.iter
      (fun (a : Span.aggregate) ->
        Printf.bprintf buf "repro_span_total_seconds{span=\"%s\"} %s\n"
          (escape_label a.Span.agg_name)
          (number (Int64.to_float a.Span.agg_total_ns /. 1e9)))
      spans;
    add_meta buf ~name:"repro_span_self_seconds" ~mtype:"gauge"
      ~help:"cumulative self time per span name";
    List.iter
      (fun (a : Span.aggregate) ->
        Printf.bprintf buf "repro_span_self_seconds{span=\"%s\"} %s\n"
          (escape_label a.Span.agg_name)
          (number (Int64.to_float a.Span.agg_self_ns /. 1e9)))
      spans
  end;
  (* Caller-supplied gauges (the monitor's heartbeat snapshot). *)
  List.iter
    (fun g ->
      let name = metric_name g.g_name in
      add_meta buf ~name ~mtype:"gauge" ~help:g.g_help;
      Printf.bprintf buf "%s%s %s\n" name (labels_string g.g_labels) (number g.g_value))
    gauges;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
