(** Process-global named histograms with log-scale buckets.

    Like counters, histograms are always on and allocation-free per
    observation: each [observe] updates a fixed bucket array plus
    count/sum/min/max.  Buckets are geometric with ratio 2^(1/4)
    (quarter-octave), so quantile estimates carry at most ~9% bucket
    error over a range from 2^-8 to 2^56 — plenty for FFT sizes and
    nanosecond durations alike.  Exact count, sum, min and max are
    tracked alongside, and quantiles are clamped into [min, max]. *)

type t

val make : string -> t
(** Register (or look up) the histogram with this name.  Idempotent,
    like {!Counter.make}. *)

val unregistered : string -> t
(** A private histogram outside the global registry (used by
    {!Span} for per-name duration distributions). *)

val observe : t -> float -> unit
(** Record one observation.  Non-finite values are counted but do not
    enter the buckets, so a NaN cannot poison the quantiles. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
(** [nan] while empty. *)

val max_value : t -> float
(** [nan] while empty. *)

val quantile : t -> float -> float
(** [quantile t q] for q in [0, 1]; [nan] while empty. *)

val name : t -> string
val find : string -> t option

type summary = {
  h_name : string;
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

val summarize : t -> summary

val snapshot : unit -> summary list
(** Every registered histogram, sorted by name. *)

val reset_all : unit -> unit
