(** Leveled, domain-safe structured logging.

    One process-wide logger, two sinks: ASCII lines on stderr (on by
    default) and an optional JSONL file.  Events carry a message and
    free-form key/value fields.  Call sites below the emission
    threshold cost one atomic load and an integer compare — no
    formatting, no allocation — so [debug]/[info] calls can sit on
    supervision paths unconditionally.  Emission is mutex-serialised,
    so worker domains in the evaluation engine's pool can log without
    interleaving.

    The default level is [Warn]: a healthy run is silent on stderr
    while worker restarts, torn journals and degraded calibrations
    always surface. *)

type level = Debug | Info | Warn | Error

val set_level : level -> unit
val level : unit -> level

val enabled : level -> bool
(** [enabled l] is true when a log call at [l] would emit — the guard
    to use before building expensive fields. *)

val level_name : level -> string
val level_of_string : string -> level option
(** Accepts ["debug"|"info"|"warn"|"warning"|"error"], any case. *)

val set_stderr : bool -> unit
(** Enable/disable the ASCII stderr sink (default enabled). *)

val to_file : string -> unit
(** Open (truncating) a JSONL sink at the path; one
    [{"ts_ns":..,"level":..,"msg":..,"fields":{..}}] object per line.
    Replaces any previously opened sink. *)

val close_file : unit -> unit

val debug : ?fields:(string * string) list -> string -> unit
val info : ?fields:(string * string) list -> string -> unit
val warn : ?fields:(string * string) list -> string -> unit
val error : ?fields:(string * string) list -> string -> unit

val log : level -> ?fields:(string * string) list -> string -> unit
