let n_buckets = 256

(* Bucket 0 collects everything <= 2^-8; bucket i >= 1 covers the
   quarter-octave [2^((i-1)/4 - 8), 2^(i/4 - 8)). *)
let bucket_of v =
  if v <= 0.0 then 0
  else
    let idx = 1 + int_of_float (Float.floor (4.0 *. (Float.log2 v +. 8.0))) in
    if idx < 0 then 0 else if idx >= n_buckets then n_buckets - 1 else idx

let bucket_midpoint i =
  if i = 0 then 0.0 else Float.exp2 (((float_of_int i -. 0.5) /. 4.0) -. 8.0)

type t = {
  name : string;
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  lock : Mutex.t;
}

let create name =
  { name; buckets = Array.make n_buckets 0; count = 0; sum = 0.0; min_v = nan; max_v = nan;
    lock = Mutex.create () }

let table : (string, t) Hashtbl.t = Hashtbl.create 32

let make name =
  match Hashtbl.find_opt table name with
  | Some h -> h
  | None ->
    let h = create name in
    Hashtbl.add table name h;
    h

let unregistered name = create name

(* [observe] is the one histogram entry point reachable from worker
   domains (the FFT hot path runs inside the evaluation engine's pool),
   so it takes the per-histogram lock.  Reads (quantile/summarize) run
   on the main domain after workers have quiesced between batches. *)
let observe t v =
  Mutex.lock t.lock;
  t.count <- t.count + 1;
  if Float.is_finite v then begin
    t.sum <- t.sum +. v;
    if Float.is_nan t.min_v || v < t.min_v then t.min_v <- v;
    if Float.is_nan t.max_v || v > t.max_v then t.max_v <- v;
    let i = bucket_of v in
    t.buckets.(i) <- t.buckets.(i) + 1
  end;
  Mutex.unlock t.lock

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count
let min_value t = t.min_v
let max_value t = t.max_v
let name t = t.name
let find name = Hashtbl.find_opt table name

let quantile t q =
  if t.count = 0 then nan
  else begin
    let bucketed = Array.fold_left ( + ) 0 t.buckets in
    if bucketed = 0 then nan
    else begin
      let target = Float.max 1.0 (Float.round (q *. float_of_int bucketed)) in
      let target = int_of_float (Float.min target (float_of_int bucketed)) in
      let acc = ref 0 and result = ref t.max_v in
      (try
         for i = 0 to n_buckets - 1 do
           acc := !acc + t.buckets.(i);
           if !acc >= target then begin
             result := bucket_midpoint i;
             raise Exit
           end
         done
       with Exit -> ());
      (* The bucket midpoint can fall outside the observed range at the
         ends; the exact min/max are tighter bounds. *)
      Float.min t.max_v (Float.max t.min_v !result)
    end
  end

type summary = {
  h_name : string;
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

let summarize t =
  {
    h_name = t.name;
    h_count = t.count;
    h_sum = t.sum;
    h_min = t.min_v;
    h_max = t.max_v;
    h_p50 = quantile t 0.5;
    h_p90 = quantile t 0.9;
    h_p99 = quantile t 0.99;
  }

let snapshot () =
  Hashtbl.fold (fun _ h acc -> summarize h :: acc) table []
  |> List.sort (fun a b -> String.compare a.h_name b.h_name)

let reset t =
  Array.fill t.buckets 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min_v <- nan;
  t.max_v <- nan

let reset_all () = Hashtbl.iter (fun _ h -> reset h) table
