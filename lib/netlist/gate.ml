type kind =
  | And
  | Or
  | Xor
  | Xnor
  | Nand
  | Nor
  | Not
  | Buf

type gate = {
  kind : kind;
  inputs : int list;
  output : int;
}

type t = {
  n_inputs : int;
  n_key_inputs : int;
  n_nets : int;
  gates : gate list;
  outputs : int list;
}

let apply kind values =
  match (kind, values) with
  | Not, [ a ] -> not a
  | Buf, [ a ] -> a
  | And, vs -> List.for_all Fun.id vs
  | Or, vs -> List.exists Fun.id vs
  | Nand, vs -> not (List.for_all Fun.id vs)
  | Nor, vs -> not (List.exists Fun.id vs)
  | Xor, vs -> List.fold_left ( <> ) false vs
  | Xnor, vs -> not (List.fold_left ( <> ) false vs)
  | (Not | Buf), _ -> invalid_arg "Gate.apply: unary gate arity"

(* Reusable evaluation scratch: net values plus the definedness map
   that enforces topological order.  One scratch per circuit shape —
   sharing one across circuits with different [n_nets] is rejected at
   evaluation time. *)
type scratch = {
  s_nets : bool array;
  s_defined : bool array;
}

let scratch t = { s_nets = Array.make t.n_nets false; s_defined = Array.make t.n_nets false }

(* Arity-2 gates (all of the bench circuits) read the nets directly;
   wider gates take the general list path.  Keeping both in one match
   means the hot path allocates nothing — no per-gate value list, no
   closure — while exotic arities still work. *)
let eval_gate nets defined g =
  let read net =
    assert (defined.(net));
    nets.(net)
  in
  match (g.kind, g.inputs) with
  | Not, [ a ] -> not (read a)
  | Buf, [ a ] -> read a
  | And, [ a; b ] -> read a && read b
  | Or, [ a; b ] -> read a || read b
  | Nand, [ a; b ] -> not (read a && read b)
  | Nor, [ a; b ] -> not (read a || read b)
  | Xor, [ a; b ] -> read a <> read b
  | Xnor, [ a; b ] -> read a = read b
  | kind, inputs -> apply kind (List.map read inputs)

let eval_into t sc ~key inputs out =
  if Array.length inputs <> t.n_inputs then invalid_arg "Gate.eval: input arity";
  if Array.length key <> t.n_key_inputs then invalid_arg "Gate.eval: key arity";
  if Array.length sc.s_nets <> t.n_nets then invalid_arg "Gate.eval_into: scratch shape";
  let nets = sc.s_nets and defined = sc.s_defined in
  Array.fill defined 0 t.n_nets false;
  Array.blit inputs 0 nets 0 t.n_inputs;
  Array.blit key 0 nets t.n_inputs t.n_key_inputs;
  for i = 0 to t.n_inputs + t.n_key_inputs - 1 do
    defined.(i) <- true
  done;
  List.iter
    (fun g ->
      nets.(g.output) <- eval_gate nets defined g;
      defined.(g.output) <- true)
    t.gates;
  let k = ref 0 in
  List.iter
    (fun net ->
      out.(!k) <- nets.(net);
      incr k)
    t.outputs

let eval t ~key inputs =
  let out = Array.make (List.length t.outputs) false in
  eval_into t (scratch t) ~key inputs out;
  out

let validate t =
  let in_range net = net >= 0 && net < t.n_nets in
  let defined = Array.make t.n_nets false in
  for i = 0 to t.n_inputs + t.n_key_inputs - 1 do
    defined.(i) <- true
  done;
  let check_gate acc g =
    match acc with
    | Error _ as e -> e
    | Ok () ->
      if not (in_range g.output) then Error "gate output out of range"
      else if List.exists (fun net -> not (in_range net)) g.inputs then
        Error "gate input out of range"
      else if List.exists (fun net -> not defined.(net)) g.inputs then
        Error "gates not in topological order"
      else if defined.(g.output) then Error "net driven twice"
      else begin
        defined.(g.output) <- true;
        Ok ()
      end
  in
  match List.fold_left check_gate (Ok ()) t.gates with
  | Error _ as e -> e
  | Ok () ->
    if List.for_all (fun net -> in_range net && defined.(net)) t.outputs then Ok ()
    else Error "undefined primary output"

let gate_count t = List.length t.gates

let random_inputs_into rng t buf =
  if Array.length buf <> t.n_inputs then invalid_arg "Gate.random_inputs_into: arity";
  for i = 0 to t.n_inputs - 1 do
    buf.(i) <- Sigkit.Rng.bool rng
  done

let random_inputs rng t =
  let buf = Array.make t.n_inputs false in
  random_inputs_into rng t buf;
  buf
