type locked = {
  circuit : Gate.t;
  correct_key : bool array;
  original : Gate.t;
}

(* Key gate on wire w: w' = XOR(w, k) (transparent at k = 0) or
   w' = XNOR(w, k) (transparent at k = 1); every consumer of w is
   rewired to w'. *)
let lock rng (original : Gate.t) ~key_bits =
  if original.Gate.n_key_inputs <> 0 then invalid_arg "Logic_lock.lock: already locked";
  let internal_wires =
    List.filter_map
      (fun g ->
        if List.mem g.Gate.output original.outputs then None else Some g.Gate.output)
      original.gates
  in
  if List.length internal_wires < key_bits then
    invalid_arg "Logic_lock.lock: not enough internal wires";
  let chosen =
    let pool = Array.of_list internal_wires in
    for i = Array.length pool - 1 downto 1 do
      let j = Sigkit.Rng.int_range rng 0 i in
      let tmp = pool.(i) in
      pool.(i) <- pool.(j);
      pool.(j) <- tmp
    done;
    Array.sub pool 0 key_bits
  in
  let correct_key = Array.init key_bits (fun _ -> Sigkit.Rng.bool rng) in
  (* Net renumbering: key nets occupy n_inputs .. n_inputs+key_bits-1,
     everything else shifts up. *)
  let shift net = if net < original.n_inputs then net else net + key_bits in
  let next = ref (original.n_nets + key_bits) in
  let replacement = Hashtbl.create (key_bits * 2) in
  let key_gate_after = Hashtbl.create (key_bits * 2) in
  Array.iteri
    (fun i wire ->
      let wire' = shift wire in
      let out = !next in
      incr next;
      Hashtbl.replace replacement wire' out;
      let kind = if correct_key.(i) then Gate.Xnor else Gate.Xor in
      let key_net = original.n_inputs + i in
      Hashtbl.replace key_gate_after wire'
        { Gate.kind; inputs = [ wire'; key_net ]; output = out })
    chosen;
  let rewire net =
    let net = shift net in
    match Hashtbl.find_opt replacement net with
    | Some replaced -> replaced
    | None -> net
  in
  (* Each original gate keeps its (shifted) output; consumers read the
     key-gated replacement.  Key gates slot in right after the driver,
     preserving topological order. *)
  let gates =
    List.concat_map
      (fun g ->
        let g' =
          {
            Gate.kind = g.Gate.kind;
            inputs = List.map rewire g.Gate.inputs;
            output = shift g.Gate.output;
          }
        in
        match Hashtbl.find_opt key_gate_after g'.Gate.output with
        | Some kg -> [ g'; kg ]
        | None -> [ g' ])
      original.gates
  in
  let circuit =
    {
      Gate.n_inputs = original.n_inputs;
      n_key_inputs = key_bits;
      n_nets = !next;
      gates;
      outputs = List.map rewire original.outputs;
    }
  in
  { circuit; correct_key; original }

let corruption ?(samples = 256) ?(seed = 7) locked ~key =
  let rng = Sigkit.Rng.create seed in
  let mismatches = ref 0 in
  (* Hoisted once per probe, not per sample: the probe loop is the
     compare-table hot path (32 keys x 256 samples x 2 netlists). *)
  let sc_ref = Gate.scratch locked.original and sc_cand = Gate.scratch locked.circuit in
  let inputs = Array.make locked.original.Gate.n_inputs false in
  let n_out = List.length locked.original.Gate.outputs in
  let reference = Array.make n_out false in
  let candidate = Array.make (List.length locked.circuit.Gate.outputs) false in
  for _ = 1 to samples do
    Gate.random_inputs_into rng locked.original inputs;
    Gate.eval_into locked.original sc_ref ~key:[||] inputs reference;
    Gate.eval_into locked.circuit sc_cand ~key inputs candidate;
    if reference <> candidate then incr mismatches
  done;
  float_of_int !mismatches /. float_of_int samples

let oracle_attack ?(samples_per_key = 32) ?(budget = 100_000) ~seed locked =
  let rng = Sigkit.Rng.create seed in
  let key_bits = locked.circuit.Gate.n_key_inputs in
  let sc_ref = Gate.scratch locked.original and sc_cand = Gate.scratch locked.circuit in
  let inputs = Array.make locked.original.Gate.n_inputs false in
  let oracle = Array.make (List.length locked.original.Gate.outputs) false in
  let candidate = Array.make (List.length locked.circuit.Gate.outputs) false in
  let rec search trial =
    if trial > budget then `Exhausted budget
    else begin
      let key = Array.init key_bits (fun _ -> Sigkit.Rng.bool rng) in
      let probe = Sigkit.Rng.create (seed + trial) in
      let ok = ref true in
      (try
         for _ = 1 to samples_per_key do
           Gate.random_inputs_into probe locked.original inputs;
           Gate.eval_into locked.original sc_ref ~key:[||] inputs oracle;
           Gate.eval_into locked.circuit sc_cand ~key inputs candidate;
           if candidate <> oracle then raise Exit
         done
       with Exit -> ok := false);
      if !ok then `Found (key, trial) else search (trial + 1)
    end
  in
  search 1

let removal_attack locked = locked.original
