(** Gate-level combinational netlists.

    A small but real logic-netlist engine: the substrate for the
    MixLock-style baselines ([9], [10]) that lock the digital section of
    a mixed-signal circuit, and for their removal/key attacks.  Nets are
    integers; gate order must be topological (asserted at evaluation). *)

type kind =
  | And
  | Or
  | Xor
  | Xnor
  | Nand
  | Nor
  | Not
  | Buf

type gate = {
  kind : kind;
  inputs : int list;   (** net ids *)
  output : int;        (** net id *)
}

type t = {
  n_inputs : int;        (** nets 0 .. n_inputs-1 are primary inputs *)
  n_key_inputs : int;    (** nets n_inputs .. +n_key_inputs-1 are key inputs *)
  n_nets : int;
  gates : gate list;     (** topological order *)
  outputs : int list;    (** primary-output net ids *)
}

val eval : t -> key:bool array -> bool array -> bool array
(** [eval t ~key inputs] computes the primary outputs.  Raises
    [Invalid_argument] on arity mismatches. *)

type scratch
(** Reusable evaluation buffers for one circuit shape (sized by
    [n_nets]).  Attack and corruption loops evaluate the same netlist
    10^4–10^6 times; hoisting the scratch out of the loop makes each
    evaluation allocation-free (DESIGN §15). *)

val scratch : t -> scratch

val eval_into : t -> scratch -> key:bool array -> bool array -> bool array -> unit
(** [eval_into t sc ~key inputs out] is [eval] into caller-provided
    [out] (length = number of primary outputs) using [sc] for net
    values.  A scratch built for a different [n_nets] is rejected.
    Bit-identical to [eval]. *)

val validate : t -> (unit, string) result
(** Structural checks: net ranges, topological order, output defined. *)

val gate_count : t -> int

val random_inputs : Sigkit.Rng.t -> t -> bool array

val random_inputs_into : Sigkit.Rng.t -> t -> bool array -> unit
(** Fill a caller-provided primary-input vector (same draw sequence
    as {!random_inputs}). *)
