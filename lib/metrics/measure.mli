(** Standard bench measurements on a configured receiver.

    These are the measurements the paper's evaluation and calibration
    loop perform: single-tone SNR at the modulator output and at the
    receiver output, and two-tone SFDR.  They are also the attacker's
    oracle: each call corresponds to one ATE/simulation trial, so every
    call is counted against the attack-cost model (see
    {!Attacks.Cost}). *)

type t

val create : ?p_dbm:float -> Rfchain.Receiver.t -> t
(** Measurement bench on one receiver.  [p_dbm] is the single-tone test
    power (default -25 dBm, the paper's Fig. 7/9 stimulus). *)

val trial_count : t -> int
(** Number of measurements performed so far on this bench. *)

val global_trial_count : unit -> int
(** Process-wide measurement odometer across every bench ever created,
    read from the always-on telemetry counter [measure.trials].
    Deltas of this value bracket a computation's measurement cost —
    the oracle-query accounting of {!Experiments.Security_table}. *)

val snr_mod_db : t -> Rfchain.Config.t -> float
(** Single-tone SNR at the modulator output (Fig. 7 metric):
    8192-point FFT, OSR 64. *)

val snr_mod_verified_db : t -> Rfchain.Config.t -> float
(** {!snr_mod_db} with a stimulus-linearity guard: the tone power is
    re-measured 6 dB down; if the output tone does not track (within
    +-3 dB), the "signal" is something else — typically an
    injection-locked tank regenerating the test frequency — and the
    result is [neg_infinity].  Two trials.  This is how a bench (or a
    careful attacker) rejects false unlocks that fool the raw FFT
    metric. *)

val snr_rx_db : ?n_fft:int -> t -> Rfchain.Config.t -> float
(** Single-tone SNR at the receiver output after mixing and decimation
    (Fig. 9 metric).  [n_fft] is the baseband FFT size (default 2048;
    the input record is [n_fft * 64] samples). *)

val snr_rx_at_power_db : ?n_fft:int -> t -> Rfchain.Config.t -> p_dbm:float -> gain_code:int -> float
(** Receiver-output SNR at an arbitrary input power and VGLNA gain
    code (Fig. 11 sweeps). *)

val sfdr_db : t -> Rfchain.Config.t -> float
(** Two-tone SFDR at the modulator output (Fig. 12 metric). *)

val full : t -> Rfchain.Config.t -> Spec.measurement
(** SNR at both taps plus SFDR, packaged for spec checking. *)

val mod_output : t -> Rfchain.Config.t -> float array
(** Raw modulator-output record under the single-tone stimulus
    (Fig. 8 transient / Fig. 10 PSD source). *)
