type t = {
  rx : Rfchain.Receiver.t;
  p_dbm : float;
  mutable trials : int;
}

let create ?(p_dbm = -25.0) rx = { rx; p_dbm; trials = 0 }

let trial_count t = t.trials

(* The process-wide bench odometer: every measurement on every bench,
   the denominator of all oracle-query accounting. *)
let trials_counter = Telemetry.Counter.make "measure.trials"

let global_trial_count () = Telemetry.Counter.value trials_counter

let osr = Rfchain.Standards.oversampling_ratio

let run_tone t config ~p_dbm ~n =
  t.trials <- t.trials + 1;
  Telemetry.Counter.incr trials_counter;
  let fs = Rfchain.Receiver.fs t.rx in
  let f_in = Rfchain.Receiver.test_tone_frequency t.rx ~n in
  let input = Sigkit.Waveform.tone_dbm ~p_dbm ~freq:f_in ~fs n in
  (f_in, Rfchain.Receiver.run t.rx ~analog:config ~input ())

let mod_output t config =
  let _, res = run_tone t config ~p_dbm:t.p_dbm ~n:Snr.default_fft_points in
  res.Rfchain.Receiver.mod_output

let snr_mod_db t config =
  Telemetry.Span.with_ ~name:"measure.snr_mod" (fun () ->
      let f_in, res = run_tone t config ~p_dbm:t.p_dbm ~n:Snr.default_fft_points in
      Snr.of_bandpass ~fs:res.Rfchain.Receiver.fs ~f_signal:f_in ~osr
        res.Rfchain.Receiver.mod_output)

let tone_power_at t config ~p_dbm =
  let f_in, res = run_tone t config ~p_dbm ~n:Snr.default_fft_points in
  let spec =
    Sigkit.Spectrum.periodogram ~fs:res.Rfchain.Receiver.fs res.Rfchain.Receiver.mod_output
  in
  Sigkit.Spectrum.tone_power spec ~freq:f_in

let snr_mod_verified_db t config =
  Telemetry.Span.with_ ~name:"measure.snr_mod_verified" (fun () ->
      let p_hi = tone_power_at t config ~p_dbm:t.p_dbm in
      let p_lo = tone_power_at t config ~p_dbm:(t.p_dbm -. 6.0) in
      let drop_db = Sigkit.Decibel.db_of_power_ratio (p_hi /. Float.max 1e-300 p_lo) in
      if Float.abs (drop_db -. 6.0) > 3.0 then neg_infinity
      else
        (* Linearity confirmed; the first record's SNR stands.  Re-measure
           to return it (counted: it is one more capture). *)
        snr_mod_db t config)

let baseband_snr t config ~p_dbm ~n_fft =
  Telemetry.Span.with_ ~name:"measure.snr_rx" (fun () ->
      let ratio = Rfchain.Decimator.ratio Rfchain.Decimator.default_config in
      let n = n_fft * ratio in
      let f_in, res = run_tone t config ~p_dbm ~n in
      let fs = res.Rfchain.Receiver.fs in
      let band = Rfchain.Standards.band_hz (Rfchain.Receiver.standard t.rx) in
      Snr.of_baseband_iq ~n_fft ~fs:res.Rfchain.Receiver.fs_baseband
        ~f_signal:(f_in -. (fs /. 4.0))
        ~f_band:(band /. 2.0)
        (res.Rfchain.Receiver.baseband_i, res.Rfchain.Receiver.baseband_q))

let snr_rx_db ?(n_fft = 2048) t config = baseband_snr t config ~p_dbm:t.p_dbm ~n_fft

let snr_rx_at_power_db ?(n_fft = 1024) t config ~p_dbm ~gain_code =
  let config = { config with Rfchain.Config.vglna_gain = gain_code } in
  baseband_snr t config ~p_dbm ~n_fft

let sfdr_db t config =
  t.trials <- t.trials + 1;
  Telemetry.Counter.incr trials_counter;
  Telemetry.Span.with_ ~name:"measure.sfdr" (fun () ->
      let n = Snr.default_fft_points in
      let fs = Rfchain.Receiver.fs t.rx in
      let standard = Rfchain.Receiver.standard t.rx in
      let f1, f2 = Sfdr.tones_for ~f0:standard.Rfchain.Standards.f0_hz ~fs ~n in
      let input = Sigkit.Waveform.two_tone_dbm ~p_dbm:t.p_dbm ~f1 ~f2 ~fs n in
      let res = Rfchain.Receiver.run t.rx ~analog:config ~input () in
      Sfdr.of_bandpass ~fs ~f1 ~f2 ~osr res.Rfchain.Receiver.mod_output)

let full t config =
  {
    Spec.snr_mod_db = snr_mod_db t config;
    snr_rx_db = snr_rx_db t config;
    sfdr_db = Some (sfdr_db t config);
  }
