(** Dynamic-range characterisation (paper Fig. 11).

    SNR versus input power in 5 dB steps over the three VGLNA gain
    segments: [-85,-45] dBm at high gain, [-60,-20] at mid gain and
    [-40,0] at low gain. *)

type point = {
  p_dbm : float;
  gain_code : int;
  snr_db : float;
}

type segment = {
  label : string;
  lo_dbm : float;
  hi_dbm : float;
  segment_gain_code : int;
  points : point list;
}

val segments : (string * float * float * int) list
(** The three datasheet segments as (label, lo, hi, gain code). *)

val step_dbm : float
(** 5 dB, as in the paper. *)

val sweep : measure:(p_dbm:float -> gain_code:int -> float) -> segment list
(** Run the full Fig. 11 sweep given a measurement callback returning
    SNR in dB (the callback hides whether an actual chip, a locked chip
    or an idealised model is being measured). *)

val sweep_batch : measure_batch:((float * int) list -> float list) -> segment list
(** {!sweep} with all (p_dbm, gain_code) points handed over at once —
    for callers that can evaluate the sweep as one engine batch.
    [measure_batch] must return SNRs in input order; {!sweep} is
    [sweep_batch] over [List.map]. *)

val dynamic_range_db : segment list -> min_snr_db:float -> float
(** Width (dB) of the input-power region, across all segments, in which
    the SNR meets [min_snr_db]. *)
