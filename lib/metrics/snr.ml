let default_fft_points = 8192

let spectrum ?(n_fft = default_fft_points) ~fs record =
  let n = min n_fft (Array.length record) in
  let n = if Sigkit.Fft.is_pow2 n then n else Sigkit.Fft.next_pow2 n / 2 in
  if n < 64 then invalid_arg "Snr: record too short";
  (* Use the tail of the record: any residual start-up transient decays
     away from the measurement window. *)
  let tail = Array.sub record (Array.length record - n) n in
  Sigkit.Spectrum.periodogram ~window:Sigkit.Window.Hann ~fs tail

let snr_from_spectrum spec ~f_signal ~f_lo ~f_hi =
  let signal = Sigkit.Spectrum.tone_power spec ~freq:f_signal in
  let sig_bins = Sigkit.Spectrum.tone_bins spec ~freq:f_signal in
  let noise = Sigkit.Spectrum.band_power_excluding spec ~f_lo ~f_hi ~exclude:[ sig_bins ] in
  if noise <= 0.0 then infinity else Sigkit.Decibel.db_of_power_ratio (signal /. noise)

let of_bandpass ?n_fft ~fs ~f_signal ~osr record =
  let spec = spectrum ?n_fft ~fs record in
  let centre = fs /. 4.0 in
  let half_band = fs /. (2.0 *. float_of_int osr) /. 2.0 in
  snr_from_spectrum spec ~f_signal ~f_lo:(centre -. half_band) ~f_hi:(centre +. half_band)

let of_baseband ?n_fft ~fs ~f_signal ~f_band record =
  let spec = spectrum ?n_fft ~fs record in
  (* Exclude the 0-bin: decimator DC offset is not channel noise. *)
  let f_lo = fs /. float_of_int spec.Sigkit.Spectrum.n in
  snr_from_spectrum spec ~f_signal ~f_lo ~f_hi:f_band

(* Complex-baseband SNR on a two-sided spectrum: bin k of an n-point
   complex FFT covers frequency k*fs/n for k < n/2 and (k-n)*fs/n
   above.  The carrier sits at a signed offset; noise is integrated
   over [-f_band, f_band] minus the carrier lobe and the DC bins. *)
let of_baseband_iq ?(n_fft = 2048) ~fs ~f_signal ~f_band (i_ch, q_ch) =
  let n = min n_fft (min (Array.length i_ch) (Array.length q_ch)) in
  let n = if Sigkit.Fft.is_pow2 n then n else Sigkit.Fft.next_pow2 n / 2 in
  if n < 64 then invalid_arg "Snr.of_baseband_iq: record too short";
  let take ch = Array.sub ch (Array.length ch - n) n in
  (* Shared memo table: read-only here, so no copy is needed. *)
  let window = Sigkit.Window.table Sigkit.Window.Hann n in
  let re = take i_ch and im = take q_ch in
  for k = 0 to n - 1 do
    re.(k) <- re.(k) *. window.(k);
    im.(k) <- im.(k) *. window.(k)
  done;
  Sigkit.Fft.forward re im;
  let power = Sigkit.Fft.magnitude_squared re im in
  let bin_of_freq f =
    let k = int_of_float (Float.round (f *. float_of_int n /. fs)) in
    ((k mod n) + n) mod n
  in
  let centre = bin_of_freq f_signal in
  let lobe = Sigkit.Window.main_lobe_bins Sigkit.Window.Hann in
  (* Peak search around the nominal carrier bin (wrapped). *)
  let peak = ref centre in
  for d = -4 to 4 do
    let k = (centre + d + n) mod n in
    if power.(k) > power.(!peak) then peak := k
  done;
  let in_lobe k =
    let d = abs (((k - !peak + n + (n / 2)) mod n) - (n / 2)) in
    d <= lobe
  in
  let near_dc k =
    let d = abs ((((k + (n / 2)) mod n) - (n / 2))) in
    d <= 1
  in
  let band_bins = int_of_float (Float.round (f_band *. float_of_int n /. fs)) in
  let signal = ref 0.0 and noise = ref 0.0 in
  for d = -band_bins to band_bins do
    let k = (d + n) mod n in
    if in_lobe k then signal := !signal +. power.(k)
    else if not (near_dc k) then noise := !noise +. power.(k)
  done;
  if !noise <= 0.0 then infinity else Sigkit.Decibel.db_of_power_ratio (!signal /. !noise)

let power_in_band_dbfs ?n_fft ~fs ~f_lo ~f_hi record =
  let spec = spectrum ?n_fft ~fs record in
  let band = Sigkit.Spectrum.band_power spec ~f_lo ~f_hi in
  let total = Sigkit.Spectrum.band_power spec ~f_lo:0.0 ~f_hi:(fs /. 2.0) in
  if total <= 0.0 then neg_infinity else Sigkit.Decibel.db_of_power_ratio (band /. total)
