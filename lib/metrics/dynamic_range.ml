type point = {
  p_dbm : float;
  gain_code : int;
  snr_db : float;
}

type segment = {
  label : string;
  lo_dbm : float;
  hi_dbm : float;
  segment_gain_code : int;
  points : point list;
}

let segments =
  [
    ("high-gain [-85:-45]", -85.0, -45.0, 14);
    ("mid-gain  [-60:-20]", -60.0, -20.0, 9);
    ("low-gain  [-40:0]", -40.0, 0.0, 3);
  ]

let step_dbm = 5.0

let grid () =
  List.map
    (fun (label, lo_dbm, hi_dbm, gain_code) ->
      let n_points = int_of_float (Float.round ((hi_dbm -. lo_dbm) /. step_dbm)) + 1 in
      ( (label, lo_dbm, hi_dbm, gain_code),
        List.init n_points (fun i -> (lo_dbm +. (step_dbm *. float_of_int i), gain_code)) ))
    segments

let assemble results =
  let results = ref results in
  let take () =
    match !results with
    | r :: rest ->
      results := rest;
      r
    | [] -> invalid_arg "Dynamic_range: measure_batch returned too few results"
  in
  List.map
    (fun ((label, lo_dbm, hi_dbm, gain_code), points) ->
      {
        label;
        lo_dbm;
        hi_dbm;
        segment_gain_code = gain_code;
        points = List.map (fun (p_dbm, gain_code) -> { p_dbm; gain_code; snr_db = take () }) points;
      })
    (grid ())

let sweep_batch ~measure_batch =
  assemble (measure_batch (List.concat_map snd (grid ())))

let sweep ~measure =
  sweep_batch ~measure_batch:(List.map (fun (p_dbm, gain_code) -> measure ~p_dbm ~gain_code))

let dynamic_range_db segs ~min_snr_db =
  let passing =
    List.concat_map (fun s -> List.filter (fun p -> p.snr_db >= min_snr_db) s.points) segs
  in
  match passing with
  | [] -> 0.0
  | p :: rest ->
    let lo, hi =
      List.fold_left
        (fun (lo, hi) q -> (Float.min lo q.p_dbm, Float.max hi q.p_dbm))
        (p.p_dbm, p.p_dbm) rest
    in
    hi -. lo +. step_dbm
