(** Threat scenarios and countermeasure outcomes (paper Section IV-C).

    Each scenario exercises real chips through the public measurement
    path and reports whether the counterfeit/abuse attempt produces a
    usable part.  The paper's claims: cloning, overproduction and
    remarking are defeated by either key-management scheme; recycling
    is defeated only by the PUF scheme with per-power-on key load. *)

type outcome = {
  scenario : string;
  attacker_success : bool;
  detail : string;
}

val cloning : ?seed:int -> ?lot:int -> Rfchain.Standards.t -> golden_key:Key.t -> outcome
(** An adversary fabricates an identical layout.  Primary outcome (the
    paper's claim): without any key the clone fails spec.  Secondary
    statistic in [detail]: how often a key stolen from a legitimate die
    happens to work across a [lot] of clone dice — per-die process
    variations make this hit-or-miss rather than reliable. *)

val overproduction :
  fabricated:int ->
  provisioned:int ->
  outcome
(** The untrusted foundry runs extra wafers; only dice the design house
    activates are usable. *)

val recycling : Rfchain.Standards.t -> seed:int -> key:Key.t -> outcome * outcome
(** A used chip resold as new, once under the LUT scheme (succeeds:
    the key travels with the part) and once under the PUF scheme with
    power-on key load (fails without the customer's user keys). *)

val remarking : Rfchain.Standards.t -> seed:int -> outcome
(** A failing die remarked as passing by the test facility: the design
    house loads a scrap configuration, leaving the part inert. *)

val evaluate_config : Rfchain.Standards.t -> seed:int -> Rfchain.Config.t -> bool
(** Whether a configuration meets the standard's spec on die [seed]
    (helper shared by the scenarios; one full engine evaluation —
    three bench trials — per call, cached across repeats). *)

val evaluate_many : Rfchain.Standards.t -> (int * Rfchain.Config.t) list -> bool list
(** {!evaluate_config} over a (die seed, config) list as one engine
    batch (parallel under [--jobs]); results in input order. *)
