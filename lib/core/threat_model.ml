type outcome = {
  scenario : string;
  attacker_success : bool;
  detail : string;
}

let request standard ~seed config =
  Engine.Request.make ~die:(Engine.Request.die_of_seed seed) ~standard ~config
    Engine.Request.Full

let evaluate_config standard ~seed config =
  let m = Engine.Service.eval (request standard ~seed config) in
  (Metrics.Spec.check standard m).Metrics.Spec.functional

(* One streamed engine grid for a whole (die, config) matrix — the
   lot-study transfer matrix and the security table's transfer column.
   The full grid goes to the scheduler at once (no per-batch barrier);
   [stream_drain] reassembles by index, so the flag list is in point
   order and bit-identical to the old batched evaluation. *)
let evaluate_many standard points =
  let stream =
    Engine.Service.eval_stream
      (List.map (fun (seed, config) -> request standard ~seed config) points)
  in
  match Engine.Service.stream_drain stream with
  | Ok ms -> List.map (fun m -> (Metrics.Spec.check standard m).Metrics.Spec.functional) ms
  | Error _ -> assert false (* no per-stream deadline is attached here *)

(* The paper's cloning claim: a clone is "good-for-nothing if the
   adversary does not know how the design can be programmed".  The
   primary outcome is therefore the unkeyed clone; a stolen key's
   transferability across a clone lot is reported as a secondary
   statistic (process variations make it hit-or-miss: the key encodes
   the victim die's corners, not the clone's). *)
let cloning ?(seed = 990001) ?(lot = 6) standard ~golden_key =
  let unkeyed = evaluate_config standard ~seed Rfchain.Config.nominal in
  let stolen_works =
    List.length
      (List.filter
         (fun i -> evaluate_config standard ~seed:(seed + i) (Key.config golden_key))
         (List.init lot (fun i -> i)))
  in
  {
    scenario = "cloning";
    attacker_success = unkeyed;
    detail =
      Printf.sprintf
        "clone die %d without key %s spec; stolen key from die %d transfers to %d/%d clones"
        seed
        (if unkeyed then "MEETS" else "fails")
        golden_key.Key.chip_seed stolen_works lot;
  }

let overproduction ~fabricated ~provisioned =
  let usable = min fabricated provisioned in
  {
    scenario = "overproduction";
    attacker_success = usable > provisioned;
    detail =
      Printf.sprintf
        "foundry fabricated %d dice, design house provisioned %d: %d usable, %d inert"
        fabricated provisioned usable (fabricated - usable);
  }

let recycling standard ~seed ~key =
  let chip = Circuit.Process.fabricate ~seed () in
  (* LUT scheme: the key is inside the part, so a recycled part works. *)
  let lut = Key_mgmt.provision_lut [ key ] in
  let lut_works =
    match Key_mgmt.power_on lut ~standard:standard.Rfchain.Standards.name () with
    | Ok config -> evaluate_config standard ~seed config
    | Error _ -> false
  in
  let lut_outcome =
    {
      scenario = "recycling (LUT scheme)";
      attacker_success = lut_works;
      detail = "configuration travels inside the tamper-proof LUT: recycled part still works";
    }
  in
  (* PUF scheme: without the customer's user keys nothing loads. *)
  let puf_scheme, _user_keys = Key_mgmt.provision_puf chip [ key ] in
  let puf_works =
    match Key_mgmt.power_on puf_scheme ~standard:standard.Rfchain.Standards.name () with
    | Ok config -> evaluate_config standard ~seed config
    | Error _ -> false
  in
  let puf_outcome =
    {
      scenario = "recycling (PUF scheme)";
      attacker_success = puf_works;
      detail = "user keys are loaded at every power-on and do not travel with e-waste";
    }
  in
  (lut_outcome, puf_outcome)

let remarking standard ~seed =
  (* The design house answers a failed calibration by loading a scrap
     word: feedback open, input off, everything mistrimmed. *)
  let scrap =
    {
      Rfchain.Config.nominal with
      fb_enable = false;
      gmin_enable = false;
      gm_q = 63;
      cap_coarse = 255;
    }
  in
  let works = evaluate_config standard ~seed scrap in
  {
    scenario = "remarking";
    attacker_success = works;
    detail = "failing die loaded with a scrap configuration before leaving the test floor";
  }
