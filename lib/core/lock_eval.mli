(** Locking-efficiency evaluation (paper Section VI-A).

    Applies the correct key and an ensemble of random invalid keys to a
    die and measures the SNR at the modulator output and at the receiver
    output — the data behind Fig. 7 and Fig. 9.  Also identifies
    "deceptive" invalid keys: words that score a respectable SNR at the
    modulator output because the loop is open and the comparator
    buffered (the analog signal sneaks through undigitized), yet
    collapse once the digital section slices them (Fig. 8/9/10). *)

type key_result = {
  index : int;                 (** 0-based position in the ensemble *)
  config : Rfchain.Config.t;
  snr_mod_db : float;
  snr_rx_db : float;
}

type t = {
  correct : key_result;        (** index -1 *)
  invalid : key_result list;   (** ensemble order *)
}

val evaluate :
  ?n_invalid:int ->
  ?seed:int ->
  ?with_rx:bool ->
  Rfchain.Receiver.t ->
  correct:Rfchain.Config.t ->
  unit ->
  t
(** [evaluate rx ~correct ()] measures the correct key and [n_invalid]
    (default 100) seeded random keys.  [with_rx] (default true) also
    measures the receiver-output SNR (Fig. 9); switching it off halves
    the cost for modulator-only studies. *)

val best_invalid : t -> key_result option
(** The invalid key with the highest modulator-output SNR — the
    "deceptive" key the paper labels index 7.  [None] on an empty
    ensemble. *)

val is_open_loop_passthrough : Rfchain.Config.t -> bool
(** The deceptive signature: feedback open and comparator buffered. *)

type summary = {
  correct_snr_mod_db : float;
  correct_snr_rx_db : float;
  max_invalid_snr_mod_db : float;
  max_invalid_snr_rx_db : float;
  invalid_below_0db : int;
  invalid_above_10db_mod : int;
  margin_mod_db : float;   (** correct minus best invalid, modulator tap *)
  margin_rx_db : float;
}

val summarize : t -> summary
