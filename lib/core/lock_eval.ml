type key_result = {
  index : int;
  config : Rfchain.Config.t;
  snr_mod_db : float;
  snr_rx_db : float;
}

type t = {
  correct : key_result;
  invalid : key_result list;
}

let evaluate ?(n_invalid = 100) ?(seed = 2020) ?(with_rx = true) rx ~correct () =
  let rng = Sigkit.Rng.create seed in
  let keys =
    (-1, correct) :: List.init n_invalid (fun index -> (index, Rfchain.Config.random rng))
  in
  (* The whole ensemble goes to the engine as one batch: every key
     needs a modulator-tap SNR and (optionally) a receiver-tap SNR,
     independent of the others, so the batch fans out across the
     domains backend under --jobs while the reassembled results stay in
     ensemble order. *)
  let die = Engine.Request.die_of_receiver rx in
  let standard = Rfchain.Receiver.standard rx in
  let requests =
    List.concat_map
      (fun (_, config) ->
        let mk metric = Engine.Request.make ~die ~standard ~config metric in
        if with_rx then [ mk Engine.Request.Snr_mod; mk (Engine.Request.Snr_rx { n_fft = 2048 }) ]
        else [ mk Engine.Request.Snr_mod ])
      keys
  in
  let per_key = if with_rx then 2 else 1 in
  let measurements = Array.of_list (Engine.Service.eval_batch requests) in
  let results =
    List.mapi
      (fun i (index, config) ->
        let snr_mod_db = measurements.(per_key * i).Metrics.Spec.snr_mod_db in
        let snr_rx_db =
          if with_rx then measurements.((per_key * i) + 1).Metrics.Spec.snr_rx_db else nan
        in
        { index; config; snr_mod_db; snr_rx_db })
      keys
  in
  match results with
  | correct_result :: invalid -> { correct = correct_result; invalid }
  | [] -> assert false

let best_invalid t =
  match t.invalid with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun acc r -> if r.snr_mod_db > acc.snr_mod_db then r else acc) first rest)

let is_open_loop_passthrough (config : Rfchain.Config.t) =
  (not config.fb_enable) && not config.comp_clock_enable

type summary = {
  correct_snr_mod_db : float;
  correct_snr_rx_db : float;
  max_invalid_snr_mod_db : float;
  max_invalid_snr_rx_db : float;
  invalid_below_0db : int;
  invalid_above_10db_mod : int;
  margin_mod_db : float;
  margin_rx_db : float;
}

let summarize t =
  let max_by f = List.fold_left (fun acc r -> Float.max acc (f r)) neg_infinity t.invalid in
  let max_mod = max_by (fun r -> r.snr_mod_db) in
  let max_rx = max_by (fun r -> r.snr_rx_db) in
  {
    correct_snr_mod_db = t.correct.snr_mod_db;
    correct_snr_rx_db = t.correct.snr_rx_db;
    max_invalid_snr_mod_db = max_mod;
    max_invalid_snr_rx_db = max_rx;
    invalid_below_0db = List.length (List.filter (fun r -> r.snr_mod_db < 0.0) t.invalid);
    invalid_above_10db_mod = List.length (List.filter (fun r -> r.snr_mod_db > 10.0) t.invalid);
    margin_mod_db = t.correct.snr_mod_db -. max_mod;
    margin_rx_db = t.correct.snr_rx_db -. max_rx;
  }
