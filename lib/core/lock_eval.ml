type key_result = {
  index : int;
  config : Rfchain.Config.t;
  snr_mod_db : float;
  snr_rx_db : float;
}

type t = {
  correct : key_result;
  invalid : key_result list;
}

let measure_key bench ~with_rx ~index config =
  let snr_mod_db = Metrics.Measure.snr_mod_db bench config in
  let snr_rx_db = if with_rx then Metrics.Measure.snr_rx_db bench config else nan in
  { index; config; snr_mod_db; snr_rx_db }

let evaluate ?(n_invalid = 100) ?(seed = 2020) ?(with_rx = true) rx ~correct () =
  let bench = Metrics.Measure.create rx in
  let rng = Sigkit.Rng.create seed in
  let correct_result = measure_key bench ~with_rx ~index:(-1) correct in
  let invalid =
    List.init n_invalid (fun index ->
        measure_key bench ~with_rx ~index (Rfchain.Config.random rng))
  in
  { correct = correct_result; invalid }

let best_invalid t =
  match t.invalid with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun acc r -> if r.snr_mod_db > acc.snr_mod_db then r else acc) first rest)

let is_open_loop_passthrough (config : Rfchain.Config.t) =
  (not config.fb_enable) && not config.comp_clock_enable

type summary = {
  correct_snr_mod_db : float;
  correct_snr_rx_db : float;
  max_invalid_snr_mod_db : float;
  max_invalid_snr_rx_db : float;
  invalid_below_0db : int;
  invalid_above_10db_mod : int;
  margin_mod_db : float;
  margin_rx_db : float;
}

let summarize t =
  let max_by f = List.fold_left (fun acc r -> Float.max acc (f r)) neg_infinity t.invalid in
  let max_mod = max_by (fun r -> r.snr_mod_db) in
  let max_rx = max_by (fun r -> r.snr_rx_db) in
  {
    correct_snr_mod_db = t.correct.snr_mod_db;
    correct_snr_rx_db = t.correct.snr_rx_db;
    max_invalid_snr_mod_db = max_mod;
    max_invalid_snr_rx_db = max_rx;
    invalid_below_0db = List.length (List.filter (fun r -> r.snr_mod_db < 0.0) t.invalid);
    invalid_above_10db_mod = List.length (List.filter (fun r -> r.snr_mod_db > 10.0) t.invalid);
    margin_mod_db = t.correct.snr_mod_db -. max_mod;
    margin_rx_db = t.correct.snr_rx_db -. max_rx;
  }
