let fs = 10e6
let target_cutoff_hz = 1e6

type t = {
  chip : Circuit.Process.chip;
  cap_bank : Circuit.Cap_array.t;        (* coarse, 6 bits *)
  cap_fine : Circuit.Cap_array.t;        (* fine, 5 bits *)
  gm_siemens : float;                    (* filter transconductance *)
  pga_gain_error_db : float array;       (* per-code gain deviation *)
  raw_offset_v : float;                  (* untrimmed output offset *)
  noise_sigma : float;
}

(* Cutoff = gm / (2 pi C): with gm ~ 40 uS and C ~ 6.4 pF the design
   centre sits at 1 MHz. *)
let create chip =
  {
    chip;
    cap_bank =
      Circuit.Cap_array.create chip ~name:"afe.cc" ~bits:6 ~unit_cap:150e-15
        ~mismatch_sigma_pct:1.5;
    cap_fine =
      Circuit.Cap_array.create chip ~name:"afe.cf" ~bits:5 ~unit_cap:10e-15
        ~mismatch_sigma_pct:1.5;
    gm_siemens = Circuit.Process.parameter chip ~name:"afe.gm" ~nominal:40e-6 ~sigma_pct:8.0;
    pga_gain_error_db =
      Array.init 16 (fun code ->
          Circuit.Process.offset chip ~name:(Printf.sprintf "afe.pga%d" code) ~sigma:0.3);
    raw_offset_v = Circuit.Process.offset chip ~name:"afe.offset" ~sigma:8e-3;
    noise_sigma = Circuit.Process.parameter chip ~name:"afe.noise" ~nominal:60e-6 ~sigma_pct:10.0;
  }

let capacitance t (config : Afe_config.t) =
  Circuit.Cap_array.capacitance t.cap_bank config.cutoff_coarse
  +. Circuit.Cap_array.capacitance t.cap_fine config.cutoff_fine

let cutoff_hz t config = t.gm_siemens /. (2.0 *. Float.pi *. capacitance t config)

let pga_gain_db t (config : Afe_config.t) =
  (2.0 *. float_of_int config.pga_gain) +. t.pga_gain_error_db.(config.pga_gain)

let quality_factor t (config : Afe_config.t) =
  (* Butterworth wants Q = 0.707; the trim covers ~0.4..1.2 around a
     per-die skew. *)
  let skew = Circuit.Process.parameter t.chip ~name:"afe.q" ~nominal:1.0 ~sigma_pct:10.0 in
  skew *. (0.4 +. (0.055 *. float_of_int config.q_trim))

let residual_offset_v t (config : Afe_config.t) =
  t.raw_offset_v -. ((float_of_int config.offset_trim -. 16.0) *. 0.7e-3)

let run t (config : Afe_config.t) input =
  let gain = Sigkit.Decibel.power_ratio_of_db (pga_gain_db t config /. 2.0) in
  (* PGA nonlinearity: mild compressive stage, 1.6 V rail. *)
  let pga = Circuit.Nonlinear.create ~gain ~iip3_dbm:24.0 ~rail:1.6 () in
  (* Biquad low-pass (RBJ cookbook) at the configured cutoff and Q. *)
  let f_c = Float.max 1e3 (Float.min (fs /. 2.2) (cutoff_hz t config)) in
  let q = Float.max 0.2 (quality_factor t config) in
  let w0 = 2.0 *. Float.pi *. f_c /. fs in
  let alpha = sin w0 /. (2.0 *. q) in
  let b1 = 1.0 -. cos w0 in
  let b0 = b1 /. 2.0 and b2 = b1 /. 2.0 in
  let a0 = 1.0 +. alpha and a1 = -2.0 *. cos w0 and a2 = 1.0 -. alpha in
  let x1 = ref 0.0 and x2 = ref 0.0 and y1 = ref 0.0 and y2 = ref 0.0 in
  let noise = Circuit.Process.noise_stream t.chip ~name:"afe.run" in
  let offset = residual_offset_v t config in
  (* Step hook: the AFE capture is a cancellation point on the same
     4096-sample cadence as the sigma-delta loop. *)
  let tick = ref 0 in
  Array.map
    (fun x ->
      Telemetry.Cancel.tick_poll !tick;
      incr tick;
      let amplified = Circuit.Nonlinear.apply pga (x +. (t.noise_sigma *. Sigkit.Rng.gaussian noise)) in
      let y =
        ((b0 *. amplified) +. (b1 *. !x1) +. (b2 *. !x2) -. (a1 *. !y1) -. (a2 *. !y2)) /. a0
      in
      x2 := !x1;
      x1 := amplified;
      y2 := !y1;
      y1 := y;
      y +. offset)
    input

type measurement = {
  gain_db : float;
  cutoff_error_hz : float;
  offset_v : float;
  thd_db : float;
}

let tone_gain_db t config ~freq ~amplitude =
  let n = 4096 in
  let freq = Sigkit.Waveform.coherent_frequency ~freq ~fs ~n in
  let x = Sigkit.Waveform.tone ~amplitude ~freq ~fs n in
  let y = run t config x in
  let steady = Array.sub y (n / 2) (n / 2) in
  let spec = Sigkit.Spectrum.periodogram ~fs steady in
  let out_power = Sigkit.Spectrum.tone_power spec ~freq in
  let x_spec = Sigkit.Spectrum.periodogram ~fs (Array.sub x (n / 2) (n / 2)) in
  let in_power = Sigkit.Spectrum.tone_power x_spec ~freq in
  Sigkit.Decibel.db_of_power_ratio (out_power /. in_power)

(* -3 dB point by bisection on measured gain. *)
let measured_cutoff_hz t config =
  let passband = tone_gain_db t config ~freq:(fs /. 100.0) ~amplitude:5e-3 in
  let target = passband -. 3.0 in
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.0
    else
      let mid = (lo +. hi) /. 2.0 in
      let g = tone_gain_db t config ~freq:mid ~amplitude:5e-3 in
      if g > target then bisect mid hi (n - 1) else bisect lo mid (n - 1)
  in
  bisect (fs /. 200.0) (fs /. 2.2) 12

let measure t config =
  let gain_db = tone_gain_db t config ~freq:(fs /. 100.0) ~amplitude:5e-3 in
  let cutoff_error_hz = Float.abs (measured_cutoff_hz t config -. target_cutoff_hz) in
  (* DC offset with a grounded input. *)
  let quiet = run t config (Array.make 2048 0.0) in
  let offset_v = Sigkit.Waveform.mean (Array.sub quiet 1024 1024) in
  (* THD: -6 dBFS tone in the passband, third harmonic. *)
  let n = 8192 in
  let f1 = Sigkit.Waveform.coherent_frequency ~freq:200e3 ~fs ~n in
  let amplitude = 0.5 /. Sigkit.Decibel.power_ratio_of_db (pga_gain_db t config /. 2.0) in
  let y = run t config (Sigkit.Waveform.tone ~amplitude ~freq:f1 ~fs n) in
  let spec = Sigkit.Spectrum.periodogram ~fs (Array.sub y (n / 2) (n / 2)) in
  let fundamental = Sigkit.Spectrum.tone_power spec ~freq:f1 in
  let third = Sigkit.Spectrum.tone_power spec ~freq:(3.0 *. f1) in
  let thd_db = Sigkit.Decibel.db_of_power_ratio (fundamental /. Float.max 1e-300 third) in
  { gain_db; cutoff_error_hz; offset_v; thd_db }

type spec = {
  max_cutoff_error_hz : float;
  gain_target_db : float;
  max_gain_error_db : float;
  max_offset_v : float;
  min_thd_db : float;
}

let default_spec =
  {
    max_cutoff_error_hz = 50e3;
    gain_target_db = 20.0;
    max_gain_error_db = 1.0;
    max_offset_v = 2e-3;
    min_thd_db = 40.0;
  }

let in_spec spec m =
  m.cutoff_error_hz <= spec.max_cutoff_error_hz
  && Float.abs (m.gain_db -. spec.gain_target_db) <= spec.max_gain_error_db
  && Float.abs m.offset_v <= spec.max_offset_v
  && m.thd_db >= spec.min_thd_db
