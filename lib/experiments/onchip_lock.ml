type t = {
  unlocked_snr_db : float;
  correct_key_snr_db : float;
  wrong_key_snrs_db : float list;
  measurements : int;
  alu_operations : int;
  key_bits : int;
}

let snr_of (ctx : Context.t) config =
  (Engine.Service.eval
     (Engine.Request.make
        ~die:(Engine.Request.die_of_receiver ctx.Context.rx)
        ~standard:ctx.Context.standard ~config Engine.Request.Snr_mod))
    .Metrics.Spec.snr_mod_db

let run ?(n_wrong = 6) ?(seed = 404) (ctx : Context.t) =
  let rng = Sigkit.Rng.create seed in
  let locked = Calibration.Onchip.lock_alu rng () in
  let key_bits = Array.length locked.Netlist.Logic_lock.correct_key in
  let plain = Calibration.Onchip.create ctx.Context.rx in
  let unlocked_config = Calibration.Onchip.run plain in
  let correct_config =
    Calibration.Onchip.run
      (Calibration.Onchip.create_locked ctx.Context.rx ~locked_alu:locked
         ~key:locked.Netlist.Logic_lock.correct_key)
  in
  let wrong_key_snrs_db =
    List.init n_wrong (fun _ ->
        let key = Array.init key_bits (fun _ -> Sigkit.Rng.bool rng) in
        let config =
          Calibration.Onchip.run
            (Calibration.Onchip.create_locked ctx.Context.rx ~locked_alu:locked ~key)
        in
        snr_of ctx config)
  in
  {
    unlocked_snr_db = snr_of ctx unlocked_config;
    correct_key_snr_db = snr_of ctx correct_config;
    wrong_key_snrs_db;
    measurements = Calibration.Onchip.measurements plain;
    alu_operations = Calibration.Onchip.alu_operations plain;
    key_bits;
  }

let checks (ctx : Context.t) t =
  let spec = ctx.Context.standard.Rfchain.Standards.min_snr_db in
  [
    ("self-calibration reaches spec", t.unlocked_snr_db >= spec);
    ( "correct logic key preserves self-calibration",
      Float.abs (t.correct_key_snr_db -. t.unlocked_snr_db) < 0.5 );
    ( "most wrong logic keys leave the chip out of spec",
      let failing = List.length (List.filter (fun s -> s < spec) t.wrong_key_snrs_db) in
      2 * failing > List.length t.wrong_key_snrs_db );
  ]

let print ctx t =
  Printf.printf "# Calibration-loop locking [10] on the self-calibrating receiver\n";
  Printf.printf
    "self-calibration (unlocked ALU): SNR %.1f dB in %d measurements, %d gate-level ALU ops\n"
    t.unlocked_snr_db t.measurements t.alu_operations;
  Printf.printf "locked ALU (%d key bits), correct key: SNR %.1f dB\n" t.key_bits
    t.correct_key_snr_db;
  List.iteri
    (fun i snr -> Printf.printf "wrong key %d: self-calibration converged to SNR %6.1f dB\n" i snr)
    t.wrong_key_snrs_db;
  List.iter (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (checks ctx t)
