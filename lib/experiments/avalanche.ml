type distance_stat = {
  distance : int;
  mean_snr_db : float;
  max_snr_db : float;
  samples : int;
}

type bit_impact = {
  bit : int;
  field : string;
  snr_drop_db : float;
}

type t = {
  golden_snr_db : float;
  by_distance : distance_stat list;
  single_bit : bit_impact list;
}

let flip_bits rng config n =
  let word = ref (Rfchain.Config.to_bits config) in
  let flipped = Hashtbl.create 8 in
  let remaining = ref n in
  while !remaining > 0 do
    let pos = Sigkit.Rng.int_range rng 0 63 in
    if not (Hashtbl.mem flipped pos) then begin
      Hashtbl.add flipped pos ();
      word := Int64.logxor !word (Int64.shift_left 1L pos);
      decr remaining
    end
  done;
  Rfchain.Config.of_bits !word

(* Walk the layout: fields are contiguous, in declaration order. *)
let field_of_bit bit =
  let rec walk names offset =
    match names with
    | [] -> "?"
    | name :: rest ->
      let width = Rfchain.Config.field_width name in
      if bit < offset + width then name else walk rest (offset + width)
  in
  walk Rfchain.Config.field_names 0

let run ?(distances = [ 1; 2; 4; 8; 16; 32 ]) ?(samples_per_distance = 6) (ctx : Context.t) =
  let die = Engine.Request.die_of_receiver ctx.Context.rx in
  let standard = ctx.Context.standard in
  let snr_batch configs =
    Engine.Service.eval_batch
      (List.map
         (fun config -> Engine.Request.make ~die ~standard ~config Engine.Request.Snr_mod)
         configs)
    |> List.map (fun m -> m.Metrics.Spec.snr_mod_db)
  in
  let golden_snr_db = List.hd (snr_batch [ ctx.Context.golden ]) in
  let rng = Sigkit.Rng.create 1717 in
  (* Candidate generation consumes the RNG sequentially (unchanged);
     measurement is deferred to one engine batch per distance. *)
  let by_distance =
    List.map
      (fun distance ->
        let snrs =
          snr_batch
            (List.init samples_per_distance (fun _ ->
                 flip_bits rng ctx.Context.golden distance))
        in
        {
          distance;
          mean_snr_db = List.fold_left ( +. ) 0.0 snrs /. float_of_int samples_per_distance;
          max_snr_db = List.fold_left Float.max neg_infinity snrs;
          samples = samples_per_distance;
        })
      distances
  in
  let single_bit_snrs =
    snr_batch
      (List.init 64 (fun bit ->
           Rfchain.Config.of_bits
             (Int64.logxor (Rfchain.Config.to_bits ctx.Context.golden)
                (Int64.shift_left 1L bit))))
  in
  let single_bit =
    List.mapi
      (fun bit snr -> { bit; field = field_of_bit bit; snr_drop_db = golden_snr_db -. snr })
      single_bit_snrs
    |> List.sort (fun a b -> compare b.snr_drop_db a.snr_drop_db)
  in
  { golden_snr_db; by_distance; single_bit }

let checks (ctx : Context.t) t =
  let spec = ctx.Context.standard.Rfchain.Standards.min_snr_db in
  let d8 = List.find_opt (fun s -> s.distance = 8) t.by_distance in
  let d32 = List.find_opt (fun s -> s.distance = 32) t.by_distance in
  let strong_bits = List.filter (fun b -> b.snr_drop_db > 10.0) t.single_bit in
  let strong_fields = List.sort_uniq compare (List.map (fun b -> b.field) strong_bits) in
  [
    (* Weak trim bits exist (the paper: a small fraction of key
       combinations can still perform), so near-distance worst cases
       are not guaranteed broken — but typical 8-bit corruption is. *)
    ( "8 flipped bits break the spec on average",
      match d8 with
      | Some s -> s.mean_snr_db < spec
      | None -> false );
    ( "heavily corrupted keys (32 bits) never work",
      match d32 with
      | Some s -> s.max_snr_db < spec
      | None -> false );
    ("several single bits are already fatal (> 10 dB)", List.length strong_bits >= 4);
    ( "strong bits include the mode/coarse-tuning fields",
      List.exists
        (fun f -> List.mem f strong_fields)
        [ "fb_enable"; "comp_clock_enable"; "gmin_enable"; "cap_coarse"; "loop_delay" ] );
  ]

let print t =
  Printf.printf "# Key-distance avalanche\n";
  Printf.printf "golden key: %.1f dB\n" t.golden_snr_db;
  Printf.printf "# flipped bits   mean SNR   worst-case (max) SNR\n";
  List.iter
    (fun s -> Printf.printf "%12d   %8.1f   %8.1f\n" s.distance s.mean_snr_db s.max_snr_db)
    t.by_distance;
  Printf.printf "\nstrongest single key bits:\n";
  List.iteri
    (fun i b ->
      if i < 10 then
        Printf.printf "  bit %2d (%-18s): -%.1f dB\n" b.bit b.field b.snr_drop_db)
    t.single_bit
