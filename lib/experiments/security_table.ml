type empirical = {
  attack : string;
  trials : int;
  queries : int;
  budget : int;
  oracle_exhausted : bool;
  best_snr_mod_db : float;
  success : bool;
  transfers : (int * int) option;
  projected_wall_clock : string;
}

type t = {
  cost_rows : Attacks.Cost.row list;
  empirical : empirical list;
  cap_unique_codes : int;
  cap_unit_switched_codes : int;
  remaining_bits_after_tap : int;
}

let project trials =
  Attacks.Cost.seconds_to_human (float_of_int trials *. Attacks.Cost.snr_trial_seconds)

let transfer_lot = 5

(* The bench watchdog is a backstop, not the search budget: attacks
   count their own evaluations against [budget], and the watchdog trips
   only when a search's accounting under-counts the measurements it
   spends (the Oracle_exhausted taxonomy). *)
let watchdog_factor = 6

let run ?(budget = 400) ?(attacker_seed = 777) (ctx : Context.t) =
  let key = Core.Key.make ~standard:ctx.Context.standard ~chip:ctx.Context.chip ctx.Context.golden in
  let oracle = Attacks.Oracle.deploy ctx.Context.standard ~chip_seed:ctx.Context.seed ~key in
  let fresh_refab seed =
    Attacks.Oracle.refabricate ~trial_limit:(watchdog_factor * budget) oracle ~attacker_seed:seed
  in
  (* Audit each attack against the process-wide measurement odometer:
     [queries] is what the attack *actually* consumed, independent of
     the trial count it reports about itself. *)
  let audited name f =
    (* Cancellation point per attack: the table stops between attacks,
       never mid-search with a half-charged odometer. *)
    Telemetry.Cancel.poll ();
    let before = Attacks.Oracle.global_queries () in
    let r = Telemetry.Span.with_ ~name:("attack." ^ name) f in
    (r, Attacks.Oracle.global_queries () - before)
  in
  (* A key recovered on the attacker's own die is only a piracy win if
     it unlocks other dice (the paper's transferability argument). *)
  let transfer_count config =
    List.length
      (List.filter Fun.id
         (Core.Threat_model.evaluate_many ctx.Context.standard
            (List.init transfer_lot (fun i -> (880000 + i, config)))))
  in
  let of_brute (r : Attacks.Brute_force.result) queries =
    {
      attack = "brute force (random keys)";
      trials = r.Attacks.Brute_force.trials;
      queries;
      budget;
      oracle_exhausted = r.Attacks.Brute_force.oracle_exhausted;
      best_snr_mod_db = r.Attacks.Brute_force.best_snr_mod_db;
      success = r.Attacks.Brute_force.success;
      transfers =
        (if r.Attacks.Brute_force.success then
           Some (transfer_count r.Attacks.Brute_force.best_config, transfer_lot)
         else None);
      projected_wall_clock = project r.Attacks.Brute_force.trials;
    }
  in
  let of_opt (r : Attacks.Optimize.result) queries =
    {
      attack = r.Attacks.Optimize.attack;
      trials = r.Attacks.Optimize.evaluations;
      queries;
      budget;
      oracle_exhausted = r.Attacks.Optimize.termination = Attacks.Optimize.Oracle_exhausted;
      best_snr_mod_db = r.Attacks.Optimize.best_snr_mod_db;
      success = r.Attacks.Optimize.success;
      transfers =
        (if r.Attacks.Optimize.success then
           Some (transfer_count r.Attacks.Optimize.best_config, transfer_lot)
         else None);
      projected_wall_clock = project r.Attacks.Optimize.evaluations;
    }
  in
  let of_sub (r : Attacks.Subblock.result) queries =
    {
      attack = r.Attacks.Subblock.attack;
      trials = r.Attacks.Subblock.trials;
      queries;
      budget;
      oracle_exhausted = r.Attacks.Subblock.oracle_exhausted;
      best_snr_mod_db = r.Attacks.Subblock.best_snr_mod_db;
      success = r.Attacks.Subblock.success;
      transfers = None;
      projected_wall_clock = project r.Attacks.Subblock.trials;
    }
  in
  let empirical =
    [
      (let r, q =
         audited "brute_force" (fun () -> Attacks.Brute_force.run ~budget (fresh_refab attacker_seed))
       in
       of_brute r q);
      (let r, q =
         audited "simulated_annealing" (fun () ->
             Attacks.Optimize.simulated_annealing ~budget (fresh_refab (attacker_seed + 1)))
       in
       of_opt r q);
      (let r, q =
         audited "genetic" (fun () ->
             Attacks.Optimize.genetic ~budget (fresh_refab (attacker_seed + 2)))
       in
       of_opt r q);
      (let r, q =
         audited "cap_subkey" (fun () ->
             Attacks.Subblock.cap_only_attack ~budget (fresh_refab (attacker_seed + 3)))
       in
       of_sub r q);
      (let r, q =
         audited "tapped_refab" (fun () ->
             Attacks.Subblock.tapped_attack ~budget ctx.Context.standard
               ~attacker_seed:(attacker_seed + 4))
       in
       of_sub r q);
    ]
  in
  (* Capacitor sub-key uniqueness (Section VI-B.1's binary-weighted
     argument): codes within half a fine-unit of the target value. *)
  let unique_codes coding =
    let array =
      Circuit.Cap_array.create ~coding ctx.Context.chip ~name:"sdm.tank1.cc" ~bits:8
        ~unit_cap:80e-15 ~mismatch_sigma_pct:1.0
    in
    let target = Circuit.Cap_array.capacitance array ctx.Context.golden.Rfchain.Config.cap_coarse in
    Circuit.Cap_array.code_count_for_capacitance array ~target ~tolerance:40e-15
  in
  {
    cost_rows = Attacks.Cost.brute_force_table ();
    empirical;
    cap_unique_codes = unique_codes Circuit.Cap_array.Binary_weighted;
    cap_unit_switched_codes = unique_codes Circuit.Cap_array.Unit_switched;
    remaining_bits_after_tap =
      Attacks.Subblock.remaining_key_space_bits
        ~recovered:[ "cap_coarse"; "cap_fine"; "gm_q" ];
  }

let checks t =
  let is_tap e = e.attack = "tapped re-fab (oscillation access granted)" in
  [
    ( "no attack recovered a transferable key",
      List.for_all
        (fun e ->
          match e.transfers with
          | Some (worked, _) -> worked = 0
          | None -> true)
        t.empirical );
    ( "blind random search never unlocked even the attacker's own die",
      List.for_all
        (fun e -> e.attack <> "brute force (random keys)" || not e.success)
        t.empirical );
    ( "granting the internal tank tap flips the outcome (ablation)",
      List.exists (fun e -> is_tap e && e.success) t.empirical );
    ( "oracle audit charged every attack with real measurements",
      List.for_all (fun e -> e.queries > 0) t.empirical );
    ("binary-weighted capacitor sub-key is unique", t.cap_unique_codes = 1);
    ( "unit-switched ablation would multiply sub-keys",
      t.cap_unit_switched_codes > t.cap_unique_codes );
    ("tap ablation still leaves > 40 key bits", t.remaining_bits_after_tap > 40);
  ]

let print t =
  Printf.printf "# Security analysis (Section VI-B)\n\n";
  Printf.printf "## Projected attack costs (paper per-trial times, 2^63 expected trials)\n";
  List.iter (fun r -> Format.printf "%a@." Attacks.Cost.pp_row r) t.cost_rows;
  Printf.printf "\n## Empirical attacks on a re-fabricated die (per-attack budgets)\n";
  Printf.printf "%-45s %7s  %15s  %12s  %-8s %s\n" "attack" "trials" "queries(act/bud)"
    "raw probe max" "success" "projected wall clock @20min/trial";
  List.iter
    (fun e ->
      let success_text =
        match (e.success, e.transfers) with
        | false, _ -> "no"
        | true, Some (worked, lot) -> Printf.sprintf "own die (transfers %d/%d)" worked lot
        | true, None -> "own die"
      in
      let queries_text =
        Printf.sprintf "%d/%d%s" e.queries e.budget (if e.oracle_exhausted then "!" else "")
      in
      Printf.printf "%-45s %7d  %15s  %9.1f dB  %-26s %s\n" e.attack e.trials queries_text
        e.best_snr_mod_db success_text e.projected_wall_clock)
    t.empirical;
  Printf.printf
    "queries = measurements actually consumed (bench + oscillation probes, telemetry odometer); \
     ! = stopped by the oracle watchdog (armed at %dx budget)\n"
    watchdog_factor;
  Printf.printf "\n## Capacitor sub-key uniqueness\n";
  Printf.printf "binary-weighted: %d code(s) hit the target capacitance; unit-switched ablation: %d\n"
    t.cap_unique_codes t.cap_unit_switched_codes;
  Printf.printf "internal-tap ablation leaves %d unknown key bits\n" t.remaining_bits_after_tap;
  List.iter (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (checks t)
