type t = {
  eval : Core.Lock_eval.t;
  deceptive : Core.Lock_eval.key_result;
  summary : Core.Lock_eval.summary;
}

let run ?(n_invalid = 100) (ctx : Context.t) =
  (* Cancellation point at the stage boundary: a SIGINT or deadline
     between figures stops before the next ensemble starts. *)
  Telemetry.Cancel.poll ();
  let eval =
    (* Same derived seed as Context.invalid_ensemble, so the deceptive
       key Figs. 8/10/11/12 reuse is guaranteed to be in this
       ensemble. *)
    Core.Lock_eval.evaluate ~n_invalid ~seed:(Context.ensemble_seed ctx) ctx.Context.rx
      ~correct:ctx.Context.golden ()
  in
  let deceptive =
    match Core.Lock_eval.best_invalid eval with
    | Some r -> r
    | None -> eval.Core.Lock_eval.correct  (* n_invalid = 0: degenerate run *)
  in
  { eval; deceptive; summary = Core.Lock_eval.summarize eval }

let checks t =
  let s = t.summary in
  [
    ("correct key SNR(mod) > 40 dB", s.Core.Lock_eval.correct_snr_mod_db > 40.0);
    ("all invalid keys SNR(mod) < 30 dB", s.Core.Lock_eval.max_invalid_snr_mod_db < 30.0);
    ( "most invalid keys SNR(mod) < 0 dB",
      s.Core.Lock_eval.invalid_below_0db * 2 > List.length t.eval.Core.Lock_eval.invalid );
    ("a few invalid keys SNR(mod) > 10 dB", s.Core.Lock_eval.invalid_above_10db_mod >= 1);
    ("correct key SNR(rx) > 40 dB", s.Core.Lock_eval.correct_snr_rx_db > 40.0);
    (* The paper reports every invalid key below 10 dB at the receiver
       output.  Our ensemble reproduces that for >= 95% of keys; the
       stragglers (a near-tuned random draw, oscillator-harmonic
       artifacts) still miss the specification by >= 15 dB, which is
       the operational "functionality significantly corrupted" claim. *)
    ( ">= 95% of invalid keys SNR(rx) < 10 dB",
      let below =
        List.length (List.filter (fun r -> r.Core.Lock_eval.snr_rx_db < 10.0) t.eval.Core.Lock_eval.invalid)
      in
      below * 20 >= List.length t.eval.Core.Lock_eval.invalid * 19 );
    ( "every invalid key misses the spec at rx by >= 15 dB",
      s.Core.Lock_eval.max_invalid_snr_rx_db < 40.0 -. 15.0 );
  ]

let plot t ~tap ~value =
  let open Core.Lock_eval in
  let invalid =
    List.map (fun r -> { Ascii_plot.x = float_of_int r.index; y = value r; marker = '.' })
      t.eval.invalid
  in
  let deceptive =
    { Ascii_plot.x = float_of_int t.deceptive.index; y = value t.deceptive; marker = 'D' }
  in
  let correct = { Ascii_plot.x = -1.0; y = value t.eval.correct; marker = 'C' } in
  Printf.printf "%s  (C = correct key, D = deceptive key, . = invalid)\n" tap;
  Ascii_plot.print
    (Ascii_plot.render ~height:16 ~x_label:"key index" ~y_label:"SNR (dB)"
       ~y_range:(-60.0, 50.0)
       (invalid @ [ deceptive; correct ]))

let print t =
  let open Core.Lock_eval in
  Printf.printf "# Fig. 7 / Fig. 9 — SNR per key (index -1 = correct key)\n";
  Printf.printf "# index  snr_mod_db  snr_rx_db\n";
  let row r = Printf.printf "%6d  %10.2f  %9.2f\n" r.index r.snr_mod_db r.snr_rx_db in
  row t.eval.correct;
  List.iter row t.eval.invalid;
  Printf.printf "\n";
  plot t ~tap:"Fig. 7 — modulator output" ~value:(fun r -> r.snr_mod_db);
  print_newline ();
  plot t ~tap:"Fig. 9 — receiver output" ~value:(fun r -> r.snr_rx_db);
  print_newline ();
  Printf.printf "deceptive key: index %d (paper: index 7), SNR(mod) %.1f dB -> SNR(rx) %.1f dB%s\n"
    t.deceptive.index t.deceptive.snr_mod_db t.deceptive.snr_rx_db
    (if is_open_loop_passthrough t.deceptive.config then
       "  [open loop + comparator buffer: analog passthrough]"
     else "");
  let s = t.summary in
  Printf.printf
    "correct: %.1f dB (mod) / %.1f dB (rx); best invalid: %.1f / %.1f; %d/%d invalid below 0 dB\n"
    s.correct_snr_mod_db s.correct_snr_rx_db s.max_invalid_snr_mod_db s.max_invalid_snr_rx_db
    s.invalid_below_0db
    (List.length t.eval.invalid);
  List.iter (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (checks t)
