type per_die = {
  seed : int;
  key : Rfchain.Config.t;
  snr_mod_db : float;
  snr_rx_db : float;
  sfdr_db : float;
  in_spec : bool;
}

type t = {
  dice : per_die list;
  calibrated_yield : float;
  median_key : Rfchain.Config.t;
  uncalibrated_yield : float;
  transfer_rate : float;
  min_pair_distance : int;
  mean_pair_distance : float;
  field_spread : (string * int) list;
}

let calibrate_die standard seed =
  (* Cancellation point per die of the lot. *)
  Telemetry.Cancel.poll ();
  let chip = Circuit.Process.fabricate ~seed () in
  let rx = Rfchain.Receiver.create chip standard in
  let report = (Calibration.Calibrate.run ~passes:1 ~max_retries:0 rx).Calibration.Calibrate.report in
  let m =
    {
      Metrics.Spec.snr_mod_db = report.Calibration.Calibrate.snr_mod_db;
      snr_rx_db = report.Calibration.Calibrate.snr_rx_db;
      sfdr_db = Some report.Calibration.Calibrate.sfdr_db;
    }
  in
  {
    seed;
    key = report.Calibration.Calibrate.key;
    snr_mod_db = report.Calibration.Calibrate.snr_mod_db;
    snr_rx_db = report.Calibration.Calibrate.snr_rx_db;
    sfdr_db = report.Calibration.Calibrate.sfdr_db;
    in_spec = (Metrics.Spec.check standard m).Metrics.Spec.functional;
  }

let median_of xs =
  let sorted = List.sort compare xs in
  List.nth sorted (List.length sorted / 2)

let median_key dice =
  List.fold_left
    (fun acc field ->
      let codes = List.map (fun d -> Rfchain.Config.field d.key field) dice in
      Rfchain.Config.with_field acc field (median_of codes))
    Rfchain.Config.nominal Rfchain.Config.field_names

let pairs xs =
  List.concat_map (fun (i, a) -> List.filter_map (fun (j, b) -> if i < j then Some (a, b) else None)
                      (List.mapi (fun j b -> (j, b)) xs))
    (List.mapi (fun i a -> (i, a)) xs)

let run ?(lot = 8) ?(seed_base = 6000) standard =
  if lot < 2 then invalid_arg "Lot_study.run: lot too small";
  (* Die calibrations are independent full 14-step runs — the lot's
     widest fan-out.  Stream them across the engine's lanes as one
     job-level grid; index assembly keeps the lot in seed order, and
     each calibration's own engine calls take the inline
     (main-lane) or off-main (worker-lane) path automatically. *)
  let dice = Engine.Service.map_jobs (fun i -> calibrate_die standard (seed_base + i)) lot in
  let in_spec = List.filter (fun d -> d.in_spec) dice in
  let median = median_key dice in
  (* Lot-median yield and the off-diagonal transfer matrix are both
     independent (die, key) evaluations: one engine batch each. *)
  let uncal_flags =
    Core.Threat_model.evaluate_many standard (List.map (fun d -> (d.seed, median)) dice)
  in
  let uncal = List.filter_map Fun.id (List.map2 (fun d ok -> if ok then Some d else None) dice uncal_flags) in
  let transfer_flags =
    Core.Threat_model.evaluate_many standard
      (List.concat_map
         (fun donor ->
           List.filter_map
             (fun target ->
               if donor.seed = target.seed then None else Some (target.seed, donor.key))
             dice)
         dice)
  in
  let transfers = List.length (List.filter Fun.id transfer_flags) in
  let attempts = List.length transfer_flags in
  let distances = List.map (fun (a, b) -> Rfchain.Config.hamming_distance a.key b.key) (pairs dice) in
  let field_spread =
    List.map
      (fun field ->
        let codes = List.sort_uniq compare (List.map (fun d -> Rfchain.Config.field d.key field) dice) in
        (field, List.length codes))
      Rfchain.Config.field_names
  in
  {
    dice;
    calibrated_yield = float_of_int (List.length in_spec) /. float_of_int lot;
    median_key = median;
    uncalibrated_yield = float_of_int (List.length uncal) /. float_of_int lot;
    transfer_rate = float_of_int transfers /. float_of_int (max 1 attempts);
    min_pair_distance = List.fold_left min 64 distances;
    mean_pair_distance =
      List.fold_left ( +. ) 0.0 (List.map float_of_int distances)
      /. float_of_int (max 1 (List.length distances));
    field_spread;
  }

let checks t =
  [
    (* Weak-tail dice are binned out in production; high-80s yields
       are the realistic expectation. *)
    ("calibrated yield is high (>= 75%)", t.calibrated_yield >= 0.75);
    ("one fixed key does not make a product (uncalibrated yield <= 50%)", t.uncalibrated_yield <= 0.5);
    ("keys rarely transfer between dice (<= 35%)", t.transfer_rate <= 0.35);
    ("every key pair differs in several bits", t.min_pair_distance >= 3);
    ( "the capacitor sub-keys spread across the lot",
      match List.assoc_opt "cap_fine" t.field_spread with
      | Some n -> n >= (List.length t.dice + 1) / 2
      | None -> false );
  ]

let print t =
  Printf.printf "# Production-lot study (%d dice)\n" (List.length t.dice);
  Printf.printf "# seed    SNR(mod)  SNR(rx)  SFDR   in-spec  key\n";
  List.iter
    (fun d ->
      Printf.printf "%6d   %7.1f  %7.1f  %5.1f  %-7s  0x%016Lx\n" d.seed d.snr_mod_db d.snr_rx_db
        d.sfdr_db
        (if d.in_spec then "yes" else "NO")
        (Rfchain.Config.to_bits d.key))
    t.dice;
  Printf.printf "calibrated yield      : %.0f%%\n" (100.0 *. t.calibrated_yield);
  Printf.printf "uncalibrated yield    : %.0f%% (lot-median key 0x%016Lx)\n"
    (100.0 *. t.uncalibrated_yield)
    (Rfchain.Config.to_bits t.median_key);
  Printf.printf "key transfer rate     : %.0f%% of (donor, target) pairs\n" (100.0 *. t.transfer_rate);
  Printf.printf "pairwise key distance : min %d, mean %.1f bits\n" t.min_pair_distance
    t.mean_pair_distance;
  Printf.printf "per-field code spread :";
  List.iter (fun (f, n) -> if n > 1 then Printf.printf " %s:%d" f n) t.field_spread;
  print_newline ();
  List.iter (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (checks t)
