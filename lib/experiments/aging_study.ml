type point = {
  hours : float;
  snr_db : float;
  in_spec : bool;
  recalibrated_snr_db : float;
  key_drift_bits : int;
}

type t = {
  fresh_snr_db : float;
  points : point list;
}

let snr_of ~standard die config =
  (Engine.Service.eval (Engine.Request.make ~die ~standard ~config Engine.Request.Snr_mod))
    .Metrics.Spec.snr_mod_db

let run ?(hours = [ 1e3; 2e4; 1e5 ]) (ctx : Context.t) =
  let standard = ctx.Context.standard in
  let fresh_snr_db =
    snr_of ~standard (Engine.Request.die_of_receiver ctx.Context.rx) ctx.Context.golden
  in
  let point h =
    (* Cancellation point per aging step. *)
    Telemetry.Cancel.poll ();
    (* The aged die has its own engine identity (the fingerprint folds
       in age_hours), so aged-key measurements cache independently of
       the fresh die's. *)
    let aged_chip = Circuit.Process.age ctx.Context.chip ~hours:h in
    let aged_rx = Rfchain.Receiver.create aged_chip ctx.Context.standard in
    let snr_db = snr_of ~standard (Engine.Request.die_of_chip aged_chip) ctx.Context.golden in
    let recal = (Calibration.Calibrate.run ~passes:1 ~max_retries:0 aged_rx).Calibration.Calibrate.report in
    {
      hours = h;
      snr_db;
      in_spec = snr_db >= ctx.Context.standard.Rfchain.Standards.min_snr_db;
      recalibrated_snr_db = recal.Calibration.Calibrate.snr_mod_db;
      key_drift_bits =
        Rfchain.Config.hamming_distance ctx.Context.golden recal.Calibration.Calibrate.key;
    }
  in
  { fresh_snr_db; points = List.map point hours }

let checks (ctx : Context.t) t =
  ignore ctx;
  let last = List.nth t.points (List.length t.points - 1) in
  let monotone_loss =
    let rec check prev = function
      | [] -> true
      | p :: rest -> p.snr_db <= prev +. 1.0 && check p.snr_db rest
    in
    check t.fresh_snr_db t.points
  in
  [
    ("aging monotonically erodes the original key's SNR", monotone_loss);
    ("a decade of use costs real margin (> 1.5 dB)", t.fresh_snr_db -. last.snr_db > 1.5);
    ( "re-calibration recovers the aged die",
      List.for_all (fun p -> p.recalibrated_snr_db >= p.snr_db -. 0.5) t.points );
    ( "the recovered key differs from the provisioned one (detection signature)",
      last.key_drift_bits > 0 );
  ]

let print t =
  Printf.printf "# Aging and recycled-part study\n";
  Printf.printf "fresh die, provisioned key: SNR %.1f dB\n" t.fresh_snr_db;
  Printf.printf "# hours    SNR(old key)  in-spec  SNR(recal)  key drift (bits)\n";
  List.iter
    (fun p ->
      Printf.printf "%8.0f   %10.1f    %-7s  %8.1f    %d\n" p.hours p.snr_db
        (if p.in_spec then "yes" else "NO")
        p.recalibrated_snr_db p.key_drift_bits)
    t.points;
  (* The checks need the context; callers print them via [checks]. *)
  ()
