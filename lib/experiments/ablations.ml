type slicing = {
  deceptive_snr_rx_sliced_db : float;
  deceptive_snr_rx_unsliced_db : float;
}

type variation = {
  transfer_snr_with_variation_db : float;
  transfer_snr_without_variation_db : float;
  own_snr_db : float;
}

type t = {
  slicing : slicing;
  variation : variation;
}

let rx_snr ?(slice = true) rx config ~n_fft =
  let fs = Rfchain.Receiver.fs rx in
  let ratio = Rfchain.Decimator.ratio Rfchain.Decimator.default_config in
  let n = n_fft * ratio in
  let f_in = Rfchain.Receiver.test_tone_frequency rx ~n in
  let input = Sigkit.Waveform.tone_dbm ~p_dbm:(-25.0) ~freq:f_in ~fs n in
  let res = Rfchain.Receiver.run rx ~analog:config ~slice ~input () in
  let band = Rfchain.Standards.band_hz (Rfchain.Receiver.standard rx) in
  Metrics.Snr.of_baseband ~n_fft ~fs:res.Rfchain.Receiver.fs_baseband
    ~f_signal:(f_in -. (fs /. 4.0))
    ~f_band:(band /. 2.0) res.Rfchain.Receiver.baseband_i

let run (ctx : Context.t) =
  let deceptive = Context.deceptive_example ctx in
  let slicing =
    {
      deceptive_snr_rx_sliced_db = rx_snr ctx.Context.rx deceptive ~n_fft:2048;
      deceptive_snr_rx_unsliced_db = rx_snr ~slice:false ctx.Context.rx deceptive ~n_fft:2048;
    }
  in
  (* Key transfer: calibrate die A, apply its key to die B — once on
     the real (varying) process, once on an ideal process. *)
  let snr_on chip config =
    (Engine.Service.eval
       (Engine.Request.make
          ~die:(Engine.Request.die_of_chip chip)
          ~standard:ctx.Context.standard ~config Engine.Request.Snr_mod))
      .Metrics.Spec.snr_mod_db
  in
  let transfer ~lot_sigma_scale =
    let fabricate seed = Circuit.Process.fabricate ~lot_sigma_scale ~seed () in
    let rx_a = Rfchain.Receiver.create (fabricate 4242) ctx.Context.standard in
    let key_a = Calibration.Calibrate.quick rx_a in
    (key_a, snr_on (fabricate 4343) key_a)
  in
  let key_a, with_variation = transfer ~lot_sigma_scale:1.0 in
  let _, without_variation = transfer ~lot_sigma_scale:0.0 in
  let own = snr_on (Circuit.Process.fabricate ~seed:4242 ()) key_a in
  {
    slicing;
    variation =
      {
        transfer_snr_with_variation_db = with_variation;
        transfer_snr_without_variation_db = without_variation;
        own_snr_db = own;
      };
  }

let checks (ctx : Context.t) t =
  let min_snr = ctx.Context.standard.Rfchain.Standards.min_snr_db in
  [
    ( "slicing collapses the deceptive key (sliced < 10 dB)",
      t.slicing.deceptive_snr_rx_sliced_db < 10.0 );
    ( "without slicing the deceptive key would survive (> sliced + 10 dB)",
      t.slicing.deceptive_snr_rx_unsliced_db > t.slicing.deceptive_snr_rx_sliced_db +. 10.0 );
    ( "with process variation a stolen key misses spec on another die",
      t.variation.transfer_snr_with_variation_db < min_snr );
    ( "without process variation keys transfer freely",
      t.variation.transfer_snr_without_variation_db >= min_snr );
  ]

let print ctx t =
  Printf.printf "# Ablations\n";
  Printf.printf "## digital 1-bit slicing (behind Fig. 9)\n";
  Printf.printf "deceptive key SNR(rx): %.1f dB sliced, %.1f dB with slicing disabled\n"
    t.slicing.deceptive_snr_rx_sliced_db t.slicing.deceptive_snr_rx_unsliced_db;
  Printf.printf "## per-chip process variation (key transferability)\n";
  Printf.printf "die A key on die A: %.1f dB; on die B: %.1f dB (nominal process), %.1f dB (variation off)\n"
    t.variation.own_snr_db t.variation.transfer_snr_with_variation_db
    t.variation.transfer_snr_without_variation_db;
  List.iter (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (checks ctx t)
