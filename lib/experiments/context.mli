(** Shared experimental setup for the paper's evaluation (Section VI).

    One die (default seed 42), the maximum-frequency standard (3 GHz),
    calibrated once; all figures are measured on this setup, exactly as
    the paper demonstrates everything on one chip at the maximum centre
    frequency. *)

type t = {
  seed : int;
  standard : Rfchain.Standards.t;
  chip : Circuit.Process.chip;
  rx : Rfchain.Receiver.t;
  calibration : Calibration.Calibrate.report;
  golden : Rfchain.Config.t;     (** the calibrated secret key *)
}

val create : ?seed:int -> ?standard:Rfchain.Standards.t -> ?fast:bool -> unit -> t
(** Fabricate and calibrate.  [fast] (default false) uses the 1-pass
    calibration — for tests and benchmark kernels. *)

val deceptive_example : t -> Rfchain.Config.t
(** A representative "index 7" deceptive key: the feedback loop open
    and the comparator in buffer mode, everything else as drawn by the
    seeded ensemble — regenerated deterministically so Figs. 8/10/11/12
    always show the same key the Fig. 7 ensemble contains. *)

val invalid_ensemble : ?n:int -> t -> Rfchain.Config.t list
(** The seeded 100-key ensemble of Figs. 7/9, derived from the
    context's chip seed via {!ensemble_seed} so distinct chips face
    distinct ensembles. *)

val ensemble_seed : t -> int
(** The RNG seed behind {!invalid_ensemble} — pass it to
    [Core.Lock_eval.evaluate] to draw the exact same ensemble. *)
