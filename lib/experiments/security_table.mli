(** Section VI-B security analysis, rendered as a table.

    (a) The projected attack-cost rows at the paper's per-trial times
    (20 min SNR / 3 h sweep / 30 min SFDR, 2^63 expected trials);
    (b) empirical attack runs within realistic trial budgets: brute
    force, simulated annealing, genetic search, the capacitor-sub-key
    attack, and the internal-tap ablation; (c) the binary-weighted
    capacitor uniqueness argument. *)

type empirical = {
  attack : string;
  trials : int;                   (** the attack's own evaluation count *)
  queries : int;                  (** measurements actually consumed, from the
                                      telemetry odometer ({!Attacks.Oracle.global_queries}
                                      delta around the attack) — the number attack
                                      papers report as oracle cost *)
  budget : int;                   (** the configured per-attack trial budget *)
  oracle_exhausted : bool;        (** the bench watchdog stopped the search early *)
  best_snr_mod_db : float;        (** raw probe maximum (artifact-prone) *)
  success : bool;                 (** verified full-spec unlock of the attacker's own re-fab die *)
  transfers : (int * int) option; (** (dice unlocked, lot size) for a successful attack's key *)
  projected_wall_clock : string;  (** at 20 min/trial, human units *)
}

type t = {
  cost_rows : Attacks.Cost.row list;
  empirical : empirical list;
  cap_unique_codes : int;         (** codes hitting the target capacitance *)
  cap_unit_switched_codes : int;  (** same for the unit-switched ablation *)
  remaining_bits_after_tap : int;
}

val run : ?budget:int -> ?attacker_seed:int -> Context.t -> t
(** [budget] trials per empirical attack (default 400).  Each attack's
    refab bench is armed with a hard watchdog at 6x the budget, and the
    measurements it actually consumes are audited against the process
    telemetry odometer and reported next to the budget.

    The paper's §IV-B.3 logic chain is reproduced faithfully: an
    attacker with a re-fabricated die and fast hardware trials *can*
    eventually land a key for that one die (it amounts to re-deriving a
    calibration for their own silicon); what defeats piracy is that the
    key does not transfer — per-die process variations make every
    fielded chip need its own key, and fielded chips do not expose
    their programming bits.  Any empirically successful attack is
    therefore followed by a key-transfer trial across a lot of fresh
    dice. *)

val checks : t -> (string * bool) list

val print : t -> unit
