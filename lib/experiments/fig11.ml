type t = {
  correct : Metrics.Dynamic_range.segment list;
  deceptive : Metrics.Dynamic_range.segment list;
  dr_correct_db : float;
  dr_deceptive_db : float;
}

let run ?(n_fft = 1024) (ctx : Context.t) =
  let die = Engine.Request.die_of_receiver ctx.Context.rx in
  let standard = ctx.Context.standard in
  let sweep config =
    Telemetry.Cancel.poll ();
    (* Every point of the three-segment power sweep as one streamed
       engine grid: all segments' points are in flight at once, and
       index assembly keeps the returned SNRs in point order. *)
    let measure_batch points =
      let stream =
        Engine.Service.eval_stream
          (List.map
             (fun (p_dbm, gain_code) ->
               Engine.Request.make ~die ~standard ~config
                 (Engine.Request.Snr_rx_at_power { n_fft; p_dbm; gain_code }))
             points)
      in
      match Engine.Service.stream_drain stream with
      | Ok ms -> List.map (fun m -> m.Metrics.Spec.snr_rx_db) ms
      | Error _ -> assert false (* no per-stream deadline is attached here *)
    in
    Metrics.Dynamic_range.sweep_batch ~measure_batch
  in
  let correct = sweep ctx.Context.golden in
  let deceptive = sweep (Context.deceptive_example ctx) in
  (* Usable-communication threshold for the dynamic-range figure: the
     spec SNR applies at the reference -25 dBm point, not across the
     whole input range. *)
  let usable_snr_db = 25.0 in
  {
    correct;
    deceptive;
    dr_correct_db = Metrics.Dynamic_range.dynamic_range_db correct ~min_snr_db:usable_snr_db;
    dr_deceptive_db = Metrics.Dynamic_range.dynamic_range_db deceptive ~min_snr_db:usable_snr_db;
  }

let checks (ctx : Context.t) t =
  ignore ctx;
  let peak segs =
    List.fold_left
      (fun acc s ->
        List.fold_left (fun acc p -> Float.max acc p.Metrics.Dynamic_range.snr_db) acc
          s.Metrics.Dynamic_range.points)
      neg_infinity segs
  in
  [
    ("correct key covers a wide dynamic range (>= 50 dB usable)", t.dr_correct_db >= 50.0);
    ("locked circuit has (almost) no usable range (<= 10 dB)", t.dr_deceptive_db <= 10.0);
    ("correct peak SNR exceeds locked peak by > 20 dB", peak t.correct -. peak t.deceptive > 20.0);
  ]

let print ctx t =
  Printf.printf "# Fig. 11 — SNR vs input power (5 dBm steps, three VGLNA segments)\n";
  let print_run label segs =
    Printf.printf "## %s\n# p_dbm  gain_code  snr_db\n" label;
    List.iter
      (fun s ->
        Printf.printf "# segment %s\n" s.Metrics.Dynamic_range.label;
        List.iter
          (fun p ->
            Printf.printf "%7.1f  %9d  %7.2f\n" p.Metrics.Dynamic_range.p_dbm
              p.Metrics.Dynamic_range.gain_code p.Metrics.Dynamic_range.snr_db)
          s.Metrics.Dynamic_range.points)
      segs
  in
  print_run "correct key" t.correct;
  print_run "deceptive (locked) key" t.deceptive;
  let points marker segs =
    List.concat_map
      (fun s ->
        List.map (fun p -> (p.Metrics.Dynamic_range.p_dbm, p.Metrics.Dynamic_range.snr_db))
          s.Metrics.Dynamic_range.points)
      segs
    |> Ascii_plot.series ~marker
  in
  Printf.printf "\nSNR vs input power (o = correct, x = locked)\n";
  Ascii_plot.print
    (Ascii_plot.render ~height:16 ~x_label:"input power (dBm)" ~y_label:"SNR (dB)"
       (points 'o' t.correct @ points 'x' t.deceptive));
  Printf.printf "dynamic range: correct %.0f dB, locked %.0f dB\n" t.dr_correct_db
    t.dr_deceptive_db;
  List.iter (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (checks ctx t)
