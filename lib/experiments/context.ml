type t = {
  seed : int;
  standard : Rfchain.Standards.t;
  chip : Circuit.Process.chip;
  rx : Rfchain.Receiver.t;
  calibration : Calibration.Calibrate.report;
  golden : Rfchain.Config.t;
}

let create ?(seed = 42) ?(standard = Rfchain.Standards.max_frequency) ?(fast = false) () =
  Telemetry.Span.with_ ~name:"context.create"
    ~attrs:[ ("seed", string_of_int seed); ("standard", standard.Rfchain.Standards.name) ]
  @@ fun () ->
  let chip = Circuit.Process.fabricate ~seed () in
  let rx = Rfchain.Receiver.create chip standard in
  let outcome =
    if fast then Calibration.Calibrate.run ~passes:1 rx else Calibration.Calibrate.run rx
  in
  let calibration = outcome.Calibration.Calibrate.report in
  { seed; standard; chip; rx; calibration; golden = calibration.Calibration.Calibrate.key }

(* The invalid-key ensemble is part of the experimental identity of a
   context: distinct chips must face distinct ensembles (the historical
   fixed seed 2020 gave every context the same 100 keys regardless of
   [t.seed]).  The derivation keeps 2020 as the paper-era base so the
   intent stays visible, and mixes in the context seed with an odd
   multiplier so nearby seeds land on unrelated ensembles. *)
let ensemble_seed t = 2020 + (7919 * t.seed)

let invalid_ensemble ?(n = 100) t =
  let rng = Sigkit.Rng.create (ensemble_seed t) in
  List.init n (fun _ -> Rfchain.Config.random rng)

let deceptive_example t =
  (* Prefer an open-loop passthrough key from the ensemble itself (the
     paper's key 7 was among the random draws); pick the one with a
     non-oscillating tank so the output is an analog waveform rather
     than rail-to-rail oscillation. *)
  let candidates =
    List.filter
      (fun c ->
        Core.Lock_eval.is_open_loop_passthrough c
        && c.Rfchain.Config.gmin_enable
        && not (Rfchain.Sdm.oscillates (Rfchain.Receiver.sdm_of_config t.rx c)))
      (invalid_ensemble t)
  in
  match candidates with
  | c :: _ -> c
  | [] ->
    (* Statistically ~6 such keys exist per 100; fall back to a forced
       variant of the first ensemble key if a reseeded run has none. *)
    (match invalid_ensemble t with
    | c :: _ -> { c with fb_enable = false; comp_clock_enable = false; gmin_enable = true; gm_q = 8 }
    | [] -> assert false)
