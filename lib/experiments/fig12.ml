type point = {
  p_dbm : float;
  sfdr_correct_db : float;
  sfdr_deceptive_db : float;
}

type t = {
  points : point list;
  mean_gap_db : float;
}

let default_powers = [ -40.0; -35.0; -30.0; -25.0; -20.0; -15.0 ]

let run ?(powers = default_powers) (ctx : Context.t) =
  let deceptive = Context.deceptive_example ctx in
  let die = Engine.Request.die_of_receiver ctx.Context.rx in
  let standard = ctx.Context.standard in
  (* Both keys at every power as one engine batch (the two SFDR
     captures per point are independent). *)
  let sfdrs =
    Engine.Service.eval_batch
      (List.concat_map
         (fun p_dbm ->
           List.map
             (fun config ->
               Engine.Request.make ~p_dbm ~die ~standard ~config Engine.Request.Sfdr)
             [ ctx.Context.golden; deceptive ])
         powers)
    |> List.map (fun m -> Option.get m.Metrics.Spec.sfdr_db)
  in
  let rec points powers sfdrs =
    match powers, sfdrs with
    | [], [] -> []
    | p_dbm :: powers, sfdr_correct_db :: sfdr_deceptive_db :: sfdrs ->
      { p_dbm; sfdr_correct_db; sfdr_deceptive_db } :: points powers sfdrs
    | _ -> invalid_arg "Fig12: batch result shape mismatch"
  in
  let points = points powers sfdrs in
  let gaps = List.map (fun p -> p.sfdr_correct_db -. p.sfdr_deceptive_db) points in
  {
    points;
    mean_gap_db = List.fold_left ( +. ) 0.0 gaps /. float_of_int (max 1 (List.length gaps));
  }

let checks (ctx : Context.t) t =
  let spec = ctx.Context.standard.Rfchain.Standards.min_sfdr_db in
  let at_25 = List.find_opt (fun p -> p.p_dbm = -25.0) t.points in
  [
    ( "correct key meets the SFDR spec at -25 dBm",
      match at_25 with
      | Some p -> p.sfdr_correct_db >= spec
      | None -> false );
    ( "locked circuit misses the SFDR spec at -25 dBm",
      match at_25 with
      | Some p -> p.sfdr_deceptive_db < spec
      | None -> false );
    ("locked SFDR is much lower on average (> 10 dB gap)", t.mean_gap_db > 10.0);
  ]

let print ctx t =
  Printf.printf "# Fig. 12 — two-tone SFDR (tones 10 MHz apart, equal power)\n";
  Printf.printf "# p_dbm  sfdr_correct_db  sfdr_locked_db\n";
  List.iter
    (fun p -> Printf.printf "%7.1f  %15.2f  %14.2f\n" p.p_dbm p.sfdr_correct_db p.sfdr_deceptive_db)
    t.points;
  Printf.printf "\nSFDR vs input power (o = correct, x = locked)\n";
  Ascii_plot.print
    (Ascii_plot.render ~height:14 ~x_label:"tone power (dBm)" ~y_label:"SFDR (dB)"
       (Ascii_plot.series ~marker:'o' (List.map (fun p -> (p.p_dbm, p.sfdr_correct_db)) t.points)
       @ Ascii_plot.series ~marker:'x' (List.map (fun p -> (p.p_dbm, p.sfdr_deceptive_db)) t.points)));
  Printf.printf "mean SFDR gap: %.1f dB\n" t.mean_gap_db;
  List.iter (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (checks ctx t)
