(** Band-pass RF sigma-delta modulator (behavioural model of paper Fig. 6).

    Architecture: input transconductance [Gmin], an LC band-pass loop
    filter realised as two cascaded tunable resonators with coarse/fine
    capacitor arrays [Cc]/[Cf] and a Q-enhancement negative-Gm cell, a
    pre-amplifier, a clocked 1-bit comparator, a programmable loop
    delay, a feedback DAC, and an output buffer used during calibration.

    The discrete-time prototype is the 4th-order fs/4 band-pass
    modulator obtained from the second-order low-pass modulator by the
    [z -> -z^2] mapping: with both resonators tuned to fs/4 (pole radius
    1) and feedback coefficients [k1 = 1, k2 = -2] the noise transfer
    function is exactly [(1 + z^-2)^2] — a noise notch at the carrier.
    Every knob of the 64-bit configuration word perturbs this loop the
    way the physical block would:

    - [cap_coarse]/[cap_fine] move the resonator angles via the LC tank;
    - [gm_q] moves the pole radius (above 1 the tank self-oscillates:
      calibration's oscillation mode);
    - [gmin_bias]/[dac_bias] scale signal and loop gain;
    - [preamp_bias], [comp_bias], [preamp_trim] set the comparator's
      effective input noise, offset and hysteresis;
    - [loop_delay] mis-sets the DAC timing (fractional-delay error);
    - the mode bits open/close the loop, clock or bypass the comparator,
      enable the input and insert the calibration buffer. *)

type t

val create : Circuit.Process.chip -> fs:float -> Config.t -> t
(** Instantiate the modulator of one die at sampling rate [fs] under a
    configuration word.  Cheap; all heavy work is in {!run}. *)

val run : t -> float array -> float array
(** Simulate sample by sample.  Input is the (post-VGLNA) analog record;
    output is the modulator output: a +-1 bitstream when the comparator
    is clocked, an analog waveform when it is in buffer mode.  Thin
    allocating wrapper over {!run_into}. *)

val run_into : t -> float array -> float array -> unit
(** [run_into t input output] writes the modulator output for [input]
    into the first [Array.length input] cells of [output] (which must be
    at least that long; every cell in that range is overwritten, so a
    stale scratch buffer is fine).  [output] must not alias [input].
    Uses {!Sigkit.Workspace} slots 8-9 for the per-run noise batches;
    bit-identical to {!run}. *)

val tank_frequency : t -> float
(** True resonance frequency of the (first) tank under this die and
    configuration — ground truth for tests; not observable on silicon. *)

val pole_radius : t -> float
(** Realised Q-enhancement pole radius for this configuration. *)

val oscillates : t -> bool
(** Whether the tank self-oscillates (pole radius >= 1) — what a bench
    engineer observes in calibration oscillation mode. *)

val oscillation_frequency : t -> n:int -> float option
(** Open-loop oscillation-mode measurement (calibration steps 5-6):
    kick the tank and measure the output frequency.  [None] when the
    oscillation dies out (step 7's vanishing test). *)

val global_probe_count : unit -> int
(** Process-wide count of oscillation-mode probes performed, from the
    always-on telemetry counter [sdm.osc_probes].  Together with
    {!Metrics.Measure.global_trial_count} this is the complete
    measurement odometer an oracle-query audit reads. *)

val required_delay_code : Circuit.Process.chip -> fs:float -> int
(** The loop-delay code that exactly compensates this die's excess loop
    delay at [fs] — design knowledge the calibration derives from the
    sampling frequency (paper step 11). *)

val signal_gain : t -> float
(** In-band signal transfer gain (gmin / gdac), for level planning. *)
