(* Per-code hot-path setup, derived once from the chip's (pure) process
   draws on first use: the amplifier's polynomial, the noise stream's
   name and per-sample sigma.  Memoising is bit-identical because every
   Process draw is a pure function of (chip, name), and it hoists the
   Printf name construction, the Nonlinear/Noise_source setup and their
   process draws out of every run. *)
type setup = {
  stage : Circuit.Nonlinear.t;
  noise_name : string;
  noise_sigma : float;
}

type t = {
  chip : Circuit.Process.chip;
  fs : float;
  gain_error_db : float array;   (** per-code realised-gain deviation *)
  setups : setup option array;   (* per-code, lazily memoised *)
}

let levels = 16
let base_gain_db = 8.0
let step_db = 2.0

let create chip ~fs =
  let gain_error code =
    Circuit.Process.offset chip ~name:(Printf.sprintf "vglna.gain%d" code) ~sigma:0.4
  in
  { chip; fs; gain_error_db = Array.init levels gain_error; setups = Array.make levels None }

let check_code code =
  if code < 0 || code >= levels then invalid_arg "Vglna: gain code out of range"

let nominal_gain_db ~code = base_gain_db +. (step_db *. float_of_int code)

let gain_db t ~code =
  check_code code;
  nominal_gain_db ~code +. t.gain_error_db.(code)

let code_for_gain_db g =
  let code = int_of_float (Float.round ((g -. base_gain_db) /. step_db)) in
  max 0 (min (levels - 1) code)

let segment_code ~p_dbm =
  if p_dbm <= -45.0 then 14        (* [-85,-45]: high gain *)
  else if p_dbm <= -20.0 then 9    (* [-60,-20]: mid gain *)
  else 3                           (* [-40,0]:   low gain *)

let noise_figure_db t ~code =
  check_code code;
  let nominal = 3.0 +. ((float_of_int (levels - 1 - code)) *. 0.35) in
  Circuit.Process.parameter t.chip
    ~name:(Printf.sprintf "vglna.nf%d" code)
    ~nominal ~sigma_pct:4.0

let iip3_dbm t ~code =
  check_code code;
  let nominal = -10.0 +. (float_of_int (levels - 1 - code) *. 1.2) in
  nominal +. Circuit.Process.offset t.chip ~name:(Printf.sprintf "vglna.iip3%d" code) ~sigma:0.5

let setup t ~code =
  match t.setups.(code) with
  | Some s -> s
  | None ->
    let gain = Sigkit.Decibel.power_ratio_of_db (gain_db t ~code /. 2.0) in
    (* power_ratio_of_db(g/2) = 10^(g/20): voltage gain. *)
    let s =
      {
        stage = Circuit.Nonlinear.create ~gain ~iip3_dbm:(iip3_dbm t ~code) ~rail:1.4 ();
        noise_name = Printf.sprintf "vglna.noise%d" code;
        noise_sigma =
          Circuit.Noise_source.sigma_of_noise_figure ~nf_db:(noise_figure_db t ~code) ~fs:t.fs;
      }
    in
    t.setups.(code) <- Some s;
    s

(* Workspace slot for the batched noise draw (see DESIGN §15). *)
let noise_slot = 13

let run_inplace t ~code buf =
  check_code code;
  let s = setup t ~code in
  let n = Array.length buf in
  (* The noise stream is freshly split per run (as Noise_source.create
     would), and gaussian_fill draws the same sequence as the per-sample
     Noise_source.sample calls it replaces. *)
  let stream = Circuit.Process.noise_stream t.chip ~name:s.noise_name in
  let nbuf = Sigkit.Workspace.arr (Sigkit.Workspace.get ()) ~slot:noise_slot ~len:n in
  Sigkit.Rng.gaussian_fill stream nbuf ~n;
  let sigma = s.noise_sigma in
  let a1, a2, a3, rail = Circuit.Nonlinear.coefficients s.stage in
  let railed = Float.is_finite rail in
  for i = 0 to n - 1 do
    let x = Array.unsafe_get buf i +. (sigma *. Array.unsafe_get nbuf i) in
    (* Nonlinear.apply, replicated expression-for-expression so direct
       float stores keep the loop unboxed. *)
    let y = (a1 *. x) +. (a2 *. x *. x) +. (a3 *. x *. x *. x) in
    Array.unsafe_set buf i (if railed then rail *. tanh (y /. rail) else y)
  done

let run t ~code input =
  let out = Array.copy input in
  run_inplace t ~code out;
  out
