(** Variable-Gain Low-Noise Amplifier.

    Five gain stages with resistive feedback and a 4-bit configuration
    word giving 16 gain levels, used to match the receiver's sensitivity
    and dynamic range to the target standard (paper, Fig. 5).  Gain,
    noise figure and linearity all depend on the gain code and carry
    per-chip process variation. *)

type t

val create : Circuit.Process.chip -> fs:float -> t

val gain_db : t -> code:int -> float
(** Realised (per-chip) gain in dB for a code in [0, 15]. *)

val nominal_gain_db : code:int -> float
(** Design-table gain: 8 dB + 2 dB per code step. *)

val code_for_gain_db : float -> int
(** Nearest design code for a wanted gain. *)

val segment_code : p_dbm:float -> int
(** The gain code the datasheet assigns to an input-power segment:
    high gain below -45 dBm, mid gain in [-60, -20], low gain above
    (the three segments of Fig. 11). *)

val noise_figure_db : t -> code:int -> float
(** NF rises as gain is backed off (feedback attenuates first). *)

val iip3_dbm : t -> code:int -> float
(** Linearity improves as gain is backed off. *)

val run : t -> code:int -> float array -> float array
(** Amplify a record: adds input-referred thermal noise, applies the
    gain-dependent compressive nonlinearity.  Codes outside [0, 15] are
    rejected with [Invalid_argument].  Thin allocating wrapper over
    {!run_inplace}. *)

val run_inplace : t -> code:int -> float array -> unit
(** Arena variant: amplify the record in place (the stage is pointwise,
    so input and output share the buffer).  Uses {!Sigkit.Workspace}
    slot 13 for the batched noise draw; bit-identical to {!run}. *)
