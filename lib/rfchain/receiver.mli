(** The complete programmable multi-standard RF receiver (paper Fig. 4).

    Chain: VGLNA -> band-pass RF sigma-delta modulator -> digital fs/4
    down-conversion mixer -> digital decimation filter.  The analog
    section is configured by the 64-bit {!Config} word (the secret key
    under the locking scheme); the digital section by the 3-bit
    {!Decimator.config}.

    The digital section's input is a single-bit port: whatever waveform
    the modulator emits is hard-sliced to +-1 at that boundary.  For a
    correctly keyed chip this is the identity (the output already is a
    bitstream); for the "deceptive" open-loop keys of Fig. 7 it is what
    collapses the receiver-output SNR in Fig. 9. *)

type t

type result = {
  mod_output : float array;   (** modulator output at [fs] (settle dropped) *)
  baseband_i : float array;   (** decimated in-phase channel *)
  baseband_q : float array;   (** decimated quadrature channel *)
  fs : float;                 (** modulator sampling rate *)
  fs_baseband : float;        (** decimated output rate *)
}

val create :
  ?fabric:(Config.t -> Config.t) ->
  ?rf_fault:(float array -> float array) ->
  Circuit.Process.chip ->
  Standards.t ->
  t
(** [fabric] models a faulty programming fabric: it rewrites the
    configuration word between the key register and the analog knobs
    (stuck programming bits, transient register upsets) and applies to
    every run, including calibration — the golden path passes no hook
    and is untouched.  [rf_fault] perturbs the antenna-referred input
    record (burst noise / interferers) before the VGLNA. *)

val chip : t -> Circuit.Process.chip
val standard : t -> Standards.t
val fs : t -> float

val has_hooks : t -> bool
(** True when a [fabric] or [rf_fault] hook is installed.  A hook-free
    receiver is a pure function of its chip fingerprint, which is what
    lets the evaluation engine cache its measurements. *)

val fabric : t -> (Config.t -> Config.t) option
val rf_fault : t -> (float array -> float array) option
(** The injection hooks as passed to {!create} — exposed so the
    evaluation engine can rebuild an equivalent receiver from a request
    without this module depending on the engine. *)

val run :
  t ->
  analog:Config.t ->
  ?digital:Decimator.config ->
  ?settle:int ->
  ?slice:bool ->
  input:float array ->
  unit ->
  result
(** Simulate the chain on an antenna-referred input record (volts into
    50 ohm).  [settle] extra samples (default 1024) are prepended and
    dropped so records are steady-state.  [slice] (default true) keeps
    the digital section's 1-bit input boundary; false is the ablation
    that pretends the digital section accepted analog samples. *)

val test_tone_frequency : t -> n:int -> float
(** The single-tone test frequency used throughout the evaluation: a
    coherent bin frequency one third of the half-band above the
    carrier, for an [n]-point FFT at [fs]. *)

val sdm_of_config : t -> Config.t -> Sdm.t
(** The modulator instance this receiver would run under a given word —
    exposed for calibration (oscillation mode) and white-box tests.
    A [fabric] fault hook applies here too. *)

val applied_config : t -> Config.t -> Config.t
(** The word the analog knobs actually see: identity on a healthy
    receiver, the fault-rewritten word when a [fabric] hook is set. *)

val slice_to_bit : float array -> float array
(** The digital section's 1-bit input boundary. *)
