type tank = {
  theta : float;
  l_henry : float;
  c_farad : float;
}

type t = {
  chip : Circuit.Process.chip;
  fs : float;
  config : Config.t;
  tank1 : tank;
  tank2 : tank;
  r : float;                   (* Q-enhancement pole radius *)
  gmin : float;                (* input transconductance gain *)
  gmin_stage : Circuit.Nonlinear.t;
  gdac : float;                (* feedback DAC gain *)
  dac_mismatch : float;        (* residual level mismatch after trim *)
  preamp_gain : float;
  comp_offset : float;         (* residual comparator offset after trim *)
  comp_hysteresis : float;     (* regeneration dead zone, bias-dependent *)
  comp_noise_sigma : float;    (* decision noise referred to preamp output *)
  delay_samples : float;       (* fractional excess loop delay *)
  input_noise_sigma : float;   (* modulator input-referred circuit noise *)
  buffer_gain : float;         (* calibration output buffer, when in path *)
}

(* Design constants of the case study (65 nm, 0.5 nH tank). *)
let l_nominal = 0.5e-9
let coarse_unit = 80e-15
let fine_unit = 0.35e-15
let fixed_cap = 4.3e-12

(* Trim DACs: 6-bit codes, mid-code = unity. *)
let trim6 code = 0.52 +. (0.015 *. float_of_int code)

let tank_of_codes chip ~prefix ~fs ~coarse ~fine =
  let arrays name bits unit =
    Circuit.Cap_array.create chip ~name:(prefix ^ "." ^ name) ~bits ~unit_cap:unit
      ~mismatch_sigma_pct:1.0
  in
  let c_coarse = arrays "cc" 8 coarse_unit in
  let c_fine = arrays "cf" 8 fine_unit in
  let c_fixed =
    Circuit.Process.parameter chip ~name:(prefix ^ ".cfixed") ~nominal:fixed_cap ~sigma_pct:5.0
  in
  let l = Circuit.Process.parameter chip ~name:(prefix ^ ".L") ~nominal:l_nominal ~sigma_pct:8.0 in
  let c =
    c_fixed
    +. Circuit.Cap_array.capacitance c_coarse coarse
    +. Circuit.Cap_array.capacitance c_fine fine
  in
  { theta = Circuit.Resonator.theta_of_lc ~l ~c ~fs; l_henry = l; c_farad = c }

let pole_radius_of_code chip code =
  let base = Circuit.Process.parameter chip ~name:"sdm.r_base" ~nominal:0.968 ~sigma_pct:0.4 in
  let slope = Circuit.Process.parameter chip ~name:"sdm.r_slope" ~nominal:1.05e-3 ~sigma_pct:3.0 in
  base +. (slope *. float_of_int code)

let required_delay_code chip ~fs =
  let skew = Circuit.Process.offset chip ~name:"sdm.delay_skew" ~sigma:1.5 in
  let code = Float.round (4.0 +. (4.0 *. fs /. 12e9) +. skew) in
  max 0 (min 15 (int_of_float code))

let create chip ~fs (config : Config.t) =
  let tank1 = tank_of_codes chip ~prefix:"sdm.tank1" ~fs ~coarse:config.cap_coarse ~fine:config.cap_fine in
  (* The two tanks sit side by side on-die and share the tuning codes;
     they track each other to local-mismatch accuracy (~0.3%), not to
     the global-corner accuracy of independent draws. *)
  let tank2 =
    let dl = Circuit.Process.offset chip ~name:"sdm.tank2.dl" ~sigma:0.003 in
    let dc = Circuit.Process.offset chip ~name:"sdm.tank2.dc" ~sigma:0.003 in
    let l = tank1.l_henry *. (1.0 +. dl) and c = tank1.c_farad *. (1.0 +. dc) in
    { theta = Circuit.Resonator.theta_of_lc ~l ~c ~fs; l_henry = l; c_farad = c }
  in
  let gmin_nom = Circuit.Process.parameter chip ~name:"sdm.gmin" ~nominal:1.0 ~sigma_pct:5.0 in
  let gmin = gmin_nom *. trim6 config.gmin_bias in
  (* The transconductor's linearity peaks at a per-die bias sweet spot. *)
  let gmin_sweet =
    let d = Circuit.Process.offset chip ~name:"sdm.gmin_sweet" ~sigma:3.0 in
    max 8 (min 56 (32 + int_of_float (Float.round d)))
  in
  let gmin_iip3 = 16.0 -. (0.4 *. float_of_int (abs (config.gmin_bias - gmin_sweet))) in
  let gdac_nom = Circuit.Process.parameter chip ~name:"sdm.gdac" ~nominal:1.0 ~sigma_pct:5.0 in
  let gdac = gdac_nom *. trim6 config.dac_bias in
  let dac_mismatch =
    Circuit.Process.offset chip ~name:"sdm.dac_mismatch" ~sigma:0.0015
    -. (float_of_int (config.dac_trim - 2) *. 0.001)
  in
  let preamp_gain = 0.2 +. (0.05 *. float_of_int config.preamp_bias) in
  let comp_offset_raw = Circuit.Process.offset chip ~name:"sdm.comp_offset" ~sigma:0.03 in
  let comp_offset =
    comp_offset_raw
    -. (float_of_int (config.comp_bias - 32) *. 0.002)
    -. (float_of_int (config.preamp_trim - 2) *. 0.004)
  in
  let comp_noise_sigma =
    Circuit.Process.parameter chip ~name:"sdm.comp_noise" ~nominal:0.004 ~sigma_pct:10.0
  in
  (* Regeneration strength peaks at a per-die comparator bias; away from
     it the dead zone widens and injects in-band noise. *)
  let comp_sweet =
    let d = Circuit.Process.offset chip ~name:"sdm.comp_sweet" ~sigma:4.0 in
    max 8 (min 56 (32 + int_of_float (Float.round d)))
  in
  let comp_hysteresis = 0.0003 +. (0.002 *. float_of_int (abs (config.comp_bias - comp_sweet))) in
  let delay_samples =
    0.25 *. Float.abs (float_of_int (config.loop_delay - required_delay_code chip ~fs))
  in
  let input_noise_sigma =
    Circuit.Process.parameter chip ~name:"sdm.input_noise" ~nominal:0.0105 ~sigma_pct:8.0
  in
  let buffer_gain =
    if config.cal_buffer_enable then 0.88 +. (0.04 *. float_of_int config.out_buffer) else 1.0
  in
  {
    chip;
    fs;
    config;
    tank1;
    tank2;
    r = pole_radius_of_code chip config.gm_q;
    gmin;
    gmin_stage = Circuit.Nonlinear.create ~gain:1.0 ~iip3_dbm:gmin_iip3 ~rail:1.5 ();
    gdac;
    dac_mismatch;
    preamp_gain;
    comp_offset;
    comp_hysteresis;
    comp_noise_sigma;
    delay_samples;
    input_noise_sigma;
    buffer_gain;
  }

let tank_frequency t = 1.0 /. (2.0 *. Float.pi *. sqrt (t.tank1.l_henry *. t.tank1.c_farad))
let pole_radius t = t.r
let oscillates t = t.r >= 1.0
let signal_gain t = t.gmin /. t.gdac

let osc_probes = Telemetry.Counter.make "sdm.osc_probes"

let global_probe_count () = Telemetry.Counter.value osc_probes

let oscillation_frequency t ~n =
  Telemetry.Counter.incr osc_probes;
  Telemetry.Span.with_ ~name:"sdm.oscillation_probe" (fun () ->
      let res = Circuit.Resonator.create ~theta:t.tank1.theta ~r:t.r ~limit:1.2 () in
      Circuit.Resonator.oscillation_frequency res ~fs:t.fs ~n)

(* Loop-filter feedback coefficients of the z -> -z^2 mapped MOD2:
   k1 = 1 (outer feedback, through both resonators), k2 = -2 (inner). *)
let k1 = 1.0
let k2 = -2.0

let runs = Telemetry.Counter.make "sdm.runs"
let steps = Telemetry.Counter.make "sdm.steps"

(* Decision history length for the feedback DAC: a power of two so the
   circular index is a mask, deep enough for the largest delay code. *)
let hist_len = 8
let hist_mask = hist_len - 1

(* Fused inner loop for the normal operating mode (clocked comparator,
   loop closed, input on, calibration buffer out of the path — every
   measurement-side evaluation of a key lands here).  All per-sample
   branches of the generic loop are decided before the loop; resonator
   and comparator states live in local floats (the recurrences are
   replicated expression-for-expression from [Circuit.Resonator] and
   [Circuit.Comparator], so the output is bit-identical to the generic
   path); noise is pre-filled per run; the history shift is a masked
   circular index.  Array accesses are unsafe after one bounds check
   ([input], [output], and both noise buffers have length >= n). *)
let run_fused t ~n ~comp_noise_sigma ~d_int ~d_frac ~comp_buf ~input_buf input output =
  let a1_1 = 2.0 *. t.r *. cos t.tank1.theta in
  let a1_2 = 2.0 *. t.r *. cos t.tank2.theta in
  let a2 = -.(t.r *. t.r) in
  let limit = 50.0 in
  let r1y1 = ref 0.0 and r1y2 = ref 0.0 and r1x1 = ref 0.0 and r1x2 = ref 0.0 in
  let r2y1 = ref 0.0 and r2y2 = ref 0.0 and r2x1 = ref 0.0 and r2x2 = ref 0.0 in
  let comp_prev = ref 1.0 in
  let preamp = t.preamp_gain in
  let offset = t.comp_offset and hyst = t.comp_hysteresis in
  let gdac = t.gdac and mismatch = t.dac_mismatch in
  let gmin = t.gmin in
  (* Input transconductor nonlinearity, inlined from Nonlinear.apply
     (same expression, so bit-identical) to keep the per-sample result
     unboxed. *)
  let g_a1, g_a2, g_a3, g_rail = Circuit.Nonlinear.coefficients t.gmin_stage in
  let g_railed = Float.is_finite g_rail in
  let in_sigma = t.input_noise_sigma in
  let fa = 1.0 -. d_frac in
  let hist = Array.make hist_len 0.0 in
  let head = ref 0 in
  for i = 0 to n - 1 do
    (* Cancellation point: a deadline or SIGINT stops the capture
       within 4096 samples (raises; never perturbs the recurrence). *)
    Telemetry.Cancel.tick_poll i;
    (* Resonator 1 output (uses only past inputs). *)
    let w1 =
      let y = (a1_1 *. !r1y1) +. (a2 *. !r1y2) +. !r1x2 in
      let y = if y > limit then limit else if y < -.limit then -.limit else y in
      r1y2 := !r1y1;
      r1y1 := y;
      r1x2 := !r1x1;
      y
    in
    let w2 =
      let y = (a1_2 *. !r2y1) +. (a2 *. !r2y2) +. !r2x2 in
      let y = if y > limit then limit else if y < -.limit then -.limit else y in
      r2y2 := !r2y1;
      r2y1 := y;
      r2x2 := !r2x1;
      y
    in
    let s = preamp *. (w2 +. 0.0) in
    (* Clocked comparator with hysteresis. *)
    let v_in = s +. offset +. (comp_noise_sigma *. Array.unsafe_get comp_buf i) in
    let v =
      if Float.abs v_in <= hyst then !comp_prev else if v_in > 0.0 then 1.0 else -1.0
    in
    comp_prev := v;
    (* Circular decision history; tap k of the seed's shifted array is
       the decision k samples old, i.e. index (head + k) under the mask. *)
    let h = (!head + hist_mask) land hist_mask in
    head := h;
    Array.unsafe_set hist h v;
    let v_delayed =
      (fa *. Array.unsafe_get hist ((h + d_int) land hist_mask))
      +. (d_frac *. Array.unsafe_get hist ((h + d_int + 1) land hist_mask))
    in
    let fb = gdac *. (v_delayed +. mismatch) in
    let u =
      let x = Array.unsafe_get input i in
      let y = (g_a1 *. x) +. (g_a2 *. x *. x) +. (g_a3 *. x *. x *. x) in
      let y = if g_railed then g_rail *. tanh (y /. g_rail) else y in
      (gmin *. y) +. (in_sigma *. Array.unsafe_get input_buf i)
    in
    r1x1 := u -. (k1 *. fb);
    r2x1 := w1 -. (k2 *. fb);
    Array.unsafe_set output i v
  done

let run_into t input output =
  let n = Array.length input in
  if Array.length output < n then invalid_arg "Sdm.run_into: output shorter than input";
  Telemetry.Counter.incr runs;
  Telemetry.Counter.add steps n;
  Telemetry.Span.with_ ~name:"sdm.run" (fun () ->
  let cfg = t.config in
  let comp_noise = Circuit.Process.noise_stream t.chip ~name:"run.comp" in
  (* Without the clock the latch never regenerates: its full
     input-referred noise shows up on the buffered output. *)
  let comp_noise_sigma =
    if cfg.comp_clock_enable then t.comp_noise_sigma else Float.max t.comp_noise_sigma 0.05
  in
  let input_noise = Circuit.Process.noise_stream t.chip ~name:"run.input" in
  let d_int = min (hist_len - 2) (int_of_float (Float.floor t.delay_samples)) in
  let d_frac = t.delay_samples -. float_of_int d_int in
  let fused =
    cfg.comp_clock_enable && cfg.fb_enable && cfg.gmin_enable
    && (not cfg.cal_buffer_enable) && comp_noise_sigma > 0.0
  in
  if fused then begin
    (* Pre-fill both per-run noise streams (each stream is private to
       this run, so batching the draws preserves the exact sequence). *)
    let ws = Sigkit.Workspace.get () in
    let comp_buf = Sigkit.Workspace.arr ws ~slot:8 ~len:n in
    let input_buf = Sigkit.Workspace.arr ws ~slot:9 ~len:n in
    Sigkit.Rng.gaussian_fill comp_noise comp_buf ~n;
    Sigkit.Rng.gaussian_fill input_noise input_buf ~n;
    run_fused t ~n ~comp_noise_sigma ~d_int ~d_frac ~comp_buf ~input_buf input output
  end
  else begin
    (* Generic path: calibration buffer mode, open-loop and ablation
       configurations.  Same structure as the fused loop but through
       the circuit modules, with noise drawn sample by sample. *)
    let res1 = Circuit.Resonator.create ~theta:t.tank1.theta ~r:t.r ~limit:50.0 () in
    let res2 = Circuit.Resonator.create ~theta:t.tank2.theta ~r:t.r ~limit:50.0 () in
    let comp_mode =
      if cfg.comp_clock_enable then Circuit.Comparator.Clocked else Circuit.Comparator.Buffer
    in
    let comparator =
      Circuit.Comparator.create ~mode:comp_mode ~offset:t.comp_offset
        ~hysteresis:t.comp_hysteresis ~noise:comp_noise ~noise_sigma:comp_noise_sigma ()
    in
    (* Opening the feedback loop removes the DAC's DC path that defines
       the loop filter's operating point: the comparator input floats to
       a large offset. *)
    let open_loop_offset = if cfg.fb_enable then 0.0 else 0.5 in
    (* An unclocked comparator output crosses into the clocked digital
       domain asynchronously: no retiming, so the effective sampling
       instant wanders (metastability + clock skew).  ~0.2 samples rms at
       12 GS/s; first-order jitter error is slope * delta_t.  The clocked
       path is synchronous and jitter-free. *)
    let jitter_noise = Circuit.Process.noise_stream t.chip ~name:"run.jitter" in
    let jitter_sigma = if cfg.comp_clock_enable then 0.0 else 0.2 in
    let v_prev = ref 0.0 in
    (* Fractional loop-delay error is modelled as linear interpolation
       between decision-history taps (a shifted DAC pulse delivers
       charge split across two periods). *)
    let hist = Array.make hist_len 0.0 in
    let head = ref 0 in
    for i = 0 to n - 1 do
      Telemetry.Cancel.tick_poll i;
      (* Forward path first: both resonator outputs depend only on past
         loop inputs, so no algebraic loop arises. *)
      let w1 = Circuit.Resonator.output res1 in
      let w2 = Circuit.Resonator.output res2 in
      let s = t.preamp_gain *. (w2 +. open_loop_offset) in
      let v = Circuit.Comparator.step comparator s in
      let h = (!head + hist_mask) land hist_mask in
      head := h;
      hist.(h) <- v;
      let v_delayed =
        ((1.0 -. d_frac) *. hist.((h + d_int) land hist_mask))
        +. (d_frac *. hist.((h + d_int + 1) land hist_mask))
      in
      let fb = if cfg.fb_enable then t.gdac *. (v_delayed +. t.dac_mismatch) else 0.0 in
      let u =
        let signal =
          if cfg.gmin_enable then t.gmin *. Circuit.Nonlinear.apply t.gmin_stage input.(i)
          else 0.0
        in
        signal +. (t.input_noise_sigma *. Sigkit.Rng.gaussian input_noise)
      in
      Circuit.Resonator.feed res1 (u -. (k1 *. fb));
      Circuit.Resonator.feed res2 (w1 -. (k2 *. fb));
      let v_sampled =
        if jitter_sigma = 0.0 then v
        else begin
          let slope = v -. !v_prev in
          v_prev := v;
          v +. (jitter_sigma *. Sigkit.Rng.gaussian jitter_noise *. slope)
        end
      in
      output.(i) <-
        (if cfg.cal_buffer_enable then 1.2 *. tanh (t.buffer_gain *. v_sampled /. 1.2)
         else v_sampled)
    done
  end)

let run t input =
  let output = Array.make (Array.length input) 0.0 in
  run_into t input output;
  output
