type t = {
  name : string;
  f0_hz : float;
  min_snr_db : float;
  min_sfdr_db : float;
  sensitivity_dbm : float;
}

let oversampling_ratio = 64
let fs t = 4.0 *. t.f0_hz
let band_hz t = fs t /. (2.0 *. float_of_int oversampling_ratio)

let bluetooth =
  { name = "bluetooth"; f0_hz = 2.44e9; min_snr_db = 35.0; min_sfdr_db = 32.0; sensitivity_dbm = -70.0 }

let zigbee =
  { name = "zigbee"; f0_hz = 2.405e9; min_snr_db = 33.0; min_sfdr_db = 32.0; sensitivity_dbm = -75.0 }

let wifi_b =
  { name = "wifi-802.11b"; f0_hz = 2.412e9; min_snr_db = 35.0; min_sfdr_db = 32.0; sensitivity_dbm = -68.0 }

let lower_band =
  { name = "lower-band-1.5GHz"; f0_hz = 1.5e9; min_snr_db = 35.0; min_sfdr_db = 32.0; sensitivity_dbm = -70.0 }

let max_frequency =
  { name = "max-3GHz"; f0_hz = 3.0e9; min_snr_db = 36.0; min_sfdr_db = 32.0; sensitivity_dbm = -70.0 }

let all = [ lower_band; zigbee; wifi_b; bluetooth; max_frequency ]

let find_opt name = List.find_opt (fun s -> s.name = name) all
let find name = List.find (fun s -> s.name = name) all
let names = List.map (fun s -> s.name) all
