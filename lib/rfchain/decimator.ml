type config = {
  ratio_select : int;
  compensator : bool;
}

let default_config = { ratio_select = 2; compensator = true }

let config_of_bits bits = { ratio_select = bits land 3; compensator = bits land 4 <> 0 }

let bits_of_config c = (c.ratio_select land 3) lor (if c.compensator then 4 else 0)

let ratio c = 16 lsl c.ratio_select

let cic_order = 3

(* Workspace slot for the CIC intermediate (see DESIGN §15).  The two
   quadrature channels run sequentially, so one slot serves both. *)
let cic_slot = 12

(* CIC decimator: [order] integrators at the input rate, decimation by
   [r], [order] combs at the output rate, gain-normalised.  The result
   is a workspace scratch array — valid only until the next decimation
   on this domain; callers must consume it before then (the comb pass
   overwrites every cell before any is read, so stale contents are
   fine). *)
let cic ~r x =
  let n_out = Array.length x / r in
  if n_out = 0 then [||]
  else begin
    let acc = Array.make cic_order 0.0 in
    let decimated = Sigkit.Workspace.arr (Sigkit.Workspace.get ()) ~slot:cic_slot ~len:n_out in
    let out_idx = ref 0 in
    for i = 0 to (n_out * r) - 1 do
      acc.(0) <- acc.(0) +. x.(i);
      for s = 1 to cic_order - 1 do
        acc.(s) <- acc.(s) +. acc.(s - 1)
      done;
      if (i + 1) mod r = 0 then begin
        decimated.(!out_idx) <- acc.(cic_order - 1);
        incr out_idx
      end
    done;
    (* Comb stages fused into one in-place pass: element j only needs
       each stage's previous output, so the [cic_order] separate
       [Array.map] allocations collapse into a [prev] vector, with the
       gain normalisation folded into the final stage.  The per-stage
       difference chain is evaluated in the same order as the staged
       version, so the result is bit-identical. *)
    let gain = float_of_int r ** float_of_int cic_order in
    let prev = Array.make cic_order 0.0 in
    for j = 0 to n_out - 1 do
      let d = ref (Array.unsafe_get decimated j) in
      for s = 0 to cic_order - 1 do
        let v = !d in
        d := v -. Array.unsafe_get prev s;
        Array.unsafe_set prev s v
      done;
      Array.unsafe_set decimated j (!d /. gain)
    done;
    decimated
  end

(* 31-tap Hann-windowed half-band low-pass for the final 2x stage: the
   sharp stage that keeps shaped quantization noise from aliasing into
   the channel (the CIC alone leaks ~-30 dB images). *)
let halfband_taps =
  let taps = 31 in
  let mid = taps / 2 in
  let h =
    Array.init taps (fun k ->
        let m = k - mid in
        let ideal =
          if m = 0 then 0.5
          else sin (Float.pi *. float_of_int m /. 2.0) /. (Float.pi *. float_of_int m)
        in
        let w = 0.5 -. (0.5 *. cos (2.0 *. Float.pi *. float_of_int k /. float_of_int (taps - 1))) in
        ideal *. w)
  in
  (* DC normalisation folded into the tap table, in place, once. *)
  let dc = Array.fold_left ( +. ) 0.0 h in
  for k = 0 to taps - 1 do
    h.(k) <- h.(k) /. dc
  done;
  h

let fir_decimate2 x =
  let n = Array.length x in
  let taps = Array.length halfband_taps in
  let half_taps = taps / 2 in
  let n_out = n / 2 in
  let out = Array.make n_out 0.0 in
  let h = halfband_taps in
  (* Interior outputs touch only in-range samples: no bounds tests and
     unsafe accesses; the two record edges keep the guarded loop. *)
  let j_lo = min n_out ((half_taps + 1) / 2) in
  let j_hi = max j_lo ((n - half_taps) / 2) in
  let edge j =
    let centre = 2 * j in
    let acc = ref 0.0 in
    for k = 0 to taps - 1 do
      let idx = centre + k - half_taps in
      if idx >= 0 && idx < n then acc := !acc +. (h.(k) *. x.(idx))
    done;
    out.(j) <- !acc
  in
  for j = 0 to j_lo - 1 do
    edge j
  done;
  for j = j_lo to j_hi - 1 do
    let base = (2 * j) - half_taps in
    let acc = ref 0.0 in
    for k = 0 to taps - 1 do
      acc := !acc +. (Array.unsafe_get h k *. Array.unsafe_get x (base + k))
    done;
    Array.unsafe_set out j !acc
  done;
  for j = j_hi to n_out - 1 do
    edge j
  done;
  out

(* Crude fallback 2x stage (compensator bit off): a two-sample average,
   which lets images through — the "wrong digital setting" behaviour. *)
let average_decimate2 x =
  Array.init (Array.length x / 2) (fun j -> 0.5 *. (x.(2 * j) +. x.((2 * j) + 1)))

let decimate c x =
  let r = ratio c in
  let mid = cic ~r:(r / 2) x in
  if c.compensator then fir_decimate2 mid else average_decimate2 mid

let run_iq c (i_ch, q_ch) = (decimate c i_ch, decimate c q_ch)
