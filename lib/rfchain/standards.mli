(** Communication standards served by the multi-standard receiver.

    The case-study receiver covers 1.5-3.0 GHz (Bluetooth, ZigBee, WiFi
    802.11b, ... paper Section V).  Each standard fixes the carrier the
    LC tank must tune to, the sampling rate (always [4 f0]: fs/4
    architecture), and the performance specification the calibrated chip
    must meet.  The oversampling ratio is 64 throughout, matching the
    paper's SNR measurements. *)

type t = {
  name : string;
  f0_hz : float;          (** carrier / tank centre frequency *)
  min_snr_db : float;     (** spec at -25 dBm input *)
  min_sfdr_db : float;
  sensitivity_dbm : float;
}

val oversampling_ratio : int
(** OSR = 64 (paper, Section VI-A). *)

val fs : t -> float
(** Sampling rate, [4 * f0]. *)

val band_hz : t -> float
(** Two-sided signal band, [fs / (2 * OSR)]. *)

val bluetooth : t
val zigbee : t
val wifi_b : t
val lower_band : t
(** 1.5 GHz lower edge of the tuning range. *)

val max_frequency : t
(** 3.0 GHz — the maximum centre frequency, the standard used for the
    paper's locking-efficiency experiments (Section VI-A). *)

val all : t list

val find_opt : string -> t option
(** Lookup by name. *)

val find : string -> t
(** Lookup by name.  Raises [Not_found]; prefer {!find_opt}. *)

val names : string list
(** The known standard names, in [all] order — for error messages. *)
