(** Digital decimation filter (CIC + droop compensator).

    Third-order cascaded integrator-comb decimator followed by an
    optional droop-compensation FIR.  The digital section's 3
    programming bits select the decimation ratio (2 bits: 16/32/64/128)
    and whether the compensator is in the path (1 bit) — per-standard
    settings the paper treats as easy to derive, hence not part of the
    secret key. *)

type config = {
  ratio_select : int;   (** 0..3 -> ratio 16/32/64/128 *)
  compensator : bool;
}

val default_config : config
(** Ratio 64 (the evaluation's OSR) with compensation. *)

val config_of_bits : int -> config
val bits_of_config : config -> int
(** 3-bit codec: bits 0-1 ratio select, bit 2 compensator. *)

val ratio : config -> int

val decimate : config -> float array -> float array
(** Decimate one real channel: a CIC stage by [ratio/2] followed by a
    half-band FIR 2x stage (or a crude averaging stage when the
    compensator bit is off).  Output is gain-normalised (unity DC
    gain) with length [floor (n / ratio)].  The CIC intermediate lives
    in {!Sigkit.Workspace} slot 12; only the returned array is
    allocated.  The input may itself be a workspace buffer as long as
    it does not use slot 12. *)

val run_iq : config -> float array * float array -> float array * float array
(** Decimate both quadrature channels with identical filters. *)
