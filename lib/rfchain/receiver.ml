type t = {
  chip : Circuit.Process.chip;
  standard : Standards.t;
  vglna : Vglna.t;
  fabric : (Config.t -> Config.t) option;
  rf_fault : (float array -> float array) option;
}

type result = {
  mod_output : float array;
  baseband_i : float array;
  baseband_q : float array;
  fs : float;
  fs_baseband : float;
}

let create ?fabric ?rf_fault chip standard =
  { chip; standard; vglna = Vglna.create chip ~fs:(Standards.fs standard); fabric; rf_fault }

let chip t = t.chip
let standard t = t.standard
let fs t = Standards.fs t.standard
let has_hooks t = t.fabric <> None || t.rf_fault <> None
let fabric t = t.fabric
let rf_fault t = t.rf_fault

(* The programming fabric sits between the key register and the analog
   knobs: a faulty fabric (stuck bits, transient upsets) rewrites the
   word actually applied.  A healthy receiver has no hook and pays
   nothing. *)
let applied_config t config =
  match t.fabric with
  | None -> config
  | Some f -> f config

let slice_to_bit x = Array.map (fun v -> if v >= 0.0 then 1.0 else -1.0) x

let sdm_of_config t config = Sdm.create t.chip ~fs:(fs t) (applied_config t config)

let runs = Telemetry.Counter.make "receiver.runs"
let samples = Telemetry.Counter.make "receiver.samples"

(* Workspace slots of the evaluation chain (see DESIGN §15 for the full
   map and aliasing argument).  Every slot is dead again by the time
   [run] returns: the only arrays that escape are the freshly allocated
   result fields. *)
let extended_slot = 6
let mod_slot = 7
let mix_i_slot = 10
let mix_q_slot = 11

let run t ~analog ?(digital = Decimator.default_config) ?(settle = 1024) ?(slice = true) ~input () =
  Telemetry.Counter.incr runs;
  Telemetry.Counter.add samples (Array.length input);
  Telemetry.Span.with_ ~name:"receiver.run" (fun () ->
  let analog = applied_config t analog in
  let n = Array.length input in
  let total = settle + n in
  let ws = Sigkit.Workspace.get () in
  (* Prepend the settle prefix by repeating the record head: for
     periodic test tones this keeps the steady-state phase coherent.
     Every cell of the scratch buffer is overwritten here. *)
  let extended = Sigkit.Workspace.arr ws ~slot:extended_slot ~len:total in
  for i = 0 to total - 1 do
    extended.(i) <- input.((i + n - (settle mod n)) mod n)
  done;
  (* The fault hook may return its argument or a fresh array; it must
     not retain the scratch buffer it was handed (inject.ml's hooks
     map into fresh arrays). *)
  let extended =
    match t.rf_fault with
    | None -> extended
    | Some f -> f extended
  in
  Vglna.run_inplace t.vglna ~code:analog.Config.vglna_gain extended;
  let sdm = Sdm.create t.chip ~fs:(fs t) analog in
  let mod_full = Sigkit.Workspace.arr ws ~slot:mod_slot ~len:total in
  Sdm.run_into sdm extended mod_full;
  let mod_output = Array.sub mod_full settle n in
  let i_ch = Sigkit.Workspace.arr ws ~slot:mix_i_slot ~len:n in
  let q_ch = Sigkit.Workspace.arr ws ~slot:mix_q_slot ~len:n in
  Mixer.downconvert_into ~slice mod_full ~pos:settle ~n ~i_out:i_ch ~q_out:q_ch;
  let baseband_i, baseband_q = Decimator.run_iq digital (i_ch, q_ch) in
  {
    mod_output;
    baseband_i;
    baseband_q;
    fs = fs t;
    fs_baseband = fs t /. float_of_int (Decimator.ratio digital);
  })

(* Offset the coherent test tone by a quarter of the band: far enough
   from the carrier bin for clean binning, while the aliased third
   harmonic (at -3x the offset) stays outside the band of interest —
   the paper's measurement at exactly F0 hides that alias under the
   carrier. *)
let test_tone_frequency t ~n =
  let f0 = t.standard.Standards.f0_hz in
  let offset = Standards.band_hz t.standard /. 4.0 in
  Sigkit.Waveform.coherent_frequency ~freq:(f0 +. offset) ~fs:(fs t) ~n
