(* The workspace variant fuses the digital section's 1-bit slicing into
   the mix and writes both channels at every index: the allocating
   wrapper relied on Array.make zeroing the idle channel, but a reused
   scratch buffer carries stale data. *)
let downconvert_into ?(slice = false) src ~pos ~n ~i_out ~q_out =
  if pos < 0 || pos + n > Array.length src then invalid_arg "Mixer.downconvert_into: bad window";
  if Array.length i_out < n || Array.length q_out < n then
    invalid_arg "Mixer.downconvert_into: output shorter than window";
  for k = 0 to n - 1 do
    let x = Array.unsafe_get src (pos + k) in
    let x = if slice then (if x >= 0.0 then 1.0 else -1.0) else x in
    (* cos(pi k / 2) on I, -sin(pi k / 2) on Q. *)
    match k land 3 with
    | 0 ->
      Array.unsafe_set i_out k x;
      Array.unsafe_set q_out k 0.0
    | 1 ->
      Array.unsafe_set i_out k 0.0;
      Array.unsafe_set q_out k (-.x)
    | 2 ->
      Array.unsafe_set i_out k (-.x);
      Array.unsafe_set q_out k 0.0
    | _ ->
      Array.unsafe_set i_out k 0.0;
      Array.unsafe_set q_out k x
  done

let downconvert x =
  let n = Array.length x in
  let i_out = Array.make n 0.0 and q_out = Array.make n 0.0 in
  downconvert_into x ~pos:0 ~n ~i_out ~q_out;
  (i_out, q_out)
