(** Digital fs/4 down-conversion mixer.

    Because the modulator samples at [fs = 4 f0], down-conversion is a
    multiplication by the exact sequences [cos(pi n / 2) = 1,0,-1,0]
    and [-sin(pi n / 2) = 0,-1,0,1] — multiplier-free and ideal, as in
    the paper's highly-digitized architecture. *)

val downconvert : float array -> float array * float array
(** [downconvert x] returns the (i, q) baseband pair at the input rate
    (quadrature components of [x] mixed down by fs/4).  Thin allocating
    wrapper over {!downconvert_into}. *)

val downconvert_into :
  ?slice:bool ->
  float array ->
  pos:int ->
  n:int ->
  i_out:float array ->
  q_out:float array ->
  unit
(** Arena variant: mix the [n]-sample window of [src] starting at [pos]
    down into [i_out]/[q_out] (each at least [n] long; every cell in
    [0, n) is overwritten).  [slice] (default false) applies the digital
    section's 1-bit boundary to each sample first — fusing the
    [Receiver.slice_to_bit] copy into the mix.  Neither output may alias
    [src].  Bit-identical to slicing then {!downconvert}. *)
