(* The splitmix64 counter lives in an 8-byte bytes cell rather than a
   mutable int64 record field: a mutable [int64] field re-boxes on every
   store (3 words per draw step under the non-flambda compiler), which
   made the batched noise draws the dominant per-evaluation allocation.
   The %caml_bytes_get64u/set64u intrinsics read and write the cell
   unboxed, so stepping the generator allocates nothing. *)
type t = {
  state : Bytes.t;
  (* Unboxed Box-Muller spare: a [float option] here costs one option
     cell plus one boxed float per pair of draws in the simulator's
     hottest loop. *)
  mutable cached : float;
  mutable has_cached : bool;
  seed : int64;
}

external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer: avalanche the counter into a high-quality word. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed64 seed64 =
  let state = Bytes.create 8 in
  set64 state 0 seed64;
  { state; cached = 0.0; has_cached = false; seed = seed64 }

let create seed = of_seed64 (mix (Int64.of_int seed))

let hash_label label =
  (* FNV-1a over the label bytes, good enough to decorrelate streams. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    label;
  !h

let split t label =
  let r = of_seed64 (mix (Int64.add t.seed (hash_label label))) in
  set64 r.state 0 (mix (Int64.logxor t.seed (hash_label label)));
  r

let bits64 t =
  let s = Int64.add (get64 t.state 0) golden_gamma in
  set64 t.state 0 s;
  mix s

(* 53 high bits mapped to [0,1). *)
let u53 = 1.0 /. 9007199254740992.0

let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. u53

let int_range t lo hi =
  if lo > hi then invalid_arg "Rng.int_range: lo > hi";
  let span = hi - lo + 1 in
  lo + int_of_float (float t *. float_of_int span)

let uniform t lo hi = lo +. (float t *. (hi -. lo))

let gaussian t =
  if t.has_cached then begin
    t.has_cached <- false;
    t.cached
  end
  else begin
    (* Box-Muller; reject u1 = 0 to keep log finite. *)
    let rec draw_u1 () =
      let u = float t in
      if u > 0.0 then u else draw_u1 ()
    in
    let u1 = draw_u1 () and u2 = float t in
    let radius = sqrt (-2.0 *. log u1) in
    let angle = 2.0 *. Float.pi *. u2 in
    t.cached <- radius *. sin angle;
    t.has_cached <- true;
    radius *. cos angle
  end

(* Batch variant of [gaussian] with the splitmix64 step, the [0,1)
   mapping and the Box-Muller pair inlined into one function body:
   non-flambda unboxing is per-function, so keeping every int64 and
   float local to the loop is what makes the fill allocation-free.
   The emitted sequence — including the spare hand-off at both ends
   and the u1 = 0 rejection — is exactly what [n] calls to [gaussian]
   would produce (guarded by test_sigkit's identity test). *)
let gaussian_fill t buf ~n =
  if n > Array.length buf then invalid_arg "Rng.gaussian_fill: n exceeds buffer";
  let k = ref 0 in
  if n > 0 && t.has_cached then begin
    t.has_cached <- false;
    Array.unsafe_set buf 0 t.cached;
    k := 1
  end;
  let state = t.state in
  while !k < n do
    let s = Int64.add (get64 state 0) golden_gamma in
    set64 state 0 s;
    let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let u1 = Int64.to_float (Int64.shift_right_logical z 11) *. u53 in
    (* u1 = 0: the state has advanced one step and the pair is retried,
       exactly as [gaussian]'s rejection loop does. *)
    if u1 > 0.0 then begin
      let s = Int64.add (get64 state 0) golden_gamma in
      set64 state 0 s;
      let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
      let z = Int64.logxor z (Int64.shift_right_logical z 31) in
      let u2 = Int64.to_float (Int64.shift_right_logical z 11) *. u53 in
      let radius = sqrt (-2.0 *. log u1) in
      let angle = 2.0 *. Float.pi *. u2 in
      let i = !k in
      Array.unsafe_set buf i (radius *. cos angle);
      if i + 1 < n then Array.unsafe_set buf (i + 1) (radius *. sin angle)
      else begin
        t.cached <- radius *. sin angle;
        t.has_cached <- true
      end;
      k := i + 2
    end
  done

let gaussian_scaled t ~mean ~sigma = mean +. (sigma *. gaussian t)

let bool t = Int64.logand (bits64 t) 1L = 1L
