type t = {
  mutable state : int64;
  (* Unboxed Box-Muller spare: a [float option] here costs one option
     cell plus one boxed float per pair of draws in the simulator's
     hottest loop. *)
  mutable cached : float;
  mutable has_cached : bool;
  seed : int64;
}

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer: avalanche the counter into a high-quality word. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let seed64 = mix (Int64.of_int seed) in
  { state = seed64; cached = 0.0; has_cached = false; seed = seed64 }

let hash_label label =
  (* FNV-1a over the label bytes, good enough to decorrelate streams. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    label;
  !h

let split t label = {
  state = mix (Int64.logxor t.seed (hash_label label));
  cached = 0.0;
  has_cached = false;
  seed = mix (Int64.add t.seed (hash_label label));
}

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let float t =
  (* 53 high bits mapped to [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int_range t lo hi =
  if lo > hi then invalid_arg "Rng.int_range: lo > hi";
  let span = hi - lo + 1 in
  lo + int_of_float (float t *. float_of_int span)

let uniform t lo hi = lo +. (float t *. (hi -. lo))

let gaussian t =
  if t.has_cached then begin
    t.has_cached <- false;
    t.cached
  end
  else begin
    (* Box-Muller; reject u1 = 0 to keep log finite. *)
    let rec draw_u1 () =
      let u = float t in
      if u > 0.0 then u else draw_u1 ()
    in
    let u1 = draw_u1 () and u2 = float t in
    let radius = sqrt (-2.0 *. log u1) in
    let angle = 2.0 *. Float.pi *. u2 in
    t.cached <- radius *. sin angle;
    t.has_cached <- true;
    radius *. cos angle
  end

let gaussian_fill t buf ~n =
  if n > Array.length buf then invalid_arg "Rng.gaussian_fill: n exceeds buffer";
  for i = 0 to n - 1 do
    Array.unsafe_set buf i (gaussian t)
  done

let gaussian_scaled t ~mean ~sigma = mean +. (sigma *. gaussian t)

let bool t = Int64.logand (bits64 t) 1L = 1L
