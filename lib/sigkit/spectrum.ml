type t = {
  power : float array;
  fs : float;
  n : int;
  window : Window.kind;
}

let periodograms = Telemetry.Counter.make "spectrum.periodograms"

(* The whole pipeline — window, pack, real FFT, one-sided fold — runs
   in the calling domain's workspace; only the returned [power] array
   is allocated.  The seed path allocated 5+ arrays per call (record
   copy, windowed copy, re/im pair, |X|^2) and ran a full complex
   transform where the packed n/2 one suffices for real input. *)
let periodogram ?(window = Window.Hann) ~fs x =
  Telemetry.Counter.incr periodograms;
  Telemetry.Span.with_ ~name:"spectrum.periodogram" (fun () ->
  let n =
    let len = Array.length x in
    if Fft.is_pow2 len then len else Fft.next_pow2 len / 2
  in
  if n < 2 then invalid_arg "Spectrum.periodogram: record too short";
  let m = n / 2 in
  let half = m + 1 in
  let ws = Workspace.get () in
  let w = Window.table window n in
  let zre = Workspace.arr ws ~slot:2 ~len:m in
  let zim = Workspace.arr ws ~slot:3 ~len:m in
  (* Windowing fused with the even/odd packing of the real transform. *)
  for k = 0 to m - 1 do
    let e = 2 * k in
    Array.unsafe_set zre k (Array.unsafe_get x e *. Array.unsafe_get w e);
    Array.unsafe_set zim k (Array.unsafe_get x (e + 1) *. Array.unsafe_get w (e + 1))
  done;
  let re = Workspace.arr ws ~slot:4 ~len:half in
  let im = Workspace.arr ws ~slot:5 ~len:half in
  Plan.real_forward_packed (Plan.real_get n) ~packed_re:zre ~packed_im:zim ~re ~im;
  (* One-sided: double interior bins to account for negative frequencies. *)
  let power = Array.make half 0.0 in
  for k = 0 to half - 1 do
    let xr = Array.unsafe_get re k and xi = Array.unsafe_get im k in
    let p = (xr *. xr) +. (xi *. xi) in
    Array.unsafe_set power k (if k = 0 || k = m then p else 2.0 *. p)
  done;
  { power; fs; n; window })

let bin_of_freq t f =
  let k = int_of_float (Float.round (f *. float_of_int t.n /. t.fs)) in
  max 0 (min (Array.length t.power - 1) k)

let freq_of_bin t k = float_of_int k *. t.fs /. float_of_int t.n

let clamp t k = max 0 (min (Array.length t.power - 1) k)

let band_power t ~f_lo ~f_hi =
  let lo = bin_of_freq t f_lo and hi = bin_of_freq t f_hi in
  let acc = ref 0.0 in
  for k = lo to hi do
    acc := !acc +. t.power.(k)
  done;
  !acc

let band_power_excluding t ~f_lo ~f_hi ~exclude =
  let lo = bin_of_freq t f_lo and hi = bin_of_freq t f_hi in
  let excluded k = List.exists (fun (a, b) -> k >= a && k <= b) exclude in
  let acc = ref 0.0 in
  for k = lo to hi do
    if not (excluded k) then acc := !acc +. t.power.(k)
  done;
  !acc

let peak_in_band t ~f_lo ~f_hi =
  let lo = bin_of_freq t f_lo and hi = bin_of_freq t f_hi in
  let best = ref lo in
  for k = lo to hi do
    if t.power.(k) > t.power.(!best) then best := k
  done;
  (!best, t.power.(!best))

let tone_bins t ~freq =
  let centre = bin_of_freq t freq in
  let search = 4 in
  let peak = ref (clamp t centre) in
  for k = clamp t (centre - search) to clamp t (centre + search) do
    if t.power.(k) > t.power.(!peak) then peak := k
  done;
  let lobe = Window.main_lobe_bins t.window in
  (clamp t (!peak - lobe), clamp t (!peak + lobe))

let tone_power t ~freq =
  let lo, hi = tone_bins t ~freq in
  let acc = ref 0.0 in
  for k = lo to hi do
    acc := !acc +. t.power.(k)
  done;
  !acc

let psd_db t = Array.map Decibel.db_of_power_ratio t.power
