type t = { slots : (int, float array) Hashtbl.t }

(* A plain atomic, not a telemetry counter: memo misses happen once per
   process, so they would make otherwise identical workloads leave
   different counter snapshots (breaking telemetry determinism). *)
let allocs = Atomic.make 0

let key = Domain.DLS.new_key (fun () -> { slots = Hashtbl.create 16 })

let get () = Domain.DLS.get key

let arr t ~slot ~len =
  if slot < 0 || slot > 15 then invalid_arg "Workspace.arr: slot must be in 0..15";
  if len < 0 then invalid_arg "Workspace.arr: negative length";
  let k = (len lsl 4) lor slot in
  match Hashtbl.find_opt t.slots k with
  | Some a -> a
  | None ->
    Atomic.incr allocs;
    let a = Array.make len 0.0 in
    Hashtbl.add t.slots k a;
    a

let allocations () = Atomic.get allocs
