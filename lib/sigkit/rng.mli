(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the repository (process variations, thermal
    noise, random keys, attack search moves) flows through this module so
    that every experiment is reproducible from a single integer seed.  The
    generator is splitmix64, which has a 64-bit state, passes BigCrush, and
    supports cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> string -> t
(** [split t label] derives an independent generator from [t]'s seed and
    [label] without disturbing [t]'s stream.  Used to give each circuit
    element its own reproducible noise stream. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] draws uniformly from the inclusive range
    [lo..hi].  Raises [Invalid_argument] if [lo > hi]. *)

val float : t -> float
(** Uniform draw in [0, 1). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] draws uniformly from [lo, hi). *)

val gaussian : t -> float
(** Standard normal draw (Box-Muller, cached pair; the spare is kept in
    an unboxed mutable field, so draws allocate nothing). *)

val gaussian_fill : t -> float array -> n:int -> unit
(** [gaussian_fill t buf ~n] fills [buf.(0 .. n-1)] with standard
    normal draws — the same sequence [n] calls to {!gaussian} would
    produce.  Lets hot loops pre-fill per-run noise buffers.  Raises
    [Invalid_argument] if [n] exceeds the buffer length. *)

val gaussian_scaled : t -> mean:float -> sigma:float -> float
(** Normal draw with the given mean and standard deviation. *)

val bool : t -> bool
(** Fair coin flip. *)
