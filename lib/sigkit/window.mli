(** Spectral analysis windows.

    Windows control the trade-off between spectral leakage and resolution
    when estimating spectra of finite records.  The SNR/SFDR metrology uses
    Hann by default, matching common ADC test practice (IEEE 1241). *)

type kind =
  | Rectangular
  | Hann
  | Hamming
  | Blackman_harris  (** 4-term, -92 dB sidelobes *)

val table : kind -> int -> float array
(** [table kind n] returns the memoized coefficient table for
    [(kind, n)]: repeated calls return the {e same physical array}, so
    hot measurement loops pay the trigonometry once per size.  The
    array is shared (including across domains) and must not be
    mutated; use {!coefficients} for a private copy. *)

val coefficients : kind -> int -> float array
(** [coefficients kind n] returns a fresh copy of the [n] window
    samples (safe to mutate). *)

val apply : kind -> float array -> float array
(** Pointwise multiplication of a signal record by the window. *)

val coherent_gain : kind -> float
(** Mean window value: amplitude scaling experienced by a coherent tone. *)

val noise_bandwidth : kind -> float
(** Equivalent noise bandwidth in bins (ENBW); 1.0 for rectangular,
    1.5 for Hann, ~2.0 for Blackman-Harris.  Needed to convert windowed
    periodogram bins into unbiased band power. *)

val main_lobe_bins : kind -> int
(** Half-width (in bins) over which a windowed coherent tone spreads;
    bins within this distance of a tone are attributed to the tone when
    integrating signal power. *)
