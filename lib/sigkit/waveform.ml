let tone ~amplitude ~freq ~fs ?(phase = 0.0) n =
  let w = 2.0 *. Float.pi *. freq /. fs in
  (* Explicit fill: Array.init would box every sample through the
     closure, and test tones are synthesised once per evaluation. *)
  let out = Array.make n 0.0 in
  for i = 0 to n - 1 do
    Array.unsafe_set out i (amplitude *. sin ((w *. float_of_int i) +. phase))
  done;
  out

let tone_dbm ~p_dbm ~freq ~fs ?(phase = 0.0) n =
  tone ~amplitude:(Decibel.amplitude_of_dbm p_dbm) ~freq ~fs ~phase n

let two_tone_dbm ~p_dbm ~f1 ~f2 ~fs n =
  let a = Decibel.amplitude_of_dbm p_dbm in
  let t1 = tone ~amplitude:a ~freq:f1 ~fs n in
  let t2 = tone ~amplitude:a ~freq:f2 ~fs ~phase:(Float.pi /. 3.0) n in
  Array.mapi (fun i x -> x +. t2.(i)) t1

let add a b =
  if Array.length a <> Array.length b then invalid_arg "Waveform.add: length mismatch";
  Array.mapi (fun i x -> x +. b.(i)) a

let scale k = Array.map (fun x -> k *. x)

let gaussian_noise rng ~sigma n = Array.init n (fun _ -> sigma *. Rng.gaussian rng)

let rms x =
  let acc = ref 0.0 in
  Array.iter (fun v -> acc := !acc +. (v *. v)) x;
  sqrt (!acc /. float_of_int (max 1 (Array.length x)))

let peak x = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0.0 x

let mean x =
  if Array.length x = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 x /. float_of_int (Array.length x)

let coherent_frequency ~freq ~fs ~n =
  let k = Float.round (freq *. float_of_int n /. fs) in
  let k = if k < 1.0 then 1.0 else k in
  (* Prefer an odd bin index: coherent-sampling practice. *)
  let ki = int_of_float k in
  let ki = if ki mod 2 = 0 then ki + 1 else ki in
  float_of_int ki *. fs /. float_of_int n
