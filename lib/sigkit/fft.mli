(** Radix-2 fast Fourier transforms over memoized {!Plan}s.

    Operates in place on parallel real/imaginary [float array]s, which
    avoids boxing [Complex.t] in hot loops.  Lengths must be powers of
    two; {!is_pow2} and {!next_pow2} help callers prepare records.
    Every transform runs off a per-size cached plan (bit-reversal
    permutation + twiddle tables), so repeated transforms of one size —
    the measurement pipeline's normal regime — pay no per-call setup. *)

val is_pow2 : int -> bool
val next_pow2 : int -> int

val forward : float array -> float array -> unit
(** [forward re im] transforms in place (decimation in time, no
    normalisation).  Raises [Invalid_argument] on length mismatch or
    non-power-of-two length. *)

val inverse : float array -> float array -> unit
(** Inverse transform in place, normalised by 1/N so that
    [inverse (forward x) = x]. *)

val real_forward : float array -> float array * float array
(** [real_forward x] transforms a real record of power-of-two length
    [n >= 2] via the packed [n/2] complex transform (half the butterfly
    work of {!forward}), returning the one-sided spectrum
    [(re, im)] of length [n/2 + 1] — bins [0 .. n/2], matching the
    corresponding bins of the full complex transform.  Scratch comes
    from the calling domain's {!Workspace}; only the result arrays are
    allocated. *)

val of_real : float array -> float array * float array
(** Copy a real record into freshly allocated (re, im) arrays. *)

val magnitude_squared : float array -> float array -> float array
(** Pointwise |X_k|^2 of a transformed record. *)
