(** Domain-local scratch arenas for zero-allocation hot paths.

    Measurement kernels (periodogram, real FFT, the fused modulator
    loop) need several same-sized float arrays per call.  Allocating
    them fresh per measurement is what made the seed periodogram cost
    5+ arrays per call.  A workspace hands out arrays keyed by
    [(slot, length)], reusing them across calls.

    Thread-safety contract: the arena is stored in {!Domain.DLS}, so
    each domain of the engine's pool owns a private workspace and no
    locking is needed.  Arrays returned by {!arr} are only valid until
    the next call with the same slot and length {e on the same domain};
    callers must fully overwrite them before reading and must not
    retain them across yields to other work wanting the same slot.
    Data returned to callers (e.g. [Spectrum.t.power]) must be copied
    out into fresh arrays.

    Slot discipline (keeps concurrent users of one domain apart; the
    full map and per-stage liveness argument are in DESIGN §15):
    0-1 [Fft] convenience wrappers, 2-5 [Spectrum],
    6-13 the [Rfchain] evaluation chain (6 settle-extended record,
    7 modulator output, 8-9 [Sdm] noise batches, 10-11 mixer I/Q,
    12 [Decimator] CIC intermediate, 13 [Vglna] noise batch),
    14 free for callers, 15 tests. *)

type t

val get : unit -> t
(** The calling domain's workspace (created on first use). *)

val arr : t -> slot:int -> len:int -> float array
(** [arr t ~slot ~len] returns the scratch array for [(slot, len)],
    allocating it on first use.  Contents are unspecified.  [slot] must
    be in [0..15].  The same physical array is returned for repeated
    calls with equal arguments on the same domain. *)

val allocations : unit -> int
(** Process-wide count of scratch arrays materialised so far; a steady
    value under load means the hot path has stopped allocating. *)
