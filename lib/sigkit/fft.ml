let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec grow p = if p >= n then p else grow (p * 2) in
  grow 1

let transforms = Telemetry.Counter.make "fft.transforms"
let points = Telemetry.Histogram.make "fft.points"

(* In-place iterative Cooley-Tukey.  [sign] is -1 for forward, +1 for
   inverse (engineering convention: forward kernel e^{-j2πkn/N}). *)
let transform sign re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft: re/im length mismatch";
  if not (is_pow2 n) then invalid_arg "Fft: length must be a power of two";
  Telemetry.Counter.incr transforms;
  Telemetry.Histogram.observe points (float_of_int n);
  Telemetry.Span.with_ ~name:"fft.transform" (fun () ->
  (* Bit-reversal permutation. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* Butterfly passes. *)
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let angle = float_of_int sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wr = cos angle and wi = sin angle in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1.0 and ci = ref 0.0 in
      for k = !i to !i + half - 1 do
        let tr = (!cr *. re.(k + half)) -. (!ci *. im.(k + half)) in
        let ti = (!cr *. im.(k + half)) +. (!ci *. re.(k + half)) in
        re.(k + half) <- re.(k) -. tr;
        im.(k + half) <- im.(k) -. ti;
        re.(k) <- re.(k) +. tr;
        im.(k) <- im.(k) +. ti;
        let nr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := nr
      done;
      i := !i + !len
    done;
    len := !len * 2
  done)

let forward re im = transform (-1) re im

let inverse re im =
  transform 1 re im;
  let n = float_of_int (Array.length re) in
  for i = 0 to Array.length re - 1 do
    re.(i) <- re.(i) /. n;
    im.(i) <- im.(i) /. n
  done

let of_real x = (Array.copy x, Array.make (Array.length x) 0.0)

let magnitude_squared re im =
  Array.init (Array.length re) (fun i -> (re.(i) *. re.(i)) +. (im.(i) *. im.(i)))
