let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec grow p = if p >= n then p else grow (p * 2) in
  grow 1

let transforms = Telemetry.Counter.make "fft.transforms"
let points = Telemetry.Histogram.make "fft.points"

let check re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft: re/im length mismatch";
  if not (is_pow2 n) then invalid_arg "Fft: length must be a power of two";
  n

let observe n =
  Telemetry.Counter.incr transforms;
  Telemetry.Histogram.observe points (float_of_int n)

let forward re im =
  let n = check re im in
  observe n;
  Telemetry.Span.with_ ~name:"fft.transform" (fun () -> Plan.exec (Plan.get n) re im)

let inverse re im =
  let n = check re im in
  observe n;
  Telemetry.Span.with_ ~name:"fft.transform" (fun () ->
      Plan.exec_inverse (Plan.get n) re im);
  let nf = float_of_int n in
  for i = 0 to n - 1 do
    re.(i) <- re.(i) /. nf;
    im.(i) <- im.(i) /. nf
  done

let real_forward x =
  let n = Array.length x in
  if not (is_pow2 n) || n < 2 then
    invalid_arg "Fft.real_forward: length must be a power of two >= 2";
  observe n;
  Telemetry.Span.with_ ~name:"fft.transform" (fun () ->
      let p = Plan.real_get n in
      let m = n / 2 in
      let re = Array.make (m + 1) 0.0 and im = Array.make (m + 1) 0.0 in
      let ws = Workspace.get () in
      let scratch_re = Workspace.arr ws ~slot:0 ~len:m in
      let scratch_im = Workspace.arr ws ~slot:1 ~len:m in
      Plan.real_forward p x ~re ~im ~scratch_re ~scratch_im;
      (re, im))

let of_real x = (Array.copy x, Array.make (Array.length x) 0.0)

let magnitude_squared re im =
  Array.init (Array.length re) (fun i -> (re.(i) *. re.(i)) +. (im.(i) *. im.(i)))
