type kind =
  | Rectangular
  | Hann
  | Hamming
  | Blackman_harris

let cosine_sum terms n =
  let w = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let x = 2.0 *. Float.pi *. float_of_int i /. float_of_int n in
    let acc = ref 0.0 in
    List.iteri (fun k a -> acc := !acc +. (a *. cos (float_of_int k *. x))) terms;
    w.(i) <- !acc
  done;
  w

let build kind n =
  match kind with
  | Rectangular -> Array.make n 1.0
  | Hann -> cosine_sum [ 0.5; -0.5 ] n
  | Hamming -> cosine_sum [ 0.54; -0.46 ] n
  | Blackman_harris -> cosine_sum [ 0.35875; -0.48829; 0.14128; -0.01168 ] n

(* Coefficient tables are immutable once built and shared across
   domains; the mutex only guards the memo table itself. *)
let lock = Mutex.create ()
let tables : (kind * int, float array) Hashtbl.t = Hashtbl.create 16

let table kind n =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt tables (kind, n) with
      | Some w -> w
      | None ->
        let w = build kind n in
        Hashtbl.add tables (kind, n) w;
        w)

let coefficients kind n = Array.copy (table kind n)

let apply kind x =
  let w = table kind (Array.length x) in
  Array.mapi (fun i xi -> xi *. w.(i)) x

let coherent_gain = function
  | Rectangular -> 1.0
  | Hann -> 0.5
  | Hamming -> 0.54
  | Blackman_harris -> 0.35875

let noise_bandwidth = function
  | Rectangular -> 1.0
  | Hann -> 1.5
  | Hamming -> 1.3628
  | Blackman_harris -> 2.0044

let main_lobe_bins = function
  | Rectangular -> 1
  | Hann -> 3
  | Hamming -> 3
  | Blackman_harris -> 5
