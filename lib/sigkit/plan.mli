(** Memoized FFT execution plans.

    A plan captures everything about a transform of one size that does
    not depend on the data: the bit-reversal permutation and per-stage
    twiddle-factor tables.  The seed transform recomputed twiddles with
    a per-butterfly complex recurrence, which both costs ~40% extra
    arithmetic and accumulates rounding error across each stage; plans
    evaluate every twiddle directly from [cos]/[sin] once, at build
    time.

    Plans are immutable after construction and safe to share across
    domains.  {!get} and {!real_get} memoize per size behind a mutex, so
    a cache-miss evaluation running on the engine's domain pool builds
    each table at most once per process.  Transient scratch needed by
    the real transform is supplied by the caller (see {!Workspace}), so
    executing a plan performs no allocation. *)

type t
(** A complex transform plan for one power-of-two size. *)

val build_count : unit -> int
(** Process-wide number of plans built so far (complex and real inner
    plans); a steady value under load means every transform size is
    being served from the memo table. *)

val get : int -> t
(** [get n] returns the (memoized) plan for size [n].  Raises
    [Invalid_argument] unless [n] is a power of two. *)

val size : t -> int

val exec : t -> float array -> float array -> unit
(** [exec p re im] runs the forward transform (engineering convention,
    kernel [e^{-j2 pi kn/N}]) in place.  Raises [Invalid_argument] on a
    length mismatch with the plan size. *)

val exec_inverse : t -> float array -> float array -> unit
(** Unnormalised inverse transform in place (callers scale by [1/N]). *)

type real
(** A real-input transform plan for size [n]: the packed [n/2] complex
    plan plus the untangling twiddles [e^{-j2 pi k/n}]. *)

val real_get : int -> real
(** [real_get n] returns the (memoized) real plan for size [n].  Raises
    [Invalid_argument] unless [n] is a power of two with [n >= 2]. *)

val real_size : real -> int

val real_forward :
  real ->
  float array ->
  re:float array ->
  im:float array ->
  scratch_re:float array ->
  scratch_im:float array ->
  unit
(** [real_forward p x ~re ~im ~scratch_re ~scratch_im] computes the
    one-sided spectrum [X_0 .. X_{n/2}] of the real record [x] (first
    [n] samples are used) into [re]/[im] (length at least [n/2 + 1]),
    using caller-supplied scratch of length exactly [n/2].  Matches the
    full complex transform of [x] on bins [0 .. n/2] with half the
    butterfly work. *)

val real_forward_packed :
  real ->
  packed_re:float array ->
  packed_im:float array ->
  re:float array ->
  im:float array ->
  unit
(** Lower-level entry: the caller has already packed
    [z_k = x_{2k} + j x_{2k+1}] (possibly fused with windowing) into
    [packed_re]/[packed_im] of length exactly [n/2], which are consumed
    as scratch.  Results land in [re]/[im] as for {!real_forward}. *)
