let is_pow2 n = n > 0 && n land (n - 1) = 0

type t = {
  n : int;
  bitrev : int array;
  (* Forward twiddles of every stage, flattened: the stage with
     half-length [h] owns slots [h-1 .. 2h-2], its j-th factor being
     e^{-j pi j / h}.  Total n-1 slots. *)
  tw_re : float array;
  tw_im : float array;
}

type real = {
  rn : int;                    (* full real record size *)
  m : int;                     (* rn / 2 *)
  cplan : t;
  ur : float array;            (* cos(2 pi k / rn), k = 0 .. m *)
  ui : float array;            (* sin(2 pi k / rn) *)
}

(* A plain atomic rather than a telemetry counter: plan builds are
   once-per-process memo misses, which would break the determinism of
   per-workload counter snapshots. *)
let builds = Atomic.make 0

let build_count () = Atomic.get builds

let size p = p.n
let real_size p = p.rn

let log2_of n =
  let rec go b p = if p = n then b else go (b + 1) (p * 2) in
  go 0 1

let build n =
  Atomic.incr builds;
  let b = log2_of n in
  let bitrev =
    Array.init n (fun i ->
        let r = ref 0 and x = ref i in
        for _ = 1 to b do
          r := (!r lsl 1) lor (!x land 1);
          x := !x lsr 1
        done;
        !r)
  in
  let tw_re = Array.make (max 0 (n - 1)) 1.0 in
  let tw_im = Array.make (max 0 (n - 1)) 0.0 in
  let half = ref 1 in
  while !half < n do
    let h = !half in
    let base = h - 1 in
    for j = 0 to h - 1 do
      let angle = -.Float.pi *. float_of_int j /. float_of_int h in
      tw_re.(base + j) <- cos angle;
      tw_im.(base + j) <- sin angle
    done;
    half := 2 * h
  done;
  { n; bitrev; tw_re; tw_im }

let lock = Mutex.create ()
let plans : (int, t) Hashtbl.t = Hashtbl.create 16
let real_plans : (int, real) Hashtbl.t = Hashtbl.create 16

let get n =
  if not (is_pow2 n) then invalid_arg "Plan.get: size must be a power of two";
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt plans n with
      | Some p -> p
      | None ->
        let p = build n in
        Hashtbl.add plans n p;
        p)

let build_real n =
  let m = n / 2 in
  let cplan = build m in
  let ur = Array.make (m + 1) 0.0 and ui = Array.make (m + 1) 0.0 in
  for k = 0 to m do
    let angle = 2.0 *. Float.pi *. float_of_int k /. float_of_int n in
    ur.(k) <- cos angle;
    ui.(k) <- sin angle
  done;
  { rn = n; m; cplan; ur; ui }

let real_get n =
  if not (is_pow2 n) || n < 2 then
    invalid_arg "Plan.real_get: size must be a power of two >= 2";
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt real_plans n with
      | Some p -> p
      | None ->
        let p = build_real n in
        Hashtbl.add real_plans n p;
        p)

(* The complex butterfly passes, twiddles from the tables.  Bounds are
   established once by the length check; inner accesses are unsafe. *)
let exec_sized p re im =
  let n = p.n in
  let brev = p.bitrev in
  for i = 0 to n - 1 do
    let j = Array.unsafe_get brev i in
    if i < j then begin
      let tr = Array.unsafe_get re i in
      Array.unsafe_set re i (Array.unsafe_get re j);
      Array.unsafe_set re j tr;
      let ti = Array.unsafe_get im i in
      Array.unsafe_set im i (Array.unsafe_get im j);
      Array.unsafe_set im j ti
    end
  done;
  let tw_re = p.tw_re and tw_im = p.tw_im in
  let half = ref 1 in
  while !half < n do
    let h = !half in
    let base = h - 1 in
    let len = 2 * h in
    let i = ref 0 in
    while !i < n do
      let i0 = !i in
      for j = 0 to h - 1 do
        let k = i0 + j in
        let wr = Array.unsafe_get tw_re (base + j)
        and wi = Array.unsafe_get tw_im (base + j) in
        let xr = Array.unsafe_get re (k + h) and xi = Array.unsafe_get im (k + h) in
        let tr = (wr *. xr) -. (wi *. xi) in
        let ti = (wr *. xi) +. (wi *. xr) in
        let ur = Array.unsafe_get re k and ui = Array.unsafe_get im k in
        Array.unsafe_set re (k + h) (ur -. tr);
        Array.unsafe_set im (k + h) (ui -. ti);
        Array.unsafe_set re k (ur +. tr);
        Array.unsafe_set im k (ui +. ti)
      done;
      i := i0 + len
    done;
    half := len
  done

let check_len p re im =
  if Array.length re <> p.n || Array.length im <> p.n then
    invalid_arg "Plan.exec: length mismatch with plan size"

let exec p re im =
  check_len p re im;
  exec_sized p re im

(* Swapping real and imaginary parts on input and output turns the
   forward kernel into the (unnormalised) inverse one. *)
let exec_inverse p re im =
  check_len p re im;
  exec_sized p im re

(* Untangle the packed transform: with Z the m-point transform of
   z_k = x_{2k} + j x_{2k+1}, the even/odd-sample spectra are
   E_k = (Z_k + conj Z_{m-k})/2 and O_k = (Z_k - conj Z_{m-k})/(2j),
   and X_k = E_k + e^{-j2 pi k/n} O_k for k = 0 .. m. *)
let real_forward_packed p ~packed_re ~packed_im ~re ~im =
  let m = p.m in
  if Array.length packed_re <> m || Array.length packed_im <> m then
    invalid_arg "Plan.real_forward_packed: scratch length must be n/2";
  if Array.length re < m + 1 || Array.length im < m + 1 then
    invalid_arg "Plan.real_forward_packed: output length must be >= n/2 + 1";
  exec_sized p.cplan packed_re packed_im;
  let mask = m - 1 in
  let ur = p.ur and ui = p.ui in
  for k = 0 to m do
    let ka = k land mask in
    let kb = (m - k) land mask in
    let ar = Array.unsafe_get packed_re ka and ai = Array.unsafe_get packed_im ka in
    let br = Array.unsafe_get packed_re kb and bi = Array.unsafe_get packed_im kb in
    let er = 0.5 *. (ar +. br) in
    let ei = 0.5 *. (ai -. bi) in
    let odr = 0.5 *. (ai +. bi) in
    let odi = -0.5 *. (ar -. br) in
    let c = Array.unsafe_get ur k and s = Array.unsafe_get ui k in
    Array.unsafe_set re k (er +. (c *. odr) +. (s *. odi));
    Array.unsafe_set im k (ei +. (c *. odi) -. (s *. odr))
  done

let real_forward p x ~re ~im ~scratch_re ~scratch_im =
  let m = p.m in
  if Array.length x < p.rn then
    invalid_arg "Plan.real_forward: record shorter than plan size";
  if Array.length scratch_re <> m || Array.length scratch_im <> m then
    invalid_arg "Plan.real_forward: scratch length must be n/2";
  for k = 0 to m - 1 do
    Array.unsafe_set scratch_re k (Array.unsafe_get x (2 * k));
    Array.unsafe_set scratch_im k (Array.unsafe_get x ((2 * k) + 1))
  done;
  real_forward_packed p ~packed_re:scratch_re ~packed_im:scratch_im ~re ~im
