type outcome = {
  best : Rfchain.Config.t;
  best_score : float;
  evaluations : int;
  exhausted_budget : bool;
}

let maximize ~objective ~fields ~start ?(offsets = [ 1; -1; 2; -2; 4; -4; 8; -8 ]) ?(passes = 2)
    ?budget () =
  let evaluations = ref 0 in
  let exhausted = ref false in
  let within_budget () =
    match budget with
    | None -> true
    | Some b ->
      if !evaluations < b then true
      else begin
        exhausted := true;
        false
      end
  in
  let eval config =
    incr evaluations;
    objective config
  in
  let best = ref start and best_score = ref (eval start) in
  let probe_field name =
    let width = Rfchain.Config.field_width name in
    let current = Rfchain.Config.field !best name in
    let try_code code =
      if code >= 0 && code < 1 lsl width && code <> current && within_budget () then begin
        let candidate = Rfchain.Config.with_field !best name code in
        let score = eval candidate in
        if score > !best_score then begin
          best := candidate;
          best_score := score
        end
      end
    in
    List.iter (fun off -> try_code (current + off)) offsets
  in
  for _ = 1 to passes do
    if not !exhausted then List.iter probe_field fields
  done;
  { best = !best; best_score = !best_score; evaluations = !evaluations; exhausted_budget = !exhausted }
