type outcome = {
  best : Rfchain.Config.t;
  best_score : float;
  evaluations : int;
  exhausted_budget : bool;
}

let maximize ~objective ?objective_batch ~fields ~start
    ?(offsets = [ 1; -1; 2; -2; 4; -4; 8; -8 ]) ?(passes = 2) ?budget () =
  let evaluations = ref 0 in
  let exhausted = ref false in
  let within_budget () =
    match budget with
    | None -> true
    | Some b ->
      if !evaluations < b then true
      else begin
        exhausted := true;
        false
      end
  in
  let eval config =
    incr evaluations;
    objective config
  in
  let best = ref start and best_score = ref (eval start) in
  let accept candidate score =
    if score > !best_score then begin
      best := candidate;
      best_score := score
    end
  in
  let probe_field name =
    let width = Rfchain.Config.field_width name in
    let current = Rfchain.Config.field !best name in
    match objective_batch with
    | Some batch when budget = None ->
      (* Batched probe: within one field every candidate is determined
         up front — a sequential improvement only rewrites the field
         being probed, so [with_field !best name code] is the same word
         whether [!best] is the field-entry point or a mid-field
         improvement.  Evaluating all candidates first and folding with
         the same strict-> rule in offset order therefore reproduces
         the sequential trajectory exactly (the scores are pure), while
         letting the engine run the probes as one batch. *)
      let codes =
        List.filter_map
          (fun off ->
            let code = current + off in
            if code >= 0 && code < 1 lsl width && code <> current then Some code else None)
          offsets
      in
      let candidates = List.map (fun code -> Rfchain.Config.with_field !best name code) codes in
      evaluations := !evaluations + List.length candidates;
      let scores = batch candidates in
      List.iter2 accept candidates scores
    | _ ->
      (* Sequential probe — also the only correct mode under a budget,
         where every single evaluation is gated on the cap. *)
      let try_code code =
        if code >= 0 && code < 1 lsl width && code <> current && within_budget () then begin
          let candidate = Rfchain.Config.with_field !best name code in
          let score = eval candidate in
          accept candidate score
        end
      in
      List.iter (fun off -> try_code (current + off)) offsets
  in
  for _ = 1 to passes do
    if not !exhausted then List.iter probe_field fields
  done;
  { best = !best; best_score = !best_score; evaluations = !evaluations; exhausted_budget = !exhausted }
