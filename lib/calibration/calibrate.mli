(** The full 14-step calibration procedure (paper Section V-B).

    This algorithm is the design house's crown jewel: it is what turns
    a blank die into a working receiver, and under the locking scheme
    it is kept secret together with the configuration settings it
    produces.  Steps:

    + 1-4   reconfigure for calibration (buffered comparator, output
            buffer in path, RF input off, feedback open);
    + 5-7   oscillation-mode tuning of Cc/Cf and -Gm back-off
            ({!Osc_tune});
    + 8-11  restore the loop, select sampling rate and loop delay;
    + 12    VGLNA segment selection for the target sensitivity;
    + 13    nominal bias initialisation (design knowledge);
    + 14    iterative SNR/SFDR-driven bias refinement
            ({!Coordinate_search}).

    Calibration on a real production line fails on some dies — process
    outliers, latent defects, fault-injected parts.  The procedure
    therefore never raises: {!run} always returns an {!outcome} whose
    {!verdict} says whether the die converged into spec or must be
    binned, with the best-effort {!report} attached either way. *)

type report = {
  key : Rfchain.Config.t;        (** the calibrated configuration = secret key *)
  snr_mod_db : float;            (** achieved SNR at the modulator output *)
  snr_rx_db : float;             (** achieved SNR at the receiver output *)
  sfdr_db : float;               (** achieved SFDR *)
  freq_error_hz : float;         (** residual tank-tuning error *)
  oscillation_measurements : int;
  snr_measurements : int;
  log : string list;             (** human-readable step trace, oldest first *)
}

type failure =
  | Tank_dead of { log : string list; measurements : int }
      (** Steps 1-7 found no oscillation: the die cannot be tuned at
          all.  The attached report is synthetic (nominal key,
          [-inf] metrics) — bin the part. *)
  | Spec_shortfall of { report : report; shortfall_db : float }
      (** Calibration completed but the die misses its standard by
          [shortfall_db] (summed SNR/SFDR shortfall).  The report holds
          the best configuration found. *)

type verdict = Converged | Degraded of failure

type outcome = {
  report : report;   (** best-effort result, present even when degraded *)
  verdict : verdict;
  attempts : int;    (** calibration attempts spent (1 = no retry needed) *)
}

val failure_to_string : failure -> string

val step14_fields : string list
(** The knobs refined by the iterative step, in the (secret) order the
    procedure visits them. *)

val attempt : ?passes:int -> ?refine_sfdr:bool -> Rfchain.Receiver.t -> (report, failure) result
(** One calibration attempt, no retries.  [passes] bounds the step-14
    cycles (default 2); [refine_sfdr] adds an SFDR term to the step-14
    objective and to the acceptance gate (default true, one extra trial
    per probe). *)

val run :
  ?passes:int -> ?refine_sfdr:bool -> ?max_retries:int -> Rfchain.Receiver.t -> outcome
(** Calibrate one die for the receiver's standard, retrying with an
    escalated budget when the die misses spec: each retry adds a
    step-14 pass and widens the probe ladder to +-32.  [max_retries]
    defaults to 2; pass [~max_retries:0] in large Monte-Carlo sweeps
    where a marginal die should just be reported as such.  A dead tank
    is never retried.  Never raises. *)

val quick : Rfchain.Receiver.t -> Rfchain.Config.t
(** Calibration with a single refinement pass, no SFDR term and no
    retries — cheaper, used by tests and large Monte-Carlo sweeps.
    Best-effort: on a degraded die this returns the best key found
    (or the nominal word for a dead tank) rather than raising. *)
