type report = {
  key : Rfchain.Config.t;
  snr_mod_db : float;
  snr_rx_db : float;
  sfdr_db : float;
  freq_error_hz : float;
  oscillation_measurements : int;
  snr_measurements : int;
  log : string list;
}

type failure =
  | Tank_dead of { log : string list; measurements : int }
  | Spec_shortfall of { report : report; shortfall_db : float }

type verdict = Converged | Degraded of failure

type outcome = {
  report : report;
  verdict : verdict;
  attempts : int;
}

let failure_to_string = function
  | Tank_dead { measurements; _ } ->
    Printf.sprintf "tank dead: no oscillation at maximum Q-enhancement (%d measurements)"
      measurements
  | Spec_shortfall { shortfall_db; report } ->
    Printf.sprintf "spec shortfall: %.1f dB below specification (best SNR(mod) %.1f dB)"
      shortfall_db report.snr_mod_db

let step14_fields =
  [
    "gmin_bias";
    "dac_bias";
    "loop_delay";
    "preamp_bias";
    "comp_bias";
    "cap_fine";
    "dac_trim";
    "preamp_trim";
    "vglna_gain";
  ]

(* Step 11's design formula: the delay-line setting that compensates the
   loop at this sampling rate for a typical die (per-die skew is then
   absorbed by step 14). *)
let delay_code_for_fs fs = max 0 (min 15 (int_of_float (Float.round (4.0 +. (4.0 *. fs /. 12e9)))))

let default_offsets = [ 1; -1; 2; -2; 4; -4; 8; -8 ]

(* Escalated probe ladder for retries: a die pushed off-corner by drift
   or faults may sit further from the nominal biases than the production
   ladder reaches. *)
let wide_offsets = [ 1; -1; 2; -2; 4; -4; 8; -8; 16; -16; 32; -32 ]

let attempts_counter = Telemetry.Counter.make "calibrate.attempts"
let retries_counter = Telemetry.Counter.make "calibrate.retries"
let converged_counter = Telemetry.Counter.make "calibrate.converged"
let tank_dead_counter = Telemetry.Counter.make "calibrate.tank_dead"
let spec_shortfall_counter = Telemetry.Counter.make "calibrate.spec_shortfall"

let attempt_with ~passes ~refine_sfdr ~offsets rx =
  Telemetry.Counter.incr attempts_counter;
  Telemetry.Span.with_ ~name:"calibrate.attempt" @@ fun () ->
  let log = ref [] in
  let say fmt = Printf.ksprintf (fun s -> log := s :: !log) fmt in
  let fs = Rfchain.Receiver.fs rx in
  (* Steps 1-7: oscillation-mode centre-frequency tuning. *)
  match Osc_tune.run rx with
  | Error err ->
    say "steps 1-7: FAILED — %s" (Osc_tune.error_to_string err);
    let (Osc_tune.Tank_silent { measurements; _ }) = err in
    Error (Tank_dead { log = List.rev !log; measurements })
  | Ok osc ->
    say "steps 1-7: Cc=%d Cf=%d, freq error %.0f kHz, -Gm backed off to %d (%d osc. measurements)"
      osc.Osc_tune.cap_coarse osc.cap_fine (osc.freq_error_hz /. 1e3) osc.gm_q osc.measurements;
    (* Steps 8-13: restore loop, set delay and gain, nominal biases. *)
    let start =
      {
        Rfchain.Config.nominal with
        cap_coarse = osc.cap_coarse;
        cap_fine = osc.cap_fine;
        gm_q = osc.gm_q;
        loop_delay = delay_code_for_fs fs;
        vglna_gain = Rfchain.Vglna.segment_code ~p_dbm:(-25.0);
      }
    in
    say "steps 8-13: loop restored, delay code %d, VGLNA code %d, biases nominal"
      start.loop_delay start.vglna_gain;
    (* Step 14: iterative refinement driven by measured SNR (and SFDR),
       routed through the evaluation engine: cached across retries and
       batchable per probe ladder, with the bench-trial cost accrued on
       a local account so the reported measurement count is independent
       of cache warmth. *)
    let die = Engine.Request.die_of_receiver rx in
    let standard = Rfchain.Receiver.standard rx in
    let account = Engine.Service.Account.make () in
    let eval metric config =
      Engine.Service.eval ~account (Engine.Request.make ~die ~standard ~config metric)
    in
    let snr_of config = (eval Engine.Request.Snr_mod config).Metrics.Spec.snr_mod_db in
    let sfdr_of config = Option.get (eval Engine.Request.Sfdr config).Metrics.Spec.sfdr_db in
    (* SFDR contributes only its shortfall from spec plus a 2 dB
       production margin; once comfortably in spec, SNR rules. *)
    let score ~snr ~sfdr =
      let target = standard.Rfchain.Standards.min_sfdr_db +. 2.0 in
      snr -. (4.0 *. Float.max 0.0 (target -. sfdr))
    in
    let objective config =
      let snr = snr_of config in
      if not refine_sfdr then snr else score ~snr ~sfdr:(sfdr_of config)
    in
    let objective_batch configs =
      if not refine_sfdr then
        List.map
          (fun m -> m.Metrics.Spec.snr_mod_db)
          (Engine.Service.eval_batch ~account
             (List.map
                (fun config ->
                  Engine.Request.make ~die ~standard ~config Engine.Request.Snr_mod)
                configs))
      else
        (* One SNR and one SFDR capture per candidate, submitted as a
           single batch — the same trials the sequential objective
           spends, in batch order instead of interleaved. *)
        let reqs =
          List.concat_map
            (fun config ->
              [
                Engine.Request.make ~die ~standard ~config Engine.Request.Snr_mod;
                Engine.Request.make ~die ~standard ~config Engine.Request.Sfdr;
              ])
            configs
        in
        let rec pair = function
          | snr_m :: sfdr_m :: rest ->
            score ~snr:snr_m.Metrics.Spec.snr_mod_db
              ~sfdr:(Option.get sfdr_m.Metrics.Spec.sfdr_db)
            :: pair rest
          | [] -> []
          | [ _ ] -> assert false
        in
        pair (Engine.Service.eval_batch ~account reqs)
    in
    let outcome =
      Telemetry.Span.with_ ~name:"calibrate.step14" (fun () ->
          Coordinate_search.maximize ~objective ~objective_batch ~fields:step14_fields ~start
            ~offsets ~passes ())
    in
    let key = outcome.Coordinate_search.best in
    let snr_mod_db = snr_of key in
    let snr_rx_db =
      (eval (Engine.Request.Snr_rx { n_fft = 2048 }) key).Metrics.Spec.snr_rx_db
    in
    let sfdr_db = sfdr_of key in
    say "step 14: %d trials; SNR(mod) %.1f dB, SNR(rx) %.1f dB, SFDR %.1f dB"
      outcome.Coordinate_search.evaluations snr_mod_db snr_rx_db sfdr_db;
    let report =
      {
        key;
        snr_mod_db;
        snr_rx_db;
        sfdr_db;
        freq_error_hz = osc.freq_error_hz;
        oscillation_measurements = osc.measurements;
        snr_measurements = Engine.Service.Account.spent account;
        log = List.rev !log;
      }
    in
    (* Acceptance gate: the calibrated die must actually meet its
       standard.  SFDR only binds when the procedure refined it. *)
    let m =
      {
        Metrics.Spec.snr_mod_db;
        snr_rx_db;
        sfdr_db = (if refine_sfdr then Some sfdr_db else None);
      }
    in
    let shortfall_db = Metrics.Spec.spec_distance standard m in
    if shortfall_db > 0.0 then Error (Spec_shortfall { report; shortfall_db }) else Ok report

let attempt ?(passes = 2) ?(refine_sfdr = true) rx =
  attempt_with ~passes ~refine_sfdr ~offsets:default_offsets rx

(* A die whose tank never oscillates yields no key at all; synthesise a
   report that says so in-band instead of raising. *)
let dead_report ~log ~measurements =
  {
    key = Rfchain.Config.nominal;
    snr_mod_db = Float.neg_infinity;
    snr_rx_db = Float.neg_infinity;
    sfdr_db = Float.neg_infinity;
    freq_error_hz = Float.infinity;
    oscillation_measurements = measurements;
    snr_measurements = 0;
    log;
  }

(* The retry loop is the engine's generic deterministic
   retry-with-escalation policy: each retry runs one more refinement
   pass over the wide probe ladder, a silent tank is terminal, and the
   error folded across attempts is the best (smallest) spec shortfall
   seen — ties keep the earlier attempt, matching the original
   hand-rolled loop exactly. *)
let run ?(passes = 2) ?(refine_sfdr = true) ?(max_retries = 2) rx =
  Telemetry.Span.with_ ~name:"calibrate.run" @@ fun () ->
  let policy =
    Engine.Retry.policy ~max_attempts:(max_retries + 1)
      ~initial:(passes, default_offsets)
      ~escalate:(fun ~attempt:_ (p, _) -> (p + 1, wide_offsets))
      ()
  in
  let retryable = function Tank_dead _ -> false | Spec_shortfall _ -> true in
  let keep prev last =
    match prev, last with
    | Spec_shortfall { shortfall_db = a; _ }, Spec_shortfall { shortfall_db = b; _ } ->
      if a <= b then prev else last
    | _, Tank_dead _ -> last
    | Tank_dead _, _ -> prev (* unreachable: tank death is terminal *)
  in
  let o =
    Engine.Retry.run ~retryable ~keep policy (fun ~attempt (p, offsets) ->
        if attempt > 1 then begin
          Telemetry.Counter.incr retries_counter;
          (* An escalation that may still succeed is routine (fig10
             hits one on a healthy run); only degraded outcomes warn. *)
          Telemetry.Log.info
            ~fields:[ ("attempt", string_of_int attempt); ("passes", string_of_int p) ]
            "calibrate: escalating retry"
        end;
        attempt_with ~passes:p ~refine_sfdr ~offsets rx)
  in
  match o.Engine.Retry.result with
  | Ok report ->
    Telemetry.Counter.incr converged_counter;
    { report; verdict = Converged; attempts = o.Engine.Retry.attempts }
  | Error (Tank_dead { log; measurements } as f) ->
    (* No amount of re-running steps 1-7 revives a silent tank. *)
    Telemetry.Counter.incr tank_dead_counter;
    Telemetry.Log.warn
      ~fields:[ ("attempts", string_of_int o.Engine.Retry.attempts) ]
      "calibrate: degraded (tank dead)";
    let report = dead_report ~log ~measurements in
    { report; verdict = Degraded f; attempts = o.Engine.Retry.attempts }
  | Error (Spec_shortfall { report; _ } as f) ->
    Telemetry.Counter.incr spec_shortfall_counter;
    Telemetry.Log.warn
      ~fields:[ ("attempts", string_of_int o.Engine.Retry.attempts) ]
      "calibrate: degraded (spec shortfall)";
    { report; verdict = Degraded f; attempts = o.Engine.Retry.attempts }

let quick rx =
  let outcome = run ~passes:1 ~refine_sfdr:false ~max_retries:0 rx in
  outcome.report.key
