(** Oscillation-mode centre-frequency tuning (calibration steps 1-7).

    With the feedback loop opened, the input transconductor off, the
    comparator bypassed to a buffer and the Q-enhancement cell at
    maximum, the LC tank self-oscillates; the capacitor arrays are then
    tuned until the observed oscillation frequency equals the wanted
    carrier, after which the Q-enhancement is backed off until the
    oscillation just vanishes.  All measurements go through the
    modulator's observable output — never through ground-truth model
    internals — so the procedure is exactly what a (secret-holding)
    test engineer could run on silicon. *)

type result = {
  cap_coarse : int;
  cap_fine : int;
  gm_q : int;                  (** largest non-oscillating Q-enhancement code *)
  freq_error_hz : float;       (** residual |f_osc - f0| after tuning *)
  measurements : int;          (** oscillation-frequency measurements spent *)
}

val oscillation_config : Rfchain.Config.t -> Rfchain.Config.t
(** Apply calibration steps 1-5 to a word: comparator buffered, output
    buffer in path, input transconductor off, feedback open,
    Q-enhancement at maximum. *)

type error =
  | Tank_silent of {
      cap_coarse : int;          (** codes loaded when the tank fell silent *)
      cap_fine : int;
      measurements : int;        (** measurements spent before giving up *)
    }
      (** The tank failed to oscillate even at maximum Q-enhancement: a
          dead, badly faulted or far-out-of-corner die.  Calibration
          cannot proceed past step 6. *)

val error_to_string : error -> string

val measure_frequency : Rfchain.Receiver.t -> Rfchain.Config.t -> float option
(** One oscillation-mode frequency measurement (step 6's primitive). *)

val run : Rfchain.Receiver.t -> (result, error) Stdlib.result
(** Full steps 1-7 for the receiver's target standard.  Never raises:
    a silent tank is reported as [Error (Tank_silent _)]. *)
