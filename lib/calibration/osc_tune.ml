type result = {
  cap_coarse : int;
  cap_fine : int;
  gm_q : int;
  freq_error_hz : float;
  measurements : int;
}

type error =
  | Tank_silent of {
      cap_coarse : int;
      cap_fine : int;
      measurements : int;
    }

let error_to_string = function
  | Tank_silent { cap_coarse; cap_fine; measurements } ->
    Printf.sprintf
      "tank does not oscillate at maximum Q-enhancement (Cc=%d Cf=%d, %d measurements): dead or \
       out-of-corner die"
      cap_coarse cap_fine measurements

let oscillation_config (config : Rfchain.Config.t) =
  {
    config with
    comp_clock_enable = false;  (* step 1: comparator as buffer *)
    cal_buffer_enable = true;   (* step 2: observation buffer in path *)
    gmin_enable = false;        (* step 3: RF input disabled *)
    fb_enable = false;          (* step 4: feedback loop off *)
    gm_q = 63;                  (* step 5: -Gm at maximum *)
  }

let measure_frequency rx config =
  let sdm = Rfchain.Receiver.sdm_of_config rx config in
  Rfchain.Sdm.oscillation_frequency sdm ~n:8192

let ( let* ) = Result.bind

let runs_counter = Telemetry.Counter.make "osc_tune.runs"
let measurements_counter = Telemetry.Counter.make "osc_tune.measurements"

let run_steps rx =
  let f0 = (Rfchain.Receiver.standard rx).Rfchain.Standards.f0_hz in
  let base = oscillation_config Rfchain.Config.nominal in
  let count = ref 0 in
  let freq ~coarse ~fine =
    incr count;
    let config = { base with cap_coarse = coarse; cap_fine = fine } in
    match measure_frequency rx config with
    | Some f -> Ok f
    | None ->
      (* At maximum -Gm the tank must oscillate; a silent tank means a
         defective (or fault-injected) die, which calibration cannot
         recover — report it as data, not as an exception. *)
      Error (Tank_silent { cap_coarse = coarse; cap_fine = fine; measurements = !count })
  in
  (* Oscillation frequency decreases monotonically with capacitance,
     hence with code: binary-search the crossing (step 6). *)
  let search ~measure ~max_code =
    let rec go lo hi =
      if lo >= hi then Ok lo
      else
        let mid = (lo + hi) / 2 in
        let* f = measure mid in
        if f > f0 then go (mid + 1) hi else go lo mid
    in
    let* candidate = go 0 max_code in
    (* The crossing leaves two neighbours; keep the closer one. *)
    let* f_candidate = measure candidate in
    let best = ref candidate and best_err = ref (Float.abs (f_candidate -. f0)) in
    let* () =
      if candidate > 0 then
        let* f_below = measure (candidate - 1) in
        let err = Float.abs (f_below -. f0) in
        if err < !best_err then begin
          best := candidate - 1;
          best_err := err
        end;
        Ok ()
      else Ok ()
    in
    Ok (!best, !best_err)
  in
  let* coarse, _ = search ~measure:(fun c -> freq ~coarse:c ~fine:128) ~max_code:255 in
  let* fine, freq_error_hz = search ~measure:(fun c -> freq ~coarse ~fine:c) ~max_code:255 in
  (* Step 7: back the Q-enhancement off until oscillation vanishes. *)
  let tuned = { base with cap_coarse = coarse; cap_fine = fine } in
  let rec back_off code =
    if code < 0 then 0
    else begin
      incr count;
      match measure_frequency rx { tuned with gm_q = code } with
      | Some _ -> back_off (code - 1)
      | None -> code
    end
  in
  let gm_q = back_off 63 in
  Ok { cap_coarse = coarse; cap_fine = fine; gm_q; freq_error_hz; measurements = !count }

let run rx =
  Telemetry.Counter.incr runs_counter;
  let result = Telemetry.Span.with_ ~name:"calibrate.osc_tune" (fun () -> run_steps rx) in
  (match result with
  | Ok { measurements; _ } | Error (Tank_silent { measurements; _ }) ->
    Telemetry.Counter.add measurements_counter measurements);
  result
