(** Iterative per-knob maximisation (calibration step 14's engine).

    Cyclic coordinate search over named configuration fields: each pass
    probes every field at a ladder of offsets from the current code and
    keeps the best.  This is also (deliberately) the same engine the
    multi-objective optimisation attack uses — the difference between
    the designer and the attacker is the starting point and the secret
    conditioning of the circuit, not the search machinery. *)

type outcome = {
  best : Rfchain.Config.t;
  best_score : float;
  evaluations : int;
  exhausted_budget : bool;   (** the [budget] cap cut the search short *)
}

val maximize :
  objective:(Rfchain.Config.t -> float) ->
  ?objective_batch:(Rfchain.Config.t list -> float list) ->
  fields:string list ->
  start:Rfchain.Config.t ->
  ?offsets:int list ->
  ?passes:int ->
  ?budget:int ->
  unit ->
  outcome
(** [maximize ~objective ~fields ~start ()] hill-climbs [objective].
    [offsets] is the probe ladder (default +-1, +-2, +-4, +-8);
    [passes] the number of full cycles (default 2).  [budget] caps the
    total objective evaluations — the watchdog for searches driven by a
    degraded or fault-injected die, where the objective may never
    improve; when it trips, the best point so far is still returned
    with [exhausted_budget] set.

    [objective_batch], when given, must score a candidate list exactly
    as mapping [objective] would; the search then submits each field's
    probe ladder as one batch (e.g. to the evaluation engine's parallel
    backend).  Because a within-field improvement only rewrites the
    probed field, batching is trajectory-preserving: the result is
    bit-identical to the sequential search.  Ignored when [budget] is
    set — budget enforcement is per-evaluation. *)
