(** Turn a fault list into a faulted receiver.

    Composition is by physical layer: chip-level faults ({!Fault.Pvt_drift},
    {!Fault.Comparator_drift}, {!Fault.Aging}) transform the die;
    fabric-level faults ({!Fault.Register_flip}, then {!Fault.Stuck_bits})
    rewrite the configuration word on every load; {!Fault.Burst_noise}
    corrupts the antenna-referred input.  The faulted receiver is a
    perfectly ordinary {!Rfchain.Receiver.t}: calibration, measurement
    and the attacks all run on it unchanged. *)

val chip_of : Circuit.Process.chip -> Fault.t list -> Circuit.Process.chip
(** Apply the chip-level faults; other mechanisms pass through. *)

val fabric_of : Fault.t list -> (Rfchain.Config.t -> Rfchain.Config.t) option
(** The programming-fabric rewrite, or [None] when no fabric fault is
    present.  Register upsets apply before stuck-ats, so a stuck bit
    overrides an upset on the same position. *)

val rf_of : Fault.t list -> (float array -> float array) option
(** The RF-input corruption, or [None]. *)

val tag_of : Fault.t list -> string
(** Canonical, collision-free serialisation of a fault list (exact-hex
    floats, application order preserved) — the engine cache tag for a
    faulted die. *)

val die : Circuit.Process.chip -> Fault.t list -> Engine.Request.die
(** The faulted die as an evaluation-engine request target: chip-level
    faults folded into the chip, fabric/RF faults installed as hooks,
    tagged with {!tag_of} so its measurements are cacheable. *)

val receiver : Circuit.Process.chip -> Rfchain.Standards.t -> Fault.t list -> Rfchain.Receiver.t
(** A receiver on the given die with all faults installed (built
    through the engine's one receiver constructor). *)

val rig : seed:int -> standard:Rfchain.Standards.t -> Fault.t list -> Rfchain.Receiver.t
(** [receiver] on a freshly fabricated die with the given seed. *)
