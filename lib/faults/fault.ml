type t =
  | Stuck_bits of { mask : int64; value : int64 }
  | Register_flip of { rate : float; seed : int }
  | Comparator_drift of { offset_v : float }
  | Pvt_drift of { scale : float }
  | Burst_noise of { rate : float; amplitude : float; seed : int }
  | Aging of { hours : float }

type severity = Mild | Moderate | Severe

let all_severities = [ Mild; Moderate; Severe ]

let severity_name = function Mild -> "mild" | Moderate -> "moderate" | Severe -> "severe"

(* One shared escalation ladder: each step is a rough 3x in physical
   stress, so "severe" is an order of magnitude past "mild". *)
let severity_scale = function Mild -> 1.0 | Moderate -> 3.0 | Severe -> 10.0

let stuck_bit ~bit ~value =
  if bit < 0 || bit >= Rfchain.Config.key_bits then
    Stuck_bits { mask = 0L; value = 0L }
  else
    let mask = Int64.shift_left 1L bit in
    Stuck_bits { mask; value = (if value then mask else 0L) }

let stuck_field ~name ~code =
  (* Stick a whole named field of the word at a fixed code: the model of
     a programming-fabric defect taking out one knob's driver. *)
  let width = Rfchain.Config.field_width name in
  let stuck = Rfchain.Config.with_field Rfchain.Config.nominal name code in
  let field_mask =
    (* Which bit positions belong to the field: flip the field through
       its full range and see which bits can change. *)
    let all_ones = Rfchain.Config.with_field Rfchain.Config.nominal name ((1 lsl width) - 1) in
    let all_zero = Rfchain.Config.with_field Rfchain.Config.nominal name 0 in
    Int64.logxor (Rfchain.Config.to_bits all_ones) (Rfchain.Config.to_bits all_zero)
  in
  Stuck_bits { mask = field_mask; value = Int64.logand (Rfchain.Config.to_bits stuck) field_mask }

let random_stuck ~seed severity =
  let n = match severity with Mild -> 1 | Moderate -> 3 | Severe -> 10 in
  let rng = Sigkit.Rng.create (0x57_0C + seed) in
  let mask = ref 0L and value = ref 0L in
  for _ = 1 to n do
    let bit = Sigkit.Rng.int_range rng 0 (Rfchain.Config.key_bits - 1) in
    let m = Int64.shift_left 1L bit in
    mask := Int64.logor !mask m;
    if Sigkit.Rng.bool rng then value := Int64.logor !value m
    else value := Int64.logand !value (Int64.lognot m)
  done;
  Stuck_bits { mask = !mask; value = !value }

let register_upsets ~seed severity =
  Register_flip { rate = 0.02 *. severity_scale severity; seed }

(* The slicer regenerates the bitstream every sample, so the comparator
   tolerates offsets far beyond the input amplitude; only a drift
   comparable to the tank swing (volts, not millivolts) starts eating
   quantizer levels.  Severe is tuned just past that knee. *)
let comparator_drift severity = Comparator_drift { offset_v = 1.2 *. severity_scale severity }

let pvt severity = Pvt_drift { scale = 0.004 *. severity_scale severity }

(* Both the hit rate and the hit energy grow with stress: a severe
   environment produces more bursts and bigger ones. *)
let burst_noise ~seed severity =
  Burst_noise
    {
      rate = 0.002 *. severity_scale severity;
      amplitude = 3e-3 *. severity_scale severity;
      seed;
    }

(* The aging cliff is die-dependent: a die whose Q-enhancement landed
   near the oscillation margin loses its tank after only a few hours,
   while a healthy die holds out to ~50.  Mild must sit inside the
   weakest die's headroom, so the ladder is explicit rather than the
   shared 1/3/10 scale. *)
let aging severity =
  Aging { hours = (match severity with Mild -> 2.0 | Moderate -> 50.0 | Severe -> 500.0) }

let name = function
  | Stuck_bits _ -> "stuck-bits"
  | Register_flip _ -> "register-flip"
  | Comparator_drift _ -> "comparator-drift"
  | Pvt_drift _ -> "pvt-drift"
  | Burst_noise _ -> "burst-noise"
  | Aging _ -> "aging"

let popcount64 x =
  let rec go acc x = if Int64.equal x 0L then acc
    else go (acc + 1) (Int64.logand x (Int64.sub x 1L))
  in
  go 0 x

let describe = function
  | Stuck_bits { mask; value } ->
    Printf.sprintf "%d programming bit(s) stuck (mask 0x%016Lx, value 0x%016Lx)"
      (popcount64 mask) mask value
  | Register_flip { rate; seed } ->
    Printf.sprintf "key-register upsets, per-bit flip rate %.3f (seed %d)" rate seed
  | Comparator_drift { offset_v } ->
    Printf.sprintf "comparator threshold drift %+.2f V" offset_v
  | Pvt_drift { scale } ->
    Printf.sprintf "supply/temperature excursion, %.1f%% parameter drift" (scale *. 100.0)
  | Burst_noise { rate; amplitude; seed } ->
    Printf.sprintf "RF burst noise, rate %.4f, amplitude %.1f mV (seed %d)" rate
      (amplitude *. 1e3) seed
  | Aging { hours } -> Printf.sprintf "%.0f hours of field use" hours
