let chip_of chip faults =
  List.fold_left
    (fun chip fault ->
      match (fault : Fault.t) with
      | Fault.Pvt_drift { scale } -> Circuit.Process.environment chip ~drift:scale
      | Fault.Comparator_drift { offset_v } ->
        Circuit.Process.with_offset_bias chip ~name:"sdm.comp_offset" ~bias:offset_v
      | Fault.Aging { hours } -> Circuit.Process.age chip ~hours
      | Fault.Stuck_bits _ | Fault.Register_flip _ | Fault.Burst_noise _ -> chip)
    chip faults

let apply_stuck ~mask ~value bits =
  Int64.logor (Int64.logand bits (Int64.lognot mask)) (Int64.logand value mask)

let apply_flips ~rate ~seed bits =
  (* Fresh generator per load: the upset pattern is a deterministic
     function of the fault seed, so a fixed-seed campaign reproduces
     bit-for-bit. *)
  let rng = Sigkit.Rng.create (0xF11B + seed) in
  let bits = ref bits in
  for bit = 0 to Rfchain.Config.key_bits - 1 do
    if Sigkit.Rng.float rng < rate then
      bits := Int64.logxor !bits (Int64.shift_left 1L bit)
  done;
  !bits

let fabric_of faults =
  let flips =
    List.filter_map
      (function
        | Fault.Register_flip { rate; seed } -> Some (apply_flips ~rate ~seed)
        | _ -> None)
      faults
  in
  let stucks =
    List.filter_map
      (function
        | Fault.Stuck_bits { mask; value } -> Some (apply_stuck ~mask ~value)
        | _ -> None)
      faults
  in
  (* Register upsets act upstream of the fabric, so flips run first and
     a stuck bit overrides an upset on the same position. *)
  match flips @ stucks with
  | [] -> None
  | steps ->
    Some
      (fun config ->
        Rfchain.Config.of_bits
          (List.fold_left (fun bits step -> step bits) (Rfchain.Config.to_bits config) steps))

let add_bursts ~rate ~amplitude ~seed input =
  let rng = Sigkit.Rng.create (0xB0057 + seed) in
  Array.map
    (fun sample ->
      if Sigkit.Rng.float rng < rate then
        sample +. (amplitude *. Sigkit.Rng.gaussian rng)
      else sample)
    input

let rf_of faults =
  let steps =
    List.filter_map
      (fun fault ->
        match (fault : Fault.t) with
        | Fault.Burst_noise { rate; amplitude; seed } ->
          Some (add_bursts ~rate ~amplitude ~seed)
        | _ -> None)
      faults
  in
  match steps with
  | [] -> None
  | steps -> Some (fun input -> List.fold_left (fun input step -> step input) input steps)

(* Canonical, collision-free serialisation of a fault list (floats in
   exact hex, application order preserved): the engine tag that makes a
   faulted die content-addressable in the evaluation cache. *)
let tag_of faults =
  List.map
    (fun (fault : Fault.t) ->
      match fault with
      | Fault.Stuck_bits { mask; value } -> Printf.sprintf "stuck:%016Lx:%016Lx" mask value
      | Fault.Register_flip { rate; seed } -> Printf.sprintf "flip:%h:%d" rate seed
      | Fault.Comparator_drift { offset_v } -> Printf.sprintf "comp:%h" offset_v
      | Fault.Pvt_drift { scale } -> Printf.sprintf "pvt:%h" scale
      | Fault.Burst_noise { rate; amplitude; seed } ->
        Printf.sprintf "burst:%h:%h:%d" rate amplitude seed
      | Fault.Aging { hours } -> Printf.sprintf "aging:%h" hours)
    faults
  |> String.concat ";"

let die chip faults =
  Engine.Request.faulted_die
    ?fabric:(fabric_of faults)
    ?rf_fault:(rf_of faults)
    ~tag:(tag_of faults)
    (chip_of chip faults)

let receiver chip standard faults = Engine.Request.receiver (die chip faults) standard

let rig ~seed ~standard faults = receiver (Circuit.Process.fabricate ~seed ()) standard faults
