(** Typed campaign-level errors.

    Everything a stress campaign can refuse to do is enumerated here;
    the library layer never raises and never exits — the CLI decides
    what an error is worth. *)

type t =
  | Unknown_standard of {
      requested : string;
      known : string list;
    }
  | Empty_sweep of { what : string }
  | Checkpoint_corrupt of {
      path : string;
      line : int;  (** 1-based line number of the malformed record *)
      reason : string;
    }
  | Deadline_exceeded of {
      deadline_s : float;
      completed : int;  (** cells that finished (and were journalled) in time *)
      total : int;
    }

val to_string : t -> string
(** Total over every variant — the CLI prints this verbatim. *)

val to_json : t -> Json.t
val of_json : Json.t -> t option
(** AST-level codec; [of_json (to_json e) = Some e] for every [e]. *)

val all_examples : t list
(** One representative value per constructor, for exhaustive round-trip
    tests. *)
