(** Typed campaign-level errors.

    Everything a stress campaign can refuse to do is enumerated here;
    the library layer never raises and never exits — the CLI decides
    what an error is worth. *)

type t =
  | Unknown_standard of { requested : string; known : string list }
  | Empty_sweep of { what : string }

val to_string : t -> string
