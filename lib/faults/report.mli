(** Campaign rendering: ASCII tables for humans, JSON lines for
    machines.  The same campaign value feeds both, so the two outputs
    can never disagree. *)

val field_of_bit : int -> string
(** The configuration field owning a key-bit position. *)

val verdict_string : Calibration.Calibrate.outcome -> string

val print : Campaign.t -> unit
(** ASCII tables: per-mechanism lock-margin statistics, the single-bit
    corruption cliff, the calibration-defeat demos, and the campaign
    checks. *)

val json_lines : Campaign.t -> string list
(** One compact JSON object per line: a campaign header, then one line
    per cell, flip probe, demo, and check. *)

val print_json : Campaign.t -> unit
(** [json_lines] to stdout. *)
