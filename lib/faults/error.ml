type t =
  | Unknown_standard of {
      requested : string;
      known : string list;
    }
  | Empty_sweep of { what : string }
  | Checkpoint_corrupt of {
      path : string;
      line : int;
      reason : string;
    }
  | Deadline_exceeded of {
      deadline_s : float;
      completed : int;
      total : int;
    }

let to_string = function
  | Unknown_standard { requested; known } ->
    Printf.sprintf "unknown standard %S; known standards: %s" requested
      (String.concat ", " known)
  | Empty_sweep { what } -> Printf.sprintf "empty sweep: %s must be at least 1" what
  | Checkpoint_corrupt { path; line; reason } ->
    Printf.sprintf "checkpoint %s corrupt at line %d: %s" path line reason
  | Deadline_exceeded { deadline_s; completed; total } ->
    Printf.sprintf "deadline of %gs exceeded after %d of %d cells; partial results journalled"
      deadline_s completed total

(* AST-level codecs: campaign reports embed errors in their JSON, and a
   resumed run must decode exactly what an interrupted one encoded. *)

let to_json = function
  | Unknown_standard { requested; known } ->
    Json.Obj
      [
        "error", Json.String "unknown_standard";
        "requested", Json.String requested;
        "known", Json.List (List.map (fun s -> Json.String s) known);
      ]
  | Empty_sweep { what } ->
    Json.Obj [ "error", Json.String "empty_sweep"; "what", Json.String what ]
  | Checkpoint_corrupt { path; line; reason } ->
    Json.Obj
      [
        "error", Json.String "checkpoint_corrupt";
        "path", Json.String path;
        "line", Json.Int line;
        "reason", Json.String reason;
      ]
  | Deadline_exceeded { deadline_s; completed; total } ->
    Json.Obj
      [
        "error", Json.String "deadline_exceeded";
        "deadline_s", Json.Float deadline_s;
        "completed", Json.Int completed;
        "total", Json.Int total;
      ]

let of_json = function
  | Json.Obj fields -> (
    let str k = match List.assoc_opt k fields with Some (Json.String s) -> Some s | _ -> None in
    let int k = match List.assoc_opt k fields with Some (Json.Int i) -> Some i | _ -> None in
    let flt k = match List.assoc_opt k fields with Some (Json.Float f) -> Some f | _ -> None in
    match str "error" with
    | Some "unknown_standard" -> (
      match str "requested", List.assoc_opt "known" fields with
      | Some requested, Some (Json.List items) ->
        let known =
          List.filter_map (function Json.String s -> Some s | _ -> None) items
        in
        if List.length known = List.length items then
          Some (Unknown_standard { requested; known })
        else None
      | _ -> None)
    | Some "empty_sweep" ->
      Option.map (fun what -> Empty_sweep { what }) (str "what")
    | Some "checkpoint_corrupt" -> (
      match str "path", int "line", str "reason" with
      | Some path, Some line, Some reason -> Some (Checkpoint_corrupt { path; line; reason })
      | _ -> None)
    | Some "deadline_exceeded" -> (
      match flt "deadline_s", int "completed", int "total" with
      | Some deadline_s, Some completed, Some total ->
        Some (Deadline_exceeded { deadline_s; completed; total })
      | _ -> None)
    | _ -> None)
  | _ -> None

(* One value per constructor, for exhaustive round-trip tests: adding a
   variant without extending this list fails the test that checks the
   list covers every branch of [to_string]. *)
let all_examples =
  [
    Unknown_standard { requested = "lte"; known = [ "bluetooth"; "wifi" ] };
    Empty_sweep { what = "dies" };
    Checkpoint_corrupt { path = "/tmp/ckpt.jsonl"; line = 7; reason = "missing field \"key\"" };
    Deadline_exceeded { deadline_s = 1.5; completed = 42; total = 108 };
  ]
