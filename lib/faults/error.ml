type t =
  | Unknown_standard of { requested : string; known : string list }
  | Empty_sweep of { what : string }

let to_string = function
  | Unknown_standard { requested; known } ->
    Printf.sprintf "unknown standard %S; known standards: %s" requested
      (String.concat ", " known)
  | Empty_sweep { what } -> Printf.sprintf "empty sweep: %s must be at least 1" what
