(** The fault taxonomy for the stress campaigns.

    Each constructor is one physical failure mechanism of the locked
    receiver, expressed at the level where it acts:

    - programming-fabric faults rewrite the configuration word between
      the key register and the analog knobs ({!Stuck_bits},
      {!Register_flip});
    - analog faults perturb the die itself ({!Comparator_drift},
      {!Pvt_drift}, {!Aging});
    - environmental faults corrupt the antenna-referred input
      ({!Burst_noise}).

    Faults are plain data; {!Inject} turns a list of them into a
    faulted receiver.  Everything is deterministic: the same fault list
    on the same die seed reproduces the same behaviour exactly. *)

type t =
  | Stuck_bits of { mask : int64; value : int64 }
      (** Programming bits under [mask] permanently read the
          corresponding bits of [value], whatever the key register
          holds. *)
  | Register_flip of { rate : float; seed : int }
      (** Transient key-register upsets: each of the 64 bits flips with
          probability [rate] on every configuration load, drawn
          deterministically from [seed]. *)
  | Comparator_drift of { offset_v : float }
      (** Additive comparator threshold shift in volts. *)
  | Pvt_drift of { scale : float }
      (** Correlated supply/temperature excursion: every process
          parameter shifts by [scale * z] with a per-(die, parameter)
          standard normal [z]. *)
  | Burst_noise of { rate : float; amplitude : float; seed : int }
      (** Impulsive noise at the RF input: each input sample is hit
          with probability [rate] by a Gaussian burst of the given
          amplitude (volts), drawn deterministically from [seed]. *)
  | Aging of { hours : float }
      (** BTI/HCI-style drift of [hours] of field use. *)

type severity = Mild | Moderate | Severe

val all_severities : severity list
val severity_name : severity -> string

val severity_scale : severity -> float
(** 1x / 3x / 10x: each step is roughly 3x the physical stress. *)

val stuck_bit : bit:int -> value:bool -> t
(** One programming bit stuck at 0 or 1.  Out-of-range bit positions
    yield a no-op fault. *)

val stuck_field : name:string -> code:int -> t
(** A whole named configuration field stuck at [code] — the model of a
    fabric defect taking out one knob's driver. *)

val random_stuck : seed:int -> severity -> t
(** 1 / 3 / 10 randomly placed stuck bits with random stuck values. *)

val register_upsets : seed:int -> severity -> t
val comparator_drift : severity -> t
val pvt : severity -> t
val burst_noise : seed:int -> severity -> t
val aging : severity -> t
(** Severity-calibrated instances of each mechanism, used by
    {!Campaign}'s sweep grid. *)

val name : t -> string
(** Short kebab-case mechanism name (stable; used in reports/JSON). *)

val popcount64 : int64 -> int
(** Number of set bits; how many programming bits a stuck-at mask covers. *)

val describe : t -> string
(** Human-readable one-liner including the fault's parameters. *)
