(* Bit position -> owning field, per the documented Config layout. *)
let field_of_bit bit =
  if bit < 4 then "vglna_gain"
  else if bit < 12 then "cap_coarse"
  else if bit < 20 then "cap_fine"
  else if bit < 26 then "gm_q"
  else if bit < 32 then "gmin_bias"
  else if bit < 38 then "dac_bias"
  else if bit < 44 then "preamp_bias"
  else if bit < 50 then "comp_bias"
  else if bit < 54 then "loop_delay"
  else if bit < 56 then "dac_trim"
  else if bit = 56 then "fb_enable"
  else if bit = 57 then "comp_clock_enable"
  else if bit = 58 then "gmin_enable"
  else if bit = 59 then "cal_buffer_enable"
  else if bit < 62 then "out_buffer"
  else "preamp_trim"

let verdict_string outcome =
  match outcome.Calibration.Calibrate.verdict with
  | Calibration.Calibrate.Converged -> "converged"
  | Calibration.Calibrate.Degraded (Calibration.Calibrate.Tank_dead _) -> "degraded: tank dead"
  | Calibration.Calibrate.Degraded (Calibration.Calibrate.Spec_shortfall { shortfall_db; _ }) ->
    Printf.sprintf "degraded: %.1f dB below spec" shortfall_db

let db_or_dash x = if Float.is_finite x then Printf.sprintf "%7.1f" x else "      -"

let print (t : Campaign.t) =
  Printf.printf "# Fault-injection stress campaign — %s, seed %d, %d die(s)\n"
    t.Campaign.standard.Rfchain.Standards.name t.Campaign.seed t.Campaign.dies;
  (match t.Campaign.interrupted with
  | None -> ()
  | Some reason ->
    Printf.printf "!! INCOMPLETE — interrupted (%s) after %d evaluated cell(s); partial results below\n"
      reason t.Campaign.completed_cells);
  Printf.printf "healthy primary die, golden key: SNR(mod) %.1f dB (spec %.0f dB)\n\n"
    t.Campaign.golden_snr_mod_db t.Campaign.standard.Rfchain.Standards.min_snr_db;
  Printf.printf "## Lock margin of the valid key under injected faults\n";
  Printf.printf "%-18s %-9s %3s  %8s %8s %8s  %s\n" "mechanism" "severity" "n" "mean" "min"
    "max" "in-spec";
  List.iter
    (fun (s : Campaign.stat) ->
      Printf.printf "%-18s %-9s %3d  %s %s %s  %3.0f%%\n" s.Campaign.s_mechanism
        (Fault.severity_name s.Campaign.s_severity)
        s.Campaign.n
        (db_or_dash s.Campaign.mean_margin_db)
        (db_or_dash s.Campaign.min_margin_db)
        (db_or_dash s.Campaign.max_margin_db)
        (100.0 *. s.Campaign.survival_rate))
    t.Campaign.stats;
  let killed =
    List.length (List.filter (fun p -> not p.Campaign.survives_full) t.Campaign.flips)
  in
  Printf.printf "\n## Single-bit key corruption cliff (primary die, full spec check)\n";
  Printf.printf "%d/%d corrupted keys fail the specification\n" killed
    (List.length t.Campaign.flips);
  (match t.Campaign.unlocked_bits with
  | [] -> Printf.printf "no single-bit corruption survives the full check\n"
  | bits ->
    Printf.printf "surviving bit(s):%s\n"
      (String.concat ""
         (List.map (fun b -> Printf.sprintf " %d(%s)" b (field_of_bit b)) bits)));
  Printf.printf "\n## Calibration under defeating faults\n";
  List.iter
    (fun (d : Campaign.demo) ->
      Printf.printf "%-38s %-45s -> %s (%d attempt(s))\n" d.Campaign.label
        (Fault.describe d.Campaign.demo_fault)
        (verdict_string d.Campaign.outcome)
        d.Campaign.outcome.Calibration.Calibrate.attempts)
    t.Campaign.demos;
  Printf.printf "\n";
  (* The pass/fail assertions only mean something over a full run; a
     partial report would fail them vacuously. *)
  if Campaign.complete t then
    List.iter
      (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
      (Campaign.checks t)
  else Printf.printf "  (checks skipped: campaign incomplete)\n"

let json_lines (t : Campaign.t) =
  let header =
    Json.Obj
      [
        ("type", Json.String "campaign");
        ("standard", Json.String t.Campaign.standard.Rfchain.Standards.name);
        ("seed", Json.Int t.Campaign.seed);
        ("dies", Json.Int t.Campaign.dies);
        ("golden_snr_mod_db", Json.Float t.Campaign.golden_snr_mod_db);
        ("complete", Json.Bool (Campaign.complete t));
        ( "interrupted",
          match t.Campaign.interrupted with
          | None -> Json.Null
          | Some reason -> Json.String reason );
        ("completed_cells", Json.Int t.Campaign.completed_cells);
      ]
  in
  let cell (c : Campaign.cell) =
    Json.Obj
      [
        ("type", Json.String "cell");
        ("mechanism", Json.String c.Campaign.mechanism);
        ("severity", Json.String (Fault.severity_name c.Campaign.severity));
        ("die_seed", Json.Int c.Campaign.die_seed);
        ("faults", Json.List (List.map (fun f -> Json.String (Fault.describe f)) c.Campaign.faults));
        ("snr_mod_db", Json.Float c.Campaign.snr_mod_db);
        ("lock_margin_db", Json.Float c.Campaign.lock_margin_db);
        ("in_spec", Json.Bool c.Campaign.in_spec);
      ]
  in
  let flip (p : Campaign.flip_probe) =
    Json.Obj
      [
        ("type", Json.String "flip");
        ("bit", Json.Int p.Campaign.bit);
        ("field", Json.String (field_of_bit p.Campaign.bit));
        ("snr_mod_db", Json.Float p.Campaign.flip_snr_mod_db);
        ("survives_full", Json.Bool p.Campaign.survives_full);
      ]
  in
  let demo (d : Campaign.demo) =
    let report = d.Campaign.outcome.Calibration.Calibrate.report in
    Json.Obj
      [
        ("type", Json.String "demo");
        ("label", Json.String d.Campaign.label);
        ("fault", Json.String (Fault.describe d.Campaign.demo_fault));
        ("verdict", Json.String (verdict_string d.Campaign.outcome));
        ("attempts", Json.Int d.Campaign.outcome.Calibration.Calibrate.attempts);
        ("snr_mod_db", Json.Float report.Calibration.Calibrate.snr_mod_db);
      ]
  in
  let check (name, ok) =
    Json.Obj
      [ ("type", Json.String "check"); ("name", Json.String name); ("pass", Json.Bool ok) ]
  in
  let checks = if Campaign.complete t then Campaign.checks t else [] in
  List.map Json.to_string
    ((header :: List.map cell t.Campaign.cells)
    @ List.map flip t.Campaign.flips
    @ List.map demo t.Campaign.demos
    @ List.map check checks)

let print_json t = List.iter print_endline (json_lines t)
