(** Monte-Carlo stress campaign over the fault taxonomy.

    For a lot of calibrated (provisioned) dies, the campaign sweeps
    every fault mechanism at every severity and reports the surviving
    lock margin of the valid key; runs the single-bit key-corruption
    cliff on the primary die; and demonstrates the structured degraded
    reports the resilient calibration returns on dies faulted beyond
    recovery.  Deterministic for a fixed [seed], never raises, never
    exits. *)

type cell = {
  die_seed : int;
  mechanism : string;              (** {!Fault.name} of the injected mechanism *)
  severity : Fault.severity;
  faults : Fault.t list;
  snr_mod_db : float;              (** golden key on the faulted part *)
  lock_margin_db : float;          (** [snr_mod_db] minus the standard's min SNR *)
  in_spec : bool;
}

type stat = {
  s_mechanism : string;
  s_severity : Fault.severity;
  n : int;
  mean_margin_db : float;
  min_margin_db : float;
  max_margin_db : float;
  survival_rate : float;           (** fraction of dies still in spec *)
}

type flip_probe = {
  bit : int;
  flip_snr_mod_db : float;
  survives_full : bool;            (** 1-bit-corrupted key passes the FULL spec check *)
}

type demo = {
  label : string;
  demo_fault : Fault.t;
  outcome : Calibration.Calibrate.outcome;
}

type t = {
  standard : Rfchain.Standards.t;
  seed : int;
  dies : int;
  golden_snr_mod_db : float;       (** healthy primary die, golden key *)
  cells : cell list;
  stats : stat list;               (** one row per mechanism x severity *)
  flips : flip_probe list;         (** all 64 single-bit corruptions *)
  unlocked_bits : int list;        (** bit positions whose flip still meets spec *)
  demos : demo list;               (** calibration-defeat demonstrations *)
  interrupted : string option;     (** [Some reason] marks a partial report *)
  completed_cells : int;           (** engine cells incorporated into this report *)
}

val mechanism_names : string list
(** The sweep grid's mechanisms, in report order. *)

val run :
  ?dies:int ->
  ?seed:int ->
  ?engine:Engine.Service.t ->
  ?deadline_s:float ->
  ?interrupt_after:int ->
  Rfchain.Standards.t ->
  (t, Error.t) result
(** Run the campaign ([dies] defaults to 3, [seed] to 42).

    Supervision: [deadline_s] bounds the whole campaign — evaluations
    past the deadline are cancelled at their next poll and the run
    returns [Error (Deadline_exceeded _)] with an exact completed-cell
    count.  A SIGINT (the process-global interrupt) instead returns a
    partial report with [interrupted = Some _]; everything evaluated
    before the cut is already journalled if [engine] carries a
    checkpoint, so a resumed run replays it bit-identically.
    [interrupt_after n] is the deterministic test hook: it injects the
    interrupt after exactly [n] completed cells. *)

val run_by_name :
  ?dies:int ->
  ?seed:int ->
  ?engine:Engine.Service.t ->
  ?deadline_s:float ->
  ?interrupt_after:int ->
  string ->
  (t, Error.t) result
(** [run] after a standard lookup; an unknown name returns
    [Error (Unknown_standard _)] listing the known standards. *)

val complete : t -> bool
(** [interrupted = None]. *)

val checks : t -> (string * bool) list
(** The campaign's pass/fail assertions (used by the CLI and tests). *)
