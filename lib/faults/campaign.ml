type cell = {
  die_seed : int;
  mechanism : string;
  severity : Fault.severity;
  faults : Fault.t list;
  snr_mod_db : float;
  lock_margin_db : float;
  in_spec : bool;
}

type stat = {
  s_mechanism : string;
  s_severity : Fault.severity;
  n : int;
  mean_margin_db : float;
  min_margin_db : float;
  max_margin_db : float;
  survival_rate : float;
}

type flip_probe = {
  bit : int;
  flip_snr_mod_db : float;
  survives_full : bool;
}

type demo = {
  label : string;
  demo_fault : Fault.t;
  outcome : Calibration.Calibrate.outcome;
}

type t = {
  standard : Rfchain.Standards.t;
  seed : int;
  dies : int;
  golden_snr_mod_db : float;
  cells : cell list;
  stats : stat list;
  flips : flip_probe list;
  unlocked_bits : int list;
  demos : demo list;
  interrupted : string option;
  completed_cells : int;
}

(* The sweep grid: every mechanism of the taxonomy, seeded per die so
   stochastic faults (upsets, bursts, stuck placement) vary across the
   lot while staying reproducible. *)
let mechanisms =
  [
    ("pvt-drift", fun ~die:_ severity -> [ Fault.pvt severity ]);
    ("comparator-drift", fun ~die:_ severity -> [ Fault.comparator_drift severity ]);
    ("aging", fun ~die:_ severity -> [ Fault.aging severity ]);
    ("burst-noise", fun ~die severity -> [ Fault.burst_noise ~seed:die severity ]);
    ("register-flip", fun ~die severity -> [ Fault.register_upsets ~seed:die severity ]);
    ("stuck-bits", fun ~die severity -> [ Fault.random_stuck ~seed:die severity ]);
  ]

let mechanism_names = List.map fst mechanisms

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))

let stats_of cells =
  List.concat_map
    (fun (mech, _) ->
      List.map
        (fun severity ->
          let group =
            List.filter (fun c -> c.mechanism = mech && c.severity = severity) cells
          in
          let margins = List.map (fun c -> c.lock_margin_db) group in
          let survivors = List.filter (fun c -> c.in_spec) group in
          {
            s_mechanism = mech;
            s_severity = severity;
            n = List.length group;
            mean_margin_db = mean margins;
            min_margin_db = List.fold_left Float.min infinity margins;
            max_margin_db = List.fold_left Float.max neg_infinity margins;
            survival_rate =
              float_of_int (List.length survivors) /. float_of_int (max 1 (List.length group));
          })
        Fault.all_severities)
    mechanisms

let cells_counter = Telemetry.Counter.make "faults.cells"
let flip_probes_counter = Telemetry.Counter.make "faults.flip_probes"
let demos_counter = Telemetry.Counter.make "faults.demos"

(* Campaign-internal control flow for the two supervised stops.  Both
   are raised only between chunks (or from a cancellation poll), caught
   once at the top of [run], and never escape the library. *)
exception Deadline
exception Halt of string

(* Evaluate a request list by handing the scheduler the whole grid at
   once (DESIGN §14) and consuming completions out of order as lanes
   finish them — there is no per-chunk submit barrier any more.  Every
   delivered completion is already journalled (on the main domain,
   before cache publication) and counts into [completed]; the campaign
   deadline and the injected interrupt are both checked before every
   pull, so [completed] is exact — to the cell — when either fires.
   [interrupt_after] halts at precisely that many completed cells, the
   deterministic stand-in for a SIGINT; assembly by index restores
   request order bit-identically to the old chunked evaluation. *)
let eval_streamed ?engine ~tok ~completed ~total ~interrupt_after reqs =
  let halt_check () =
    match interrupt_after with
    | Some k when !completed >= k -> raise (Halt "interrupt (injected)")
    | _ -> ()
  in
  halt_check ();
  Telemetry.Cancel.poll ();
  let n = List.length reqs in
  let stream =
    match tok with
    | None -> Engine.Service.eval_stream ?engine reqs
    | Some tk ->
      let remaining =
        match Telemetry.Cancel.remaining_s tk with Some r -> r | None -> infinity
      in
      if remaining <= 0.0 then raise Deadline;
      Engine.Service.eval_stream_deadlined ?engine ~deadline_s:remaining reqs
  in
  (* Whatever stops the consumption loop — the injected halt, a
     deadline, a SIGINT cancellation — releases the scheduler before
     propagating, so the partial-report paths above us never leave the
     pool occupied. *)
  Fun.protect ~finally:(fun () -> Engine.Service.stream_abort stream) @@ fun () ->
  let rec pull delivered =
    if delivered < n then begin
      halt_check ();
      Telemetry.Cancel.poll ();
      match Engine.Service.stream_next stream with
      | Ok (Some _) ->
        incr completed;
        (* Live monitoring: progress now lands per completed cell, not
           per 16-cell chunk. *)
        Telemetry.Monitor.set_progress ~completed:!completed ~total:(max !total !completed);
        pull (delivered + 1)
      | Ok None -> ()
      | Error (Engine.Service.Timed_out _) -> raise Deadline
      | Error (Engine.Service.Budget_exhausted _) ->
        assert false (* no account is attached to campaign grids *)
    end
  in
  pull 0;
  match Engine.Service.stream_drain stream with
  | Ok ms -> ms
  | Error _ -> assert false (* fully delivered above *)

let run ?(dies = 3) ?(seed = 42) ?engine ?deadline_s ?interrupt_after standard =
  if dies < 1 then Error (Error.Empty_sweep { what = "dies" })
  else begin
    Telemetry.Span.with_ ~name:"faults.campaign"
      ~attrs:[ ("dies", string_of_int dies); ("standard", standard.Rfchain.Standards.name) ]
    @@ fun () ->
    let min_snr = standard.Rfchain.Standards.min_snr_db in
    let tok = Option.map (fun s -> Telemetry.Cancel.with_deadline s) deadline_s in
    (* Install the campaign deadline as the ambient token for the
       main-domain stages (lot calibration, demos) so their simulator
       polls observe it; batched stages carry it explicitly into the
       worker domains via [eval_batch_deadlined]. *)
    let with_tok f = match tok with None -> f () | Some tk -> Telemetry.Cancel.with_token tk f in
    (* Partial-state accumulators: whatever is filled in when an
       interrupt lands becomes the partial report. *)
    let completed = ref 0 in
    let total = ref 0 in
    let golden_r = ref nan in
    let cells_r = ref [] in
    let flips_r = ref [] in
    let unlocked_r = ref [] in
    let demos_r = ref [] in
    let interrupted_r = ref None in
    let finish () =
      {
        standard;
        seed;
        dies;
        golden_snr_mod_db = !golden_r;
        cells = !cells_r;
        stats = stats_of !cells_r;
        flips = !flips_r;
        unlocked_bits = !unlocked_r;
        demos = !demos_r;
        interrupted = !interrupted_r;
        completed_cells = !completed;
      }
    in
    let eval_streamed reqs = eval_streamed ?engine ~tok ~completed ~total ~interrupt_after reqs in
    Telemetry.Log.info
      ~fields:
        [
          ("standard", standard.Rfchain.Standards.name);
          ("dies", string_of_int dies);
          ("seed", string_of_int seed);
          ("deadline_s", match deadline_s with Some d -> Printf.sprintf "%g" d | None -> "-");
        ]
      "campaign: starting";
    match
      with_tok @@ fun () ->
      (* Calibrate each die of the lot while healthy: the campaign asks
         what happens to a *provisioned* part when a fault arrives. *)
      let lot =
        List.init dies (fun i ->
            Telemetry.Cancel.poll ();
            let die_seed = seed + (17 * i) in
            Telemetry.Span.with_ ~name:"faults.die" ~attrs:[ ("die", string_of_int die_seed) ]
              (fun () ->
                let chip = Circuit.Process.fabricate ~seed:die_seed () in
                let rx = Rfchain.Receiver.create chip standard in
                (die_seed, chip, Calibration.Calibrate.quick rx)))
      in
      let chip0, key0 =
        match lot with
        | (_, chip, key) :: _ -> (chip, key)
        | [] -> (Circuit.Process.fabricate ~seed (), Rfchain.Config.nominal) (* dies >= 1 *)
      in
      let die0 = Engine.Request.die_of_chip chip0 in
      golden_r :=
        (Engine.Service.eval ?engine
           (Engine.Request.make ~die:die0 ~standard ~config:key0 Engine.Request.Snr_mod))
          .Metrics.Spec.snr_mod_db;
      (* Fault x severity x die grid, golden key applied to the faulted
         part.  The grid is embarrassingly parallel: build every cell's
         engine request up front, evaluate in fixed-size chunks (each
         chunk fans out across the domains backend under --jobs and is
         journalled cell by cell), then zip the SNRs back in grid
         order. *)
      let cell_points =
        List.concat_map
          (fun (die_seed, chip, key) ->
            List.concat_map
              (fun (mech, make) ->
                List.map
                  (fun severity ->
                    Telemetry.Counter.incr cells_counter;
                    let faults = make ~die:die_seed severity in
                    (die_seed, mech, severity, faults, chip, key))
                  Fault.all_severities)
              mechanisms)
          lot
      in
      total := List.length cell_points + Rfchain.Config.key_bits;
      Telemetry.Monitor.set_progress ~completed:!completed ~total:!total;
      let cell_snrs =
        eval_streamed
          (List.map
             (fun (_, _, _, faults, chip, key) ->
               Engine.Request.make ~die:(Inject.die chip faults) ~standard ~config:key
                 Engine.Request.Snr_mod)
             cell_points)
      in
      cells_r :=
        List.map2
          (fun (die_seed, mech, severity, faults, _, _) m ->
            let snr_mod_db = m.Metrics.Spec.snr_mod_db in
            let snr_mod_db = if Float.is_nan snr_mod_db then neg_infinity else snr_mod_db in
            let lock_margin_db = snr_mod_db -. min_snr in
            {
              die_seed;
              mechanism = mech;
              severity;
              faults;
              snr_mod_db;
              lock_margin_db;
              in_spec = lock_margin_db >= 0.0;
            })
          cell_points cell_snrs;
      (* Single-bit corruption cliff: flip each key bit on the healthy
         primary die.  Fast SNR probes go out chunked; only apparent
         survivors pay for the full spec check (a second, much smaller
         pass). *)
      let corrupted_of bit =
        Rfchain.Config.of_bits
          (Int64.logxor (Rfchain.Config.to_bits key0) (Int64.shift_left 1L bit))
      in
      let bits = List.init Rfchain.Config.key_bits (fun bit -> bit) in
      let probe_snrs =
        eval_streamed
          (List.map
             (fun bit ->
               Telemetry.Counter.incr flip_probes_counter;
               Engine.Request.make ~die:die0 ~standard ~config:(corrupted_of bit)
                 Engine.Request.Snr_mod)
             bits)
        |> List.map (fun m ->
               let snr = m.Metrics.Spec.snr_mod_db in
               if Float.is_nan snr then neg_infinity else snr)
      in
      let probes = List.combine bits probe_snrs in
      let survivor_bits = List.filter (fun (_, snr) -> snr >= min_snr) probes in
      total := !total + List.length survivor_bits;
      Telemetry.Monitor.set_progress ~completed:!completed ~total:!total;
      let survivor_checks =
        eval_streamed
          (List.map
             (fun (bit, _) ->
               Engine.Request.make ~die:die0 ~standard ~config:(corrupted_of bit)
                 Engine.Request.Full)
             survivor_bits)
        |> List.map2
             (fun (bit, _) m -> (bit, (Metrics.Spec.check standard m).Metrics.Spec.functional))
             survivor_bits
      in
      flips_r :=
        List.map
          (fun (bit, snr) ->
            let survives_full =
              match List.assoc_opt bit survivor_checks with
              | Some functional -> functional
              | None -> false
            in
            { bit; flip_snr_mod_db = snr; survives_full })
          probes;
      unlocked_r :=
        List.filter_map (fun p -> if p.survives_full then Some p.bit else None) !flips_r;
      (* Calibration-defeat demos: faults severe enough that the 14-step
         procedure cannot converge, exercising both structured failure
         paths (dead tank; completed-but-out-of-spec). *)
      let demo label fault =
        Telemetry.Cancel.poll ();
        Telemetry.Counter.incr demos_counter;
        Telemetry.Span.with_ ~name:"faults.demo" ~attrs:[ ("label", label) ] @@ fun () ->
        let rx = Inject.receiver chip0 standard [ fault ] in
        let d =
          {
            label;
            demo_fault = fault;
            outcome = Calibration.Calibrate.run ~passes:1 ~refine_sfdr:false ~max_retries:1 rx;
          }
        in
        (* Accumulate as each demo completes, so an interrupt between
           demos still reports the finished one. *)
        demos_r := !demos_r @ [ d ]
      in
      demo "Q-enhancement driver dead" (Fault.stuck_field ~name:"gm_q" ~code:0);
      demo "comparator clock stuck (buffer mode)"
        (Fault.stuck_field ~name:"comp_clock_enable" ~code:0);
      Ok (finish ())
    with
    | result -> result
    | exception Deadline ->
      Telemetry.Log.warn
        ~fields:[ ("completed", string_of_int !completed); ("total", string_of_int !total) ]
        "campaign: deadline exceeded";
      Error
        (Error.Deadline_exceeded
           {
             deadline_s = Option.value deadline_s ~default:0.0;
             completed = !completed;
             total = !total;
           })
    | exception Telemetry.Cancel.Cancelled reason
      when deadline_s <> None && reason = Telemetry.Cancel.deadline_reason ->
      Telemetry.Log.warn
        ~fields:[ ("completed", string_of_int !completed); ("total", string_of_int !total) ]
        "campaign: deadline exceeded";
      Error
        (Error.Deadline_exceeded
           {
             deadline_s = Option.value deadline_s ~default:0.0;
             completed = !completed;
             total = !total;
           })
    | exception Halt reason ->
      Telemetry.Log.warn
        ~fields:
          [
            ("reason", reason);
            ("completed", string_of_int !completed);
            ("total", string_of_int !total);
          ]
        "campaign: interrupted";
      interrupted_r := Some reason;
      Ok (finish ())
    | exception Telemetry.Cancel.Cancelled reason ->
      (* A SIGINT (or an outer token): everything journalled so far is
         durable; report what completed, marked incomplete. *)
      Telemetry.Log.warn
        ~fields:
          [
            ("reason", reason);
            ("completed", string_of_int !completed);
            ("total", string_of_int !total);
          ]
        "campaign: interrupted";
      interrupted_r := Some reason;
      Ok (finish ())
  end

let run_by_name ?dies ?seed ?engine ?deadline_s ?interrupt_after name =
  match Rfchain.Standards.find_opt name with
  | None ->
    Error (Error.Unknown_standard { requested = name; known = Rfchain.Standards.names })
  | Some standard -> run ?dies ?seed ?engine ?deadline_s ?interrupt_after standard

let complete t = t.interrupted = None

let is_degraded_as outcome ~tank_dead =
  match outcome.Calibration.Calibrate.verdict with
  | Calibration.Calibrate.Degraded (Calibration.Calibrate.Tank_dead _) -> tank_dead
  | Calibration.Calibrate.Degraded (Calibration.Calibrate.Spec_shortfall _) -> not tank_dead
  | Calibration.Calibrate.Converged -> false

let checks t =
  let mild_pvt =
    List.filter (fun c -> c.mechanism = "pvt-drift" && c.severity = Fault.Mild) t.cells
  in
  let graded mech =
    let mean_at severity =
      match
        List.find_opt (fun s -> s.s_mechanism = mech && s.s_severity = severity) t.stats
      with
      | Some s -> s.mean_margin_db
      | None -> nan
    in
    mean_at Fault.Severe <= mean_at Fault.Mild +. 0.5
  in
  let killed = List.length (List.filter (fun p -> not p.survives_full) t.flips) in
  [
    ( "valid key survives mild PVT drift on every die",
      mild_pvt <> [] && List.for_all (fun c -> c.in_spec) mild_pvt );
    ( "some severe fault defeats the lock margin",
      List.exists (fun c -> c.severity = Fault.Severe && not c.in_spec) t.cells );
    ( "response is graded: severe margin <= mild margin per mechanism",
      List.for_all graded mechanism_names );
    ( "single-bit key corruption kills >= 55/64 bits",
      killed >= 55 );
    ( "dead tank reported as structured Tank_dead (no exception)",
      List.exists (fun d -> is_degraded_as d.outcome ~tank_dead:true) t.demos );
    ( "defeated calibration reported as Spec_shortfall (no exception)",
      List.exists (fun d -> is_degraded_as d.outcome ~tank_dead:false) t.demos );
  ]
