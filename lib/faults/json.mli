(** Minimal JSON emitter for machine-readable campaign output.

    Deliberately tiny (the container has no JSON library and the
    campaign only writes): values in, compact single-line strings out.
    Non-finite floats serialise as [null] — a degraded die's [-inf]
    metrics must not produce invalid JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with full string escaping. *)
