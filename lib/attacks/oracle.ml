type t = {
  standard : Rfchain.Standards.t;
  rx : Rfchain.Receiver.t;
  key : Core.Key.t;  (* hidden inside the tamper-proof store *)
}

let deploy standard ~chip_seed ~key =
  let chip = Circuit.Process.fabricate ~seed:chip_seed () in
  { standard; rx = Rfchain.Receiver.create chip standard; key }

let reference_performance t =
  let bench = Metrics.Measure.create t.rx in
  Metrics.Measure.full bench (Core.Key.config t.key)

let standard t = t.standard

type error = Budget_exhausted of { spent : int; limit : int }

let error_to_string = function
  | Budget_exhausted { spent; limit } ->
    Printf.sprintf "trial budget exhausted: %d measurements spent of %d allowed" spent limit

type refab = {
  refab_standard : Rfchain.Standards.t;
  bench : Metrics.Measure.t;
  trial_limit : int option;
}

let refabricate ?trial_limit t ~attacker_seed =
  let chip = Circuit.Process.fabricate ~seed:attacker_seed () in
  {
    refab_standard = t.standard;
    bench = Metrics.Measure.create (Rfchain.Receiver.create chip t.standard);
    trial_limit;
  }

let trials_spent r = Metrics.Measure.trial_count r.bench

let queries_counter = Telemetry.Counter.make "oracle.queries"
let denied_counter = Telemetry.Counter.make "oracle.denied"

(* Everything an attack spends ends up on a bench (Metrics.Measure) or
   in oscillation-mode probes (the tapped ablation's Osc_tune phase);
   summing both odometers gives the attack's true measurement cost,
   independent of its own accounting. *)
let global_queries () =
  Metrics.Measure.global_trial_count () + Rfchain.Sdm.global_probe_count ()

(* The watchdog: every probe first checks the bench's odometer against
   the hard limit, so a runaway search loop cannot spend unbounded
   measurement time no matter what its own budget accounting does. *)
let guard r measure =
  match r.trial_limit with
  | Some limit when trials_spent r >= limit ->
    Telemetry.Counter.incr denied_counter;
    Error (Budget_exhausted { spent = trials_spent r; limit })
  | _ ->
    let before = trials_spent r in
    let result = measure () in
    Telemetry.Counter.add queries_counter (trials_spent r - before);
    Ok result

(* The full check measures every specified performance (the attacker
   must satisfy all of them simultaneously — the paper's multi-objective
   difficulty), and uses the linearity-verified SNR so an
   injection-locked tank regenerating the test tone cannot fool it. *)
let try_key r config =
  guard r (fun () ->
      {
        Metrics.Spec.snr_mod_db = Metrics.Measure.snr_mod_verified_db r.bench config;
        snr_rx_db = Metrics.Measure.snr_rx_db r.bench config;
        sfdr_db = Some (Metrics.Measure.sfdr_db r.bench config);
      })

let try_key_fast r config = guard r (fun () -> Metrics.Measure.snr_mod_db r.bench config)

let spec_distance r m = Metrics.Spec.spec_distance r.refab_standard m
