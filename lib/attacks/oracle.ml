type t = {
  standard : Rfchain.Standards.t;
  die : Engine.Request.die;
  key : Core.Key.t;  (* hidden inside the tamper-proof store *)
}

let deploy standard ~chip_seed ~key =
  { standard; die = Engine.Request.die_of_seed chip_seed; key }

let reference_performance t =
  Engine.Service.eval
    (Engine.Request.make ~die:t.die ~standard:t.standard ~config:(Core.Key.config t.key)
       Engine.Request.Full)

let standard t = t.standard

type error = Budget_exhausted of { spent : int; limit : int }

let error_to_string = function
  | Budget_exhausted { spent; limit } ->
    Printf.sprintf "trial budget exhausted: %d measurements spent of %d allowed" spent limit

type refab = {
  refab_standard : Rfchain.Standards.t;
  refab_die : Engine.Request.die;
  account : Engine.Service.Account.t;
}

let refabricate ?trial_limit t ~attacker_seed =
  {
    refab_standard = t.standard;
    refab_die = Engine.Request.die_of_seed attacker_seed;
    account = Engine.Service.Account.make ?limit:trial_limit ();
  }

let trials_spent r = Engine.Service.Account.spent r.account

let queries_counter = Telemetry.Counter.make "oracle.queries"
let denied_counter = Telemetry.Counter.make "oracle.denied"

(* Everything an attack spends ends up as bench trials charged to the
   refab's engine account or in oscillation-mode probes (the tapped
   ablation's Osc_tune phase); summing both odometers gives the
   attack's true measurement cost, independent of its own accounting.
   Cache hits replay their cost, so the sum is cache-warmth
   invariant. *)
let global_queries () =
  Metrics.Measure.global_trial_count () + Rfchain.Sdm.global_probe_count ()

(* The watchdog now lives in the engine: every probe is a guarded eval
   against the refab's account, so a runaway search loop cannot spend
   unbounded measurement time no matter what its own budget accounting
   does. *)
let guard r metric config =
  let req =
    Engine.Request.make ~die:r.refab_die ~standard:r.refab_standard ~config metric
  in
  match Engine.Service.eval_guarded ~account:r.account req with
  | Error (Engine.Service.Budget_exhausted { spent; limit }) ->
    Telemetry.Counter.incr denied_counter;
    Error (Budget_exhausted { spent; limit })
  | Error (Engine.Service.Timed_out _) ->
    (* No per-probe deadline is set here, so a timeout can only mean
       the whole run's deadline passed — that is a cancellation of the
       campaign, not an oracle verdict. *)
    raise (Telemetry.Cancel.Cancelled Telemetry.Cancel.deadline_reason)
  | Ok (measurement, cost) ->
    Telemetry.Counter.add queries_counter cost;
    Ok measurement

(* The full check measures every specified performance (the attacker
   must satisfy all of them simultaneously — the paper's multi-objective
   difficulty), and uses the linearity-verified SNR so an
   injection-locked tank regenerating the test tone cannot fool it. *)
let try_key r config = guard r Engine.Request.Full_verified config

let try_key_fast r config =
  Result.map (fun m -> m.Metrics.Spec.snr_mod_db) (guard r Engine.Request.Snr_mod config)

let spec_distance r m = Metrics.Spec.spec_distance r.refab_standard m
