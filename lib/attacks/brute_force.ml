type result = {
  trials : int;
  success : bool;
  oracle_exhausted : bool;
  best_config : Rfchain.Config.t;
  best_snr_mod_db : float;
  best_spec_distance : float;
  projected_seconds_sim : float;
  projected_seconds_hw : float;
}

let run ?(seed = 0xBF) ~budget refab =
  let rng = Sigkit.Rng.create seed in
  let best_config = ref Rfchain.Config.nominal in
  let best_snr = ref neg_infinity in
  let best_distance = ref infinity in
  let success = ref false in
  let trial = ref 0 in
  let watchdog = ref false in
  while (not !success) && (not !watchdog) && !trial < budget do
    incr trial;
    let candidate = Rfchain.Config.random rng in
    match Oracle.try_key_fast refab candidate with
    | Error (Oracle.Budget_exhausted _) -> watchdog := true
    | Ok snr ->
      if snr > !best_snr then begin
        best_snr := snr;
        best_config := candidate
      end;
      (* Full (expensive) measurement only for keys that look alive. *)
      let looks_alive = snr >= 30.0 in
      if looks_alive then begin
        match Oracle.try_key refab candidate with
        | Error (Oracle.Budget_exhausted _) -> watchdog := true
        | Ok m ->
          let d = Oracle.spec_distance refab m in
          if d < !best_distance then best_distance := d;
          if d = 0.0 then begin
            success := true;
            best_config := candidate
          end
      end
      else begin
        let d = Oracle.spec_distance refab
            { Metrics.Spec.snr_mod_db = snr; snr_rx_db = snr; sfdr_db = None }
        in
        if d < !best_distance then best_distance := d
      end
  done;
  {
    trials = !trial;
    success = !success;
    oracle_exhausted = !watchdog;
    best_config = !best_config;
    best_snr_mod_db = !best_snr;
    best_spec_distance = !best_distance;
    projected_seconds_sim = float_of_int !trial *. Cost.snr_trial_seconds;
    projected_seconds_hw = float_of_int !trial *. Cost.hardware_trial_seconds;
  }
