type result = {
  attack : string;
  recovered_fields : string list;
  trials : int;
  best_snr_mod_db : float;
  success : bool;
  oracle_exhausted : bool;
}

let cap_only_attack ?(seed = 0xCA) ~budget refab =
  let rng = Sigkit.Rng.create seed in
  (* The rest of the word stays at a random draw: the attacker does not
     know how to condition the other sub-blocks. *)
  let start = Rfchain.Config.random rng in
  let best_snr = ref neg_infinity in
  let trials = ref 0 in
  let exhausted = ref false in
  let objective config =
    match Oracle.try_key_fast refab config with
    | Error (Oracle.Budget_exhausted _) ->
      (* Watchdog tripped: poison every further probe so the search
         coasts to a stop on its pass counter. *)
      exhausted := true;
      neg_infinity
    | Ok snr ->
      incr trials;
      if snr > !best_snr then best_snr := snr;
      snr
  in
  let _ =
    Calibration.Coordinate_search.maximize ~objective
      ~fields:[ "cap_coarse"; "cap_fine" ]
      ~start
      ~offsets:[ 1; -1; 4; -4; 16; -16; 64; -64 ]
      ~passes:(max 1 (budget / 40)) ()
  in
  {
    attack = "capacitor sub-key only (others random)";
    recovered_fields = [];
    trials = !trials;
    best_snr_mod_db = !best_snr;
    success = !best_snr >= 35.0;
    oracle_exhausted = !exhausted;
  }

let tapped_attack ?(seed = 0x7A) ~budget standard ~attacker_seed =
  (* Ablation: the attacker's re-fab exposes the tank, so they can run
     the oscillation trick on their own die and recover the capacitor
     and Q-enhancement sub-keys exactly as calibration does. *)
  let chip = Circuit.Process.fabricate ~seed:attacker_seed () in
  let rx = Rfchain.Receiver.create chip standard in
  let rng = Sigkit.Rng.create seed in
  (* If the attacker's own die happens not to oscillate, the trick
     yields nothing: fall back to a blind random start. *)
  let recovered, osc_measurements, start =
    match Calibration.Osc_tune.run rx with
    | Ok osc ->
      ( [ "cap_coarse"; "cap_fine"; "gm_q" ],
        osc.Calibration.Osc_tune.measurements,
        {
          (Rfchain.Config.random rng) with
          cap_coarse = osc.Calibration.Osc_tune.cap_coarse;
          cap_fine = osc.Calibration.Osc_tune.cap_fine;
          gm_q = osc.Calibration.Osc_tune.gm_q;
          (* Mode bits are readable from the netlist's control logic. *)
          fb_enable = true;
          comp_clock_enable = true;
          gmin_enable = true;
          cal_buffer_enable = false;
        } )
    | Error (Calibration.Osc_tune.Tank_silent { measurements; _ }) ->
      ([], measurements, Rfchain.Config.random rng)
  in
  let die = Engine.Request.die_of_receiver rx in
  let best_snr = ref neg_infinity in
  let trials = ref osc_measurements in
  let objective config =
    incr trials;
    let m =
      Engine.Service.eval
        (Engine.Request.make ~die ~standard ~config Engine.Request.Snr_mod)
    in
    let snr = m.Metrics.Spec.snr_mod_db in
    if snr > !best_snr then best_snr := snr;
    snr
  in
  let remaining_fields =
    [ "gmin_bias"; "dac_bias"; "preamp_bias"; "comp_bias"; "loop_delay"; "dac_trim"; "preamp_trim"; "vglna_gain" ]
  in
  let _ =
    Calibration.Coordinate_search.maximize ~objective ~fields:remaining_fields ~start
      ~passes:(max 1 (budget / 100)) ()
  in
  {
    attack = "tapped re-fab (oscillation access granted)";
    recovered_fields = recovered;
    trials = !trials;
    best_snr_mod_db = !best_snr;
    success = !best_snr >= 35.0;
    (* The tapped ablation measures its own die directly — no
       watchdog-armed oracle bench sits in the path. *)
    oracle_exhausted = false;
  }

let remaining_key_space_bits ~recovered =
  let total = Rfchain.Config.key_bits in
  let recovered_width =
    List.fold_left (fun acc name -> acc + Rfchain.Config.field_width name) 0 recovered
  in
  total - recovered_width
