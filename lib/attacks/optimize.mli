(** Multi-objective optimisation attacks (paper Section IV-B.3).

    Instead of blind sampling, the attacker runs an iterative search
    that tries to drive all performances into specification
    simultaneously.  Two standard engines are provided: simulated
    annealing over the 64-bit word (bit-flip moves) and a genetic
    algorithm (uniform crossover + mutation).  The paper's argument —
    only small subsets of bits relate smoothly to any performance, and
    only once the rest are already right — shows up as stagnating
    trajectories. *)

type trace_point = {
  evaluation : int;
  best_snr_mod_db : float;
}

type termination =
  | Success            (** full spec reached on the attacker's die *)
  | Budget_exhausted   (** the attack's own evaluation budget ran out *)
  | Oracle_exhausted   (** the refab bench's {!Oracle.refabricate} watchdog tripped *)
  | Search_complete    (** the search ran out of moves before the budget *)

val termination_to_string : termination -> string

type result = {
  attack : string;
  evaluations : int;
  success : bool;                  (** full spec reached *)
  best_config : Rfchain.Config.t;
  best_snr_mod_db : float;
  trace : trace_point list;        (** improvement trajectory, oldest first *)
  termination : termination;       (** why the attack stopped *)
}

val simulated_annealing :
  ?seed:int ->
  ?initial_temp:float ->
  ?cooling:float ->
  budget:int ->
  Oracle.refab ->
  result
(** SA with energy = spec shortfall of the fast SNR probe; temperature
    schedule [t <- cooling * t] per move. *)

val genetic :
  ?seed:int ->
  ?population:int ->
  ?mutation_bits:int ->
  budget:int ->
  Oracle.refab ->
  result
(** Tournament-selection GA over 64-bit words. *)

val hill_climb_from :
  ?seed:int ->
  start:Rfchain.Config.t ->
  budget:int ->
  Oracle.refab ->
  result
(** Coordinate search from a given word — models the paper's scenario
    where a key recovered from one chip seeds a gradient search to
    "quickly calibrate any chip". *)
