(** Brute-force key search (paper Section IV-B.3 / VI-B.1).

    Random 64-bit words are programmed into a re-fabricated part until
    one meets the specification.  The module reports both the empirical
    outcome within a trial budget and the projected wall-clock cost at
    the paper's per-trial times. *)

type result = {
  trials : int;
  success : bool;
  oracle_exhausted : bool;        (** the bench watchdog stopped the search early *)
  best_config : Rfchain.Config.t;
  best_snr_mod_db : float;        (** best modulator-output SNR seen *)
  best_spec_distance : float;     (** smallest aggregate shortfall seen *)
  projected_seconds_sim : float;  (** budget x 20 min/trial *)
  projected_seconds_hw : float;   (** budget x 1 s/trial *)
}

val run :
  ?seed:int ->
  budget:int ->
  Oracle.refab ->
  result
(** Draw [budget] random keys.  Success requires a full-spec
    measurement (SNR at both taps); the cheap SNR probe prefilters, and
    promising keys (modulator SNR above the spec) get the full
    measurement. *)
