type trace_point = {
  evaluation : int;
  best_snr_mod_db : float;
}

type termination =
  | Success
  | Budget_exhausted
  | Oracle_exhausted
  | Search_complete

let termination_to_string = function
  | Success -> "success"
  | Budget_exhausted -> "budget exhausted"
  | Oracle_exhausted -> "oracle watchdog tripped"
  | Search_complete -> "search completed"

type result = {
  attack : string;
  evaluations : int;
  success : bool;
  best_config : Rfchain.Config.t;
  best_snr_mod_db : float;
  trace : trace_point list;
  termination : termination;
}

(* Shared bookkeeping: evaluate through the fast probe, keep the best,
   record the improvement trajectory, stop early on full-spec success. *)
type session = {
  refab : Oracle.refab;
  min_snr : float;
  mutable best : Rfchain.Config.t;
  mutable best_snr : float;
  mutable evals : int;
  mutable trace : trace_point list;
  mutable success : bool;
  mutable oracle_dead : bool;
  budget : int;
}

let session refab ~budget =
  let standard_min_snr = 35.0 in
  {
    refab;
    min_snr = standard_min_snr;
    best = Rfchain.Config.nominal;
    best_snr = neg_infinity;
    evals = 0;
    trace = [];
    success = false;
    oracle_dead = false;
    budget;
  }

let evaluate s config =
  if s.evals >= s.budget || s.success || s.oracle_dead then None
  else begin
    match Oracle.try_key_fast s.refab config with
    | Error (Oracle.Budget_exhausted _) ->
      (* The bench watchdog is the hard stop, independent of our own
         accounting — a search loop cannot argue with it. *)
      s.oracle_dead <- true;
      None
    | Ok snr ->
      s.evals <- s.evals + 1;
      (* A faulted or silent die can return NaN power ratios; treat
         them as worst-case rather than letting NaN poison the search
         state. *)
      let snr = if Float.is_nan snr then neg_infinity else snr in
      if snr > s.best_snr then begin
        s.best_snr <- snr;
        s.best <- config;
        s.trace <- { evaluation = s.evals; best_snr_mod_db = snr } :: s.trace
      end;
      (* A candidate clearing the SNR bar gets the full check. *)
      if snr >= s.min_snr then begin
        match Oracle.try_key s.refab config with
        | Error (Oracle.Budget_exhausted _) -> s.oracle_dead <- true
        | Ok m ->
          if Oracle.spec_distance s.refab m = 0.0 then begin
            s.success <- true;
            s.best <- config
          end
      end;
      Some snr
  end

let finish s ~attack =
  let termination =
    if s.success then Success
    else if s.oracle_dead then Oracle_exhausted
    else if s.evals >= s.budget then Budget_exhausted
    else Search_complete
  in
  {
    attack;
    evaluations = s.evals;
    success = s.success;
    best_config = s.best;
    best_snr_mod_db = s.best_snr;
    trace = List.rev s.trace;
    termination;
  }

let flip_bits rng config n =
  let bits = ref (Rfchain.Config.to_bits config) in
  for _ = 1 to n do
    let pos = Sigkit.Rng.int_range rng 0 63 in
    bits := Int64.logxor !bits (Int64.shift_left 1L pos)
  done;
  Rfchain.Config.of_bits !bits

let simulated_annealing ?(seed = 0x5A) ?(initial_temp = 15.0) ?(cooling = 0.995) ~budget refab =
  let rng = Sigkit.Rng.create seed in
  let s = session refab ~budget in
  let current = ref (Rfchain.Config.random rng) in
  let current_energy =
    ref
      (match evaluate s !current with
      | Some snr -> -.snr
      | None -> infinity)
  in
  let temp = ref initial_temp in
  let continue = ref true in
  while !continue && not s.success do
    let n_flips = 1 + Sigkit.Rng.int_range rng 0 2 in
    let candidate = flip_bits rng !current n_flips in
    (match evaluate s candidate with
    | None -> continue := false
    | Some snr ->
      let energy = -.snr in
      let accept =
        energy < !current_energy
        || Sigkit.Rng.float rng < exp ((!current_energy -. energy) /. Float.max 1e-6 !temp)
      in
      if accept then begin
        current := candidate;
        current_energy := energy
      end);
    temp := !temp *. cooling
  done;
  finish s ~attack:"simulated annealing"

let genetic ?(seed = 0x6E) ?(population = 16) ?(mutation_bits = 2) ~budget refab =
  let rng = Sigkit.Rng.create seed in
  let s = session refab ~budget in
  let score config =
    match evaluate s config with
    | Some snr -> snr
    | None -> neg_infinity
  in
  let pop =
    Array.init population (fun _ ->
        let c = Rfchain.Config.random rng in
        (c, score c))
  in
  let tournament () =
    let a = Sigkit.Rng.int_range rng 0 (population - 1) in
    let b = Sigkit.Rng.int_range rng 0 (population - 1) in
    if snd pop.(a) >= snd pop.(b) then fst pop.(a) else fst pop.(b)
  in
  let crossover a b =
    let mask = Sigkit.Rng.bits64 rng in
    let bits =
      Int64.logor
        (Int64.logand (Rfchain.Config.to_bits a) mask)
        (Int64.logand (Rfchain.Config.to_bits b) (Int64.lognot mask))
    in
    Rfchain.Config.of_bits bits
  in
  let continue = ref true in
  while !continue && not s.success do
    if s.evals >= s.budget then continue := false
    else begin
      let child = flip_bits rng (crossover (tournament ()) (tournament ())) mutation_bits in
      let fitness = score child in
      if Float.is_finite fitness then begin
        (* Replace the current worst individual. *)
        let worst = ref 0 in
        for i = 1 to population - 1 do
          if snd pop.(i) < snd pop.(!worst) then worst := i
        done;
        if fitness > snd pop.(!worst) then pop.(!worst) <- (child, fitness)
      end
      else continue := false
    end
  done;
  finish s ~attack:"genetic algorithm"

let hill_climb_from ?seed:_ ~start ~budget refab =
  let s = session refab ~budget in
  let objective config =
    match evaluate s config with
    | Some snr -> snr
    | None -> neg_infinity
  in
  let outcome =
    Calibration.Coordinate_search.maximize ~objective ~fields:Rfchain.Config.field_names
      ~start ~passes:3 ~budget ()
  in
  (* The coordinate search tracks its own best; fold it into the session
     in case the final candidate was seen before the budget ran out. *)
  if outcome.Calibration.Coordinate_search.best_score > s.best_snr then begin
    s.best <- outcome.Calibration.Coordinate_search.best;
    s.best_snr <- outcome.Calibration.Coordinate_search.best_score
  end;
  finish s ~attack:"seeded hill climb"
