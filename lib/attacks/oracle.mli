(** The attacker's resources (threat model of paper Section IV-B).

    The attacker has the netlist and working oracle chips.  An oracle
    is a legitimately programmed part: its performances can be measured
    through the RF ports, but its key lives in tamper-proof storage.
    To *apply* candidate keys the attacker must re-fabricate the design
    with direct access to the programming bits — a {!refab} part, which
    is a different die with its own process variations. *)

type t
(** An oracle chip: measure, but never read the key. *)

val deploy : Rfchain.Standards.t -> chip_seed:int -> key:Core.Key.t -> t
(** A fielded, correctly provisioned part. *)

val reference_performance : t -> Metrics.Spec.measurement
(** What the attacker learns from the oracle: the performance level a
    successful attack must reproduce. *)

val standard : t -> Rfchain.Standards.t

type error = Budget_exhausted of { spent : int; limit : int }
(** The refab bench's trial-budget watchdog tripped: no further
    measurements are allowed. *)

val error_to_string : error -> string

type refab
(** The attacker's re-fabricated part with exposed programming bits. *)

val refabricate : ?trial_limit:int -> t -> attacker_seed:int -> refab
(** Manufacture a clone die.  Same netlist, new process variations.
    [trial_limit] arms a hard watchdog on the bench: once that many
    measurements have been spent, every further probe returns
    [Error (Budget_exhausted _)] — a backstop against search loops
    whose own budget accounting is wrong or subverted. *)

val try_key : refab -> Rfchain.Config.t -> (Metrics.Spec.measurement, error) result
(** Program a candidate key and measure.  Counted as one trial. *)

val try_key_fast : refab -> Rfchain.Config.t -> (float, error) result
(** Cheaper probe used inside search loops: modulator-output SNR only
    (still one trial — it is one bench measurement). *)

val trials_spent : refab -> int

val global_queries : unit -> int
(** Process-wide oracle-query odometer: bench measurements plus
    oscillation-mode probes, summed from the always-on telemetry
    counters.  Bracket an attack with two reads of this value to get
    the measurement cost it *actually* consumed — the number attack
    papers report — as opposed to the budget it was configured with. *)

val spec_distance : refab -> Metrics.Spec.measurement -> float
(** Aggregate shortfall from the oracle's standard. *)
