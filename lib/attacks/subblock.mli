(** Divide-and-conquer (sub-block) attack analysis (paper §IV-B.3, §VI-B.1).

    Can the 64-bit key be broken into per-sub-block sub-keys and each
    attacked separately?  The paper argues no: the feedback loop ties
    the sub-blocks together, calibrating one requires the others to be
    conditioned correctly, and tapping internal nodes of a multi-GHz
    loop needs a re-fab that degrades the very performance being
    measured.  This module quantifies both sides:

    - {!cap_only_attack}: tune only the capacitor sub-key with the rest
      of the word random — the conditioning failure.
    - {!tapped_attack}: the ablation where the attacker is granted an
      internal tank tap (oscillation-mode access, as if the re-fab
      worked and the tap were noiseless), recovers the capacitor and
      Q-enhancement sub-keys, and still faces the bias sub-space. *)

type result = {
  attack : string;
  recovered_fields : string list;
  trials : int;
  best_snr_mod_db : float;
  success : bool;
  oracle_exhausted : bool;  (** the bench watchdog stopped the search early *)
}

val cap_only_attack : ?seed:int -> budget:int -> Oracle.refab -> result

val tapped_attack :
  ?seed:int ->
  budget:int ->
  Rfchain.Standards.t ->
  attacker_seed:int ->
  result
(** Grants the tap on the attacker's own re-fab die (they can observe
    their own silicon), then hill-climbs the remaining fields. *)

val remaining_key_space_bits : recovered:string list -> int
(** Width of the key space left after recovering the named fields. *)
