(** Thermal noise sources.

    White Gaussian noise with a variance set either directly or from a
    noise figure over a bandwidth, referenced to the 50-ohm port.  Every
    source draws from its own reproducible per-chip stream. *)

type t

val create : Process.chip -> name:string -> sigma:float -> t
(** Source with the given per-sample standard deviation (volts). *)

val of_noise_figure : Process.chip -> name:string -> nf_db:float -> fs:float -> t
(** Input-referred receiver noise for a front end with noise figure
    [nf_db] sampled at [fs]: the kTB floor over the Nyquist bandwidth
    [fs/2], degraded by NF, converted to a per-sample voltage sigma into
    50 ohm. *)

val sigma_of_noise_figure : nf_db:float -> fs:float -> float
(** The per-sample sigma {!of_noise_figure} would use — pure, so hot
    paths can compute it once per (stage, code) and batch-draw the
    stream themselves with {!Sigkit.Rng.gaussian_fill}. *)

val sample : t -> float
val run : t -> int -> float array
val sigma : t -> float
