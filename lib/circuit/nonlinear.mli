(** Memoryless weak nonlinearity with rail saturation.

    Models the compression and odd-order distortion of transconductors
    and amplifier stages: [y = sat(a1 x + a2 x^2 + a3 x^3)], where the
    saturation is a scaled tanh at the supply rail.  The third-order
    coefficient is derived from the stage's IIP3 so that two-tone tests
    produce physically scaled intermodulation products. *)

type t

val create : ?a2:float -> gain:float -> iip3_dbm:float -> ?rail:float -> unit -> t
(** [create ~gain ~iip3_dbm ()] builds a stage with linear [gain]
    (voltage ratio) and the given input-referred third-order intercept
    point.  [a2] is the second-order coefficient (default 0: fully
    differential stage).  [rail] is the saturation amplitude at the
    output (default 1.5 V). *)

val linear : gain:float -> t
(** Perfectly linear, unclipped stage (for ideal-model comparisons). *)

val apply : t -> float -> float
val run : t -> float array -> float array

val a3 : t -> float
(** The derived cubic coefficient (for tests). *)

val coefficients : t -> float * float * float * float
(** [(a1, a2, a3, rail)] — the exact polynomial and rail used by
    {!apply}.  Zero-allocation hot loops replicate {!apply}'s expression
    locally from these so per-sample results stay bit-identical without
    a boxed cross-module call per sample. *)
