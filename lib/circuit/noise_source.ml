type t = {
  rng : Sigkit.Rng.t;
  sigma : float;
}

let create chip ~name ~sigma = { rng = Process.noise_stream chip ~name; sigma }

let boltzmann = 1.380649e-23
let temperature_kelvin = 290.0

(* Available noise power kTB over the Nyquist band, degraded by NF;
   v_rms = sqrt(P * 2R) for power P delivered into R (peak-equivalent
   sigma of the sampled process). *)
let sigma_of_noise_figure ~nf_db ~fs =
  let bandwidth = fs /. 2.0 in
  let power = boltzmann *. temperature_kelvin *. bandwidth *. Sigkit.Decibel.power_ratio_of_db nf_db in
  sqrt (power *. Sigkit.Decibel.reference_ohms)

let of_noise_figure chip ~name ~nf_db ~fs =
  create chip ~name ~sigma:(sigma_of_noise_figure ~nf_db ~fs)

let sample t = t.sigma *. Sigkit.Rng.gaussian t.rng
let run t n = Array.init n (fun _ -> sample t)
let sigma t = t.sigma
