type chip = {
  seed : int;
  sigma_scale : float;
  rng_root : Sigkit.Rng.t;
  age_hours : float;
  pvt_scale : float;            (* correlated corner drift (supply/temperature), 0 = nominal *)
  offset_bias : (string * float) list;  (* targeted per-parameter offsets injected by fault models *)
}

let fabricate ?(lot_sigma_scale = 1.0) ~seed () =
  {
    seed;
    sigma_scale = lot_sigma_scale;
    rng_root = Sigkit.Rng.create seed;
    age_hours = 0.0;
    pvt_scale = 0.0;
    offset_bias = [];
  }

let seed chip = chip.seed
let age_hours chip = chip.age_hours

let age chip ~hours =
  if hours < 0.0 then invalid_arg "Process.age: negative hours";
  { chip with age_hours = chip.age_hours +. hours }

(* Environmental (PVT) drift: a correlated shift of every parameter
   away from the corner the die was calibrated at.  Direction and
   relative magnitude are fixed per (die, parameter) — the same die in
   the same environment always lands on the same corner — while
   [drift] scales the excursion (0.01 ~ a 1-sigma supply/temperature
   excursion in the paper's 65 nm terms). *)
let environment chip ~drift = { chip with pvt_scale = chip.pvt_scale +. drift }

let with_offset_bias chip ~name ~bias =
  { chip with offset_bias = (name, bias) :: chip.offset_bias }

let pvt_shift chip name =
  if chip.pvt_scale = 0.0 then 0.0
  else chip.pvt_scale *. Sigkit.Rng.gaussian (Sigkit.Rng.split chip.rng_root ("pvt:" ^ name))

let draw chip name =
  (* A one-shot generator keyed by (chip seed, parameter name): the first
     gaussian of the split stream is the parameter's permanent draw. *)
  Sigkit.Rng.gaussian (Sigkit.Rng.split chip.rng_root name)

(* BTI/HCI drift: grows with the decade of use-hours, direction and
   magnitude fixed per (die, parameter).  ~1.5% per decade, 1 sigma. *)
let aging_shift chip name =
  if chip.age_hours <= 0.0 then 0.0
  else
    let decades = log10 (1.0 +. chip.age_hours) in
    let direction = Sigkit.Rng.gaussian (Sigkit.Rng.split chip.rng_root ("aging:" ^ name)) in
    0.015 *. decades *. direction

let parameter chip ~name ~nominal ~sigma_pct =
  nominal
  *. (1.0
     +. (chip.sigma_scale *. sigma_pct /. 100.0 *. draw chip name)
     +. aging_shift chip name +. pvt_shift chip name)

let bias_of chip name =
  match List.assoc_opt name chip.offset_bias with
  | Some b -> b
  | None -> 0.0

let offset chip ~name ~sigma =
  (chip.sigma_scale *. sigma *. draw chip name)
  +. (sigma *. (aging_shift chip name +. pvt_shift chip name) *. 20.0)
  +. bias_of chip name

let noise_stream chip ~name = Sigkit.Rng.split chip.rng_root ("noise:" ^ name)

let variation_enabled chip = chip.sigma_scale > 0.0

(* Canonical fingerprint of the die's behavioural identity: two chips
   with equal fingerprints draw identical parameters for every name.
   Every field that feeds a draw is folded in; floats are rendered with
   [%h] (exact hex) so no two distinct values collide, and the offset
   biases are sorted so construction order does not leak into the key.
   The rng_root is excluded: it is a pure function of [seed]. *)
let identity chip =
  let biases =
    List.sort compare chip.offset_bias
    |> List.map (fun (name, bias) -> Printf.sprintf "%s=%h" name bias)
    |> String.concat ","
  in
  Printf.sprintf "seed=%d;sigma=%h;age=%h;pvt=%h;bias=[%s]" chip.seed chip.sigma_scale
    chip.age_hours chip.pvt_scale biases
