(** Process-variation model: the manufacturing identity of one die.

    A [chip] is a deterministic function from (parameter name, nominal,
    sigma) to a varied value: the same chip always returns the same draw
    for the same parameter, and two chips with different seeds return
    independent draws.  This is the behavioural stand-in for Monte-Carlo
    mismatch of a fabricated 65 nm die, and it is what makes the correct
    configuration setting unique per chip (paper, Section III). *)

type chip

val fabricate : ?lot_sigma_scale:float -> seed:int -> unit -> chip
(** [fabricate ~seed ()] manufactures a die.  [lot_sigma_scale] globally
    scales all variation sigmas (1.0 = nominal process; 0.0 = ideal
    process, used by the no-variation ablation). *)

val seed : chip -> int
(** The die's manufacturing seed (its identity). *)

val age : chip -> hours:float -> chip
(** The same die after [hours] of field use: BTI/HCI-style drift shifts
    every parameter by a slowly growing, per-parameter systematic
    amount (~0.5% per decade of hours).  The identity (seed, PUF
    entropy) is unchanged — it is the same silicon, just used; this is
    what makes a recycled part drift away from the configuration that
    was calibrated for it when new. *)

val age_hours : chip -> float
(** Accumulated use (0 for fresh silicon). *)

val environment : chip -> drift:float -> chip
(** The same die in a drifted supply/temperature environment: every
    parameter shifts by [drift * z] with [z] a per-(die, parameter)
    standard normal — a correlated corner excursion, not fresh
    mismatch.  [drift = 0.01] is roughly a 1-sigma PVT excursion.
    Composable: successive calls accumulate. *)

val with_offset_bias : chip -> name:string -> bias:float -> chip
(** Inject a targeted additive shift into one named offset parameter
    (e.g. a comparator threshold drifting by [bias] volts).  Used by
    the fault-injection layer; the unbiased die is unchanged. *)

val parameter : chip -> name:string -> nominal:float -> sigma_pct:float -> float
(** Gaussian-varied parameter: [nominal * (1 + sigma_pct/100 * z)] with
    [z] a per-(chip, name) standard normal draw.  Deterministic. *)

val offset : chip -> name:string -> sigma:float -> float
(** Additive zero-mean Gaussian offset (e.g. comparator offset volts). *)

val noise_stream : chip -> name:string -> Sigkit.Rng.t
(** A fresh, reproducible RNG for a named noise source on this chip.
    Each call returns a generator restarted at the stream origin. *)

val variation_enabled : chip -> bool
(** False when the chip was fabricated with [lot_sigma_scale = 0.]. *)

val identity : chip -> string
(** Canonical fingerprint of the die's behavioural identity: chips with
    equal fingerprints draw identical parameters for every name (seed,
    sigma scale, age, PVT drift and injected biases are all folded in,
    floats rendered exactly).  Used by the evaluation engine as the
    chip component of its result-cache key. *)
