type t = {
  a1 : float;
  a2 : float;
  a3 : float;
  rail : float;
}

(* For y = a1 x + a3 x^3, the input amplitude at which the IM3 product
   equals the fundamental (the intercept) satisfies
   A_iip3^2 = 4/3 |a1 / a3|, so a3 = -4 a1 / (3 A^2) (compressive). *)
let a3_of_iip3 ~gain ~iip3_dbm =
  let a_iip3 = Sigkit.Decibel.amplitude_of_dbm iip3_dbm in
  -4.0 *. gain /. (3.0 *. a_iip3 *. a_iip3)

let create ?(a2 = 0.0) ~gain ~iip3_dbm ?(rail = 1.5) () =
  { a1 = gain; a2; a3 = a3_of_iip3 ~gain ~iip3_dbm; rail }

let linear ~gain = { a1 = gain; a2 = 0.0; a3 = 0.0; rail = infinity }

let apply t x =
  let y = (t.a1 *. x) +. (t.a2 *. x *. x) +. (t.a3 *. x *. x *. x) in
  if Float.is_finite t.rail then t.rail *. tanh (y /. t.rail) else y

let run t input = Array.map (apply t) input
let a3 t = t.a3
let coefficients t = (t.a1, t.a2, t.a3, t.rail)
