(* Benchmark harness.

   Part 1 — Bechamel micro/macro benchmarks: one Test.make per
   figure/table of the paper (its computational kernel at a bounded
   size) plus the hot simulator kernels.  Part 2 — the full-size
   regeneration harness: re-prints every figure's and table's data
   series, exactly as `repro all` does, so one executable both times
   the kernels and reproduces the evaluation. *)

open Bechamel

(* Shared fixtures, built once: a calibrated die and a test stimulus. *)
let ctx = lazy (Experiments.Context.create ())

let stimulus =
  lazy
    (let c = Lazy.force ctx in
     let fs = Rfchain.Receiver.fs c.Experiments.Context.rx in
     let f_in = Rfchain.Receiver.test_tone_frequency c.Experiments.Context.rx ~n:8192 in
     Sigkit.Waveform.tone_dbm ~p_dbm:(-25.0) ~freq:f_in ~fs 8192)

(* The spectral kernel as the measurement pipeline runs it: one planned
   real-input transform of the 8192-sample stimulus (packed n/2 complex
   FFT + untangling).  The seed harness ran a full complex transform
   here; that path stays below as its own kernel for the trajectory. *)
let bench_fft () =
  let x = Lazy.force stimulus in
  ignore (Sigkit.Fft.real_forward x)

let bench_fft_complex () =
  let x = Lazy.force stimulus in
  let re, im = Sigkit.Fft.of_real x in
  Sigkit.Fft.forward re im

(* FIG7/FIG9 kernel: one key evaluated through modulator + receiver. *)
let bench_fig7_key () =
  let c = Lazy.force ctx in
  let bench = Metrics.Measure.create c.Experiments.Context.rx in
  ignore (Metrics.Measure.snr_mod_db bench c.Experiments.Context.golden)

let bench_fig9_key () =
  let c = Lazy.force ctx in
  let bench = Metrics.Measure.create c.Experiments.Context.rx in
  ignore (Metrics.Measure.snr_rx_db ~n_fft:512 bench c.Experiments.Context.golden)

(* FIG8 kernel: a transient capture. *)
let bench_fig8_transient () =
  let c = Lazy.force ctx in
  ignore (Experiments.Fig8.run ~window:64 c)

(* FIG10 kernel: one PSD estimate. *)
let bench_fig10_psd () =
  let c = Lazy.force ctx in
  let bench = Metrics.Measure.create c.Experiments.Context.rx in
  let record = Metrics.Measure.mod_output bench c.Experiments.Context.golden in
  ignore (Sigkit.Spectrum.periodogram ~fs:(Rfchain.Receiver.fs c.Experiments.Context.rx) record)

(* FIG11 kernel: one sweep point. *)
let bench_fig11_point () =
  let c = Lazy.force ctx in
  let bench = Metrics.Measure.create c.Experiments.Context.rx in
  ignore
    (Metrics.Measure.snr_rx_at_power_db ~n_fft:256 bench c.Experiments.Context.golden
       ~p_dbm:(-40.0) ~gain_code:9)

(* FIG12 kernel: one two-tone SFDR measurement. *)
let bench_fig12_sfdr () =
  let c = Lazy.force ctx in
  let bench = Metrics.Measure.create c.Experiments.Context.rx in
  ignore (Metrics.Measure.sfdr_db bench c.Experiments.Context.golden)

(* SEC-TABLE kernel: one brute-force trial on a re-fabbed die (this is
   the number that anchors the hardware attack-cost row). *)
let refab =
  lazy
    (let c = Lazy.force ctx in
     let key =
       Core.Key.make ~standard:c.Experiments.Context.standard ~chip:c.Experiments.Context.chip
         c.Experiments.Context.golden
     in
     let oracle =
       Attacks.Oracle.deploy c.Experiments.Context.standard ~chip_seed:c.Experiments.Context.seed
         ~key
     in
     Attacks.Oracle.refabricate oracle ~attacker_seed:99)

let trial_rng = lazy (Sigkit.Rng.create 0xBEEF)

let bench_security_trial () =
  ignore (Attacks.Oracle.try_key_fast (Lazy.force refab) (Rfchain.Config.random (Lazy.force trial_rng)))

(* CMP-TABLE kernel: the full baseline corruption probe set. *)
let bench_compare_probes () = ignore (Baselines.Compare.corruption_probes ())

(* Calibration kernels. *)
let bench_osc_tune () =
  let c = Lazy.force ctx in
  ignore (Calibration.Osc_tune.run c.Experiments.Context.rx)

(* LOT kernel: one full die calibration (the per-die production cost). *)
let lot_counter = ref 0

let bench_lot_die () =
  incr lot_counter;
  let chip = Circuit.Process.fabricate ~seed:(50_000 + !lot_counter) () in
  let rx = Rfchain.Receiver.create chip Rfchain.Standards.max_frequency in
  ignore (Calibration.Calibrate.run ~passes:1 ~refine_sfdr:false ~max_retries:0 rx)

(* ONCHIP kernel: one gate-level ALU comparison (the self-calibration
   engine's inner operation). *)
let onchip_alu = lazy (Calibration.Onchip.lock_alu (Sigkit.Rng.create 3) ())

let bench_onchip_alu () =
  let locked = Lazy.force onchip_alu in
  ignore
    (Netlist.Gate.eval locked.Netlist.Logic_lock.circuit
       ~key:locked.Netlist.Logic_lock.correct_key
       (Array.init 32 (fun i -> i land 1 = 0)))

(* FAULTS kernel: one stress-campaign cell — the golden key measured on
   a faulted copy of the die (the inner loop of `repro faults`). *)
let bench_faults_cell () =
  let c = Lazy.force ctx in
  let rx_faulted =
    Faults.Inject.receiver c.Experiments.Context.chip c.Experiments.Context.standard
      [ Faults.Fault.pvt Faults.Fault.Moderate ]
  in
  ignore (Metrics.Measure.snr_mod_db (Metrics.Measure.create rx_faulted) c.Experiments.Context.golden)

(* GENERALITY kernel: one AFE characterisation. *)
let afe_fixture = lazy (Afe.Afe_chain.create (Circuit.Process.fabricate ~seed:9001 ()))

let bench_afe_measure () = ignore (Afe.Afe_chain.measure (Lazy.force afe_fixture) Afe.Afe_config.nominal)

(* ENGINE kernels: the evaluation service's own costs.  Hit vs miss
   bounds what the cache buys per evaluation; the batch kernels time
   the same 8-key batch on the sequential backend and on 2-, 4- and
   8-lane domain pools (caching off, so every iteration re-simulates —
   this measures throughput, not cache warmth; the scheduler sizes
   lanes to the hardware, so the sweep must be monotone, DESIGN §13). *)
let engine_cached = lazy (Engine.Service.create ~jobs:1 ~cache:true ())
let engine_uncached = lazy (Engine.Service.create ~jobs:1 ~cache:false ())
let engine_pool2 = lazy (Engine.Service.create ~jobs:2 ~cache:false ())
let engine_pool4 = lazy (Engine.Service.create ~jobs:4 ~cache:false ())
let engine_pool8 = lazy (Engine.Service.create ~jobs:8 ~cache:false ())

let engine_request =
  lazy
    (let c = Lazy.force ctx in
     Engine.Request.make
       ~die:(Engine.Request.die_of_receiver c.Experiments.Context.rx)
       ~standard:c.Experiments.Context.standard ~config:c.Experiments.Context.golden
       Engine.Request.Snr_mod)

let engine_batch =
  lazy
    (let c = Lazy.force ctx in
     let die = Engine.Request.die_of_receiver c.Experiments.Context.rx in
     let golden = Rfchain.Config.to_bits c.Experiments.Context.golden in
     List.init 8 (fun bit ->
         Engine.Request.make ~die ~standard:c.Experiments.Context.standard
           ~config:(Rfchain.Config.of_bits (Int64.logxor golden (Int64.shift_left 1L bit)))
           Engine.Request.Snr_mod))

let bench_engine_hit () =
  ignore (Engine.Service.eval ~engine:(Lazy.force engine_cached) (Lazy.force engine_request))

let bench_engine_miss () =
  ignore (Engine.Service.eval ~engine:(Lazy.force engine_uncached) (Lazy.force engine_request))

let bench_engine_batch engine () =
  ignore (Engine.Service.eval_batch ~engine:(Lazy.force engine) (Lazy.force engine_batch))

(* POOL kernel: the sharded scheduler's own claim/steal overhead,
   isolated from the simulator.  An eager 4-lane pool runs 256 no-op
   items dealt as single-index chunks, so every index crosses the
   submit -> queue -> claim (or steal) path; the per-item figure is
   the scheduling tax a real work item pays on top of its compute. *)
let steal_pool = lazy (Engine.Pool.create ~eager:true 3)

let bench_pool_steal () =
  Engine.Pool.run ~chunk:1 (Lazy.force steal_pool) (fun _ -> ()) 256

(* STREAM kernels (DESIGN §14).  [engine:stream-grid] pushes the same
   8-key grid through submit/next_result/drain instead of the joined
   batch — against engine:batch8-1domain the difference is the
   streaming layer's own tax (ticket, completion queue, per-item
   delivery) now that the submit barrier is gone.  [pool:wakeup-capped]
   times a default-chunk submit small enough that the wakeup budget
   engages a single lane: the eager workers stay parked, so the figure
   is the cost of posting and completing a batch without poking any
   sleeping domain. *)
let bench_engine_stream () =
  let stream =
    Engine.Service.eval_stream ~engine:(Lazy.force engine_uncached) (Lazy.force engine_batch)
  in
  match Engine.Service.stream_drain stream with
  | Ok ms -> ignore ms
  | Error _ -> assert false (* no per-stream deadline is attached here *)

let bench_pool_wakeup_capped () =
  (* 8 no-op items under the default layout: ⌈8 / max_chunk⌉ = 1 lane
     engaged, three eager workers left asleep. *)
  Engine.Pool.run (Lazy.force steal_pool) (fun _ -> ()) 8

(* TELEMETRY kernels: the instrumentation's own cost.  The disabled
   span is the price every instrumented call site pays on a plain run
   (the overhead policy says near-zero); counter increments are
   always-on, so their cost rides on every simulator step. *)
let telemetry_bench_counter = Telemetry.Counter.make "bench.telemetry_probe"

let bench_span_disabled () = Telemetry.Span.with_ ~name:"bench.disabled" (fun () -> ())
let bench_counter_incr () = Telemetry.Counter.incr telemetry_bench_counter

(* Cancellation-point cost: what every 4096-sample poll window pays in
   the simulator inner loops (no token installed, no interrupt — the
   common case). *)
let bench_cancel_poll () =
  for _ = 1 to 1_000 do
    Telemetry.Cancel.poll ()
  done

(* Checkpoint record cost: serialise + write + flush + fsync of one
   journal line, the per-cell durability price a checkpointed campaign
   pays.  Keys rotate so the dedup check never short-circuits the
   write. *)
let checkpoint_fixture =
  lazy
    (let path = Filename.temp_file "bench_ckpt" ".jsonl" in
     at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
     match Engine.Checkpoint.load ~resume:false path with
     | Ok cp -> cp
     | Error c -> failwith (Engine.Checkpoint.corruption_to_string c))

let checkpoint_key_seq = ref 0

let bench_checkpoint_record () =
  let cp = Lazy.force checkpoint_fixture in
  incr checkpoint_key_seq;
  Engine.Checkpoint.record cp
    (Printf.sprintf "bench|%d" !checkpoint_key_seq)
    {
      Engine.Cache.measurement =
        { Metrics.Spec.snr_mod_db = 12.5; snr_rx_db = 9.25; sfdr_db = Some 44.0 };
      trial_cost = 1;
    }

let tests =
  [
    Test.make ~name:"kernel:fft-8192" (Staged.stage bench_fft);
    Test.make ~name:"kernel:fft-complex-8192" (Staged.stage bench_fft_complex);
    Test.make ~name:"fig7:snr-mod-per-key" (Staged.stage bench_fig7_key);
    Test.make ~name:"fig8:transient-capture" (Staged.stage bench_fig8_transient);
    Test.make ~name:"fig9:snr-rx-per-key" (Staged.stage bench_fig9_key);
    Test.make ~name:"fig10:psd-estimate" (Staged.stage bench_fig10_psd);
    Test.make ~name:"fig11:sweep-point" (Staged.stage bench_fig11_point);
    Test.make ~name:"fig12:two-tone-sfdr" (Staged.stage bench_fig12_sfdr);
    Test.make ~name:"security:attack-trial" (Staged.stage bench_security_trial);
    Test.make ~name:"compare:baseline-probes" (Staged.stage bench_compare_probes);
    Test.make ~name:"calibration:osc-tune" (Staged.stage bench_osc_tune);
    Test.make ~name:"lot:die-calibration" (Staged.stage bench_lot_die);
    Test.make ~name:"onchip:alu-evaluation" (Staged.stage bench_onchip_alu);
    Test.make ~name:"faults:campaign-cell" (Staged.stage bench_faults_cell);
    Test.make ~name:"generality:afe-measure" (Staged.stage bench_afe_measure);
    Test.make ~name:"engine:cache-hit" (Staged.stage bench_engine_hit);
    Test.make ~name:"engine:cache-miss" (Staged.stage bench_engine_miss);
    Test.make ~name:"engine:batch8-1domain" (Staged.stage (bench_engine_batch engine_uncached));
    Test.make ~name:"engine:batch8-2domains" (Staged.stage (bench_engine_batch engine_pool2));
    Test.make ~name:"engine:batch8-4domains" (Staged.stage (bench_engine_batch engine_pool4));
    Test.make ~name:"engine:batch8-8domains" (Staged.stage (bench_engine_batch engine_pool8));
    (* stream-grid must run before any pool:* kernel forces the eager
       3-worker fixture into existence: from that point on every minor
       GC pays the parked-domain barrier tax (§13), which would double
       an allocation-heavy kernel's figure.  The zero-allocation pool
       kernels are immune to the ordering. *)
    Test.make ~name:"engine:stream-grid" (Staged.stage bench_engine_stream);
    Test.make ~name:"pool:steal" (Staged.stage bench_pool_steal);
    Test.make ~name:"pool:wakeup-capped" (Staged.stage bench_pool_wakeup_capped);
    Test.make ~name:"telemetry:span-disabled" (Staged.stage bench_span_disabled);
    Test.make ~name:"telemetry:counter-incr" (Staged.stage bench_counter_incr);
    Test.make ~name:"telemetry:cancel-poll-1k" (Staged.stage bench_cancel_poll);
    Test.make ~name:"engine:checkpoint-record" (Staged.stage bench_checkpoint_record);
  ]

let bench_json_file = "BENCH_4.json"

(* Machine-readable perf trajectory (schema bench-kernels/2, stamped
   with a run manifest), sorted by name so re-runs diff cleanly. *)
let write_json ~out results =
  let kernels =
    List.map
      (fun (name, ns, mwd) ->
        { Benchkit.Bench_json.name; ns_per_run = ns; minor_words_per_run = mwd })
      results
  in
  let manifest = Telemetry.Manifest.create () in
  Telemetry.Manifest.finish ~exit_status:0 manifest;
  Benchkit.Bench_json.write ~path:out ~manifest kernels;
  Printf.printf "\nwrote %s (%d kernels)\n" out (List.length kernels)

(* The regression gate: compare this run against a committed baseline
   (v1 or v2); any regression or — for full runs — missing kernel is
   fatal (exit 4) so CI fails the build. *)
let compare_against ~baseline_path ~require_all results =
  match Benchkit.Bench_json.read baseline_path with
  | Error reason ->
    Printf.eprintf "bench: cannot read baseline %s: %s\n" baseline_path reason;
    exit 4
  | Ok baseline ->
    let current =
      List.map
        (fun (name, ns, mwd) ->
          { Benchkit.Bench_json.name; ns_per_run = ns; minor_words_per_run = mwd })
        results
    in
    let comparisons =
      Benchkit.Bench_json.compare_results ~baseline:baseline.Benchkit.Bench_json.kernels
        ~current ~require_all
    in
    let bad = Benchkit.Bench_json.regressions comparisons in
    Printf.printf "\n## Regression gate vs %s (schema v%d)\n" baseline_path
      baseline.Benchkit.Bench_json.schema;
    List.iter (fun c -> Printf.printf "  %s\n" (Benchkit.Bench_json.verdict_to_string c))
      (if bad = [] then comparisons else bad);
    if bad = [] then Printf.printf "  gate: PASS (%d kernels)\n" (List.length comparisons)
    else begin
      Printf.printf "  gate: FAIL (%d regression%s)\n" (List.length bad)
        (if List.length bad = 1 then "" else "s");
      exit 4
    end

let run_benchmarks ~fast ~json ~out ~compare_to ~only () =
  print_endline "## Bechamel timings (one Test per figure/table kernel)";
  let limit, quota = if fast then (20, 0.25) else (50, 1.0) in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) ~kde:None () in
  let clock = Toolkit.Instance.monotonic_clock in
  let alloc = Toolkit.Instance.minor_allocated in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let pretty_ns ns =
    if ns < 1e3 then Printf.sprintf "%.0f ns" ns
    else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
    else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else Printf.sprintf "%.2f s" (ns /. 1e9)
  in
  let estimate instance raw =
    let v = ref nan in
    if Sys.getenv_opt "BENCH_DEBUG" <> None then
      Hashtbl.iter
        (fun name result -> Fmt.pr "DEBUG %s: %a@." name Analyze.OLS.pp result)
        (Analyze.all ols instance raw);
    Hashtbl.iter
      (fun _ result ->
        match Analyze.OLS.estimates result with
        | Some [ x ] -> v := x
        | Some _ | None -> ())
      (Analyze.all ols instance raw)
    ;
    !v
  in
  let contains s sub =
    let ls = String.length s and lb = String.length sub in
    let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
    lb = 0 || go 0
  in
  let selected =
    List.filter
      (fun t -> match only with None -> true | Some s -> contains (Test.name t) s)
      tests
  in
  let results =
    List.map
      (fun test ->
        let raw = Benchmark.all cfg [ clock; alloc ] test in
        (Test.name test, estimate clock raw, estimate alloc raw))
      selected
  in
  List.iter
    (fun (name, ns, mwd) ->
      Printf.printf "  %-28s %12s / run  %10.0f mWd / run\n" name (pretty_ns ns) mwd)
    (List.sort compare results);
  if json then write_json ~out:(Option.value out ~default:bench_json_file) results;
  (match compare_to with
  | None -> ()
  | Some baseline_path -> compare_against ~baseline_path ~require_all:(only = None) results);
  (* Absolute allocation budgets (make alloc-smoke): unlike the
     baseline gate these are baseline-free, so a regenerated
     BENCH_4.json cannot quietly ratchet a reintroduced per-stage
     copy into the committed "normal". *)
  let budgeted =
    Benchkit.Bench_json.check_budgets
      (List.map
         (fun (name, ns, mwd) ->
           { Benchkit.Bench_json.name; ns_per_run = ns; minor_words_per_run = mwd })
         results)
  in
  if budgeted <> [] then begin
    let bad = Benchkit.Bench_json.regressions budgeted in
    Printf.printf "\n## Allocation budgets (arena-converted kernels)\n";
    List.iter
      (fun c -> Printf.printf "  %s\n" (Benchkit.Bench_json.verdict_to_string c))
      (if bad = [] then budgeted else bad);
    if bad = [] then Printf.printf "  budgets: PASS (%d kernels)\n" (List.length budgeted)
    else begin
      Printf.printf "  budgets: FAIL (%d kernel%s over budget)\n" (List.length bad)
        (if List.length bad = 1 then "" else "s");
      exit 4
    end
  end;
  (* Anchor the attack-cost table with the measured behavioural-sim
     trial time: even a simulator millions of times faster than the
     paper's 20-minute transistor-level runs leaves brute force
     hopeless. *)
  match List.find_opt (fun (name, _, _) -> name = "security:attack-trial") results with
  | Some (_, ns, _) when Float.is_finite ns ->
    let seconds = ns /. 1e9 in
    Printf.printf
      "\nmeasured behavioural trial: %s -> full key search at this rate: %s\n"
      (pretty_ns ns)
      (Attacks.Cost.seconds_to_human (seconds *. Attacks.Cost.expected_brute_force_trials))
  | Some _ | None -> ()

let run_harness () =
  let c = Lazy.force ctx in
  print_endline "\n## Full-size regeneration harness (paper figures and tables)\n";
  Experiments.Fig7_fig9.print (Experiments.Fig7_fig9.run c);
  print_newline ();
  Experiments.Fig8.print (Experiments.Fig8.run c);
  print_newline ();
  Experiments.Fig10.print (Experiments.Fig10.run c);
  print_newline ();
  Experiments.Fig11.print c (Experiments.Fig11.run c);
  print_newline ();
  Experiments.Fig12.print c (Experiments.Fig12.run c);
  print_newline ();
  Experiments.Security_table.print (Experiments.Security_table.run c);
  print_newline ();
  Experiments.Compare_table.print (Experiments.Compare_table.run c);
  print_newline ();
  Experiments.Ablations.print c (Experiments.Ablations.run c);
  print_newline ();
  Experiments.Onchip_lock.print c (Experiments.Onchip_lock.run c);
  print_newline ();
  let aging = Experiments.Aging_study.run c in
  Experiments.Aging_study.print aging;
  List.iter
    (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (Experiments.Aging_study.checks c aging);
  print_newline ();
  let avalanche = Experiments.Avalanche.run c in
  Experiments.Avalanche.print avalanche;
  List.iter
    (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (Experiments.Avalanche.checks c avalanche);
  print_newline ();
  Experiments.Lot_study.print (Experiments.Lot_study.run ~lot:4 ~seed_base:6000 c.Experiments.Context.standard);
  print_newline ();
  (match Faults.Campaign.run ~dies:2 ~seed:c.Experiments.Context.seed c.Experiments.Context.standard with
  | Ok campaign -> Faults.Report.print campaign
  | Error e -> print_endline (Faults.Error.to_string e));
  print_newline ();
  Experiments.Generality.print (Experiments.Generality.run ())

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let metrics = Array.exists (( = ) "--metrics") Sys.argv in
  let fast = Array.exists (( = ) "--fast") Sys.argv in
  let json = Array.exists (( = ) "--json") Sys.argv in
  let arg_value flag =
    let rec find = function
      | f :: v :: _ when f = flag -> Some v
      | _ :: tl -> find tl
      | [] -> None
    in
    find (Array.to_list Sys.argv)
  in
  let only = arg_value "--only" in
  let out = arg_value "--out" in
  let compare = arg_value "--compare" in
  if metrics then Telemetry.Control.set_enabled true;
  Printf.printf "calibrating the reference die ...\n%!";
  let c = Lazy.force ctx in
  Printf.printf "reference calibration: SNR(mod) %.1f dB, SNR(rx) %.1f dB, SFDR %.1f dB\n\n%!"
    c.Experiments.Context.calibration.Calibration.Calibrate.snr_mod_db
    c.Experiments.Context.calibration.Calibration.Calibrate.snr_rx_db
    c.Experiments.Context.calibration.Calibration.Calibrate.sfdr_db;
  run_benchmarks ~fast ~json ~out ~compare_to:compare ~only ();
  if not quick then run_harness ();
  if metrics then begin
    print_newline ();
    Telemetry.Export.summary_table ()
  end
