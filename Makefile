.PHONY: all build test faults-smoke profile-smoke telemetry-smoke engine-smoke sched-smoke resume-smoke monitor-smoke cli-smoke alloc-smoke bench-json bench-json-fast bench-gate ci clean

all: build

build:
	dune build @all

test:
	dune runtest

# End-to-end smoke of the stress campaign: must exit 0 with every
# campaign check passing (grep fails the target on any [FAIL] line).
faults-smoke:
	dune exec bin/repro.exe -- faults --seed 42 --standard bluetooth | tee /tmp/faults-smoke.out
	! grep -q '\[FAIL\]' /tmp/faults-smoke.out

# The profiling workload must exercise every instrumented layer: at
# least 8 distinct span rows between the summary header and the
# counters section, including one from each of rfchain, sigkit,
# metrics, calibration and attacks.
profile-smoke:
	dune exec bin/repro.exe -- profile --seed 42 --standard bluetooth | tee /tmp/profile-smoke.out
	test $$(sed -n '/^span /,/^counters/p' /tmp/profile-smoke.out | grep -c '^[a-z]') -ge 8
	grep -q '^sdm\.' /tmp/profile-smoke.out
	grep -q '^fft\.' /tmp/profile-smoke.out
	grep -q '^measure\.' /tmp/profile-smoke.out
	grep -q '^calibrate\.' /tmp/profile-smoke.out
	grep -q '^attack\.' /tmp/profile-smoke.out

# Telemetry must observe without perturbing: the instrumented run's
# figure output must be byte-identical to the plain run, the golden
# calibration numbers must not drift, and the emitted Chrome trace
# must contain complete ("ph":"X") span events.
telemetry-smoke:
	dune exec bin/repro.exe -- fig8 --seed 42 --standard bluetooth > /tmp/fig8-plain.out
	grep -q 'SNR(mod) 43.1 dB, SNR(rx) 41.8 dB, SFDR 35.0 dB' /tmp/fig8-plain.out
	dune exec bin/repro.exe -- fig8 --seed 42 --standard bluetooth \
	  --metrics --trace fig8.trace.json > /tmp/fig8-metrics.out
	head -n $$(wc -l < /tmp/fig8-plain.out) /tmp/fig8-metrics.out | cmp - /tmp/fig8-plain.out
	grep -q '"traceEvents"' fig8.trace.json
	grep -q '"ph":"X"' fig8.trace.json

# The evaluation engine must not perturb results: the same figure run
# on the Domains backend (and with the cache disabled) must be
# byte-identical to the sequential cached run.  fig10 rides along so a
# spectral (periodogram-heavy) workload crosses the pool too — its
# workspace arenas are domain-local and must not leak state between
# lanes.
engine-smoke:
	dune exec bin/repro.exe -- fig7 --fast --seed 42 --standard bluetooth --jobs 1 > /tmp/fig7-jobs1.out
	dune exec bin/repro.exe -- fig7 --fast --seed 42 --standard bluetooth --jobs 2 > /tmp/fig7-jobs2.out
	cmp /tmp/fig7-jobs1.out /tmp/fig7-jobs2.out
	dune exec bin/repro.exe -- fig7 --fast --seed 42 --standard bluetooth --jobs 4 --no-cache > /tmp/fig7-jobs4.out
	cmp /tmp/fig7-jobs1.out /tmp/fig7-jobs4.out
	dune exec bin/repro.exe -- fig10 --seed 42 --standard bluetooth --jobs 1 > /tmp/fig10-jobs1.out
	dune exec bin/repro.exe -- fig10 --seed 42 --standard bluetooth --jobs 4 > /tmp/fig10-jobs4.out
	cmp /tmp/fig10-jobs1.out /tmp/fig10-jobs4.out

# The sharded work-stealing scheduler must be invisible in the
# results: a full campaign report (JSON, covering the grid cells, flip
# probes and demos) must be byte-identical across the whole jobs
# sweep, including the 8-lane oversubscribed case, and fig7 must match
# at --jobs 8 (engine-smoke covers 1/2/4).
sched-smoke: build
	./_build/default/bin/repro.exe fig7 --fast --seed 42 --standard bluetooth --jobs 1 > /tmp/sched-fig7-jobs1.out
	./_build/default/bin/repro.exe fig7 --fast --seed 42 --standard bluetooth --jobs 8 > /tmp/sched-fig7-jobs8.out
	cmp /tmp/sched-fig7-jobs1.out /tmp/sched-fig7-jobs8.out
	./_build/default/bin/repro.exe faults --seed 42 --standard bluetooth --json --jobs 1 > /tmp/sched-jobs1.out
	./_build/default/bin/repro.exe faults --seed 42 --standard bluetooth --json --jobs 2 > /tmp/sched-jobs2.out
	cmp /tmp/sched-jobs1.out /tmp/sched-jobs2.out
	./_build/default/bin/repro.exe faults --seed 42 --standard bluetooth --json --jobs 4 > /tmp/sched-jobs4.out
	cmp /tmp/sched-jobs1.out /tmp/sched-jobs4.out
	./_build/default/bin/repro.exe faults --seed 42 --standard bluetooth --json --jobs 8 > /tmp/sched-jobs8.out
	cmp /tmp/sched-jobs1.out /tmp/sched-jobs8.out
	# Interrupt mid-stream: with the whole grid in flight the report
	# must still cut at exactly the k-th delivered cell, byte-identically
	# at every lane count (exit 130 = interrupted, as SIGINT would be).
	./_build/default/bin/repro.exe faults --seed 42 --standard bluetooth --json --interrupt-after 7 --jobs 1 > /tmp/sched-int-jobs1.out; test $$? -eq 130
	grep -q '"completed_cells":7' /tmp/sched-int-jobs1.out
	./_build/default/bin/repro.exe faults --seed 42 --standard bluetooth --json --interrupt-after 7 --jobs 4 > /tmp/sched-int-jobs4.out; test $$? -eq 130
	cmp /tmp/sched-int-jobs1.out /tmp/sched-int-jobs4.out
	./_build/default/bin/repro.exe faults --seed 42 --standard bluetooth --json --interrupt-after 7 --jobs 8 > /tmp/sched-int-jobs8.out; test $$? -eq 130
	cmp /tmp/sched-int-jobs1.out /tmp/sched-int-jobs8.out

# Crash-safe resume: journal a campaign to a checkpoint, SIGINT it
# mid-flight, resume from the journal, and require the resumed report
# to be byte-identical to an uninterrupted run.  The interrupted run
# may legitimately finish before the signal lands (exit 0); what must
# never happen is a corrupt journal or a drifted resumed report.
resume-smoke: build
	rm -f /tmp/resume.ckpt.jsonl
	dune exec bin/repro.exe -- faults --seed 42 --standard bluetooth --json > /tmp/resume-fresh.out
	./_build/default/bin/repro.exe faults --seed 42 --standard bluetooth --json \
	  --checkpoint /tmp/resume.ckpt.jsonl > /tmp/resume-interrupted.out & \
	pid=$$!; sleep 1; kill -INT $$pid 2>/dev/null || true; \
	wait $$pid; status=$$?; test $$status -eq 130 -o $$status -eq 0
	grep -q '"type":"cell"' /tmp/resume.ckpt.jsonl
	./_build/default/bin/repro.exe faults --seed 42 --standard bluetooth --json \
	  --checkpoint /tmp/resume.ckpt.jsonl --resume > /tmp/resume-resumed.out
	cmp /tmp/resume-fresh.out /tmp/resume-resumed.out

# Live monitoring, end to end: run a monitored campaign, scrape
# /metrics and /healthz mid-flight, and require a valid OpenMetrics
# document (terminated by "# EOF") showing nonzero engine activity,
# a healthz liveness object, and a run manifest with the engine hash.
monitor-smoke: build
	rm -f /tmp/monitor-manifest.json /tmp/monitor-scrape.txt /tmp/monitor-healthz.json
	./_build/default/bin/repro.exe faults --seed 42 --standard bluetooth --jobs 2 \
	  --metrics-port 9187 --manifest /tmp/monitor-manifest.json \
	  > /tmp/monitor-smoke.out 2>/tmp/monitor-smoke.err & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
	  curl -sf http://127.0.0.1:9187/metrics > /tmp/monitor-scrape.txt 2>/dev/null \
	    && grep -q '^repro_engine_evals_total [1-9]' /tmp/monitor-scrape.txt && break; \
	  sleep 0.2; \
	done; \
	curl -sf http://127.0.0.1:9187/healthz > /tmp/monitor-healthz.json; \
	wait $$pid
	grep -q '^# EOF' /tmp/monitor-scrape.txt
	grep -q '^repro_engine_evals_total [1-9]' /tmp/monitor-scrape.txt
	grep -q '^repro_campaign_cells_planned' /tmp/monitor-scrape.txt
	grep -q '"status":"ok"' /tmp/monitor-healthz.json
	grep -q '"engine_hash":"[0-9a-f]' /tmp/monitor-manifest.json
	grep -q 'heartbeat' /tmp/monitor-smoke.err

# CLI error paths must fail fast with the documented status.  Run
# under timeout so a reintroduced keep-alive (module-load domain,
# at_exit hook) turns into a visible kill, and require exit 2 for
# parse errors — NOT cmdliner's default 124, which collides with
# timeout(1)'s kill status and made parse errors read as hangs
# (ROADMAP: "CLI parse-error hang").
cli-smoke: build
	timeout 10 ./_build/default/bin/repro.exe nosuchcmd > /dev/null 2>&1; test $$? -eq 2
	timeout 10 ./_build/default/bin/repro.exe fig7 --no-such-flag > /dev/null 2>&1; test $$? -eq 2
	timeout 10 ./_build/default/bin/repro.exe --help > /dev/null 2>&1; test $$? -eq 0

# Steady-state allocation contract (DESIGN §15): the arena-converted
# kernels carry absolute minor-words budgets (lib/benchkit alloc
# budgets) checked by the bench harness itself — a reintroduced
# per-stage copy of even one record buffer fails the run with exit 4.
# Budgets are baseline-free; the --compare leg additionally holds the
# converted kernels to the tightened slack against BENCH_4.json.
alloc-smoke: build
	./_build/default/bench/main.exe --quick --fast --only engine: \
	  --json --out /tmp/alloc-smoke.json --compare BENCH_4.json \
	  > /tmp/alloc-smoke.out 2>&1 || { cat /tmp/alloc-smoke.out; exit 1; }
	grep -q 'budgets: PASS' /tmp/alloc-smoke.out
	grep -q 'gate: PASS' /tmp/alloc-smoke.out

# Perf trajectory: re-measure the Bechamel kernels and rewrite
# BENCH_4.json (full quota; commit the result).  The -fast variant is
# what CI runs on every push — shorter quota, same JSON schema.
bench-json:
	dune exec bench/main.exe -- --quick --json

bench-json-fast:
	dune exec bench/main.exe -- --quick --fast --json

# Regression gate: re-measure at the fast quota and compare against the
# committed baseline; any kernel blowing past its tolerance (or a
# kernel that silently stopped running) fails the build (exit 4).
bench-gate:
	dune exec bench/main.exe -- --quick --fast --json \
	  --out /tmp/bench-gate.json --compare BENCH_4.json

ci: build test cli-smoke faults-smoke profile-smoke telemetry-smoke engine-smoke sched-smoke resume-smoke monitor-smoke alloc-smoke bench-gate

clean:
	dune clean
