.PHONY: all build test faults-smoke ci clean

all: build

build:
	dune build @all

test:
	dune runtest

# End-to-end smoke of the stress campaign: must exit 0 with every
# campaign check passing (grep fails the target on any [FAIL] line).
faults-smoke:
	dune exec bin/repro.exe -- faults --seed 42 --standard bluetooth | tee /tmp/faults-smoke.out
	! grep -q '\[FAIL\]' /tmp/faults-smoke.out

ci: build test faults-smoke

clean:
	dune clean
