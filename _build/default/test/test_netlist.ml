(* Tests for the gate-level netlist engine and XOR logic locking. *)

let eval_unlocked circuit inputs = Netlist.Gate.eval circuit ~key:[||] inputs

let bits_of_int width v = Array.init width (fun i -> v land (1 lsl i) <> 0)

let int_of_bits bits =
  Array.to_list bits
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

(* ----------------------------------------------------------------- Gate *)

let test_gate_truth_tables () =
  let gate2 kind a b =
    let circuit =
      {
        Netlist.Gate.n_inputs = 2;
        n_key_inputs = 0;
        n_nets = 3;
        gates = [ { Netlist.Gate.kind; inputs = [ 0; 1 ]; output = 2 } ];
        outputs = [ 2 ];
      }
    in
    (eval_unlocked circuit [| a; b |]).(0)
  in
  Alcotest.(check bool) "and" true (gate2 Netlist.Gate.And true true);
  Alcotest.(check bool) "and f" false (gate2 Netlist.Gate.And true false);
  Alcotest.(check bool) "or" true (gate2 Netlist.Gate.Or false true);
  Alcotest.(check bool) "xor" true (gate2 Netlist.Gate.Xor true false);
  Alcotest.(check bool) "xor same" false (gate2 Netlist.Gate.Xor true true);
  Alcotest.(check bool) "xnor" true (gate2 Netlist.Gate.Xnor true true);
  Alcotest.(check bool) "nand" false (gate2 Netlist.Gate.Nand true true);
  Alcotest.(check bool) "nor" true (gate2 Netlist.Gate.Nor false false)

let test_gate_arity_check () =
  let circuit =
    {
      Netlist.Gate.n_inputs = 2;
      n_key_inputs = 0;
      n_nets = 3;
      gates = [ { Netlist.Gate.kind = Netlist.Gate.And; inputs = [ 0; 1 ]; output = 2 } ];
      outputs = [ 2 ];
    }
  in
  Alcotest.check_raises "wrong input arity" (Invalid_argument "Gate.eval: input arity") (fun () ->
      ignore (eval_unlocked circuit [| true |]))

let test_validate_catches_bad_topology () =
  let bad =
    {
      Netlist.Gate.n_inputs = 1;
      n_key_inputs = 0;
      n_nets = 3;
      gates =
        [
          (* Gate 2 reads net 1, which is only driven later. *)
          { Netlist.Gate.kind = Netlist.Gate.Not; inputs = [ 1 ]; output = 2 };
          { Netlist.Gate.kind = Netlist.Gate.Not; inputs = [ 0 ]; output = 1 };
        ];
      outputs = [ 2 ];
    }
  in
  Alcotest.(check bool) "topology violation detected" true (Result.is_error (Netlist.Gate.validate bad))

(* ------------------------------------------------------- Bench_circuits *)

let test_adder_correct () =
  let w = 8 in
  let adder = Netlist.Bench_circuits.ripple_adder w in
  Alcotest.(check bool) "well formed" true (Result.is_ok (Netlist.Gate.validate adder));
  List.iter
    (fun (a, b) ->
      let inputs = Array.append (bits_of_int w a) (bits_of_int w b) in
      let sum = int_of_bits (eval_unlocked adder inputs) in
      Alcotest.(check int) (Printf.sprintf "%d + %d" a b) (a + b) sum)
    [ (0, 0); (1, 1); (255, 255); (170, 85); (200, 56) ]

let test_decoder_one_hot () =
  let w = 3 in
  let dec = Netlist.Bench_circuits.decoder w in
  Alcotest.(check bool) "well formed" true (Result.is_ok (Netlist.Gate.validate dec));
  for v = 0 to 7 do
    let out = eval_unlocked dec (bits_of_int w v) in
    Array.iteri
      (fun i bit -> Alcotest.(check bool) (Printf.sprintf "line %d for %d" i v) (i = v) bit)
      out
  done

let test_random_logic_valid () =
  let rng = Sigkit.Rng.create 10 in
  for _ = 1 to 20 do
    let c = Netlist.Bench_circuits.random_logic rng ~n_inputs:6 ~n_gates:40 in
    Alcotest.(check bool) "random netlist well formed" true (Result.is_ok (Netlist.Gate.validate c))
  done

(* ------------------------------------------------------------ Logic_lock *)

let test_lock_correct_key_transparent () =
  let rng = Sigkit.Rng.create 3 in
  let locked = Netlist.Logic_lock.lock rng (Netlist.Bench_circuits.ripple_adder 8) ~key_bits:12 in
  Alcotest.(check bool) "locked netlist well formed" true
    (Result.is_ok (Netlist.Gate.validate locked.Netlist.Logic_lock.circuit));
  Alcotest.(check (float 1e-12)) "zero corruption under the correct key" 0.0
    (Netlist.Logic_lock.corruption locked ~key:locked.Netlist.Logic_lock.correct_key)

let test_lock_wrong_key_corrupts () =
  let rng = Sigkit.Rng.create 3 in
  let locked = Netlist.Logic_lock.lock rng (Netlist.Bench_circuits.ripple_adder 8) ~key_bits:12 in
  let wrong = Array.map not locked.Netlist.Logic_lock.correct_key in
  Alcotest.(check bool) "all-flipped key corrupts heavily" true
    (Netlist.Logic_lock.corruption locked ~key:wrong > 0.5)

let test_lock_single_bit_corrupts () =
  let rng = Sigkit.Rng.create 4 in
  let locked = Netlist.Logic_lock.lock rng (Netlist.Bench_circuits.ripple_adder 8) ~key_bits:8 in
  let one_off = Array.copy locked.Netlist.Logic_lock.correct_key in
  one_off.(3) <- not one_off.(3);
  Alcotest.(check bool) "one wrong bit already corrupts" true
    (Netlist.Logic_lock.corruption locked ~key:one_off > 0.0)

let test_removal_attack_restores () =
  let rng = Sigkit.Rng.create 5 in
  let original = Netlist.Bench_circuits.ripple_adder 6 in
  let locked = Netlist.Logic_lock.lock rng original ~key_bits:6 in
  let recovered = Netlist.Logic_lock.removal_attack locked in
  let probe = Sigkit.Rng.create 77 in
  for _ = 1 to 100 do
    let inputs = Netlist.Gate.random_inputs probe original in
    Alcotest.(check bool) "removal recovers the function" true
      (eval_unlocked recovered inputs = eval_unlocked original inputs)
  done

let test_oracle_attack_small_key () =
  let rng = Sigkit.Rng.create 6 in
  let locked = Netlist.Logic_lock.lock rng (Netlist.Bench_circuits.ripple_adder 6) ~key_bits:6 in
  match Netlist.Logic_lock.oracle_attack ~seed:9 ~budget:10_000 locked with
  | `Found (key, trials) ->
    Alcotest.(check (float 1e-12)) "found key is functionally correct" 0.0
      (Netlist.Logic_lock.corruption locked ~key);
    Alcotest.(check bool) "within budget" true (trials <= 10_000)
  | `Exhausted _ -> Alcotest.fail "6-bit key must fall to random search"

let test_lock_rejects_double_lock () =
  let rng = Sigkit.Rng.create 8 in
  let locked = Netlist.Logic_lock.lock rng (Netlist.Bench_circuits.ripple_adder 6) ~key_bits:4 in
  Alcotest.check_raises "cannot lock twice" (Invalid_argument "Logic_lock.lock: already locked")
    (fun () -> ignore (Netlist.Logic_lock.lock rng locked.Netlist.Logic_lock.circuit ~key_bits:4))

(* ------------------------------------------------------------ Properties *)

let prop_adder_matches_int_addition =
  QCheck.Test.make ~name:"ripple adder computes addition" ~count:200
    QCheck.(pair (int_range 0 65535) (int_range 0 65535))
    (fun (a, b) ->
      let w = 16 in
      let adder = Netlist.Bench_circuits.ripple_adder w in
      let inputs = Array.append (bits_of_int w a) (bits_of_int w b) in
      int_of_bits (eval_unlocked adder inputs) = a + b)

let prop_correct_key_always_transparent =
  QCheck.Test.make ~name:"correct key never corrupts" ~count:25
    QCheck.(pair small_int (int_range 2 16))
    (fun (seed, key_bits) ->
      let rng = Sigkit.Rng.create seed in
      let locked = Netlist.Logic_lock.lock rng (Netlist.Bench_circuits.ripple_adder 8) ~key_bits in
      Netlist.Logic_lock.corruption ~samples:64 locked ~key:locked.Netlist.Logic_lock.correct_key
      = 0.0)

let prop_random_logic_deterministic =
  QCheck.Test.make ~name:"netlist evaluation is deterministic" ~count:50 QCheck.small_int
    (fun seed ->
      let rng = Sigkit.Rng.create seed in
      let c = Netlist.Bench_circuits.random_logic rng ~n_inputs:5 ~n_gates:30 in
      let probe = Sigkit.Rng.create (seed + 1) in
      let inputs = Netlist.Gate.random_inputs probe c in
      eval_unlocked c inputs = eval_unlocked c inputs)

(* ------------------------------------------------------------ Sat_attack *)

let test_sat_attack_recovers_key () =
  let rng = Sigkit.Rng.create 5 in
  let locked = Netlist.Logic_lock.lock rng (Netlist.Bench_circuits.ripple_adder 8) ~key_bits:14 in
  let r = Netlist.Sat_attack.run ~seed:21 locked in
  (match r.Netlist.Sat_attack.found_key with
  | Some key ->
    Alcotest.(check (float 1e-12)) "recovered key is functionally correct" 0.0
      (Netlist.Logic_lock.corruption locked ~key)
  | None -> Alcotest.fail "SAT attack must break a 14-bit combinational lock");
  Alcotest.(check bool)
    (Printf.sprintf "few oracle queries (got %d)" r.Netlist.Sat_attack.oracle_queries)
    true
    (r.Netlist.Sat_attack.oracle_queries <= 64)

let test_sat_attack_prunes_to_equivalence () =
  let rng = Sigkit.Rng.create 6 in
  let locked = Netlist.Logic_lock.lock rng (Netlist.Bench_circuits.ripple_adder 6) ~key_bits:10 in
  let r = Netlist.Sat_attack.run ~seed:22 locked in
  Alcotest.(check bool) "candidate set collapses" true (r.Netlist.Sat_attack.candidates_left <= 4)

let test_sat_attack_rejects_large_keys () =
  let rng = Sigkit.Rng.create 7 in
  let locked = Netlist.Logic_lock.lock rng (Netlist.Bench_circuits.ripple_adder 16) ~key_bits:24 in
  Alcotest.check_raises "refuses 24-bit enumeration"
    (Invalid_argument "Sat_attack.run: key space too large to enumerate") (fun () ->
      ignore (Netlist.Sat_attack.run ~seed:23 locked))

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "netlist"
    [
      ( "gate",
        [
          Alcotest.test_case "truth tables" `Quick test_gate_truth_tables;
          Alcotest.test_case "arity checks" `Quick test_gate_arity_check;
          Alcotest.test_case "validate topology" `Quick test_validate_catches_bad_topology;
        ] );
      ( "bench circuits",
        [
          Alcotest.test_case "ripple adder" `Quick test_adder_correct;
          Alcotest.test_case "decoder one-hot" `Quick test_decoder_one_hot;
          Alcotest.test_case "random logic valid" `Quick test_random_logic_valid;
        ] );
      ( "sat attack",
        [
          Alcotest.test_case "recovers the key" `Quick test_sat_attack_recovers_key;
          Alcotest.test_case "prunes to equivalence" `Quick test_sat_attack_prunes_to_equivalence;
          Alcotest.test_case "rejects large key spaces" `Quick test_sat_attack_rejects_large_keys;
        ] );
      ( "logic lock",
        [
          Alcotest.test_case "correct key transparent" `Quick test_lock_correct_key_transparent;
          Alcotest.test_case "wrong key corrupts" `Quick test_lock_wrong_key_corrupts;
          Alcotest.test_case "single bit corrupts" `Quick test_lock_single_bit_corrupts;
          Alcotest.test_case "removal restores" `Quick test_removal_attack_restores;
          Alcotest.test_case "oracle attack small key" `Quick test_oracle_attack_small_key;
          Alcotest.test_case "double lock rejected" `Quick test_lock_rejects_double_lock;
        ] );
      ( "properties",
        qcheck
          [
            prop_adder_matches_int_addition;
            prop_correct_key_always_transparent;
            prop_random_logic_deterministic;
          ] );
    ]
