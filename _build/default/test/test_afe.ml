(* Tests for the second case study: the programmable baseband AFE. *)

let chip ?(seed = 9001) () = Circuit.Process.fabricate ~seed ()

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

(* --------------------------------------------------------------- Config *)

let test_config_roundtrip () =
  let c = Afe.Afe_config.nominal in
  Alcotest.(check bool) "roundtrip" true
    (Afe.Afe_config.equal c (Afe.Afe_config.of_bits (Afe.Afe_config.to_bits c)));
  Alcotest.(check int) "24 key bits" 24 Afe.Afe_config.key_bits;
  Alcotest.(check bool) "nominal valid" true (Result.is_ok (Afe.Afe_config.validate c))

let test_config_hamming () =
  let c = Afe.Afe_config.nominal in
  Alcotest.(check int) "self distance" 0 (Afe.Afe_config.hamming_distance c c);
  let c2 = { c with Afe.Afe_config.q_trim = c.Afe.Afe_config.q_trim lxor 1 } in
  Alcotest.(check int) "one bit" 1 (Afe.Afe_config.hamming_distance c c2)

(* ---------------------------------------------------------------- Chain *)

let test_cutoff_monotone_in_caps () =
  let afe = Afe.Afe_chain.create (chip ()) in
  let cutoff coarse = Afe.Afe_chain.cutoff_hz afe { Afe.Afe_config.nominal with cutoff_coarse = coarse } in
  Alcotest.(check bool) "more capacitance, lower cutoff" true
    (cutoff 4 > cutoff 32 && cutoff 32 > cutoff 63)

let test_pga_gain_table () =
  let afe = Afe.Afe_chain.create (chip ()) in
  let g8 = Afe.Afe_chain.pga_gain_db afe { Afe.Afe_config.nominal with pga_gain = 8 } in
  check_close ~eps:1.5 "code 8 is ~16 dB" 16.0 g8;
  let g12 = Afe.Afe_chain.pga_gain_db afe { Afe.Afe_config.nominal with pga_gain = 12 } in
  check_close ~eps:2.5 "2 dB per step" 8.0 (g12 -. g8)

let test_run_amplifies_and_filters () =
  let afe = Afe.Afe_chain.create (chip ()) in
  let config = Afe.Afe_config.nominal in
  let fs = Afe.Afe_chain.fs in
  let n = 4096 in
  let in_band = Sigkit.Waveform.coherent_frequency ~freq:100e3 ~fs ~n in
  let out_band = Sigkit.Waveform.coherent_frequency ~freq:4e6 ~fs ~n in
  let ac_rms samples =
    let tail = Array.sub samples (n / 2) (n / 2) in
    let mean = Sigkit.Waveform.mean tail in
    Sigkit.Waveform.rms (Array.map (fun v -> v -. mean) tail)
  in
  let gain_at freq =
    let x = Sigkit.Waveform.tone ~amplitude:5e-3 ~freq ~fs n in
    ac_rms (Afe.Afe_chain.run afe config x) /. Sigkit.Waveform.rms x
  in
  Alcotest.(check bool) "passband gain >> stopband gain" true
    (gain_at in_band > 4.0 *. gain_at out_band)

let test_measurement_fields () =
  let afe = Afe.Afe_chain.create (chip ()) in
  let m = Afe.Afe_chain.measure afe Afe.Afe_config.nominal in
  Alcotest.(check bool) "gain finite" true (Float.is_finite m.Afe.Afe_chain.gain_db);
  Alcotest.(check bool) "cutoff error non-negative" true (m.Afe.Afe_chain.cutoff_error_hz >= 0.0);
  Alcotest.(check bool) "THD positive dB" true (m.Afe.Afe_chain.thd_db > 0.0)

(* ----------------------------------------------------------- Calibration *)

let test_calibration_in_spec () =
  let afe = Afe.Afe_chain.create (chip ()) in
  let report = Afe.Afe_calibrate.run afe in
  Alcotest.(check bool) "calibration reaches spec" true report.Afe.Afe_calibrate.in_spec;
  Alcotest.(check bool) "bench runs counted" true (report.Afe.Afe_calibrate.bench_runs > 5)

let test_calibration_per_die () =
  let k1 = (Afe.Afe_calibrate.run (Afe.Afe_chain.create (chip ~seed:9001 ()))).Afe.Afe_calibrate.key in
  let k2 = (Afe.Afe_calibrate.run (Afe.Afe_chain.create (chip ~seed:9002 ()))).Afe.Afe_calibrate.key in
  Alcotest.(check bool) "keys differ between dice" false (Afe.Afe_config.equal k1 k2)

let test_random_keys_break () =
  let afe = Afe.Afe_chain.create (chip ()) in
  let rng = Sigkit.Rng.create 77 in
  let spec = Afe.Afe_chain.default_spec in
  let working =
    List.length
      (List.filter
         (fun _ ->
           Afe.Afe_chain.in_spec spec (Afe.Afe_chain.measure afe (Afe.Afe_config.random rng)))
         (List.init 10 Fun.id))
  in
  Alcotest.(check bool) "at most one lucky key in ten" true (working <= 1)

(* ------------------------------------------------------------ Properties *)

let prop_config_roundtrip =
  QCheck.Test.make ~name:"AFE config codec roundtrips" ~count:300
    QCheck.(int_range 0 ((1 lsl 24) - 1))
    (fun bits -> Afe.Afe_config.to_bits (Afe.Afe_config.of_bits bits) = bits)

let prop_random_valid =
  QCheck.Test.make ~name:"random AFE configs validate" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Sigkit.Rng.create seed in
      Result.is_ok (Afe.Afe_config.validate (Afe.Afe_config.random rng)))

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "afe"
    [
      ( "config",
        [
          Alcotest.test_case "roundtrip" `Quick test_config_roundtrip;
          Alcotest.test_case "hamming" `Quick test_config_hamming;
        ] );
      ( "chain",
        [
          Alcotest.test_case "cutoff monotone" `Quick test_cutoff_monotone_in_caps;
          Alcotest.test_case "PGA gain table" `Quick test_pga_gain_table;
          Alcotest.test_case "amplify and filter" `Quick test_run_amplifies_and_filters;
          Alcotest.test_case "measurement fields" `Slow test_measurement_fields;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "in spec" `Slow test_calibration_in_spec;
          Alcotest.test_case "per die" `Slow test_calibration_per_die;
          Alcotest.test_case "random keys break" `Slow test_random_keys_break;
        ] );
      ("properties", qcheck [ prop_config_roundtrip; prop_random_valid ]);
    ]
