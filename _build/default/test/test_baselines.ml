(* Tests for the prior-work baseline models and the comparison table. *)

let rng () = Sigkit.Rng.create 2718

let random_key r n = Array.init n (fun _ -> Sigkit.Rng.bool r)

(* ----------------------------------------------------- Bias_obfuscation *)

let test_bias_correct_key_clean () =
  let b = Baselines.Bias_obfuscation.create (rng ()) ~key_bits:10 in
  Alcotest.(check (float 1e-9)) "zero width error" 0.0
    (Baselines.Bias_obfuscation.width_error b ~key:(Baselines.Bias_obfuscation.correct_key b));
  Alcotest.(check (float 1e-9)) "zero penalty" 0.0
    (Baselines.Bias_obfuscation.performance_penalty_db b
       ~key:(Baselines.Bias_obfuscation.correct_key b))

let test_bias_wrong_keys_penalised () =
  let b = Baselines.Bias_obfuscation.create (rng ()) ~key_bits:10 in
  let r = Sigkit.Rng.create 5 in
  let penalties =
    List.init 20 (fun _ -> Baselines.Bias_obfuscation.performance_penalty_db b ~key:(random_key r 10))
  in
  let mean = List.fold_left ( +. ) 0.0 penalties /. 20.0 in
  Alcotest.(check bool) (Printf.sprintf "mean penalty > 5 dB (got %.1f)" mean) true (mean > 5.0)

let test_bias_key_multiplicity_enumerable () =
  let b = Baselines.Bias_obfuscation.create (rng ()) ~key_bits:10 in
  let within = Baselines.Bias_obfuscation.keys_within_tolerance b ~tolerance:0.02 in
  Alcotest.(check bool) "few keys within 2%" true (within >= 1 && within < 64)

(* ---------------------------------------------------------- Mirror_lock *)

let test_mirror_ratio () =
  let m = Baselines.Mirror_lock.create (rng ()) ~key_bits:12 ~ratio:4.0 in
  Alcotest.(check (float 1e-9)) "correct key hits the ratio" 0.0
    (Baselines.Mirror_lock.ratio_error m ~key:(Baselines.Mirror_lock.correct_key m));
  Alcotest.(check (float 1e-6)) "nominal current" 100.0
    (Baselines.Mirror_lock.bias_current_ua m ~key:(Baselines.Mirror_lock.correct_key m)
       ~nominal_ua:100.0)

let test_mirror_wrong_key () =
  let m = Baselines.Mirror_lock.create (rng ()) ~key_bits:12 ~ratio:4.0 in
  let zero_key = Array.make 12 false in
  Alcotest.(check bool) "all-off key misses the ratio" true
    (Baselines.Mirror_lock.ratio_error m ~key:zero_key > 0.5)

(* ------------------------------------------------------- Memristor_lock *)

let test_memristor_bias () =
  let m = Baselines.Memristor_lock.create (rng ()) ~rows:16 in
  Alcotest.(check (float 1e-6)) "correct key gives 300 mV" 300.0
    (Baselines.Memristor_lock.body_bias_mv m ~key:(Baselines.Memristor_lock.correct_key m));
  Alcotest.(check (float 1e-9)) "zero offset penalty" 0.0
    (Baselines.Memristor_lock.offset_penalty_mv m ~key:(Baselines.Memristor_lock.correct_key m))

(* ---------------------------------------------------------- Neural_bias *)

let test_neural_bias_training () =
  let r = rng () in
  let secret = [| 0.21; 0.83; 0.47; 0.64 |] in
  let target = [| 0.5; 0.75 |] in
  let net = Baselines.Neural_bias.train r ~key_voltages:secret ~target_biases:target in
  let secret_err = Baselines.Neural_bias.bias_error net secret in
  Alcotest.(check bool) (Printf.sprintf "secret key decodes (err %.4f)" secret_err) true
    (secret_err < 0.05);
  (* Random analog vectors decode to garbage. *)
  let probe = Sigkit.Rng.create 9 in
  let errs =
    List.init 10 (fun _ ->
        Baselines.Neural_bias.bias_error net (Array.init 4 (fun _ -> Sigkit.Rng.float probe)))
  in
  let mean = List.fold_left ( +. ) 0.0 errs /. 10.0 in
  Alcotest.(check bool) (Printf.sprintf "wrong keys mis-bias (mean err %.3f)" mean) true
    (mean > 4.0 *. secret_err)

(* -------------------------------------------------------------- Mixlock *)

let test_mixlock_corruption () =
  let m = Baselines.Mixlock.create (rng ()) in
  Alcotest.(check (float 1e-12)) "correct key clean" 0.0
    (Baselines.Mixlock.output_error_rate m ~key:(Baselines.Mixlock.correct_key m));
  let wrong = Array.map not (Baselines.Mixlock.correct_key m) in
  Alcotest.(check bool) "wrong key corrupts the arithmetic" true
    (Baselines.Mixlock.output_error_rate m ~key:wrong > 0.3);
  Alcotest.(check bool) "SNR penalty follows" true
    (Baselines.Mixlock.equivalent_snr_penalty_db m ~key:wrong > 20.0);
  Alcotest.(check (float 1e-9)) "no penalty when clean" 0.0
    (Baselines.Mixlock.equivalent_snr_penalty_db m ~key:(Baselines.Mixlock.correct_key m))

let test_mixlock_removal_demo () =
  let m = Baselines.Mixlock.create (rng ()) in
  let recovered = Baselines.Mixlock.removal_demo m in
  Alcotest.(check bool) "removal returns an unlocked netlist" true
    (recovered.Netlist.Gate.n_key_inputs = 0)

(* ------------------------------------------------------------ Calib_lock *)

let test_calib_lock () =
  let c = Baselines.Calib_lock.create (rng ()) in
  let true_key = Rfchain.Config.nominal in
  let clean =
    Baselines.Calib_lock.corrupted_calibration c ~key:(Baselines.Calib_lock.correct_key c) ~true_key
  in
  Alcotest.(check bool) "correct key preserves calibration" true
    (Rfchain.Config.equal clean true_key);
  let wrong = Array.map not (Baselines.Calib_lock.correct_key c) in
  let corrupted = Baselines.Calib_lock.corrupted_calibration c ~key:wrong ~true_key in
  Alcotest.(check bool) "wrong key corrupts the tuning word" true
    (Rfchain.Config.hamming_distance corrupted true_key > 0);
  Alcotest.(check bool) "error-bit accounting" true
    (Baselines.Calib_lock.tuning_error_bits c ~key:wrong > 0)

(* -------------------------------------------------------------- Compare *)

let test_compare_inventory () =
  Alcotest.(check int) "seven techniques" 7 (List.length Baselines.Compare.all);
  Alcotest.(check bool) "proposed scheme is last and non-intrusive" true
    (let last = List.nth Baselines.Compare.all 6 in
     last.Baselines.Technique.lock_site = Baselines.Technique.Programmable_fabric
     && (not last.Baselines.Technique.design_intrusive)
     && last.Baselines.Technique.area_overhead_pct = 0.0)

let test_compare_probes () =
  let probes = Baselines.Compare.corruption_probes () in
  Alcotest.(check int) "five behavioural probes" 5 (List.length probes);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p.Baselines.Compare.technique ^ ": correct key clean")
        true
        (p.Baselines.Compare.zero_key_penalty_db < 1.0);
      Alcotest.(check bool)
        (p.Baselines.Compare.technique ^ ": wrong keys penalised")
        true
        (p.Baselines.Compare.wrong_key_penalty_db > 5.0))
    probes

let test_removal_analysis () =
  let removable =
    List.filter
      (fun (_, v) -> match v with Baselines.Technique.Removable _ -> true | _ -> false)
      (Baselines.Compare.removal_analysis ())
  in
  Alcotest.(check int) "four removable prior schemes" 4 (List.length removable)

(* ------------------------------------------------------------ Properties *)

let prop_mirror_error_nonneg =
  QCheck.Test.make ~name:"mirror ratio error is non-negative" ~count:100
    QCheck.(pair small_int (int_range 0 4095))
    (fun (seed, key_int) ->
      let m = Baselines.Mirror_lock.create (Sigkit.Rng.create seed) ~key_bits:12 ~ratio:4.0 in
      let key = Array.init 12 (fun i -> key_int land (1 lsl i) <> 0) in
      Baselines.Mirror_lock.ratio_error m ~key >= 0.0)

let prop_bias_penalty_bounded =
  QCheck.Test.make ~name:"bias penalty saturates at 60 dB" ~count:100
    QCheck.(pair small_int (int_range 0 1023))
    (fun (seed, key_int) ->
      let b = Baselines.Bias_obfuscation.create (Sigkit.Rng.create seed) ~key_bits:10 in
      let key = Array.init 10 (fun i -> key_int land (1 lsl i) <> 0) in
      let p = Baselines.Bias_obfuscation.performance_penalty_db b ~key in
      p >= 0.0 && p <= 60.0)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "baselines"
    [
      ( "bias obfuscation",
        [
          Alcotest.test_case "correct key clean" `Quick test_bias_correct_key_clean;
          Alcotest.test_case "wrong keys penalised" `Quick test_bias_wrong_keys_penalised;
          Alcotest.test_case "key multiplicity" `Quick test_bias_key_multiplicity_enumerable;
        ] );
      ( "mirror lock",
        [
          Alcotest.test_case "ratio" `Quick test_mirror_ratio;
          Alcotest.test_case "wrong key" `Quick test_mirror_wrong_key;
        ] );
      ("memristor lock", [ Alcotest.test_case "body bias" `Quick test_memristor_bias ]);
      ("neural bias", [ Alcotest.test_case "training separates keys" `Slow test_neural_bias_training ]);
      ( "mixlock",
        [
          Alcotest.test_case "corruption" `Quick test_mixlock_corruption;
          Alcotest.test_case "removal demo" `Quick test_mixlock_removal_demo;
        ] );
      ("calibration lock", [ Alcotest.test_case "corrupted calibration" `Quick test_calib_lock ]);
      ( "comparison",
        [
          Alcotest.test_case "inventory" `Quick test_compare_inventory;
          Alcotest.test_case "corruption probes" `Quick test_compare_probes;
          Alcotest.test_case "removal analysis" `Quick test_removal_analysis;
        ] );
      ("properties", qcheck [ prop_mirror_error_nonneg; prop_bias_penalty_bounded ]);
    ]
