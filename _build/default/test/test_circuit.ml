(* Unit and property tests for the behavioural circuit substrate. *)

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let chip ?(seed = 42) () = Circuit.Process.fabricate ~seed ()

(* -------------------------------------------------------------- Process *)

let test_process_deterministic () =
  let a = chip () and b = chip () in
  let pa = Circuit.Process.parameter a ~name:"x" ~nominal:1.0 ~sigma_pct:5.0 in
  let pb = Circuit.Process.parameter b ~name:"x" ~nominal:1.0 ~sigma_pct:5.0 in
  check_close "same chip, same parameter" pa pb;
  check_close "repeated read is stable" pa
    (Circuit.Process.parameter a ~name:"x" ~nominal:1.0 ~sigma_pct:5.0)

let test_process_chips_differ () =
  let a = chip ~seed:1 () and b = chip ~seed:2 () in
  let pa = Circuit.Process.parameter a ~name:"x" ~nominal:1.0 ~sigma_pct:5.0 in
  let pb = Circuit.Process.parameter b ~name:"x" ~nominal:1.0 ~sigma_pct:5.0 in
  Alcotest.(check bool) "different dice differ" true (pa <> pb)

let test_process_names_differ () =
  let c = chip () in
  let pa = Circuit.Process.parameter c ~name:"a" ~nominal:1.0 ~sigma_pct:5.0 in
  let pb = Circuit.Process.parameter c ~name:"b" ~nominal:1.0 ~sigma_pct:5.0 in
  Alcotest.(check bool) "different parameters differ" true (pa <> pb)

let test_process_sigma_zero () =
  let c = Circuit.Process.fabricate ~lot_sigma_scale:0.0 ~seed:5 () in
  check_close "ideal process returns nominal" 2.5
    (Circuit.Process.parameter c ~name:"y" ~nominal:2.5 ~sigma_pct:10.0);
  check_close "ideal offset is zero" 0.0 (Circuit.Process.offset c ~name:"z" ~sigma:0.1);
  Alcotest.(check bool) "variation flag" false (Circuit.Process.variation_enabled c)

let test_process_spread () =
  (* Across many dice the parameter spread matches the requested sigma. *)
  let n = 2000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for seed = 1 to n do
    let c = chip ~seed () in
    let p = Circuit.Process.parameter c ~name:"spread" ~nominal:1.0 ~sigma_pct:5.0 in
    sum := !sum +. p;
    sum2 := !sum2 +. (p *. p)
  done;
  let mean = !sum /. float_of_int n in
  let sigma = sqrt ((!sum2 /. float_of_int n) -. (mean *. mean)) in
  check_close ~eps:0.005 "mean is nominal" 1.0 mean;
  check_close ~eps:0.005 "sigma is 5%" 0.05 sigma

let test_noise_stream_reproducible () =
  let c = chip () in
  let s1 = Circuit.Process.noise_stream c ~name:"n" in
  let s2 = Circuit.Process.noise_stream c ~name:"n" in
  Alcotest.(check int64) "stream restarts at origin" (Sigkit.Rng.bits64 s1) (Sigkit.Rng.bits64 s2)

(* ------------------------------------------------------------ Cap_array *)

(* Binary-weighted arrays are monotone up to mismatch-limited DNL: a
   major-carry step may reverse by a few sigma of the MSB mismatch, but
   never by more, and the global trend must hold. *)
let test_cap_binary_monotonic () =
  let arr =
    Circuit.Cap_array.create (chip ()) ~name:"c" ~bits:8 ~unit_cap:70e-15 ~mismatch_sigma_pct:1.0
  in
  let msb_sigma = 0.01 *. 128.0 *. 70e-15 in
  let dnl_bound = 6.0 *. msb_sigma in
  let prev = ref (Circuit.Cap_array.capacitance arr 0) in
  for code = 1 to Circuit.Cap_array.max_code arr do
    let c = Circuit.Cap_array.capacitance arr code in
    if c < !prev -. dnl_bound then Alcotest.failf "DNL beyond mismatch bound at code %d" code;
    prev := c
  done;
  Alcotest.(check bool) "global trend" true
    (Circuit.Cap_array.capacitance arr 255 > Circuit.Cap_array.capacitance arr 0)

let test_cap_binary_unique () =
  let arr =
    Circuit.Cap_array.create (chip ()) ~name:"c" ~bits:8 ~unit_cap:70e-15 ~mismatch_sigma_pct:1.0
  in
  let target = Circuit.Cap_array.capacitance arr 131 in
  Alcotest.(check int) "binary-weighted code is unique" 1
    (Circuit.Cap_array.code_count_for_capacitance arr ~target ~tolerance:30e-15)

let test_cap_unit_switched_multiplicity () =
  let arr =
    Circuit.Cap_array.create ~coding:Circuit.Cap_array.Unit_switched (chip ()) ~name:"u" ~bits:8
      ~unit_cap:70e-15 ~mismatch_sigma_pct:1.0
  in
  let target = Circuit.Cap_array.capacitance arr 0b00001111 in
  let count = Circuit.Cap_array.code_count_for_capacitance arr ~target ~tolerance:35e-15 in
  (* Any 4-of-8 subset hits the same value: C(8,4) = 70 codes. *)
  Alcotest.(check bool) "unit-switched multiplicity" true (count >= 50)

let test_cap_range_check () =
  let arr =
    Circuit.Cap_array.create (chip ()) ~name:"c" ~bits:4 ~unit_cap:1e-15 ~mismatch_sigma_pct:0.0
  in
  Alcotest.check_raises "negative code" (Invalid_argument "Cap_array.capacitance: code out of range")
    (fun () -> ignore (Circuit.Cap_array.capacitance arr (-1)))

(* ------------------------------------------------------------ Resonator *)

let test_resonator_frequency () =
  let fs = 12e9 in
  List.iter
    (fun f_res ->
      let theta = 2.0 *. Float.pi *. f_res /. fs in
      let res = Circuit.Resonator.create ~theta ~r:1.02 () in
      match Circuit.Resonator.oscillation_frequency res ~fs ~n:8192 with
      | Some f -> check_close ~eps:1e6 "oscillation frequency" f_res f
      | None -> Alcotest.fail "should oscillate at r > 1")
    [ 1.5e9; 2.4e9; 3.0e9 ]

let test_resonator_damped_silent () =
  let res = Circuit.Resonator.create ~theta:(Float.pi /. 2.0) ~r:0.99 () in
  Alcotest.(check bool) "damped tank does not oscillate" true
    (Circuit.Resonator.oscillation_frequency res ~fs:12e9 ~n:8192 = None)

let test_resonator_theta_of_lc () =
  (* 0.5 nH with 5.63 pF resonates at 3 GHz. *)
  let theta = Circuit.Resonator.theta_of_lc ~l:0.5e-9 ~c:5.63e-12 ~fs:12e9 in
  check_close ~eps:0.01 "theta for 3 GHz at 12 GS/s" (Float.pi /. 2.0) theta

let test_resonator_gain_peaks_at_resonance () =
  let fs = 12e9 in
  let theta = Float.pi /. 2.0 in
  let gain freq =
    let res = Circuit.Resonator.create ~theta ~r:0.98 () in
    let x = Sigkit.Waveform.tone ~amplitude:0.01 ~freq ~fs 4096 in
    let y = Circuit.Resonator.run res x in
    Sigkit.Waveform.rms (Array.sub y 2048 2048) /. Sigkit.Waveform.rms x
  in
  let on_res = gain 3.0e9 and off_res = gain 2.0e9 in
  Alcotest.(check bool) "resonant gain dominates" true (on_res > 4.0 *. off_res)

let test_resonator_step_split () =
  (* output/feed must compose to exactly step. *)
  let mk () = Circuit.Resonator.create ~theta:1.0 ~r:0.9 () in
  let a = mk () and b = mk () in
  let rng = Sigkit.Rng.create 4 in
  for _ = 1 to 100 do
    let x = Sigkit.Rng.gaussian rng in
    let ya = Circuit.Resonator.step a x in
    let yb = Circuit.Resonator.output b in
    Circuit.Resonator.feed b x;
    check_close "split API equals step" ya yb
  done

(* ------------------------------------------------------------ Nonlinear *)

let test_nonlinear_gain () =
  let stage = Circuit.Nonlinear.create ~gain:10.0 ~iip3_dbm:20.0 () in
  let y = Circuit.Nonlinear.apply stage 1e-4 in
  check_close ~eps:1e-6 "small-signal gain" 1e-3 y

let test_nonlinear_im3_level () =
  (* Two tones at P_in give IM3 at 2(P_in - IIP3) dBc. *)
  let fs = 1e6 and n = 8192 in
  let iip3 = 0.0 and p_in = -20.0 in
  let stage = Circuit.Nonlinear.create ~gain:1.0 ~iip3_dbm:iip3 ~rail:100.0 () in
  let f1 = Sigkit.Waveform.coherent_frequency ~freq:100e3 ~fs ~n in
  let f2 = Sigkit.Waveform.coherent_frequency ~freq:110e3 ~fs ~n in
  let x = Sigkit.Waveform.two_tone_dbm ~p_dbm:p_in ~f1 ~f2 ~fs n in
  let y = Circuit.Nonlinear.run stage x in
  let spec = Sigkit.Spectrum.periodogram ~fs y in
  let fund = Sigkit.Spectrum.tone_power spec ~freq:f2 in
  let im3 = Sigkit.Spectrum.tone_power spec ~freq:((2.0 *. f2) -. f1) in
  let im3_dbc = Sigkit.Decibel.db_of_power_ratio (im3 /. fund) in
  check_close ~eps:1.5 "IM3 level" (2.0 *. (p_in -. iip3)) im3_dbc

let test_nonlinear_rail () =
  let stage = Circuit.Nonlinear.create ~gain:1.0 ~iip3_dbm:100.0 ~rail:1.0 () in
  Alcotest.(check bool) "rail saturates" true (Circuit.Nonlinear.apply stage 100.0 <= 1.0)

let test_nonlinear_linear () =
  let stage = Circuit.Nonlinear.linear ~gain:3.0 in
  check_close "linear stage" 30.0 (Circuit.Nonlinear.apply stage 10.0)

(* ----------------------------------------------------------- Comparator *)

let test_comparator_clocked () =
  let c = Circuit.Comparator.create () in
  check_close "positive" 1.0 (Circuit.Comparator.step c 0.3);
  check_close "negative" (-1.0) (Circuit.Comparator.step c (-0.3))

let test_comparator_offset () =
  let c = Circuit.Comparator.create ~offset:0.5 () in
  check_close "offset flips decision" 1.0 (Circuit.Comparator.step c (-0.3))

let test_comparator_hysteresis () =
  let c = Circuit.Comparator.create ~hysteresis:0.2 () in
  let _ = Circuit.Comparator.step c 1.0 in
  (* Inside the dead zone the previous decision holds. *)
  check_close "dead zone holds" 1.0 (Circuit.Comparator.step c (-0.1));
  check_close "outside flips" (-1.0) (Circuit.Comparator.step c (-0.3))

let test_comparator_buffer () =
  let c = Circuit.Comparator.create ~mode:Circuit.Comparator.Buffer () in
  (* DC passes with the buffer gain once the low-pass settles. *)
  let v = ref 0.0 in
  for _ = 1 to 200 do
    v := Circuit.Comparator.step c 1.0
  done;
  check_close ~eps:1e-3 "buffer DC gain" Circuit.Comparator.buffer_gain !v;
  for _ = 1 to 500 do
    v := Circuit.Comparator.step c 100.0
  done;
  check_close "buffer clips" Circuit.Comparator.buffer_clip !v

(* ------------------------------------------------------------------ Dac *)

let test_dac_levels () =
  let d = Circuit.Dac.create (chip ()) ~gain:1.0 in
  let pos = Circuit.Dac.convert d 1.0 and neg = Circuit.Dac.convert d (-1.0) in
  Alcotest.(check bool) "signs" true (pos > 0.0 && neg < 0.0);
  check_close ~eps:0.02 "levels near unity" 1.0 pos;
  check_close ~eps:0.02 "levels near unity" 1.0 (-.neg)

(* --------------------------------------------------------- Noise_source *)

let test_noise_sigma () =
  let src = Circuit.Noise_source.create (chip ()) ~name:"n" ~sigma:0.1 in
  let samples = Circuit.Noise_source.run src 50_000 in
  check_close ~eps:0.005 "sample sigma" 0.1 (Sigkit.Waveform.rms samples)

let test_noise_figure_floor () =
  (* NF 0 dB over 6 GHz into 50 ohm: sqrt(kTB * R) ~ 35 uV. *)
  let src = Circuit.Noise_source.of_noise_figure (chip ()) ~name:"nf" ~nf_db:0.0 ~fs:12e9 in
  check_close ~eps:2e-6 "kTB floor" 35e-6 (Circuit.Noise_source.sigma src)

(* ---------------------------------------------------------------- Aging *)

let test_aging_accumulates () =
  let c = chip () in
  Alcotest.(check (float 1e-12)) "fresh silicon" 0.0 (Circuit.Process.age_hours c);
  let aged = Circuit.Process.age (Circuit.Process.age c ~hours:100.0) ~hours:50.0 in
  Alcotest.(check (float 1e-9)) "hours accumulate" 150.0 (Circuit.Process.age_hours aged);
  Alcotest.(check int) "identity preserved" (Circuit.Process.seed c) (Circuit.Process.seed aged)

let test_aging_drifts_parameters () =
  let c = chip () in
  let fresh = Circuit.Process.parameter c ~name:"drifter" ~nominal:1.0 ~sigma_pct:5.0 in
  let old_chip = Circuit.Process.age c ~hours:1e5 in
  let old_value = Circuit.Process.parameter old_chip ~name:"drifter" ~nominal:1.0 ~sigma_pct:5.0 in
  Alcotest.(check bool) "a decade of use moves the parameter" true
    (Float.abs (old_value -. fresh) > 1e-4);
  (* Drift grows with age. *)
  let mid = Circuit.Process.parameter (Circuit.Process.age c ~hours:1e3) ~name:"drifter"
      ~nominal:1.0 ~sigma_pct:5.0 in
  Alcotest.(check bool) "monotone drift magnitude" true
    (Float.abs (old_value -. fresh) > Float.abs (mid -. fresh))

let test_aging_preserves_entropy () =
  (* The PUF must not care about use: same die, same noise streams. *)
  let c = chip () in
  let aged = Circuit.Process.age c ~hours:1e5 in
  let a = Circuit.Process.noise_stream c ~name:"id" in
  let b = Circuit.Process.noise_stream aged ~name:"id" in
  Alcotest.(check int64) "noise stream unchanged by age" (Sigkit.Rng.bits64 a) (Sigkit.Rng.bits64 b)

let test_aging_rejects_negative () =
  Alcotest.check_raises "negative hours" (Invalid_argument "Process.age: negative hours")
    (fun () -> ignore (Circuit.Process.age (chip ()) ~hours:(-1.0)))

(* ------------------------------------------------------------ Properties *)

let prop_cap_monotone =
  QCheck.Test.make ~name:"binary cap arrays are monotone up to MSB mismatch" ~count:30
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, bits) ->
      let arr =
        Circuit.Cap_array.create (chip ~seed ()) ~name:"p" ~bits ~unit_cap:50e-15
          ~mismatch_sigma_pct:1.0
      in
      (* Allowed reversal: a few sigma of the largest branch mismatch. *)
      let dnl_bound = 6.0 *. 0.01 *. float_of_int (1 lsl (bits - 1)) *. 50e-15 in
      let ok = ref true in
      for code = 1 to Circuit.Cap_array.max_code arr do
        if
          Circuit.Cap_array.capacitance arr code
          < Circuit.Cap_array.capacitance arr (code - 1) -. dnl_bound
        then ok := false
      done;
      !ok)

let prop_comparator_output_bounded =
  QCheck.Test.make ~name:"comparator output in [-1, 1]" ~count:200
    QCheck.(pair (float_range (-100.) 100.) bool)
    (fun (x, buffered) ->
      let mode = if buffered then Circuit.Comparator.Buffer else Circuit.Comparator.Clocked in
      let c = Circuit.Comparator.create ~mode () in
      let v = Circuit.Comparator.step c x in
      v >= -1.0 && v <= 1.0)

let prop_nonlinear_odd_symmetry =
  QCheck.Test.make ~name:"a2=0 stages are odd-symmetric" ~count:100
    QCheck.(float_range (-1.) 1.)
    (fun x ->
      let stage = Circuit.Nonlinear.create ~gain:2.0 ~iip3_dbm:10.0 () in
      Float.abs (Circuit.Nonlinear.apply stage x +. Circuit.Nonlinear.apply stage (-.x)) < 1e-9)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "circuit"
    [
      ( "process",
        [
          Alcotest.test_case "deterministic" `Quick test_process_deterministic;
          Alcotest.test_case "chips differ" `Quick test_process_chips_differ;
          Alcotest.test_case "names differ" `Quick test_process_names_differ;
          Alcotest.test_case "sigma zero" `Quick test_process_sigma_zero;
          Alcotest.test_case "ensemble spread" `Slow test_process_spread;
          Alcotest.test_case "noise stream" `Quick test_noise_stream_reproducible;
        ] );
      ( "cap_array",
        [
          Alcotest.test_case "monotone" `Quick test_cap_binary_monotonic;
          Alcotest.test_case "unique code" `Quick test_cap_binary_unique;
          Alcotest.test_case "unit-switched multiplicity" `Quick test_cap_unit_switched_multiplicity;
          Alcotest.test_case "range check" `Quick test_cap_range_check;
        ] );
      ( "resonator",
        [
          Alcotest.test_case "oscillation frequency" `Quick test_resonator_frequency;
          Alcotest.test_case "damped is silent" `Quick test_resonator_damped_silent;
          Alcotest.test_case "theta of LC" `Quick test_resonator_theta_of_lc;
          Alcotest.test_case "resonant gain" `Quick test_resonator_gain_peaks_at_resonance;
          Alcotest.test_case "split API" `Quick test_resonator_step_split;
        ] );
      ( "nonlinear",
        [
          Alcotest.test_case "small-signal gain" `Quick test_nonlinear_gain;
          Alcotest.test_case "IM3 level" `Quick test_nonlinear_im3_level;
          Alcotest.test_case "rail" `Quick test_nonlinear_rail;
          Alcotest.test_case "linear stage" `Quick test_nonlinear_linear;
        ] );
      ( "comparator",
        [
          Alcotest.test_case "clocked" `Quick test_comparator_clocked;
          Alcotest.test_case "offset" `Quick test_comparator_offset;
          Alcotest.test_case "hysteresis" `Quick test_comparator_hysteresis;
          Alcotest.test_case "buffer mode" `Quick test_comparator_buffer;
        ] );
      ("dac", [ Alcotest.test_case "levels" `Quick test_dac_levels ]);
      ( "noise",
        [
          Alcotest.test_case "sigma" `Quick test_noise_sigma;
          Alcotest.test_case "noise figure floor" `Quick test_noise_figure_floor;
        ] );
      ( "aging",
        [
          Alcotest.test_case "accumulates" `Quick test_aging_accumulates;
          Alcotest.test_case "drifts parameters" `Quick test_aging_drifts_parameters;
          Alcotest.test_case "preserves entropy" `Quick test_aging_preserves_entropy;
          Alcotest.test_case "rejects negative" `Quick test_aging_rejects_negative;
        ] );
      ( "properties",
        qcheck [ prop_cap_monotone; prop_comparator_output_bounded; prop_nonlinear_odd_symmetry ] );
    ]
