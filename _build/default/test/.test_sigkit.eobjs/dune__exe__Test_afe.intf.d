test/test_afe.mli:
