test/test_circuit.ml: Alcotest Array Circuit Float List QCheck QCheck_alcotest Sigkit
