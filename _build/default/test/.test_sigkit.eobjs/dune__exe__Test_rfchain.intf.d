test/test_rfchain.mli:
