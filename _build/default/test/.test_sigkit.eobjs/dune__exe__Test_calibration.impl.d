test/test_calibration.ml: Alcotest Array Calibration Circuit Float List Metrics Netlist Printf Rfchain Sigkit String
