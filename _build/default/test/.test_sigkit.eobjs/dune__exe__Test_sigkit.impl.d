test/test_sigkit.ml: Alcotest Array Float Fun Gen List QCheck QCheck_alcotest Sigkit
