test/test_afe.ml: Afe Alcotest Array Circuit Float Fun List QCheck QCheck_alcotest Result Sigkit
