test/test_sigkit.mli:
