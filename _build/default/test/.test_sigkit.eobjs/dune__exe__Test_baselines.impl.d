test/test_baselines.ml: Alcotest Array Baselines List Netlist Printf QCheck QCheck_alcotest Rfchain Sigkit
