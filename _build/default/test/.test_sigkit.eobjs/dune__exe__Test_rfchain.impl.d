test/test_rfchain.ml: Alcotest Array Circuit Float Gen List Metrics Printf QCheck QCheck_alcotest Result Rfchain Sigkit
