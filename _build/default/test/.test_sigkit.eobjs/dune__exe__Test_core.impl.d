test/test_core.ml: Alcotest Calibration Circuit Core Int64 List Metrics Printf QCheck QCheck_alcotest Result Rfchain String
