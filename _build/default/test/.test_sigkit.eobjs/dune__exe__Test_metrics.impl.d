test/test_metrics.ml: Alcotest Array Circuit Float List Metrics Printf QCheck QCheck_alcotest Rfchain Sigkit
