test/test_netlist.ml: Alcotest Array List Netlist Printf QCheck QCheck_alcotest Result Sigkit
