test/test_attacks.ml: Alcotest Attacks Calibration Circuit Core Float List Metrics Printf Rfchain String
