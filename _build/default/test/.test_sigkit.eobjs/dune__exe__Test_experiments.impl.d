test/test_experiments.ml: Alcotest Calibration Core Experiments Lazy List Rfchain String
