(* Integration tests: the experiment layer reproduces the paper's
   qualitative claims end to end (reduced ensemble sizes for speed; the
   full-size runs live in bin/repro and bench/main). *)

let ctx = lazy (Experiments.Context.create ~fast:true ())

let assert_checks name checks =
  List.iter
    (fun (label, ok) -> Alcotest.(check bool) (name ^ ": " ^ label) true ok)
    checks

let test_context_calibrates () =
  let c = Lazy.force ctx in
  Alcotest.(check bool) "calibration met spec" true
    (c.Experiments.Context.calibration.Calibration.Calibrate.snr_mod_db
    >= c.Experiments.Context.standard.Rfchain.Standards.min_snr_db)

let test_deceptive_example_shape () =
  let c = Lazy.force ctx in
  let d = Experiments.Context.deceptive_example c in
  Alcotest.(check bool) "open loop + buffer" true (Core.Lock_eval.is_open_loop_passthrough d);
  Alcotest.(check bool) "input enabled" true d.Rfchain.Config.gmin_enable

let test_ensemble_deterministic () =
  let c = Lazy.force ctx in
  let a = Experiments.Context.invalid_ensemble ~n:5 c in
  let b = Experiments.Context.invalid_ensemble ~n:5 c in
  List.iter2
    (fun x y -> Alcotest.(check bool) "same ensemble" true (Rfchain.Config.equal x y))
    a b

let test_fig7_fig9_reduced () =
  let c = Lazy.force ctx in
  let t = Experiments.Fig7_fig9.run ~n_invalid:12 c in
  (* With a reduced ensemble only the correct-key claims and the margin
     are meaningful. *)
  let s = t.Experiments.Fig7_fig9.summary in
  Alcotest.(check bool) "correct above 40 dB" true (s.Core.Lock_eval.correct_snr_mod_db > 40.0);
  Alcotest.(check bool) "margin over best invalid" true (s.Core.Lock_eval.margin_mod_db > 5.0);
  Alcotest.(check int) "ensemble size" 12 (List.length t.Experiments.Fig7_fig9.eval.Core.Lock_eval.invalid)

let test_fig8 () =
  let c = Lazy.force ctx in
  assert_checks "fig8" (Experiments.Fig8.checks (Experiments.Fig8.run c))

let test_fig10 () =
  let c = Lazy.force ctx in
  assert_checks "fig10" (Experiments.Fig10.checks (Experiments.Fig10.run c))

let test_fig12_reduced () =
  let c = Lazy.force ctx in
  let t = Experiments.Fig12.run ~powers:[ -25.0 ] c in
  Alcotest.(check int) "one point" 1 (List.length t.Experiments.Fig12.points);
  match t.Experiments.Fig12.points with
  | [ p ] ->
    Alcotest.(check bool) "correct above locked" true
      (p.Experiments.Fig12.sfdr_correct_db > p.Experiments.Fig12.sfdr_deceptive_db)
  | _ -> Alcotest.fail "unexpected point count"

let test_security_reduced () =
  let c = Lazy.force ctx in
  let t = Experiments.Security_table.run ~budget:25 c in
  Alcotest.(check int) "five empirical attacks" 5 (List.length t.Experiments.Security_table.empirical);
  Alcotest.(check int) "unique binary-weighted code" 1 t.Experiments.Security_table.cap_unique_codes;
  Alcotest.(check bool) "unit-switched multiplicity" true
    (t.Experiments.Security_table.cap_unit_switched_codes > 1);
  Alcotest.(check int) "42 bits left after tap" 42 t.Experiments.Security_table.remaining_bits_after_tap

let test_compare_table () =
  let c = Lazy.force ctx in
  assert_checks "compare" (Experiments.Compare_table.checks (Experiments.Compare_table.run c))

let test_onchip_lock_reduced () =
  let c = Lazy.force ctx in
  let t = Experiments.Onchip_lock.run ~n_wrong:2 c in
  assert_checks "onchip" (Experiments.Onchip_lock.checks c t)

let test_aging_reduced () =
  let c = Lazy.force ctx in
  let t = Experiments.Aging_study.run ~hours:[ 1e3; 1e5 ] c in
  assert_checks "aging" (Experiments.Aging_study.checks c t)

let test_lot_reduced () =
  let t = Experiments.Lot_study.run ~lot:3 ~seed_base:6100 Rfchain.Standards.max_frequency in
  Alcotest.(check int) "three dice" 3 (List.length t.Experiments.Lot_study.dice);
  Alcotest.(check bool) "calibrated yield high" true
    (t.Experiments.Lot_study.calibrated_yield >= 0.6);
  Alcotest.(check bool) "keys differ" true (t.Experiments.Lot_study.min_pair_distance >= 3)

(* ------------------------------------------------------------ Ascii_plot *)

let test_ascii_plot_geometry () =
  let lines =
    Experiments.Ascii_plot.render ~width:40 ~height:10
      ~x_range:(0.0, 1.0) ~y_range:(0.0, 1.0)
      [
        { Experiments.Ascii_plot.x = 0.0; y = 0.0; marker = 'A' };
        { Experiments.Ascii_plot.x = 1.0; y = 1.0; marker = 'B' };
        { Experiments.Ascii_plot.x = 0.5; y = 0.5; marker = 'M' };
      ]
  in
  Alcotest.(check int) "height plus frame" 12 (List.length lines);
  let top = List.nth lines 0 and bottom = List.nth lines 9 in
  Alcotest.(check bool) "B in the top-right" true (String.contains top 'B');
  Alcotest.(check bool) "A in the bottom-left" true (String.contains bottom 'A');
  Alcotest.(check bool) "M in the middle row" true (String.contains (List.nth lines 5) 'M' || String.contains (List.nth lines 4) 'M')

let test_ascii_plot_clips () =
  let lines =
    Experiments.Ascii_plot.render ~width:20 ~height:5 ~x_range:(0.0, 1.0) ~y_range:(0.0, 1.0)
      [ { Experiments.Ascii_plot.x = 5.0; y = 5.0; marker = 'Z' } ]
  in
  Alcotest.(check bool) "out-of-range point dropped" false
    (List.exists (fun l -> String.contains l 'Z') lines)

let test_ascii_plot_series () =
  let pts = Experiments.Ascii_plot.series ~marker:'s' [ (0.0, 1.0); (1.0, 2.0) ] in
  Alcotest.(check int) "two points" 2 (List.length pts);
  Alcotest.(check bool) "marker applied" true
    (List.for_all (fun p -> p.Experiments.Ascii_plot.marker = 's') pts)

let () =
  Alcotest.run "experiments"
    [
      ( "context",
        [
          Alcotest.test_case "calibrates" `Slow test_context_calibrates;
          Alcotest.test_case "deceptive example" `Slow test_deceptive_example_shape;
          Alcotest.test_case "deterministic ensemble" `Slow test_ensemble_deterministic;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig7/fig9 reduced" `Slow test_fig7_fig9_reduced;
          Alcotest.test_case "fig8" `Slow test_fig8;
          Alcotest.test_case "fig10" `Slow test_fig10;
          Alcotest.test_case "fig12 reduced" `Slow test_fig12_reduced;
        ] );
      ( "ascii plot",
        [
          Alcotest.test_case "geometry" `Quick test_ascii_plot_geometry;
          Alcotest.test_case "clipping" `Quick test_ascii_plot_clips;
          Alcotest.test_case "series" `Quick test_ascii_plot_series;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "on-chip lock reduced" `Slow test_onchip_lock_reduced;
          Alcotest.test_case "aging reduced" `Slow test_aging_reduced;
          Alcotest.test_case "lot reduced" `Slow test_lot_reduced;
        ] );
      ( "tables",
        [
          Alcotest.test_case "security reduced" `Slow test_security_reduced;
          Alcotest.test_case "comparison" `Slow test_compare_table;
        ] );
    ]
