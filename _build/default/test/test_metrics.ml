(* Unit tests for the SNR/SFDR/dynamic-range metrology. *)

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

(* Synthetic bandpass record: tone at fs/4 + offset plus white noise of
   a known level — the SNR estimator must recover the analytic ratio. *)
let synthetic_record ~fs ~n ~amplitude ~noise_sigma ~offset =
  let rng = Sigkit.Rng.create 31337 in
  let freq = Sigkit.Waveform.coherent_frequency ~freq:((fs /. 4.0) +. offset) ~fs ~n in
  let tone = Sigkit.Waveform.tone ~amplitude ~freq ~fs n in
  (freq, Array.map (fun v -> v +. (noise_sigma *. Sigkit.Rng.gaussian rng)) tone)

let test_snr_analytic () =
  let fs = 12e9 and n = 8192 and osr = 64 in
  let amplitude = 0.5 and noise_sigma = 0.01 in
  let freq, record = synthetic_record ~fs ~n ~amplitude ~noise_sigma ~offset:20e6 in
  let snr = Metrics.Snr.of_bandpass ~fs ~f_signal:freq ~osr record in
  (* Analytic: P_sig = A^2/2; in-band noise = sigma^2 / OSR. *)
  let expected =
    Sigkit.Decibel.db_of_power_ratio
      (amplitude ** 2.0 /. 2.0 /. (noise_sigma ** 2.0 /. float_of_int osr))
  in
  check_close ~eps:1.5 "bandpass SNR matches analytic" expected snr

let test_snr_scales_with_osr () =
  let fs = 12e9 and n = 8192 in
  let freq, record = synthetic_record ~fs ~n ~amplitude:0.5 ~noise_sigma:0.02 ~offset:10e6 in
  let snr32 = Metrics.Snr.of_bandpass ~fs ~f_signal:freq ~osr:32 record in
  let snr64 = Metrics.Snr.of_bandpass ~fs ~f_signal:freq ~osr:64 record in
  let snr128 = Metrics.Snr.of_bandpass ~fs ~f_signal:freq ~osr:128 record in
  (* Halving a white-noise band buys ~3 dB; the carrier-lobe exclusion
     inflates the narrow-band steps somewhat, so bound rather than pin. *)
  let step1 = snr64 -. snr32 and step2 = snr128 -. snr64 in
  Alcotest.(check bool)
    (Printf.sprintf "octave steps in [2, 6] dB (got %.2f, %.2f)" step1 step2)
    true
    (step1 > 2.0 && step1 < 6.0 && step2 > 2.0 && step2 < 6.0)

let test_snr_iq_analytic () =
  let fs = 187.5e6 and n = 2048 in
  let rng = Sigkit.Rng.create 7 in
  let sigma = 0.01 and amplitude = 0.3 in
  let f_off = Sigkit.Waveform.coherent_frequency ~freq:20e6 ~fs ~n in
  let w = 2.0 *. Float.pi *. f_off /. fs in
  let i_ch =
    Array.init n (fun k -> (amplitude *. cos (w *. float_of_int k)) +. (sigma *. Sigkit.Rng.gaussian rng))
  in
  let q_ch =
    Array.init n (fun k -> (amplitude *. sin (w *. float_of_int k)) +. (sigma *. Sigkit.Rng.gaussian rng))
  in
  let f_band = 46.875e6 in
  let snr = Metrics.Snr.of_baseband_iq ~n_fft:n ~fs ~f_signal:f_off ~f_band (i_ch, q_ch) in
  (* Complex tone power A^2; complex noise in +-f_band: 2 sigma^2 * (2 f_band / fs). *)
  let expected =
    Sigkit.Decibel.db_of_power_ratio
      (amplitude ** 2.0 /. (2.0 *. sigma ** 2.0 *. (2.0 *. f_band /. fs)))
  in
  check_close ~eps:1.5 "IQ SNR matches analytic" expected snr

let test_snr_rejects_short () =
  Alcotest.check_raises "short record" (Invalid_argument "Snr: record too short") (fun () ->
      ignore (Metrics.Snr.of_bandpass ~fs:1e9 ~f_signal:1e8 ~osr:64 (Array.make 16 0.0)))

let test_sfdr_known_spur () =
  let fs = 12e9 and n = 8192 in
  let f0 = 3e9 in
  let f1, f2 = Metrics.Sfdr.tones_for ~f0 ~fs ~n in
  check_close ~eps:3e6 "tone spacing" Metrics.Sfdr.tone_spacing_hz (f2 -. f1);
  (* Hand-build two tones plus one -40 dBc spur in band. *)
  let spur_freq = Sigkit.Waveform.coherent_frequency ~freq:(f0 +. 30e6) ~fs ~n in
  let a = 0.5 in
  let x =
    Sigkit.Waveform.add
      (Sigkit.Waveform.add
         (Sigkit.Waveform.tone ~amplitude:a ~freq:f1 ~fs n)
         (Sigkit.Waveform.tone ~amplitude:a ~freq:f2 ~fs n))
      (Sigkit.Waveform.tone ~amplitude:(a /. 100.0) ~freq:spur_freq ~fs n)
  in
  let sfdr = Metrics.Sfdr.of_bandpass ~fs ~f1 ~f2 ~osr:64 x in
  check_close ~eps:1.0 "SFDR finds the -40 dBc spur" 40.0 sfdr

let test_dynamic_range_sweep () =
  (* A fake chip whose SNR rises 1 dB per dBm from -90 dBm. *)
  let measure ~p_dbm ~gain_code:_ = p_dbm +. 90.0 in
  let segs = Metrics.Dynamic_range.sweep ~measure in
  Alcotest.(check int) "three segments" 3 (List.length segs);
  let total_points = List.fold_left (fun acc s -> acc + List.length s.Metrics.Dynamic_range.points) 0 segs in
  Alcotest.(check int) "27 sweep points" 27 total_points;
  (* Passing region with threshold 25: p >= -65 up to 0 dBm -> 70 dB. *)
  check_close "dynamic range" 70.0 (Metrics.Dynamic_range.dynamic_range_db segs ~min_snr_db:25.0)

let test_dynamic_range_empty () =
  let measure ~p_dbm:_ ~gain_code:_ = -100.0 in
  let segs = Metrics.Dynamic_range.sweep ~measure in
  check_close "dead chip has no range" 0.0 (Metrics.Dynamic_range.dynamic_range_db segs ~min_snr_db:25.0)

let test_spec_check () =
  let std = Rfchain.Standards.max_frequency in
  let good = { Metrics.Spec.snr_mod_db = 45.0; snr_rx_db = 44.0; sfdr_db = Some 40.0 } in
  let bad = { Metrics.Spec.snr_mod_db = 45.0; snr_rx_db = 20.0; sfdr_db = Some 40.0 } in
  Alcotest.(check bool) "good passes" true (Metrics.Spec.check std good).Metrics.Spec.functional;
  Alcotest.(check bool) "bad rx fails" false (Metrics.Spec.check std bad).Metrics.Spec.functional;
  check_close "distance zero when passing" 0.0 (Metrics.Spec.spec_distance std good);
  check_close "distance counts shortfall" (std.Rfchain.Standards.min_snr_db -. 20.0)
    (Metrics.Spec.spec_distance std bad)

let test_spec_optional_sfdr () =
  let std = Rfchain.Standards.max_frequency in
  let m = { Metrics.Spec.snr_mod_db = 45.0; snr_rx_db = 44.0; sfdr_db = None } in
  Alcotest.(check bool) "missing SFDR is not a failure" true
    (Metrics.Spec.check std m).Metrics.Spec.functional

let test_measure_counts_trials () =
  let rx = Rfchain.Receiver.create (Circuit.Process.fabricate ~seed:9 ()) Rfchain.Standards.max_frequency in
  let bench = Metrics.Measure.create rx in
  Alcotest.(check int) "starts at zero" 0 (Metrics.Measure.trial_count bench);
  let _ = Metrics.Measure.snr_mod_db bench Rfchain.Config.nominal in
  Alcotest.(check int) "one trial" 1 (Metrics.Measure.trial_count bench);
  let _ = Metrics.Measure.sfdr_db bench Rfchain.Config.nominal in
  Alcotest.(check int) "two trials" 2 (Metrics.Measure.trial_count bench)

let test_measure_mod_output () =
  let rx = Rfchain.Receiver.create (Circuit.Process.fabricate ~seed:9 ()) Rfchain.Standards.max_frequency in
  let bench = Metrics.Measure.create rx in
  let record = Metrics.Measure.mod_output bench Rfchain.Config.nominal in
  Alcotest.(check int) "8192-point record" 8192 (Array.length record)

let prop_spec_distance_nonneg =
  QCheck.Test.make ~name:"spec distance is non-negative" ~count:200
    QCheck.(triple (float_range (-200.) 100.) (float_range (-200.) 100.) (float_range (-200.) 100.))
    (fun (a, b, c) ->
      let m = { Metrics.Spec.snr_mod_db = a; snr_rx_db = b; sfdr_db = Some c } in
      Metrics.Spec.spec_distance Rfchain.Standards.max_frequency m >= 0.0)

let prop_spec_functional_iff_zero =
  QCheck.Test.make ~name:"functional iff zero distance" ~count:200
    QCheck.(pair (float_range 0. 80.) (float_range 0. 80.))
    (fun (a, b) ->
      let m = { Metrics.Spec.snr_mod_db = a; snr_rx_db = b; sfdr_db = None } in
      let std = Rfchain.Standards.max_frequency in
      (Metrics.Spec.check std m).Metrics.Spec.functional
      = (Metrics.Spec.spec_distance std m = 0.0))

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "metrics"
    [
      ( "snr",
        [
          Alcotest.test_case "analytic bandpass" `Quick test_snr_analytic;
          Alcotest.test_case "OSR scaling" `Quick test_snr_scales_with_osr;
          Alcotest.test_case "analytic IQ" `Quick test_snr_iq_analytic;
          Alcotest.test_case "short record" `Quick test_snr_rejects_short;
        ] );
      ("sfdr", [ Alcotest.test_case "known spur" `Quick test_sfdr_known_spur ]);
      ( "dynamic range",
        [
          Alcotest.test_case "sweep" `Quick test_dynamic_range_sweep;
          Alcotest.test_case "dead chip" `Quick test_dynamic_range_empty;
        ] );
      ( "spec",
        [
          Alcotest.test_case "check" `Quick test_spec_check;
          Alcotest.test_case "optional SFDR" `Quick test_spec_optional_sfdr;
        ] );
      ( "measure",
        [
          Alcotest.test_case "trial counting" `Quick test_measure_counts_trials;
          Alcotest.test_case "mod output" `Quick test_measure_mod_output;
        ] );
      ("properties", qcheck [ prop_spec_distance_nonneg; prop_spec_functional_iff_zero ]);
    ]
