(* Counterfeit lifecycle: overproduction, recycling, remarking — and the
   remote-activation flow that controls an untrusted test floor
   (paper Sections IV-B.4 and IV-C).

   Run with:  dune exec examples/counterfeit_lifecycle.exe *)

let show o =
  Printf.printf "%-26s attacker %-9s %s\n" o.Core.Threat_model.scenario
    (if o.Core.Threat_model.attacker_success then "SUCCEEDS" else "defeated")
    o.Core.Threat_model.detail

let () =
  let standard = Rfchain.Standards.max_frequency in
  let chip = Circuit.Process.fabricate ~seed:777 () in
  let rx = Rfchain.Receiver.create chip standard in
  let golden = Calibration.Calibrate.quick rx in
  let key = Core.Key.make ~standard ~chip golden in

  print_endline "== threat scenarios ==";
  show (Core.Threat_model.cloning standard ~golden_key:key);
  show (Core.Threat_model.overproduction ~fabricated:1000 ~provisioned:800);
  let lut_recycle, puf_recycle = Core.Threat_model.recycling standard ~seed:777 ~key in
  show lut_recycle;
  show puf_recycle;
  show (Core.Threat_model.remarking standard ~seed:778);

  (* Remote activation: high-volume production at an untrusted test
     facility.  The facility forwards the die's PUF identity; only the
     design house can mint a valid activation for it. *)
  print_endline "\n== remote activation (untrusted test floor) ==";
  let design_house = Core.Activation.design_house_keys () in
  let boot_rom_key = Core.Activation.public_of design_house in
  let scheme, user_keys = Core.Key_mgmt.provision_puf chip [ key ] in
  let chip_id =
    match scheme with
    | Core.Key_mgmt.Puf_xor puf -> Core.Puf.response_for_standard puf ~standard:standard.Rfchain.Standards.name
    | Core.Key_mgmt.Tamper_proof_lut _ -> assert false
  in
  let user_key = List.hd user_keys in
  let activation = Core.Activation.issue design_house ~chip_id user_key in
  (match Core.Activation.accept boot_rom_key ~expected_chip_id:chip_id activation with
  | Ok delivered -> (
    match
      Core.Key_mgmt.power_on scheme ~user_keys:[ delivered ]
        ~standard:standard.Rfchain.Standards.name ()
    with
    | Ok config ->
      let bench = Metrics.Measure.create rx in
      Printf.printf "activation accepted; chip functional at SNR %.1f dB\n"
        (Metrics.Measure.snr_mod_db bench config)
    | Error e -> Printf.printf "power-on failed after activation: %s\n" e)
  | Error e -> Printf.printf "activation rejected: %s\n" e);

  (* The test floor tries to activate an overproduced die with the same
     token: the chip id does not match, the boot ROM refuses. *)
  let rogue_chip = Circuit.Process.fabricate ~seed:999 () in
  let rogue_scheme, _ = Core.Key_mgmt.provision_puf rogue_chip [ key ] in
  let rogue_id =
    match rogue_scheme with
    | Core.Key_mgmt.Puf_xor puf -> Core.Puf.response_for_standard puf ~standard:standard.Rfchain.Standards.name
    | Core.Key_mgmt.Tamper_proof_lut _ -> assert false
  in
  match Core.Activation.accept boot_rom_key ~expected_chip_id:rogue_id activation with
  | Ok _ -> print_endline "rogue die activated (bug!)"
  | Error e -> Printf.printf "rogue (overproduced) die: %s -> stays inert\n" e
