(* Fabric locking beyond RF: the programmable baseband AFE.

   The same locking story as examples/quickstart.ml, on a completely
   different circuit class — a sensor-grade PGA + Gm-C low-pass filter
   whose 24 programming bits are the key (paper Section III:
   programmability "from a few bits ... to tens of bits").

   Run with:  dune exec examples/afe_lock.exe *)

let () =
  let chip = Circuit.Process.fabricate ~seed:8088 () in
  let afe = Afe.Afe_chain.create chip in
  let spec = Afe.Afe_chain.default_spec in

  let show label m =
    Printf.printf "%-22s gain %5.1f dB | cutoff err %6.0f kHz | offset %6.2f mV | THD %4.1f dB -> %s\n"
      label m.Afe.Afe_chain.gain_db
      (m.Afe.Afe_chain.cutoff_error_hz /. 1e3)
      (m.Afe.Afe_chain.offset_v *. 1e3)
      m.Afe.Afe_chain.thd_db
      (if Afe.Afe_chain.in_spec spec m then "in spec" else "LOCKED")
  in

  (* Fresh silicon under the design-centre word: locked. *)
  show "nominal word" (Afe.Afe_chain.measure afe Afe.Afe_config.nominal);

  (* The (secret) calibration produces this die's 24-bit key. *)
  let report = Afe.Afe_calibrate.run afe in
  Printf.printf "calibration: %d bench runs, key 0x%06x\n" report.Afe.Afe_calibrate.bench_runs
    (Afe.Afe_config.to_bits report.Afe.Afe_calibrate.key);
  show "calibrated key" report.Afe.Afe_calibrate.measurement;

  (* An attacker's random guesses. *)
  let rng = Sigkit.Rng.create 4242 in
  for i = 1 to 3 do
    let guess = Afe.Afe_config.random rng in
    show (Printf.sprintf "random key %d" i) (Afe.Afe_chain.measure afe guess)
  done;

  (* The key is die-specific: on a sibling part it fails. *)
  let sibling = Afe.Afe_chain.create (Circuit.Process.fabricate ~seed:8089 ()) in
  show "key on sibling die" (Afe.Afe_chain.measure sibling report.Afe.Afe_calibrate.key)
