(* Multi-standard provisioning: a small production lot.

   Each die is calibrated per standard; the per-(die, standard)
   configuration settings are the secret keys, stored in the die's
   tamper-proof LUT (Fig. 3a).  The run shows (a) every provisioned
   mode works, (b) the keys are unique per die, so nothing learned from
   one die unlocks another.

   Run with:  dune exec examples/multi_standard.exe *)

let standards = [ Rfchain.Standards.bluetooth; Rfchain.Standards.zigbee; Rfchain.Standards.max_frequency ]

let calibrate_die seed =
  let chip = Circuit.Process.fabricate ~seed () in
  let keys =
    List.map
      (fun standard ->
        let rx = Rfchain.Receiver.create chip standard in
        let config = Calibration.Calibrate.quick rx in
        Core.Key.make ~standard ~chip config)
      standards
  in
  (chip, keys)

let () =
  let lot = List.map calibrate_die [ 501; 502; 503 ] in

  (* Provision each die's LUT and verify every mode on its own die. *)
  List.iter
    (fun (chip, keys) ->
      let scheme = Core.Key_mgmt.provision_lut keys in
      Printf.printf "die %d:\n" (Circuit.Process.seed chip);
      List.iter
        (fun standard ->
          match Core.Key_mgmt.power_on scheme ~standard:standard.Rfchain.Standards.name () with
          | Error e -> Printf.printf "  %-22s power-on failed: %s\n" standard.Rfchain.Standards.name e
          | Ok config ->
            let rx = Rfchain.Receiver.create chip standard in
            let bench = Metrics.Measure.create rx in
            let snr = Metrics.Measure.snr_mod_db bench config in
            Printf.printf "  %-22s SNR %.1f dB (spec %.0f) -> %s\n"
              standard.Rfchain.Standards.name snr standard.Rfchain.Standards.min_snr_db
              (if snr >= standard.Rfchain.Standards.min_snr_db then "ok" else "FAIL"))
        standards)
    lot;

  (* Key uniqueness across the lot: same standard, different dice. *)
  print_endline "\nkey uniqueness (bluetooth mode):";
  let bluetooth_keys =
    List.map
      (fun (chip, keys) ->
        (Circuit.Process.seed chip, List.find (fun k -> k.Core.Key.standard = "bluetooth") keys))
      lot
  in
  List.iter
    (fun (seed_a, key_a) ->
      List.iter
        (fun (seed_b, key_b) ->
          if seed_a < seed_b then
            Printf.printf "  die %d vs die %d: hamming distance %d/64\n" seed_a seed_b
              (Core.Key.hamming_distance key_a key_b))
        bluetooth_keys)
    bluetooth_keys
