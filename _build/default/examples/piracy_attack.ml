(* The attacker's afternoon: netlist in hand, oracle on the bench.

   Walks the paper's Section IV-B threat analysis: the netlist is fully
   known, an unlocked oracle chip can be measured, candidate keys can
   be programmed into a re-fabricated clone — and every black-box
   attack still dies on the 2^64 key space and the per-trial cost.

   Run with:  dune exec examples/piracy_attack.exe *)

let () =
  let standard = Rfchain.Standards.max_frequency in

  (* The victim: a fielded, correctly provisioned chip. *)
  let victim_chip = Circuit.Process.fabricate ~seed:31415 () in
  let victim_rx = Rfchain.Receiver.create victim_chip standard in
  let golden = Calibration.Calibrate.quick victim_rx in
  let key = Core.Key.make ~standard ~chip:victim_chip golden in
  let oracle = Attacks.Oracle.deploy standard ~chip_seed:31415 ~key in
  let reference = Attacks.Oracle.reference_performance oracle in
  Printf.printf "oracle reference: SNR(mod) %.1f dB, SNR(rx) %.1f dB -- the bar to clear\n\n"
    reference.Metrics.Spec.snr_mod_db reference.Metrics.Spec.snr_rx_db;

  (* Step 1: read the key out of the oracle?  Tamper-proof. *)
  let lut = Core.Key_mgmt.provision_lut [ key ] in
  (match lut with
  | Core.Key_mgmt.Tamper_proof_lut memory -> (
    match Core.Lut_memory.raw_readout memory with
    | Error _ -> print_endline "step 1: raw LUT readout -> tamper response, memory zeroised"
    | Ok _ -> print_endline "step 1: LUT readout succeeded (bug!)")
  | Core.Key_mgmt.Puf_xor _ -> ());

  (* Step 2: remove the lock?  There is no lock circuitry. *)
  print_endline
    "step 2: removal attack -> nothing to remove: the key bits drive the existing tuning knobs";

  (* Step 3: re-fab the design to get at the programming bits, then
     search.  Budgets here are what a funded lab could really measure:
     400 trials at the paper's 20 min/trial is ~5.5 days of bench time. *)
  let budget = 400 in
  let refab seed = Attacks.Oracle.refabricate oracle ~attacker_seed:seed in
  (* "raw probe" is the attacker's uncorroborated FFT reading; verdicts
     use the linearity-verified measurement, which an injection-locked
     tank cannot fool. *)
  let report name trials best success =
    Printf.printf "step 3: %-22s %4d trials, best raw probe %6.1f dB, %s (%s of measurements)\n" name
      trials best
      (if success then "UNLOCKED" else "still locked")
      (Attacks.Cost.seconds_to_human (float_of_int trials *. Attacks.Cost.snr_trial_seconds))
  in
  let bf = Attacks.Brute_force.run ~budget (refab 1) in
  report "brute force" bf.Attacks.Brute_force.trials bf.Attacks.Brute_force.best_snr_mod_db
    bf.Attacks.Brute_force.success;
  let sa = Attacks.Optimize.simulated_annealing ~budget (refab 2) in
  report "simulated annealing" sa.Attacks.Optimize.evaluations sa.Attacks.Optimize.best_snr_mod_db
    sa.Attacks.Optimize.success;
  let ga = Attacks.Optimize.genetic ~budget (refab 3) in
  report "genetic algorithm" ga.Attacks.Optimize.evaluations ga.Attacks.Optimize.best_snr_mod_db
    ga.Attacks.Optimize.success;
  let sub = Attacks.Subblock.cap_only_attack ~budget (refab 4) in
  report "capacitor sub-key" sub.Attacks.Subblock.trials sub.Attacks.Subblock.best_snr_mod_db
    sub.Attacks.Subblock.success;

  (* Step 4: what would it take to actually win? *)
  print_newline ();
  print_endline "step 4: projected cost of the full search:";
  List.iter
    (fun row -> Format.printf "        %a@." Attacks.Cost.pp_row row)
    (Attacks.Cost.brute_force_table ())
