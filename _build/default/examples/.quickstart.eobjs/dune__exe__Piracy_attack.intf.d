examples/piracy_attack.mli:
