examples/counterfeit_lifecycle.mli:
