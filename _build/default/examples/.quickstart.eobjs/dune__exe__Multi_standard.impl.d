examples/multi_standard.ml: Calibration Circuit Core List Metrics Printf Rfchain
