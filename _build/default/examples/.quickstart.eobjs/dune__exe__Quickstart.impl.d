examples/quickstart.ml: Calibration Circuit Core Metrics Printf Rfchain
