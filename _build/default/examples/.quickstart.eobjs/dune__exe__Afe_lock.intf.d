examples/afe_lock.mli:
