examples/piracy_attack.ml: Attacks Calibration Circuit Core Format List Metrics Printf Rfchain
