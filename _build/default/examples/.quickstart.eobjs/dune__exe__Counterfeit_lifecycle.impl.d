examples/counterfeit_lifecycle.ml: Calibration Circuit Core List Metrics Printf Rfchain
