examples/afe_lock.ml: Afe Circuit Printf Sigkit
