examples/quickstart.mli:
