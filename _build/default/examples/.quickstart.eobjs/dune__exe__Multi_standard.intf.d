examples/multi_standard.mli:
