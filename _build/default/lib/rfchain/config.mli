(** The 64-bit analog configuration word.

    All tuning knobs of the analog section are driven by this word
    (paper: "64 programming bits embedded into the analog section").
    Locking treats the whole word as the secret key, so the codec here
    is shared by the receiver model, the calibration algorithm, the
    locking layer and the attacks.

    Bit layout (LSB first):
    {v
      0- 3  vglna_gain        VGLNA gain level (16 levels)
      4-11  cap_coarse        coarse LC-tank capacitor code (Cc)
     12-19  cap_fine          fine LC-tank capacitor code (Cf)
     20-25  gm_q              Q-enhancement (-Gm) strength
     26-31  gmin_bias         input transconductor bias trim
     32-37  dac_bias          feedback DAC bias trim
     38-43  preamp_bias       comparator pre-amplifier bias trim
     44-49  comp_bias         comparator offset/regeneration trim
     50-53  loop_delay        feedback loop delay setting
     54-55  dac_trim          DAC level-mismatch fine trim
     56     fb_enable         feedback loop closed (1) or open (0)
     57     comp_clock_enable comparator clocked (1) or buffer (0)
     58     gmin_enable       input transconductor on/off
     59     cal_buffer_enable calibration output buffer in path
     60-61  out_buffer        calibration buffer drive strength
     62-63  preamp_trim       pre-amplifier offset fine trim
    v} *)

type t = {
  vglna_gain : int;
  cap_coarse : int;
  cap_fine : int;
  gm_q : int;
  gmin_bias : int;
  dac_bias : int;
  preamp_bias : int;
  comp_bias : int;
  loop_delay : int;
  dac_trim : int;
  fb_enable : bool;
  comp_clock_enable : bool;
  gmin_enable : bool;
  cal_buffer_enable : bool;
  out_buffer : int;
  preamp_trim : int;
}

val key_bits : int
(** 64: the key width of the case study. *)

val nominal : t
(** Design-centre word: all trims mid-scale, normal operating modes
    (feedback closed, comparator clocked, input on, cal buffer out). *)

val validate : t -> (t, string) result
(** Range-check every field. *)

val to_bits : t -> int64
val of_bits : int64 -> t
(** Total bijection between words and [int64]; every 64-bit pattern is
    a decodable (if probably non-functional) configuration. *)

val random : Sigkit.Rng.t -> t
(** Uniform over all 2^64 words — the brute-force attacker's draw. *)

val hamming_distance : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val field_names : string list
(** Names of the multi-bit tuning fields, in layout order (used by the
    coordinate-search attack and calibration). *)

val with_field : t -> string -> int -> t
(** [with_field t name v] functionally updates a field by name.  Boolean
    fields take 0/1.  Raises [Invalid_argument] on unknown names. *)

val field : t -> string -> int
(** Read a field by name (booleans as 0/1). *)

val field_width : string -> int
(** Bit width of a named field. *)
