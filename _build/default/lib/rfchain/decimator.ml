type config = {
  ratio_select : int;
  compensator : bool;
}

let default_config = { ratio_select = 2; compensator = true }

let config_of_bits bits = { ratio_select = bits land 3; compensator = bits land 4 <> 0 }

let bits_of_config c = (c.ratio_select land 3) lor (if c.compensator then 4 else 0)

let ratio c = 16 lsl c.ratio_select

let cic_order = 3

(* CIC decimator: [order] integrators at the input rate, decimation by
   [r], [order] combs at the output rate, gain-normalised. *)
let cic ~r x =
  let n_out = Array.length x / r in
  if n_out = 0 then [||]
  else begin
    let acc = Array.make cic_order 0.0 in
    let decimated = Array.make n_out 0.0 in
    let out_idx = ref 0 in
    for i = 0 to (n_out * r) - 1 do
      acc.(0) <- acc.(0) +. x.(i);
      for s = 1 to cic_order - 1 do
        acc.(s) <- acc.(s) +. acc.(s - 1)
      done;
      if (i + 1) mod r = 0 then begin
        decimated.(!out_idx) <- acc.(cic_order - 1);
        incr out_idx
      end
    done;
    let stage = ref decimated in
    for _ = 1 to cic_order do
      let prev = ref 0.0 in
      let next =
        Array.map
          (fun v ->
            let d = v -. !prev in
            prev := v;
            d)
          !stage
      in
      stage := next
    done;
    let gain = float_of_int r ** float_of_int cic_order in
    Array.map (fun v -> v /. gain) !stage
  end

(* 31-tap Hann-windowed half-band low-pass for the final 2x stage: the
   sharp stage that keeps shaped quantization noise from aliasing into
   the channel (the CIC alone leaks ~-30 dB images). *)
let halfband_taps =
  let taps = 31 in
  let mid = taps / 2 in
  let h =
    Array.init taps (fun k ->
        let m = k - mid in
        let ideal =
          if m = 0 then 0.5
          else sin (Float.pi *. float_of_int m /. 2.0) /. (Float.pi *. float_of_int m)
        in
        let w = 0.5 -. (0.5 *. cos (2.0 *. Float.pi *. float_of_int k /. float_of_int (taps - 1))) in
        ideal *. w)
  in
  let dc = Array.fold_left ( +. ) 0.0 h in
  Array.map (fun v -> v /. dc) h

let fir_decimate2 x =
  let n = Array.length x in
  let taps = Array.length halfband_taps in
  let n_out = n / 2 in
  Array.init n_out (fun j ->
      let centre = 2 * j in
      let acc = ref 0.0 in
      for k = 0 to taps - 1 do
        let idx = centre + k - (taps / 2) in
        if idx >= 0 && idx < n then acc := !acc +. (halfband_taps.(k) *. x.(idx))
      done;
      !acc)

(* Crude fallback 2x stage (compensator bit off): a two-sample average,
   which lets images through — the "wrong digital setting" behaviour. *)
let average_decimate2 x =
  Array.init (Array.length x / 2) (fun j -> 0.5 *. (x.(2 * j) +. x.((2 * j) + 1)))

let decimate c x =
  let r = ratio c in
  let mid = cic ~r:(r / 2) x in
  if c.compensator then fir_decimate2 mid else average_decimate2 mid

let run_iq c (i_ch, q_ch) = (decimate c i_ch, decimate c q_ch)
