let downconvert x =
  let n = Array.length x in
  let i_out = Array.make n 0.0 and q_out = Array.make n 0.0 in
  for k = 0 to n - 1 do
    (* cos(pi k / 2) on I, -sin(pi k / 2) on Q. *)
    match k land 3 with
    | 0 -> i_out.(k) <- x.(k)
    | 1 -> q_out.(k) <- -.x.(k)
    | 2 -> i_out.(k) <- -.x.(k)
    | _ -> q_out.(k) <- x.(k)
  done;
  (i_out, q_out)
