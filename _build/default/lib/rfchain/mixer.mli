(** Digital fs/4 down-conversion mixer.

    Because the modulator samples at [fs = 4 f0], down-conversion is a
    multiplication by the exact sequences [cos(pi n / 2) = 1,0,-1,0]
    and [-sin(pi n / 2) = 0,-1,0,1] — multiplier-free and ideal, as in
    the paper's highly-digitized architecture. *)

val downconvert : float array -> float array * float array
(** [downconvert x] returns the (i, q) baseband pair at the input rate
    (quadrature components of [x] mixed down by fs/4). *)
