type t = {
  vglna_gain : int;
  cap_coarse : int;
  cap_fine : int;
  gm_q : int;
  gmin_bias : int;
  dac_bias : int;
  preamp_bias : int;
  comp_bias : int;
  loop_delay : int;
  dac_trim : int;
  fb_enable : bool;
  comp_clock_enable : bool;
  gmin_enable : bool;
  cal_buffer_enable : bool;
  out_buffer : int;
  preamp_trim : int;
}

let key_bits = 64

(* (name, offset, width, getter, setter) for every field, in layout
   order.  Keeping the table single-sourced guarantees the codec, the
   by-name accessors and the pretty-printer never drift apart. *)
let fields :
    (string * int * int * (t -> int) * (t -> int -> t)) list =
  [
    ("vglna_gain", 0, 4, (fun c -> c.vglna_gain), fun c v -> { c with vglna_gain = v });
    ("cap_coarse", 4, 8, (fun c -> c.cap_coarse), fun c v -> { c with cap_coarse = v });
    ("cap_fine", 12, 8, (fun c -> c.cap_fine), fun c v -> { c with cap_fine = v });
    ("gm_q", 20, 6, (fun c -> c.gm_q), fun c v -> { c with gm_q = v });
    ("gmin_bias", 26, 6, (fun c -> c.gmin_bias), fun c v -> { c with gmin_bias = v });
    ("dac_bias", 32, 6, (fun c -> c.dac_bias), fun c v -> { c with dac_bias = v });
    ("preamp_bias", 38, 6, (fun c -> c.preamp_bias), fun c v -> { c with preamp_bias = v });
    ("comp_bias", 44, 6, (fun c -> c.comp_bias), fun c v -> { c with comp_bias = v });
    ("loop_delay", 50, 4, (fun c -> c.loop_delay), fun c v -> { c with loop_delay = v });
    ("dac_trim", 54, 2, (fun c -> c.dac_trim), fun c v -> { c with dac_trim = v });
    ( "fb_enable", 56, 1,
      (fun c -> if c.fb_enable then 1 else 0),
      fun c v -> { c with fb_enable = v <> 0 } );
    ( "comp_clock_enable", 57, 1,
      (fun c -> if c.comp_clock_enable then 1 else 0),
      fun c v -> { c with comp_clock_enable = v <> 0 } );
    ( "gmin_enable", 58, 1,
      (fun c -> if c.gmin_enable then 1 else 0),
      fun c v -> { c with gmin_enable = v <> 0 } );
    ( "cal_buffer_enable", 59, 1,
      (fun c -> if c.cal_buffer_enable then 1 else 0),
      fun c v -> { c with cal_buffer_enable = v <> 0 } );
    ("out_buffer", 60, 2, (fun c -> c.out_buffer), fun c v -> { c with out_buffer = v });
    ("preamp_trim", 62, 2, (fun c -> c.preamp_trim), fun c v -> { c with preamp_trim = v });
  ]

let nominal =
  {
    vglna_gain = 8;
    cap_coarse = 128;
    cap_fine = 128;
    gm_q = 24;
    gmin_bias = 32;
    dac_bias = 32;
    preamp_bias = 32;
    comp_bias = 32;
    loop_delay = 8;
    dac_trim = 2;
    fb_enable = true;
    comp_clock_enable = true;
    gmin_enable = true;
    cal_buffer_enable = false;
    out_buffer = 2;
    preamp_trim = 2;
  }

let validate c =
  let check (name, _, width, get, _) acc =
    match acc with
    | Error _ as e -> e
    | Ok c ->
      let v = get c in
      if v < 0 || v >= 1 lsl width then
        Error (Printf.sprintf "field %s = %d out of range [0, %d]" name v ((1 lsl width) - 1))
      else Ok c
  in
  List.fold_right check fields (Ok c)

let to_bits c =
  let pack acc (_, offset, width, get, _) =
    let v = Int64.of_int (get c land ((1 lsl width) - 1)) in
    Int64.logor acc (Int64.shift_left v offset)
  in
  List.fold_left pack 0L fields

let of_bits bits =
  let unpack c (_, offset, width, _, set) =
    let v = Int64.to_int (Int64.logand (Int64.shift_right_logical bits offset)
                            (Int64.of_int ((1 lsl width) - 1))) in
    set c v
  in
  List.fold_left unpack nominal fields

let random rng = of_bits (Sigkit.Rng.bits64 rng)

let popcount64 x =
  let rec go x acc = if x = 0L then acc else go (Int64.logand x (Int64.sub x 1L)) (acc + 1) in
  go x 0

let hamming_distance a b = popcount64 (Int64.logxor (to_bits a) (to_bits b))
let equal a b = to_bits a = to_bits b

let pp fmt c =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, _, _, get, _) -> Format.fprintf fmt "%-18s %d@," name (get c))
    fields;
  Format.fprintf fmt "@]"

let field_names = List.map (fun (name, _, _, _, _) -> name) fields

let lookup name =
  match List.find_opt (fun (n, _, _, _, _) -> n = name) fields with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Config: unknown field %s" name)

let with_field c name v =
  let _, _, width, _, set = lookup name in
  if v < 0 || v >= 1 lsl width then
    invalid_arg (Printf.sprintf "Config.with_field: %s = %d out of range" name v);
  set c v

let field c name =
  let _, _, _, get, _ = lookup name in
  get c

let field_width name =
  let _, _, width, _, _ = lookup name in
  width
