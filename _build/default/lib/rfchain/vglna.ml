type t = {
  chip : Circuit.Process.chip;
  fs : float;
  gain_error_db : float array;   (** per-code realised-gain deviation *)
}

let levels = 16
let base_gain_db = 8.0
let step_db = 2.0

let create chip ~fs =
  let gain_error code =
    Circuit.Process.offset chip ~name:(Printf.sprintf "vglna.gain%d" code) ~sigma:0.4
  in
  { chip; fs; gain_error_db = Array.init levels gain_error }

let check_code code =
  if code < 0 || code >= levels then invalid_arg "Vglna: gain code out of range"

let nominal_gain_db ~code = base_gain_db +. (step_db *. float_of_int code)

let gain_db t ~code =
  check_code code;
  nominal_gain_db ~code +. t.gain_error_db.(code)

let code_for_gain_db g =
  let code = int_of_float (Float.round ((g -. base_gain_db) /. step_db)) in
  max 0 (min (levels - 1) code)

let segment_code ~p_dbm =
  if p_dbm <= -45.0 then 14        (* [-85,-45]: high gain *)
  else if p_dbm <= -20.0 then 9    (* [-60,-20]: mid gain *)
  else 3                           (* [-40,0]:   low gain *)

let noise_figure_db t ~code =
  check_code code;
  let nominal = 3.0 +. ((float_of_int (levels - 1 - code)) *. 0.35) in
  Circuit.Process.parameter t.chip
    ~name:(Printf.sprintf "vglna.nf%d" code)
    ~nominal ~sigma_pct:4.0

let iip3_dbm t ~code =
  check_code code;
  let nominal = -10.0 +. (float_of_int (levels - 1 - code) *. 1.2) in
  nominal +. Circuit.Process.offset t.chip ~name:(Printf.sprintf "vglna.iip3%d" code) ~sigma:0.5

let run t ~code input =
  check_code code;
  let gain = Sigkit.Decibel.power_ratio_of_db (gain_db t ~code /. 2.0) in
  (* power_ratio_of_db(g/2) = 10^(g/20): voltage gain. *)
  let stage = Circuit.Nonlinear.create ~gain ~iip3_dbm:(iip3_dbm t ~code) ~rail:1.4 () in
  let noise =
    Circuit.Noise_source.of_noise_figure t.chip
      ~name:(Printf.sprintf "vglna.noise%d" code)
      ~nf_db:(noise_figure_db t ~code) ~fs:t.fs
  in
  Array.map (fun x -> Circuit.Nonlinear.apply stage (x +. Circuit.Noise_source.sample noise)) input
