lib/rfchain/decimator.ml: Array Float
