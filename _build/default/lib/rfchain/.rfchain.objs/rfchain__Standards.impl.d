lib/rfchain/standards.ml: List
