lib/rfchain/config.mli: Format Sigkit
