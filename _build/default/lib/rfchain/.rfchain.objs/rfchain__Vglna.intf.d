lib/rfchain/vglna.mli: Circuit
