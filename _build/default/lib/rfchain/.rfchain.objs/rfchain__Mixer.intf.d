lib/rfchain/mixer.mli:
