lib/rfchain/receiver.ml: Array Circuit Config Decimator Mixer Sdm Sigkit Standards Vglna
