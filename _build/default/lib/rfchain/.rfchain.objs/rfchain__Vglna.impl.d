lib/rfchain/vglna.ml: Array Circuit Float Printf Sigkit
