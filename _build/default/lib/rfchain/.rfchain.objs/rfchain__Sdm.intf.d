lib/rfchain/sdm.mli: Circuit Config
