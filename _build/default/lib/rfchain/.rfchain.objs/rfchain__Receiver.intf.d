lib/rfchain/receiver.mli: Circuit Config Decimator Sdm Standards
