lib/rfchain/decimator.mli:
