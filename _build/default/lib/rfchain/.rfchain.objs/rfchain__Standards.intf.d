lib/rfchain/standards.mli:
