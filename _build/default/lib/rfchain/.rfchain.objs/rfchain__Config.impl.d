lib/rfchain/config.ml: Format Int64 List Printf Sigkit
