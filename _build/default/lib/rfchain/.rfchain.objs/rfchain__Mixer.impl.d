lib/rfchain/mixer.ml: Array
