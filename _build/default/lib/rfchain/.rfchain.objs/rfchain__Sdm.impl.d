lib/rfchain/sdm.ml: Array Circuit Config Float Sigkit
