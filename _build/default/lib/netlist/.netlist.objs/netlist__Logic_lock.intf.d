lib/netlist/logic_lock.mli: Gate Sigkit
