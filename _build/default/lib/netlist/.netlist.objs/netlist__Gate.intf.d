lib/netlist/gate.mli: Sigkit
