lib/netlist/bench_circuits.ml: Array Gate List Sigkit
