lib/netlist/logic_lock.ml: Array Gate Hashtbl List Sigkit
