lib/netlist/bench_circuits.mli: Gate Sigkit
