lib/netlist/sat_attack.ml: Array Fun Gate List Logic_lock Sigkit
