lib/netlist/gate.ml: Array Fun List Sigkit
