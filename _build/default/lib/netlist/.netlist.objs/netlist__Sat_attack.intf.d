lib/netlist/sat_attack.mli: Logic_lock
