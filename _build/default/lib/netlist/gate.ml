type kind =
  | And
  | Or
  | Xor
  | Xnor
  | Nand
  | Nor
  | Not
  | Buf

type gate = {
  kind : kind;
  inputs : int list;
  output : int;
}

type t = {
  n_inputs : int;
  n_key_inputs : int;
  n_nets : int;
  gates : gate list;
  outputs : int list;
}

let apply kind values =
  match (kind, values) with
  | Not, [ a ] -> not a
  | Buf, [ a ] -> a
  | And, vs -> List.for_all Fun.id vs
  | Or, vs -> List.exists Fun.id vs
  | Nand, vs -> not (List.for_all Fun.id vs)
  | Nor, vs -> not (List.exists Fun.id vs)
  | Xor, vs -> List.fold_left ( <> ) false vs
  | Xnor, vs -> not (List.fold_left ( <> ) false vs)
  | (Not | Buf), _ -> invalid_arg "Gate.apply: unary gate arity"

let eval t ~key inputs =
  if Array.length inputs <> t.n_inputs then invalid_arg "Gate.eval: input arity";
  if Array.length key <> t.n_key_inputs then invalid_arg "Gate.eval: key arity";
  let nets = Array.make t.n_nets false in
  Array.blit inputs 0 nets 0 t.n_inputs;
  Array.blit key 0 nets t.n_inputs t.n_key_inputs;
  let defined = Array.make t.n_nets false in
  for i = 0 to t.n_inputs + t.n_key_inputs - 1 do
    defined.(i) <- true
  done;
  let run_gate g =
    let value = apply g.kind (List.map (fun net ->
        assert (defined.(net));
        nets.(net)) g.inputs)
    in
    nets.(g.output) <- value;
    defined.(g.output) <- true
  in
  List.iter run_gate t.gates;
  Array.of_list (List.map (fun net -> nets.(net)) t.outputs)

let validate t =
  let in_range net = net >= 0 && net < t.n_nets in
  let defined = Array.make t.n_nets false in
  for i = 0 to t.n_inputs + t.n_key_inputs - 1 do
    defined.(i) <- true
  done;
  let check_gate acc g =
    match acc with
    | Error _ as e -> e
    | Ok () ->
      if not (in_range g.output) then Error "gate output out of range"
      else if List.exists (fun net -> not (in_range net)) g.inputs then
        Error "gate input out of range"
      else if List.exists (fun net -> not defined.(net)) g.inputs then
        Error "gates not in topological order"
      else if defined.(g.output) then Error "net driven twice"
      else begin
        defined.(g.output) <- true;
        Ok ()
      end
  in
  match List.fold_left check_gate (Ok ()) t.gates with
  | Error _ as e -> e
  | Ok () ->
    if List.for_all (fun net -> in_range net && defined.(net)) t.outputs then Ok ()
    else Error "undefined primary output"

let gate_count t = List.length t.gates

let random_inputs rng t = Array.init t.n_inputs (fun _ -> Sigkit.Rng.bool rng)
