(** Benchmark netlists.

    Small arithmetic/control circuits standing in for the digital
    section a MixLock-style scheme would lock: a ripple-carry adder, a
    4:1 decoder tree, and a generator of random well-formed netlists
    for property tests. *)

val ripple_adder : int -> Gate.t
(** [ripple_adder w]: two [w]-bit operands (inputs packed a then b),
    outputs the [w+1]-bit sum.  No key inputs. *)

val decoder : int -> Gate.t
(** [decoder w]: [w] select inputs, [2^w] one-hot outputs. *)

val random_logic : Sigkit.Rng.t -> n_inputs:int -> n_gates:int -> Gate.t
(** Random topological netlist with [n_inputs] primary inputs,
    [n_gates] 2-input gates, and the last four nets as outputs. *)
