type result = {
  found_key : bool array option;
  oracle_queries : int;
  candidates_left : int;
}

let key_of_int bits n = Array.init bits (fun i -> n land (1 lsl i) <> 0)

let run ?(max_queries = 256) ?(dip_search = 2000) ~seed (locked : Logic_lock.locked) =
  let key_bits = locked.Logic_lock.circuit.Gate.n_key_inputs in
  if key_bits > 22 then invalid_arg "Sat_attack.run: key space too large to enumerate";
  let rng = Sigkit.Rng.create seed in
  let circuit = locked.Logic_lock.circuit in
  let oracle inputs = Gate.eval locked.Logic_lock.original ~key:[||] inputs in
  (* Candidate keys still consistent with every oracle answer so far. *)
  let alive = Array.make (1 lsl key_bits) true in
  let alive_count = ref (1 lsl key_bits) in
  let queries = ref 0 in
  (* A distinguishing input: some two alive keys disagree on it.  Random
     vectors find DIPs quickly while many wrong keys survive; when the
     search dries up the surviving keys are (almost surely) equivalent. *)
  let rec first_alive i = if alive.(i) then i else first_alive (i + 1) in
  (* Candidates to test against the reference on each trial vector:
     random draws while the alive set is dense, an explicit slice of the
     alive set once it is sparse (random indices would miss it). *)
  let probe_set () =
    let space = 1 lsl key_bits in
    if !alive_count > 1024 then
      List.init 16 (fun _ -> Sigkit.Rng.int_range rng 0 (space - 1))
      |> List.filter (fun c -> alive.(c))
    else begin
      let collected = ref [] and n = ref 0 in
      let start = Sigkit.Rng.int_range rng 0 (space - 1) in
      let i = ref 0 in
      while !n < 64 && !i < space do
        let c = (start + !i) mod space in
        if alive.(c) then begin
          collected := c :: !collected;
          incr n
        end;
        incr i
      done;
      !collected
    end
  in
  let find_dip () =
    let reference_key = key_of_int key_bits (first_alive 0) in
    let rec search n =
      if n = 0 then None
      else begin
        let inputs = Gate.random_inputs rng circuit in
        let reference = Gate.eval circuit ~key:reference_key inputs in
        let disagrees c = Gate.eval circuit ~key:(key_of_int key_bits c) inputs <> reference in
        if List.exists disagrees (probe_set ()) then Some inputs else search (n - 1)
      end
    in
    search dip_search
  in
  let prune inputs =
    incr queries;
    let expected = oracle inputs in
    for candidate = 0 to (1 lsl key_bits) - 1 do
      if alive.(candidate) then
        if Gate.eval circuit ~key:(key_of_int key_bits candidate) inputs <> expected then begin
          alive.(candidate) <- false;
          decr alive_count
        end
    done
  in
  let rec loop () =
    if !queries >= max_queries || !alive_count <= 1 then ()
    else
      match find_dip () with
      | Some dip ->
        prune dip;
        loop ()
      | None -> ()
  in
  loop ();
  let found_key =
    if !alive_count >= 1 then begin
      let key = key_of_int key_bits (first_alive 0) in
      (* Sanity-verify functional equivalence on fresh vectors. *)
      let probe = Sigkit.Rng.create (seed + 1) in
      let equivalent =
        List.for_all
          (fun _ ->
            let inputs = Gate.random_inputs probe circuit in
            Gate.eval circuit ~key inputs = oracle inputs)
          (List.init 128 Fun.id)
      in
      if equivalent then Some key else None
    end
    else None
  in
  { found_key; oracle_queries = !queries; candidates_left = !alive_count }
