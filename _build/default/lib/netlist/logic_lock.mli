(** XOR-based logic locking and its attacks.

    The classic key-gate transformation used by MixLock [9] and the
    calibration-loop lock [10]: key-controlled XOR/XNOR gates are
    inserted on randomly chosen internal wires, so only the correct key
    restores the original function.  The module also carries the two
    generic attacks discussed in the paper: random key search with an
    oracle, and the removal analysis (locking logic is added circuitry
    and can in principle be located and excised). *)

type locked = {
  circuit : Gate.t;          (** with [key_bits] extra key inputs *)
  correct_key : bool array;
  original : Gate.t;
}

val lock : Sigkit.Rng.t -> Gate.t -> key_bits:int -> locked
(** Insert [key_bits] key gates on distinct internal wires.  Raises
    [Invalid_argument] if the circuit has fewer wires than key bits. *)

val corruption : ?samples:int -> ?seed:int -> locked -> key:bool array -> float
(** Fraction of random input vectors on which the locked circuit under
    [key] disagrees with the original (0 for the correct key). *)

val oracle_attack :
  ?samples_per_key:int ->
  ?budget:int ->
  seed:int ->
  locked ->
  [ `Found of bool array * int | `Exhausted of int ]
(** Random key search against an input/output oracle: draw keys, test
    each on random vectors, stop at the first key matching the oracle
    everywhere.  Returns the trials spent. *)

val removal_attack : locked -> Gate.t
(** The removal attack: with the netlist in hand, locate the key gates
    (they are the gates fed by key nets) and excise them, reconnecting
    the original wires.  Returns a circuit equivalent to the original —
    demonstrating why added-circuitry locking is removable while
    fabric locking has nothing to remove. *)
