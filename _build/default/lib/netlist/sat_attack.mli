(** Oracle-guided key pruning — the SAT attack's semantics
    (Subramanyan et al., HOST 2015; paper reference [17]).

    The SAT attack iteratively finds a {e distinguishing input pattern}
    (an input on which two still-candidate keys disagree), queries the
    unlocked oracle on it, and eliminates every key inconsistent with
    the observed output; when no distinguishing input remains, any
    surviving key is functionally correct.  For the key widths used by
    the digital-section locks modelled here the candidate set fits in
    memory, so the attack is implemented exactly (explicit candidate
    enumeration) rather than through a SAT solver — same guarantees,
    same query behaviour.

    The paper's Section IV-B.1 point falls out directly: the attack
    needs a combinational oracle relation [output = f(input, key)],
    which the digital locks of [9]/[10] provide and the
    programmability-fabric lock does not (its "outputs" are analog
    performances of a dynamical system, not Boolean functions). *)

type result = {
  found_key : bool array option;  (** a functionally correct key, if reached *)
  oracle_queries : int;           (** distinguishing inputs used *)
  candidates_left : int;          (** functionally equivalent survivors *)
}

val run :
  ?max_queries:int ->
  ?dip_search:int ->
  seed:int ->
  Logic_lock.locked ->
  result
(** [run ~seed locked] prunes the full key space of [locked] (must be
    <= 22 key bits).  [dip_search] bounds the random search for each
    distinguishing input (default 2000 vectors); [max_queries] bounds
    oracle access (default 256).  Raises [Invalid_argument] for key
    spaces too large to enumerate. *)
