(** Gate-level combinational netlists.

    A small but real logic-netlist engine: the substrate for the
    MixLock-style baselines ([9], [10]) that lock the digital section of
    a mixed-signal circuit, and for their removal/key attacks.  Nets are
    integers; gate order must be topological (asserted at evaluation). *)

type kind =
  | And
  | Or
  | Xor
  | Xnor
  | Nand
  | Nor
  | Not
  | Buf

type gate = {
  kind : kind;
  inputs : int list;   (** net ids *)
  output : int;        (** net id *)
}

type t = {
  n_inputs : int;        (** nets 0 .. n_inputs-1 are primary inputs *)
  n_key_inputs : int;    (** nets n_inputs .. +n_key_inputs-1 are key inputs *)
  n_nets : int;
  gates : gate list;     (** topological order *)
  outputs : int list;    (** primary-output net ids *)
}

val eval : t -> key:bool array -> bool array -> bool array
(** [eval t ~key inputs] computes the primary outputs.  Raises
    [Invalid_argument] on arity mismatches. *)

val validate : t -> (unit, string) result
(** Structural checks: net ranges, topological order, output defined. *)

val gate_count : t -> int

val random_inputs : Sigkit.Rng.t -> t -> bool array
