let ripple_adder w =
  if w < 1 then invalid_arg "ripple_adder: width";
  let n_inputs = 2 * w in
  (* Net allocation: inputs, then per-bit [axb; sum; ab; cin&(axb); cout]. *)
  let next = ref n_inputs in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let gates = ref [] in
  let emit kind inputs output = gates := { Gate.kind; inputs; output } :: !gates in
  let sums = ref [] in
  let carry = ref None in
  for i = 0 to w - 1 do
    let a = i and b = w + i in
    let axb = fresh () in
    emit Gate.Xor [ a; b ] axb;
    let ab = fresh () in
    emit Gate.And [ a; b ] ab;
    match !carry with
    | None ->
      sums := axb :: !sums;
      carry := Some ab
    | Some cin ->
      let sum = fresh () in
      emit Gate.Xor [ axb; cin ] sum;
      sums := sum :: !sums;
      let cin_axb = fresh () in
      emit Gate.And [ cin; axb ] cin_axb;
      let cout = fresh () in
      emit Gate.Or [ ab; cin_axb ] cout;
      carry := Some cout
  done;
  let carry_net =
    match !carry with
    | Some c -> c
    | None -> assert false
  in
  {
    Gate.n_inputs;
    n_key_inputs = 0;
    n_nets = !next;
    gates = List.rev !gates;
    outputs = List.rev (carry_net :: !sums);
  }

let decoder w =
  if w < 1 || w > 6 then invalid_arg "decoder: width";
  let n_inputs = w in
  let next = ref n_inputs in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let gates = ref [] in
  let emit kind inputs output = gates := { Gate.kind; inputs; output } :: !gates in
  (* Inverted selects. *)
  let inv = Array.init w (fun i ->
      let id = fresh () in
      emit Gate.Not [ i ] id;
      id)
  in
  let outputs =
    List.init (1 lsl w) (fun code ->
        let terms = List.init w (fun bit -> if code land (1 lsl bit) <> 0 then bit else inv.(bit)) in
        let id = fresh () in
        emit Gate.And terms id;
        id)
  in
  { Gate.n_inputs; n_key_inputs = 0; n_nets = !next; gates = List.rev !gates; outputs }

let random_logic rng ~n_inputs ~n_gates =
  if n_inputs < 2 || n_gates < 4 then invalid_arg "random_logic: too small";
  let next = ref n_inputs in
  let gates = ref [] in
  let kinds = [| Gate.And; Gate.Or; Gate.Xor; Gate.Nand; Gate.Nor |] in
  for _ = 1 to n_gates do
    let output = !next in
    incr next;
    let pick () = Sigkit.Rng.int_range rng 0 (output - 1) in
    let kind = kinds.(Sigkit.Rng.int_range rng 0 (Array.length kinds - 1)) in
    gates := { Gate.kind; inputs = [ pick (); pick () ]; output } :: !gates
  done;
  let n_nets = !next in
  let n_out = min 4 n_gates in
  let outputs = List.init n_out (fun i -> n_nets - 1 - i) in
  { Gate.n_inputs; n_key_inputs = 0; n_nets; gates = List.rev !gates; outputs }
