(** Calibration of the analog front end — the small-scale secret
    algorithm producing this case study's 24-bit keys.

    Steps: (1) select the PGA code for the target gain and trim by
    measurement; (2) tune the capacitor bank until the measured -3 dB
    point hits the target cutoff (coarse binary search, then fine);
    (3) null the output offset with the trim DAC; (4) pick the Q trim
    by flatness.  Gain, offset and Q decisions use bench measurements
    through the public {!Afe_chain.run} path; the capacitor search uses
    the frequency-response analyser's cutoff readout
    ({!Afe_chain.cutoff_hz}), the AFE-scale analogue of the RF
    oscillation-mode measurement. *)

type report = {
  key : Afe_config.t;
  measurement : Afe_chain.measurement;
  in_spec : bool;
  bench_runs : int;
}

val run : ?spec:Afe_chain.spec -> Afe_chain.t -> report
