type t = {
  cutoff_coarse : int;
  cutoff_fine : int;
  q_trim : int;
  pga_gain : int;
  offset_trim : int;
}

let key_bits = 24

let fields : (string * int * int * (t -> int) * (t -> int -> t)) list =
  [
    ("cutoff_coarse", 0, 6, (fun c -> c.cutoff_coarse), fun c v -> { c with cutoff_coarse = v });
    ("cutoff_fine", 6, 5, (fun c -> c.cutoff_fine), fun c v -> { c with cutoff_fine = v });
    ("q_trim", 11, 4, (fun c -> c.q_trim), fun c v -> { c with q_trim = v });
    ("pga_gain", 15, 4, (fun c -> c.pga_gain), fun c v -> { c with pga_gain = v });
    ("offset_trim", 19, 5, (fun c -> c.offset_trim), fun c v -> { c with offset_trim = v });
  ]

let nominal = { cutoff_coarse = 32; cutoff_fine = 16; q_trim = 8; pga_gain = 8; offset_trim = 16 }

let to_bits c =
  List.fold_left
    (fun acc (_, offset, width, get, _) -> acc lor ((get c land ((1 lsl width) - 1)) lsl offset))
    0 fields

let of_bits bits =
  List.fold_left
    (fun c (_, offset, width, _, set) -> set c ((bits lsr offset) land ((1 lsl width) - 1)))
    nominal fields

let random rng = of_bits (Sigkit.Rng.int_range rng 0 ((1 lsl key_bits) - 1))

let equal a b = to_bits a = to_bits b

let hamming_distance a b =
  let rec pop x acc = if x = 0 then acc else pop (x land (x - 1)) (acc + 1) in
  pop (to_bits a lxor to_bits b) 0

let validate c =
  let bad =
    List.find_opt
      (fun (_, _, width, get, _) ->
        let v = get c in
        v < 0 || v >= 1 lsl width)
      fields
  in
  match bad with
  | None -> Ok c
  | Some (name, _, _, _, _) -> Error (Printf.sprintf "field %s out of range" name)
