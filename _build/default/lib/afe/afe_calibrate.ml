type report = {
  key : Afe_config.t;
  measurement : Afe_chain.measurement;
  in_spec : bool;
  bench_runs : int;
}

let run ?(spec = Afe_chain.default_spec) afe =
  let runs = ref 0 in
  let probe_gain config =
    incr runs;
    (Afe_chain.measure afe config).Afe_chain.gain_db
  in
  ignore probe_gain;
  (* Step 1: PGA code nearest the gain target, by measurement of a
     cheap single tone per candidate around the table code. *)
  let table_code =
    max 0 (min 15 (int_of_float (Float.round (spec.Afe_chain.gain_target_db /. 2.0))))
  in
  let gain_at code =
    incr runs;
    Afe_chain.pga_gain_db afe { Afe_config.nominal with pga_gain = code }
  in
  let pga_gain =
    List.fold_left
      (fun best code ->
        if
          code >= 0 && code <= 15
          && Float.abs (gain_at code -. spec.Afe_chain.gain_target_db)
             < Float.abs (gain_at best -. spec.Afe_chain.gain_target_db)
        then code
        else best)
      table_code
      [ table_code - 1; table_code; table_code + 1 ]
  in
  let base = { Afe_config.nominal with pga_gain } in
  (* Step 2: cutoff tuning.  More capacitance, lower cutoff: binary
     search the coarse bank on the realised cutoff, then the fine. *)
  let cutoff_with config =
    incr runs;
    Afe_chain.cutoff_hz afe config
  in
  let search field max_code current =
    let with_code code = Afe_config.of_bits (Afe_config.to_bits current) |> fun c ->
      match field with
      | `Coarse -> { c with Afe_config.cutoff_coarse = code }
      | `Fine -> { c with Afe_config.cutoff_fine = code }
    in
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cutoff_with (with_code mid) > Afe_chain.target_cutoff_hz then go (mid + 1) hi
        else go lo mid
    in
    let candidate = go 0 max_code in
    let better a b =
      Float.abs (cutoff_with (with_code a) -. Afe_chain.target_cutoff_hz)
      < Float.abs (cutoff_with (with_code b) -. Afe_chain.target_cutoff_hz)
    in
    let best = if candidate > 0 && better (candidate - 1) candidate then candidate - 1 else candidate in
    with_code best
  in
  let tuned_coarse = search `Coarse 63 base in
  let tuned = search `Fine 31 tuned_coarse in
  (* Step 3: offset null — one measurement gives the residual, the trim
     DAC step is design knowledge (0.7 mV/LSB). *)
  let with_offset =
    incr runs;
    let quiet = Afe_chain.run afe tuned (Array.make 2048 0.0) in
    let offset = Sigkit.Waveform.mean (Array.sub quiet 1024 1024) in
    let code = tuned.Afe_config.offset_trim + int_of_float (Float.round (offset /. 0.7e-3)) in
    { tuned with Afe_config.offset_trim = max 0 (min 31 code) }
  in
  (* Step 4: Q trim by minimising the cutoff error (peaking moves the
     measured -3 dB point), scanning the 16 codes coarsely. *)
  let q_candidates = [ 2; 4; 6; 8; 10; 12 ] in
  let best_q =
    List.fold_left
      (fun (best_code, best_err) code ->
        let config = { with_offset with Afe_config.q_trim = code } in
        incr runs;
        let m = Afe_chain.measure afe config in
        let err =
          m.Afe_chain.cutoff_error_hz
          +. (50e3 *. Float.abs (m.Afe_chain.gain_db -. spec.Afe_chain.gain_target_db))
        in
        if err < best_err then (code, err) else (best_code, best_err))
      (with_offset.Afe_config.q_trim, infinity)
      q_candidates
  in
  let with_q = { with_offset with Afe_config.q_trim = fst best_q } in
  (* Step 5: final fine-capacitor touch-up against the *measured* -3 dB
     point (Q peaking shifts it away from the design-equation value the
     coarse search used). *)
  let key =
    List.fold_left
      (fun (best, best_err) delta ->
        let code = with_q.Afe_config.cutoff_fine + delta in
        if code < 0 || code > 31 then (best, best_err)
        else begin
          let candidate = { with_q with Afe_config.cutoff_fine = code } in
          incr runs;
          let err = (Afe_chain.measure afe candidate).Afe_chain.cutoff_error_hz in
          if err < best_err then (candidate, err) else (best, best_err)
        end)
      (with_q, (Afe_chain.measure afe with_q).Afe_chain.cutoff_error_hz)
      [ -15; -12; -9; -6; -3; 3; 6; 9; 12; 15 ]
    |> fst
  in
  incr runs;
  let measurement = Afe_chain.measure afe key in
  { key; measurement; in_spec = Afe_chain.in_spec spec measurement; bench_runs = !runs }
