(** Configuration word of the second case study: a programmable
    baseband analog front end (PGA + Gm-C low-pass filter).

    The paper argues fabric locking applies to the whole class of
    highly-programmable analog ICs, with programmability "from a few
    bits for calibrating single blocks to tens of bits for calibrating
    complete systems" (Section III).  This AFE sits at the small end:
    a 24-bit word.

    Layout (LSB first):
    {v
      0- 5  cutoff_coarse  filter capacitor bank, coarse
      6-10  cutoff_fine    filter capacitor bank, fine
     11-14  q_trim         biquad Q trim
     15-18  pga_gain       PGA gain select (16 steps)
     19-23  offset_trim    output offset trim DAC
    v} *)

type t = {
  cutoff_coarse : int;
  cutoff_fine : int;
  q_trim : int;
  pga_gain : int;
  offset_trim : int;
}

val key_bits : int
(** 24. *)

val nominal : t
val to_bits : t -> int
val of_bits : int -> t
val random : Sigkit.Rng.t -> t
val equal : t -> t -> bool
val hamming_distance : t -> t -> int
val validate : t -> (t, string) result
