(** The programmable baseband analog front end: PGA + 2nd-order Gm-C
    low-pass filter with an output offset trim.

    A sensor/baseband conditioning chain sampled at 10 MS/s.  Design
    targets: 1 MHz cutoff Butterworth-ish response, selectable gain
    0-30 dB in 2 dB steps, output offset below 2 mV.  Every target
    needs its per-die configuration — the 24-bit word of
    {!Afe_config} — because the Gm cells, capacitor bank and offsets
    all carry process variation. *)

val fs : float
(** 10 MS/s. *)

val target_cutoff_hz : float
(** 1 MHz design cutoff. *)

type t

val create : Circuit.Process.chip -> t

val cutoff_hz : t -> Afe_config.t -> float
(** Realised filter cutoff under a word (model ground truth; the
    calibration measures it through {!run} instead). *)

val pga_gain_db : t -> Afe_config.t -> float
(** Realised PGA gain. *)

val run : t -> Afe_config.t -> float array -> float array
(** Process a record through PGA, filter and offset trim (adds the
    chain's thermal noise). *)

type measurement = {
  gain_db : float;            (** passband gain at fs/100 *)
  cutoff_error_hz : float;    (** |realised -3 dB point - target| *)
  offset_v : float;           (** residual DC offset *)
  thd_db : float;             (** third-harmonic distortion at -6 dBFS *)
}

val measure : t -> Afe_config.t -> measurement
(** Bench characterisation: tone sweeps, DC measurement and a
    distortion test, all through {!run}. *)

type spec = {
  max_cutoff_error_hz : float;
  gain_target_db : float;
  max_gain_error_db : float;
  max_offset_v : float;
  min_thd_db : float;         (** required |THD| (dB below carrier) *)
}

val default_spec : spec
(** 20 dB gain +-1 dB, cutoff within 50 kHz, offset under 2 mV, THD
    better than 40 dB. *)

val in_spec : spec -> measurement -> bool
