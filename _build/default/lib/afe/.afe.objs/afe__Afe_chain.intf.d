lib/afe/afe_chain.mli: Afe_config Circuit
