lib/afe/afe_chain.ml: Afe_config Array Circuit Float Printf Sigkit
