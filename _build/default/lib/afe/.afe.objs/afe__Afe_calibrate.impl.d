lib/afe/afe_calibrate.ml: Afe_chain Afe_config Array Float List Sigkit
