lib/afe/afe_calibrate.mli: Afe_chain Afe_config
