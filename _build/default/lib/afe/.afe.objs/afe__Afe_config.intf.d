lib/afe/afe_config.mli: Sigkit
