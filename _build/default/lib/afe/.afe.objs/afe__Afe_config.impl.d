lib/afe/afe_config.ml: List Printf Sigkit
