(** Remote activation for high-volume production (paper Section IV-B.4).

    When calibration must run at an untrusted test facility, the
    design house activates chips remotely using asymmetric cryptography
    (the EPIC-style flow of reference [15]): the die identifies itself
    with a PUF response, the design house returns the user key together
    with a signature binding it to that die, and the chip's boot ROM
    (which embeds only the design house's public key) verifies the
    signature before accepting the key.  The facility can neither forge
    activations for overproduced dice nor transplant an activation onto
    a different die.

    The RSA here uses 31-bit primes — a protocol model, NOT
    cryptographically strong (documented substitution in DESIGN.md). *)

type keypair
type public_key

val design_house_keys : unit -> keypair
(** Deterministic demo keypair (fixed primes). *)

val public_of : keypair -> public_key

type activation = {
  chip_id : int64;        (** PUF response presented by the die *)
  user_key : Key_mgmt.user_key;
  signature : int64;
}

val issue : keypair -> chip_id:int64 -> Key_mgmt.user_key -> activation
(** Design house side: sign (chip id, user key). *)

val verify : public_key -> activation -> bool
(** Chip side: check the signature binds this user key to this die. *)

val accept : public_key -> expected_chip_id:int64 -> activation -> (Key_mgmt.user_key, string) result
(** Full boot-ROM check: signature valid and chip id matches the die's
    own PUF response. *)
