type t = { rng_root : Sigkit.Rng.t }

let enroll chip = { rng_root = Circuit.Process.noise_stream chip ~name:"puf.entropy" }

let response t ~challenge =
  let stream = Sigkit.Rng.split t.rng_root (Printf.sprintf "challenge:%d" challenge) in
  Sigkit.Rng.bits64 stream

let challenge_of_standard standard =
  (* Conventional, public mapping from mode name to challenge index. *)
  Hashtbl.hash standard

let response_for_standard t ~standard = response t ~challenge:(challenge_of_standard standard)

let popcount64 x =
  let rec go x acc = if x = 0L then acc else go (Int64.logand x (Int64.sub x 1L)) (acc + 1) in
  go x 0

let uniqueness a b =
  let challenges = 64 in
  let total = ref 0 in
  for c = 0 to challenges - 1 do
    total := !total + popcount64 (Int64.logxor (response a ~challenge:c) (response b ~challenge:c))
  done;
  float_of_int !total /. float_of_int (challenges * 64)
