lib/core/key_mgmt.ml: Int64 Key List Lut_memory Puf Rfchain
