lib/core/lock_eval.ml: Float List Metrics Rfchain Sigkit
