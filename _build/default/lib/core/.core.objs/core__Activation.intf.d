lib/core/activation.mli: Key_mgmt
