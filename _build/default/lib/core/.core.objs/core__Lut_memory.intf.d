lib/core/lut_memory.mli: Rfchain
