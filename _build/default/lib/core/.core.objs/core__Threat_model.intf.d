lib/core/threat_model.mli: Key Rfchain
