lib/core/activation.ml: Char Int64 Key_mgmt String
