lib/core/threat_model.ml: Circuit Key Key_mgmt List Metrics Printf Rfchain
