lib/core/key.mli: Circuit Format Metrics Rfchain
