lib/core/puf.mli: Circuit
