lib/core/key.ml: Circuit Format Metrics Rfchain
