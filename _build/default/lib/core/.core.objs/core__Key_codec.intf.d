lib/core/key_codec.mli: Key Rfchain
