lib/core/lock_eval.mli: Rfchain
