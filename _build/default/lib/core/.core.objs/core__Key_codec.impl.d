lib/core/key_codec.ml: Buffer Int64 Key List Printf Rfchain String
