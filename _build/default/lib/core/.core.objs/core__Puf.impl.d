lib/core/puf.ml: Circuit Hashtbl Int64 Printf Sigkit
