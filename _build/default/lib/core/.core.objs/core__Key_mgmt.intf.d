lib/core/key_mgmt.mli: Circuit Key Lut_memory Puf Rfchain
