lib/core/lut_memory.ml: List Rfchain
