type scheme =
  | Tamper_proof_lut of Lut_memory.t
  | Puf_xor of Puf.t

type user_key = {
  standard : string;
  key_bits : int64;
}

let provision_lut keys =
  let entries = List.map (fun k -> (k.Key.standard, Key.config k)) keys in
  Tamper_proof_lut (Lut_memory.provision entries)

let provision_puf chip keys =
  let puf = Puf.enroll chip in
  let user_key k =
    let response = Puf.response_for_standard puf ~standard:k.Key.standard in
    { standard = k.Key.standard; key_bits = Int64.logxor response (Key.bits k) }
  in
  (Puf_xor puf, List.map user_key keys)

let power_on scheme ?(user_keys = []) ~standard () =
  match scheme with
  | Tamper_proof_lut lut -> (
    match Lut_memory.select lut ~standard with
    | Ok config -> Ok config
    | Error Lut_memory.Tamper_response_triggered -> Error "tamper response triggered"
    | Error Lut_memory.Not_provisioned -> Error ("no configuration for mode " ^ standard))
  | Puf_xor puf -> (
    match List.find_opt (fun k -> k.standard = standard) user_keys with
    | None -> Error ("no user key supplied for mode " ^ standard)
    | Some k ->
      let response = Puf.response_for_standard puf ~standard in
      Ok (Rfchain.Config.of_bits (Int64.logxor response k.key_bits)))
