type t = {
  standard : string;
  chip_seed : int;
  config : Rfchain.Config.t;
}

let make ~standard ~chip config =
  {
    standard = standard.Rfchain.Standards.name;
    chip_seed = Circuit.Process.seed chip;
    config;
  }

let config t = t.config
let bits t = Rfchain.Config.to_bits t.config
let key_width = Rfchain.Config.key_bits
let equal a b = a.standard = b.standard && a.chip_seed = b.chip_seed && Rfchain.Config.equal a.config b.config
let hamming_distance a b = Rfchain.Config.hamming_distance a.config b.config

let pp fmt t =
  Format.fprintf fmt "@[<v>key for %s (die %d): 0x%016Lx@,%a@]" t.standard t.chip_seed
    (Rfchain.Config.to_bits t.config) Rfchain.Config.pp t.config

let unlocks _t measurement standard =
  (Metrics.Spec.check standard measurement).Metrics.Spec.functional

let search_space = 2.0 ** 64.0
