(** Serialization of keys and provisioning records.

    The design house's secure database and the provisioning flow need a
    durable representation of configuration settings.  Keys serialise
    to 16-digit hex words; a provisioning record is a line-oriented
    text image ("die <seed>" header, one "<standard>=<hex>" line per
    mode, '#' comments), with strict, total parsing. *)

val config_to_hex : Rfchain.Config.t -> string
(** 16 lowercase hex digits, no prefix. *)

val config_of_hex : string -> (Rfchain.Config.t, string) result
(** Strict inverse: exactly 16 hex digits. *)

type record = {
  chip_seed : int;
  entries : (string * Rfchain.Config.t) list;
}

val record_of_keys : Key.t list -> (record, string) result
(** All keys must belong to the same die. *)

val to_image : record -> string
(** Render the provisioning image. *)

val of_image : string -> (record, string) result
(** Parse an image; reports the offending line on failure. *)
