type readout_error =
  | Tamper_response_triggered
  | Not_provisioned

type t = {
  mutable entries : (string * Rfchain.Config.t) list;
  mutable tampered : bool;
}

let provision entries = { entries; tampered = false }

let select t ~standard =
  if t.tampered then Error Tamper_response_triggered
  else
    match List.assoc_opt standard t.entries with
    | Some config -> Ok config
    | None -> Error Not_provisioned

let standards t = List.map fst t.entries

let raw_readout t =
  (* Tamper-proof: the attempt itself zeroises the store. *)
  t.tampered <- true;
  t.entries <- [];
  Error Tamper_response_triggered

let tampered t = t.tampered
