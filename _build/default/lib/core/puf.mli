(** Physical Unclonable Function (key-management scheme of Fig. 3b).

    A per-die challenge-response function rooted in manufacturing
    entropy: the same challenge gives the same response on the same die
    and an unrelated response on any other die.  The behavioural model
    derives responses from the die's process-variation identity — the
    same entropy source a silicon PUF would harvest — so clones
    (identical layout, different dice) produce different responses.

    In the Fig. 3b scheme the design house measures the responses once
    (enrolment), XORs them with the secret configuration settings and
    hands the resulting user keys to the customer: at every power-on
    the chip XORs user key and response to recover the programming
    bits.  Neither the user keys nor the responses alone reveal the
    configuration. *)

type t

val enroll : Circuit.Process.chip -> t
(** Harvest the die's entropy (factory enrolment). *)

val response : t -> challenge:int -> int64
(** Stable per-die response to a challenge. *)

val response_for_standard : t -> standard:string -> int64
(** The scheme assigns one challenge per configuration setting; this is
    the conventional challenge derived from the mode name. *)

val uniqueness : t -> t -> float
(** Mean inter-die response Hamming distance over a challenge sample,
    as a fraction (ideal 0.5). *)
