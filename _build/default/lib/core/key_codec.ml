let config_to_hex config = Printf.sprintf "%016Lx" (Rfchain.Config.to_bits config)

let is_hex_digit c =
  (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let config_of_hex s =
  if String.length s <> 16 then Error (Printf.sprintf "expected 16 hex digits, got %d" (String.length s))
  else if not (String.for_all is_hex_digit s) then Error ("invalid hex digits in " ^ s)
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some bits -> Ok (Rfchain.Config.of_bits bits)
    | None -> Error ("unparsable hex word " ^ s)

type record = {
  chip_seed : int;
  entries : (string * Rfchain.Config.t) list;
}

let record_of_keys keys =
  match keys with
  | [] -> Error "no keys to record"
  | first :: _ ->
    let seed = first.Key.chip_seed in
    if List.exists (fun k -> k.Key.chip_seed <> seed) keys then
      Error "keys belong to different dice"
    else if
      List.length (List.sort_uniq compare (List.map (fun k -> k.Key.standard) keys))
      <> List.length keys
    then Error "duplicate standard in key set"
    else
      Ok { chip_seed = seed; entries = List.map (fun k -> (k.Key.standard, Key.config k)) keys }

let to_image r =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "# analoglock provisioning record\n";
  Buffer.add_string buffer (Printf.sprintf "die %d\n" r.chip_seed);
  List.iter
    (fun (standard, config) ->
      Buffer.add_string buffer (Printf.sprintf "%s=%s\n" standard (config_to_hex config)))
    r.entries;
  Buffer.contents buffer

let of_image text =
  let lines = String.split_on_char '\n' text in
  let rec parse seen_die entries line_no = function
    | [] -> (
      match seen_die with
      | Some chip_seed -> Ok { chip_seed; entries = List.rev entries }
      | None -> Error "missing 'die <seed>' header")
    | line :: rest ->
      let line_no = line_no + 1 in
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then parse seen_die entries line_no rest
      else if String.length trimmed > 4 && String.sub trimmed 0 4 = "die " then (
        match int_of_string_opt (String.trim (String.sub trimmed 4 (String.length trimmed - 4))) with
        | Some seed when seen_die = None -> parse (Some seed) entries line_no rest
        | Some _ -> Error (Printf.sprintf "line %d: duplicate die header" line_no)
        | None -> Error (Printf.sprintf "line %d: bad die seed" line_no))
      else
        match String.index_opt trimmed '=' with
        | None -> Error (Printf.sprintf "line %d: expected <standard>=<hex>" line_no)
        | Some eq ->
          let standard = String.sub trimmed 0 eq in
          let hex = String.sub trimmed (eq + 1) (String.length trimmed - eq - 1) in
          if standard = "" then Error (Printf.sprintf "line %d: empty standard name" line_no)
          else if List.mem_assoc standard entries then
            Error (Printf.sprintf "line %d: duplicate standard %s" line_no standard)
          else (
            match config_of_hex (String.trim hex) with
            | Ok config -> parse seen_die ((standard, config) :: entries) line_no rest
            | Error e -> Error (Printf.sprintf "line %d: %s" line_no e))
  in
  parse None [] 0 lines
