(** Key management schemes (paper Fig. 3) and the power-on flow.

    Two provisioning options protect the configuration settings on the
    die: a tamper-proof LUT holding them directly (Fig. 3a), or a PUF
    whose responses are XORed with user-held keys (Fig. 3b).  The PUF
    scheme additionally resists recycling: the user keys must be loaded
    at every power-on, so a chip pulled from e-waste is inert. *)

type scheme =
  | Tamper_proof_lut of Lut_memory.t
  | Puf_xor of Puf.t   (** user keys live off-chip, supplied at power-on *)

type user_key = {
  standard : string;
  key_bits : int64;    (** PUF-response-masked configuration word *)
}

val provision_lut : Key.t list -> scheme
(** Fig. 3a: write the calibrated settings into tamper-proof memory. *)

val provision_puf : Circuit.Process.chip -> Key.t list -> scheme * user_key list
(** Fig. 3b: enrol the PUF and derive the user keys handed to the
    customer ([user_key = response XOR configuration]). *)

val power_on :
  scheme ->
  ?user_keys:user_key list ->
  standard:string ->
  unit ->
  (Rfchain.Config.t, string) result
(** The chip's power-on sequence: recover and load the programming bits
    for the selected mode.  The PUF scheme fails without the matching
    user key — which is the recycling countermeasure. *)
