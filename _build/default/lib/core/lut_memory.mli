(** Tamper-proof configuration LUT (key-management scheme of Fig. 3a).

    The configuration settings are provisioned into an on-chip
    tamper-proof memory; in normal operation the circuit dynamically
    commands the memory to load the programming bits for the selected
    operation mode.  Physical or protocol attempts to read the raw
    contents trip the tamper response and zeroise the memory. *)

type t

type readout_error =
  | Tamper_response_triggered  (** raw readout attempt: memory zeroised *)
  | Not_provisioned

val provision : (string * Rfchain.Config.t) list -> t
(** Write the per-standard configuration settings (done in the design
    house's secure environment). *)

val select : t -> standard:string -> (Rfchain.Config.t, readout_error) result
(** Normal-operation load of one mode's programming bits.  Fails after
    a tamper event. *)

val standards : t -> string list
(** Provisioned mode names (not secret: the datasheet lists them). *)

val raw_readout : t -> (int64 list, readout_error) result
(** An attacker's attempt to dump the memory.  Always triggers the
    tamper response: returns an error and renders {!select}
    unusable afterwards. *)

val tampered : t -> bool
