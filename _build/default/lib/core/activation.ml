type keypair = {
  n : int64;
  e : int64;
  d : int64;
}

type public_key = {
  pub_n : int64;
  pub_e : int64;
}

(* Modular arithmetic on int64 via shift-and-add to avoid overflow:
   n < 2^62, so (acc + acc) and (acc + b) stay below 2^63. *)
let add_mod a b m = Int64.rem (Int64.add a b) m

let mul_mod a b m =
  let rec go acc a b =
    if b = 0L then acc
    else
      let acc = if Int64.logand b 1L = 1L then add_mod acc a m else acc in
      go acc (add_mod a a m) (Int64.shift_right_logical b 1)
  in
  go 0L (Int64.rem a m) b

let pow_mod base exp m =
  let rec go acc base exp =
    if exp = 0L then acc
    else
      let acc = if Int64.logand exp 1L = 1L then mul_mod acc base m else acc in
      go acc (mul_mod base base m) (Int64.shift_right_logical exp 1)
  in
  go 1L (Int64.rem base m) exp

(* Fixed 31-bit primes: protocol model only. *)
let p = 2147483647L (* 2^31 - 1, Mersenne *)
let q = 2147483629L

let design_house_keys () =
  let n = Int64.mul p q in
  let phi = Int64.mul (Int64.sub p 1L) (Int64.sub q 1L) in
  let e = 65537L in
  (* d = e^-1 mod phi by extended Euclid over native ints (phi < 2^62). *)
  let rec egcd a b = if b = 0L then (a, 1L, 0L)
    else
      let g, x, y = egcd b (Int64.rem a b) in
      (g, y, Int64.sub x (Int64.mul (Int64.div a b) y))
  in
  let _, x, _ = egcd e phi in
  let d = Int64.rem (Int64.add (Int64.rem x phi) phi) phi in
  { n; e; d }

let public_of kp = { pub_n = kp.n; pub_e = kp.e }

type activation = {
  chip_id : int64;
  user_key : Key_mgmt.user_key;
  signature : int64;
}

(* A toy digest binding chip id, mode and key bits, reduced mod n. *)
let digest ~n ~chip_id (uk : Key_mgmt.user_key) =
  let h = ref 0xCBF29CE484222325L in
  let feed v =
    h := Int64.logxor !h v;
    h := Int64.mul !h 0x100000001B3L
  in
  feed chip_id;
  feed uk.Key_mgmt.key_bits;
  String.iter (fun c -> feed (Int64.of_int (Char.code c))) uk.Key_mgmt.standard;
  Int64.rem (Int64.logand !h Int64.max_int) n

let issue kp ~chip_id user_key =
  let m = digest ~n:kp.n ~chip_id user_key in
  { chip_id; user_key; signature = pow_mod m kp.d kp.n }

let verify pub act =
  let m = digest ~n:pub.pub_n ~chip_id:act.chip_id act.user_key in
  pow_mod act.signature pub.pub_e pub.pub_n = m

let accept pub ~expected_chip_id act =
  if act.chip_id <> expected_chip_id then Error "activation bound to a different die"
  else if not (verify pub act) then Error "invalid design-house signature"
  else Ok act.user_key
