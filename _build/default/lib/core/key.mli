(** Secret keys of the programmability-fabric locking scheme.

    The paper's central idea (Section IV-A): the programming bits that
    configure the analog section {e are} the key bits, and each
    configuration setting — per standard, per die — is a secret key.
    No extra circuitry exists: an invalid key is simply a configuration
    under which the receiver does not meet its specifications. *)

type t = {
  standard : string;              (** operation mode this key unlocks *)
  chip_seed : int;                (** die the key was calibrated for *)
  config : Rfchain.Config.t;      (** the 64 programming bits *)
}

val make : standard:Rfchain.Standards.t -> chip:Circuit.Process.chip -> Rfchain.Config.t -> t

val config : t -> Rfchain.Config.t
val bits : t -> int64
val key_width : int
(** 64 key bits, the case study's width. *)

val equal : t -> t -> bool
val hamming_distance : t -> t -> int
val pp : Format.formatter -> t -> unit

val unlocks : t -> Metrics.Spec.measurement -> Rfchain.Standards.t -> bool
(** Whether measurements taken under this key meet the standard's
    specification — the operational definition of "unlocked". *)

val search_space : float
(** 2^64 as a float, for attack-cost arithmetic. *)
