type t = {
  correct_samples : float array;
  deceptive_samples : float array;
  correct_is_bitstream : bool;
  deceptive_is_analog : bool;
}

let is_bitstream samples =
  Array.for_all (fun v -> Float.abs (Float.abs v -. 1.0) < 1e-9) samples

(* Analog: a meaningful fraction of samples away from the rails. *)
let is_analog samples =
  let interior =
    Array.fold_left (fun acc v -> if Float.abs v < 0.9 then acc + 1 else acc) 0 samples
  in
  interior * 4 > Array.length samples

let run ?(window = 64) (ctx : Context.t) =
  let bench = Metrics.Measure.create ctx.Context.rx in
  let slice record = Array.sub record (Array.length record - window) window in
  let correct_samples = slice (Metrics.Measure.mod_output bench ctx.Context.golden) in
  let deceptive = Context.deceptive_example ctx in
  let deceptive_samples = slice (Metrics.Measure.mod_output bench deceptive) in
  {
    correct_samples;
    deceptive_samples;
    correct_is_bitstream = is_bitstream correct_samples;
    deceptive_is_analog = is_analog deceptive_samples;
  }

let checks t =
  [
    ("correct key output is a +-1 bitstream", t.correct_is_bitstream);
    ("deceptive key output is an analog waveform", t.deceptive_is_analog);
  ]

let print t =
  Printf.printf "# Fig. 8 — transient modulator output (steady-state window)\n";
  Printf.printf "# sample  correct  deceptive\n";
  Array.iteri
    (fun i v -> Printf.printf "%7d  %7.3f  %9.4f\n" i v t.deceptive_samples.(i))
    t.correct_samples;
  let wave marker samples =
    Ascii_plot.series ~marker
      (Array.to_list (Array.mapi (fun i v -> (float_of_int i, v)) samples))
  in
  Printf.printf "\ncorrect key (bitstream):\n";
  Ascii_plot.print
    (Ascii_plot.render ~height:9 ~x_label:"sample" ~y_range:(-1.3, 1.3) (wave '#' t.correct_samples));
  Printf.printf "deceptive key (analog waveform):\n";
  Ascii_plot.print
    (Ascii_plot.render ~height:9 ~x_label:"sample" ~y_range:(-1.3, 1.3) (wave '*' t.deceptive_samples));
  List.iter (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (checks t)
