(** Figure 10: PSD at the modulator output, correct vs deceptive key.

    The correct key shows the band-pass noise-shaping notch around the
    carrier — the modulator's defining signature; the deceptive key
    shows no noise shaping at all. *)

type t = {
  freqs_hz : float array;          (** bin centres across the spectrum *)
  correct_psd_db : float array;
  deceptive_psd_db : float array;
  notch_depth_correct_db : float;  (** shoulder-to-notch contrast *)
  notch_depth_deceptive_db : float;
}

val run : ?points:int -> Context.t -> t
(** PSDs averaged into [points] display bins (default 96). *)

val checks : t -> (string * bool) list

val print : t -> unit
