(** Key-distance avalanche study.

    How quickly does functionality collapse as a key moves away from
    the correct one?  For each Hamming distance d, flip d random key
    bits of the golden configuration and measure the SNR.  The paper's
    locking argument wants a cliff, not a slope: a near-miss key should
    already be far out of spec, otherwise an attacker could polish a
    partially working key bit by bit.  The per-bit structure also shows
    which fields carry the "strong" key bits (mode bits, coarse
    capacitors, loop delay) versus the "weak" trims. *)

type distance_stat = {
  distance : int;
  mean_snr_db : float;
  max_snr_db : float;
  samples : int;
}

type bit_impact = {
  bit : int;            (** bit position in the 64-bit word *)
  field : string;       (** owning configuration field *)
  snr_drop_db : float;  (** SNR loss from flipping just this bit *)
}

type t = {
  golden_snr_db : float;
  by_distance : distance_stat list;
  single_bit : bit_impact list;   (** all 64 bits, strongest first *)
}

val run : ?distances:int list -> ?samples_per_distance:int -> Context.t -> t
(** Defaults: distances 1, 2, 4, 8, 16, 32 with 6 samples each, plus
    the exhaustive 64 single-bit flips. *)

val checks : Context.t -> t -> (string * bool) list

val print : t -> unit
