(** Ablations of the design choices DESIGN.md calls out.

    - {b slicing}: disable the digital section's 1-bit input boundary
      and show the deceptive key would keep its modulator-output SNR
      through the receiver — i.e. Fig. 9's collapse is the slicing.
    - {b process variation}: fabricate with variation off and show the
      golden key transfers between dice, destroying per-chip key
      uniqueness (Section IV-C's premise).
      (The capacitor-coding and internal-tap ablations live in
      {!Security_table}.) *)

type slicing = {
  deceptive_snr_rx_sliced_db : float;
  deceptive_snr_rx_unsliced_db : float;
}

type variation = {
  transfer_snr_with_variation_db : float;
  (** die A's key applied to die B, nominal process *)
  transfer_snr_without_variation_db : float;
  (** same with variation disabled (ideal process) *)
  own_snr_db : float;  (** die A's key on die A, reference *)
}

type t = {
  slicing : slicing;
  variation : variation;
}

val run : Context.t -> t

val checks : Context.t -> t -> (string * bool) list

val print : Context.t -> t -> unit
