(** Figures 7 and 9: SNR under the correct key and 100 random invalid
    keys, at the modulator output (Fig. 7) and at the receiver output
    (Fig. 9).

    Expected shape (paper): correct key above 40 dB at both taps; all
    invalid keys below 30 dB at the modulator output, most below 0 dB,
    a handful above 10 dB; the best invalid ("deceptive") key loses its
    advantage at the receiver output, where every invalid key sits
    below 10 dB. *)

type t = {
  eval : Core.Lock_eval.t;
  deceptive : Core.Lock_eval.key_result;  (** the paper's "index 7" key *)
  summary : Core.Lock_eval.summary;
}

val run : ?n_invalid:int -> Context.t -> t

val checks : t -> (string * bool) list
(** The paper's qualitative claims as named pass/fail checks. *)

val print : t -> unit
(** Emit both figures' data series (index vs SNR) and the summary. *)
