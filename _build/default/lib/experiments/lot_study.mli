(** Production-lot Monte-Carlo study.

    The paper's premise (Section III): process variations make the
    calibrated configuration settings unique per chip — which is what
    turns them into per-device secret keys (Section IV).  This study
    quantifies that premise over a lot of dice:

    - {b calibrated yield}: every die must reach specification with its
      own calibrated key (the programmability exists to absorb process
      variations);
    - {b uncalibrated yield}: how many dice a single fixed
      (lot-median) configuration would satisfy — low, which is both
      why calibration exists and why a stolen key does not amount to a
      product;
    - {b key uniqueness}: pairwise Hamming distances between the lot's
      keys and per-field code spreads;
    - {b transfer matrix}: how often die i's key unlocks die j. *)

type per_die = {
  seed : int;
  key : Rfchain.Config.t;
  snr_mod_db : float;
  snr_rx_db : float;
  sfdr_db : float;
  in_spec : bool;
}

type t = {
  dice : per_die list;
  calibrated_yield : float;        (** fraction of dice in spec with own key *)
  median_key : Rfchain.Config.t;   (** per-field median of the lot's keys *)
  uncalibrated_yield : float;      (** fraction in spec under the median key *)
  transfer_rate : float;           (** off-diagonal success rate of the matrix *)
  min_pair_distance : int;         (** smallest pairwise key Hamming distance *)
  mean_pair_distance : float;
  field_spread : (string * int) list;
  (** per tuning field: number of distinct codes across the lot *)
}

val run : ?lot:int -> ?seed_base:int -> Rfchain.Standards.t -> t
(** Calibrate [lot] dice (default 8; each full calibration is a few
    hundred simulated measurements) and compute the statistics.  The
    transfer matrix evaluates every (key, die) pair. *)

val checks : t -> (string * bool) list

val print : t -> unit
