lib/experiments/avalanche.ml: Context Float Hashtbl Int64 List Metrics Printf Rfchain Sigkit
