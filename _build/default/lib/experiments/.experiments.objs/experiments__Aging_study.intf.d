lib/experiments/aging_study.mli: Context
