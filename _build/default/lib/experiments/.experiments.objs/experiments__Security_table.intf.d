lib/experiments/security_table.mli: Attacks Context
