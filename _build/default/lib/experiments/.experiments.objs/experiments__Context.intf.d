lib/experiments/context.mli: Calibration Circuit Rfchain
