lib/experiments/fig11.ml: Ascii_plot Context Float List Metrics Printf
