lib/experiments/context.ml: Calibration Circuit Core List Rfchain Sigkit
