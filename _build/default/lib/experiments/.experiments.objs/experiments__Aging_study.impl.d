lib/experiments/aging_study.ml: Calibration Circuit Context List Metrics Printf Rfchain
