lib/experiments/fig8.ml: Array Ascii_plot Context Float List Metrics Printf
