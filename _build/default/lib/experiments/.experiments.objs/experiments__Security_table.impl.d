lib/experiments/security_table.ml: Attacks Circuit Context Core Format List Printf Rfchain
