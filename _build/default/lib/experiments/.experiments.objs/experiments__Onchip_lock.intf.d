lib/experiments/onchip_lock.mli: Context
