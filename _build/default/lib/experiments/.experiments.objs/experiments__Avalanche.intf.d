lib/experiments/avalanche.mli: Context
