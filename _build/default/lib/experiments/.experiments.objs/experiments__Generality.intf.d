lib/experiments/generality.mli: Afe
