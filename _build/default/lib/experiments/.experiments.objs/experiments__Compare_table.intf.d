lib/experiments/compare_table.mli: Baselines Context Core
