lib/experiments/onchip_lock.ml: Array Calibration Context Float List Metrics Netlist Printf Rfchain Sigkit
