lib/experiments/fig7_fig9.mli: Context Core
