lib/experiments/lot_study.ml: Calibration Circuit Core List Metrics Printf Rfchain
