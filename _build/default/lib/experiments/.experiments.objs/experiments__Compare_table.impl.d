lib/experiments/compare_table.ml: Baselines Context Core Format List Netlist Printf Sigkit
