lib/experiments/lot_study.mli: Rfchain
