lib/experiments/generality.ml: Afe Circuit List Printf Sigkit
