lib/experiments/fig12.ml: Ascii_plot Context List Metrics Printf Rfchain
