lib/experiments/fig7_fig9.ml: Ascii_plot Context Core List Printf
