lib/experiments/ascii_plot.ml: Array Float List Option Printf String
