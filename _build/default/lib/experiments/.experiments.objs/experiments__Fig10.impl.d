lib/experiments/fig10.ml: Array Ascii_plot Context Float List Metrics Printf Rfchain Sigkit
