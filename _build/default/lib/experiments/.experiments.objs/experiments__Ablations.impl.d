lib/experiments/ablations.ml: Calibration Circuit Context List Metrics Printf Rfchain Sigkit
