type sat_result = {
  broken : bool;
  oracle_queries : int;
  key_bits : int;
}

type t = {
  techniques : Baselines.Technique.t list;
  probes : Baselines.Compare.corruption_probe list;
  removal : (string * Baselines.Technique.removal_verdict) list;
  threat_outcomes : Core.Threat_model.outcome list;
  sat_on_mixlock : sat_result;
}

let run ?(seed = 31) (ctx : Context.t) =
  let golden_key =
    Core.Key.make ~standard:ctx.Context.standard ~chip:ctx.Context.chip ctx.Context.golden
  in
  let lut_recycle, puf_recycle =
    Core.Threat_model.recycling ctx.Context.standard ~seed:ctx.Context.seed ~key:golden_key
  in
  (* SAT attack on the digital-section lock: MixLock's key gates form a
     Boolean oracle relation, which is exactly what the attack needs. *)
  let sat_on_mixlock =
    let rng = Sigkit.Rng.create (seed + 100) in
    let locked =
      Netlist.Logic_lock.lock rng (Netlist.Bench_circuits.ripple_adder 8) ~key_bits:16
    in
    let r = Netlist.Sat_attack.run ~seed:(seed + 101) locked in
    {
      broken = r.Netlist.Sat_attack.found_key <> None;
      oracle_queries = r.Netlist.Sat_attack.oracle_queries;
      key_bits = 16;
    }
  in
  {
    techniques = Baselines.Compare.all;
    probes = Baselines.Compare.corruption_probes ~seed ();
    removal = Baselines.Compare.removal_analysis ();
    sat_on_mixlock;
    threat_outcomes =
      [
        Core.Threat_model.cloning ctx.Context.standard ~golden_key;
        Core.Threat_model.overproduction ~fabricated:1000 ~provisioned:800;
        lut_recycle;
        puf_recycle;
        Core.Threat_model.remarking ctx.Context.standard ~seed:990002;
      ];
  }

let checks t =
  let removable =
    List.filter (fun tech -> Baselines.Technique.removal_vulnerable tech) t.techniques
  in
  let proposed_immune =
    List.exists
      (fun tech ->
        tech.Baselines.Technique.lock_site = Baselines.Technique.Programmable_fabric
        && tech.Baselines.Technique.removal = Baselines.Technique.Nothing_to_remove)
      t.techniques
  in
  [
    ("bias-based prior work is removal-vulnerable", List.length removable >= 3);
    ("proposed scheme has nothing to remove", proposed_immune);
    ( "wrong keys corrupt every baseline (> 5 dB mean penalty)",
      List.for_all (fun p -> p.Baselines.Compare.wrong_key_penalty_db > 5.0) t.probes );
    ( "correct keys are clean on every baseline (< 1 dB)",
      List.for_all (fun p -> p.Baselines.Compare.zero_key_penalty_db < 1.0) t.probes );
    ( "the SAT attack breaks the digital-section lock in few queries",
      t.sat_on_mixlock.broken && t.sat_on_mixlock.oracle_queries < 64 );
    ( "cloning / overproduction / remarking defeated; LUT-scheme recycling is the known gap",
      match t.threat_outcomes with
      | [ clone; overproduce; lut_recycle; puf_recycle; remark ] ->
        (not clone.Core.Threat_model.attacker_success)
        && (not overproduce.Core.Threat_model.attacker_success)
        && lut_recycle.Core.Threat_model.attacker_success
        && (not puf_recycle.Core.Threat_model.attacker_success)
        && not remark.Core.Threat_model.attacker_success
      | _ -> false );
  ]

let print t =
  Printf.printf "# Comparison with prior analog locking (Section II)\n\n";
  Format.printf "%a@." Baselines.Compare.pp_table ();
  Printf.printf "\n## Wrong-key corruption probes (32 random wrong keys per scheme)\n";
  Printf.printf "%-30s %18s %18s\n" "technique" "wrong-key penalty" "correct-key check";
  List.iter
    (fun p ->
      Printf.printf "%-30s %12.1f dB %14.2f dB\n" p.Baselines.Compare.technique
        p.Baselines.Compare.wrong_key_penalty_db p.Baselines.Compare.zero_key_penalty_db)
    t.probes;
  Printf.printf "\n## Removal-attack analysis\n";
  List.iter
    (fun (name, verdict) ->
      let text =
        match verdict with
        | Baselines.Technique.Removable how -> "REMOVABLE: " ^ how
        | Baselines.Technique.Hard_to_remove why -> "hard: " ^ why
        | Baselines.Technique.Nothing_to_remove -> "nothing to remove"
      in
      Printf.printf "%-30s %s\n" name text)
    t.removal;
  Printf.printf "\n## SAT attack [17] vs lock families\n";
  Printf.printf
    "digital-section lock [9], %d key bits: %s in %d oracle queries\n"
    t.sat_on_mixlock.key_bits
    (if t.sat_on_mixlock.broken then "KEY RECOVERED" else "survived")
    t.sat_on_mixlock.oracle_queries;
  Printf.printf
    "programmability-fabric lock: not applicable — no Boolean oracle relation exists\n";
  Printf.printf "\n## Threat scenarios (Section IV-C)\n";
  List.iter
    (fun o ->
      Printf.printf "%-26s attacker %s  -- %s\n" o.Core.Threat_model.scenario
        (if o.Core.Threat_model.attacker_success then "SUCCEEDS" else "defeated")
        o.Core.Threat_model.detail)
    t.threat_outcomes;
  List.iter (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (checks t)
