type t = {
  freqs_hz : float array;
  correct_psd_db : float array;
  deceptive_psd_db : float array;
  notch_depth_correct_db : float;
  notch_depth_deceptive_db : float;
}

(* Average the periodogram into display bins, skipping the carrier's
   main lobe so the notch (not the tone) is what the figure shows. *)
let reduce spec ~f_signal ~points =
  let power = spec.Sigkit.Spectrum.power in
  let n = Array.length power in
  let sig_lo, sig_hi = Sigkit.Spectrum.tone_bins spec ~freq:f_signal in
  let per = max 1 (n / points) in
  let freqs = Array.make points 0.0 and psd = Array.make points neg_infinity in
  for p = 0 to points - 1 do
    let lo = p * per and hi = min (n - 1) (((p + 1) * per) - 1) in
    let acc = ref 0.0 and cnt = ref 0 in
    for k = lo to hi do
      if k < sig_lo || k > sig_hi then begin
        acc := !acc +. power.(k);
        incr cnt
      end
    done;
    freqs.(p) <- Sigkit.Spectrum.freq_of_bin spec ((lo + hi) / 2);
    psd.(p) <-
      (if !cnt = 0 then neg_infinity
       else Sigkit.Decibel.db_of_power_ratio (!acc /. float_of_int !cnt))
  done;
  (freqs, psd)

let notch_depth spec ~fs ~f0 ~f_signal =
  let sig_lo, sig_hi = Sigkit.Spectrum.tone_bins spec ~freq:f_signal in
  let mean_band f_lo f_hi =
    let lo = Sigkit.Spectrum.bin_of_freq spec f_lo and hi = Sigkit.Spectrum.bin_of_freq spec f_hi in
    let acc = ref 0.0 and cnt = ref 0 in
    for k = lo to hi do
      if k < sig_lo || k > sig_hi then begin
        acc := !acc +. spec.Sigkit.Spectrum.power.(k);
        incr cnt
      end
    done;
    !acc /. float_of_int (max 1 !cnt)
  in
  (* Notch floor: +-10 MHz around the carrier; shoulders: fs/16 away,
     where 4th-order shaping towers over the floor.  Taking the WEAKER
     shoulder keeps one-sided broadband tilts (the deceptive key's
     buffer low-pass) from masquerading as shaping — real noise shaping
     raises both shoulders symmetrically. *)
  let notch = mean_band (f0 -. 10e6) (f0 +. 10e6) in
  let shoulder_lo = mean_band (f0 -. (fs /. 16.0)) (f0 -. (fs /. 20.0)) in
  let shoulder_hi = mean_band (f0 +. (fs /. 20.0)) (f0 +. (fs /. 16.0)) in
  Sigkit.Decibel.db_of_power_ratio (Float.min shoulder_lo shoulder_hi /. notch)

let run ?(points = 96) (ctx : Context.t) =
  let bench = Metrics.Measure.create ctx.Context.rx in
  let fs = Rfchain.Receiver.fs ctx.Context.rx in
  let f0 = ctx.Context.standard.Rfchain.Standards.f0_hz in
  let f_signal = Rfchain.Receiver.test_tone_frequency ctx.Context.rx ~n:Metrics.Snr.default_fft_points in
  let spectrum_of config =
    Sigkit.Spectrum.periodogram ~fs (Metrics.Measure.mod_output bench config)
  in
  let correct_spec = spectrum_of ctx.Context.golden in
  let deceptive_spec = spectrum_of (Context.deceptive_example ctx) in
  let freqs_hz, correct_psd_db = reduce correct_spec ~f_signal ~points in
  let _, deceptive_psd_db = reduce deceptive_spec ~f_signal ~points in
  {
    freqs_hz;
    correct_psd_db;
    deceptive_psd_db;
    notch_depth_correct_db = notch_depth correct_spec ~fs ~f0 ~f_signal;
    notch_depth_deceptive_db = notch_depth deceptive_spec ~fs ~f0 ~f_signal;
  }

let checks t =
  [
    ("correct key shows a noise-shaping notch (> 20 dB)", t.notch_depth_correct_db > 20.0);
    ("deceptive key shows no noise shaping (< 10 dB)", t.notch_depth_deceptive_db < 10.0);
  ]

let print t =
  Printf.printf "# Fig. 10 — PSD at modulator output (carrier lobe excluded)\n";
  Printf.printf "# freq_GHz  correct_dB  deceptive_dB\n";
  Array.iteri
    (fun i f ->
      Printf.printf "%9.4f  %10.2f  %12.2f\n" (f /. 1e9) t.correct_psd_db.(i)
        t.deceptive_psd_db.(i))
    t.freqs_hz;
  let curve marker values =
    Array.to_list (Array.mapi (fun i f -> (f /. 1e9, values i)) t.freqs_hz)
    |> List.filter (fun (_, y) -> Float.is_finite y)
    |> Ascii_plot.series ~marker
  in
  Printf.printf "\nPSD (o = correct key with its notch, x = deceptive key)\n";
  Ascii_plot.print
    (Ascii_plot.render ~height:16 ~x_label:"GHz" ~y_label:"PSD (dB)"
       (curve 'o' (fun i -> t.correct_psd_db.(i)) @ curve 'x' (fun i -> t.deceptive_psd_db.(i))));
  Printf.printf "notch depth: correct %.1f dB, deceptive %.1f dB\n" t.notch_depth_correct_db
    t.notch_depth_deceptive_db;
  List.iter (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (checks t)
