(** Generality of fabric locking: the second case study.

    The paper's claim targets the whole class of highly-programmable
    analog ICs (Section IV-A).  This experiment repeats the locking
    evaluation on a completely different circuit — the 24-bit
    programmable baseband AFE of {!Afe} — with its own calibration
    algorithm and specifications: the calibrated key unlocks, random
    keys break at least one performance, and keys stay per-die. *)

type t = {
  calibrated : Afe.Afe_calibrate.report;
  random_keys : (Afe.Afe_config.t * Afe.Afe_chain.measurement * bool) list;
  (** (key, measurement, in-spec) for the random ensemble *)
  transfer_in_spec : bool;   (** this die's key on a second die *)
  invalid_in_spec : int;
}

val run : ?n_invalid:int -> ?seed:int -> unit -> t
(** Fabricate an AFE die (default seed 9001), calibrate, evaluate
    [n_invalid] (default 40) random 24-bit keys, and try the key on a
    sibling die. *)

val checks : t -> (string * bool) list

val print : t -> unit
