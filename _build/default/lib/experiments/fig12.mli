(** Figure 12: two-tone SFDR, correct vs deceptive key.

    Two equal-power tones 10 MHz apart; SFDR is fundamental minus the
    strongest in-band spur.  Swept across tone power: the locked
    circuit's SFDR is far below the correct key's everywhere. *)

type point = {
  p_dbm : float;
  sfdr_correct_db : float;
  sfdr_deceptive_db : float;
}

type t = {
  points : point list;
  mean_gap_db : float;   (** mean correct-minus-deceptive SFDR *)
}

val run : ?powers:float list -> Context.t -> t
(** Default powers: -40 to -15 dBm in 5 dB steps. *)

val checks : Context.t -> t -> (string * bool) list

val print : Context.t -> t -> unit
