(** Terminal rendering for the reproduced figures.

    A minimal scatter/series canvas: points are placed on a
    width x height character grid with linear axes, later markers
    overwrite earlier ones, and the frame carries y-axis ticks and an
    x-axis label.  Enough to eyeball every figure of the paper straight
    from the CLI. *)

type point = {
  x : float;
  y : float;
  marker : char;
}

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?x_range:float * float ->
  ?y_range:float * float ->
  point list ->
  string list
(** [render points] returns the chart lines, top row first.  Ranges
    default to the data's bounding box (degenerate ranges are padded).
    Default canvas is 72 x 20 characters plus the frame. *)

val series : marker:char -> (float * float) list -> point list
(** Convenience: tag a polyline's samples with one marker. *)

val print : string list -> unit
