(** End-to-end demonstration of calibration-loop locking [10]
    (paper Fig. 1e) on the actual receiver.

    The on-chip self-calibration engine's digital optimizer is a
    gate-level ALU; logic-locking that ALU means a wrong logic key
    makes the optimizer mis-add and mis-compare, so self-calibration
    "converges" to wrong tuning settings and the receiver stays locked.
    This quantifies the scheme the paper cites as the closest prior
    work that also locks functionality rather than biases — and shows
    its contrast with fabric locking: the ALU lock is added circuitry
    (removable in principle), whereas the fabric lock is not. *)

type t = {
  unlocked_snr_db : float;          (** plain engine's result *)
  correct_key_snr_db : float;       (** locked ALU, correct key *)
  wrong_key_snrs_db : float list;   (** locked ALU, random wrong keys *)
  measurements : int;               (** per calibration run *)
  alu_operations : int;
  key_bits : int;
}

val run : ?n_wrong:int -> ?seed:int -> Context.t -> t
(** Run self-calibration with an unlocked ALU, with the locked ALU
    under the correct key, and under [n_wrong] (default 6) random
    wrong keys. *)

val checks : Context.t -> t -> (string * bool) list

val print : Context.t -> t -> unit
