type t = {
  calibrated : Afe.Afe_calibrate.report;
  random_keys : (Afe.Afe_config.t * Afe.Afe_chain.measurement * bool) list;
  transfer_in_spec : bool;
  invalid_in_spec : int;
}

let run ?(n_invalid = 40) ?(seed = 9001) () =
  let chip = Circuit.Process.fabricate ~seed () in
  let afe = Afe.Afe_chain.create chip in
  let calibrated = Afe.Afe_calibrate.run afe in
  let rng = Sigkit.Rng.create (seed + 1) in
  let spec = Afe.Afe_chain.default_spec in
  let random_keys =
    List.init n_invalid (fun _ ->
        let key = Afe.Afe_config.random rng in
        let m = Afe.Afe_chain.measure afe key in
        (key, m, Afe.Afe_chain.in_spec spec m))
  in
  let sibling = Afe.Afe_chain.create (Circuit.Process.fabricate ~seed:(seed + 7) ()) in
  let transfer_in_spec =
    Afe.Afe_chain.in_spec spec (Afe.Afe_chain.measure sibling calibrated.Afe.Afe_calibrate.key)
  in
  {
    calibrated;
    random_keys;
    transfer_in_spec;
    invalid_in_spec = List.length (List.filter (fun (_, _, ok) -> ok) random_keys);
  }

let checks t =
  [
    ("AFE calibration reaches its specification", t.calibrated.Afe.Afe_calibrate.in_spec);
    ( "random 24-bit keys essentially never work (< 10%)",
      t.invalid_in_spec * 10 < List.length t.random_keys );
    ("the key does not transfer to a sibling die", not t.transfer_in_spec);
  ]

let print t =
  let m = t.calibrated.Afe.Afe_calibrate.measurement in
  Printf.printf "# Generality: fabric locking on the programmable baseband AFE (24-bit word)\n";
  Printf.printf
    "calibrated: gain %.1f dB, cutoff error %.0f kHz, offset %.2f mV, THD %.0f dB (%d bench runs) -> %s\n"
    m.Afe.Afe_chain.gain_db
    (m.Afe.Afe_chain.cutoff_error_hz /. 1e3)
    (m.Afe.Afe_chain.offset_v *. 1e3)
    m.Afe.Afe_chain.thd_db t.calibrated.Afe.Afe_calibrate.bench_runs
    (if t.calibrated.Afe.Afe_calibrate.in_spec then "in spec" else "OUT OF SPEC");
  Printf.printf "random keys in spec: %d/%d\n" t.invalid_in_spec (List.length t.random_keys);
  Printf.printf "key on a sibling die: %s\n"
    (if t.transfer_in_spec then "works (transfer!)" else "fails (per-die key)");
  (* A few sample wrong keys with their broken performances. *)
  List.iteri
    (fun i (key, m, ok) ->
      if i < 5 then
        Printf.printf
          "  key 0x%06x: gain %6.1f dB, cutoff err %7.0f kHz, offset %6.2f mV, THD %5.1f dB -> %s\n"
          (Afe.Afe_config.to_bits key) m.Afe.Afe_chain.gain_db
          (m.Afe.Afe_chain.cutoff_error_hz /. 1e3)
          (m.Afe.Afe_chain.offset_v *. 1e3)
          m.Afe.Afe_chain.thd_db
          (if ok then "in spec" else "broken"))
    t.random_keys;
  List.iter (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name)
    (checks t)
