(** Section II comparison with prior analog locking techniques,
    quantified through the behavioural baseline models, plus the
    Section IV-C threat-scenario outcomes. *)

type sat_result = {
  broken : bool;          (** functionally correct key recovered *)
  oracle_queries : int;
  key_bits : int;
}

type t = {
  techniques : Baselines.Technique.t list;
  probes : Baselines.Compare.corruption_probe list;
  removal : (string * Baselines.Technique.removal_verdict) list;
  threat_outcomes : Core.Threat_model.outcome list;
  sat_on_mixlock : sat_result;
  (** the SAT attack [17] applied to the digital-section lock [9] — the
      paper's point that it breaks logic locking in a handful of oracle
      queries while having no analogue against fabric locking *)
}

val run : ?seed:int -> Context.t -> t

val checks : t -> (string * bool) list

val print : t -> unit
