(** Figure 11: SNR versus input power over the three VGLNA gain
    segments, correct vs deceptive key.

    For the correct key the SNR climbs with input power inside each
    segment and the segments hand over as the VGLNA gain steps down;
    the locked (deceptive-key) circuit behaves nothing like that across
    the whole input range. *)

type t = {
  correct : Metrics.Dynamic_range.segment list;
  deceptive : Metrics.Dynamic_range.segment list;
  dr_correct_db : float;     (** input range meeting the SNR spec *)
  dr_deceptive_db : float;
}

val run : ?n_fft:int -> Context.t -> t
(** [n_fft] is the per-point baseband FFT size (default 1024; 27 sweep
    points per key). *)

val checks : Context.t -> t -> (string * bool) list

val print : Context.t -> t -> unit
