(** Aging and recycled-part study.

    A recycled counterfeit is "a used and possibly aged IC that is
    illegally resold as new" (paper Section I).  Two consequences fall
    out of the programmability-fabric locking model:

    - the key-management side (paper Section IV-C): under the PUF
      scheme the part is inert without the customer's user keys,
      regardless of age — that is the countermeasure, and it is already
      exercised by {!Compare_table};
    - the physics side (this study): even when the recycler *does*
      obtain the part's original key (LUT scheme), BTI/HCI drift moves
      the die away from the configuration calibrated for it when new,
      so heavily used parts lose margin or fall out of spec — and a
      fresh re-calibration recovers them, which is a tell-tale
      recycled-part detection signature (the recovered key differs from
      the provisioned one). *)

type point = {
  hours : float;
  snr_db : float;                 (** original key on the aged die *)
  in_spec : bool;
  recalibrated_snr_db : float;    (** fresh calibration on the aged die *)
  key_drift_bits : int;           (** Hamming distance of the two keys *)
}

type t = {
  fresh_snr_db : float;
  points : point list;
}

val run : ?hours:float list -> Context.t -> t
(** Default ages: 1k, 20k, 100k hours (about 2 months, 2 years and a
    decade of continuous use). *)

val checks : Context.t -> t -> (string * bool) list

val print : t -> unit
