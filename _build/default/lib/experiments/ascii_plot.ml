type point = {
  x : float;
  y : float;
  marker : char;
}

let series ~marker samples = List.map (fun (x, y) -> { x; y; marker }) samples

let bounds points =
  match points with
  | [] -> ((0.0, 1.0), (0.0, 1.0))
  | p :: rest ->
    List.fold_left
      (fun ((xl, xh), (yl, yh)) q ->
        ((Float.min xl q.x, Float.max xh q.x), (Float.min yl q.y, Float.max yh q.y)))
      ((p.x, p.x), (p.y, p.y))
      rest

let pad (lo, hi) =
  if hi -. lo > 1e-12 then (lo, hi) else (lo -. 1.0, hi +. 1.0)

let render ?(width = 72) ?(height = 20) ?(x_label = "") ?(y_label = "") ?x_range ?y_range points =
  let (bx, by) = bounds points in
  let x_lo, x_hi = pad (Option.value x_range ~default:bx) in
  let y_lo, y_hi = pad (Option.value y_range ~default:by) in
  let grid = Array.make_matrix height width ' ' in
  let place p =
    let fx = (p.x -. x_lo) /. (x_hi -. x_lo) in
    let fy = (p.y -. y_lo) /. (y_hi -. y_lo) in
    if fx >= 0.0 && fx <= 1.0 && fy >= 0.0 && fy <= 1.0 then begin
      let col = min (width - 1) (int_of_float (fx *. float_of_int (width - 1))) in
      let row = min (height - 1) (int_of_float (fy *. float_of_int (height - 1))) in
      grid.(height - 1 - row).(col) <- p.marker
    end
  in
  List.iter place points;
  let tick_rows = [ 0; height / 2; height - 1 ] in
  let tick_value display_row =
    (* display_row 0 is the top of the canvas. *)
    let fy = float_of_int (height - 1 - display_row) /. float_of_int (height - 1) in
    y_lo +. (fy *. (y_hi -. y_lo))
  in
  let body =
    List.init height (fun row ->
        let label =
          if List.mem row tick_rows then Printf.sprintf "%8.1f |" (tick_value row)
          else Printf.sprintf "%8s |" ""
        in
        label ^ String.init width (fun col -> grid.(row).(col)))
  in
  let x_axis = Printf.sprintf "%8s +%s" "" (String.make width '-') in
  let x_caption =
    Printf.sprintf "%8s  %-*.*f%*s%.*f   %s" "" 12 1 x_lo (width - 24) "" 1 x_hi x_label
  in
  let header = if y_label = "" then [] else [ Printf.sprintf "%8s %s" "" y_label ] in
  header @ body @ [ x_axis; x_caption ]

let print lines = List.iter print_endline lines
