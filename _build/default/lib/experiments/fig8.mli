(** Figure 8: transient modulator output, correct vs deceptive key.

    The correct key yields an oversampled +-1 bitstream; the deceptive
    key (open loop, comparator buffered) passes the analog waveform
    through without analog-to-digital conversion. *)

type t = {
  correct_samples : float array;    (** steady-state window *)
  deceptive_samples : float array;
  correct_is_bitstream : bool;
  deceptive_is_analog : bool;
}

val run : ?window:int -> Context.t -> t
(** [window] samples from the steady-state output (default 64). *)

val checks : t -> (string * bool) list

val print : t -> unit
