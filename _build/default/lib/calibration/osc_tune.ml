type result = {
  cap_coarse : int;
  cap_fine : int;
  gm_q : int;
  freq_error_hz : float;
  measurements : int;
}

let oscillation_config (config : Rfchain.Config.t) =
  {
    config with
    comp_clock_enable = false;  (* step 1: comparator as buffer *)
    cal_buffer_enable = true;   (* step 2: observation buffer in path *)
    gmin_enable = false;        (* step 3: RF input disabled *)
    fb_enable = false;          (* step 4: feedback loop off *)
    gm_q = 63;                  (* step 5: -Gm at maximum *)
  }

let measure_frequency rx config =
  let sdm = Rfchain.Receiver.sdm_of_config rx config in
  Rfchain.Sdm.oscillation_frequency sdm ~n:8192

let run rx =
  let f0 = (Rfchain.Receiver.standard rx).Rfchain.Standards.f0_hz in
  let base = oscillation_config Rfchain.Config.nominal in
  let count = ref 0 in
  let freq ~coarse ~fine =
    incr count;
    let config = { base with cap_coarse = coarse; cap_fine = fine } in
    match measure_frequency rx config with
    | Some f -> f
    | None ->
      (* At maximum -Gm the tank must oscillate; a silent tank means a
         defective die, which calibration cannot recover. *)
      failwith "Osc_tune: tank does not oscillate at maximum Q-enhancement"
  in
  (* Oscillation frequency decreases monotonically with capacitance,
     hence with code: binary-search the crossing (step 6). *)
  let search ~measure ~max_code =
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if measure mid > f0 then go (mid + 1) hi else go lo mid
    in
    let candidate = go 0 max_code in
    (* The crossing leaves two neighbours; keep the closer one. *)
    let best = ref candidate and best_err = ref (Float.abs (measure candidate -. f0)) in
    if candidate > 0 then begin
      let err = Float.abs (measure (candidate - 1) -. f0) in
      if err < !best_err then begin
        best := candidate - 1;
        best_err := err
      end
    end;
    (!best, !best_err)
  in
  let coarse, _ = search ~measure:(fun c -> freq ~coarse:c ~fine:128) ~max_code:255 in
  let fine, freq_error_hz = search ~measure:(fun c -> freq ~coarse ~fine:c) ~max_code:255 in
  (* Step 7: back the Q-enhancement off until oscillation vanishes. *)
  let tuned = { base with cap_coarse = coarse; cap_fine = fine } in
  let rec back_off code =
    if code < 0 then 0
    else begin
      incr count;
      match measure_frequency rx { tuned with gm_q = code } with
      | Some _ -> back_off (code - 1)
      | None -> code
    end
  in
  let gm_q = back_off 63 in
  { cap_coarse = coarse; cap_fine = fine; gm_q; freq_error_hz; measurements = !count }
