(** Oscillation-mode centre-frequency tuning (calibration steps 1-7).

    With the feedback loop opened, the input transconductor off, the
    comparator bypassed to a buffer and the Q-enhancement cell at
    maximum, the LC tank self-oscillates; the capacitor arrays are then
    tuned until the observed oscillation frequency equals the wanted
    carrier, after which the Q-enhancement is backed off until the
    oscillation just vanishes.  All measurements go through the
    modulator's observable output — never through ground-truth model
    internals — so the procedure is exactly what a (secret-holding)
    test engineer could run on silicon. *)

type result = {
  cap_coarse : int;
  cap_fine : int;
  gm_q : int;                  (** largest non-oscillating Q-enhancement code *)
  freq_error_hz : float;       (** residual |f_osc - f0| after tuning *)
  measurements : int;          (** oscillation-frequency measurements spent *)
}

val oscillation_config : Rfchain.Config.t -> Rfchain.Config.t
(** Apply calibration steps 1-5 to a word: comparator buffered, output
    buffer in path, input transconductor off, feedback open,
    Q-enhancement at maximum. *)

val measure_frequency : Rfchain.Receiver.t -> Rfchain.Config.t -> float option
(** One oscillation-mode frequency measurement (step 6's primitive). *)

val run : Rfchain.Receiver.t -> result
(** Full steps 1-7 for the receiver's target standard. *)
