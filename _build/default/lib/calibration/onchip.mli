(** On-chip self-calibration engine (paper Section III).

    The calibration algorithm "can either run on-chip in hardware
    pointing to autonomous self-calibration or can run off-chip in
    software".  This module is the on-chip variant: a finite-state
    machine that sequences the same steps as {!Calibrate}, but whose
    digital optimizer — every addition and comparison that decides the
    next code — executes on a gate-level ALU built from the {!Netlist}
    substrate.

    Because the optimizer is a real netlist, the calibration-loop
    locking of Jayasankaran et al. [10] can be applied to it literally:
    {!create_locked} wires key-gated XOR locks into the ALU, and a
    wrong key makes the optimizer mis-add and mis-compare, so the FSM
    "converges" to wrong tuning settings — the paper's Fig. 1e scheme,
    demonstrated end to end on the receiver. *)

type t

val create : Rfchain.Receiver.t -> t
(** Self-calibration engine with an unlocked ALU. *)

val create_locked :
  Rfchain.Receiver.t ->
  locked_alu:Netlist.Logic_lock.locked ->
  key:bool array ->
  t
(** Engine whose ALU is the given locked adder netlist operated under
    [key].  With the correct key it behaves exactly like {!create}. *)

val lock_alu : Sigkit.Rng.t -> ?key_bits:int -> unit -> Netlist.Logic_lock.locked
(** Manufacture the lockable ALU: a 16-bit ripple adder with
    [key_bits] (default 16) key gates. *)

type progress =
  | Running of string         (** current FSM phase, for tracing *)
  | Done of Rfchain.Config.t  (** converged configuration *)

val step : t -> progress
(** Advance the FSM by one externally visible phase (one or more
    measurements plus the ALU operations deciding the next state). *)

val run : ?max_steps:int -> t -> Rfchain.Config.t
(** Step to completion (default bound 10000 phases). *)

val measurements : t -> int
(** Measurements spent so far. *)

val alu_operations : t -> int
(** Gate-level ALU evaluations spent so far. *)
