(** The full 14-step calibration procedure (paper Section V-B).

    This algorithm is the design house's crown jewel: it is what turns
    a blank die into a working receiver, and under the locking scheme
    it is kept secret together with the configuration settings it
    produces.  Steps:

    + 1-4   reconfigure for calibration (buffered comparator, output
            buffer in path, RF input off, feedback open);
    + 5-7   oscillation-mode tuning of Cc/Cf and -Gm back-off
            ({!Osc_tune});
    + 8-11  restore the loop, select sampling rate and loop delay;
    + 12    VGLNA segment selection for the target sensitivity;
    + 13    nominal bias initialisation (design knowledge);
    + 14    iterative SNR/SFDR-driven bias refinement
            ({!Coordinate_search}). *)

type report = {
  key : Rfchain.Config.t;        (** the calibrated configuration = secret key *)
  snr_mod_db : float;            (** achieved SNR at the modulator output *)
  snr_rx_db : float;             (** achieved SNR at the receiver output *)
  sfdr_db : float;               (** achieved SFDR *)
  freq_error_hz : float;         (** residual tank-tuning error *)
  oscillation_measurements : int;
  snr_measurements : int;
  log : string list;             (** human-readable step trace, oldest first *)
}

val step14_fields : string list
(** The knobs refined by the iterative step, in the (secret) order the
    procedure visits them. *)

val run : ?passes:int -> ?refine_sfdr:bool -> Rfchain.Receiver.t -> report
(** Calibrate one die for the receiver's standard.  [passes] bounds the
    step-14 cycles (default 2); [refine_sfdr] adds an SFDR term to the
    step-14 objective (default true, one extra trial per probe). *)

val quick : Rfchain.Receiver.t -> Rfchain.Config.t
(** Calibration with a single refinement pass and no SFDR term —
    cheaper, used by tests and large Monte-Carlo sweeps. *)
