type report = {
  key : Rfchain.Config.t;
  snr_mod_db : float;
  snr_rx_db : float;
  sfdr_db : float;
  freq_error_hz : float;
  oscillation_measurements : int;
  snr_measurements : int;
  log : string list;
}

let step14_fields =
  [
    "gmin_bias";
    "dac_bias";
    "loop_delay";
    "preamp_bias";
    "comp_bias";
    "cap_fine";
    "dac_trim";
    "preamp_trim";
    "vglna_gain";
  ]

(* Step 11's design formula: the delay-line setting that compensates the
   loop at this sampling rate for a typical die (per-die skew is then
   absorbed by step 14). *)
let delay_code_for_fs fs = max 0 (min 15 (int_of_float (Float.round (4.0 +. (4.0 *. fs /. 12e9)))))

let run ?(passes = 2) ?(refine_sfdr = true) rx =
  let log = ref [] in
  let say fmt = Printf.ksprintf (fun s -> log := s :: !log) fmt in
  let fs = Rfchain.Receiver.fs rx in
  (* Steps 1-7: oscillation-mode centre-frequency tuning. *)
  let osc = Osc_tune.run rx in
  say "steps 1-7: Cc=%d Cf=%d, freq error %.0f kHz, -Gm backed off to %d (%d osc. measurements)"
    osc.cap_coarse osc.cap_fine (osc.freq_error_hz /. 1e3) osc.gm_q osc.measurements;
  (* Steps 8-13: restore loop, set delay and gain, nominal biases. *)
  let start =
    {
      Rfchain.Config.nominal with
      cap_coarse = osc.cap_coarse;
      cap_fine = osc.cap_fine;
      gm_q = osc.gm_q;
      loop_delay = delay_code_for_fs fs;
      vglna_gain = Rfchain.Vglna.segment_code ~p_dbm:(-25.0);
    }
  in
  say "steps 8-13: loop restored, delay code %d, VGLNA code %d, biases nominal"
    start.loop_delay start.vglna_gain;
  (* Step 14: iterative refinement driven by measured SNR (and SFDR). *)
  let bench = Metrics.Measure.create rx in
  let objective config =
    let snr = Metrics.Measure.snr_mod_db bench config in
    if not refine_sfdr then snr
    else begin
      let sfdr = Metrics.Measure.sfdr_db bench config in
      let standard = Rfchain.Receiver.standard rx in
      (* SFDR contributes only its shortfall from spec plus a 2 dB
         production margin; once comfortably in spec, SNR rules. *)
      let target = standard.Rfchain.Standards.min_sfdr_db +. 2.0 in
      snr -. (4.0 *. Float.max 0.0 (target -. sfdr))
    end
  in
  let outcome =
    Coordinate_search.maximize ~objective ~fields:step14_fields ~start ~passes ()
  in
  let key = outcome.Coordinate_search.best in
  let snr_mod_db = Metrics.Measure.snr_mod_db bench key in
  let snr_rx_db = Metrics.Measure.snr_rx_db bench key in
  let sfdr_db = Metrics.Measure.sfdr_db bench key in
  say "step 14: %d trials; SNR(mod) %.1f dB, SNR(rx) %.1f dB, SFDR %.1f dB"
    outcome.Coordinate_search.evaluations snr_mod_db snr_rx_db sfdr_db;
  {
    key;
    snr_mod_db;
    snr_rx_db;
    sfdr_db;
    freq_error_hz = osc.freq_error_hz;
    oscillation_measurements = osc.measurements;
    snr_measurements = Metrics.Measure.trial_count bench;
    log = List.rev !log;
  }

let quick rx =
  let report = run ~passes:1 ~refine_sfdr:false rx in
  report.key
