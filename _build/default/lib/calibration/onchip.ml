(* The ALU is a 16-bit gate-level ripple adder (optionally logic-locked)
   plus the two derived operations the optimizer needs: subtraction via
   two's complement and >= via the carry-out.  All quantities the FSM
   reasons about are scaled to unsigned 16-bit integers: frequencies in
   MHz, SNRs in centi-dB offset by 8192. *)

let alu_width = 16
let mask = (1 lsl alu_width) - 1

type alu = {
  eval : int -> int -> int * bool;  (* 16-bit sum and carry-out *)
  mutable ops : int;
}

let bits_of_int v = Array.init alu_width (fun i -> v land (1 lsl i) <> 0)

let int_of_bits bits =
  let acc = ref 0 in
  Array.iteri (fun i b -> if b && i < alu_width then acc := !acc lor (1 lsl i)) bits;
  !acc

let plain_alu () =
  let adder = Netlist.Bench_circuits.ripple_adder alu_width in
  let eval a b =
    let out = Netlist.Gate.eval adder ~key:[||] (Array.append (bits_of_int a) (bits_of_int b)) in
    (int_of_bits out, out.(alu_width))
  in
  { eval; ops = 0 }

let locked_alu (locked : Netlist.Logic_lock.locked) ~key =
  let eval a b =
    let out =
      Netlist.Gate.eval locked.Netlist.Logic_lock.circuit ~key
        (Array.append (bits_of_int a) (bits_of_int b))
    in
    (int_of_bits out, out.(alu_width))
  in
  { eval; ops = 0 }

let lock_alu rng ?(key_bits = 16) () =
  Netlist.Logic_lock.lock rng (Netlist.Bench_circuits.ripple_adder alu_width) ~key_bits

let add alu a b =
  alu.ops <- alu.ops + 1;
  fst (alu.eval (a land mask) (b land mask))

(* a >= b through the adder: carry out of a + (2^16 - b). *)
let ge alu a b =
  if b land mask = 0 then true
  else begin
    alu.ops <- alu.ops + 2;
    let neg_b, _ = alu.eval (lnot b land mask) 1 in
    let _, carry = alu.eval (a land mask) neg_b in
    carry
  end

let sub alu a b =
  alu.ops <- alu.ops + 2;
  let neg_b, _ = alu.eval (lnot b land mask) 1 in
  fst (alu.eval (a land mask) neg_b)

(* ------------------------------------------------------------------ FSM *)

type progress =
  | Running of string
  | Done of Rfchain.Config.t

type phase =
  | Coarse_search of int * int            (* lo, hi *)
  | Fine_search of int * int
  | Gm_backoff of int
  | Bias_init
  | Bias_sweep of string list * int list * int   (* fields, offsets, best snr code *)
  | Finished

type t = {
  rx : Rfchain.Receiver.t;
  alu : alu;
  f0_mhz : int;
  mutable config : Rfchain.Config.t;
  mutable phase : phase;
  mutable meas : int;
  mutable passes_left : int;
}

let sweep_fields = [ "gmin_bias"; "dac_bias"; "loop_delay"; "preamp_bias"; "comp_bias"; "cap_fine" ]
let sweep_offsets = [ 4; -4; 2; -2; 1; -1 ]

let make rx alu =
  let f0 = (Rfchain.Receiver.standard rx).Rfchain.Standards.f0_hz in
  {
    rx;
    alu;
    f0_mhz = int_of_float (Float.round (f0 /. 1e6));
    config = Osc_tune.oscillation_config Rfchain.Config.nominal;
    phase = Coarse_search (0, 255);
    meas = 0;
    passes_left = 2;
  }

let create rx = make rx (plain_alu ())
let create_locked rx ~locked_alu:locked ~key = make rx (locked_alu locked ~key)

let measurements t = t.meas
let alu_operations t = t.alu.ops

let clamp_field name v =
  let w = Rfchain.Config.field_width name in
  max 0 (min ((1 lsl w) - 1) (v land mask))

let measure_osc_mhz t config =
  t.meas <- t.meas + 1;
  match Osc_tune.measure_frequency t.rx config with
  | Some f -> int_of_float (Float.round (f /. 1e6))
  | None -> 0

(* SNR in offset centi-dB, saturating into the unsigned ALU range. *)
let measure_snr_code t config =
  t.meas <- t.meas + 1;
  let bench = Metrics.Measure.create t.rx in
  let snr = Metrics.Measure.snr_mod_db bench config in
  let code = int_of_float (Float.round ((snr *. 10.0) +. 8192.0)) in
  max 0 (min mask code)

(* One binary-search iteration over a capacitor field: oscillation
   frequency decreases with code, so f > f0 means "not enough
   capacitance yet". *)
let search_step t ~field (lo, hi) ~next_phase ~wrap =
  if lo >= hi then begin
    t.config <- Rfchain.Config.with_field t.config field (clamp_field field lo);
    next_phase ()
  end
  else begin
    let mid = clamp_field field (add t.alu lo hi lsr 1) in
    let f = measure_osc_mhz t (Rfchain.Config.with_field t.config field mid) in
    if ge t.alu f t.f0_mhz then wrap (add t.alu mid 1, hi) else wrap (lo, mid)
  end

let step t =
  match t.phase with
  | Finished -> Done t.config
  | Coarse_search (lo, hi) ->
    search_step t ~field:"cap_coarse" (lo, hi)
      ~next_phase:(fun () -> t.phase <- Fine_search (0, 255))
      ~wrap:(fun (lo, hi) -> t.phase <- Coarse_search (lo, hi));
    Running (Printf.sprintf "coarse search [%d, %d]" lo hi)
  | Fine_search (lo, hi) ->
    search_step t ~field:"cap_fine" (lo, hi)
      ~next_phase:(fun () -> t.phase <- Gm_backoff 63)
      ~wrap:(fun (lo, hi) -> t.phase <- Fine_search (lo, hi));
    Running (Printf.sprintf "fine search [%d, %d]" lo hi)
  | Gm_backoff code ->
    if code < 0 then begin
      t.config <- { t.config with gm_q = 0 };
      t.phase <- Bias_init
    end
    else begin
      t.meas <- t.meas + 1;
      (* A corrupted ALU can produce out-of-range codes; the register
         driving the -Gm DAC is physically 6 bits wide. *)
      let gm_q = clamp_field "gm_q" code in
      match Osc_tune.measure_frequency t.rx { t.config with gm_q } with
      | Some _ -> t.phase <- Gm_backoff (sub t.alu code 1)
      | None ->
        t.config <- { t.config with gm_q };
        t.phase <- Bias_init
    end;
    Running (Printf.sprintf "-Gm back-off at %d" code)
  | Bias_init ->
    (* Restore normal operation (steps 8-13). *)
    let fs = Rfchain.Receiver.fs t.rx in
    t.config <-
      {
        t.config with
        fb_enable = true;
        comp_clock_enable = true;
        gmin_enable = true;
        cal_buffer_enable = false;
        loop_delay = max 0 (min 15 (int_of_float (Float.round (4.0 +. (4.0 *. fs /. 12e9)))));
        vglna_gain = Rfchain.Vglna.segment_code ~p_dbm:(-25.0);
        gmin_bias = 32;
        dac_bias = 32;
        preamp_bias = 32;
        comp_bias = 32;
      };
    let best = measure_snr_code t t.config in
    t.phase <- Bias_sweep (sweep_fields, sweep_offsets, best);
    Running "loop restore and nominal biases"
  | Bias_sweep ([], _, best) ->
    t.passes_left <- t.passes_left - 1;
    if t.passes_left > 0 then t.phase <- Bias_sweep (sweep_fields, sweep_offsets, best)
    else t.phase <- Finished;
    Running "sweep pass complete"
  | Bias_sweep (field :: rest, [], best) ->
    ignore field;
    t.phase <- Bias_sweep (rest, sweep_offsets, best);
    Running (Printf.sprintf "next knob after %s" field)
  | Bias_sweep ((field :: _ as fields), offset :: offsets, best) ->
    let current = Rfchain.Config.field t.config field in
    let candidate_code =
      if offset >= 0 then add t.alu current offset else sub t.alu current (-offset)
    in
    let candidate_code = clamp_field field candidate_code in
    if candidate_code <> current then begin
      let candidate = Rfchain.Config.with_field t.config field candidate_code in
      let snr = measure_snr_code t candidate in
      if ge t.alu snr (add t.alu best 1) then begin
        t.config <- candidate;
        t.phase <- Bias_sweep (fields, offsets, snr)
      end
      else t.phase <- Bias_sweep (fields, offsets, best)
    end
    else t.phase <- Bias_sweep (fields, offsets, best);
    Running (Printf.sprintf "probing %s %+d" field offset)

let run ?(max_steps = 10_000) t =
  let rec go n =
    if n = 0 then t.config
    else
      match step t with
      | Done config -> config
      | Running _ -> go (n - 1)
  in
  go max_steps
