lib/calibration/osc_tune.mli: Rfchain
