lib/calibration/onchip.mli: Netlist Rfchain Sigkit
