lib/calibration/calibrate.mli: Rfchain
