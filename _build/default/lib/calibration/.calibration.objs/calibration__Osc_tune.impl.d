lib/calibration/osc_tune.ml: Float Rfchain
