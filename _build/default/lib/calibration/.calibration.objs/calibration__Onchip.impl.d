lib/calibration/onchip.ml: Array Float Metrics Netlist Osc_tune Printf Rfchain
