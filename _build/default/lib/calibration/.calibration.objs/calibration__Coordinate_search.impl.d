lib/calibration/coordinate_search.ml: List Rfchain
