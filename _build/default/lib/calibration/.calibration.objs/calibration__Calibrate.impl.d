lib/calibration/calibrate.ml: Coordinate_search Float List Metrics Osc_tune Printf Rfchain
