lib/calibration/coordinate_search.mli: Rfchain
