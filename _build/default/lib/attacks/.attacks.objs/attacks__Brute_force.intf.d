lib/attacks/brute_force.mli: Oracle Rfchain
