lib/attacks/cost.mli: Format
