lib/attacks/subblock.mli: Oracle Rfchain
