lib/attacks/oracle.ml: Circuit Core Metrics Rfchain
