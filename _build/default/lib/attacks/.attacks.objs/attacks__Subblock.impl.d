lib/attacks/subblock.ml: Calibration Circuit List Metrics Oracle Rfchain Sigkit
