lib/attacks/optimize.mli: Oracle Rfchain
