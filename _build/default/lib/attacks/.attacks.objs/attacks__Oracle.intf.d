lib/attacks/oracle.mli: Core Metrics Rfchain
