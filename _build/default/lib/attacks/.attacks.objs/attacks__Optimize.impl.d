lib/attacks/optimize.ml: Array Calibration Float Int64 List Oracle Rfchain Sigkit
