lib/attacks/brute_force.ml: Cost Metrics Oracle Rfchain Sigkit
