lib/attacks/cost.ml: Format Printf
