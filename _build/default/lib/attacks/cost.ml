let snr_trial_seconds = 20.0 *. 60.0
let dr_sweep_trial_seconds = 3.0 *. 3600.0
let sfdr_trial_seconds = 30.0 *. 60.0
let hardware_trial_seconds = 1.0

let key_space = 2.0 ** 64.0

(* The paper argues very few key combinations are functional; a handful
   of valid words leaves the expectation at ~2^63 trials. *)
let expected_brute_force_trials = key_space /. 2.0

let seconds_to_human s =
  let minute = 60.0 and hour = 3600.0 and day = 86400.0 in
  let year = 365.25 *. day in
  if s < minute then Printf.sprintf "%.1f s" s
  else if s < hour then Printf.sprintf "%.1f min" (s /. minute)
  else if s < day then Printf.sprintf "%.1f h" (s /. hour)
  else if s < year then Printf.sprintf "%.1f days" (s /. day)
  else Printf.sprintf "%.2e years" (s /. year)

type row = {
  attack : string;
  trial_seconds : float;
  trials : float;
  total_seconds : float;
}

let row ~attack ~trial_seconds ~trials =
  { attack; trial_seconds; trials; total_seconds = trial_seconds *. trials }

let brute_force_table () =
  [
    row ~attack:"brute force, SNR trials (simulation)" ~trial_seconds:snr_trial_seconds
      ~trials:expected_brute_force_trials;
    row ~attack:"brute force, DR-sweep trials (simulation)" ~trial_seconds:dr_sweep_trial_seconds
      ~trials:expected_brute_force_trials;
    row ~attack:"brute force, SFDR trials (simulation)" ~trial_seconds:sfdr_trial_seconds
      ~trials:expected_brute_force_trials;
    row ~attack:"brute force, re-fabbed hardware (1 s/trial)"
      ~trial_seconds:hardware_trial_seconds ~trials:expected_brute_force_trials;
  ]

let pp_row fmt r =
  Format.fprintf fmt "%-45s %10s/trial  %.2e trials  -> %s" r.attack
    (seconds_to_human r.trial_seconds) r.trials (seconds_to_human r.total_seconds)
