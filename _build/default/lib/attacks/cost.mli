(** Attack cost model (paper Section VI-B.1).

    The paper's per-trial measurement times on the real device:
    20 minutes to simulate one SNR point, 3 hours for an SNR sweep
    across the input range, 30 minutes for one SFDR point.  Even in
    hardware, a trial is bounded by test-bench settling and FFT capture
    (milliseconds to seconds); the key space of 2^64 makes either
    regime hopeless, which is the quantitative core of the paper's
    security argument. *)

val snr_trial_seconds : float
(** 20 min: one simulated SNR point. *)

val dr_sweep_trial_seconds : float
(** 3 h: one simulated SNR-vs-input-power sweep. *)

val sfdr_trial_seconds : float
(** 30 min: one simulated SFDR point. *)

val hardware_trial_seconds : float
(** Optimistic re-fabbed-hardware trial: 1 s. *)

val key_space : float
(** 2^64. *)

val expected_brute_force_trials : float
(** Expected trials to hit one valid key assuming [valid_keys]
    functional words: half the space per valid key. *)

val seconds_to_human : float -> string
(** "3.2e9 years"-style rendering. *)

type row = {
  attack : string;
  trial_seconds : float;
  trials : float;
  total_seconds : float;
}

val row : attack:string -> trial_seconds:float -> trials:float -> row

val brute_force_table : unit -> row list
(** The Section VI-B.1 cost table: SNR / DR / SFDR-driven brute force in
    simulation and in (re-fabbed) hardware. *)

val pp_row : Format.formatter -> row -> unit
