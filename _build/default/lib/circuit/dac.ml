type t = {
  gain : float;
  level_pos : float;
  level_neg : float;
}

let create chip ~gain =
  let mismatch = Process.offset chip ~name:"dac.mismatch" ~sigma:0.002 in
  { gain; level_pos = 1.0 +. mismatch; level_neg = -1.0 +. mismatch }

(* Linear in the decision magnitude, with sign-dependent cell gain:
   +1 -> gain * level_pos, -1 -> gain * level_neg. *)
let convert t v =
  if v >= 0.0 then t.gain *. t.level_pos *. v else -.(t.gain *. t.level_neg *. v)

let gain t = t.gain
