(** Programmable capacitor array.

    The LC tank of the band-pass loop filter is tuned by a coarse and a
    fine capacitor array (paper, Fig. 6).  Arrays are binary-weighted by
    default: each target capacitance has a unique digital code, which is
    the property the paper leans on for key-uniqueness (Section VI-B.1).
    A unit-switched variant (equal unit capacitors, individually
    switchable) exists for the key-multiplicity ablation: there, every
    code with the same population count yields the same capacitance, so
    a target capacitance no longer pins down a unique sub-key. *)

type coding =
  | Binary_weighted
  | Unit_switched

type t

val create :
  ?coding:coding ->
  Process.chip ->
  name:string ->
  bits:int ->
  unit_cap:float ->
  mismatch_sigma_pct:float ->
  t
(** [create chip ~name ~bits ~unit_cap ~mismatch_sigma_pct] builds an
    array of [bits] switchable branches.  Branch values carry per-chip
    mismatch so the code-to-capacitance map differs die to die. *)

val bits : t -> int

val max_code : t -> int
(** Largest valid code; codes are bit masks over the branches, so this
    is [2^bits - 1] for both codings. *)

val capacitance : t -> int -> float
(** [capacitance t code] in farads.  Raises [Invalid_argument] when
    [code] is outside [0, max_code]. *)

val code_count_for_capacitance : t -> target:float -> tolerance:float -> int
(** Number of codes whose capacitance falls within [target +-
    tolerance] — 1 for a binary-weighted array away from mismatch
    boundaries, and combinatorially large for unit-switched coding
    (ablation metric). *)
