type coding =
  | Binary_weighted
  | Unit_switched

type t = {
  branches : float array;  (** capacitance added by switching branch i on *)
  base : float;            (** always-connected parasitic/base capacitance *)
}

let create ?(coding = Binary_weighted) chip ~name ~bits ~unit_cap ~mismatch_sigma_pct =
  if bits < 1 || bits > 16 then invalid_arg "Cap_array.create: bits out of range";
  let branch i =
    let weight =
      match coding with
      | Binary_weighted -> float_of_int (1 lsl i)
      | Unit_switched -> 1.0
    in
    let nominal = weight *. unit_cap in
    Process.parameter chip
      ~name:(Printf.sprintf "%s.branch%d" name i)
      ~nominal ~sigma_pct:mismatch_sigma_pct
  in
  {
    branches = Array.init bits branch;
    base =
      Process.parameter chip ~name:(name ^ ".base") ~nominal:(unit_cap *. 4.0)
        ~sigma_pct:mismatch_sigma_pct;
  }

let bits t = Array.length t.branches
let max_code t = (1 lsl bits t) - 1

let capacitance t code =
  if code < 0 || code > max_code t then invalid_arg "Cap_array.capacitance: code out of range";
  let acc = ref t.base in
  for i = 0 to bits t - 1 do
    if code land (1 lsl i) <> 0 then acc := !acc +. t.branches.(i)
  done;
  !acc

let code_count_for_capacitance t ~target ~tolerance =
  let count = ref 0 in
  for code = 0 to max_code t do
    if Float.abs (capacitance t code -. target) <= tolerance then incr count
  done;
  !count
