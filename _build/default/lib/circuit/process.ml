type chip = {
  seed : int;
  sigma_scale : float;
  rng_root : Sigkit.Rng.t;
  age_hours : float;
}

let fabricate ?(lot_sigma_scale = 1.0) ~seed () =
  { seed; sigma_scale = lot_sigma_scale; rng_root = Sigkit.Rng.create seed; age_hours = 0.0 }

let seed chip = chip.seed
let age_hours chip = chip.age_hours

let age chip ~hours =
  if hours < 0.0 then invalid_arg "Process.age: negative hours";
  { chip with age_hours = chip.age_hours +. hours }

let draw chip name =
  (* A one-shot generator keyed by (chip seed, parameter name): the first
     gaussian of the split stream is the parameter's permanent draw. *)
  Sigkit.Rng.gaussian (Sigkit.Rng.split chip.rng_root name)

(* BTI/HCI drift: grows with the decade of use-hours, direction and
   magnitude fixed per (die, parameter).  ~1.5% per decade, 1 sigma. *)
let aging_shift chip name =
  if chip.age_hours <= 0.0 then 0.0
  else
    let decades = log10 (1.0 +. chip.age_hours) in
    let direction = Sigkit.Rng.gaussian (Sigkit.Rng.split chip.rng_root ("aging:" ^ name)) in
    0.015 *. decades *. direction

let parameter chip ~name ~nominal ~sigma_pct =
  nominal
  *. (1.0 +. (chip.sigma_scale *. sigma_pct /. 100.0 *. draw chip name) +. aging_shift chip name)

let offset chip ~name ~sigma =
  (chip.sigma_scale *. sigma *. draw chip name) +. (sigma *. aging_shift chip name *. 20.0)

let noise_stream chip ~name = Sigkit.Rng.split chip.rng_root ("noise:" ^ name)

let variation_enabled chip = chip.sigma_scale > 0.0
