(** Discrete-time second-order resonator: the behavioural LC tank.

    The band-pass loop filter of the sigma-delta modulator is built from
    LC resonators whose centre frequency is set by the tank capacitance
    and whose quality factor is boosted by a negative-Gm cell.  In
    discrete time (sampling at [fs]) the tank is the two-pole section

      y[n] = 2 r cos(theta) y[n-1] - r^2 y[n-2] + x[n-2]

    with [theta = 2 pi f_res / fs] the resonance angle and [r] the pole
    radius.  [r < 1] is a damped tank, [r = 1] a lossless one, and
    [r > 1] self-oscillates — which is exactly the oscillation mode the
    calibration procedure exploits (paper, Section V-B steps 5-7).
    An amplitude soft limit (the physical supply rail) bounds the
    oscillation. *)

type t

val create : theta:float -> r:float -> ?limit:float -> unit -> t
(** [create ~theta ~r ()] makes a quiescent resonator.  [limit] is the
    rail-clip amplitude applied to the state (default 10.0, effectively
    unclipped for in-band signals but bounding oscillation). *)

val theta_of_lc : l:float -> c:float -> fs:float -> float
(** Resonance angle of an LC tank sampled at [fs]:
    [2 pi / (fs * 2 pi sqrt(LC))].  Raises [Invalid_argument] for
    non-positive values. *)

val step : t -> float -> float
(** Advance one sample with the given input, returning the output.
    Equivalent to {!output} followed by {!feed}. *)

val output : t -> float
(** First half of a sample period: produce and commit this sample's
    output (which depends only on past inputs).  Must be followed by
    exactly one {!feed} before the next {!output}.  The split API lets a
    feedback loop read all filter outputs before computing the inputs
    that close the loop, without creating a false algebraic loop. *)

val feed : t -> float -> unit
(** Second half of a sample period: latch this sample's input. *)

val reset : t -> unit
(** Zero the state. *)

val kick : t -> float -> unit
(** Add an impulse to the state — used to start oscillation mode. *)

val run : t -> float array -> float array
(** Map [step] over a record (state persists across the call). *)

val oscillation_frequency : t -> fs:float -> n:int -> float option
(** Kick the resonator, run [n] samples, and estimate the oscillation
    frequency from the dominant spectral peak.  Returns [None] when the
    tank does not sustain oscillation (pole radius below 1), which the
    calibration uses as the "oscillation vanishes" test.  Resets the
    state afterwards. *)
