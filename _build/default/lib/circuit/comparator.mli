(** Clocked 1-bit comparator (the modulator's quantizer).

    In normal operation the comparator slices its input to +-1 every
    clock.  Deactivating the driving clock turns it into a unity buffer
    that passes the analog waveform through — the reconfiguration used
    by calibration step 1 and, crucially, the mechanism behind the
    "deceptive" invalid key of Fig. 7/8 (feedback open + comparator in
    buffer mode lets the analog signal through undigitized). *)

type mode =
  | Clocked  (** normal quantizer operation *)
  | Buffer
      (** clock off: the latch degenerates into a poor analog buffer —
          attenuating (it was never sized to drive the output), clipping
          well short of the logic rails, and noisy (no regeneration to
          overcome the input-referred noise) *)

val buffer_gain : float
(** 0.35: pass gain of the unclocked latch. *)

val buffer_clip : float
(** 0.8: output swing limit in buffer mode (vs +-1 logic levels). *)

val buffer_pole_alpha : float
(** One-pole smoothing coefficient of the unclocked latch node
    (pole near fs/50): without regeneration the node RC low-passes
    multi-GHz content. *)

type t

val create :
  ?mode:mode ->
  ?offset:float ->
  ?hysteresis:float ->
  ?noise:Sigkit.Rng.t ->
  ?noise_sigma:float ->
  unit ->
  t
(** [offset] is the input-referred offset voltage; [hysteresis] the
    regeneration dead-zone (decisions inside it keep the previous
    output); [noise_sigma] the input-referred decision noise. *)

val mode : t -> mode

val step : t -> float -> float
(** One clock period: quantize (or pass through in [Buffer] mode,
    clipped to the +-1 full scale). *)

val reset : t -> unit
