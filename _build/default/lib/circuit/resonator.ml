type t = {
  a1 : float;            (* 2 r cos(theta) *)
  a2 : float;            (* -r^2 *)
  r : float;
  limit : float;
  mutable y1 : float;
  mutable y2 : float;
  mutable x1 : float;
  mutable x2 : float;
}

let create ~theta ~r ?(limit = 10.0) () =
  {
    a1 = 2.0 *. r *. cos theta;
    a2 = -.(r *. r);
    r;
    limit;
    y1 = 0.0;
    y2 = 0.0;
    x1 = 0.0;
    x2 = 0.0;
  }

let theta_of_lc ~l ~c ~fs =
  if l <= 0.0 || c <= 0.0 || fs <= 0.0 then invalid_arg "Resonator.theta_of_lc";
  let f_res = 1.0 /. (2.0 *. Float.pi *. sqrt (l *. c)) in
  2.0 *. Float.pi *. f_res /. fs

let clip limit v = if v > limit then limit else if v < -.limit then -.limit else v

let output t =
  let y = (t.a1 *. t.y1) +. (t.a2 *. t.y2) +. t.x2 in
  let y = clip t.limit y in
  t.y2 <- t.y1;
  t.y1 <- y;
  t.x2 <- t.x1;
  y

let feed t x = t.x1 <- x

let step t x =
  let y = output t in
  feed t x;
  y

let reset t =
  t.y1 <- 0.0;
  t.y2 <- 0.0;
  t.x1 <- 0.0;
  t.x2 <- 0.0

let kick t amplitude = t.y1 <- t.y1 +. amplitude

let run t input = Array.map (fun x -> step t x) input

(* Frequency from the span between the first and last interpolated
   up-crossing: sub-sample accuracy, which the capacitor-array binary
   search needs (fine-cap steps move the resonance by well under an FFT
   bin). *)
let upcrossing_frequency samples ~fs =
  let n = Array.length samples in
  let first = ref None and last = ref None and count = ref 0 in
  for i = 1 to n - 1 do
    if samples.(i - 1) < 0.0 && samples.(i) >= 0.0 then begin
      let frac = -.samples.(i - 1) /. (samples.(i) -. samples.(i - 1)) in
      let time = float_of_int (i - 1) +. frac in
      if !first = None then first := Some time;
      last := Some time;
      incr count
    end
  done;
  match (!first, !last) with
  | Some t0, Some t1 when !count >= 3 && t1 > t0 ->
    Some (float_of_int (!count - 1) /. (t1 -. t0) *. fs)
  | Some _, Some _ | Some _, None | None, Some _ | None, None -> None

(* Oscillation mode runs the recursion unclamped (the clamp is a model
   of the rails, but clamping the *state* warps the effective resonance
   the bench would measure).  The state is renormalised whenever it
   grows large — a pure scaling, which leaves zero crossings exactly at
   the sinusoid's zeros, so the frequency estimate is unbiased even for
   a strongly over-critical tank. *)
let oscillation_frequency t ~fs ~n =
  let y1 = ref 1e-3 and y2 = ref 0.0 in
  let samples = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let y = (t.a1 *. !y1) +. (t.a2 *. !y2) in
    y2 := !y1;
    y1 := y;
    samples.(i) <- y;
    if Float.abs y > 1e12 then begin
      y1 := !y1 *. 1e-12;
      y2 := !y2 *. 1e-12;
      (* Rescale the recorded tail consistently so crossings line up. *)
      for j = max 0 (i - 4) to i do
        samples.(j) <- samples.(j) *. 1e-12
      done
    end
  done;
  let tail = Array.sub samples (n - (n / 4)) (n / 4) in
  let tail_rms = Sigkit.Waveform.rms tail in
  if t.r < 1.0 || tail_rms < 1e-9 then None else upcrossing_frequency tail ~fs
