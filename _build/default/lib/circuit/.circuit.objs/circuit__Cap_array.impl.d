lib/circuit/cap_array.ml: Array Float Printf Process
