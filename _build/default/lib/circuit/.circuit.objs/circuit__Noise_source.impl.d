lib/circuit/noise_source.ml: Array Process Sigkit
