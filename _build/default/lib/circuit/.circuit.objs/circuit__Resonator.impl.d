lib/circuit/resonator.ml: Array Float Sigkit
