lib/circuit/noise_source.mli: Process
