lib/circuit/comparator.mli: Sigkit
