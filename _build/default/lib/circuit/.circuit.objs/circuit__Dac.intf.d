lib/circuit/dac.mli: Process
