lib/circuit/nonlinear.mli:
