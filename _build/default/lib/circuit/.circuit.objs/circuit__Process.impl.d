lib/circuit/process.ml: Sigkit
