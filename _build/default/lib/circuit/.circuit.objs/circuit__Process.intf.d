lib/circuit/process.mli: Sigkit
