lib/circuit/resonator.mli:
