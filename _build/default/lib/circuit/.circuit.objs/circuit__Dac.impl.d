lib/circuit/dac.ml: Process
