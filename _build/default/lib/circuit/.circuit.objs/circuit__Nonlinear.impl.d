lib/circuit/nonlinear.ml: Array Float Sigkit
