lib/circuit/comparator.ml: Float Sigkit
