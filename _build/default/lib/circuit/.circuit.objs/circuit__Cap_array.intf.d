lib/circuit/cap_array.mli: Process
