type mode =
  | Clocked
  | Buffer

type t = {
  mode : mode;
  offset : float;
  hysteresis : float;
  noise : Sigkit.Rng.t option;
  noise_sigma : float;
  mutable previous : float;
  mutable lp_state : float;   (* buffer-mode latch-node low-pass state *)
}

let create ?(mode = Clocked) ?(offset = 0.0) ?(hysteresis = 0.0) ?noise ?(noise_sigma = 0.0) () =
  { mode; offset; hysteresis; noise; noise_sigma; previous = 1.0; lp_state = 0.0 }

let mode t = t.mode

let buffer_gain = 0.35
let buffer_clip = 0.8

(* Without the clock's regeneration the latch node is just an RC: a
   one-pole low-pass around fs/50, which smears multi-GHz content. *)
let buffer_pole_alpha = 0.12

let sample_noise t =
  match t.noise with
  | Some rng when t.noise_sigma > 0.0 -> t.noise_sigma *. Sigkit.Rng.gaussian rng
  | Some _ | None -> 0.0

let step t x =
  match t.mode with
  | Buffer ->
    let driven = x +. t.offset +. sample_noise t in
    t.lp_state <- t.lp_state +. (buffer_pole_alpha *. (driven -. t.lp_state));
    let v = buffer_gain *. t.lp_state in
    if v > buffer_clip then buffer_clip else if v < -.buffer_clip then -.buffer_clip else v
  | Clocked ->
    let v = x +. t.offset +. sample_noise t in
    let decision =
      if Float.abs v <= t.hysteresis then t.previous else if v > 0.0 then 1.0 else -1.0
    in
    t.previous <- decision;
    decision

let reset t =
  t.previous <- 1.0;
  t.lp_state <- 0.0
