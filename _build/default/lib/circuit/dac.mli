(** 1-bit feedback DAC of the sigma-delta loop.

    Converts the comparator decision back to an analog feedback charge.
    The effective gain is trimmed by a bias code; level mismatch between
    the +1 and -1 cells (per-chip) adds even-order error, and a wrong
    bias code scales the loop gain away from the design point. *)

type t

val create : Process.chip -> gain:float -> t
(** [create chip ~gain] gives a DAC whose nominal full-scale feedback
    gain is [gain], with per-chip level mismatch. *)

val convert : t -> float -> float
(** Map a comparator decision (+-1) to the analog feedback value. *)

val gain : t -> float
