(** Unified descriptor for analog locking techniques (paper Section II).

    Every prior scheme [6]-[11] and the proposed fabric locking are
    described by the same axes the paper's comparison discusses: where
    the key acts, whether circuitry is added (and hence removable),
    whether keys are per-die, and the design-intrusiveness overheads. *)

type lock_site =
  | Biasing            (** [6], [7], [8]: fixed bias generation *)
  | Neural_biasing     (** [11]: NN mapping analog key to biases *)
  | Digital_section    (** [9]: logic locking of the digital part *)
  | Calibration_loop   (** [10]: logic locking of the on-chip optimizer *)
  | Programmable_fabric (** proposed: the tuning knobs themselves *)

type removal_verdict =
  | Removable of string        (** how the attacker excises the lock *)
  | Hard_to_remove of string
  | Nothing_to_remove          (** no added circuitry exists *)

type t = {
  name : string;
  reference : string;
  key_bits : int;
  lock_site : lock_site;
  per_chip_key : bool;          (** key differs die to die *)
  design_intrusive : bool;      (** requires redesign of the analog IP *)
  added_circuitry : bool;
  area_overhead_pct : float;
  power_overhead_pct : float;
  removal : removal_verdict;
}

val removal_vulnerable : t -> bool

val pp_row : Format.formatter -> t -> unit
(** One comparison-table row. *)
