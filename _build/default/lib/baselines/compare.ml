let proposed =
  {
    Technique.name = "programmability-fabric lock";
    reference = "this";
    key_bits = 64;
    lock_site = Technique.Programmable_fabric;
    per_chip_key = true;
    design_intrusive = false;
    added_circuitry = false;
    area_overhead_pct = 0.0;
    power_overhead_pct = 0.0;
    removal = Technique.Nothing_to_remove;
  }

let all =
  [
    Memristor_lock.descriptor;
    Bias_obfuscation.descriptor;
    Mirror_lock.descriptor;
    Mixlock.descriptor;
    Calib_lock.descriptor;
    Neural_bias.descriptor;
    proposed;
  ]

type corruption_probe = {
  technique : string;
  wrong_key_penalty_db : float;
  zero_key_penalty_db : float;
}

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))

let random_key rng n = Array.init n (fun _ -> Sigkit.Rng.bool rng)

let corruption_probes ?(seed = 31) () =
  let rng = Sigkit.Rng.create seed in
  let n_probes = 32 in
  let probe name ~bits ~penalty ~correct =
    let wrong = List.init n_probes (fun _ -> penalty (random_key rng bits)) in
    {
      technique = name;
      wrong_key_penalty_db = mean wrong;
      zero_key_penalty_db = penalty correct;
    }
  in
  let memristor = Memristor_lock.create (Sigkit.Rng.split rng "memristor") ~rows:16 in
  let bias = Bias_obfuscation.create (Sigkit.Rng.split rng "bias") ~key_bits:10 in
  let mirror = Mirror_lock.create (Sigkit.Rng.split rng "mirror") ~key_bits:12 ~ratio:4.0 in
  let mix = Mixlock.create (Sigkit.Rng.split rng "mixlock") in
  let calib = Calib_lock.create (Sigkit.Rng.split rng "calib") in
  [
    probe "memristor crossbar bias lock" ~bits:16
      ~penalty:(fun key ->
        (* 1 mV sense-amp offset ~ 1 dB SNR-equivalent penalty here. *)
        Float.min 60.0 (Memristor_lock.offset_penalty_mv memristor ~key))
      ~correct:(Memristor_lock.correct_key memristor);
    probe "bias transistor obfuscation" ~bits:10
      ~penalty:(fun key -> Bias_obfuscation.performance_penalty_db bias ~key)
      ~correct:(Bias_obfuscation.correct_key bias);
    probe "current-mirror locking" ~bits:12
      ~penalty:(fun key -> Float.min 60.0 (40.0 *. Mirror_lock.ratio_error mirror ~key))
      ~correct:(Mirror_lock.correct_key mirror);
    probe "MixLock (digital logic lock)" ~bits:24
      ~penalty:(fun key -> Mixlock.equivalent_snr_penalty_db mix ~key)
      ~correct:(Mixlock.correct_key mix);
    probe "calibration-loop logic lock" ~bits:16
      ~penalty:(fun key ->
        (* ~1.2 dB penalty per corrupted tuning bit, saturating. *)
        Float.min 60.0 (1.2 *. float_of_int (Calib_lock.tuning_error_bits calib ~key)))
      ~correct:(Calib_lock.correct_key calib);
  ]

let removal_analysis () =
  List.map (fun t -> (t.Technique.name, t.Technique.removal)) all

let pp_table fmt () =
  Format.fprintf fmt "@[<v>%-28s %-10s %-9s %-19s  %-8s %-9s %-9s  area/power@,"
    "technique" "ref" "key" "lock site" "key/die" "design" "removal";
  List.iter (fun t -> Format.fprintf fmt "%a@," Technique.pp_row t) all;
  Format.fprintf fmt "@]"
