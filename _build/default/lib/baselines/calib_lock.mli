(** Calibration-loop locking, Jayasankaran et al. [10] (paper Fig. 1e).

    The digital optimizer inside the on-chip calibration feedback loop
    is logic-locked: with the wrong key the optimizer converges to
    wrong tuning settings.  Modelled as a locked netlist standing in
    the optimizer's update path — the update word it emits is corrupted
    at the locked gates' error rate, so the "calibrated" configuration
    drifts away from the true optimum as a function of key badness. *)

type t

val create : ?key_bits:int -> Sigkit.Rng.t -> t

val correct_key : t -> bool array

val corrupted_calibration :
  t ->
  key:bool array ->
  true_key:Rfchain.Config.t ->
  Rfchain.Config.t
(** What the locked optimizer would program: the true calibrated word
    with bit corruption proportional to the logic error rate. *)

val tuning_error_bits : t -> key:bool array -> int
(** Expected corrupted bits out of the 64-bit tuning word. *)

val descriptor : Technique.t
