type t = {
  widths : float array;
  correct : bool array;
  target : float;
}

let create rng ~key_bits =
  if key_bits < 2 || key_bits > 20 then invalid_arg "Bias_obfuscation.create: key bits";
  (* Near-binary-weighted branch widths with +-10% scatter, as in [7]. *)
  let widths =
    Array.init key_bits (fun i ->
        float_of_int (1 lsl min i 6) *. Sigkit.Rng.uniform rng 0.9 1.1)
  in
  let correct = Array.init key_bits (fun _ -> Sigkit.Rng.bool rng) in
  let target =
    Array.to_list widths
    |> List.filteri (fun i _ -> correct.(i))
    |> List.fold_left ( +. ) 0.0
  in
  (* Degenerate all-false draw: force one branch on. *)
  if target = 0.0 then begin
    correct.(0) <- true;
    { widths; correct; target = widths.(0) }
  end
  else { widths; correct; target }

let correct_key t = Array.copy t.correct

let width_of t key =
  let acc = ref 0.0 in
  Array.iteri (fun i w -> if key.(i) then acc := !acc +. w) t.widths;
  !acc

let width_error t ~key =
  if Array.length key <> Array.length t.correct then invalid_arg "Bias_obfuscation: key arity";
  Float.abs (width_of t key -. t.target) /. t.target

let performance_penalty_db t ~key =
  let err = width_error t ~key in
  Float.min 60.0 (40.0 *. err)

let keys_within_tolerance t ~tolerance =
  let k = Array.length t.correct in
  let count = ref 0 in
  for code = 0 to (1 lsl k) - 1 do
    let key = Array.init k (fun i -> code land (1 lsl i) <> 0) in
    if width_error t ~key <= tolerance then incr count
  done;
  !count

let removal _t =
  Technique.Removable
    "bias transistors are few and identifiable: replace the key-gated array with one correctly sized device"

let descriptor =
  {
    Technique.name = "bias transistor obfuscation";
    reference = "[7]";
    key_bits = 10;
    lock_site = Technique.Biasing;
    per_chip_key = false;
    design_intrusive = true;
    added_circuitry = true;
    area_overhead_pct = 4.0;
    power_overhead_pct = 1.0;
    removal =
      Technique.Removable
        "bias transistors are few and identifiable: replace the key-gated array with one correctly sized device";
  }
