(** MixLock, Leonhard et al. [9] (paper Fig. 1d).

    Lock a mixed-signal circuit by logic-locking its digital section.
    Here the locked block is a stand-in for the receiver's decimation-
    filter control logic: a ripple-carry adder netlist with XOR/XNOR
    key gates.  The wrong key corrupts the digital arithmetic, which
    corrupts the receiver output — functionality locking, not bias
    locking, hence per-chip attack surface comparable to the proposed
    scheme, but the key logic is still *added* circuitry. *)

type t

val create : ?key_bits:int -> ?adder_width:int -> Sigkit.Rng.t -> t

val correct_key : t -> bool array

val output_error_rate : t -> key:bool array -> float
(** Fraction of input vectors with corrupted digital output. *)

val equivalent_snr_penalty_db : t -> key:bool array -> float
(** Bit-error rate mapped to an SNR penalty on the decimated channel:
    a digital word error rate of e contributes roughly
    10 log10(1/e) - 9 dB of SNDR ceiling (full-scale error power). *)

val removal_demo : t -> Netlist.Gate.t
(** The removal attack succeeding structurally: locate and excise the
    key gates (the paper ranks this harder than bias removal but still
    possible — the attacker must resynthesise the digital section). *)

val descriptor : Technique.t
