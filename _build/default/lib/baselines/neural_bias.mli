(** Neural-network performance locking, Volanis et al. [11] (paper Fig. 1f).

    An on-chip multilayer perceptron maps a secret *analog* key — a
    vector of DC voltages presented at dedicated pins — to the correct
    bias settings.  The network is trained so the secret vector decodes
    to the design biases while other vectors produce garbage.  This
    module trains a real (tiny) MLP with gradient descent: one hidden
    tanh layer, mean-squared-error loss on the secret key plus decoy
    vectors mapped away from the target. *)

type t

val train :
  ?hidden:int ->
  ?epochs:int ->
  ?decoys:int ->
  Sigkit.Rng.t ->
  key_voltages:float array ->
  target_biases:float array ->
  t
(** Train the biasing network.  Voltages and biases are normalised to
    [0, 1].  Raises [Invalid_argument] on empty vectors. *)

val infer : t -> float array -> float array
(** The biases the network would apply for a presented key vector. *)

val bias_error : t -> float array -> float
(** RMS distance of the inferred biases from the design point when
    presenting a candidate analog key. *)

val secret_key : t -> float array

val descriptor : Technique.t
