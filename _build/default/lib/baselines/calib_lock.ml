type t = {
  locked : Netlist.Logic_lock.locked;
  scramble : Sigkit.Rng.t;
}

let create ?(key_bits = 16) rng =
  let original = Netlist.Bench_circuits.ripple_adder 12 in
  {
    locked = Netlist.Logic_lock.lock rng original ~key_bits;
    scramble = Sigkit.Rng.split rng "calib-lock-scramble";
  }

let correct_key t = Array.copy t.locked.Netlist.Logic_lock.correct_key

let error_rate t ~key = Netlist.Logic_lock.corruption t.locked ~key

let tuning_error_bits t ~key =
  int_of_float (Float.round (error_rate t ~key *. 64.0))

let corrupted_calibration t ~key ~true_key =
  let n_bad = tuning_error_bits t ~key in
  if n_bad = 0 then true_key
  else begin
    let bits = ref (Rfchain.Config.to_bits true_key) in
    let rng = Sigkit.Rng.split t.scramble (Printf.sprintf "corrupt:%d" n_bad) in
    for _ = 1 to n_bad do
      let pos = Sigkit.Rng.int_range rng 0 63 in
      bits := Int64.logxor !bits (Int64.shift_left 1L pos)
    done;
    Rfchain.Config.of_bits !bits
  end

let descriptor =
  {
    Technique.name = "calibration-loop logic lock";
    reference = "[10]";
    key_bits = 16;
    lock_site = Technique.Calibration_loop;
    per_chip_key = true;  (* wrong settings differ per chip, like [10] *)
    design_intrusive = true;
    added_circuitry = true;
    area_overhead_pct = 2.5;
    power_overhead_pct = 1.0;
    removal =
      Technique.Hard_to_remove
        "replacing the locked optimizer requires re-deriving the calibration algorithm it implements";
  }
