(** Memristor-crossbar bias locking, Hoe et al. [6] (paper Fig. 1a).

    A memristor crossbar generates the body bias of a sense amplifier's
    input pair; the key programs the crossbar conductances.  Wrong keys
    skew the body bias, degrading the amplifier's offset and speed.
    Like all bias locks, the crossbar is added circuitry around a small
    number of bias nets. *)

type t

val create : Sigkit.Rng.t -> rows:int -> t

val correct_key : t -> bool array

val body_bias_mv : t -> key:bool array -> float
(** Generated body bias; the design point is 300 mV. *)

val offset_penalty_mv : t -> key:bool array -> float
(** Sense-amp input offset added by the bias error. *)

val descriptor : Technique.t
