lib/baselines/compare.ml: Array Bias_obfuscation Calib_lock Float Format List Memristor_lock Mirror_lock Mixlock Neural_bias Sigkit Technique
