lib/baselines/memristor_lock.mli: Sigkit Technique
