lib/baselines/bias_obfuscation.mli: Sigkit Technique
