lib/baselines/technique.mli: Format
