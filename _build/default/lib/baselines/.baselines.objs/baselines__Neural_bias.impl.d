lib/baselines/neural_bias.ml: Array List Sigkit Technique
