lib/baselines/technique.ml: Format
