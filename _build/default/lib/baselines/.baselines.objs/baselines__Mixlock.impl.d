lib/baselines/mixlock.ml: Array Float Netlist Technique
