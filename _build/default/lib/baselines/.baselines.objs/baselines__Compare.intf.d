lib/baselines/compare.mli: Format Technique
