lib/baselines/bias_obfuscation.ml: Array Float List Sigkit Technique
