lib/baselines/mirror_lock.mli: Sigkit Technique
