lib/baselines/mixlock.mli: Netlist Sigkit Technique
