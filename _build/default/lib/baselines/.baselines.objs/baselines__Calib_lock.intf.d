lib/baselines/calib_lock.mli: Rfchain Sigkit Technique
