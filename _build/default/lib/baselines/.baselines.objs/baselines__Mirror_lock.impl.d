lib/baselines/mirror_lock.ml: Array Float Fun Sigkit Technique
