lib/baselines/calib_lock.ml: Array Float Int64 Netlist Printf Rfchain Sigkit Technique
