lib/baselines/memristor_lock.ml: Array Float Fun Sigkit Technique
